// Command haccpower analyzes particle snapshots written by haccsim — or a
// checkpoint's state container directly — with the distributed in-situ
// pipeline: particle records are scattered over a simulated MPI world,
// redistributed to their owner ranks, and measured with the planned
// pencil-r2c P(k) estimator, the distributed FOF halo finder, and the
// two-point correlation function — the §V statistics pipeline, decoupled
// from the simulation run.
//
// Usage:
//
//	haccpower -snap run.hacc [-ranks 8] [-par 4] [-bins 16] [-fof 0.2]
//	haccpower -ckpt ckpt/step000008 [-par 4]
//
// The -snap form reads run.hacc, run.hacc.1, …, run.hacc.(ranks-1); the
// -ckpt form reads every writer rank's block straight out of one
// checkpoint state container (an O(1) seek per block).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"hacc/internal/analysis"
	"hacc/internal/core"
	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("haccpower: ")
	var (
		snapPath = flag.String("snap", "", "snapshot base path")
		ckptPath = flag.String("ckpt", "", "checkpoint step directory (or checkpoint root) to analyze instead of snapshots")
		ranks    = flag.Int("ranks", 1, "number of per-rank snapshot files")
		par      = flag.Int("par", 4, "simulated MPI ranks for the distributed analysis")
		bins     = flag.Int("bins", 16, "power spectrum bins")
		fofB     = flag.Float64("fof", 0.2, "FOF linking length (fraction of mean spacing); 0 disables")
		minN     = flag.Int("minhalo", 10, "minimum FOF halo membership")
		shot     = flag.Bool("shot", true, "subtract Poisson shot noise from P(k)")
	)
	flag.Parse()
	if (*snapPath == "") == (*ckptPath == "") {
		log.Print("exactly one of -snap or -ckpt is required")
		flag.Usage()
		os.Exit(2)
	}
	if *par < 1 || *bins < 1 || *minN < 1 || *fofB < 0 || *ranks < 1 {
		log.Fatalf("senseless flags: -ranks %d -par %d -bins %d -minhalo %d -fof %g", *ranks, *par, *bins, *minN, *fofB)
	}
	if *ckptPath != "" {
		// -ranks counts snapshot files; a checkpoint's writer-rank count
		// comes from its own rank table, so an explicit -ranks would be
		// silently ignored — reject it instead.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "ranks" {
				log.Fatalf("-ranks only applies to -snap inputs; -ckpt reads the writer-rank count from the container")
			}
		})
	}

	var (
		header snapshot.Header
		np0    int64
		paths  []string
		ckDir  string
	)
	if *ckptPath != "" {
		dir, err := core.ResolveCheckpoint(*ckptPath)
		if err != nil {
			log.Fatalf("-ckpt %s: %v", *ckptPath, err)
		}
		info, err := core.ReadCheckpointInfo(dir)
		if err != nil {
			log.Fatalf("-ckpt %s: %v", *ckptPath, err)
		}
		ckDir = dir
		header = snapshot.Header{
			NGrid:  uint32(info.Cfg.NGrid),
			BoxMpc: info.Cfg.BoxMpc,
			A:      info.A,
			OmegaM: info.Cfg.Cosmo.OmegaM,
			Seed:   info.Cfg.Seed,
		}
		np0 = info.NGlobal
		log.Printf("checkpoint %s: step %d, %d writer ranks", dir, info.StepIndex, info.NRanks)
	} else {
		// Headers are read up front (cheap) to size the world consistently.
		paths = make([]string, *ranks)
		for r := range paths {
			paths[r] = *snapPath
			if r > 0 {
				paths[r] = fmt.Sprintf("%s.%d", *snapPath, r)
			}
		}
		var err error
		header, np0, err = scanHeaders(paths)
		if err != nil {
			log.Fatal(err)
		}
	}
	ng := int(header.NGrid)
	log.Printf("%d particles, grid %d³, box %.0f Mpc/h, a=%.4f (z=%.2f), analyzing on %d ranks",
		np0, ng, header.BoxMpc, header.A, 1/header.A-1, *par)

	err := mpi.Run(*par, func(c *mpi.Comm) {
		dec := grid.NewDecomp([3]int{ng, ng, ng}, *par)
		dom := domain.New(c, dec, 3)
		// Each rank loads its share of the inputs (snapshot files, or writer
		// blocks of the checkpoint container); the dense migration then
		// routes every particle to its owner (arbitrary motion, so the
		// 26-stencil planned path does not apply here).
		if ckDir != "" {
			gr, _, err := core.OpenCheckpoint(ckDir)
			if err != nil {
				log.Fatal(err)
			}
			defer gr.Close()
			for fi := c.Rank(); fi < gr.NumRanks(); fi += c.Size() {
				if err := snapshot.ReadParticleRank(gr, fi, &dom.Active); err != nil {
					log.Fatalf("reading %s block %d: %v", ckDir, fi, err)
				}
			}
		} else {
			for fi := c.Rank(); fi < len(paths); fi += c.Size() {
				_, p, err := snapshot.LoadFile(paths[fi])
				if err != nil {
					log.Fatalf("reading %s: %v", paths[fi], err)
				}
				for i := 0; i < p.Len(); i++ {
					dom.Active.AppendFrom(p, i)
				}
			}
		}
		dom.MigrateDense()
		dom.Refresh()

		pw := analysis.NewPower(c, dec, nil, header.BoxMpc, *bins)
		ps := pw.Measure(dom, *shot)
		if c.Rank() == 0 {
			fmt.Printf("\npower spectrum (pencil-r2c, %d ranks):\n%-12s %-14s %s\n", *par, "k [h/Mpc]", "P(k)", "modes")
			for i, k := range ps.K {
				fmt.Printf("%-12.4f %-14.4e %d\n", k, ps.P[i], ps.NModes[i])
			}
			fmt.Printf("(shot noise level: %.3e)\n", ps.ShotNoise)

			radii := []float64{2, 5, 10, 20, 40, 80, 105, 130}
			var usable []float64
			for _, r := range radii {
				if r < header.BoxMpc/3 {
					usable = append(usable, r)
				}
			}
			xi := analysis.CorrelationFromPower(ps, usable)
			fmt.Printf("\ncorrelation function:\n%-12s %s\n", "r [Mpc/h]", "ξ(r)")
			for i, r := range usable {
				fmt.Printf("%-12.1f %.4e\n", r, xi[i])
			}
		}

		if *fofB <= 0 {
			return
		}
		params := cosmology.Default()
		if header.OmegaM > 0 {
			params.OmegaM = header.OmegaM
			params.OmegaL = 1 - header.OmegaM
		}
		nGlobal := dom.NGlobal()
		npDim := cbrtInt(int(nGlobal))
		mp := params.ParticleMass(npDim, header.BoxMpc)
		spacing := float64(ng) / float64(npDim)
		pl := analysis.NewPlan(dom, nil)
		halos := pl.FindHalos(*fofB*spacing, *minN, mp)

		// Concentrate the catalog for reporting (N, Mass, X, Y, Z per halo).
		var flat []float64
		for _, h := range halos {
			flat = append(flat, float64(h.N), h.Mass, h.X, h.Y, h.Z)
		}
		all := mpi.Gather(c, 0, flat)
		if c.Rank() != 0 {
			return
		}
		type rec struct {
			n             int
			mass, x, y, z float64
		}
		var cat []rec
		for k := 0; k+5 <= len(all); k += 5 {
			cat = append(cat, rec{int(all[k]), all[k+1], all[k+2], all[k+3], all[k+4]})
		}
		sort.Slice(cat, func(i, j int) bool { return cat[i].n > cat[j].n })
		fmt.Printf("\nFOF halos (distributed, b=%.2f, ≥%d particles): %d\n", *fofB, *minN, len(cat))
		for i, h := range cat {
			if i >= 5 {
				fmt.Printf("  … %d more\n", len(cat)-5)
				break
			}
			fmt.Printf("  halo %d: %d particles, M=%.2e Msun/h, center (%.1f,%.1f,%.1f)\n",
				i, h.n, h.mass, h.x, h.y, h.z)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

// scanHeaders validates the per-rank snapshot headers (header-only reads —
// particle payloads are decoded once, inside the analysis world) and
// returns the first header plus the total particle count.
func scanHeaders(paths []string) (snapshot.Header, int64, error) {
	var header snapshot.Header
	var total int64
	for r, path := range paths {
		h, err := snapshot.LoadHeader(path)
		if err != nil {
			return header, 0, fmt.Errorf("reading %s: %w", path, err)
		}
		if r == 0 {
			header = h
		} else if h.NGrid != header.NGrid || h.BoxMpc != header.BoxMpc {
			return header, 0, fmt.Errorf("%s: inconsistent header (grid %d box %g)", path, h.NGrid, h.BoxMpc)
		}
		total += int64(h.NP)
	}
	return header, total, nil
}

// cbrtInt returns the integer cube root of n (assuming n is a perfect cube
// or near one).
func cbrtInt(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	if r*r*r > n && (r-1)*(r-1)*(r-1) >= n-3*r*r {
		r--
	}
	return r
}
