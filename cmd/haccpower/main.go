// Command haccpower analyzes particle snapshots written by haccsim: it
// merges per-rank snapshot files, measures the matter power spectrum, the
// two-point correlation function, and the FOF halo mass function — the
// §V statistics pipeline, decoupled from the simulation run.
//
// Usage:
//
//	haccpower -snap run.hacc [-ranks 8] [-bins 16] [-fof 0.2]
//
// reads run.hacc, run.hacc.1, …, run.hacc.(ranks-1).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hacc/internal/analysis"
	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("haccpower: ")
	var (
		snapPath = flag.String("snap", "", "snapshot base path (required)")
		ranks    = flag.Int("ranks", 1, "number of per-rank snapshot files")
		bins     = flag.Int("bins", 16, "power spectrum bins")
		fofB     = flag.Float64("fof", 0.2, "FOF linking length (fraction of mean spacing); 0 disables")
		shot     = flag.Bool("shot", true, "subtract Poisson shot noise from P(k)")
	)
	flag.Parse()
	if *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var header snapshot.Header
	merged := &domain.Particles{}
	for r := 0; r < *ranks; r++ {
		path := *snapPath
		if r > 0 {
			path = fmt.Sprintf("%s.%d", *snapPath, r)
		}
		h, p, err := snapshot.LoadFile(path)
		if err != nil {
			log.Fatalf("reading %s: %v", path, err)
		}
		if r == 0 {
			header = h
		} else if h.NGrid != header.NGrid || h.BoxMpc != header.BoxMpc {
			log.Fatalf("%s: inconsistent header (grid %d box %g)", path, h.NGrid, h.BoxMpc)
		}
		for i := 0; i < p.Len(); i++ {
			merged.AppendFrom(p, i)
		}
	}
	log.Printf("loaded %d particles, grid %d³, box %.0f Mpc/h, a=%.4f (z=%.2f)",
		merged.Len(), header.NGrid, header.BoxMpc, header.A, 1/header.A-1)

	ng := int(header.NGrid)
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp([3]int{ng, ng, ng}, 1)
		dom := domain.New(c, dec, 3)
		dom.Active = *merged
		dom.Migrate()

		ps := analysis.MeasurePower(c, dec, dom, header.BoxMpc, *bins, *shot)
		fmt.Printf("\npower spectrum:\n%-12s %-14s %s\n", "k [h/Mpc]", "P(k)", "modes")
		for i, k := range ps.K {
			fmt.Printf("%-12.4f %-14.4e %d\n", k, ps.P[i], ps.NModes[i])
		}
		fmt.Printf("(shot noise level: %.3e)\n", ps.ShotNoise)

		radii := []float64{2, 5, 10, 20, 40, 80, 105, 130}
		var usable []float64
		for _, r := range radii {
			if r < header.BoxMpc/3 {
				usable = append(usable, r)
			}
		}
		xi := analysis.CorrelationFromPower(ps, usable)
		fmt.Printf("\ncorrelation function:\n%-12s %s\n", "r [Mpc/h]", "ξ(r)")
		for i, r := range usable {
			fmt.Printf("%-12.1f %.4e\n", r, xi[i])
		}

		if *fofB > 0 {
			dom.Refresh()
			params := cosmology.Default()
			if header.OmegaM > 0 {
				params.OmegaM = header.OmegaM
				params.OmegaL = 1 - header.OmegaM
			}
			np := int(float64(merged.Len()) + 0.5)
			npDim := cbrtInt(np)
			mp := params.ParticleMass(npDim, header.BoxMpc)
			spacing := float64(ng) / float64(npDim)
			halos := analysis.FindHalos(dom, dec, *fofB*spacing, 10, mp)
			fmt.Printf("\nFOF halos (b=%.2f, ≥10 particles): %d\n", *fofB, len(halos))
			for i, h := range halos {
				if i >= 5 {
					fmt.Printf("  … %d more\n", len(halos)-5)
					break
				}
				fmt.Printf("  halo %d: %d particles, M=%.2e Msun/h, center (%.1f,%.1f,%.1f)\n",
					i, h.N, h.Mass, h.X, h.Y, h.Z)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

// cbrtInt returns the integer cube root of n (assuming n is a perfect cube
// or near one).
func cbrtInt(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	if r*r*r > n && (r-1)*(r-1)*(r-1) >= n-3*r*r {
		r--
	}
	return r
}
