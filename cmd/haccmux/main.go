// Command haccmux launches N copies of a command as the ranks of one
// multi-process wire world — a minimal mpirun for this runtime. Each child
// receives the mpi environment contract (HACC_WIRE_RANK, HACC_WIRE_SIZE,
// HACC_WIRE_RENDEZVOUS, HACC_WIRE_TRANSPORT); a command detects wire mode
// with mpi.WireChild and joins via mpi.ConnectEnv. Child failures are
// classified through the supervisor exit-code protocol (10 = crash, 11 =
// hang, 12 = abort, 13 = corrupt checkpoint; a signal death reads as a
// crash), and with -max-restarts ≥ 0 the world is restarted from the newest
// restorable checkpoint under -ckpt-root, damaged ones quarantined — the
// process-level form of the core supervisor.
//
// Examples:
//
//	haccmux -n 4 -- haccsim -np 32 -steps 8
//	haccmux -n 4 -transport tcp -max-restarts 3 -ckpt-root ckpt -- \
//	        haccsim -np 32 -steps 8 -ckpt-dir ckpt -ckpt-every 2
package main

import (
	"flag"
	"log"
	"time"

	"hacc/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("haccmux: ")
	var (
		n           = flag.Int("n", 2, "world size: one OS process per rank")
		transport   = flag.String("transport", "auto", "wire socket family: tcp|unix|auto")
		maxRestarts = flag.Int("max-restarts", -1, "restart the world from the newest checkpoint up to N times (-1 = no retry)")
		ckptRoot    = flag.String("ckpt-root", "", "cadenced checkpoint root recovery resumes from")
		deadline    = flag.Duration("deadline", 0, "wall-clock bound per attempt; elapsing classifies as a hang (0 = none)")
		grace       = flag.Duration("grace", 0, "time survivors get to self-abort after a peer dies before being killed (default 10s)")
		traceDir    = flag.String("trace", "", "write the supervisor's incident journal under this directory (pass the same dir to the command's own -trace for rank timelines)")
	)
	flag.Parse()
	cmd := flag.Args()
	if *n < 1 {
		log.Fatalf("-n %d must be ≥1", *n)
	}
	if len(cmd) == 0 {
		log.Fatal("no command given (usage: haccmux -n N [flags] -- cmd args...)")
	}
	switch *transport {
	case "tcp", "unix", "auto":
	default:
		log.Fatalf("unknown -transport %q (want tcp|unix|auto)", *transport)
	}

	restarts := *maxRestarts
	if restarts <= 0 {
		restarts = -1
	}
	start := time.Now()
	rep, err := core.SuperviseProcs(core.ProcOptions{
		Ranks:          *n,
		Transport:      *transport,
		Command:        cmd,
		MaxRestarts:    restarts,
		AttemptTimeout: *deadline,
		GraceKill:      *grace,
		CheckpointRoot: *ckptRoot,
		TraceDir:       *traceDir,
		Log:            func(line string) { log.Print(line) },
	})
	for _, inc := range rep.Incidents {
		log.Printf("incident: attempt %d failed (%s); resumed from %q after %v",
			inc.Attempt, inc.Class, inc.Resume, inc.Backoff)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rep.Restarts > 0 {
		log.Printf("world completed after %d restart(s) in %v", rep.Restarts, time.Since(start).Round(time.Millisecond))
	}
}
