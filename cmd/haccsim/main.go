// Command haccsim runs a full HACC simulation from command-line flags,
// reporting per-step progress, the final power spectrum, the halo mass
// function, and the performance summary; optionally it writes particle
// snapshots.
//
// Example:
//
//	haccsim -ranks 8 -np 64 -box 250 -zinit 50 -zfinal 0 -steps 24 \
//	        -solver tree -snap final.hacc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hacc/internal/core"
	"hacc/internal/cosmology"
	"hacc/internal/mpi"
	"hacc/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("haccsim: ")
	var (
		ranks    = flag.Int("ranks", 4, "simulated MPI ranks")
		np       = flag.Int("np", 32, "particles per dimension")
		ng       = flag.Int("ng", 0, "PM grid per dimension (default: np)")
		box      = flag.Float64("box", 150, "box side in Mpc/h")
		zInit    = flag.Float64("zinit", 24, "initial redshift")
		zFinal   = flag.Float64("zfinal", 0, "final redshift")
		steps    = flag.Int("steps", 12, "full long-range steps")
		nc       = flag.Int("nc", 5, "short-range sub-cycles per step")
		seed     = flag.Uint64("seed", 42, "random seed")
		solver   = flag.String("solver", "tree", "short-range solver: tree|p3m|pm")
		transfer = flag.String("transfer", "eh-nowiggle", "transfer function: eh|eh-nowiggle|bbks")
		threads  = flag.Int("threads", 2, "kernel threads per rank")
		fixed    = flag.Bool("fixed", false, "fixed-amplitude initial conditions")
		snapPath = flag.String("snap", "", "write a final snapshot to this path")
		pkBins   = flag.Int("pkbins", 16, "power spectrum bins")
	)
	flag.Parse()

	var kind core.SolverKind
	switch *solver {
	case "tree":
		kind = core.PPTreePM
	case "p3m":
		kind = core.P3M
	case "pm":
		kind = core.PMOnly
	default:
		log.Fatalf("unknown solver %q", *solver)
	}
	cfg := core.Config{
		NGrid: orInt(*ng, *np), NParticles: *np, BoxMpc: *box,
		Cosmo: cosmology.Default(), Transfer: *transfer,
		ZInit: *zInit, ZFinal: *zFinal, Steps: *steps, SubCycles: *nc,
		Seed: *seed, FixedAmp: *fixed, Solver: kind, Threads: *threads,
	}

	start := time.Now()
	err := mpi.Run(*ranks, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			log.Printf("%s: %d^3 particles, %d^3 grid, %.0f Mpc/h box, %d ranks, z=%.1f→%.1f in %d steps ×%d sub-cycles",
				kind, *np, s.Cfg.NGrid, *box, *ranks, *zInit, *zFinal, *steps, *nc)
			log.Printf("particle mass %.3e Msun/h", s.ParticleMassMsun)
		}
		err = s.Run(func(step int, a float64) {
			if c.Rank() == 0 {
				log.Printf("step %3d/%d  a=%.4f  z=%6.2f", step, *steps, a, 1/a-1)
			}
		})
		if err != nil {
			panic(err)
		}

		ps := s.PowerSpectrum(*pkBins, true)
		halos := s.FindHalos(0.2, 10)
		nh := mpi.AllReduce(c, []int{len(halos)}, mpi.SumInt)
		stats := s.DensityStats()
		gc := s.GlobalCounters()
		if c.Rank() == 0 {
			fmt.Printf("\nfinal power spectrum (z=%.2f):\n%-10s %-12s %-12s %s\n",
				s.Z(), "k [h/Mpc]", "P(k)", "P_lin(k)", "modes")
			d := s.LP.Gfac.D(s.A)
			for i, k := range ps.K {
				fmt.Printf("%-10.4f %-12.4e %-12.4e %d\n", k, ps.P[i], d*d*s.LP.P(k), ps.NModes[i])
			}
			fmt.Printf("\nhalos (FOF b=0.2, ≥10 particles): %d\n", nh[0])
			fmt.Printf("density contrast: max=%.1f var=%.3f\n", stats.Max, stats.Variance)
			fmt.Printf("\nperformance: %.2e kernel interactions, %.2e model flops, wall %.1fs\n",
				float64(gc.KernelInteractions), gc.Flops(), time.Since(start).Seconds())
			for _, p := range s.Timers.Fractions() {
				fmt.Printf("  %-10s %5.1f%%\n", p.Name, 100*p.Fraction)
			}
		}
		if *snapPath != "" {
			// Each rank appends its suffix; rank 0 writes the base path.
			path := *snapPath
			if c.Rank() != 0 {
				path = fmt.Sprintf("%s.%d", *snapPath, c.Rank())
			}
			h := snapshot.Header{
				NGrid: uint32(s.Cfg.NGrid), BoxMpc: *box, A: s.A,
				OmegaM: cfg.Cosmo.OmegaM, Seed: *seed,
			}
			if err := snapshot.SaveFile(path, h, &s.Dom.Active); err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				log.Printf("snapshot written to %s (+ per-rank suffixes)", path)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = os.Stdout
}

func orInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
