// Command haccsim runs a full HACC simulation from command-line flags,
// reporting per-step progress, the final power spectrum, the halo mass
// function, and the performance summary; optionally it writes particle
// snapshots and cadenced checkpoints, and resumes interrupted runs.
//
// Example:
//
//	haccsim -ranks 8 -np 64 -box 250 -zinit 50 -zfinal 0 -steps 24 \
//	        -solver tree -snap final.hacc -ckpt-dir ckpt -ckpt-every 4
//
// An interrupted run resumes from its newest checkpoint (the physics
// configuration is stored inside the checkpoint; only output/threading
// flags may be combined with -restart):
//
//	haccsim -restart ckpt
//
// With -max-restarts the run is supervised: crashes, detected hangs, and
// corrupt checkpoints tear the world down, quarantine any damaged
// checkpoint, and resume from the newest restorable one with exponential
// backoff. -fault arms the deterministic fault injector, which is how the
// recovery path is exercised on demand:
//
//	haccsim -np 32 -steps 8 -ckpt-dir ckpt -ckpt-every 2 \
//	        -max-restarts 3 -fault "kill rank 2 at step 5"
//
// Late-time load balancing: -rebalance arms cost-driven domain rebalancing
// (slab cuts follow the measured work distribution), -steal turns on
// bitwise-neutral intra-rank leaf stealing, and -ic halo generates the
// deliberately clustered stress workload:
//
//	haccsim -ranks 8 -np 24 -box 192 -zinit 3 -zfinal 1 -steps 6 \
//	        -ic halo -rebalance 1.1 -steal
//
// Multi-process execution: -par N spawns N OS processes, one rank each,
// connected through the mpi wire transport (-transport tcp|unix|auto; rank 0
// doubles as the rendezvous point). The parent supervises the worker
// processes: a dead or wedged rank tears the world down and, with
// checkpoints configured, the world restarts from the newest restorable one
// — the same recovery loop as the in-process supervisor, across a real
// process boundary:
//
//	haccsim -par 4 -transport tcp -np 32 -steps 8 \
//	        -ckpt-dir ckpt -ckpt-every 2 -max-restarts 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hacc/internal/core"
	"hacc/internal/cosmology"
	"hacc/internal/fault"
	"hacc/internal/machine"
	"hacc/internal/mpi"
)

// physicsFlags are rejected alongside -restart: the checkpoint itself
// defines the physics, and core.Restore enforces the same rule through the
// config fingerprint — this check just fails earlier, with a clearer
// message, before a world is spun up.
var physicsFlags = map[string]bool{
	"np": true, "ng": true, "box": true, "zinit": true, "zfinal": true,
	"steps": true, "nc": true, "seed": true, "solver": true,
	"transfer": true, "fixed": true, "ic": true,
	"rebalance": true, "rebalance-min-steps": true,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("haccsim: ")
	var (
		ranks       = flag.Int("ranks", 4, "simulated MPI ranks")
		np          = flag.Int("np", 32, "particles per dimension")
		ng          = flag.Int("ng", 0, "PM grid per dimension (default: np)")
		box         = flag.Float64("box", 150, "box side in Mpc/h")
		zInit       = flag.Float64("zinit", 24, "initial redshift")
		zFinal      = flag.Float64("zfinal", 0, "final redshift")
		steps       = flag.Int("steps", 12, "full long-range steps")
		nc          = flag.Int("nc", 5, "short-range sub-cycles per step")
		seed        = flag.Uint64("seed", 42, "random seed")
		solver      = flag.String("solver", "tree", "short-range solver: tree|p3m|pm")
		transfer    = flag.String("transfer", "eh-nowiggle", "transfer function: eh|eh-nowiggle|bbks")
		threads     = flag.Int("threads", 2, "kernel threads per rank")
		fixed       = flag.Bool("fixed", false, "fixed-amplitude initial conditions")
		snapPath    = flag.String("snap", "", "write a final snapshot to this path")
		pkBins      = flag.Int("pkbins", 16, "power spectrum bins")
		ckptDir     = flag.String("ckpt-dir", "", "write cadenced checkpoints under this directory")
		ckptEvery   = flag.Int("ckpt-every", 0, "checkpoint after every Nth full step (requires -ckpt-dir)")
		restart     = flag.String("restart", "", "resume from a checkpoint (a step directory or a -ckpt-dir root)")
		maxRestarts = flag.Int("max-restarts", -1, "supervise the run, restarting from the newest checkpoint up to N times (-1 = unsupervised)")
		opTimeout   = flag.Duration("op-timeout", 0, "hang detection: per-operation timeout under -max-restarts (0 = off)")
		deadline    = flag.Duration("deadline", 0, "wall-clock bound per supervised attempt (0 = none)")
		faultSpec   = flag.String("fault", "", `arm the fault injector, e.g. "kill rank 2 at step 3; fail every 5th fsync"`)
		icKind      = flag.String("ic", "zeldovich", "initial conditions: zeldovich|halo (clustered load-balancing stress)")
		rebalance   = flag.Float64("rebalance", 0, "cost-driven rebalancing: smoothed max/mean work threshold > 1 (0 = static decomposition)")
		rebMinSteps = flag.Int("rebalance-min-steps", 0, "minimum steps between rebalances (default 2)")
		steal       = flag.Bool("steal", false, "deque-based intra-rank leaf stealing for tree walks (bitwise-neutral)")
		par         = flag.Int("par", 0, "spawn N OS processes, one wire-transport rank each (0 = in-process goroutine ranks)")
		transport   = flag.String("transport", "auto", "wire socket family under -par: tcp|unix|auto")
		traceDir    = flag.String("trace", "", "write per-rank Chrome trace timelines and JSONL run journals under this directory")
		debugAddr   = flag.String("debug-addr", "", `serve pprof, metrics, and the journal tail over HTTP on rank 0 (e.g. "127.0.0.1:6060")`)
	)
	flag.Parse()
	if err := validateFlags(*ranks, *np, *ng, *box, *zInit, *zFinal, *steps, *nc,
		*threads, *pkBins, *solver, *transfer, *ckptDir, *ckptEvery, *restart,
		*maxRestarts, *opTimeout, *deadline, *faultSpec, *par, *transport); err != nil {
		log.Fatal(err)
	}
	if *par > 0 && !mpi.WireChild() {
		*ranks = *par
	}

	// explicit records which flags the user actually set, so a restart
	// overrides only what was asked for and inherits the rest from the
	// checkpointed config.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var kind core.SolverKind
	switch *solver {
	case "tree":
		kind = core.PPTreePM
	case "p3m":
		kind = core.P3M
	case "pm":
		kind = core.PMOnly
	}

	var stepDir string
	var cfg core.Config
	if *restart != "" {
		dir, err := core.ResolveCheckpoint(*restart)
		if err != nil {
			log.Fatalf("-restart %s: %v", *restart, err)
		}
		info, err := core.ReadCheckpointInfo(dir)
		if err != nil {
			log.Fatalf("-restart %s: %v", *restart, err)
		}
		stepDir = dir
		cfg = info.Cfg
		// Unless the user explicitly asked for a different world size,
		// resume at the writing rank count — that is the bitwise-exact
		// restart path; a changed -ranks goes through geometric
		// reassignment instead.
		if !explicit["ranks"] {
			*ranks = info.NRanks
		}
		if explicit["ckpt-dir"] || explicit["ckpt-every"] {
			cfg.CheckpointDir = *ckptDir
			cfg.CheckpointEvery = *ckptEvery
		}
		// Observability knobs are output-side, never fingerprinted: a
		// restart may arm them even though the physics comes from the
		// checkpoint.
		if explicit["trace"] || explicit["debug-addr"] {
			cfg.TraceDir = *traceDir
			cfg.DebugAddr = *debugAddr
		}
		log.Printf("resuming from %s: step %d/%d, a=%.4f, %d particles (written at %d ranks)",
			dir, info.StepIndex, cfg.Steps, info.A, info.NGlobal, info.NRanks)
	} else {
		cfg = core.Config{
			NGrid: orInt(*ng, *np), NParticles: *np, BoxMpc: *box,
			Cosmo: cosmology.Default(), Transfer: *transfer,
			ZInit: *zInit, ZFinal: *zFinal, Steps: *steps, SubCycles: *nc,
			Seed: *seed, FixedAmp: *fixed, Solver: kind, Threads: *threads,
			CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
			ICKind: *icKind, StealWalks: *steal,
			RebalanceThreshold: *rebalance, RebalanceMinSteps: *rebMinSteps,
			TraceDir: *traceDir, DebugAddr: *debugAddr,
		}
	}
	mutate := func(c *core.Config) {
		// Only explicitly-set neutral knobs override the checkpoint.
		if explicit["threads"] {
			c.Threads = *threads
		}
		if explicit["steal"] {
			c.StealWalks = *steal
		}
		if explicit["ckpt-dir"] || explicit["ckpt-every"] {
			c.CheckpointDir = *ckptDir
			c.CheckpointEvery = *ckptEvery
		}
		if explicit["trace"] {
			c.TraceDir = *traceDir
		}
		if explicit["debug-addr"] {
			c.DebugAddr = *debugAddr
		}
	}

	if *faultSpec != "" && *par == 0 && !mpi.WireChild() {
		// Under -par the spec travels to the rank processes via argv; the
		// parent itself runs no physics.
		fault.Arm(fault.MustParse(*faultSpec))
		defer fault.Disarm()
		log.Printf("fault injector armed: %s", *faultSpec)
	}

	start := time.Now()
	if mpi.WireChild() {
		// This process is one rank of a wire world spawned by -par (or
		// haccmux): join via the env contract and exit through the
		// supervisor's exit-code protocol.
		if *faultSpec != "" && os.Getenv(core.EnvResume) == "" {
			// Injected faults fire on the first attempt only; a resumed
			// attempt must run clean or recovery would loop forever.
			fault.Arm(fault.MustParse(*faultSpec))
			log.Printf("fault injector armed: %s", *faultSpec)
		}
		runWireChild(cfg, stepDir, mutate, *opTimeout, *pkBins, *snapPath, start)
		return // unreachable: runWireChild exits
	}
	if *par > 0 {
		runProcParent(*par, *transport, *maxRestarts, *deadline, *ckptDir, stepDir, cfg.TraceDir)
		return
	}
	if *maxRestarts >= 0 {
		// Supervised: the supervisor owns world construction and recovery.
		opts := core.SupervisorOptions{
			Ranks:       *ranks,
			MaxRestarts: *maxRestarts,
			OpTimeout:   *opTimeout,
			Deadline:    *deadline,
			ResumeFrom:  stepDir,
			Mutate:      mutate,
			Log:         func(line string) { log.Print(line) },
		}
		if *maxRestarts == 0 {
			opts.MaxRestarts = -1 // supervised teardown/diagnosis, no retry
		}
		rep, err := core.RunSupervised(cfg, opts, func(s *core.Simulation) error {
			return drive(s, *ranks, *pkBins, *snapPath, start)
		})
		for _, inc := range rep.Incidents {
			log.Printf("incident: attempt %d failed (%s); resumed from %q after %v",
				inc.Attempt, inc.Class, inc.Resume, inc.Backoff)
		}
		if err != nil {
			log.Fatal(err)
		}
		if rep.Restarts > 0 {
			log.Printf("run completed after %d restart(s)", rep.Restarts)
		}
		return
	}

	err := mpi.Run(*ranks, func(c *mpi.Comm) {
		var s *core.Simulation
		var err error
		if stepDir != "" {
			s, err = core.Restore(c, stepDir, mutate)
		} else {
			s, err = core.New(c, cfg)
		}
		if err != nil {
			panic(err)
		}
		if err := drive(s, *ranks, *pkBins, *snapPath, start); err != nil {
			panic(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

// runWireChild is the rank-process body: join the wire world from the
// launcher environment, build or restore the Simulation, drive the shared
// run body, and exit through the supervisor's exit-code protocol so the
// parent can classify any failure without parsing output.
func runWireChild(cfg core.Config, stepDir string, mutate func(*core.Config),
	opTimeout time.Duration, pkBins int, snapPath string, start time.Time) {
	// A recovery attempt resumes from the checkpoint the supervisor picked,
	// overriding any -restart the original command line carried.
	if dir := os.Getenv(core.EnvResume); dir != "" {
		stepDir = dir
	}
	w, err := mpi.ConnectEnv()
	if err != nil {
		log.Print(err)
		os.Exit(core.ExitPanic)
	}
	if opTimeout > 0 {
		w.SetTimeout(opTimeout)
	}
	err = w.Run(func(c *mpi.Comm) {
		var s *core.Simulation
		var err error
		if stepDir != "" {
			s, err = core.Restore(c, stepDir, mutate)
			if err != nil {
				panic(core.MarkRestoreFailure(stepDir, err))
			}
		} else {
			s, err = core.New(c, cfg)
			if err != nil {
				panic(err)
			}
		}
		if err := drive(s, c.Size(), pkBins, snapPath, start); err != nil {
			panic(err)
		}
	})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Printf("rank %s: %v", os.Getenv(mpi.EnvRank), err)
	}
	os.Exit(core.ExitCodeFor(err))
}

// runProcParent spawns and supervises par rank processes (re-execing this
// binary with the identical command line; the children detect wire mode from
// the environment). Failures recover from the newest restorable checkpoint,
// exactly as the in-process supervisor does.
func runProcParent(par int, transport string, maxRestarts int, deadline time.Duration,
	ckptDir, stepDir, traceDir string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("-par: cannot re-exec: %v", err)
	}
	// Report the modeled torus placement: ranks map row-major onto the BG/Q
	// rack wiring, the layout the paper's comm-pattern estimates assume.
	torus := machine.RackTorus()
	for r := 0; r < par; r++ {
		log.Printf("torus map: rank %d -> node %v", r, torus.Coords(r))
	}
	restarts := maxRestarts
	if restarts <= 0 {
		restarts = -1 // supervised spawn + classification, no retry
	}
	rep, err := core.SuperviseProcs(core.ProcOptions{
		Ranks:          par,
		Transport:      transport,
		Command:        append([]string{exe}, os.Args[1:]...),
		MaxRestarts:    restarts,
		AttemptTimeout: deadline,
		CheckpointRoot: ckptDir,
		TraceDir:       traceDir,
		ResumeFrom:     stepDir,
		Log:            func(line string) { log.Print(line) },
	})
	for _, inc := range rep.Incidents {
		log.Printf("incident: attempt %d failed (%s); resumed from %q after %v",
			inc.Attempt, inc.Class, inc.Resume, inc.Backoff)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rep.Restarts > 0 {
		log.Printf("run completed after %d restart(s)", rep.Restarts)
	}
}

// drive runs the remaining schedule on one rank's Simulation and reports
// the final science and performance summary. It is the body shared by the
// plain and supervised paths, so a restarted attempt replays exactly the
// same code.
func drive(s *core.Simulation, ranks, pkBins int, snapPath string, start time.Time) error {
	c := s.Comm
	nsteps := s.Cfg.Steps
	if c.Rank() == 0 {
		log.Printf("%s: %d^3 particles, %d^3 grid, %.0f Mpc/h box, %d ranks, z=%.1f→%.1f in %d steps ×%d sub-cycles",
			s.Cfg.Solver, s.Cfg.NParticles, s.Cfg.NGrid, s.Cfg.BoxMpc, ranks,
			s.Cfg.ZInit, s.Cfg.ZFinal, nsteps, s.Cfg.SubCycles)
		log.Printf("particle mass %.3e Msun/h", s.ParticleMassMsun)
	}
	err := s.Run(func(step int, a float64) {
		if c.Rank() == 0 {
			log.Printf("step %3d/%d  a=%.4f  z=%6.2f", step, nsteps, a, 1/a-1)
		}
	})
	if err != nil {
		return err
	}

	ps := s.PowerSpectrum(pkBins, true)
	halos := s.FindHalos(0.2, 10)
	nh := mpi.AllReduce(c, []int{len(halos)}, mpi.SumInt)
	stats := s.DensityStats()
	gc := s.GlobalCounters()
	lat := mpi.WireLatencySummary(c) // collective: before the rank-0 guard
	if c.Rank() == 0 {
		fmt.Printf("\nfinal power spectrum (z=%.2f):\n%-10s %-12s %-12s %s\n",
			s.Z(), "k [h/Mpc]", "P(k)", "P_lin(k)", "modes")
		d := s.LP.Gfac.D(s.A)
		for i, k := range ps.K {
			fmt.Printf("%-10.4f %-12.4e %-12.4e %d\n", k, ps.P[i], d*d*s.LP.P(k), ps.NModes[i])
		}
		fmt.Printf("\nhalos (FOF b=0.2, ≥10 particles): %d\n", nh[0])
		fmt.Printf("density contrast: max=%.1f var=%.3f\n", stats.Max, stats.Variance)
		fmt.Printf("\nperformance: %.2e kernel interactions, %.2e model flops, wall %.1fs\n",
			float64(gc.KernelInteractions), gc.Flops(), time.Since(start).Seconds())
		// One consistent counters block every run, zero or not, so scripts
		// and eyeballs always find the same lines in the same place.
		fmt.Printf("resilience: %d restarts, %d checkpoint retries, %d quarantined\n",
			gc.Restarts, gc.CkptRetries, gc.CkptQuarantined)
		fmt.Printf("balance: %d rebalances, %d stolen leaves, final max/mean %.2f\n",
			gc.Rebalances, gc.StolenLeaves, s.Imbalance())
		if gc.MsgsSent > 0 {
			fmt.Printf("communication: %d msgs, %.1f MB payload", gc.MsgsSent, float64(gc.BytesSent)/(1<<20))
			if gc.WireMsgs > 0 {
				fmt.Printf(" (%d over the wire: %.1f MB + %.1f MB framing)",
					gc.WireMsgs, float64(gc.WireBytes)/(1<<20),
					float64(gc.WireMsgs*mpi.FrameHeaderSize)/(1<<20))
			}
			fmt.Println()
		}
		if lat.Count > 0 {
			fmt.Printf("wire latency: %d frames, p50 %v, p99 %v (send-stamp to match)\n",
				lat.Count, time.Duration(lat.P50Ns), time.Duration(lat.P99Ns))
		}
		if dir := s.Cfg.TraceDir; dir != "" {
			log.Printf("trace timelines and journals under %s", dir)
		}
		for _, p := range s.Timers.Fractions() {
			fmt.Printf("  %-10s %5.1f%%\n", p.Name, 100*p.Fraction)
		}
	}
	if snapPath != "" {
		// Each rank appends its suffix; rank 0 writes the base path.
		path := snapPath
		if c.Rank() != 0 {
			path = fmt.Sprintf("%s.%d", snapPath, c.Rank())
		}
		if err := s.SaveSnapshot(path); err != nil {
			return err
		}
		if c.Rank() == 0 {
			log.Printf("snapshot written to %s (+ per-rank suffixes)", path)
		}
	}
	return nil
}

// validateFlags rejects nonsensical flag combinations with one-line errors
// before any world is spun up, instead of panicking ranks mid-run.
func validateFlags(ranks, np, ng int, box, zInit, zFinal float64, steps, nc,
	threads, pkBins int, solver, transfer, ckptDir string, ckptEvery int, restart string,
	maxRestarts int, opTimeout, deadline time.Duration, faultSpec string,
	par int, transport string) error {
	switch {
	case ranks < 1:
		return fmt.Errorf("-ranks %d must be ≥1", ranks)
	case par < 0:
		return fmt.Errorf("-par %d must be ≥0 (0 = in-process ranks)", par)
	case threads < 1:
		return fmt.Errorf("-threads %d must be ≥1", threads)
	case pkBins < 1:
		return fmt.Errorf("-pkbins %d must be ≥1", pkBins)
	case ckptEvery < 0:
		return fmt.Errorf("-ckpt-every %d must be ≥0 (0 disables checkpoints)", ckptEvery)
	case ckptEvery > 0 && ckptDir == "":
		return fmt.Errorf("-ckpt-every %d needs -ckpt-dir", ckptEvery)
	case ckptEvery == 0 && ckptDir != "":
		return fmt.Errorf("-ckpt-dir %s needs -ckpt-every ≥1", ckptDir)
	case maxRestarts < -1:
		return fmt.Errorf("-max-restarts %d must be ≥-1 (-1 = unsupervised)", maxRestarts)
	case maxRestarts < 0 && par == 0 && opTimeout != 0:
		return fmt.Errorf("-op-timeout needs -max-restarts or -par (hang detection is a supervisor feature)")
	case maxRestarts < 0 && par == 0 && deadline != 0:
		return fmt.Errorf("-deadline needs -max-restarts or -par")
	case opTimeout < 0 || deadline < 0:
		return fmt.Errorf("timeouts must be ≥0")
	}
	switch transport {
	case "tcp", "unix", "auto":
	default:
		return fmt.Errorf("unknown -transport %q (want tcp|unix|auto)", transport)
	}
	if faultSpec != "" {
		if _, err := fault.Parse(faultSpec); err != nil {
			return fmt.Errorf("-fault: %v", err)
		}
	}
	switch solver {
	case "tree", "p3m", "pm":
	default:
		return fmt.Errorf("unknown -solver %q (want tree|p3m|pm)", solver)
	}
	switch transfer {
	case "eh", "eh-nowiggle", "bbks":
	default:
		return fmt.Errorf("unknown -transfer %q (want eh|eh-nowiggle|bbks)", transfer)
	}
	if restart != "" {
		var conflict string
		flag.Visit(func(f *flag.Flag) {
			if physicsFlags[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-restart takes the physics from the checkpoint; drop -%s (only output/threading flags may be combined)", conflict)
		}
		return nil // problem-definition flags are unused on restart
	}
	switch {
	case np < 2:
		return fmt.Errorf("-np %d must be ≥2", np)
	case ng < 0:
		return fmt.Errorf("-ng %d must be ≥0 (0 means -np)", ng)
	case box <= 0:
		return fmt.Errorf("-box %g must be positive", box)
	case zInit <= zFinal:
		return fmt.Errorf("-zinit %g must exceed -zfinal %g", zInit, zFinal)
	case steps < 1:
		return fmt.Errorf("-steps %d must be ≥1", steps)
	case nc < 1:
		return fmt.Errorf("-nc %d must be ≥1", nc)
	}
	return nil
}

func orInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
