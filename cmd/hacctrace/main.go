// Command hacctrace validates and summarizes an observability directory
// produced by haccsim -trace: the per-rank Chrome trace timelines
// (trace.rNNN.json), the per-rank run journals (journal.rNNN.jsonl), and the
// supervisor incident journal, if any. It is the CI smoke gate — a trace dir
// that loads here loads in chrome://tracing — and a quick human summary:
//
//	hacctrace out/trace
//
// Exit status is non-zero when any file is missing, unparseable, or
// malformed (an event without a name, a pid that does not match its rank's
// file, a journal line that is not valid JSON).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"
)

type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type chromeTrace struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	Dropped     int64        `json:"droppedSpans"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hacctrace: ")
	quiet := flag.Bool("q", false, "validate only; print nothing but errors")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: hacctrace [-q] <trace-dir>")
	}
	dir := flag.Arg(0)

	traces, err := filepath.Glob(filepath.Join(dir, "trace.r*.json"))
	if err != nil || len(traces) == 0 {
		log.Fatalf("no trace.r*.json files under %s", dir)
	}
	sort.Strings(traces)
	ok := true
	for _, path := range traces {
		// The rank comes from the filename, not the listing index, so a
		// missing rank's file cannot shift every later pid check.
		var rank int
		if _, err := fmt.Sscanf(filepath.Base(path), "trace.r%d.json", &rank); err != nil {
			log.Printf("%s: unrecognized trace filename", path)
			ok = false
			continue
		}
		if err := checkTrace(path, rank, *quiet); err != nil {
			log.Printf("%s: %v", path, err)
			ok = false
		}
	}
	journals, _ := filepath.Glob(filepath.Join(dir, "journal.*.jsonl"))
	sort.Strings(journals)
	for _, path := range journals {
		if err := checkJournal(path, *quiet); err != nil {
			log.Printf("%s: %v", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("%d trace timeline(s), %d journal(s): all valid\n", len(traces), len(journals))
	}
}

// checkTrace validates one rank's timeline: valid JSON, the Chrome
// trace-event container shape, a name and known phase on every event, and
// pid agreement with the file's rank.
func checkTrace(path string, rank int, quiet bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(raw) {
		return fmt.Errorf("not valid JSON")
	}
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		return err
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("no events")
	}
	var spans int
	var total float64
	byName := map[string]float64{}
	for i, ev := range tr.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if ev.Ph != "X" && ev.Ph != "M" {
			return fmt.Errorf("event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Pid != rank {
			return fmt.Errorf("event %d (%s) has pid %d, want rank %d", i, ev.Name, ev.Pid, rank)
		}
		if ev.Ph == "X" {
			if ev.Dur < 0 {
				return fmt.Errorf("event %d (%s) has negative duration", i, ev.Name)
			}
			spans++
			total += ev.Dur
			byName[ev.Name] += ev.Dur
		}
	}
	if !quiet {
		fmt.Printf("%s: %d spans, %.1fms total", filepath.Base(path), spans, total/1e3)
		if tr.Dropped > 0 {
			fmt.Printf(" (%d dropped)", tr.Dropped)
		}
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return byName[names[i]] > byName[names[j]] })
		for i, n := range names {
			if i == 3 {
				break
			}
			fmt.Printf("  %s %v", n, time.Duration(byName[n]*1e3).Round(time.Microsecond))
		}
		fmt.Println()
	}
	return nil
}

// checkJournal validates one journal: every line is a JSON object with a
// kind field.
func checkJournal(path string, quiet bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	line := 0
	for len(raw) > 0 {
		nl := -1
		for i, b := range raw {
			if b == '\n' {
				nl = i
				break
			}
		}
		var rec []byte
		if nl < 0 {
			rec, raw = raw, nil
		} else {
			rec, raw = raw[:nl], raw[nl+1:]
		}
		line++
		if len(rec) == 0 {
			continue
		}
		var v struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(rec, &v); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if v.Kind == "" {
			return fmt.Errorf("line %d: record has no kind", line)
		}
		kinds[v.Kind]++
	}
	if !quiet {
		fmt.Printf("%s:", filepath.Base(path))
		names := make([]string, 0, len(kinds))
		for n := range kinds {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf(" %d %s", kinds[n], n)
		}
		fmt.Println()
	}
	return nil
}
