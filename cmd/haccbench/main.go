// Command haccbench regenerates the paper's tables and figures on demand.
//
// Usage:
//
//	haccbench fft      [-n 64] [-maxranks 16]         Table I
//	haccbench kernel   [-threads 8]                   Fig. 5
//	haccbench poisson  [-maxranks 8]                  Fig. 6
//	haccbench weak     [-steps 1]                     Table II / Fig. 7
//	haccbench strong   [-np 32] [-maxranks 16]        Table III / Fig. 8
//	haccbench evolve   [-np 32] [-steps 10]           Fig. 9
//	haccbench power    [-np 32] [-steps 12]           Fig. 10
//	haccbench halos    [-np 32] [-steps 12]           Fig. 11 / §V
//	haccbench all                                     everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hacc/internal/bench"
	"hacc/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Int("n", 64, "FFT grid size per dimension")
	np := fs.Int("np", 32, "particles per dimension")
	maxRanks := fs.Int("maxranks", 16, "largest rank count in sweeps")
	steps := fs.Int("steps", 0, "number of full steps (0 = experiment default)")
	threads := fs.Int("threads", 8, "max threads in the kernel sweep")
	box := fs.Float64("box", 0, "box size in Mpc/h (0 = experiment default)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("\n===== %s =====\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s took %.1fs]\n", name, time.Since(start).Seconds())
	}

	dispatch := map[string]func() error{
		"fft":     func() error { return fftExp(*n, *maxRanks) },
		"kernel":  func() error { return kernelExp(*threads) },
		"poisson": func() error { return poissonExp(*maxRanks) },
		"weak":    func() error { return weakExp(orDefault(*steps, 1)) },
		"strong":  func() error { return strongExp(*np, *maxRanks) },
		"evolve":  func() error { return evolveExp(*np, orDefault(*steps, 10), orDefaultF(*box, 120)) },
		"power":   func() error { return powerExp(*np, orDefault(*steps, 12), orDefaultF(*box, 150)) },
		"halos":   func() error { return halosExp(*np, orDefault(*steps, 12), orDefaultF(*box, 100)) },
	}
	if cmd == "all" {
		for _, name := range []string{"fft", "kernel", "poisson", "weak", "strong", "evolve", "power", "halos"} {
			run(name, dispatch[name])
		}
		return
	}
	fn, ok := dispatch[cmd]
	if !ok {
		usage()
		os.Exit(2)
	}
	run(cmd, fn)
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func orDefaultF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: haccbench {fft|kernel|poisson|weak|strong|evolve|power|halos|all} [flags]")
}

func fftExp(n, maxRanks int) error {
	fmt.Println("Table I: distributed FFT scaling (pencil + slab)")
	var rows []bench.FFTResult
	for r := 1; r <= maxRanks; r *= 2 {
		row, err := bench.RunFFT(n, r, true, 2)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		// The r2c production path rides along at each rank count.
		rr, err := bench.RunFFTReal(n, r, 2)
		if err != nil {
			return err
		}
		rows = append(rows, rr)
	}
	// Weak-scaling block with non-power-of-two sizes (paper's 9216³ etc.).
	weak := []struct{ n, ranks int }{{32, 1}, {40, 2}, {48, 4}, {64, 8}}
	for _, tc := range weak {
		if tc.ranks > maxRanks {
			break
		}
		row, err := bench.RunFFT(tc.n, tc.ranks, true, 2)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	bench.PrintFFTTable(os.Stdout, rows)
	return nil
}

func kernelExp(maxThreads int) error {
	fmt.Println("Fig. 5: short-range force kernel throughput")
	var rows []bench.KernelResult
	for t := 1; t <= maxThreads; t *= 2 {
		for _, list := range []int{64, 128, 256, 512, 1024, 2560, 5000} {
			rows = append(rows, bench.RunKernel(list, 64, t, 50*time.Millisecond))
		}
	}
	bench.PrintKernelTable(os.Stdout, rows)
	return nil
}

func poissonExp(maxRanks int) error {
	fmt.Println("Fig. 6: Poisson solver weak scaling, slab vs pencil")
	var rows []bench.PoissonResult
	cases := []struct{ n, ranks int }{{32, 1}, {40, 2}, {48, 4}, {64, 8}, {80, 16}}
	for _, tc := range cases {
		if tc.ranks > maxRanks {
			break
		}
		for _, slab := range []bool{false, true} {
			row, err := bench.RunPoisson(tc.n, tc.ranks, slab, 1)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}
	bench.PrintPoissonTable(os.Stdout, rows)
	return nil
}

func weakExp(steps int) error {
	fmt.Println("Table II / Fig. 7: full-code weak scaling (~4k particles/rank)")
	var rows []bench.FullResult
	cases := []struct{ ranks, np int }{{1, 16}, {2, 20}, {4, 26}, {8, 32}, {16, 40}}
	for _, tc := range cases {
		row, err := bench.RunFull(bench.FullOptions{
			Ranks: tc.ranks, NpPerDim: tc.np, Solver: core.PPTreePM,
			Steps: steps, SubCycles: 3,
		})
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	bench.PrintFullTable(os.Stdout, rows, 0)
	bench.PrintPhaseSplit(os.Stdout, rows[len(rows)-1])
	return nil
}

func strongExp(np, maxRanks int) error {
	fmt.Println("Table III / Fig. 8: full-code strong scaling")
	var rows []bench.FullResult
	for r := 1; r <= maxRanks; r *= 2 {
		row, err := bench.RunFull(bench.FullOptions{
			Ranks: r, NpPerDim: np, Solver: core.PPTreePM, Steps: 1, SubCycles: 3,
		})
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	bench.PrintFullTable(os.Stdout, rows, rows[0].MemMBPerRank)
	fmt.Print("overload fraction by rank count:")
	for _, r := range rows {
		fmt.Printf("  %d:%.2f", r.Ranks, r.OverloadFrac)
	}
	fmt.Println()
	return nil
}

func evolveExp(np, steps int, box float64) error {
	fmt.Println("Fig. 9: structure evolution vs wall-clock per step")
	r, err := bench.RunEvolution(4, np, box, steps, 24, 0.5)
	if err != nil {
		return err
	}
	bench.PrintEvolution(os.Stdout, r)
	return nil
}

func powerExp(np, steps int, box float64) error {
	fmt.Println("Fig. 10: power spectrum evolution")
	r, err := bench.RunPowerEvolution(4, np, box, steps, []float64{5.5, 3.0, 1.9, 0.9, 0.4, 0.0})
	if err != nil {
		return err
	}
	bench.PrintPowerEvolution(os.Stdout, r)
	return nil
}

func halosExp(np, steps int, box float64) error {
	fmt.Println("Fig. 11 / §V: halos, sub-halos, mass function")
	r, err := bench.RunHalos(4, np, box, steps, 0.5)
	if err != nil {
		return err
	}
	bench.PrintHalos(os.Stdout, r)
	return nil
}
