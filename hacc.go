// Package hacc is a from-scratch Go reproduction of HACC, the
// Hybrid/Hardware Accelerated Cosmology Code of Habib et al., "The Universe
// at Extreme Scale: Multi-Petaflop Sky Simulation on the BG/Q" (SC 2012,
// arXiv:1211.4864).
//
// The package re-exports the public surface of the framework. A minimal
// simulation looks like:
//
//	err := hacc.RunParallel(8, func(c *hacc.Comm) {
//		sim, err := hacc.NewSimulation(c, hacc.Config{
//			NGrid: 64, NParticles: 64, BoxMpc: 250,
//			ZInit: 50, ZFinal: 0, Steps: 20,
//			Solver: hacc.PPTreePM, Seed: 42,
//		})
//		if err != nil { panic(err) }
//		if err := sim.Run(nil); err != nil { panic(err) }
//		ps := sim.PowerSpectrum(32, true)
//		_ = ps
//	})
//
// Architecture (one package per subsystem, see DESIGN.md):
//
//   - internal/mpi        — in-process message-passing runtime (ranks are
//     goroutines; real collective algorithms)
//   - internal/fft        — mixed-radix + Bluestein complex FFT
//   - internal/pfft       — distributed slab/pencil 3-D FFT (paper §IV-A)
//   - internal/grid       — block-decomposed fields, ghost exchange, CIC
//   - internal/spectral   — filtered Poisson solver: eq. (5) filter,
//     6th-order influence function, Super-Lanczos gradients (§II)
//   - internal/domain     — SOA particles, migration, overloading (Fig. 4)
//   - internal/tree       — rank-local RCB tree, fat leaves (§III)
//   - internal/shortrange — f_SR(s) kernel, grid-force fit, P3M backend
//   - internal/timestep   — SKS symplectic sub-cycled stepper (eq. 6)
//   - internal/ic         — Zel'dovich Gaussian random field ICs
//   - internal/cosmology  — background, growth, transfer functions, σ8
//   - internal/analysis   — P(k), FOF halos, sub-halos, density statistics
//   - internal/gio        — self-describing CRC-protected parallel container
//     I/O (GenericIO-style)
//   - internal/snapshot   — particle/catalog/spectrum products on the
//     container format
//   - internal/machine    — flop accounting, BG/Q projection model
//   - internal/core       — the assembled framework, checkpoint/restart
package hacc

import (
	"hacc/internal/analysis"
	"hacc/internal/core"
	"hacc/internal/cosmology"
	"hacc/internal/fault"
	"hacc/internal/mpi"
)

// Comm is a communicator handle for one simulated MPI rank.
type Comm = mpi.Comm

// Config specifies a simulation; zero fields take defaults.
type Config = core.Config

// Simulation is a running HACC simulation (one rank's view).
type Simulation = core.Simulation

// SolverKind selects the short-range force backend.
type SolverKind = core.SolverKind

// Short-range backends: the BG/Q tree configuration, the Roadrunner P3M
// configuration, and the long-range-only mode.
const (
	PPTreePM = core.PPTreePM
	P3M      = core.P3M
	PMOnly   = core.PMOnly
)

// CosmologyParams specifies the background cosmological model.
type CosmologyParams = cosmology.Params

// PowerSpectrum is a binned P(k) measurement.
type PowerSpectrum = analysis.PowerSpectrum

// Halo is a friends-of-friends group.
type Halo = analysis.Halo

// RunParallel launches fn on n simulated MPI ranks and waits for all of
// them. Each rank must construct its Simulation collectively.
func RunParallel(n int, fn func(c *Comm)) error { return mpi.Run(n, fn) }

// NewSimulation builds a simulation on the calling rank (collective).
func NewSimulation(c *Comm, cfg Config) (*Simulation, error) { return core.New(c, cfg) }

// RestoreSimulation resumes a simulation from a checkpoint step directory
// (collective). The physics configuration comes from the checkpoint; mutate
// may adjust bitwise-neutral knobs only. See core.Restore.
func RestoreSimulation(c *Comm, dir string, mutate func(*Config)) (*Simulation, error) {
	return core.Restore(c, dir, mutate)
}

// ResolveCheckpoint accepts a checkpoint step directory or a cadenced
// checkpoint root and returns the newest restorable step directory.
func ResolveCheckpoint(path string) (string, error) { return core.ResolveCheckpoint(path) }

// DefaultCosmology returns the WMAP-7-like parameters of the paper's runs.
func DefaultCosmology() CosmologyParams { return cosmology.Default() }

// SupervisorOptions configures RunSupervised.
type SupervisorOptions = core.SupervisorOptions

// SupervisorReport is a supervised run's recovery log.
type SupervisorReport = core.Report

// Incident is one failed attempt in a supervised run's recovery log.
type Incident = core.Incident

// FailureClass is the supervisor's diagnosis of a failed attempt.
type FailureClass = core.FailureClass

// Failure classes a supervised attempt can be diagnosed with.
const (
	FailPanic             = core.FailPanic
	FailHang              = core.FailHang
	FailAbort             = core.FailAbort
	FailCorruptCheckpoint = core.FailCorruptCheckpoint
)

// RunSupervised runs body under the failure supervisor: crashes, hangs, and
// corrupt checkpoints are classified, damaged checkpoints quarantined, and
// the run resumed from the newest restorable checkpoint with exponential
// backoff, up to MaxRestarts. See core.RunSupervised.
func RunSupervised(cfg Config, opts SupervisorOptions, body func(*Simulation) error) (*SupervisorReport, error) {
	return core.RunSupervised(cfg, opts, body)
}

// ArmFaults installs a fault-injection plan parsed from a spec such as
// "kill rank 2 at step 3; fail every 5th fsync" (see internal/fault for the
// grammar). It returns a disarm function. Faulting is process-global and
// costs one atomic load per hook site when no plan is armed.
func ArmFaults(spec string) (disarm func(), err error) {
	p, err := fault.Parse(spec)
	if err != nil {
		return nil, err
	}
	fault.Arm(p)
	return fault.Disarm, nil
}
