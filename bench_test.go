// Benchmarks regenerating every table and figure of the paper's evaluation,
// scaled to a single machine (see DESIGN.md's per-experiment index). Each
// benchmark prints its table on the first iteration; ns/op measures the
// headline operation of the experiment.
package hacc_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"hacc/internal/bench"
	"hacc/internal/core"
	"hacc/internal/mpi"
)

var printOnce sync.Map

// once prints a table a single time per benchmark, regardless of b.N.
func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

// BenchmarkTableI_FFTStrongScaling reproduces the first block of Table I:
// a fixed-size FFT (scaled from 1024³ to 64³) over growing rank counts.
func BenchmarkTableI_FFTStrongScaling(b *testing.B) {
	var rows []bench.FFTResult
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		r, err := bench.RunFFT(64, ranks, true, 2)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, r)
		// The r2c production path rides along at each rank count.
		rr, err := bench.RunFFTReal(64, ranks, 2)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, rr)
	}
	once("table1s", func() {
		fmt.Println("\n=== Table I (strong scaling block, scaled: 1024^3 -> 64^3) ===")
		bench.PrintFFTTable(os.Stdout, rows)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFFT(64, 4, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_FFTWeakScaling reproduces the second/third blocks of
// Table I: near-constant grid per rank while ranks grow, non-power-of-two
// sizes included (the paper's 9216³ etc.).
func BenchmarkTableI_FFTWeakScaling(b *testing.B) {
	var rows []bench.FFTResult
	cases := []struct{ n, ranks int }{
		{32, 1}, {40, 2}, {48, 4}, {64, 8}, {80, 16},
	}
	for _, tc := range cases {
		r, err := bench.RunFFT(tc.n, tc.ranks, true, 2)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, r)
	}
	once("table1w", func() {
		fmt.Println("\n=== Table I (weak scaling blocks, ~const grid/rank, non-pow2 sizes) ===")
		bench.PrintFFTTable(os.Stdout, rows)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFFT(48, 4, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_KernelThreading reproduces Fig. 5: force-kernel throughput
// vs neighbor-list size for several thread counts; the paper's plateau at
// large lists and gain from threading should both appear.
func BenchmarkFig5_KernelThreading(b *testing.B) {
	var rows []bench.KernelResult
	for _, threads := range []int{1, 2, 4, 8} {
		for _, list := range []int{64, 256, 512, 1024, 2560, 5000} {
			rows = append(rows, bench.RunKernel(list, 64, threads, 30*time.Millisecond))
		}
	}
	once("fig5", func() {
		fmt.Println("\n=== Fig. 5 (kernel throughput vs list size × threads) ===")
		bench.PrintKernelTable(os.Stdout, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	var last bench.KernelResult
	for i := 0; i < b.N; i++ {
		last = bench.RunKernel(1024, 64, 4, 10*time.Millisecond)
	}
	b.ReportMetric(last.InteractionsSec, "interactions/s")
}

// BenchmarkFig6_PoissonWeakScaling reproduces Fig. 6: time per solve per
// point for the slab- and pencil-decomposed Poisson solver vs rank count.
func BenchmarkFig6_PoissonWeakScaling(b *testing.B) {
	var rows []bench.PoissonResult
	cases := []struct{ n, ranks int }{{32, 1}, {40, 2}, {48, 4}, {64, 8}}
	for _, tc := range cases {
		r, err := bench.RunPoisson(tc.n, tc.ranks, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, r)
		rs, err := bench.RunPoisson(tc.n, tc.ranks, true, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, rs)
	}
	once("fig6", func() {
		fmt.Println("\n=== Fig. 6 (Poisson solver weak scaling, slab vs pencil) ===")
		bench.PrintPoissonTable(os.Stdout, rows)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunPoisson(32, 4, false, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_WeakScaling reproduces Table II / Fig. 7: full code with
// fixed particles per rank; time/substep/particle should stay flat.
func BenchmarkTableII_WeakScaling(b *testing.B) {
	var rows []bench.FullResult
	cases := []struct {
		ranks, np int
	}{{1, 16}, {2, 20}, {4, 26}, {8, 32}}
	for _, tc := range cases {
		r, err := bench.RunFull(bench.FullOptions{
			Ranks: tc.ranks, NpPerDim: tc.np, Solver: core.PPTreePM,
			Steps: 1, SubCycles: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, r)
	}
	once("table2", func() {
		fmt.Println("\n=== Table II / Fig. 7 (full-code weak scaling, ~4k particles/rank) ===")
		bench.PrintFullTable(os.Stdout, rows, 0)
		bench.PrintPhaseSplit(os.Stdout, rows[len(rows)-1])
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFull(bench.FullOptions{
			Ranks: 4, NpPerDim: 26, Solver: core.PPTreePM, Steps: 1, SubCycles: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII_StrongScaling reproduces Table III / Fig. 8: a fixed
// 32³ problem over growing rank counts; near-ideal scaling that degrades as
// the overloaded fraction blows up (the paper's 16384-core regime).
func BenchmarkTableIII_StrongScaling(b *testing.B) {
	var rows []bench.FullResult
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		r, err := bench.RunFull(bench.FullOptions{
			Ranks: ranks, NpPerDim: 32, Solver: core.PPTreePM,
			Steps: 1, SubCycles: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, r)
	}
	once("table3", func() {
		fmt.Println("\n=== Table III / Fig. 8 (full-code strong scaling, 32^3 particles) ===")
		bench.PrintFullTable(os.Stdout, rows, rows[0].MemMBPerRank)
		fmt.Printf("overload fraction by rank count:")
		for _, r := range rows {
			fmt.Printf("  %d:%.2f", r.Ranks, r.OverloadFrac)
		}
		fmt.Println(" (cost of shrinking sub-volumes, §IV-C)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFull(bench.FullOptions{
			Ranks: 8, NpPerDim: 32, Solver: core.PPTreePM, Steps: 1, SubCycles: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_Evolution reproduces Fig. 9's operational claim: per-step
// wall-clock stays roughly constant while the density contrast grows by
// orders of magnitude.
func BenchmarkFig9_Evolution(b *testing.B) {
	r, err := bench.RunEvolution(4, 32, 120, 10, 24, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	once("fig9", func() {
		fmt.Println("\n=== Fig. 9 (structure evolution: wall-clock vs clustering) ===")
		bench.PrintEvolution(os.Stdout, r)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunEvolution(4, 24, 100, 4, 24, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_PowerSpectrum reproduces Fig. 10: P(k) at a ladder of
// redshifts, linear at low k and increasingly nonlinear at high k.
func BenchmarkFig10_PowerSpectrum(b *testing.B) {
	r, err := bench.RunPowerEvolution(4, 32, 150, 12, []float64{5.5, 3.0, 1.9, 0.9, 0.4, 0.0})
	if err != nil {
		b.Fatal(err)
	}
	once("fig10", func() {
		fmt.Println("\n=== Fig. 10 (power spectrum evolution; sim vs linear theory) ===")
		bench.PrintPowerEvolution(os.Stdout, r)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunPowerEvolution(2, 16, 100, 4, []float64{5.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_Halos reproduces Fig. 11 / §V: FOF halos, sub-halo
// decomposition of the largest, and the mass function against
// Sheth-Tormen and Press-Schechter.
func BenchmarkFig11_Halos(b *testing.B) {
	r, err := bench.RunHalos(4, 32, 100, 12, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	once("fig11", func() {
		fmt.Println("\n=== Fig. 11 / §V (halos, sub-halos, mass function) ===")
		bench.PrintHalos(os.Stdout, r)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunHalos(2, 16, 60, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// imbalanceResult captures one load-balancing run: the max/mean per-rank
// short-range work of the final (most clustered) step, plus balancer and
// stealing diagnostics.
type imbalanceResult struct {
	LastStepImb float64
	Rebalances  int64
	Stolen      int64
}

// runImbalance evolves the clustered halo IC on 8 ranks and measures the
// final step's per-rank work imbalance (kernel interactions + walk nodes,
// the deterministic stand-in for step time).
func runImbalance(rebalance bool) (imbalanceResult, error) {
	var res imbalanceResult
	// The schedule (z = 3 → 1 in 6 steps) and the clustered IC defaults are
	// matched: per-step drift stays within the ~1-cell overload margin, which
	// narrow rebalanced slabs require (see ic.ClusteredOptions.ScaleRad).
	// Threads is pinned (not left to the single-core default) so the steal
	// dispatch actually has workers to balance; both knobs are documented
	// bitwise-neutral, so the work counters compare exactly across runs.
	cfg := core.Config{
		NGrid: 24, NParticles: 24, BoxMpc: 8 * 24,
		ZInit: 3, ZFinal: 1, Steps: 6, SubCycles: 2,
		Solver: core.PPTreePM, Seed: 77, ICKind: "halo",
		Threads: 4,
	}
	if rebalance {
		cfg.RebalanceThreshold = 1.1
		cfg.RebalanceMinSteps = 1
		cfg.StealWalks = true
	}
	err := mpi.Run(8, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		var imb float64
		for s.StepIndex < cfg.Steps {
			prev := s.Counters.KernelInteractions + s.Counters.WalkNodes
			if err := s.Step(); err != nil {
				panic(err)
			}
			d := float64(s.Counters.KernelInteractions + s.Counters.WalkNodes - prev)
			work := mpi.AllGather(c, []float64{d})
			var max, sum float64
			for _, w := range work {
				if w > max {
					max = w
				}
				sum += w
			}
			imb = max / (sum / float64(len(work)))
		}
		stolen := mpi.AllReduce(c, []int64{s.Counters.StolenLeaves}, mpi.SumI64)
		if c.Rank() == 0 {
			res.LastStepImb = imb
			res.Rebalances = s.Counters.Rebalances
			res.Stolen = stolen[0]
		}
	})
	return res, err
}

// BenchmarkLoadImbalance is the late-time load-balancing acceptance
// experiment: the deliberately clustered IC (one deep Plummer halo) on 8
// ranks, static uniform decomposition vs cost-driven rebalancing + leaf
// stealing. The reported metric is the final step's max/mean per-rank work;
// the balancer must improve it ≥ 2×.
func BenchmarkLoadImbalance(b *testing.B) {
	static, err := runImbalance(false)
	if err != nil {
		b.Fatal(err)
	}
	balanced, err := runImbalance(true)
	if err != nil {
		b.Fatal(err)
	}
	if balanced.Rebalances == 0 {
		b.Fatal("balancer never fired on the clustered IC")
	}
	once("imbalance", func() {
		fmt.Println("\n=== Load imbalance (clustered halo IC, 8 ranks, final step) ===")
		fmt.Printf("static     max/mean work: %.2f\n", static.LastStepImb)
		fmt.Printf("rebalanced max/mean work: %.2f  (%d rebalances, %d stolen leaves)\n",
			balanced.LastStepImb, balanced.Rebalances, balanced.Stolen)
		fmt.Printf("improvement: %.1fx (acceptance: >= 2x)\n", static.LastStepImb/balanced.LastStepImb)
	})
	b.ReportMetric(static.LastStepImb, "static_max/mean")
	b.ReportMetric(balanced.LastStepImb, "balanced_max/mean")
	b.ReportMetric(static.LastStepImb/balanced.LastStepImb, "improvement_x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runImbalance(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_LeafSize sweeps the RCB fat-leaf capacity, the paper's
// walk-minimization trade-off (§III).
func BenchmarkAblation_LeafSize(b *testing.B) {
	for _, leaf := range []int{8, 24, 64, 128, 256} {
		b.Run(fmt.Sprintf("leaf%d", leaf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunFull(bench.FullOptions{
					Ranks: 2, NpPerDim: 24, Solver: core.PPTreePM,
					Steps: 1, SubCycles: 3, LeafSize: leaf,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SolverBackends compares the PPTreePM and P3M backends
// on the same problem (paper §II: interchangeable short-range solvers).
func BenchmarkAblation_SolverBackends(b *testing.B) {
	for _, s := range []core.SolverKind{core.PPTreePM, core.P3M, core.PMOnly} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunFull(bench.FullOptions{
					Ranks: 2, NpPerDim: 24, Solver: s, Steps: 1, SubCycles: 3,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MultiTree compares the single-tree default to the §VI
// multi-tree (forest) configuration.
func BenchmarkAblation_MultiTree(b *testing.B) {
	for _, nTrees := range []int{1, 2, 4, 8} {
		nTrees := nTrees
		b.Run(fmt.Sprintf("trees%d", nTrees), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := bench.RunFullWithConfig(bench.FullOptions{
					Ranks: 1, NpPerDim: 32, Solver: core.PPTreePM,
					Steps: 1, SubCycles: 3, Threads: 8, LeafSize: 64,
				}, func(c *core.Config) { c.NTrees = nTrees })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Threads sweeps intra-rank threading of the full code on
// the Table II configuration (4 ranks, 26³, 3 sub-cycles): the fully-
// threaded pipeline (§VI) should show wall-clock gains beyond one thread.
func BenchmarkAblation_Threads(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunFull(bench.FullOptions{
					Ranks: 4, NpPerDim: 26, Solver: core.PPTreePM,
					Steps: 1, SubCycles: 3, Threads: threads,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Overload sweeps the overload shell width: wider shells
// cost memory and redundant work but tolerate sparser refreshes (§II).
func BenchmarkAblation_Overload(b *testing.B) {
	for _, ov := range []float64{3.5, 4, 5, 6} {
		b.Run(fmt.Sprintf("ov%.1f", ov), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunFullWithConfig(bench.FullOptions{
					Ranks: 4, NpPerDim: 24, Solver: core.PPTreePM,
					Steps: 1, SubCycles: 3,
				}, func(c *core.Config) { c.Overload = ov })
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(r.OverloadFrac, "overload_frac")
					b.ReportMetric(r.MemMBPerRank, "MB/rank")
				}
			}
		})
	}
}

// BenchmarkAblation_Filter compares the HACC spectral filter against the
// conventional deconvolved PM and the bare PM (§II, eq. 5): the filter's
// run-time cost is nil — the point of the ablation is the accuracy table
// printed by TestFilterReducesAnisotropy.
func BenchmarkAblation_Filter(b *testing.B) {
	for _, mode := range []string{"filter", "bare"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := bench.RunFullWithConfig(bench.FullOptions{
					Ranks: 2, NpPerDim: 24, Solver: core.PMOnly,
					Steps: 1, SubCycles: 2,
				}, func(c *core.Config) { c.DisableFilter = mode == "bare" })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
