module hacc

go 1.24
