// Chaos: demonstrate the fault-injection framework and the self-healing
// supervisor end to end. A reference run establishes the oracle P(k); then
// the same problem runs under hacc.RunSupervised with an armed fault plan
// that kills a rank mid-schedule — the supervisor classifies the crash,
// resumes from the newest checkpoint, and finishes with a power spectrum
// bitwise identical to the uninterrupted run. A second supervised run
// proves hang detection: a rank wedged by an injected hang is detected by
// the operation timeout and the run recovers the same way.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"hacc"
)

func main() {
	cfg := hacc.Config{
		NGrid:      24,
		NParticles: 24,
		BoxMpc:     120,
		ZInit:      24,
		ZFinal:     1,
		Steps:      8,
		SubCycles:  3,
		Seed:       42,
		Solver:     hacc.PPTreePM,
	}
	const ranks = 4
	const bins = 10

	// Reference: the uninterrupted run, no checkpoints, no faults.
	var refPk []float64
	err := hacc.RunParallel(ranks, func(c *hacc.Comm) {
		sim, err := hacc.NewSimulation(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			log.Fatal(err)
		}
		if ps := sim.PowerSpectrum(bins, true); c.Rank() == 0 {
			refPk = ps.P
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("oracle run complete")

	// Scenario 1: a rank dies mid-schedule. The supervisor tears the world
	// down, classifies the crash, and resumes from the newest checkpoint.
	pk := supervised(cfg, ranks, bins, "kill rank 2 at step 5", hacc.SupervisorOptions{
		Ranks: ranks,
	})
	check("crash recovery", pk, refPk)

	// Scenario 2: a rank hangs without dying. The per-operation timeout
	// detects the wedged peer; the deadline bounds the whole attempt.
	pk = supervised(cfg, ranks, bins, "hang rank 1 at step 6", hacc.SupervisorOptions{
		Ranks:     ranks,
		OpTimeout: 5 * time.Second,
		Deadline:  5 * time.Minute,
	})
	check("hang recovery", pk, refPk)

	fmt.Println("\nboth supervised runs recovered to the bitwise-identical P(k) —")
	fmt.Println("deterministic stepping plus exact checkpoints make recovery invisible.")
}

// supervised runs cfg under the failure supervisor with the given fault
// plan armed and returns rank 0's final P(k).
func supervised(cfg hacc.Config, ranks, bins int, plan string, opts hacc.SupervisorOptions) []float64 {
	ckroot, err := os.MkdirTemp("", "hacc-chaos")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckroot)
	cfg.CheckpointEvery = 2
	cfg.CheckpointDir = ckroot

	disarm, err := hacc.ArmFaults(plan)
	if err != nil {
		log.Fatal(err)
	}
	defer disarm()
	fmt.Printf("\nfault plan armed: %q\n", plan)

	opts.Backoff = 50 * time.Millisecond
	opts.Log = func(line string) { fmt.Println("  " + line) }
	var pk []float64
	rep, err := hacc.RunSupervised(cfg, opts, func(s *hacc.Simulation) error {
		if err := s.Run(nil); err != nil {
			return err
		}
		if ps := s.PowerSpectrum(bins, true); s.Comm.Rank() == 0 {
			pk = ps.P
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, inc := range rep.Incidents {
		resume := inc.Resume
		if resume == "" {
			resume = "initial conditions"
		}
		fmt.Printf("  incident: attempt %d diagnosed as %s, resumed from %s\n",
			inc.Attempt, inc.Class, resume)
	}
	fmt.Printf("  completed after %d restart(s)\n", rep.Restarts)
	return pk
}

// check compares a recovered P(k) against the oracle bitwise.
func check(name string, pk, refPk []float64) {
	if len(pk) != len(refPk) {
		fmt.Printf("ERROR: %s produced %d bins, oracle has %d\n", name, len(pk), len(refPk))
		os.Exit(1)
	}
	for i := range pk {
		if math.Float64bits(pk[i]) != math.Float64bits(refPk[i]) {
			fmt.Printf("ERROR: %s P(k) bin %d diverged: %g != %g\n", name, i, pk[i], refPk[i])
			os.Exit(1)
		}
	}
	fmt.Printf("%s: P(k) bitwise identical to the oracle (%d bins)\n", name, len(pk))
}
