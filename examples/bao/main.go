// BAO: the paper motivates HACC with baryon acoustic oscillation surveys
// (BOSS predictions ran on Roadrunner, §I). This example evolves a box with
// the full Eisenstein-Hu transfer function — acoustic wiggles included —
// using the Roadrunner-style P3M backend, and prints the measured P(k)
// against the no-wiggle spectrum so the BAO feature is visible as an
// oscillating ratio.
//
//	go run ./examples/bao
package main

import (
	"fmt"
	"log"

	"hacc/internal/core"
	"hacc/internal/cosmology"
	"hacc/internal/mpi"
)

func main() {
	const ranks = 4
	params := cosmology.Default()
	smooth := cosmology.NewLinearPower(params, cosmology.EisensteinHuNoWiggle(params))
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		sim, err := core.New(c, core.Config{
			NGrid:      48,
			NParticles: 48,
			BoxMpc:     900, // large box: BAO scale ~105 Mpc/h must fit several times
			Transfer:   "eh",
			ZInit:      24,
			ZFinal:     0.5,
			Steps:      10,
			SubCycles:  3,
			Seed:       1234,
			FixedAmp:   true, // suppress realization noise around the wiggles
			Solver:     core.P3M,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			log.Fatal(err)
		}
		ps := sim.PowerSpectrum(20, false)
		if c.Rank() != 0 {
			return
		}
		d := sim.LP.Gfac.D(sim.A)
		fmt.Printf("BAO box at z=%.2f (%d ranks, P3M backend)\n\n", sim.Z(), ranks)
		fmt.Printf("%-12s %-14s %-14s %s\n", "k [h/Mpc]", "P(k) sim", "no-wiggle lin", "ratio (BAO feature)")
		for i, k := range ps.K {
			if k > 0.25 {
				break
			}
			ref := d * d * smooth.P(k)
			fmt.Printf("%-12.4f %-14.4e %-14.4e %.3f\n", k, ps.P[i], ref, ps.P[i]/ref)
		}
		fmt.Println("\nthe ratio oscillates around ~1 with the acoustic phase — compare")
		fmt.Println("the same ratio computed purely from linear theory:")
		full := sim.LP
		for i, k := range ps.K {
			if k > 0.25 {
				break
			}
			fmt.Printf("%-12.4f linear ratio %.3f\n", k, full.P(k)/smooth.P(k))
			_ = i
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
