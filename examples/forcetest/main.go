// Force test: the paper validates HACC by comparing its two short-range
// configurations (P3M vs PPTreePM agree to ~0.1% on the nonlinear power
// spectrum, §II) and by matching the total force to Newton across the
// PM/short-range handoff. This example reproduces both checks.
//
//	go run ./examples/forcetest
package main

import (
	"fmt"
	"log"
	"math"

	"hacc"
	"hacc/internal/analysis"
	"hacc/internal/shortrange"
)

func main() {
	fmt.Println("1) pair-force matching across the handoff radius")
	fit, err := shortrange.FitGridForce(shortrange.FitOptions{GridN: 48, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   fitted poly5 residual (Newton-relative rms): %.4f\n", fit.RMSErr)
	fmt.Printf("   poly coefficients: %.4g\n", fit.Poly)
	fmt.Printf("   (run 'go test -run TestTotalPairForceIsNewtonian ./internal/shortrange'\n")
	fmt.Printf("    for the full PM+kernel vs 1/r² sweep; worst error ≈1–2%%)\n\n")

	fmt.Println("2) PPTreePM vs P3M on the same realization (paper: ≲0.1%)")
	spectra := map[hacc.SolverKind]*analysis.PowerSpectrum{}
	for _, kind := range []hacc.SolverKind{hacc.PPTreePM, hacc.P3M} {
		kind := kind
		err := hacc.RunParallel(4, func(c *hacc.Comm) {
			sim, err := hacc.NewSimulation(c, hacc.Config{
				NGrid: 32, NParticles: 32, BoxMpc: 150,
				ZInit: 24, ZFinal: 1, Steps: 8, SubCycles: 3,
				Seed: 99, Solver: kind,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := sim.Run(nil); err != nil {
				log.Fatal(err)
			}
			ps := sim.PowerSpectrum(12, false)
			if c.Rank() == 0 {
				spectra[kind] = ps
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	tree := spectra[hacc.PPTreePM]
	p3m := spectra[hacc.P3M]
	worst := 0.0
	fmt.Printf("   %-12s %-14s %-14s %s\n", "k [h/Mpc]", "P tree", "P p3m", "rel diff")
	for i := range tree.K {
		rel := math.Abs(tree.P[i]-p3m.P[i]) / tree.P[i]
		if rel > worst {
			worst = rel
		}
		fmt.Printf("   %-12.4f %-14.5e %-14.5e %.2e\n", tree.K[i], tree.P[i], p3m.P[i], rel)
	}
	fmt.Printf("\n   worst relative difference: %.2e (paper's code-comparison bound: 1e-3)\n", worst)
}
