// Quickstart: evolve a small ΛCDM box from z=24 to z=0 with the BG/Q-style
// PPTreePM solver and print the final nonlinear power spectrum next to
// linear theory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hacc"
)

func main() {
	const ranks = 4
	err := hacc.RunParallel(ranks, func(c *hacc.Comm) {
		sim, err := hacc.NewSimulation(c, hacc.Config{
			NGrid:      32,
			NParticles: 32,
			BoxMpc:     150,
			ZInit:      24,
			ZFinal:     0,
			Steps:      12,
			SubCycles:  5,
			Seed:       42,
			Solver:     hacc.PPTreePM,
		})
		if err != nil {
			log.Fatal(err)
		}
		err = sim.Run(func(step int, a float64) {
			if c.Rank() == 0 {
				fmt.Printf("step %2d  z=%6.2f\n", step, 1/a-1)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		ps := sim.PowerSpectrum(12, true)
		if c.Rank() == 0 {
			fmt.Printf("\n%-12s %-14s %-14s %s\n", "k [h/Mpc]", "P(k) sim", "P(k) linear", "ratio")
			d := sim.LP.Gfac.D(sim.A)
			for i, k := range ps.K {
				lin := d * d * sim.LP.P(k)
				fmt.Printf("%-12.4f %-14.4e %-14.4e %.2f\n", k, ps.P[i], lin, ps.P[i]/lin)
			}
			fmt.Println("\nexpect ratio ≈ 1 at low k (linear) and > 1 at high k (nonlinear")
			fmt.Println("collapse), the content of the paper's Fig. 10.")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
