// Cluster halos: §V uses cluster abundance as a dark-energy probe. This
// example evolves a box to z=0.5 with the in-situ analysis pipeline
// enabled (distributed FOF + pencil-r2c P(k) every few steps, the paper's
// sky-survey mode — no raw particle dumps), then reads the final in-situ
// product: the halo catalog, the sub-halo decomposition of the most
// massive local halo (Fig. 11), and the measured mass function against the
// Sheth-Tormen and Press-Schechter predictions.
//
//	go run ./examples/clusterhalos
package main

import (
	"fmt"
	"log"

	"hacc"
	"hacc/internal/analysis"
	"hacc/internal/cosmology"
	"hacc/internal/mpi"
)

func main() {
	const ranks = 4
	err := hacc.RunParallel(ranks, func(c *hacc.Comm) {
		sim, err := hacc.NewSimulation(c, hacc.Config{
			NGrid:      40,
			NParticles: 40,
			BoxMpc:     120,
			ZInit:      24,
			ZFinal:     0.5,
			Steps:      14,
			SubCycles:  4,
			Seed:       7,
			Solver:     hacc.PPTreePM,
			// In-situ analysis: every 7th step (twice over the run), the
			// standard b=0.2 linking length, ≥10-particle halos.
			AnalysisEvery: 7,
			FOFLinking:    0.2,
			MinHaloSize:   10,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			log.Fatal(err)
		}
		// The final in-situ pass ran at the last step; halos arrive sorted
		// by size, each reported by exactly one rank.
		res := sim.LastAnalysis
		if res == nil {
			log.Fatal("in-situ analysis did not run")
		}
		halos := res.Halos
		nTot := mpi.AllReduce(c, []int{len(halos)}, mpi.SumInt)[0]

		vol := sim.Cfg.BoxMpc * sim.Cfg.BoxMpc * sim.Cfg.BoxMpc
		mMin, mMax := 9*sim.ParticleMassMsun, 2000*sim.ParticleMassMsun
		mb, dn := analysis.MassFunctionBins(c, halos, vol, mMin, mMax, 7)

		// Sub-halo decomposition of this rank's largest halo.
		var subReport string
		if len(halos) > 0 {
			x := append(append([]float32{}, sim.Dom.Active.X...), sim.Dom.Passive.X...)
			y := append(append([]float32{}, sim.Dom.Active.Y...), sim.Dom.Passive.Y...)
			z := append(append([]float32{}, sim.Dom.Active.Z...), sim.Dom.Passive.Z...)
			subs := analysis.FindSubhalos(x, y, z, halos[0].Members,
				analysis.SubhaloOptions{LinkRadius: 0.25, MinN: 8})
			subReport = fmt.Sprintf("rank %d: largest halo %d particles, %d sub-halos:",
				c.Rank(), halos[0].N, len(subs))
			for _, s := range subs {
				subReport += fmt.Sprintf(" %d", s.N)
			}
		}
		reports := mpi.Gather(c, 0, []byte(subReport+"\n"))
		if c.Rank() != 0 {
			return
		}
		fmt.Printf("found %d halos (in-situ distributed FOF, b=0.2, ≥10 particles) at z=%.2f\n", nTot, sim.Z())
		fmt.Printf("measured P(k): %d bins, shot noise %.2e\n", len(res.Spectrum.K), res.Spectrum.ShotNoise)
		fmt.Printf("particle mass %.2e Msun/h\n\n", sim.ParticleMassMsun)
		fmt.Print(string(reports))

		mf := cosmology.NewMassFunction(sim.LP)
		fmt.Printf("\n%-12s %-13s %-13s %-13s\n", "M [Msun/h]", "dn/dlnM sim", "Sheth-Tormen", "Press-Schechter")
		for i := range mb {
			st := mf.DnDlnM(mb[i], sim.A, cosmology.ShethTormen)
			psn := mf.DnDlnM(mb[i], sim.A, cosmology.PressSchechter)
			fmt.Printf("%-12.2e %-13.3e %-13.3e %-13.3e\n", mb[i], dn[i], st, psn)
		}
		fmt.Println("\nexpect the simulated function to track Sheth-Tormen within the")
		fmt.Println("(large, small-box) sample variance, and to exceed Press-Schechter")
		fmt.Println("at the high-mass end — the §V cluster-abundance signature.")
	})
	if err != nil {
		log.Fatal(err)
	}
}
