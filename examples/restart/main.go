// Restart: demonstrate the checkpoint/restart subsystem end to end. A
// small run writes cadenced checkpoints, is "killed" halfway (the process
// state is simply thrown away), and a second run resumes from the newest
// checkpoint — finishing with a power spectrum bitwise identical to an
// uninterrupted run, which the example verifies.
//
//	go run ./examples/restart
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"hacc"
)

func main() {
	cfg := hacc.Config{
		NGrid:      24,
		NParticles: 24,
		BoxMpc:     120,
		ZInit:      24,
		ZFinal:     1,
		Steps:      8,
		SubCycles:  3,
		Seed:       42,
		Solver:     hacc.PPTreePM,
	}
	const ranks = 4
	const bins = 10
	ckroot, err := os.MkdirTemp("", "hacc-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckroot)

	// Reference: the uninterrupted run.
	var refPk []float64
	err = hacc.RunParallel(ranks, func(c *hacc.Comm) {
		sim, err := hacc.NewSimulation(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			log.Fatal(err)
		}
		if ps := sim.PowerSpectrum(bins, true); c.Rank() == 0 {
			refPk = ps.P
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// The "production" run: checkpoints every 2 steps, killed after step 4.
	ckCfg := cfg
	ckCfg.CheckpointEvery = 2
	ckCfg.CheckpointDir = ckroot
	err = hacc.RunParallel(ranks, func(c *hacc.Comm) {
		sim, err := hacc.NewSimulation(c, ckCfg)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := sim.Step(); err != nil {
				log.Fatal(err)
			}
		}
		if c.Rank() == 0 {
			fmt.Printf("run interrupted at step %d (z=%.2f); state abandoned\n", sim.StepIndex, sim.Z())
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Resume: the physics configuration comes from the checkpoint itself.
	stepDir, err := hacc.ResolveCheckpoint(ckroot)
	if err != nil {
		log.Fatal(err)
	}
	err = hacc.RunParallel(ranks, func(c *hacc.Comm) {
		sim, err := hacc.RestoreSimulation(c, stepDir, nil)
		if err != nil {
			log.Fatal(err)
		}
		if c.Rank() == 0 {
			fmt.Printf("restored %s at step %d (z=%.2f), continuing\n", stepDir, sim.StepIndex, sim.Z())
		}
		err = sim.Run(func(step int, a float64) {
			if c.Rank() == 0 {
				fmt.Printf("step %2d  z=%6.2f\n", step, 1/a-1)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		ps := sim.PowerSpectrum(bins, true)
		if c.Rank() != 0 {
			return
		}
		exact := true
		for i := range ps.P {
			if math.Float64bits(ps.P[i]) != math.Float64bits(refPk[i]) {
				exact = false
			}
		}
		fmt.Printf("\n%-12s %-14s %s\n", "k [h/Mpc]", "P(k) restarted", "P(k) uninterrupted")
		for i, k := range ps.K {
			fmt.Printf("%-12.4f %-14.4e %-14.4e\n", k, ps.P[i], refPk[i])
		}
		if exact {
			fmt.Println("\nrestarted P(k) is bitwise identical to the uninterrupted run —")
			fmt.Println("the checkpoint captured the complete run state.")
		} else {
			fmt.Println("\nERROR: restarted P(k) diverged from the uninterrupted run")
			os.Exit(1)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
