// Observe: the run-wide observability stack end to end. A 4-rank wire world
// (TCP loopback, real frames with send timestamps) evolves a small box with
// tracing armed, then the example prints where the artifacts landed and what
// the wire measured: the per-bucket send→match latency histogram with its
// p50/p99, the per-rank Chrome trace timelines (load one in
// chrome://tracing or https://ui.perfetto.dev), and the JSONL run journal.
//
//	go run ./examples/observe
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hacc/internal/core"
	"hacc/internal/mpi"
	"hacc/internal/obs"
)

func main() {
	log.SetFlags(0)
	const ranks = 4
	dir, err := os.MkdirTemp("", "hacc-observe-")
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		NGrid: 16, NParticles: 16, BoxMpc: 128,
		ZInit: 24, ZFinal: 15, Steps: 3, SubCycles: 2,
		Solver: core.PPTreePM, Seed: 11,
		TraceDir: dir,
	}
	var lat mpi.WireLatency
	var bounds, counts []int64
	err = mpi.RunWire(ranks, mpi.WireOptions{Transport: "tcp", Timeout: 60 * time.Second},
		func(c *mpi.Comm) {
			s, err := core.New(c, cfg)
			if err != nil {
				panic(err)
			}
			if err := s.Run(func(step int, a float64) {
				if c.Rank() == 0 {
					fmt.Printf("step %d/%d  a=%.4f\n", step, cfg.Steps, a)
				}
			}); err != nil {
				panic(err)
			}
			l := mpi.WireLatencySummary(c) // collective
			if c.Rank() == 0 {
				lat = l
				h := c.World().Metrics().Histogram("wire.latency_ns", obs.LatencyBuckets)
				bounds = h.Bounds()
				counts = h.Snapshot(nil)
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwire send→match latency, rank 0's own histogram:\n")
	var peak int64 = 1
	for _, n := range counts {
		if n > peak {
			peak = n
		}
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		label := "overflow"
		if i < len(bounds) {
			label = fmt.Sprintf("≤%v", time.Duration(bounds[i]))
		}
		bar := strings.Repeat("#", int(1+49*n/peak))
		fmt.Printf("  %-12s %6d %s\n", label, n, bar)
	}
	fmt.Printf("merged across all %d ranks: %d frames, p50 %v, p99 %v\n",
		ranks, lat.Count, time.Duration(lat.P50Ns), time.Duration(lat.P99Ns))

	fmt.Printf("\nper-rank Chrome trace timelines (open in chrome://tracing):\n")
	for r := 0; r < ranks; r++ {
		fmt.Printf("  %s\n", obs.TracePath(dir, r))
	}
	fmt.Printf("\nrun journal (one JSON line per step):\n")
	lines, err := obs.TailJournal(obs.JournalPath(dir, 0), 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Printf("  %s\n", l)
	}
	fmt.Printf("\nvalidate or summarize any time with: go run ./cmd/hacctrace %s\n", dir)
}
