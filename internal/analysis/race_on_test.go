//go:build race

package analysis

// raceEnabled reports that the race detector is active; its instrumentation
// allocates inside the transform path, so allocation-count pins are
// meaningless under -race.
const raceEnabled = true
