package analysis

import (
	"math"
	"sort"
)

// Subhalo is a density-peak substructure inside a FOF halo (the colored
// clumps of Fig. 11).
type Subhalo struct {
	N       int
	X, Y, Z float64
	Members []int32 // indices into the parent halo's coordinate arrays
}

// SubhaloOptions tunes the finder.
type SubhaloOptions struct {
	LinkRadius float64 // neighbor search radius (default: FOF b)
	MinN       int     // minimum subhalo membership (default 10)
}

// FindSubhalos segments a halo's particles into density-peak basins with a
// HOP-style walk: estimate a local density for every particle from the
// neighbor count within LinkRadius, then attach each particle to its
// densest neighbor; particles that are their own density maximum seed
// subhalos. The dominant basin is the main halo; the rest are sub-halos.
func FindSubhalos(x, y, z []float32, members []int32, o SubhaloOptions) []Subhalo {
	n := len(members)
	if n == 0 {
		return nil
	}
	if o.MinN == 0 {
		o.MinN = 10
	}
	if o.LinkRadius == 0 {
		o.LinkRadius = 0.2
	}
	r2 := float32(o.LinkRadius * o.LinkRadius)

	// Local coordinates of halo members.
	px := make([]float32, n)
	py := make([]float32, n)
	pz := make([]float32, n)
	for i, m := range members {
		px[i], py[i], pz[i] = x[m], y[m], z[m]
	}
	// Cell list at LinkRadius resolution.
	var lo [3]float32
	lo = [3]float32{px[0], py[0], pz[0]}
	hi := lo
	for i := 0; i < n; i++ {
		lo[0] = minf(lo[0], px[i])
		lo[1] = minf(lo[1], py[i])
		lo[2] = minf(lo[2], pz[i])
		hi[0] = maxf(hi[0], px[i])
		hi[1] = maxf(hi[1], py[i])
		hi[2] = maxf(hi[2], pz[i])
	}
	inv := float32(1 / o.LinkRadius)
	var dims [3]int
	for d := 0; d < 3; d++ {
		ext := []float32{hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]}[d]
		dims[d] = int(ext*inv) + 2
	}
	ncell := dims[0] * dims[1] * dims[2]
	heads := make([]int32, ncell)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int32, n)
	cellIdx := func(i int) int32 {
		cx := int((px[i] - lo[0]) * inv)
		cy := int((py[i] - lo[1]) * inv)
		cz := int((pz[i] - lo[2]) * inv)
		return int32((cx*dims[1]+cy)*dims[2] + cz)
	}
	for i := 0; i < n; i++ {
		c := cellIdx(i)
		next[i] = heads[c]
		heads[c] = int32(i)
	}
	forNeighbors := func(i int, fn func(j int32)) {
		cx := int((px[i] - lo[0]) * inv)
		cy := int((py[i] - lo[1]) * inv)
		cz := int((pz[i] - lo[2]) * inv)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					nx, ny, nz := cx+dx, cy+dy, cz+dz
					if nx < 0 || nx >= dims[0] || ny < 0 || ny >= dims[1] || nz < 0 || nz >= dims[2] {
						continue
					}
					for j := heads[(nx*dims[1]+ny)*dims[2]+nz]; j >= 0; j = next[j] {
						ddx := px[i] - px[j]
						ddy := py[i] - py[j]
						ddz := pz[i] - pz[j]
						if ddx*ddx+ddy*ddy+ddz*ddz <= r2 {
							fn(j)
						}
					}
				}
			}
		}
	}

	// Density = neighbor count (flat kernel), deterministic ID tiebreak.
	dens := make([]int32, n)
	for i := 0; i < n; i++ {
		cnt := int32(0)
		forNeighbors(i, func(j int32) { cnt++ })
		dens[i] = cnt
	}
	denser := func(a, b int32) bool {
		if dens[a] != dens[b] {
			return dens[a] > dens[b]
		}
		return a < b
	}
	// Attach each particle to its densest neighbor.
	attach := make([]int32, n)
	for i := 0; i < n; i++ {
		best := int32(i)
		forNeighbors(i, func(j int32) {
			if denser(j, best) {
				best = j
			}
		})
		attach[i] = best
	}
	// Follow attachment chains to the density peak.
	root := func(i int32) int32 {
		for attach[i] != i {
			attach[i] = attach[attach[i]]
			i = attach[i]
		}
		return i
	}
	groups := map[int32][]int32{}
	for i := int32(0); i < int32(n); i++ {
		r := root(i)
		groups[r] = append(groups[r], i)
	}
	var subs []Subhalo
	for _, g := range groups {
		if len(g) < o.MinN {
			continue
		}
		var s Subhalo
		s.N = len(g)
		for _, i := range g {
			s.X += float64(px[i])
			s.Y += float64(py[i])
			s.Z += float64(pz[i])
			s.Members = append(s.Members, members[i])
		}
		inv := 1 / float64(s.N)
		s.X *= inv
		s.Y *= inv
		s.Z *= inv
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].N > subs[j].N })
	return subs
}

// DensityStats summarizes the deposited density field, standing in for the
// renderings of Figs. 2 and 9: the evolution of clustering is tracked by
// the variance and extrema of δ.
type DensityStats struct {
	Variance float64 // <δ²> over cells
	Max      float64 // max density contrast (the "10⁵" of §V)
	Min      float64
	NegFrac  float64 // fraction of underdense cells (voids)
}

// MeasureDensityStats computes density-contrast statistics from an owned
// density block with unit mean (the caller deposits and accumulates first).
func MeasureDensityStats(owned []float64) DensityStats {
	var s DensityStats
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var neg int
	for _, rho := range owned {
		d := rho - 1
		s.Variance += d * d
		if d > s.Max {
			s.Max = d
		}
		if d < s.Min {
			s.Min = d
		}
		if d < 0 {
			neg++
		}
	}
	n := float64(len(owned))
	s.Variance /= n
	s.NegFrac = float64(neg) / n
	return s
}

// ZoomVariance returns the density variance measured in nested cubic
// sub-volumes of decreasing size (Fig. 2's dynamic-range zoom expressed as
// statistics): level L uses boxes of side n/2^L cells centered on the
// densest cell.
func ZoomVariance(owned []float64, n [3]int, levels int) []float64 {
	// Find the densest cell.
	best := 0
	for i, v := range owned {
		if v > owned[best] {
			best = i
		}
	}
	bz := best % n[2]
	by := (best / n[2]) % n[1]
	bx := best / (n[1] * n[2])
	out := make([]float64, 0, levels)
	for l := 0; l < levels; l++ {
		half := n[0] >> (l + 1)
		if half < 1 {
			break
		}
		var sum, sum2 float64
		var cnt int
		for x := bx - half; x < bx+half; x++ {
			for y := by - half; y < by+half; y++ {
				for z := bz - half; z < bz+half; z++ {
					xx := ((x % n[0]) + n[0]) % n[0]
					yy := ((y % n[1]) + n[1]) % n[1]
					zz := ((z % n[2]) + n[2]) % n[2]
					v := owned[(xx*n[1]+yy)*n[2]+zz]
					sum += v
					sum2 += v * v
					cnt++
				}
			}
		}
		mean := sum / float64(cnt)
		out = append(out, sum2/float64(cnt)-mean*mean)
	}
	return out
}
