// Package analysis is the distributed in-situ analysis subsystem: the
// science-facing measurements the paper's sky-survey workload produces at
// scale without writing raw particle dumps — matter power spectra
// (Fig. 10), FOF halos and sub-halos (Fig. 11), the halo mass function
// (§V), the two-point correlation function, and density-field statistics.
//
// The two production paths are persistent plans in the style of the
// exchange and spectral layers (PR 4): analysis.Plan runs rank-local FOF
// over a chaining mesh, stitches halos that cross rank boundaries by
// sending boundary-replica (particle ID, group key) pairs back to their
// owners over the domain's 26-stencil neighbor legs, and resolves global
// group IDs with a small gathered union-find; analysis.Power bins P(k)
// directly on the pencil-r2c half spectrum, so a measurement costs one
// planned real-to-complex transform. Both plans are built once, hold all
// their scratch, and allocate nothing warm on one rank. The serial
// implementations survive as equivalence oracles (FOFDense, powerSerial),
// and the pre-plan single-rank finder (FOF, FindHalos) remains for
// overload-local use.
package analysis
