package analysis

import "math"

// CorrelationFromPower converts a binned power spectrum into the two-point
// correlation function ξ(r) via the spherical Hankel transform
//
//	ξ(r) = 1/(2π²) ∫ P(k)·k²·j₀(kr) dk,
//
// integrating over the measured bins (trapezoid in k). The paper's survey
// science (§V) uses galaxy correlation functions as a primary statistic;
// this is the measurement-side counterpart.
func CorrelationFromPower(ps *PowerSpectrum, radii []float64) []float64 {
	out := make([]float64, len(radii))
	n := len(ps.K)
	if n < 2 {
		return out
	}
	for ri, r := range radii {
		var sum float64
		for i := 0; i < n-1; i++ {
			k0, k1 := ps.K[i], ps.K[i+1]
			f0 := ps.P[i] * k0 * k0 * j0(k0*r)
			f1 := ps.P[i+1] * k1 * k1 * j0(k1*r)
			sum += 0.5 * (f0 + f1) * (k1 - k0)
		}
		out[ri] = sum / (2 * math.Pi * math.Pi)
	}
	return out
}

// CorrelationFromSpectrum evaluates the same transform for an analytic
// spectrum over [kMin, kMax] with n log-spaced intervals, e.g. to get the
// linear-theory ξ(r) with its BAO peak at ~105 Mpc/h.
func CorrelationFromSpectrum(p func(float64) float64, kMin, kMax float64, n int, radii []float64) []float64 {
	out := make([]float64, len(radii))
	lk0, lk1 := math.Log(kMin), math.Log(kMax)
	h := (lk1 - lk0) / float64(n)
	for ri, r := range radii {
		var sum float64
		for i := 0; i <= n; i++ {
			k := math.Exp(lk0 + float64(i)*h)
			w := 1.0
			if i == 0 || i == n {
				w = 0.5
			}
			// dk = k·dlnk for the log grid.
			sum += w * p(k) * k * k * k * j0(k*r) * h
		}
		out[ri] = sum / (2 * math.Pi * math.Pi)
	}
	return out
}

// j0 is the spherical Bessel function sin(x)/x.
func j0(x float64) float64 {
	if math.Abs(x) < 1e-8 {
		return 1 - x*x/6
	}
	return math.Sin(x) / x
}
