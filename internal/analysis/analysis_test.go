package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/ic"
	"hacc/internal/mpi"
)

func TestPowerSpectrumRecoversInput(t *testing.T) {
	// Generate fixed-amplitude ICs (no realization scatter) and check the
	// measured P(k) against D²(a)·P_lin(k). Residuals come only from CIC,
	// binning, and the Zel'dovich displacement itself (small at a=0.05).
	const (
		ng  = 32
		np  = 32
		box = 500.0
		a0  = 0.05
	)
	params := cosmology.Default()
	lp := cosmology.NewLinearPower(params, cosmology.EisensteinHuNoWiggle(params))
	err := mpi.Run(4, func(c *mpi.Comm) {
		dec := grid.NewDecomp([3]int{ng, ng, ng}, 4)
		dom := domain.New(c, dec, 2)
		o := ic.Options{Np: np, BoxMpc: box, AInit: a0, Seed: 11, Fixed: true}
		if err := ic.Generate(c, dec, lp, o, dom); err != nil {
			t.Error(err)
			return
		}
		ps := MeasurePower(c, dec, dom, box, 12, false)
		if c.Rank() != 0 {
			return
		}
		d := lp.Gfac.D(a0)
		checked := 0
		for i, k := range ps.K {
			if k > 0.7*math.Pi*ng/box { // avoid the aliased Nyquist corner
				continue
			}
			want := d * d * lp.P(k)
			got := ps.P[i]
			if math.Abs(got-want) > 0.15*want {
				t.Errorf("k=%.3f: P=%.4g want %.4g (%.1f%%)", k, got, want, 100*(got-want)/want)
			}
			checked++
		}
		if checked < 5 {
			t.Errorf("only %d usable bins", checked)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFOFTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y, z []float32
	// Cluster A: 50 particles in a 0.3-cell ball at (5,5,5).
	for i := 0; i < 50; i++ {
		x = append(x, 5+rng.Float32()*0.3)
		y = append(y, 5+rng.Float32()*0.3)
		z = append(z, 5+rng.Float32()*0.3)
	}
	// Cluster B: 30 particles at (15,15,15).
	for i := 0; i < 30; i++ {
		x = append(x, 15+rng.Float32()*0.3)
		y = append(y, 15+rng.Float32()*0.3)
		z = append(z, 15+rng.Float32()*0.3)
	}
	// 10 isolated singles.
	for i := 0; i < 10; i++ {
		x = append(x, float32(20+3*i))
		y = append(y, 25)
		z = append(z, 25)
	}
	halos := FOF(x, y, z, 0.5, 5)
	if len(halos) != 2 {
		t.Fatalf("found %d halos want 2", len(halos))
	}
	if halos[0].N != 50 || halos[1].N != 30 {
		t.Errorf("halo sizes %d,%d want 50,30", halos[0].N, halos[1].N)
	}
	if math.Abs(halos[0].X-5.15) > 0.1 || math.Abs(halos[1].X-15.15) > 0.1 {
		t.Errorf("halo centers %g,%g", halos[0].X, halos[1].X)
	}
}

func TestFOFLinkingLength(t *testing.T) {
	// A chain spaced 0.9b must link end to end; spaced 1.1b must not link.
	mk := func(spacing float32) []Halo {
		var x, y, z []float32
		for i := 0; i < 20; i++ {
			x = append(x, float32(i)*spacing)
			y = append(y, 0)
			z = append(z, 0)
		}
		return FOF(x, y, z, 1.0, 3)
	}
	if h := mk(0.9); len(h) != 1 || h[0].N != 20 {
		t.Errorf("0.9b chain: %d halos", len(h))
	}
	if h := mk(1.1); len(h) != 0 {
		t.Errorf("1.1b chain linked: %d halos", len(h))
	}
}

func TestFOFMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		b := 0.5 + rng.Float64()
		x := make([]float32, n)
		y := make([]float32, n)
		z := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32() * 12
			y[i] = rng.Float32() * 12
			z[i] = rng.Float32() * 12
		}
		// Brute-force connected components.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(i int) int {
			for parent[i] != i {
				parent[i] = parent[parent[i]]
				i = parent[i]
			}
			return i
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := float64(x[i] - x[j])
				dy := float64(y[i] - y[j])
				dz := float64(z[i] - z[j])
				if dx*dx+dy*dy+dz*dz <= b*b {
					parent[find(i)] = find(j)
				}
			}
		}
		sizes := map[int]int{}
		for i := 0; i < n; i++ {
			sizes[find(i)]++
		}
		wantCounts := map[int]int{} // size -> number of groups ≥2
		for _, s := range sizes {
			if s >= 2 {
				wantCounts[s]++
			}
		}
		halos := FOF(x, y, z, b, 2)
		gotCounts := map[int]int{}
		for _, h := range halos {
			gotCounts[h.N]++
		}
		if len(gotCounts) != len(wantCounts) {
			return false
		}
		for s, c := range wantCounts {
			if gotCounts[s] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFindHalosCrossBoundaryOwnership(t *testing.T) {
	// A cluster straddling rank boundaries must be found complete and
	// owned by exactly one rank (the overloading trick, §V).
	n := [3]int{16, 16, 16}
	rng := rand.New(rand.NewSource(2))
	// Cluster centered on the corner shared by all 8 ranks.
	cx, cy, cz := 8.0, 8.0, 8.0
	var hx, hy, hz []float32
	for i := 0; i < 80; i++ {
		hx = append(hx, float32(cx+rng.NormFloat64()*0.3))
		hy = append(hy, float32(cy+rng.NormFloat64()*0.3))
		hz = append(hz, float32(cz+rng.NormFloat64()*0.3))
	}
	err := mpi.Run(8, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 8)
		d := domain.New(c, dec, 3)
		for i := range hx {
			if dec.RankOf(float64(hx[i]), float64(hy[i]), float64(hz[i])) == c.Rank() {
				d.Active.Append(hx[i], hy[i], hz[i], 0, 0, 0, uint64(i))
			}
		}
		d.Refresh()
		halos := FindHalos(d, dec, 0.7, 10, 1)
		counts := mpi.AllReduce(c, []int{len(halos)}, mpi.SumInt)
		if counts[0] != 1 {
			t.Errorf("cluster found %d times across ranks", counts[0])
			return
		}
		for _, h := range halos {
			if h.N < 75 {
				t.Errorf("owned halo truncated: %d of 80 members", h.N)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindSubhalosTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x, y, z []float32
	var members []int32
	// Dense main blob (300) and satellite (100) 2 cells apart, connected by
	// a thin bridge so FOF sees one halo.
	for i := 0; i < 300; i++ {
		x = append(x, float32(10+rng.NormFloat64()*0.25))
		y = append(y, float32(10+rng.NormFloat64()*0.25))
		z = append(z, float32(10+rng.NormFloat64()*0.25))
	}
	for i := 0; i < 100; i++ {
		x = append(x, float32(12+rng.NormFloat64()*0.15))
		y = append(y, float32(10+rng.NormFloat64()*0.15))
		z = append(z, float32(10+rng.NormFloat64()*0.15))
	}
	for i := 0; i < 12; i++ {
		x = append(x, float32(10.3+float64(i)*0.15))
		y = append(y, 10)
		z = append(z, 10)
	}
	for i := range x {
		members = append(members, int32(i))
	}
	subs := FindSubhalos(x, y, z, members, SubhaloOptions{LinkRadius: 0.25, MinN: 20})
	if len(subs) < 2 {
		t.Fatalf("found %d subhalos want ≥2", len(subs))
	}
	// The two dominant basins should be near the two blob centers.
	foundMain, foundSat := false, false
	for _, s := range subs[:2] {
		if math.Abs(s.X-10) < 0.5 {
			foundMain = true
		}
		if math.Abs(s.X-12) < 0.5 {
			foundSat = true
		}
	}
	if !foundMain || !foundSat {
		t.Errorf("subhalo centers: %+v", subs[:2])
	}
}

func TestDensityStats(t *testing.T) {
	owned := make([]float64, 64)
	for i := range owned {
		owned[i] = 1
	}
	s := MeasureDensityStats(owned)
	if s.Variance != 0 || s.Max != 0 || s.Min != 0 || s.NegFrac != 0 {
		t.Errorf("uniform stats %+v", s)
	}
	owned[5] = 33
	owned[6] = 0 // compensating void
	s = MeasureDensityStats(owned)
	if math.Abs(s.Max-32) > 1e-12 || math.Abs(s.Min+1) > 1e-12 {
		t.Errorf("spike stats %+v", s)
	}
	if s.NegFrac <= 0 {
		t.Error("expected a negative cell")
	}
}

func TestZoomVarianceIncreasesTowardPeak(t *testing.T) {
	// A centrally peaked field: zooming into the peak raises the variance
	// until the window is all-peak.
	n := [3]int{16, 16, 16}
	owned := make([]float64, 16*16*16)
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			for z := 0; z < 16; z++ {
				dx, dy, dz := float64(x-8), float64(y-8), float64(z-8)
				owned[(x*16+y)*16+z] = 50 * math.Exp(-(dx*dx+dy*dy+dz*dz)/4)
			}
		}
	}
	v := ZoomVariance(owned, n, 3)
	if len(v) != 3 {
		t.Fatalf("levels %d", len(v))
	}
	if !(v[1] > v[0]) {
		t.Errorf("zoom should raise variance initially: %v", v)
	}
}

func TestMassFunctionBins(t *testing.T) {
	halos := []Halo{{Mass: 1e13}, {Mass: 1.2e13}, {Mass: 1e14}, {Mass: 9e15}}
	err := mpi.Run(2, func(c *mpi.Comm) {
		var mine []Halo
		for i, h := range halos {
			if i%2 == c.Rank() {
				mine = append(mine, h)
			}
		}
		m, dn := MassFunctionBins(c, mine, 1e6, 1e12, 1e16, 8)
		if len(m) != 8 {
			t.Errorf("bins %d", len(m))
			return
		}
		var total float64
		dln := (math.Log(1e16) - math.Log(1e12)) / 8
		for _, v := range dn {
			total += v * dln * 1e6
		}
		if math.Abs(total-4) > 1e-9 {
			t.Errorf("binned halo total %g want 4", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
