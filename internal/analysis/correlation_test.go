package analysis

import (
	"math"
	"testing"

	"hacc/internal/cosmology"
)

func TestCorrelationGaussianAnalytic(t *testing.T) {
	// P(k) = A·exp(−k²σ²) has the closed form
	// ξ(r) = A/(8·π^{3/2}·σ³)·exp(−r²/(4σ²)).
	const (
		amp   = 100.0
		sigma = 5.0
	)
	p := func(k float64) float64 { return amp * math.Exp(-k*k*sigma*sigma) }
	radii := []float64{0, 2, 5, 10, 20}
	xi := CorrelationFromSpectrum(p, 1e-4, 10, 20000, radii)
	for i, r := range radii {
		want := amp / (8 * math.Pow(math.Pi, 1.5) * sigma * sigma * sigma) *
			math.Exp(-r*r/(4*sigma*sigma))
		if math.Abs(xi[i]-want) > 2e-3*want+1e-10 {
			t.Errorf("r=%g: ξ=%g want %g", r, xi[i], want)
		}
	}
}

func TestCorrelationBAOPeak(t *testing.T) {
	// Linear-theory ξ(r) from the full Eisenstein-Hu spectrum shows the
	// acoustic peak near 105 Mpc/h: ξ must have a local maximum in
	// r ∈ [90, 120] that exceeds its neighborhood.
	params := cosmology.Default()
	lp := cosmology.NewLinearPower(params, cosmology.EisensteinHu(params))
	var radii []float64
	for r := 60.0; r <= 140; r += 2 {
		radii = append(radii, r)
	}
	xi := CorrelationFromSpectrum(lp.P, 1e-4, 10, 40000, radii)
	// Find the max in the BAO window.
	best, bestR := -math.MaxFloat64, 0.0
	for i, r := range radii {
		if r >= 90 && r <= 120 && xi[i] > best {
			best = xi[i]
			bestR = r
		}
	}
	// Reference level away from the peak (r=60 declines monotonically in a
	// no-wiggle model; the peak must rise above the local trend at 130).
	var at130 float64
	for i, r := range radii {
		if r == 130 {
			at130 = xi[i]
		}
	}
	if !(best > at130) {
		t.Errorf("no BAO bump: max %g at r=%g vs ξ(130)=%g", best, bestR, at130)
	}
	t.Logf("BAO peak at r=%g Mpc/h (expected ≈105)", bestR)
	if bestR < 95 || bestR > 115 {
		t.Errorf("BAO peak at %g Mpc/h, expected ≈105", bestR)
	}
	// The no-wiggle spectrum must NOT show the bump.
	smooth := cosmology.NewLinearPower(params, cosmology.EisensteinHuNoWiggle(params))
	xs := CorrelationFromSpectrum(smooth.P, 1e-4, 10, 40000, radii)
	for i := 1; i < len(radii)-1; i++ {
		if radii[i] >= 90 && radii[i] <= 120 {
			if xs[i] > xs[i-1] && xs[i] > xs[i+1] {
				t.Errorf("no-wiggle ξ has a spurious peak at r=%g", radii[i])
			}
		}
	}
}

func TestCorrelationFromMeasuredPower(t *testing.T) {
	// A flat measured spectrum behaves like the analytic transform of the
	// same flat function over the same support.
	ps := &PowerSpectrum{}
	for k := 0.05; k < 1.0; k += 0.01 {
		ps.K = append(ps.K, k)
		ps.P = append(ps.P, 42.0)
	}
	radii := []float64{1, 3, 7}
	got := CorrelationFromPower(ps, radii)
	want := CorrelationFromSpectrum(func(float64) float64 { return 42 },
		ps.K[0], ps.K[len(ps.K)-1], 8000, radii)
	for i := range radii {
		if math.Abs(got[i]-want[i]) > 3e-2*math.Abs(want[i])+1e-6 {
			t.Errorf("r=%g: binned %g analytic %g", radii[i], got[i], want[i])
		}
	}
}
