package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/ic"
	"hacc/internal/mpi"
	"hacc/internal/par"
)

// fofFixture is a deterministic global particle set designed to exercise
// every stitch path: blobs straddling the 8-rank corner, a face, the
// periodic wrap in one and in all three axes, a chain crossing a face, and
// scattered singles. IDs are a non-monotonic permutation so the minimum-ID
// ownership rule is exercised nontrivially.
type fofFixture struct {
	x, y, z    []float32
	vx, vy, vz []float32
	ids        []uint64
	n          [3]int
}

func makeFOFFixture(seed int64) *fofFixture {
	f := &fofFixture{n: [3]int{16, 16, 16}}
	rng := rand.New(rand.NewSource(seed))
	blob := func(cx, cy, cz float64, sigma float64, count int) {
		for i := 0; i < count; i++ {
			f.x = append(f.x, float32(wrapF64(cx+rng.NormFloat64()*sigma, 16)))
			f.y = append(f.y, float32(wrapF64(cy+rng.NormFloat64()*sigma, 16)))
			f.z = append(f.z, float32(wrapF64(cz+rng.NormFloat64()*sigma, 16)))
		}
	}
	blob(8, 8, 8, 0.3, 60)        // 8-rank corner
	blob(8, 4, 4, 0.3, 40)        // face between two ranks
	blob(0.1, 8, 8, 0.3, 50)      // wraps in x
	blob(0.1, 0.1, 0.1, 0.35, 70) // wraps in all three axes
	blob(12, 12, 12, 0.25, 30)    // interior of one rank
	// A chain crossing the x=8 face, spaced 0.4 cells.
	for i := 0; i < 14; i++ {
		f.x = append(f.x, float32(5.5+0.4*float64(i)))
		f.y = append(f.y, 12)
		f.z = append(f.z, 4)
	}
	// Scattered singles.
	for i := 0; i < 40; i++ {
		f.x = append(f.x, rng.Float32()*16)
		f.y = append(f.y, rng.Float32()*16)
		f.z = append(f.z, rng.Float32()*16)
	}
	n := len(f.x)
	for i := 0; i < n; i++ {
		f.vx = append(f.vx, rng.Float32()-0.5)
		f.vy = append(f.vy, rng.Float32()-0.5)
		f.vz = append(f.vz, rng.Float32()-0.5)
	}
	// Unique, shuffled, non-contiguous IDs.
	perm := rng.Perm(n)
	f.ids = make([]uint64, n)
	for i := 0; i < n; i++ {
		f.ids[i] = uint64(perm[i])*7919 + 13
	}
	return f
}

// wireHalo flattens a halo for gathering (Members excluded).
func wireHalo(h Halo) []float64 {
	return []float64{float64(h.GID), float64(h.N), h.Mass, h.X, h.Y, h.Z, h.VX, h.VY, h.VZ, h.RMax}
}

const wireLen = 10

func TestDistributedFOFMatchesDense(t *testing.T) {
	const (
		b    = 0.7
		minN = 10
		ov   = 2.0
	)
	fix := makeFOFFixture(42)
	want := FOFDense(fix.x, fix.y, fix.z, fix.vx, fix.vy, fix.vz, fix.ids, fix.n, b, minN)
	if len(want) < 6 {
		t.Fatalf("weak fixture: only %d oracle halos", len(want))
	}
	// Full partition (minN=1) for the membership comparison.
	part := FOFDense(fix.x, fix.y, fix.z, nil, nil, nil, fix.ids, fix.n, b, 1)
	wantGID := map[uint64]uint64{} // particle ID -> oracle group ID
	for _, h := range part {
		for _, m := range h.Members {
			wantGID[fix.ids[m]] = h.GID
		}
	}

	worlds := []int{1, 8}
	if !testing.Short() {
		worlds = append(worlds, 64)
	}
	for _, ranks := range worlds {
		for _, threads := range []int{0, 3} {
			t.Run(fmt.Sprintf("ranks=%d/threads=%d", ranks, threads), func(t *testing.T) {
				err := mpi.Run(ranks, func(c *mpi.Comm) {
					dec := grid.NewDecomp(fix.n, ranks)
					d := domain.New(c, dec, ov)
					for i := range fix.x {
						if dec.RankOf(float64(fix.x[i]), float64(fix.y[i]), float64(fix.z[i])) == c.Rank() {
							d.Active.Append(fix.x[i], fix.y[i], fix.z[i], fix.vx[i], fix.vy[i], fix.vz[i], fix.ids[i])
						}
					}
					d.Refresh()
					// Pools are per-rank (dispatch is not reentrant); odd
					// ranks stay serial so mixed worlds are exercised too.
					var myPool *par.Pool
					if threads > 0 && c.Rank()%2 == 0 {
						myPool = par.NewPool(threads)
					}
					pl := NewPlan(d, myPool)
					halos := pl.FindHalos(b, minN, 1)

					// Each halo reported exactly once, with correct global
					// properties: gather and compare on rank 0.
					var flat []float64
					for _, h := range halos {
						flat = append(flat, wireHalo(h)...)
					}
					var pairs []uint64 // (particle ID, group ID) per active
					gids := pl.GroupIDs()
					for i := 0; i < d.Active.Len(); i++ {
						pairs = append(pairs, d.Active.ID[i], gids[i])
					}
					allHalos := mpi.Gather(c, 0, flat)
					allPairs := mpi.Gather(c, 0, pairs)
					if c.Rank() != 0 {
						return
					}
					if got, wantN := len(allHalos)/wireLen, len(want); got != wantN {
						t.Errorf("catalog size %d want %d", got, wantN)
					}
					byGID := map[uint64][]float64{}
					for k := 0; k+wireLen <= len(allHalos); k += wireLen {
						rec := allHalos[k : k+wireLen]
						gid := uint64(rec[0])
						if _, dup := byGID[gid]; dup {
							t.Errorf("halo GID %d reported by more than one rank", gid)
						}
						byGID[gid] = rec
					}
					fn := [3]float64{16, 16, 16}
					for _, w := range want {
						rec, ok := byGID[w.GID]
						if !ok {
							t.Errorf("oracle halo GID %d (N=%d) missing from distributed catalog", w.GID, w.N)
							continue
						}
						if int(rec[1]) != w.N {
							t.Errorf("GID %d: N=%d want %d", w.GID, int(rec[1]), w.N)
						}
						if math.Abs(rec[2]-w.Mass) > 1e-9 {
							t.Errorf("GID %d: mass %g want %g", w.GID, rec[2], w.Mass)
						}
						for a, wc := range []float64{w.X, w.Y, w.Z} {
							if d := math.Abs(minImage(rec[3+a]-wc, fn[a])); d > 1e-9 {
								t.Errorf("GID %d: center axis %d = %g want %g", w.GID, a, rec[3+a], wc)
							}
						}
						for a, wv := range []float64{w.VX, w.VY, w.VZ} {
							if math.Abs(rec[6+a]-wv) > 1e-9 {
								t.Errorf("GID %d: velocity axis %d = %g want %g", w.GID, a, rec[6+a], wv)
							}
						}
						if math.Abs(rec[9]-w.RMax) > 1e-9 {
							t.Errorf("GID %d: rmax %g want %g", w.GID, rec[9], w.RMax)
						}
					}

					// Membership: the global partition must match the oracle
					// exactly (GID = min member ID, so no relabeling map is
					// even needed).
					if len(allPairs)/2 != len(fix.ids) {
						t.Errorf("partition covers %d particles want %d", len(allPairs)/2, len(fix.ids))
					}
					for k := 0; k+1 < len(allPairs); k += 2 {
						id, gid := allPairs[k], allPairs[k+1]
						if gid != wantGID[id] {
							t.Errorf("particle %d: group %d want %d", id, gid, wantGID[id])
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDistributedFOFWarmRepeat pins plan reuse: repeated FindHalos calls on
// fresh refreshes return identical catalogs.
func TestDistributedFOFWarmRepeat(t *testing.T) {
	fix := makeFOFFixture(7)
	err := mpi.Run(8, func(c *mpi.Comm) {
		dec := grid.NewDecomp(fix.n, 8)
		d := domain.New(c, dec, 2)
		for i := range fix.x {
			if dec.RankOf(float64(fix.x[i]), float64(fix.y[i]), float64(fix.z[i])) == c.Rank() {
				d.Active.Append(fix.x[i], fix.y[i], fix.z[i], fix.vx[i], fix.vy[i], fix.vz[i], fix.ids[i])
			}
		}
		d.Refresh()
		pl := NewPlan(d, nil)
		first := append([]float64(nil), flatCatalog(pl.FindHalos(0.7, 5, 1))...)
		for rep := 0; rep < 3; rep++ {
			d.Refresh()
			again := flatCatalog(pl.FindHalos(0.7, 5, 1))
			if len(again) != len(first) {
				t.Errorf("rep %d: catalog length changed", rep)
				return
			}
			for i := range again {
				if again[i] != first[i] {
					t.Errorf("rep %d: catalog drifted at word %d", rep, i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func flatCatalog(halos []Halo) []float64 {
	var flat []float64
	for _, h := range halos {
		flat = append(flat, wireHalo(h)...)
	}
	return flat
}

// TestPlanFindHalosValidation pins the loud-failure contract for senseless
// arguments.
func TestPlanFindHalosValidation(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp([3]int{16, 16, 16}, 1)
		d := domain.New(c, dec, 2)
		d.Refresh()
		pl := NewPlan(d, nil)
		for name, fn := range map[string]func(){
			"zero linking length":     func() { pl.FindHalos(0, 10, 1) },
			"negative linking length": func() { pl.FindHalos(-0.2, 10, 1) },
			"zero min size":           func() { pl.FindHalos(0.2, 0, 1) },
			"linking beyond overload": func() { pl.FindHalos(3.0, 10, 1) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", name)
					}
				}()
				fn()
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPowerInSituMatchesSerial pins the pencil-r2c estimator against the
// retained full-complex serial oracle to 1e-12 relative, including exact
// mode counts, across rank counts, pool sizes, and warm plan reuse.
func TestPowerInSituMatchesSerial(t *testing.T) {
	const (
		ng  = 24
		np  = 24
		box = 400.0
	)
	params := cosmology.Default()
	lp := cosmology.NewLinearPower(params, cosmology.EisensteinHuNoWiggle(params))
	for _, ranks := range []int{1, 4} {
		for _, threads := range []int{0, 2} {
			t.Run(fmt.Sprintf("ranks=%d/threads=%d", ranks, threads), func(t *testing.T) {
				err := mpi.Run(ranks, func(c *mpi.Comm) {
					var pool *par.Pool
					if threads > 0 {
						pool = par.NewPool(threads) // per rank: dispatch is not reentrant
					}
					dec := grid.NewDecomp([3]int{ng, ng, ng}, ranks)
					dom := domain.New(c, dec, 2)
					o := ic.Options{Np: np, BoxMpc: box, AInit: 0.05, Seed: 19, Fixed: true}
					if err := ic.Generate(c, dec, lp, o, dom); err != nil {
						t.Error(err)
						return
					}
					want := powerSerial(c, dec, dom, box, 11, true)
					pw := NewPower(c, dec, pool, box, 11)
					for rep := 0; rep < 2; rep++ { // cold and warm plan
						got := pw.Measure(dom, true)
						if c.Rank() != 0 {
							continue
						}
						if len(got.K) != len(want.K) {
							t.Errorf("rep %d: %d bins want %d", rep, len(got.K), len(want.K))
							return
						}
						if got.ShotNoise != want.ShotNoise {
							t.Errorf("rep %d: shot %g want %g", rep, got.ShotNoise, want.ShotNoise)
						}
						for i := range want.K {
							if got.NModes[i] != want.NModes[i] {
								t.Errorf("rep %d bin %d: %d modes want %d", rep, i, got.NModes[i], want.NModes[i])
							}
							if relErr(got.K[i], want.K[i]) > 1e-12 {
								t.Errorf("rep %d bin %d: k=%.17g want %.17g", rep, i, got.K[i], want.K[i])
							}
							if relErr(got.P[i], want.P[i]) > 1e-12 {
								t.Errorf("rep %d bin %d: P=%.17g want %.17g", rep, i, got.P[i], want.P[i])
							}
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestPowerValidation pins the loud-failure contract of the estimator
// constructor.
func TestPowerValidation(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp([3]int{16, 16, 16}, 1)
		for name, fn := range map[string]func(){
			"zero bins":     func() { NewPower(c, dec, nil, 100, 0) },
			"negative bins": func() { NewPower(c, dec, nil, 100, -3) },
			"zero box":      func() { NewPower(c, dec, nil, 0, 8) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", name)
					}
				}()
				fn()
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAnalysisWarmAllocs pins the persistent-plan property on one rank:
// once warm, FindHalos and Measure allocate nothing.
func TestAnalysisWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside the transform path")
	}
	fix := makeFOFFixture(3)
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp(fix.n, 1)
		d := domain.New(c, dec, 2)
		for i := range fix.x {
			d.Active.Append(fix.x[i], fix.y[i], fix.z[i], fix.vx[i], fix.vy[i], fix.vz[i], fix.ids[i])
		}
		d.Refresh()
		pl := NewPlan(d, nil)
		pl.FindHalos(0.7, 10, 1)
		pl.FindHalos(0.7, 10, 1)
		if avg := testing.AllocsPerRun(10, func() { pl.FindHalos(0.7, 10, 1) }); avg > 0 {
			t.Errorf("warm FindHalos allocates %.1f times per call", avg)
		}
		pw := NewPower(c, dec, nil, 200, 8)
		pw.Measure(d, true)
		pw.Measure(d, true)
		if avg := testing.AllocsPerRun(10, func() { pw.Measure(d, true) }); avg > 0 {
			t.Errorf("warm Measure allocates %.1f times per call", avg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
