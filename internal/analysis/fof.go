package analysis

import (
	"math"
	"sort"

	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
)

// Halo is a friends-of-friends group.
type Halo struct {
	N          int     // particle count
	GID        uint64  // global group ID: minimum member particle ID
	Mass       float64 // N · particle mass (caller's units)
	X, Y, Z    float64 // center of mass (grid units)
	VX, VY, VZ float64 // mean velocity
	RMax       float64 // max particle distance from center (grid units)
	Members    []int32 // indices into the particle arrays passed to the finder
}

// FOF runs friends-of-friends with linking length b (grid units) over the
// given positions (open boundaries: pass actives + overloaded replicas so
// halos crossing rank boundaries are complete). Groups with fewer than minN
// members are discarded. Union-find over a chaining mesh of cell size b.
func FOF(x, y, z []float32, b float64, minN int) []Halo {
	n := len(x)
	if n == 0 {
		return nil
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(i, j int32) {
		ri, rj := find(i), find(j)
		if ri != rj {
			parent[rj] = ri
		}
	}

	// Chaining mesh with cell size b.
	var lo, hi [3]float32
	lo = [3]float32{x[0], y[0], z[0]}
	hi = lo
	for i := 0; i < n; i++ {
		lo[0] = minf(lo[0], x[i])
		lo[1] = minf(lo[1], y[i])
		lo[2] = minf(lo[2], z[i])
		hi[0] = maxf(hi[0], x[i])
		hi[1] = maxf(hi[1], y[i])
		hi[2] = maxf(hi[2], z[i])
	}
	inv := float32(1 / b)
	var dims [3]int
	for d := 0; d < 3; d++ {
		dims[d] = int(float64(hi[d]-lo[d])*float64(inv)) + 2
	}
	ncell := dims[0] * dims[1] * dims[2]
	cellOf := make([]int32, n)
	counts := make([]int32, ncell+1)
	cell := func(i int) int32 {
		cx := int((x[i] - lo[0]) * inv)
		cy := int((y[i] - lo[1]) * inv)
		cz := int((z[i] - lo[2]) * inv)
		return int32((cx*dims[1]+cy)*dims[2] + cz)
	}
	for i := 0; i < n; i++ {
		c := cell(i)
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 0; c < ncell; c++ {
		counts[c+1] += counts[c]
	}
	order := make([]int32, n)
	cursor := make([]int32, ncell)
	copy(cursor, counts[:ncell])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		order[cursor[c]] = int32(i)
		cursor[c]++
	}

	b2 := float32(b * b)
	// Link within each cell and to forward half of the 26 neighbors (each
	// unordered cell pair visited once).
	fwd := [][3]int{
		{0, 0, 1}, {0, 1, -1}, {0, 1, 0}, {0, 1, 1},
		{1, -1, -1}, {1, -1, 0}, {1, -1, 1},
		{1, 0, -1}, {1, 0, 0}, {1, 0, 1},
		{1, 1, -1}, {1, 1, 0}, {1, 1, 1},
	}
	linkCells := func(c1, c2 int32, same bool) {
		s1, e1 := counts[c1], counts[c1+1]
		s2, e2 := counts[c2], counts[c2+1]
		for a := s1; a < e1; a++ {
			i := order[a]
			start := s2
			if same {
				start = a + 1
			}
			for bb := start; bb < e2; bb++ {
				j := order[bb]
				dx := x[i] - x[j]
				dy := y[i] - y[j]
				dz := z[i] - z[j]
				if dx*dx+dy*dy+dz*dz <= b2 {
					union(i, j)
				}
			}
		}
	}
	for cx := 0; cx < dims[0]; cx++ {
		for cy := 0; cy < dims[1]; cy++ {
			for cz := 0; cz < dims[2]; cz++ {
				c1 := int32((cx*dims[1]+cy)*dims[2] + cz)
				linkCells(c1, c1, true)
				for _, d := range fwd {
					nx, ny, nz := cx+d[0], cy+d[1], cz+d[2]
					if nx < 0 || nx >= dims[0] || ny < 0 || ny >= dims[1] || nz < 0 || nz >= dims[2] {
						continue
					}
					linkCells(c1, int32((nx*dims[1]+ny)*dims[2]+nz), false)
				}
			}
		}
	}

	// Collect groups.
	groups := map[int32][]int32{}
	for i := int32(0); i < int32(n); i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var halos []Halo
	for _, members := range groups {
		if len(members) < minN {
			continue
		}
		halos = append(halos, haloFromMembers(x, y, z, nil, nil, nil, members))
	}
	sort.Slice(halos, func(i, j int) bool { return halos[i].N > halos[j].N })
	return halos
}

func haloFromMembers(x, y, z, vx, vy, vz []float32, members []int32) Halo {
	h := Halo{N: len(members), Members: members}
	for _, i := range members {
		h.X += float64(x[i])
		h.Y += float64(y[i])
		h.Z += float64(z[i])
		if vx != nil {
			h.VX += float64(vx[i])
			h.VY += float64(vy[i])
			h.VZ += float64(vz[i])
		}
	}
	inv := 1 / float64(h.N)
	h.X *= inv
	h.Y *= inv
	h.Z *= inv
	h.VX *= inv
	h.VY *= inv
	h.VZ *= inv
	for _, i := range members {
		dx := float64(x[i]) - h.X
		dy := float64(y[i]) - h.Y
		dz := float64(z[i]) - h.Z
		if r := math.Sqrt(dx*dx + dy*dy + dz*dz); r > h.RMax {
			h.RMax = r
		}
	}
	h.Mass = float64(h.N)
	return h
}

// FindHalos runs FOF over this rank's actives plus overloaded replicas and
// keeps only halos whose center of mass lies in the rank's own sub-box —
// the overloading trick that makes halo finding embarrassingly local
// (each boundary-crossing halo is complete on exactly one rank, provided
// halo radius < overload width). Collective only in the trivial sense that
// every rank calls it; no communication is needed.
func FindHalos(dom *domain.Domain, dec *grid.Decomp, b float64, minN int, particleMass float64) []Halo {
	na := dom.Active.Len()
	npass := dom.Passive.Len()
	x := make([]float32, 0, na+npass)
	y := make([]float32, 0, na+npass)
	z := make([]float32, 0, na+npass)
	vx := make([]float32, 0, na+npass)
	vy := make([]float32, 0, na+npass)
	vz := make([]float32, 0, na+npass)
	x = append(append(x, dom.Active.X...), dom.Passive.X...)
	y = append(append(y, dom.Active.Y...), dom.Passive.Y...)
	z = append(append(z, dom.Active.Z...), dom.Passive.Z...)
	vx = append(append(vx, dom.Active.Vx...), dom.Passive.Vx...)
	vy = append(append(vy, dom.Active.Vy...), dom.Passive.Vy...)
	vz = append(append(vz, dom.Active.Vz...), dom.Passive.Vz...)

	raw := FOF(x, y, z, b, minN)
	box := dom.Box
	var out []Halo
	for _, h := range raw {
		h2 := haloFromMembers(x, y, z, vx, vy, vz, h.Members)
		h2.Mass = float64(h2.N) * particleMass
		// Ownership: center of mass inside my box (half-open test matches
		// the particle ownership rule, so exactly one rank keeps it).
		if h2.X >= float64(box.Lo[0]) && h2.X < float64(box.Hi[0]) &&
			h2.Y >= float64(box.Lo[1]) && h2.Y < float64(box.Hi[1]) &&
			h2.Z >= float64(box.Lo[2]) && h2.Z < float64(box.Hi[2]) {
			out = append(out, h2)
		}
	}
	return out
}

// MassFunctionBins histograms halo masses into logarithmic bins, returning
// bin centers (Msun/h) and dn/dlnM in (Mpc/h)⁻³. Collective.
func MassFunctionBins(c *mpi.Comm, halos []Halo, volMpc3 float64, mMin, mMax float64, nbins int) (m []float64, dndlnm []float64) {
	counts := make([]float64, nbins)
	lmin, lmax := math.Log(mMin), math.Log(mMax)
	dln := (lmax - lmin) / float64(nbins)
	for _, h := range halos {
		if h.Mass <= 0 {
			continue
		}
		b := int((math.Log(h.Mass) - lmin) / dln)
		if b >= 0 && b < nbins {
			counts[b]++
		}
	}
	counts = mpi.AllReduce(c, counts, mpi.SumF64)
	m = make([]float64, nbins)
	dndlnm = make([]float64, nbins)
	for b := 0; b < nbins; b++ {
		m[b] = math.Exp(lmin + (float64(b)+0.5)*dln)
		dndlnm[b] = counts[b] / (volMpc3 * dln)
	}
	return
}

// FOFDense is the serial periodic friends-of-friends oracle: it links the
// full (global) particle set with minimum-image distances on the periodic
// n-cell box and returns halos with ≥ minN members, computed with the same
// reference-frame formulas as the distributed Plan — the center of mass is
// the minimum-ID member's position plus the mean minimum-image offset,
// wrapped into the box; GID is the minimum member particle ID; Mass is the
// member count (unit particle mass). Velocities may be nil. Retained as the
// equivalence oracle for Plan.FindHalos; O(N) memory on one rank, so test
// scale only.
func FOFDense(x, y, z, vx, vy, vz []float32, ids []uint64, n [3]int, b float64, minN int) []Halo {
	np := len(x)
	if np == 0 {
		return nil
	}
	parent := make([]int32, np)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(i, j int32) {
		ri, rj := find(i), find(j)
		if ri != rj {
			parent[rj] = ri
		}
	}

	// Periodic chaining mesh: cell width ≥ b per axis, neighbor cells wrap.
	// With very coarse meshes (≤2 cells per axis) the wrapped forward
	// stencil revisits pairs; unions are idempotent, so only completeness
	// matters — every pair within b lies in the same or adjacent cells.
	var dims [3]int
	for d := 0; d < 3; d++ {
		dims[d] = int(float64(n[d]) / b)
		if dims[d] < 1 {
			dims[d] = 1
		}
	}
	ncell := dims[0] * dims[1] * dims[2]
	cellOf := make([]int32, np)
	counts := make([]int32, ncell+1)
	for i := 0; i < np; i++ {
		var c [3]int
		pos := [3]float32{x[i], y[i], z[i]}
		for d := 0; d < 3; d++ {
			c[d] = int(float64(pos[d]) * float64(dims[d]) / float64(n[d]))
			if c[d] >= dims[d] {
				c[d] = dims[d] - 1
			}
			if c[d] < 0 {
				c[d] = 0
			}
		}
		cellOf[i] = int32((c[0]*dims[1]+c[1])*dims[2] + c[2])
		counts[cellOf[i]+1]++
	}
	for c := 0; c < ncell; c++ {
		counts[c+1] += counts[c]
	}
	order := make([]int32, np)
	cursor := make([]int32, ncell)
	copy(cursor, counts[:ncell])
	for i := 0; i < np; i++ {
		c := cellOf[i]
		order[cursor[c]] = int32(i)
		cursor[c]++
	}

	fn := [3]float64{float64(n[0]), float64(n[1]), float64(n[2])}
	near := func(i, j int32) bool {
		dx := minImage(float64(x[i])-float64(x[j]), fn[0])
		dy := minImage(float64(y[i])-float64(y[j]), fn[1])
		dz := minImage(float64(z[i])-float64(z[j]), fn[2])
		return dx*dx+dy*dy+dz*dz <= b*b
	}
	linkCells := func(c1, c2 int32, same bool) {
		s1, e1 := counts[c1], counts[c1+1]
		s2, e2 := counts[c2], counts[c2+1]
		for a := s1; a < e1; a++ {
			i := order[a]
			start := s2
			if same {
				start = a + 1
			}
			for bb := start; bb < e2; bb++ {
				j := order[bb]
				if i != j && near(i, j) {
					union(i, j)
				}
			}
		}
	}
	for cx := 0; cx < dims[0]; cx++ {
		for cy := 0; cy < dims[1]; cy++ {
			for cz := 0; cz < dims[2]; cz++ {
				c1 := int32((cx*dims[1]+cy)*dims[2] + cz)
				linkCells(c1, c1, true)
				for _, s := range fwdStencil {
					nx := (cx + s[0] + dims[0]) % dims[0]
					ny := (cy + s[1] + dims[1]) % dims[1]
					nz := (cz + s[2] + dims[2]) % dims[2]
					linkCells(c1, int32((nx*dims[1]+ny)*dims[2]+nz), false)
				}
			}
		}
	}

	// Collect groups and compute properties in the minimum-ID frame.
	groups := map[int32][]int32{}
	for i := int32(0); i < int32(np); i++ {
		groups[find(i)] = append(groups[find(i)], i)
	}
	var halos []Halo
	for _, members := range groups {
		if len(members) < minN {
			continue
		}
		mi := members[0]
		var gid uint64 = math.MaxUint64
		for _, m := range members {
			id := uint64(m)
			if ids != nil {
				id = ids[m]
			}
			if id < gid {
				gid = id
				mi = m
			}
		}
		ref := [3]float64{float64(x[mi]), float64(y[mi]), float64(z[mi])}
		h := Halo{N: len(members), GID: gid, Mass: float64(len(members)), Members: members}
		var sx, sy, sz float64
		for _, m := range members {
			sx += minImage(float64(x[m])-ref[0], fn[0])
			sy += minImage(float64(y[m])-ref[1], fn[1])
			sz += minImage(float64(z[m])-ref[2], fn[2])
			if vx != nil {
				h.VX += float64(vx[m])
				h.VY += float64(vy[m])
				h.VZ += float64(vz[m])
			}
		}
		inv := 1 / float64(h.N)
		mx, my, mz := sx*inv, sy*inv, sz*inv
		h.X = wrapF64(ref[0]+mx, fn[0])
		h.Y = wrapF64(ref[1]+my, fn[1])
		h.Z = wrapF64(ref[2]+mz, fn[2])
		h.VX *= inv
		h.VY *= inv
		h.VZ *= inv
		for _, m := range members {
			dx := minImage(float64(x[m])-ref[0], fn[0]) - mx
			dy := minImage(float64(y[m])-ref[1], fn[1]) - my
			dz := minImage(float64(z[m])-ref[2], fn[2]) - mz
			if r := math.Sqrt(dx*dx + dy*dy + dz*dz); r > h.RMax {
				h.RMax = r
			}
		}
		halos = append(halos, h)
	}
	sort.Slice(halos, func(i, j int) bool {
		if halos[i].N != halos[j].N {
			return halos[i].N > halos[j].N
		}
		return halos[i].GID < halos[j].GID
	})
	return halos
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
