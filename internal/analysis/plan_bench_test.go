package analysis

import (
	"math/rand"
	"testing"

	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/par"
)

// benchDomain builds a one-rank domain with a clustered particle set (≈40%
// in halos, the rest uniform) on a 32³ box, refreshed and ready for warm
// analysis passes.
func benchDomain(c *mpi.Comm) (*domain.Domain, *grid.Decomp) {
	n := [3]int{32, 32, 32}
	dec := grid.NewDecomp(n, 1)
	d := domain.New(c, dec, 2)
	rng := rand.New(rand.NewSource(5))
	id := uint64(0)
	add := func(x, y, z float64) {
		d.Active.Append(
			float32(wrapF64(x, 32)), float32(wrapF64(y, 32)), float32(wrapF64(z, 32)),
			rng.Float32(), rng.Float32(), rng.Float32(), id)
		id++
	}
	for h := 0; h < 40; h++ {
		cx, cy, cz := rng.Float64()*32, rng.Float64()*32, rng.Float64()*32
		for i := 0; i < 100; i++ {
			add(cx+rng.NormFloat64()*0.4, cy+rng.NormFloat64()*0.4, cz+rng.NormFloat64()*0.4)
		}
	}
	for i := 0; i < 6000; i++ {
		add(rng.Float64()*32, rng.Float64()*32, rng.Float64()*32)
	}
	d.Refresh()
	return d, dec
}

// BenchmarkFOF measures a warm distributed FindHalos pass on one rank
// (multi-rank runs add only the mpi runtime's per-message copies). The
// allocation column is the regression guard: a warm plan must stay at
// 0 allocs/op.
func BenchmarkFOF(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "serial", 2: "pool=2", 4: "pool=4"}[threads], func(b *testing.B) {
			err := mpi.Run(1, func(c *mpi.Comm) {
				d, _ := benchDomain(c)
				var pool *par.Pool
				if threads > 1 {
					pool = par.NewPool(threads)
				}
				pl := NewPlan(d, pool)
				pl.FindHalos(0.4, 10, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pl.FindHalos(0.4, 10, 1)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPowerInSitu measures a warm in-situ P(k) pass (deposit, ghost
// accumulate, planned redistribution, r2c forward, pooled binning) on one
// rank, with the serial full-complex oracle alongside for comparison. The
// allocation column guards the persistent-plan property.
func BenchmarkPowerInSitu(b *testing.B) {
	for _, threads := range []int{1, 2} {
		b.Run(map[int]string{1: "serial", 2: "pool=2"}[threads], func(b *testing.B) {
			err := mpi.Run(1, func(c *mpi.Comm) {
				d, dec := benchDomain(c)
				var pool *par.Pool
				if threads > 1 {
					pool = par.NewPool(threads)
				}
				pw := NewPower(c, dec, pool, 250, 16)
				pw.Measure(d, true)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pw.Measure(d, true)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkPowerSerialOracle measures the retained pre-plan estimator for
// the DESIGN.md comparison table.
func BenchmarkPowerSerialOracle(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		d, dec := benchDomain(c)
		powerSerial(c, dec, d, 250, 16, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			powerSerial(c, dec, d, 250, 16, true)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
