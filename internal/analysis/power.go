package analysis

import (
	"fmt"
	"math"

	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/par"
	"hacc/internal/pfft"
	"hacc/internal/spectral"
)

// PowerSpectrum is a binned estimate of P(k): k in h/Mpc, P in (Mpc/h)³.
type PowerSpectrum struct {
	K, P      []float64
	NModes    []int64
	ShotNoise float64 // the subtracted 1/n̄ term, for reference
}

// Power is the persistent distributed P(k) estimator: the in-situ analysis
// mirror of spectral.Poisson. Built once per (decomposition, box, bin
// count), it owns a deposit field and ghost exchanger, a planned
// block→x-pencil redistribution, the pencil FFT plan, and per-mode binning
// tables (bin index, CIC deconvolution, Hermitian pair weight) precomputed
// over this rank's share of the half spectrum — so a measurement costs one
// planned r2c forward transform plus a pooled binning sweep, and a warm
// Measure allocates nothing on one rank.
//
// The DC mode is excluded from every bin, which makes depositing ρ
// equivalent to depositing δ = ρ−1: no mean subtraction pass is needed.
// The half spectrum (kx ∈ [0, n/2]) covers the full-spectrum sum exactly:
// interior kx planes carry Hermitian weight 2, the self-conjugate kx = 0
// (and kx = n/2 for even n) planes weight 1.
type Power struct {
	comm   *mpi.Comm
	dec    *grid.Decomp
	pool   *par.Pool
	boxMpc float64
	nbins  int

	pen   *pfft.Pencil
	toPen *pfft.Redistributor[float64]
	rho   *grid.Field
	ex    *grid.Exchanger

	binOf []int32   // per local half-spectrum mode: bin index, -1 outside
	pfac  []float64 // per mode: weight · norm / W_CIC²
	kfac  []float64 // per mode: weight · |k| (h/Mpc)
	wgt   []int64   // per mode: Hermitian pair weight (1 or 2)

	ownedBuf, realBuf []float64

	// Partial histograms for the pooled binning sweep, one per fixed mode
	// stripe (not per worker): workers claim stripes round-robin and the
	// merge runs in stripe order, so the float64 summation order — and
	// hence the result, bitwise — is independent of the pool size.
	pkS, kwS []float64 // binStripes × nbins
	nmS      []int64
	pk, kw   []float64
	nm       []int64
	workers  int

	// Persistent pool-dispatch body; the per-call spectrum lives in spec.
	binBody func(w int)
	spec    []complex128

	// nGlobal is the (conserved) global particle count, cached at the first
	// collective Measure; mass is the per-particle deposit weight that makes
	// the mean density 1.
	nGlobal int64
	mass    float64

	out PowerSpectrum // plan-owned output storage
}

// NewPower builds the estimator plan. Collective over comm (the pencil plan
// splits sub-communicators). pool may be nil for a serial estimator; nbins
// and boxMpc must be positive.
func NewPower(c *mpi.Comm, dec *grid.Decomp, pool *par.Pool, boxMpc float64, nbins int) *Power {
	if nbins < 1 {
		panic(fmt.Sprintf("analysis: power spectrum needs ≥1 bins, got %d", nbins))
	}
	if boxMpc <= 0 {
		panic(fmt.Sprintf("analysis: box size must be positive, got %g", boxMpc))
	}
	n := dec.N
	ng := n[0]
	pw := &Power{comm: c, dec: dec, pool: pool, boxMpc: boxMpc, nbins: nbins}
	pw.rho = grid.NewField(n, dec.Box(c.Rank()), 1)
	pw.ex = grid.NewExchanger(c, dec, pw.rho)
	pw.pen = pfft.NewAuto(c, n)
	pw.pen.SetPool(pool)
	pw.toPen = pfft.NewRedistributor[float64](c, dec.Layout(), pw.pen.LayoutX())
	pw.ownedBuf = make([]float64, dec.Layout().Boxes[c.Rank()].Count())
	pw.realBuf = make([]float64, pw.pen.LocalX().Count())

	// Per-mode tables over this rank's half-spectrum z-pencil share.
	nk := pw.pen.LocalZR().Count()
	pw.binOf = make([]int32, nk)
	pw.pfac = make([]float64, nk)
	pw.kfac = make([]float64, nk)
	pw.wgt = make([]int64, nk)
	vol := boxMpc * boxMpc * boxMpc
	nc3 := float64(ng) * float64(ng) * float64(ng)
	norm := vol / (nc3 * nc3)
	kNyq := math.Pi * float64(ng) / boxMpc
	dk := kNyq / float64(nbins)
	half := ng/2 + 1
	pw.pen.ForEachKR(func(mx, my, mz, idx int) {
		pw.binOf[idx] = -1
		if mx == 0 && my == 0 && mz == 0 {
			return
		}
		kx := spectral.KMode(mx, ng)
		ky := spectral.KMode(my, ng)
		kz := spectral.KMode(mz, ng)
		kPhys := math.Sqrt(kx*kx+ky*ky+kz*kz) * float64(ng) / boxMpc
		bin := int(kPhys / dk)
		if bin >= nbins {
			return
		}
		w := 2.0
		if mx == 0 || (ng%2 == 0 && mx == half-1) {
			w = 1 // self-conjugate plane: the partner mode is also stored
		}
		cw := cicWindow(kx) * cicWindow(ky) * cicWindow(kz)
		pw.binOf[idx] = int32(bin)
		pw.pfac[idx] = w * norm / (cw * cw)
		pw.kfac[idx] = w * kPhys
		pw.wgt[idx] = int64(w)
	})

	pw.workers = 1
	if pool != nil {
		pw.workers = pool.Workers()
	}
	pw.pkS = make([]float64, binStripes*nbins)
	pw.kwS = make([]float64, binStripes*nbins)
	pw.nmS = make([]int64, binStripes*nbins)
	pw.pk = make([]float64, nbins)
	pw.kw = make([]float64, nbins)
	pw.nm = make([]int64, nbins)
	pw.binBody = func(w int) {
		spec := pw.spec
		for s := w; s < binStripes; s += pw.workers {
			lo, hi := nk*s/binStripes, nk*(s+1)/binStripes
			pk := pw.pkS[s*pw.nbins : (s+1)*pw.nbins]
			kw := pw.kwS[s*pw.nbins : (s+1)*pw.nbins]
			nm := pw.nmS[s*pw.nbins : (s+1)*pw.nbins]
			for i := lo; i < hi; i++ {
				b := pw.binOf[i]
				if b < 0 {
					continue
				}
				v := spec[i]
				pk[b] += (real(v)*real(v) + imag(v)*imag(v)) * pw.pfac[i]
				kw[b] += pw.kfac[i]
				nm[b] += pw.wgt[i]
			}
		}
	}
	return pw
}

// binStripes is the fixed stripe count of the pooled binning sweep; it
// bounds the useful pool parallelism of the sweep but keeps its result
// bitwise independent of the worker count.
const binStripes = 16

// Bins returns the configured bin count.
func (pw *Power) Bins() int { return pw.nbins }

// Measure estimates the matter power spectrum of the domain's active
// particles: pooled CIC deposit onto the plan's field, ghost accumulate,
// planned block→pencil redistribution, one r2c forward transform, and a
// pooled binning sweep over the half spectrum, reduced across ranks.
// subtractShot removes the Poisson discreteness term 1/n̄ (appropriate for
// evolved fields, not lattice ICs). Collective; actives must be canonical
// (post-Migrate). The returned spectrum and its slices are plan-owned,
// valid until the next Measure call.
func (pw *Power) Measure(dom *domain.Domain, subtractShot bool) *PowerSpectrum {
	n := pw.dec.N
	ng := n[0]
	if pw.nGlobal == 0 {
		pw.nGlobal = dom.NGlobal()
		if pw.nGlobal == 0 {
			panic("analysis: power spectrum of an empty particle set")
		}
		pw.mass = float64(ng) * float64(ng) * float64(ng) / float64(pw.nGlobal)
	}
	pw.rho.Fill(0)
	grid.DepositCIC(pw.rho, dom.Active.X, dom.Active.Y, dom.Active.Z, pw.mass)
	pw.ex.Accumulate(pw.rho)
	pw.ownedBuf = pw.rho.OwnedInto(pw.ownedBuf)
	pw.toPen.Run(pw.ownedBuf, pw.realBuf)
	pw.spec = pw.pen.ForwardReal(pw.realBuf)

	for i := range pw.pkS {
		pw.pkS[i] = 0
		pw.kwS[i] = 0
		pw.nmS[i] = 0
	}
	if pw.pool != nil && pw.workers > 1 {
		pw.pool.Run(pw.workers, pw.binBody)
	} else {
		pw.binBody(0)
	}
	pw.spec = nil
	for b := 0; b < pw.nbins; b++ {
		pw.pk[b] = 0
		pw.kw[b] = 0
		pw.nm[b] = 0
	}
	for s := 0; s < binStripes; s++ {
		for b := 0; b < pw.nbins; b++ {
			pw.pk[b] += pw.pkS[s*pw.nbins+b]
			pw.kw[b] += pw.kwS[s*pw.nbins+b]
			pw.nm[b] += pw.nmS[s*pw.nbins+b]
		}
	}
	if pw.comm.Size() > 1 {
		copy(pw.pk, mpi.AllReduce(pw.comm, pw.pk, mpi.SumF64))
		copy(pw.kw, mpi.AllReduce(pw.comm, pw.kw, mpi.SumF64))
		copy(pw.nm, mpi.AllReduce(pw.comm, pw.nm, mpi.SumI64))
	}

	vol := pw.boxMpc * pw.boxMpc * pw.boxMpc
	shot := vol / float64(pw.nGlobal)
	sub := 0.0
	if subtractShot {
		sub = shot
	}
	pw.out.ShotNoise = shot
	pw.out.K = pw.out.K[:0]
	pw.out.P = pw.out.P[:0]
	pw.out.NModes = pw.out.NModes[:0]
	for b := 0; b < pw.nbins; b++ {
		if pw.nm[b] == 0 {
			continue
		}
		pw.out.K = append(pw.out.K, pw.kw[b]/float64(pw.nm[b]))
		pw.out.P = append(pw.out.P, pw.pk[b]/float64(pw.nm[b])-sub)
		pw.out.NModes = append(pw.out.NModes, pw.nm[b])
	}
	return &pw.out
}

// powerSerial is the pre-plan estimator — full complex-spectrum FFT through
// the one-shot redistribution — retained as the equivalence oracle for
// Power.Measure. Collective over comm.
func powerSerial(c *mpi.Comm, dec *grid.Decomp, dom *domain.Domain, boxMpc float64, nbins int, subtractShot bool) *PowerSpectrum {
	n := dec.N
	ng := n[0]
	rho := grid.NewField(n, dec.Box(c.Rank()), 1)
	ex := grid.NewExchanger(c, dec, rho)
	nGlobal := dom.NGlobal()
	// Unit mean density: each particle carries Nc³/Np.
	mass := float64(ng) * float64(ng) * float64(ng) / float64(nGlobal)
	grid.DepositCIC(rho, dom.Active.X, dom.Active.Y, dom.Active.Z, mass)
	ex.Accumulate(rho)

	pen := pfft.NewAuto(c, n)
	owned := rho.Owned()
	moved := pfft.Redistribute(c, owned, dec.Layout(), pen.LayoutX())
	data := make([]complex128, len(moved))
	for i, v := range moved {
		data[i] = complex(v-1, 0) // δ = ρ−1 (ρ̄ = 1 by mass choice)
	}
	spec := pen.Forward(data)

	vol := boxMpc * boxMpc * boxMpc
	nc3 := float64(ng) * float64(ng) * float64(ng)
	norm := vol / (nc3 * nc3)
	kNyq := math.Pi * float64(ng) / boxMpc
	dk := kNyq / float64(nbins)

	pk := make([]float64, nbins)
	kw := make([]float64, nbins)
	nm := make([]int64, nbins)
	pen.ForEachK(func(mx, my, mz, idx int) {
		if mx == 0 && my == 0 && mz == 0 {
			return
		}
		kx := spectral.KMode(mx, ng)
		ky := spectral.KMode(my, ng)
		kz := spectral.KMode(mz, ng)
		kPhys := math.Sqrt(kx*kx+ky*ky+kz*kz) * float64(ng) / boxMpc
		bin := int(kPhys / dk)
		if bin >= nbins {
			return
		}
		// Deconvolve the CIC assignment window (one deposit → sinc² per
		// axis).
		w := cicWindow(kx) * cicWindow(ky) * cicWindow(kz)
		v := spec[idx]
		p := (real(v)*real(v) + imag(v)*imag(v)) * norm / (w * w)
		pk[bin] += p
		kw[bin] += kPhys
		nm[bin]++
	})
	pk = mpi.AllReduce(c, pk, mpi.SumF64)
	kw = mpi.AllReduce(c, kw, mpi.SumF64)
	nm = mpi.AllReduce(c, nm, mpi.SumI64)

	shot := vol / float64(nGlobal)
	out := &PowerSpectrum{ShotNoise: shot}
	sub := 0.0
	if subtractShot {
		sub = shot
	}
	for b := 0; b < nbins; b++ {
		if nm[b] == 0 {
			continue
		}
		out.K = append(out.K, kw[b]/float64(nm[b]))
		out.P = append(out.P, pk[b]/float64(nm[b])-sub)
		out.NModes = append(out.NModes, nm[b])
	}
	return out
}

// MeasurePower estimates P(k) with a one-shot plan: build a Power for the
// decomposition, measure once, and return spectra backed by freshly
// allocated (caller-owned) slices. Collective. Callers measuring repeatedly
// should hold a Power and call Measure.
func MeasurePower(c *mpi.Comm, dec *grid.Decomp, dom *domain.Domain, boxMpc float64, nbins int, subtractShot bool) *PowerSpectrum {
	pw := NewPower(c, dec, nil, boxMpc, nbins)
	ps := pw.Measure(dom, subtractShot)
	return &PowerSpectrum{
		K:         append([]float64(nil), ps.K...),
		P:         append([]float64(nil), ps.P...),
		NModes:    append([]int64(nil), ps.NModes...),
		ShotNoise: ps.ShotNoise,
	}
}

// cicWindow is the CIC assignment window sinc²(k/2) along one axis.
func cicWindow(k float64) float64 {
	if math.Abs(k) < 1e-12 {
		return 1
	}
	s := math.Sin(k/2) / (k / 2)
	return s * s
}
