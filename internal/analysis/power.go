// Package analysis provides the science-facing measurements the paper's
// evaluation draws on: matter power spectra (Fig. 10), FOF halos and
// sub-halos (Fig. 11), the halo mass function (§V), and density-field
// statistics standing in for the visualizations of Figs. 2 and 9.
package analysis

import (
	"math"

	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/pfft"
	"hacc/internal/spectral"
)

// PowerSpectrum is a binned estimate of P(k): k in h/Mpc, P in (Mpc/h)³.
type PowerSpectrum struct {
	K, P      []float64
	NModes    []int64
	ShotNoise float64 // the subtracted 1/n̄ term, for reference
}

// MeasurePower estimates the matter power spectrum of the active particles:
// CIC deposit, distributed FFT, CIC window deconvolution, and spherical
// binning up to the grid Nyquist frequency. subtractShot removes the
// Poisson discreteness term 1/n̄ — appropriate for evolved (clustered)
// fields but not for lattice initial conditions, whose discreteness noise
// is suppressed far below Poisson. Collective over comm.
func MeasurePower(c *mpi.Comm, dec *grid.Decomp, dom *domain.Domain, boxMpc float64, nbins int, subtractShot bool) *PowerSpectrum {
	n := dec.N
	ng := n[0]
	rho := grid.NewField(n, dec.Box(c.Rank()), 1)
	ex := grid.NewExchanger(c, dec, rho)
	nGlobal := dom.NGlobal()
	// Unit mean density: each particle carries Nc³/Np.
	mass := float64(ng) * float64(ng) * float64(ng) / float64(nGlobal)
	grid.DepositCIC(rho, dom.Active.X, dom.Active.Y, dom.Active.Z, mass)
	ex.Accumulate(rho)

	pen := pfft.NewAuto(c, n)
	owned := rho.Owned()
	moved := pfft.Redistribute(c, owned, dec.Layout(), pen.LayoutX())
	data := make([]complex128, len(moved))
	for i, v := range moved {
		data[i] = complex(v-1, 0) // δ = ρ−1 (ρ̄ = 1 by mass choice)
	}
	spec := pen.Forward(data)

	vol := boxMpc * boxMpc * boxMpc
	nc3 := float64(ng) * float64(ng) * float64(ng)
	norm := vol / (nc3 * nc3)
	kNyq := math.Pi * float64(ng) / boxMpc
	dk := kNyq / float64(nbins)

	pk := make([]float64, nbins)
	kw := make([]float64, nbins)
	nm := make([]int64, nbins)
	pen.ForEachK(func(mx, my, mz, idx int) {
		if mx == 0 && my == 0 && mz == 0 {
			return
		}
		kx := spectral.KMode(mx, ng)
		ky := spectral.KMode(my, ng)
		kz := spectral.KMode(mz, ng)
		kPhys := math.Sqrt(kx*kx+ky*ky+kz*kz) * float64(ng) / boxMpc
		bin := int(kPhys / dk)
		if bin >= nbins {
			return
		}
		// Deconvolve the CIC assignment window (one deposit → sinc² per
		// axis).
		w := cicWindow(kx) * cicWindow(ky) * cicWindow(kz)
		v := spec[idx]
		p := (real(v)*real(v) + imag(v)*imag(v)) * norm / (w * w)
		pk[bin] += p
		kw[bin] += kPhys
		nm[bin]++
	})
	pk = mpi.AllReduce(c, pk, mpi.SumF64)
	kw = mpi.AllReduce(c, kw, mpi.SumF64)
	nm = mpi.AllReduce(c, nm, mpi.SumI64)

	shot := vol / float64(nGlobal)
	out := &PowerSpectrum{ShotNoise: shot}
	sub := 0.0
	if subtractShot {
		sub = shot
	}
	for b := 0; b < nbins; b++ {
		if nm[b] == 0 {
			continue
		}
		out.K = append(out.K, kw[b]/float64(nm[b]))
		out.P = append(out.P, pk[b]/float64(nm[b])-sub)
		out.NModes = append(out.NModes, nm[b])
	}
	return out
}

// cicWindow is the CIC assignment window sinc²(k/2) along one axis.
func cicWindow(k float64) float64 {
	if math.Abs(k) < 1e-12 {
		return 1
	}
	s := math.Sin(k/2) / (k / 2)
	return s * s
}
