package analysis

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"hacc/internal/domain"
	"hacc/internal/mpi"
	"hacc/internal/par"
)

// The analysis stitch gets its own tag block, disjoint from the domain
// exchange (0x100000–0x1fffff), the grid ghost exchanger (0x200000–0x2fffff)
// and the pfft redistributor tag. As with those plans, every collective
// draws a fresh tag from a rolling per-plan sequence, so an analysis pass
// can legally overlap other planned collectives in flight.
const tagStitchBase = 0x300000

var (
	anPlanIDMu sync.Mutex
	anPlanIDs  = map[*mpi.Comm]int{}
)

func nextAnalysisPlanID(c *mpi.Comm) int {
	anPlanIDMu.Lock()
	defer anPlanIDMu.Unlock()
	id := anPlanIDs[c]
	anPlanIDs[c] = id + 1
	return id
}

// stitchLeg is one neighbor leg of the boundary stitch: persistent send
// buffer and request storage, mirroring domain.exLeg.
type stitchLeg struct {
	rank int
	send []uint64
	req  mpi.Request
}

// recWords is the wire size of one boundary-group record: the group key,
// its active-member count, the minimum active member ID, and that member's
// position (float64 bits per axis).
const recWords = 6

// Plan is the persistent distributed FOF halo finder — the in-situ analysis
// mirror of domain.ExchangePlan. It is built once from the domain geometry
// and owns every piece of scratch the finder touches, so a warm FindHalos
// allocates nothing on one rank (multi-rank calls add only the mpi
// runtime's per-message copies).
//
// The algorithm: rank-local FOF over a chaining mesh of cell size ≥ b links
// this rank's actives plus the overloaded passive replicas (open boundaries
// — replicas carry unwrapped coordinates, so periodic links appear as plain
// spatial links to a self-image, which are glued back to their active
// counterparts locally). Groups that include replicas of remote actives are
// then stitched: each replica's (particle ID, local group key) is sent back
// to its owner over the 26-stencil neighbor legs, the owner records a
// union edge between its group and the remote key, and a small union-find
// reduction (an AllGather of edges plus boundary-group records — O(surface)
// data) resolves global group IDs identically on every rank. Halo
// properties are accumulated per rank over active members only, in a
// minimum-image frame anchored at the position of the group's minimum
// active particle ID, and combined with two short AllReduces.
//
// Correctness requires the linking length b ≤ the overload width (every
// cross-rank link then has both endpoints present on at least one rank)
// and that FindHalos runs on a fresh refresh (replicas consistent with
// their owners); FindHalos panics loudly on both violations.
//
// A Plan is collective state: every rank builds it and calls FindHalos in
// the same collective order.
type Plan struct {
	d    *domain.Domain
	comm *mpi.Comm
	pool *par.Pool

	legs    []stitchLeg
	rankLeg []int32 // comm rank -> leg index, -1 when not a neighbor
	id, seq int

	// Combined particle scratch: actives [0,na) then passives [na,n).
	x, y, z []float32
	na, n   int

	// Chaining mesh + lock-free union-find scratch. The link phase shards
	// cells over the pool and unions with CAS; union-by-minimum-index makes
	// the final root of every component its smallest member index, so the
	// result is bitwise independent of the thread count.
	parent []int32
	cellOf []int32
	counts []int32
	order  []int32
	cursor []int32
	dims   [3]int
	mlo    [3]float32
	invB   float32
	b2     float32

	// Persistent pool-dispatch bodies (the spectral-solver pattern): per-call
	// parameters live in the fields above, published to the workers by the
	// pool's channel send, so dispatch allocates nothing.
	cellBody func(lo, hi int)
	linkBody func(lo, hi int)

	idMap map[uint64]int32 // active particle ID -> active index

	// Per-group state (local group = one root of the local union-find).
	groupOf   []int32 // combined index -> local group
	rootGroup []int32 // root combined index -> local group, -1 elsewhere
	grpActN   []int32
	grpMinID  []uint64
	grpMinIdx []int32
	grpFlag   []uint8 // 1: has remote replica member, 2: edge endpoint
	grpRec    []int32 // local group -> local record index, -1 interior
	grpHalo   []int32 // local group -> output halo index, -1 not reported

	edges []uint64 // stitch edges (myKey, remoteKey pairs)
	recs  []uint64 // my boundary-group records (recWords each)

	// Global resolution scratch (sized to the gathered records).
	gRecIdx     map[uint64]int32
	recParent   []int32
	classOf     []int32
	grpClass    []int32 // local group -> class index, -1 interior
	classGID    []uint64
	classRef    []float64 // 3 per class: reference position
	classN      []int64
	classWinRnk []int32 // class -> rank owning the minimum-ID particle
	classHalo   []int32 // class -> my output halo index, -1 not mine

	sums      []float64 // 6 per class: Σdx Σdy Σdz Σvx Σvy Σvz (actives)
	classMean []float64 // 3 per class: mean offset in the reference frame
	rmax      []float64 // 1 per class
	sumsH     []float64 // 6 per interior reported halo
	meanH     []float64 // 3 per interior reported halo

	halos     []Halo
	memberCnt []int32
	memberOff []int32
	memberBuf []int32
	gids      []uint64
}

// NewPlan builds the persistent halo-finder plan for a domain. Purely local
// (the neighbor stencil is taken from the domain's exchange plan); pool may
// be nil for a serial finder.
func NewPlan(d *domain.Domain, pool *par.Pool) *Plan {
	p := &Plan{
		d:       d,
		comm:    d.Comm,
		pool:    pool,
		id:      nextAnalysisPlanID(d.Comm),
		idMap:   map[uint64]int32{},
		gRecIdx: map[uint64]int32{},
		rankLeg: make([]int32, d.Comm.Size()),
	}
	for i := range p.rankLeg {
		p.rankLeg[i] = -1
	}
	for _, r := range d.Plan().Neighbors() {
		p.rankLeg[r] = int32(len(p.legs))
		p.legs = append(p.legs, stitchLeg{rank: r})
	}
	p.cellBody = func(lo, hi int) {
		x, y, z := p.x, p.y, p.z
		mlo, inv := p.mlo, p.invB
		d1, d2 := p.dims[1], p.dims[2]
		for i := lo; i < hi; i++ {
			cx := int((x[i] - mlo[0]) * inv)
			cy := int((y[i] - mlo[1]) * inv)
			cz := int((z[i] - mlo[2]) * inv)
			p.cellOf[i] = int32((cx*d1+cy)*d2 + cz)
		}
	}
	p.linkBody = func(clo, chi int) {
		for c := clo; c < chi; c++ {
			p.linkCell(int32(c))
		}
	}
	return p
}

// NumLegs returns the number of stitch messages this rank sends per
// FindHalos call (one per 26-stencil neighbor leg).
func (p *Plan) NumLegs() int { return len(p.legs) }

func (p *Plan) nextTag() int {
	t := tagStitchBase | (p.id&0xff)<<12 | (p.seq & 0xfff)
	p.seq++
	return t
}

// findAtomic returns the root of i with best-effort path halving. Safe for
// concurrent use during the pooled link phase; parent pointers only ever
// decrease, so the root of a finished component is its minimum index.
func findAtomic(parent []int32, i int32) int32 {
	for {
		pi := atomic.LoadInt32(&parent[i])
		if pi == i {
			return i
		}
		gp := atomic.LoadInt32(&parent[pi])
		if gp != pi {
			atomic.CompareAndSwapInt32(&parent[i], pi, gp) // losing the race is harmless
		}
		i = pi
	}
}

// unionAtomic merges the components of a and b, pointing the larger root at
// the smaller (lock-free; retries if another worker re-roots first).
func unionAtomic(parent []int32, a, b int32) {
	for {
		ra := findAtomic(parent, a)
		rb := findAtomic(parent, b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		if atomic.CompareAndSwapInt32(&parent[rb], rb, ra) {
			return
		}
		a, b = ra, rb
	}
}

// fwdStencil is the forward half of the 26 neighbor cells (each unordered
// cell pair visited by exactly one worker, whichever owns the lower cell).
var fwdStencil = [13][3]int{
	{0, 0, 1}, {0, 1, -1}, {0, 1, 0}, {0, 1, 1},
	{1, -1, -1}, {1, -1, 0}, {1, -1, 1},
	{1, 0, -1}, {1, 0, 0}, {1, 0, 1},
	{1, 1, -1}, {1, 1, 0}, {1, 1, 1},
}

// linkCell links all pairs within cell c1 and between c1 and its forward
// neighbor cells.
func (p *Plan) linkCell(c1 int32) {
	if p.counts[c1] == p.counts[c1+1] {
		return // empty cell: no pair has its lower cell here
	}
	d0, d1, d2 := p.dims[0], p.dims[1], p.dims[2]
	cz := int(c1) % d2
	cy := int(c1) / d2 % d1
	cx := int(c1) / (d1 * d2)
	p.linkPair(c1, c1, true)
	for _, s := range fwdStencil {
		nx, ny, nz := cx+s[0], cy+s[1], cz+s[2]
		if nx < 0 || nx >= d0 || ny < 0 || ny >= d1 || nz < 0 || nz >= d2 {
			continue
		}
		p.linkPair(c1, int32((nx*d1+ny)*d2+nz), false)
	}
}

func (p *Plan) linkPair(c1, c2 int32, same bool) {
	x, y, z := p.x, p.y, p.z
	counts, order, parent := p.counts, p.order, p.parent
	b2 := p.b2
	s1, e1 := counts[c1], counts[c1+1]
	s2, e2 := counts[c2], counts[c2+1]
	for a := s1; a < e1; a++ {
		i := order[a]
		start := s2
		if same {
			start = a + 1
		}
		for bb := start; bb < e2; bb++ {
			j := order[bb]
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			dz := z[i] - z[j]
			if dx*dx+dy*dy+dz*dz <= b2 {
				unionAtomic(parent, i, j)
			}
		}
	}
}

// groupKey packs (rank, local group) into the globally unique stitch key.
func groupKey(rank int, grp int32) uint64 { return uint64(rank)<<32 | uint64(uint32(grp)) }

// FindHalos runs the distributed friends-of-friends finder with linking
// length b (grid units, must not exceed the overload width) and keeps
// groups with at least minN members globally. Collective; must run on a
// fresh Refresh. Each halo is reported by exactly one rank — the owner of
// its minimum-ID particle — with globally reduced N, Mass, center of mass,
// mean velocity, and RMax; GID is the minimum member particle ID, a
// relabeling-free global identifier. Members holds this rank's combined
// active+passive indices of local members (the full membership when the
// halo radius is under the overload width). The returned slice and all
// halo storage are plan-owned, valid until the next FindHalos call.
func (p *Plan) FindHalos(b float64, minN int, particleMass float64) []Halo {
	if b <= 0 {
		panic(fmt.Sprintf("analysis: FOF linking length must be positive, got %g", b))
	}
	if minN < 1 {
		panic(fmt.Sprintf("analysis: minimum halo size must be ≥1, got %d", minN))
	}
	if b > p.d.Ov {
		panic(fmt.Sprintf("analysis: FOF linking length %g exceeds the overload width %g; cross-rank links would be lost (raise Config.Overload)", b, p.d.Ov))
	}
	act, pas := &p.d.Active, &p.d.Passive
	na, np := act.Len(), pas.Len()
	n := na + np
	p.na, p.n = na, n

	p.localFOF(b)
	p.enumerateGroups()
	p.stitch()
	nclass := p.resolveClasses()
	p.accumulate(minN, nclass, particleMass)
	p.fillMembersAndGIDs()

	slices.SortFunc(p.halos, compareHalos)
	return p.halos
}

// compareHalos orders by descending size then ascending GID (deterministic
// across rank counts and thread counts).
func compareHalos(a, b Halo) int {
	if a.N != b.N {
		return b.N - a.N
	}
	if a.GID < b.GID {
		return -1
	}
	if a.GID > b.GID {
		return 1
	}
	return 0
}

// GroupIDs returns, for each active particle of this rank, the global FOF
// group ID (minimum particle ID of its group) assigned by the last
// FindHalos call — the per-particle membership view used by the
// equivalence tests. Plan-owned, valid until the next call.
func (p *Plan) GroupIDs() []uint64 { return p.gids }

// localFOF gathers the combined particle arrays, bins them on a chaining
// mesh of cell size ≥ b, and unions all pairs within distance b.
func (p *Plan) localFOF(b float64) {
	act, pas := &p.d.Active, &p.d.Passive
	na, n := p.na, p.n
	p.x = par.Resize(p.x, n)
	p.y = par.Resize(p.y, n)
	p.z = par.Resize(p.z, n)
	copy(p.x[:na], act.X)
	copy(p.y[:na], act.Y)
	copy(p.z[:na], act.Z)
	copy(p.x[na:], pas.X)
	copy(p.y[na:], pas.Y)
	copy(p.z[na:], pas.Z)

	p.parent = par.Resize(p.parent, n)
	for i := range p.parent {
		p.parent[i] = int32(i)
	}
	if n == 0 {
		return
	}

	// Mesh bounds. The cell size is padded a hair above b so no pair within
	// b can ever span two cells after float32 rounding of the inverse.
	lo := [3]float32{p.x[0], p.y[0], p.z[0]}
	hi := lo
	for i := 0; i < n; i++ {
		lo[0], hi[0] = minf(lo[0], p.x[i]), maxf(hi[0], p.x[i])
		lo[1], hi[1] = minf(lo[1], p.y[i]), maxf(hi[1], p.y[i])
		lo[2], hi[2] = minf(lo[2], p.z[i]), maxf(hi[2], p.z[i])
	}
	p.mlo = lo
	p.invB = float32(1 / (b * (1 + 1e-6)))
	p.b2 = float32(b * b)
	for d := 0; d < 3; d++ {
		p.dims[d] = int(float64(hi[d]-lo[d])*float64(p.invB)) + 2
	}
	ncell := p.dims[0] * p.dims[1] * p.dims[2]

	p.cellOf = par.Resize(p.cellOf, n)
	if p.pool != nil {
		p.pool.For(n, p.cellBody)
	} else {
		p.cellBody(0, n)
	}
	p.counts = par.Resize(p.counts, ncell+1)
	for c := range p.counts {
		p.counts[c] = 0
	}
	for i := 0; i < n; i++ {
		p.counts[p.cellOf[i]+1]++
	}
	for c := 0; c < ncell; c++ {
		p.counts[c+1] += p.counts[c]
	}
	p.order = par.Resize(p.order, n)
	p.cursor = par.Resize(p.cursor, ncell)
	copy(p.cursor, p.counts[:ncell])
	for i := 0; i < n; i++ {
		c := p.cellOf[i]
		p.order[p.cursor[c]] = int32(i)
		p.cursor[c]++
	}

	if p.pool != nil {
		p.pool.ForGrain(ncell, 64, p.linkBody)
	} else {
		p.linkBody(0, ncell)
	}

	// Glue periodic self-images and prepare the owner lookup for the stitch:
	// every active is indexed by ID, and every passive owned by this rank is
	// unioned with its active original.
	clear(p.idMap)
	for i := 0; i < na; i++ {
		p.idMap[act.ID[i]] = int32(i)
	}
	off := 0
	for _, seg := range p.d.RefreshOrigins() {
		if seg.Rank == p.comm.Rank() {
			for k := 0; k < seg.N; k++ {
				pi := off + k
				ai, ok := p.idMap[pas.ID[pi]]
				if !ok {
					panic("analysis: self-image replica has no active original; FindHalos must run on a fresh Refresh")
				}
				unionAtomic(p.parent, ai, int32(na+pi))
			}
		}
		off += seg.N
	}
	if off != pas.Len() {
		panic(fmt.Sprintf("analysis: refresh origins cover %d passives, store holds %d; FindHalos must run on a fresh Refresh", off, pas.Len()))
	}
}

// enumerateGroups flattens the union-find and numbers the local groups,
// recording per-group active counts and minimum active IDs.
func (p *Plan) enumerateGroups() {
	act := &p.d.Active
	na, n := p.na, p.n
	p.groupOf = par.Resize(p.groupOf, n)
	p.rootGroup = par.Resize(p.rootGroup, n)
	for i := range p.rootGroup {
		p.rootGroup[i] = -1
	}
	ngrp := int32(0)
	for i := 0; i < n; i++ {
		r := findAtomic(p.parent, int32(i))
		g := p.rootGroup[r]
		if g < 0 {
			g = ngrp
			p.rootGroup[r] = g
			ngrp++
		}
		p.groupOf[i] = g
	}
	p.grpActN = par.Resize(p.grpActN, int(ngrp))
	p.grpMinID = par.Resize(p.grpMinID, int(ngrp))
	p.grpMinIdx = par.Resize(p.grpMinIdx, int(ngrp))
	p.grpFlag = par.Resize(p.grpFlag, int(ngrp))
	for g := range p.grpActN {
		p.grpActN[g] = 0
		p.grpMinID[g] = math.MaxUint64
		p.grpMinIdx[g] = -1
		p.grpFlag[g] = 0
	}
	for i := 0; i < na; i++ {
		g := p.groupOf[i]
		p.grpActN[g]++
		if id := act.ID[i]; id < p.grpMinID[g] {
			p.grpMinID[g] = id
			p.grpMinIdx[g] = int32(i)
		}
	}
}

// stitch sends each remote replica's (particle ID, local group key) back to
// its owner over the neighbor legs and collects the union edges the owner
// side derives; groups touching either side of an edge are marked boundary
// and serialized into records for the global reduction.
func (p *Plan) stitch() {
	pas := &p.d.Passive
	me := p.comm.Rank()
	na := p.na
	for li := range p.legs {
		p.legs[li].send = p.legs[li].send[:0]
	}
	off := 0
	for _, seg := range p.d.RefreshOrigins() {
		if seg.Rank != me && seg.N > 0 {
			li := p.rankLeg[seg.Rank]
			if li < 0 {
				panic(fmt.Sprintf("analysis: passive replica from rank %d outside the neighbor stencil", seg.Rank))
			}
			leg := &p.legs[li]
			for k := 0; k < seg.N; k++ {
				pi := off + k
				g := p.groupOf[na+pi]
				p.grpFlag[g] |= 1
				leg.send = append(leg.send, pas.ID[pi], groupKey(me, g))
			}
		}
		off += seg.N
	}
	tag := p.nextTag()
	for li := range p.legs {
		leg := &p.legs[li]
		mpi.Isend(p.comm, leg.rank, tag, leg.send)
		mpi.IrecvInit(p.comm, leg.rank, tag, &leg.req)
	}
	p.edges = p.edges[:0]
	for li := range p.legs {
		buf := mpi.WaitRecv[uint64](&p.legs[li].req)
		for k := 0; k+1 < len(buf); k += 2 {
			id, rkey := buf[k], buf[k+1]
			ai, ok := p.idMap[id]
			if !ok {
				panic("analysis: stitched replica has no active original here; FindHalos must run on a fresh Refresh")
			}
			g := p.groupOf[ai]
			p.grpFlag[g] |= 2
			p.edges = append(p.edges, groupKey(me, g), rkey)
		}
	}

	p.grpRec = par.Resize(p.grpRec, len(p.grpActN))
	p.recs = p.recs[:0]
	nrec := int32(0)
	for g := range p.grpActN {
		if p.grpFlag[g] == 0 {
			p.grpRec[g] = -1
			continue
		}
		p.grpRec[g] = nrec
		nrec++
		var px, py, pz uint64
		if mi := p.grpMinIdx[g]; mi >= 0 {
			px = math.Float64bits(float64(p.d.Active.X[mi]))
			py = math.Float64bits(float64(p.d.Active.Y[mi]))
			pz = math.Float64bits(float64(p.d.Active.Z[mi]))
		}
		p.recs = append(p.recs,
			groupKey(me, int32(g)), uint64(p.grpActN[g]), p.grpMinID[g], px, py, pz)
	}
}

// resolveClasses gathers every rank's edges and boundary-group records and
// runs the identical union-find on all ranks, producing the global classes:
// their IDs (minimum member particle ID), total sizes, winning records, and
// reference positions. Returns the class count (identical on every rank).
func (p *Plan) resolveClasses() int {
	gEdges, gRecs := p.edges, p.recs
	if p.comm.Size() > 1 {
		gEdges = mpi.AllGather(p.comm, p.edges)
		gRecs = mpi.AllGather(p.comm, p.recs)
	}
	nrec := len(gRecs) / recWords
	clear(p.gRecIdx)
	for r := 0; r < nrec; r++ {
		p.gRecIdx[gRecs[r*recWords]] = int32(r)
	}
	p.recParent = par.Resize(p.recParent, nrec)
	for r := range p.recParent {
		p.recParent[r] = int32(r)
	}
	for k := 0; k+1 < len(gEdges); k += 2 {
		a, okA := p.gRecIdx[gEdges[k]]
		b, okB := p.gRecIdx[gEdges[k+1]]
		if !okA || !okB {
			panic("analysis: stitch edge references a group without a record")
		}
		unionAtomic(p.recParent, a, b)
	}
	p.classOf = par.Resize(p.classOf, nrec)
	p.classGID = p.classGID[:0]
	p.classN = p.classN[:0]
	p.classWinRnk = p.classWinRnk[:0]
	p.classRef = p.classRef[:0]
	nclass := int32(0)
	for r := 0; r < nrec; r++ {
		root := findAtomic(p.recParent, int32(r))
		if int32(r) == root {
			p.classOf[r] = nclass
			nclass++
			p.classGID = append(p.classGID, math.MaxUint64)
			p.classN = append(p.classN, 0)
			p.classWinRnk = append(p.classWinRnk, -1)
			p.classRef = append(p.classRef, 0, 0, 0)
		} else {
			p.classOf[r] = p.classOf[root]
		}
	}
	for r := 0; r < nrec; r++ {
		c := p.classOf[r]
		rec := gRecs[r*recWords:]
		p.classN[c] += int64(rec[1])
		if rec[2] < p.classGID[c] {
			p.classGID[c] = rec[2]
			p.classWinRnk[c] = int32(rec[0] >> 32)
			p.classRef[3*c+0] = math.Float64frombits(rec[3])
			p.classRef[3*c+1] = math.Float64frombits(rec[4])
			p.classRef[3*c+2] = math.Float64frombits(rec[5])
		}
	}
	for c := int32(0); c < nclass; c++ {
		if p.classWinRnk[c] < 0 {
			panic("analysis: boundary class with no active members")
		}
	}
	// Map my boundary groups onto their classes.
	me := p.comm.Rank()
	p.grpClass = par.Resize(p.grpClass, len(p.grpActN))
	for g := range p.grpActN {
		if p.grpRec[g] < 0 {
			p.grpClass[g] = -1
			continue
		}
		ri, ok := p.gRecIdx[groupKey(me, int32(g))]
		if !ok {
			panic("analysis: local boundary group missing from the gathered records")
		}
		p.grpClass[g] = p.classOf[ri]
	}
	return int(nclass)
}

// minImage reduces a coordinate difference into (−n/2, n/2].
func minImage(d, n float64) float64 { return d - n*math.Round(d/n) }

// wrapF64 reduces a coordinate into [0, n).
func wrapF64(v, n float64) float64 {
	r := math.Mod(v, n)
	if r < 0 {
		r += n
	}
	if r >= n {
		r = 0
	}
	return r
}

// accumulate computes halo properties: interior groups entirely locally,
// boundary classes via per-rank partial sums over active members in the
// class reference frame plus two AllReduces (sums, then RMax).
func (p *Plan) accumulate(minN int, nclass int, particleMass float64) {
	act := &p.d.Active
	me := p.comm.Rank()
	na := p.na
	n := p.d.Dec.N
	fn := [3]float64{float64(n[0]), float64(n[1]), float64(n[2])}

	// Decide which halos this rank reports and create their (zeroed) slots:
	// interior groups of mine, then boundary classes whose minimum-ID
	// particle is active here.
	p.halos = p.halos[:0]
	p.grpHalo = par.Resize(p.grpHalo, len(p.grpActN))
	nInterior := 0
	for g := range p.grpActN {
		p.grpHalo[g] = -1
		if p.grpRec[g] < 0 && int(p.grpActN[g]) >= minN {
			p.grpHalo[g] = int32(len(p.halos))
			p.halos = append(p.halos, Halo{
				N:    int(p.grpActN[g]),
				GID:  p.grpMinID[g],
				Mass: float64(p.grpActN[g]) * particleMass,
			})
			nInterior++
		}
	}
	p.classHalo = par.Resize(p.classHalo, nclass)
	for c := 0; c < nclass; c++ {
		p.classHalo[c] = -1
		if int(p.classWinRnk[c]) == me && int(p.classN[c]) >= minN {
			p.classHalo[c] = int32(len(p.halos))
			p.halos = append(p.halos, Halo{
				N:    int(p.classN[c]),
				GID:  p.classGID[c],
				Mass: float64(p.classN[c]) * particleMass,
			})
		}
	}

	// Pass 1: minimum-image offset and velocity sums per target. Interior
	// halos accumulate into local per-halo slots; boundary groups into the
	// shared per-class vector that is reduced across ranks.
	p.sums = par.Resize(p.sums, 6*nclass)
	for i := range p.sums {
		p.sums[i] = 0
	}
	p.sumsH = par.Resize(p.sumsH, 6*nInterior)
	for i := range p.sumsH {
		p.sumsH[i] = 0
	}
	for i := 0; i < na; i++ {
		g := p.groupOf[i]
		var ref [3]float64
		var dst []float64
		if c := p.grpClass[g]; c >= 0 {
			ref = [3]float64{p.classRef[3*c], p.classRef[3*c+1], p.classRef[3*c+2]}
			dst = p.sums[6*c : 6*c+6]
		} else if h := p.grpHalo[g]; h >= 0 {
			mi := p.grpMinIdx[g]
			ref = [3]float64{float64(act.X[mi]), float64(act.Y[mi]), float64(act.Z[mi])}
			dst = p.sumsH[6*h : 6*h+6]
		} else {
			continue
		}
		dst[0] += minImage(float64(act.X[i])-ref[0], fn[0])
		dst[1] += minImage(float64(act.Y[i])-ref[1], fn[1])
		dst[2] += minImage(float64(act.Z[i])-ref[2], fn[2])
		dst[3] += float64(act.Vx[i])
		dst[4] += float64(act.Vy[i])
		dst[5] += float64(act.Vz[i])
	}
	if p.comm.Size() > 1 && nclass > 0 {
		red := mpi.AllReduce(p.comm, p.sums, mpi.SumF64)
		copy(p.sums, red)
	}

	// Finalize centers/velocities; keep the mean offsets for the RMax pass.
	p.meanH = par.Resize(p.meanH, 3*nInterior)
	p.classMean = par.Resize(p.classMean, 3*nclass)
	for g := range p.grpActN {
		h := p.grpHalo[g]
		if h < 0 || p.grpRec[g] >= 0 {
			continue
		}
		mi := p.grpMinIdx[g]
		ref := [3]float64{float64(act.X[mi]), float64(act.Y[mi]), float64(act.Z[mi])}
		p.finishHalo(int(h), ref, p.sumsH[6*h:6*h+6], p.meanH[3*h:3*h+3], fn)
	}
	for c := 0; c < nclass; c++ {
		s := p.sums[6*c : 6*c+6]
		cnt := float64(p.classN[c])
		mean := p.classMean[3*c : 3*c+3]
		mean[0], mean[1], mean[2] = s[0]/cnt, s[1]/cnt, s[2]/cnt
		if h := p.classHalo[c]; h >= 0 {
			ref := [3]float64{p.classRef[3*c], p.classRef[3*c+1], p.classRef[3*c+2]}
			p.finishHalo(int(h), ref, s, mean, fn)
		}
	}

	// Pass 2: RMax — max distance of any active member from the center of
	// mass, evaluated as |offset − mean offset| in the reference frame.
	p.rmax = par.Resize(p.rmax, nclass)
	for c := range p.rmax {
		p.rmax[c] = 0
	}
	for i := 0; i < na; i++ {
		g := p.groupOf[i]
		if c := p.grpClass[g]; c >= 0 {
			dx := minImage(float64(act.X[i])-p.classRef[3*c], fn[0]) - p.classMean[3*c]
			dy := minImage(float64(act.Y[i])-p.classRef[3*c+1], fn[1]) - p.classMean[3*c+1]
			dz := minImage(float64(act.Z[i])-p.classRef[3*c+2], fn[2]) - p.classMean[3*c+2]
			if r := math.Sqrt(dx*dx + dy*dy + dz*dz); r > p.rmax[c] {
				p.rmax[c] = r
			}
		} else if h := p.grpHalo[g]; h >= 0 {
			mi := p.grpMinIdx[g]
			dx := minImage(float64(act.X[i])-float64(act.X[mi]), fn[0]) - p.meanH[3*h]
			dy := minImage(float64(act.Y[i])-float64(act.Y[mi]), fn[1]) - p.meanH[3*h+1]
			dz := minImage(float64(act.Z[i])-float64(act.Z[mi]), fn[2]) - p.meanH[3*h+2]
			if r := math.Sqrt(dx*dx + dy*dy + dz*dz); r > p.halos[h].RMax {
				p.halos[h].RMax = r
			}
		}
	}
	if p.comm.Size() > 1 && nclass > 0 {
		red := mpi.AllReduce(p.comm, p.rmax, mpi.MaxF64)
		copy(p.rmax, red)
	}
	for c := 0; c < nclass; c++ {
		if h := p.classHalo[c]; h >= 0 {
			p.halos[h].RMax = p.rmax[c]
		}
	}
}

// finishHalo converts accumulated sums into a halo's center of mass (the
// reference position plus the mean minimum-image offset, wrapped into the
// box) and mean velocity, storing the mean offset for the RMax pass. The
// halo's N was set at slot creation.
func (p *Plan) finishHalo(h int, ref [3]float64, sums, mean []float64, fn [3]float64) {
	cnt := float64(p.halos[h].N)
	mean[0], mean[1], mean[2] = sums[0]/cnt, sums[1]/cnt, sums[2]/cnt
	p.halos[h].X = wrapF64(ref[0]+mean[0], fn[0])
	p.halos[h].Y = wrapF64(ref[1]+mean[1], fn[1])
	p.halos[h].Z = wrapF64(ref[2]+mean[2], fn[2])
	p.halos[h].VX = sums[3] / cnt
	p.halos[h].VY = sums[4] / cnt
	p.halos[h].VZ = sums[5] / cnt
}

// fillMembersAndGIDs builds per-halo local member lists (combined
// active+passive indices, grouped contiguously in plan-owned storage) and
// the per-active global group IDs.
func (p *Plan) fillMembersAndGIDs() {
	na, n := p.na, p.n
	nh := len(p.halos)
	p.memberCnt = par.Resize(p.memberCnt, nh)
	p.memberOff = par.Resize(p.memberOff, nh+1)
	for h := 0; h < nh; h++ {
		p.memberCnt[h] = 0
	}
	for i := 0; i < n; i++ {
		if h := p.haloOfGroup(p.groupOf[i]); h >= 0 {
			p.memberCnt[h]++
		}
	}
	p.memberOff[0] = 0
	for h := 0; h < nh; h++ {
		p.memberOff[h+1] = p.memberOff[h] + p.memberCnt[h]
	}
	p.memberBuf = par.Resize(p.memberBuf, int(p.memberOff[nh]))
	for h := 0; h < nh; h++ {
		p.memberCnt[h] = p.memberOff[h] // reuse as fill cursor
	}
	for i := 0; i < n; i++ {
		if h := p.haloOfGroup(p.groupOf[i]); h >= 0 {
			p.memberBuf[p.memberCnt[h]] = int32(i)
			p.memberCnt[h]++
		}
	}
	for h := 0; h < nh; h++ {
		p.halos[h].Members = p.memberBuf[p.memberOff[h]:p.memberOff[h+1]]
	}

	p.gids = par.Resize(p.gids, na)
	for i := 0; i < na; i++ {
		g := p.groupOf[i]
		if c := p.grpClass[g]; c >= 0 {
			p.gids[i] = p.classGID[c]
		} else {
			p.gids[i] = p.grpMinID[g]
		}
	}
}

// haloOfGroup maps a local group to the output halo it reports into on this
// rank, or -1.
func (p *Plan) haloOfGroup(g int32) int32 {
	if c := p.grpClass[g]; c >= 0 {
		return p.classHalo[c]
	}
	return p.grpHalo[g]
}
