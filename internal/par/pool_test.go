package par

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	pool := NewPool(4)
	const n = 100000
	marks := make([]int32, n)
	for rep := 0; rep < 20; rep++ {
		for i := range marks {
			marks[i] = 0
		}
		pool.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i]++
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("rep %d: index %d visited %d times", rep, i, m)
			}
		}
	}
}

func TestForSmallRunsSerial(t *testing.T) {
	pool := NewPool(8)
	var total int64
	pool.For(100, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 100 {
		t.Fatalf("covered %d of 100", total)
	}
}

func TestForZeroAndSingleWorker(t *testing.T) {
	for _, workers := range []int{0, 1} {
		pool := NewPool(workers)
		if pool.Workers() != 1 {
			t.Fatalf("workers=%d: pool has %d workers, want 1", workers, pool.Workers())
		}
		ran := false
		pool.For(10, func(lo, hi int) {
			if lo != 0 || hi != 10 {
				t.Fatalf("serial pool sharded: [%d,%d)", lo, hi)
			}
			ran = true
		})
		if !ran {
			t.Fatal("body never ran")
		}
	}
}

func TestRunDistinctWorkerIDs(t *testing.T) {
	pool := NewPool(4)
	for rep := 0; rep < 10; rep++ {
		var mask atomic.Int64
		pool.Run(0, func(w int) {
			mask.Add(1 << w)
		})
		if mask.Load() != 0b1111 {
			t.Fatalf("rep %d: worker ids not distinct/complete: %b", rep, mask.Load())
		}
	}
}

func TestRunClampsK(t *testing.T) {
	pool := NewPool(3)
	var count atomic.Int64
	pool.Run(10, func(w int) {
		if w < 0 || w >= 3 {
			t.Errorf("worker id %d out of range", w)
		}
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("ran %d bodies, want 3", count.Load())
	}
}

func BenchmarkPoolForAllocs(b *testing.B) {
	pool := NewPool(4)
	data := make([]float32, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.For(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		})
	}
}

func TestForStealCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			for _, grain := range []int{1, 3, 64} {
				p := NewPool(workers)
				counts := make([]int32, n)
				p.ForSteal(n, grain, func(w, lo, hi int) {
					if w < 0 || w >= workers {
						t.Errorf("worker id %d out of range [0,%d)", w, workers)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, c)
					}
				}
			}
		}
	}
}

func TestForStealSerialFallback(t *testing.T) {
	p := NewPool(4)
	// A single chunk cannot be split: must run inline with w=0, no steals.
	ran := false
	stolen := p.ForSteal(10, 100, func(w, lo, hi int) {
		ran = true
		if w != 0 || lo != 0 || hi != 10 {
			t.Errorf("serial fallback got (w=%d,[%d,%d)), want (0,[0,10))", w, lo, hi)
		}
	})
	if !ran || stolen != 0 {
		t.Errorf("ran=%v stolen=%d, want true/0", ran, stolen)
	}
	if got := NewPool(1).ForSteal(1000, 1, func(w, lo, hi int) {}); got != 0 {
		t.Errorf("1-worker pool stole %d chunks", got)
	}
}

// TestForStealBalancesSkewedLoad pins the point of the dispatch: with all
// the cost piled onto one worker's static shard, the other workers must
// steal from it rather than idle.
func TestForStealBalancesSkewedLoad(t *testing.T) {
	p := NewPool(4)
	const n = 64
	var stolen int64
	for try := 0; try < 20 && stolen == 0; try++ {
		stolen = p.ForSteal(n, 1, func(w, lo, hi int) {
			if lo < n/4 {
				// Worker 0's shard is 100× the cost of everyone else's.
				time.Sleep(2 * time.Millisecond)
			}
		})
	}
	if stolen == 0 {
		t.Fatal("no chunks stolen from the overloaded shard")
	}
}

// TestForStealMatchesFor pins ForSteal ≡ For: per-target accumulation gives
// bit-identical results regardless of worker count or stealing schedule.
func TestForStealMatchesFor(t *testing.T) {
	const n = 4096
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Sin(float64(i))
	}
	want := make([]float64, n)
	NewPool(1).For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = math.Sqrt(in[i]*in[i]+1) * float64(i%7)
		}
	})
	for _, workers := range []int{1, 2, 3, 8} {
		got := make([]float64, n)
		NewPool(workers).ForSteal(n, 16, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = math.Sqrt(in[i]*in[i]+1) * float64(i%7)
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d got %v want %v", workers, i, got[i], want[i])
			}
		}
	}
}
