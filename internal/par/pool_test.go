package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	pool := NewPool(4)
	const n = 100000
	marks := make([]int32, n)
	for rep := 0; rep < 20; rep++ {
		for i := range marks {
			marks[i] = 0
		}
		pool.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i]++
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("rep %d: index %d visited %d times", rep, i, m)
			}
		}
	}
}

func TestForSmallRunsSerial(t *testing.T) {
	pool := NewPool(8)
	var total int64
	pool.For(100, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 100 {
		t.Fatalf("covered %d of 100", total)
	}
}

func TestForZeroAndSingleWorker(t *testing.T) {
	for _, workers := range []int{0, 1} {
		pool := NewPool(workers)
		if pool.Workers() != 1 {
			t.Fatalf("workers=%d: pool has %d workers, want 1", workers, pool.Workers())
		}
		ran := false
		pool.For(10, func(lo, hi int) {
			if lo != 0 || hi != 10 {
				t.Fatalf("serial pool sharded: [%d,%d)", lo, hi)
			}
			ran = true
		})
		if !ran {
			t.Fatal("body never ran")
		}
	}
}

func TestRunDistinctWorkerIDs(t *testing.T) {
	pool := NewPool(4)
	for rep := 0; rep < 10; rep++ {
		var mask atomic.Int64
		pool.Run(0, func(w int) {
			mask.Add(1 << w)
		})
		if mask.Load() != 0b1111 {
			t.Fatalf("rep %d: worker ids not distinct/complete: %b", rep, mask.Load())
		}
	}
}

func TestRunClampsK(t *testing.T) {
	pool := NewPool(3)
	var count atomic.Int64
	pool.Run(10, func(w int) {
		if w < 0 || w >= 3 {
			t.Errorf("worker id %d out of range", w)
		}
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("ran %d bodies, want 3", count.Load())
	}
}

func BenchmarkPoolForAllocs(b *testing.B) {
	pool := NewPool(4)
	data := make([]float32, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.For(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		})
	}
}
