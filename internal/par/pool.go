package par

import (
	"runtime"
	"sync"
)

type span struct{ lo, hi int }

// state is the part of the pool the workers reference. It deliberately
// excludes the Pool handle itself so that an abandoned Pool becomes
// unreachable and its finalizer can shut the workers down.
type state struct {
	body    func(lo, hi int) // set by For
	runBody func(w int)      // set by Run
	wg      sync.WaitGroup
}

// Pool is a fixed set of persistent worker goroutines. Dispatch is not
// reentrant: a loop body must not itself call into the same Pool.
type Pool struct {
	st    *state
	chans []chan span
}

// NewPool starts `workers` parked goroutines (minimum 1). Workers exit when
// the Pool is garbage-collected, so an abandoned Pool does not leak them
// past the next GC cycle.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	st := &state{}
	p := &Pool{st: st, chans: make([]chan span, workers)}
	for w := 0; w < workers; w++ {
		ch := make(chan span, 1)
		p.chans[w] = ch
		go func(ch chan span) {
			for sp := range ch {
				if st.runBody != nil {
					st.runBody(sp.lo)
				} else {
					st.body(sp.lo, sp.hi)
				}
				st.wg.Done()
			}
		}(ch)
	}
	runtime.SetFinalizer(p, func(p *Pool) {
		for _, ch := range p.chans {
			close(ch)
		}
	})
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.chans) }

// minSpan is the smallest per-worker range worth a dispatch; below it the
// channel round-trip costs more than the loop.
const minSpan = 2048

// For runs body over [0,n) split into contiguous shards, one per worker,
// and waits for completion. Small ranges run serially on the caller.
func (p *Pool) For(n int, body func(lo, hi int)) {
	p.ForGrain(n, minSpan, body)
}

// ForGrain is For with an explicit grain: the smallest per-worker span worth
// a dispatch. Use it when one index represents substantial work (a whole FFT
// row, say) and the default element-count heuristic would stay serial.
func (p *Pool) ForGrain(n, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	threads := len(p.chans)
	if lim := n / grain; threads > lim {
		threads = lim
	}
	if threads <= 1 {
		body(0, n)
		return
	}
	st := p.st
	st.body = body
	st.wg.Add(threads)
	for t := 0; t < threads; t++ {
		p.chans[t] <- span{n * t / threads, n * (t + 1) / threads}
	}
	st.wg.Wait()
	st.body = nil
}

// Run invokes body(w) concurrently on workers w = 0..k-1 (clamped to the
// pool size; k ≤ 0 means all workers) and waits. Use it for dynamically
// load-balanced loops: bodies pull work from a shared atomic counter and
// index per-worker scratch by w.
func (p *Pool) Run(k int, body func(w int)) {
	if k <= 0 || k > len(p.chans) {
		k = len(p.chans)
	}
	if k == 1 {
		body(0)
		return
	}
	st := p.st
	st.runBody = body
	st.wg.Add(k)
	for t := 0; t < k; t++ {
		p.chans[t] <- span{t, 0}
	}
	st.wg.Wait()
	st.runBody = nil
}
