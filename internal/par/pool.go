package par

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

type span struct{ lo, hi int }

// deque is one worker's chunk range for ForSteal: a packed head|tail word
// (each 32 bits, half-open [head, tail) over global chunk indices). The
// owner CASes the head forward; thieves CAS the tail backward, so both ends
// shrink monotonically and every chunk is claimed exactly once. Padding
// keeps neighboring deques off the same cache line.
type deque struct {
	hb atomic.Uint64
	_  [56]byte
}

// stealState is the reusable ForSteal dispatch state (no allocation on the
// warm path beyond the caller's body closure).
type stealState struct {
	n, grain int
	body     func(w, lo, hi int)
	stolen   atomic.Int64
	deq      []deque
}

// state is the part of the pool the workers reference. It deliberately
// excludes the Pool handle itself so that an abandoned Pool becomes
// unreachable and its finalizer can shut the workers down.
type state struct {
	body     func(lo, hi int) // set by For
	runBody  func(w int)      // set by Run
	stealRun func(w int)      // bound stealLoop, created once in NewPool
	steal    stealState
	wg       sync.WaitGroup
}

// Pool is a fixed set of persistent worker goroutines. Dispatch is not
// reentrant: a loop body must not itself call into the same Pool.
type Pool struct {
	st    *state
	chans []chan span
}

// NewPool starts `workers` parked goroutines (minimum 1). Workers exit when
// the Pool is garbage-collected, so an abandoned Pool does not leak them
// past the next GC cycle.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	st := &state{}
	st.stealRun = func(w int) { st.stealLoop(w) }
	p := &Pool{st: st, chans: make([]chan span, workers)}
	for w := 0; w < workers; w++ {
		ch := make(chan span, 1)
		p.chans[w] = ch
		go func(ch chan span) {
			for sp := range ch {
				if st.runBody != nil {
					st.runBody(sp.lo)
				} else {
					st.body(sp.lo, sp.hi)
				}
				st.wg.Done()
			}
		}(ch)
	}
	runtime.SetFinalizer(p, func(p *Pool) {
		for _, ch := range p.chans {
			close(ch)
		}
	})
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.chans) }

// minSpan is the smallest per-worker range worth a dispatch; below it the
// channel round-trip costs more than the loop.
const minSpan = 2048

// For runs body over [0,n) split into contiguous shards, one per worker,
// and waits for completion. Small ranges run serially on the caller.
func (p *Pool) For(n int, body func(lo, hi int)) {
	p.ForGrain(n, minSpan, body)
}

// ForGrain is For with an explicit grain: the smallest per-worker span worth
// a dispatch. Use it when one index represents substantial work (a whole FFT
// row, say) and the default element-count heuristic would stay serial.
func (p *Pool) ForGrain(n, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	threads := len(p.chans)
	if lim := n / grain; threads > lim {
		threads = lim
	}
	if threads <= 1 {
		body(0, n)
		return
	}
	st := p.st
	st.body = body
	st.wg.Add(threads)
	for t := 0; t < threads; t++ {
		p.chans[t] <- span{n * t / threads, n * (t + 1) / threads}
	}
	st.wg.Wait()
	st.body = nil
}

// Run invokes body(w) concurrently on workers w = 0..k-1 (clamped to the
// pool size; k ≤ 0 means all workers) and waits. Use it for dynamically
// load-balanced loops: bodies pull work from a shared atomic counter and
// index per-worker scratch by w.
func (p *Pool) Run(k int, body func(w int)) {
	if k <= 0 || k > len(p.chans) {
		k = len(p.chans)
	}
	if k == 1 {
		body(0)
		return
	}
	st := p.st
	st.runBody = body
	st.wg.Add(k)
	for t := 0; t < k; t++ {
		p.chans[t] <- span{t, 0}
	}
	st.wg.Wait()
	st.runBody = nil
}

// ForSteal runs body over [0,n) in chunks of `grain`, distributed by
// work stealing: each worker starts with a contiguous shard of chunks (same
// split as ForGrain, so owner-processed work keeps its locality) and, once
// drained, steals trailing chunks from the busiest-looking neighbors. Use it
// when per-index cost varies wildly (tree leaves in a clustered region cost
// 100× the mean) and a static split would leave workers idle.
//
// body receives the executing worker id w for scratch indexing; a given
// index range runs exactly once, but on an unpredictable worker. Callers
// whose accumulation is per-target (disjoint output slices per index) stay
// bitwise independent of the worker count and of which chunks were stolen.
//
// Returns the number of stolen chunks (0 when the range ran serially).
func (p *Pool) ForSteal(n, grain int, body func(w, lo, hi int)) int64 {
	if grain < 1 {
		grain = 1
	}
	nchunks := (n + grain - 1) / grain
	if nchunks > math.MaxInt32 {
		panic(fmt.Sprintf("par: ForSteal range %d/%d overflows chunk index", n, grain))
	}
	w := len(p.chans)
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return 0
	}
	ss := &p.st.steal
	if cap(ss.deq) < w {
		ss.deq = make([]deque, len(p.chans))
	}
	ss.deq = ss.deq[:w]
	ss.n, ss.grain, ss.body = n, grain, body
	ss.stolen.Store(0)
	for t := 0; t < w; t++ {
		lo := nchunks * t / w
		hi := nchunks * (t + 1) / w
		ss.deq[t].hb.Store(uint64(lo)<<32 | uint64(hi))
	}
	p.Run(w, p.st.stealRun)
	ss.body = nil
	return ss.stolen.Load()
}

// stealLoop is one worker's ForSteal schedule: drain the own deque from the
// head (ascending, cache-friendly), then sweep the other deques once in ring
// order stealing from their tails. Deques never refill, so a single sweep
// terminates with every chunk claimed exactly once.
func (st *state) stealLoop(w int) {
	ss := &st.steal
	nw := len(ss.deq)
	for off := 0; off < nw; off++ {
		v := w + off
		if v >= nw {
			v -= nw
		}
		own := off == 0
		d := &ss.deq[v]
		for {
			hb := d.hb.Load()
			h := uint32(hb >> 32)
			t := uint32(hb)
			if h >= t {
				break
			}
			var c uint32
			var nhb uint64
			if own {
				c = h
				nhb = uint64(h+1)<<32 | uint64(t)
			} else {
				c = t - 1
				nhb = uint64(h)<<32 | uint64(t-1)
			}
			if !d.hb.CompareAndSwap(hb, nhb) {
				continue
			}
			lo := int(c) * ss.grain
			hi := lo + ss.grain
			if hi > ss.n {
				hi = ss.n
			}
			ss.body(w, lo, hi)
			if !own {
				ss.stolen.Add(1)
			}
		}
	}
}
