// Package par provides a persistent worker pool for the hot per-substep
// loops (PR 1). Spawning goroutines per parallel region costs several small
// heap allocations (closure, waitgroup escape, goroutine bookkeeping) —
// repeated millions of times over a run, that churn is exactly what the
// paper's "every component threaded, nothing allocated in the main loop"
// design avoids. A Pool keeps its workers parked on channels between
// regions, so dispatching a sharded loop allocates only the loop closure
// itself; plans that must dispatch allocation-free store persistent bodies
// and publish per-call parameters through plan fields. Resize is the shared
// grow-in-place policy for every persistent scratch buffer in the codebase.
package par
