package par

// Resize returns s with length n, reusing capacity when possible; grown
// regions are not cleared (callers overwrite). The shared grow policy for
// every persistent scratch buffer in the codebase.
func Resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
