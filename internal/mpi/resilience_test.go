package mpi

// Failure-injection and deadline tests that exercise inproc-world internals
// (process-global fault plans parked across ranks, RunDeadline's goroutine
// abandonment, mailbox introspection). The transport-portable classification
// contracts — abort reasons reaching peers, timeout errors, drop parity —
// run against every transport in conformance_test.go.

import (
	"errors"
	"testing"
	"time"

	"hacc/internal/fault"
)

// An injected kill: the fault.Crash panic value must survive Run's error
// wrapping so supervisors can classify it.
func TestInjectedKillClassifiableFromRun(t *testing.T) {
	fault.Arm(fault.MustParse("kill send rank 2"))
	defer fault.Disarm()
	err := Run(4, func(c *Comm) {
		Barrier(c)
	})
	if err == nil {
		t.Fatal("Run returned nil despite an injected kill")
	}
	var crash *fault.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("cannot recover *fault.Crash from Run error: %v", err)
	}
	if crash.Rank != 2 {
		t.Fatalf("Crash.Rank = %d, want 2", crash.Rank)
	}
}

// A rank that stops participating without panicking (simulated here by an
// injected hang) is detected by the per-operation timeout: its peers' Recv
// fails with *TimeoutError instead of blocking forever. The hung rank
// itself cannot finish, so the attempt runs under RunDeadline, exactly as
// the supervisor drives it.
func TestOpTimeoutDetectsHungPeer(t *testing.T) {
	fault.Arm(fault.MustParse("hang send rank 1"))
	defer fault.Disarm()
	w := NewWorld(3)
	w.SetTimeout(200 * time.Millisecond)
	start := time.Now()
	err := w.RunDeadline(func(c *Comm) {
		Barrier(c)
	}, 2*time.Second)
	elapsed := time.Since(start)
	fault.Interrupt() // drain the parked goroutine
	if err == nil {
		t.Fatal("Run returned nil despite a hung rank")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError in chain, got %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("hang detection took %v", elapsed)
	}
}

// RunDeadline catches a rank wedged outside mpi calls entirely — the case
// per-operation timeouts cannot see. The leaked goroutine is drained by
// fault.Interrupt, as the supervisor does during teardown.
func TestRunDeadlineCatchesNonMPIWedge(t *testing.T) {
	fault.Arm(fault.MustParse("hang collective rank 1"))
	defer fault.Disarm()
	w := NewWorld(2)
	start := time.Now()
	err := w.RunDeadline(func(c *Comm) {
		Barrier(c) // rank 1 parks inside the injector, not in a mailbox
	}, 300*time.Millisecond)
	elapsed := time.Since(start)
	fault.Interrupt()
	if err == nil {
		t.Fatal("RunDeadline returned nil despite a wedged rank")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline detection took %v", elapsed)
	}
}

func TestRunDeadlineCleanCompletion(t *testing.T) {
	w := NewWorld(3)
	err := w.RunDeadline(func(c *Comm) {
		v := AllReduce(c, []int{c.Rank()}, SumInt)
		if v[0] != 3 {
			panic("bad allreduce")
		}
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

// The no-fault hot path must not pay for the hooks: with nothing armed the
// per-send overhead is one atomic load. Pin allocation-freedom, which is
// what the existing comm pins rely on.
func TestUnarmedSendAllocFree(t *testing.T) {
	fault.Disarm()
	err := Run(1, func(c *Comm) {
		buf := []byte{1}
		allocs := testing.AllocsPerRun(100, func() {
			c.send(0, 3, nil, 0)
			_ = buf
		})
		// send of a nil payload: the message append may grow the pending
		// slice, so allow the slice growth but nothing proportional.
		if allocs > 1 {
			panic("unarmed send allocates")
		}
		c.world.boxes[0].mu.Lock()
		c.world.boxes[0].pending = nil
		c.world.boxes[0].mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
}
