package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hacc/internal/fault"
)

// Satellite regression (ISSUE 6): a rank panicking while its peers are
// blocked in Irecv.Wait and Barrier must surface as an error from Run
// within a bounded time — the recover path aborts the world and wakes
// every parked waiter; it must not deadlock on the survivors.
func TestAbortUnblocksPeersInWaitAndBarrier(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(4, func(c *Comm) {
			switch c.Rank() {
			case 0:
				// Parked in a blocking nonblocking-wait for a message rank 1
				// will never send.
				r := Irecv(c, 1, 99)
				r.Wait()
			case 1:
				time.Sleep(20 * time.Millisecond) // let peers park first
				panic("simulated rank death")
			default:
				// Parked in a collective that can never complete.
				Barrier(c)
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil despite a rank panic")
		}
		if !strings.Contains(err.Error(), "rank 1") {
			t.Fatalf("error does not identify the failing rank: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung: abort did not propagate to blocked peers")
	}
}

// The same scenario via an injected kill: the fault.Crash panic value must
// survive Run's error wrapping so supervisors can classify it.
func TestInjectedKillClassifiableFromRun(t *testing.T) {
	fault.Arm(fault.MustParse("kill send rank 2"))
	defer fault.Disarm()
	err := Run(4, func(c *Comm) {
		Barrier(c)
	})
	if err == nil {
		t.Fatal("Run returned nil despite an injected kill")
	}
	var crash *fault.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("cannot recover *fault.Crash from Run error: %v", err)
	}
	if crash.Rank != 2 {
		t.Fatalf("Crash.Rank = %d, want 2", crash.Rank)
	}
}

func TestAbortErrorReachesPeers(t *testing.T) {
	errs := make(chan error, 4)
	_ = Run(4, func(c *Comm) {
		defer func() {
			if p := recover(); p != nil {
				if e, ok := p.(error); ok {
					errs <- e
				}
				panic(p) // keep Run's accounting intact
			}
		}()
		if c.Rank() == 3 {
			c.Abort("disk on fire")
			return
		}
		Recv[byte](c, 3, 7) // never sent
	})
	close(errs)
	var aborts int
	for e := range errs {
		var ae *AbortError
		if errors.As(e, &ae) {
			aborts++
			if ae.Rank == 3 {
				if ae.Reason != "disk on fire" {
					t.Fatalf("aborting rank's reason %q", ae.Reason)
				}
			} else if !strings.Contains(ae.Reason, "rank 3") {
				t.Fatalf("peer abort reason %q does not name the cause", ae.Reason)
			}
		}
	}
	if aborts != 4 {
		t.Fatalf("%d ranks surfaced *AbortError, want 4", aborts)
	}
}

// A rank that stops participating without panicking (simulated here by an
// injected hang) is detected by the per-operation timeout: its peers' Recv
// fails with *TimeoutError instead of blocking forever. The hung rank
// itself cannot finish, so the attempt runs under RunDeadline, exactly as
// the supervisor drives it.
func TestOpTimeoutDetectsHungPeer(t *testing.T) {
	fault.Arm(fault.MustParse("hang send rank 1"))
	defer fault.Disarm()
	w := NewWorld(3)
	w.SetTimeout(200 * time.Millisecond)
	start := time.Now()
	err := w.RunDeadline(func(c *Comm) {
		Barrier(c)
	}, 2*time.Second)
	elapsed := time.Since(start)
	fault.Interrupt() // drain the parked goroutine
	if err == nil {
		t.Fatal("Run returned nil despite a hung rank")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError in chain, got %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("hang detection took %v", elapsed)
	}
}

func TestWaitTimeoutReturnsInsteadOfPanicking(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			r := Irecv(c, 1, 5)
			err := r.WaitTimeout(100 * time.Millisecond)
			var te *TimeoutError
			if !errors.As(err, &te) {
				panic("WaitTimeout did not time out: " + err.Error())
			}
			if te.Rank != 0 || te.Src != 1 || te.Tag != 5 {
				panic("TimeoutError fields wrong: " + te.Error())
			}
			// The request is still incomplete and completable: rank 1's
			// late message must be receivable after a failed wait.
			if r.Done() {
				panic("request marked done after timeout")
			}
			r.Wait()
			if got := Payload[byte](&r); len(got) != 1 || got[0] != 42 {
				panic("late payload corrupted")
			}
		} else {
			time.Sleep(300 * time.Millisecond)
			Send(c, 0, 5, []byte{42})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// RunDeadline catches a rank wedged outside mpi calls entirely — the case
// per-operation timeouts cannot see. The leaked goroutine is drained by
// fault.Interrupt, as the supervisor does during teardown.
func TestRunDeadlineCatchesNonMPIWedge(t *testing.T) {
	fault.Arm(fault.MustParse("hang collective rank 1"))
	defer fault.Disarm()
	w := NewWorld(2)
	start := time.Now()
	err := w.RunDeadline(func(c *Comm) {
		Barrier(c) // rank 1 parks inside the injector, not in a mailbox
	}, 300*time.Millisecond)
	elapsed := time.Since(start)
	fault.Interrupt()
	if err == nil {
		t.Fatal("RunDeadline returned nil despite a wedged rank")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline detection took %v", elapsed)
	}
}

func TestRunDeadlineCleanCompletion(t *testing.T) {
	w := NewWorld(3)
	err := w.RunDeadline(func(c *Comm) {
		v := AllReduce(c, []int{c.Rank()}, SumInt)
		if v[0] != 3 {
			panic("bad allreduce")
		}
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDroppedSendLosesMessage(t *testing.T) {
	fault.Arm(fault.MustParse("drop send rank 0 once"))
	defer fault.Disarm()
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []byte{1}) // dropped
			Send(c, 1, 2, []byte{2}) // delivered
		} else {
			got := Recv[byte](c, 0, 2)
			if len(got) != 1 || got[0] != 2 {
				panic("wrong message delivered")
			}
			if _, ok, _ := c.world.boxes[1].tryTake(c.ctx, 0, 1); ok {
				panic("dropped message was delivered")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The no-fault hot path must not pay for the hooks: with nothing armed the
// per-send overhead is one atomic load. Pin allocation-freedom, which is
// what the existing comm pins rely on.
func TestUnarmedSendAllocFree(t *testing.T) {
	fault.Disarm()
	err := Run(1, func(c *Comm) {
		buf := []byte{1}
		allocs := testing.AllocsPerRun(100, func() {
			c.send(0, 3, nil, 0)
			_ = buf
		})
		// send of a nil payload: the message append may grow the pending
		// slice, so allow the slice growth but nothing proportional.
		if allocs > 1 {
			panic("unarmed send allocates")
		}
		c.world.boxes[0].mu.Lock()
		c.world.boxes[0].pending = nil
		c.world.boxes[0].mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
}
