package mpi

import (
	"testing"
)

func TestIsendIrecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			req := Isend(c, 1, 3, []float64{1, 2, 3})
			if !req.Done() {
				t.Error("eager Isend must complete at post time")
			}
			req.Wait() // must be a no-op
		} else {
			req := Irecv(c, 0, 3)
			got := WaitRecv[float64](&req)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIrecvCompletionOrdering posts receives before any message exists and
// completes them against messages that arrive in the opposite order: each
// request must match its own tag regardless of posting or arrival order.
func TestIrecvCompletionOrdering(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			// Wait for the receiver to have posted both requests, then send
			// tag 9 before tag 8.
			Recv[byte](c, 1, 0)
			Send(c, 1, 9, []int{9})
			Send(c, 1, 8, []int{8})
		} else {
			r8 := Irecv(c, 0, 8)
			r9 := Irecv(c, 0, 9)
			if r8.Test() || r9.Test() {
				t.Error("request completed before any send")
			}
			Send(c, 0, 0, []byte{1})
			// Complete in post order even though arrival order is 9, 8.
			if got := WaitRecv[int](&r8); got[0] != 8 {
				t.Errorf("r8 got %v", got)
			}
			if got := WaitRecv[int](&r9); got[0] != 9 {
				t.Errorf("r9 got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSameEnvelopeFIFO: two messages on the same (source, tag) envelope must
// complete posted receives in send order.
func TestSameEnvelopeFIFO(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 5, []int{1})
			Send(c, 1, 5, []int{2})
		} else {
			first := Irecv(c, 0, 5)
			second := Irecv(c, 0, 5)
			if got := WaitRecv[int](&first); got[0] != 1 {
				t.Errorf("first got %v", got)
			}
			if got := WaitRecv[int](&second); got[0] != 2 {
				t.Errorf("second got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAllMixedTags drains a plan-style request slice whose legs carry
// distinct tags and sources.
func TestWaitAllMixedTags(t *testing.T) {
	const p = 5
	err := Run(p, func(c *Comm) {
		me := c.Rank()
		if me == 0 {
			reqs := make([]Request, p-1)
			for r := 1; r < p; r++ {
				IrecvInit(c, r, 100+r, &reqs[r-1])
			}
			WaitAll(reqs)
			for r := 1; r < p; r++ {
				got := Payload[int](&reqs[r-1])
				if len(got) != 1 || got[0] != r*r {
					t.Errorf("from %d: got %v", r, got)
				}
			}
		} else {
			Isend(c, 0, 100+me, []int{me * me})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBufferReuseAfterPost pins the eager-send contract the exchange plans
// rely on: a persistent pack buffer may be overwritten as soon as Isend
// returns, and a Wait-completed payload is owned by the receiver.
func TestBufferReuseAfterPost(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int{1, 2, 3}
			Isend(c, 1, 0, buf)
			buf[0] = 99 // reuse immediately: must not reach the receiver
			Isend(c, 1, 1, buf)
		} else {
			ra := Irecv(c, 0, 0)
			rb := Irecv(c, 0, 1)
			a := WaitRecv[int](&ra)
			if a[0] != 1 {
				t.Errorf("Isend aliased the caller's buffer: %v", a)
			}
			b := WaitRecv[int](&rb)
			if b[0] != 99 {
				t.Errorf("second message wrong: %v", b)
			}
			a[0] = -1 // receiver owns the payload; must not affect b
			if b[0] != 99 {
				t.Error("payloads alias each other")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestsome(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() != 0 {
			// Rank 2 sends only after rank 1's message is acknowledged, so
			// rank 0 observes staggered completion.
			if c.Rank() == 2 {
				Recv[byte](c, 0, 1)
			}
			Send(c, 0, 7, []int{c.Rank()})
			return
		}
		reqs := make([]Request, 2)
		IrecvInit(c, 1, 7, &reqs[0])
		IrecvInit(c, 2, 7, &reqs[1])
		var done []int
		for len(done) == 0 {
			done = Testsome(reqs, done[:0])
		}
		if len(done) != 1 || done[0] != 0 {
			t.Errorf("first completion %v, want [0]", done)
		}
		if got := Payload[int](&reqs[0]); got[0] != 1 {
			t.Errorf("leg 0 payload %v", got)
		}
		Send(c, 2, 1, []byte{1}) // release rank 2
		reqs[1].Wait()
		// An already-complete request is not re-reported.
		if again := Testsome(reqs, nil); len(again) != 0 {
			t.Errorf("Testsome re-reported completed requests: %v", again)
		}
		if got := Payload[int](&reqs[1]); got[0] != 2 {
			t.Errorf("leg 1 payload %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIrecvInitReuse reuses one plan-owned request across collectives, the
// pattern the domain/grid exchange plans depend on.
func TestIrecvInitReuse(t *testing.T) {
	err := Run(2, func(c *Comm) {
		var req Request
		for round := 0; round < 3; round++ {
			if c.Rank() == 0 {
				Isend(c, 1, round, []int{round * 10})
			} else {
				IrecvInit(c, 0, round, &req)
				if got := WaitRecv[int](&req); got[0] != round*10 {
					t.Errorf("round %d: got %v", round, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitAbort: a rank blocked in Wait must be released (with a panic that
// Run converts to an error) when another rank dies.
func TestWaitAbort(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			panic("boom")
		}
		req := Irecv(c, 0, 0)
		req.Wait() // never satisfied; abort must release it
	})
	if err == nil {
		t.Fatal("expected error from aborted world")
	}
}

func TestPayloadIncompletePanics(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() != 1 {
			Recv[byte](c, 1, 2) // hold rank 0 until rank 1 checked the panic
			return
		}
		req := Irecv(c, 0, 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Payload on incomplete request must panic")
				}
			}()
			Payload[int](&req)
		}()
		Send(c, 0, 2, []byte{1})
	})
	if err != nil {
		t.Fatal(err)
	}
}
