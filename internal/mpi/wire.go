package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"reflect"
	"sync"
	"unsafe"
)

// rawPayload is a wire-delivered message body: the raw memory image of the
// sender's slice. Recv/Payload decode it into the receiver's element type;
// both sides run the same binary on the same architecture, so the image is
// bitwise-exact — which is what makes a wire world bitwise-equivalent to the
// goroutine world.
type rawPayload []byte

// FrameHeaderSize is the fixed per-message framing overhead of the wire
// transport in bytes: magic, kind, context, source, tag, destination,
// payload length, the sender's wall-clock timestamp, and a CRC-32C covering
// header and payload.
const FrameHeaderSize = 48

const (
	frameMagic = 0x48435731 // "HCW1"

	frameData  = 1 // point-to-point payload
	frameAbort = 2 // world abort; payload is the reason string
	frameHello = 3 // first frame on a data connection; src identifies the dialer
	frameBye   = 4 // graceful close announcement
)

// maxFramePayload bounds a frame's declared payload length so a corrupt
// header cannot ask the receiver to allocate gigabytes before the CRC check.
const maxFramePayload = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the decoded fixed-size frame prefix. dst is the world rank
// of the receiving mailbox; src is the sender's rank *within the message's
// communicator* (matching happens on comm ranks, exactly like the inproc
// mailbox path). sendNs is the sender's wall-clock time (UnixNano) at frame
// construction — wall clock, not monotonic, because monotonic readings are
// not comparable across processes; the receiver's mailbox turns
// now − sendNs into the wire send→match latency histogram. src/tag/dst fit
// in 32 bits (ranks are small; tags include small negative collective
// reserved tags) and are sign-extended through uint32 on the wire, which is
// what frees the 8 bytes for the timestamp without growing the header.
type frameHeader struct {
	kind   int
	ctx    int64
	src    int64
	tag    int64
	dst    int64
	sendNs int64
}

// putFrame encodes the header for payload into hdr (FrameHeaderSize bytes),
// including the CRC over header fields and payload.
func putFrame(hdr []byte, h frameHeader, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(h.kind))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(h.ctx))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(int32(h.src)))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(int32(h.tag)))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(int32(h.dst)))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(h.sendNs))
	binary.LittleEndian.PutUint32(hdr[40:], 0) // reserved
	crc := crc32.Update(0, castagnoli, hdr[:44])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[44:], crc)
}

// readFrame reads one frame from r, verifying magic, length sanity, and CRC.
// The returned payload is freshly allocated and owned by the caller.
func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frameHeader{}, nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != frameMagic {
		return frameHeader{}, nil, fmt.Errorf("mpi: bad frame magic %#x", m)
	}
	h := frameHeader{
		kind:   int(binary.LittleEndian.Uint32(hdr[4:])),
		ctx:    int64(binary.LittleEndian.Uint64(hdr[8:])),
		src:    int64(int32(binary.LittleEndian.Uint32(hdr[16:]))),
		tag:    int64(int32(binary.LittleEndian.Uint32(hdr[20:]))),
		dst:    int64(int32(binary.LittleEndian.Uint32(hdr[24:]))),
		sendNs: int64(binary.LittleEndian.Uint64(hdr[32:])),
	}
	n := binary.LittleEndian.Uint32(hdr[28:])
	if n > maxFramePayload {
		return frameHeader{}, nil, fmt.Errorf("mpi: frame payload length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frameHeader{}, nil, err
	}
	crc := crc32.Update(0, castagnoli, hdr[:44])
	crc = crc32.Update(crc, castagnoli, payload)
	if want := binary.LittleEndian.Uint32(hdr[44:]); crc != want {
		return frameHeader{}, nil, fmt.Errorf("mpi: frame CRC mismatch (got %#x want %#x)", crc, want)
	}
	return h, payload, nil
}

// sizeOf returns the exact in-memory element size, the unit of both the
// byte accounting and the wire image.
func sizeOf[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// podTypes caches which element types are plain old data (no pointers),
// keyed by reflect.Type. Only POD may cross the wire: the transport ships
// the raw memory image, and a pointer is meaningless in another process.
var podTypes sync.Map

func isPOD(t reflect.Type) bool {
	if v, ok := podTypes.Load(t); ok {
		return v.(bool)
	}
	pod := podType(t)
	podTypes.Store(t, pod)
	return pod
}

func podType(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return podType(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !podType(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func checkWireable[T any]() {
	t := reflect.TypeFor[T]()
	if !isPOD(t) {
		panic(fmt.Sprintf("mpi: element type %v contains pointers and cannot cross a wire transport", t))
	}
}

// asBytes reinterprets a POD slice as its raw memory image, without copying.
func asBytes[T any](buf []T) []byte {
	checkWireable[T]()
	if len(buf) == 0 {
		return nil
	}
	es := sizeOf[T]()
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(buf))), len(buf)*es)
}

// decodeRaw copies a wire payload into a freshly allocated []T.
func decodeRaw[T any](raw rawPayload) []T {
	checkWireable[T]()
	es := sizeOf[T]()
	if len(raw)%es != 0 {
		panic(fmt.Sprintf("mpi: wire payload of %d bytes is not a whole number of %d-byte elements (%v)",
			len(raw), es, reflect.TypeFor[T]()))
	}
	n := len(raw) / es
	out := make([]T, n)
	if n > 0 {
		dst := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(out))), n*es)
		copy(dst, raw)
	}
	return out
}
