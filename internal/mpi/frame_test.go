package mpi

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hacc/internal/obs"
)

// The frame header must round-trip every field — including the negative
// reserved tags the collectives put on the wire, which cross as
// sign-extended 32-bit values, and the send timestamp packed into the slack
// that made room for it without growing FrameHeaderSize.
func TestFrameHeaderRoundTrip(t *testing.T) {
	cases := []frameHeader{
		{kind: frameData, ctx: 0, src: 0, tag: 0, dst: 0, sendNs: 0},
		{kind: frameData, ctx: 1 << 40, src: 1023, tag: 99, dst: 7, sendNs: time.Now().UnixNano()},
		{kind: frameData, ctx: -5, src: 3, tag: tagAllToAll, dst: 1, sendNs: 1},
		{kind: frameData, ctx: 2, src: 0, tag: tagBarrier, dst: 2, sendNs: 1 << 62},
		{kind: frameHello, src: 11},
		{kind: frameAbort},
		{kind: frameBye},
	}
	payload := []byte("hello wire")
	for _, want := range cases {
		var buf bytes.Buffer
		hdr := make([]byte, FrameHeaderSize)
		putFrame(hdr, want, payload)
		buf.Write(hdr)
		buf.Write(payload)
		got, p, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip changed header: got %+v want %+v", got, want)
		}
		if !bytes.Equal(p, payload) {
			t.Fatalf("round trip changed payload: %q", p)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	h := frameHeader{kind: frameData, ctx: 1, src: 1, tag: 2, dst: 0, sendNs: 42}
	payload := []byte("payload")
	hdr := make([]byte, FrameHeaderSize)
	putFrame(hdr, h, payload)

	// Flipping the timestamp must break the CRC: the latency field is
	// covered, not advisory.
	bad := append([]byte(nil), hdr...)
	bad[33] ^= 0x40
	var buf bytes.Buffer
	buf.Write(bad)
	buf.Write(payload)
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("corrupted sendNs passed the CRC")
	}
}

// A wire exchange must feed the send→match latency histogram on the
// receiving world; the inproc path must not (no timestamp — its pins keep
// zero-alloc sends).
func TestWireLatencyRecorded(t *testing.T) {
	var mu sync.Mutex
	perRank := map[int]WireLatency{}
	err := RunWire(2, WireOptions{Timeout: 10 * time.Second}, func(c *Comm) {
		peer := 1 - c.Rank()
		Send(c, peer, 7, []int64{int64(c.Rank())})
		Recv[int64](c, peer, 7)
		if got := c.World().Metrics().Histogram("wire.latency_ns", obs.LatencyBuckets).Count(); got != 1 {
			t.Errorf("rank %d histogram count = %d, want 1", c.Rank(), got)
		}
		lat := WireLatencySummary(c)
		mu.Lock()
		perRank[c.Rank()] = lat
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, lat := range perRank {
		if lat.Count != 2 {
			t.Fatalf("rank %d merged count = %d, want 2", rank, lat.Count)
		}
		if lat.P50Ns <= 0 || lat.P99Ns < lat.P50Ns {
			t.Fatalf("rank %d merged quantiles p50=%d p99=%d", rank, lat.P50Ns, lat.P99Ns)
		}
	}
	if perRank[0] != perRank[1] {
		t.Fatalf("collective summary disagrees across ranks: %+v vs %+v", perRank[0], perRank[1])
	}
}

func TestInprocLatencyEmpty(t *testing.T) {
	err := Run(2, func(c *Comm) {
		peer := 1 - c.Rank()
		Send(c, peer, 7, []int64{1})
		Recv[int64](c, peer, 7)
		lat := WireLatencySummary(c)
		if lat.Count != 0 {
			t.Errorf("inproc world recorded %d wire latencies", lat.Count)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
