package mpi

import (
	"fmt"
	"time"

	"hacc/internal/fault"
	"hacc/internal/obs"
)

// Non-blocking point-to-point API. Sends in this runtime are eager (the
// payload is buffered in the receiver's mailbox at post time, as with
// small-message MPI), so an Isend completes immediately and the sender's
// buffer is free for reuse as soon as the call returns. A posted Irecv
// records the (source, tag) envelope without blocking; the message is
// matched when the request completes — at Wait, Test, or Testsome — in FIFO
// order per (source, tag) pair. Because ranks are goroutines, deferring the
// match is what buys real overlap: a rank that would sit in a blocking Recv
// keeps computing while its peers' sends land in the mailbox.
//
// Matching at completion time rather than post time departs from strict MPI
// ordering only when two requests for the same (source, tag) envelope are
// completed out of post order; the exchange plans built on this API never do
// that (each leg has a distinct source, and sequenced tags separate
// collectives).

// Request is the handle of a non-blocking operation. The zero Request is
// invalid; requests are produced by Isend/Irecv or initialized in place by
// IrecvInit so plans can own and reuse them without allocating.
type Request struct {
	c       *Comm
	src     int
	tag     int
	recv    bool
	done    bool
	payload any
}

// Isend posts a buffered send of a copy of buf and returns the (already
// complete) request. buf may be reused immediately.
func Isend[T any](c *Comm, dst, tag int, buf []T) Request {
	Send(c, dst, tag, buf)
	return Request{c: c, done: true}
}

// IsendMove posts a buffered send that transfers ownership of buf to the
// receiver without copying. The caller must not touch buf afterwards.
func IsendMove[T any](c *Comm, dst, tag int, buf []T) Request {
	SendMove(c, dst, tag, buf)
	return Request{c: c, done: true}
}

// Irecv posts a receive for a message matching (src, tag). src may be
// AnySource and tag may be AnyTag. The call never blocks; complete the
// request with Wait/Test and read the payload with Payload or WaitRecv.
func Irecv(c *Comm, src, tag int) Request {
	var r Request
	IrecvInit(c, src, tag, &r)
	return r
}

// IrecvInit initializes a caller-owned request in place (the allocation-free
// form of Irecv, for persistent plans that reuse request storage across
// collectives). Any previous state of *r is discarded.
func IrecvInit(c *Comm, src, tag int, r *Request) {
	if src != AnySource {
		c.checkRank(src, "source")
	}
	*r = Request{c: c, src: src, tag: tag, recv: true}
}

// Wait blocks until the request completes. For receives the payload becomes
// available via Payload. Wait panics if the world aborted or the world's
// operation timeout (World.SetTimeout) elapsed.
func (r *Request) Wait() {
	if err := r.WaitTimeout(0); err != nil {
		panic(err)
	}
}

// WaitTimeout blocks until the request completes, the world aborts, or the
// timeout elapses, returning the failure as an error instead of panicking.
// A zero timeout falls back to the world's operation timeout (which may
// itself be zero, meaning wait forever). On error the request remains
// incomplete.
func (r *Request) WaitTimeout(timeout time.Duration) error {
	if r.done {
		return nil
	}
	if r.c == nil {
		panic("mpi: Wait on zero Request")
	}
	if inj := fault.Armed(); inj != nil {
		inj.Hit(fault.PointRecv, r.c.worldRank(r.c.rank), -1)
	}
	if timeout <= 0 {
		timeout = r.c.world.Timeout()
	}
	t0 := obs.Begin()
	msg, err := r.c.world.boxes[r.c.worldRank(r.c.rank)].take(r.c.ctx, r.src, r.tag, timeout)
	obs.End(r.c.worldRank(r.c.rank), obs.SpanWait, t0)
	if err != nil {
		return err
	}
	r.payload = msg.payload
	r.done = true
	return nil
}

// Test reports whether the request has completed, completing it if a
// matching message is pending. Never blocks.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	if r.c == nil {
		panic("mpi: Test on zero Request")
	}
	msg, ok, err := r.c.world.boxes[r.c.worldRank(r.c.rank)].tryTake(r.c.ctx, r.src, r.tag)
	if err != nil {
		panic(err)
	}
	if !ok {
		return false
	}
	r.payload = msg.payload
	r.done = true
	return true
}

// Done reports completion without attempting to complete the request.
func (r *Request) Done() bool { return r.done }

// WaitAll completes every request in the slice, in order.
func WaitAll(rs []Request) {
	for i := range rs {
		rs[i].Wait()
	}
}

// Testsome appends to done the indices of requests that complete during this
// call (requests already complete before the call are not reported) and
// returns the extended slice. Never blocks; an empty result means no pending
// request had a matching message.
func Testsome(rs []Request, done []int) []int {
	for i := range rs {
		if rs[i].done {
			continue
		}
		if rs[i].Test() {
			done = append(done, i)
		}
	}
	return done
}

// Payload returns the received buffer of a completed receive request. It
// panics if the request has not completed or the element type mismatches.
// Send requests return nil.
func Payload[T any](r *Request) []T {
	if !r.done {
		panic("mpi: Payload of incomplete request (call Wait first)")
	}
	if r.payload == nil {
		return nil
	}
	if raw, ok := r.payload.(rawPayload); ok {
		return decodeRaw[T](raw)
	}
	buf, ok := r.payload.([]T)
	if !ok {
		panic(fmt.Sprintf("mpi: Payload type mismatch: got %T", r.payload))
	}
	return buf
}

// WaitRecv completes a receive request and returns its payload.
func WaitRecv[T any](r *Request) []T {
	r.Wait()
	return Payload[T](r)
}
