package mpi

import "hacc/internal/obs"

// WireLatency is the world-wide wire send→match latency distribution,
// merged across every rank's histogram.
type WireLatency struct {
	Count int64 // wire messages observed by any rank
	SumNs int64 // total latency, for the mean
	P50Ns int64 // median (bucket upper bound; conservative within a doubling)
	P99Ns int64 // 99th percentile
}

// WireLatencySummary merges every rank's wire-latency histogram into one
// distribution with a single SumI64 reduction over the bucket counts — every
// rank's histogram uses obs.LatencyBuckets, so the counts add element-wise
// regardless of which process owns them. It is a collective: every rank of c
// must call it. In a multi-process world each process's World sees only its
// local ranks' receives, which is exactly why the merge must be a reduction
// rather than a read of shared state.
//
// Caveat for the in-process world: all ranks of an inproc World share one
// histogram, and inproc deliveries carry no timestamp, so Count is zero
// unless the world has a wire transport.
func WireLatencySummary(c *Comm) WireLatency {
	h := c.world.wireLat
	local := h.Snapshot(nil)
	local = append(local, h.Sum())
	// Inproc worlds share one histogram across all ranks; dividing the
	// contribution keeps the reduction from multiplying the shared counts by
	// the rank count. Wire worlds have one histogram per process, counting
	// only that process's receives, so each contributes its counts once.
	if !c.world.Wire() && c.Size() > 1 {
		if c.Rank() != 0 {
			for i := range local {
				local[i] = 0
			}
		}
	}
	merged := AllReduce(c, local, SumI64)
	counts := merged[:len(merged)-1]
	bounds := h.Bounds()
	var n int64
	for _, v := range counts {
		n += v
	}
	return WireLatency{
		Count: n,
		SumNs: merged[len(merged)-1],
		P50Ns: obs.QuantileFromCounts(bounds, counts, 0.50),
		P99Ns: obs.QuantileFromCounts(bounds, counts, 0.99),
	}
}
