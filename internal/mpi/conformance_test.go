package mpi

// The transport-conformance suite: every behavioral contract of the mpi API
// — point-to-point matching, eager-send buffer semantics, non-blocking
// completion ordering, the seven collectives, AllOK agreement, split
// contexts, abort/timeout classification, fault-hook parity — expressed once
// and run against every transport. The inproc goroutine world is the
// reference; the wire transports (tcp and the unix fast path, driven through
// the RunWire loopback harness) must be observationally identical, which is
// what licenses `haccsim -par` to call a multi-process run equivalent to the
// goroutine oracle.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hacc/internal/fault"
)

// runFn executes fn on every rank of a p-rank world over some transport.
type runFn func(p int, fn func(c *Comm)) error

type transportCase struct {
	name string
	run  runFn
}

func conformanceTransports() []transportCase {
	wire := func(transport string) runFn {
		return func(p int, fn func(c *Comm)) error {
			return RunWire(p, WireOptions{Transport: transport, Timeout: 20 * time.Second}, fn)
		}
	}
	return []transportCase{
		{"inproc", func(p int, fn func(c *Comm)) error { return Run(p, fn) }},
		{"tcp", wire("tcp")},
		{"unix", wire("unix")},
	}
}

type conformanceCheck struct {
	name string
	fn   func(t *testing.T, tc transportCase)
}

func TestConformance(t *testing.T) {
	for _, tc := range conformanceTransports() {
		t.Run(tc.name, func(t *testing.T) {
			for _, chk := range conformanceChecks {
				t.Run(chk.name, func(t *testing.T) { chk.fn(t, tc) })
			}
		})
	}
}

// mustRun fails the test on a world error.
func mustRun(t *testing.T, tc transportCase, p int, fn func(c *Comm)) {
	t.Helper()
	if err := tc.run(p, fn); err != nil {
		t.Fatal(err)
	}
}

var conformanceChecks = []conformanceCheck{
	{"SendRecvBasic", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				Send(c, 1, 7, []float64{1, 2, 3})
			} else {
				got := Recv[float64](c, 0, 7)
				if len(got) != 3 || got[0] != 1 || got[2] != 3 {
					t.Errorf("got %v", got)
				}
			}
		})
	}},

	{"SendCopies", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				buf := []int{1, 2, 3}
				Send(c, 1, 0, buf)
				buf[0] = 99 // must not affect receiver
				Send(c, 1, 1, buf)
			} else {
				a := Recv[int](c, 0, 0)
				b := Recv[int](c, 0, 1)
				if a[0] != 1 {
					t.Errorf("Send aliased the caller's buffer: %v", a)
				}
				if b[0] != 99 {
					t.Errorf("second message wrong: %v", b)
				}
			}
		})
	}},

	{"SendMoveDelivers", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				SendMove(c, 1, 0, []float32{1, 2, 3})
			} else {
				got := Recv[float32](c, 0, 0)
				if len(got) != 3 || got[2] != 3 {
					t.Errorf("got %v", got)
				}
			}
		})
	}},

	{"TagMatching", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				Send(c, 1, 5, []int{5})
				Send(c, 1, 3, []int{3})
			} else {
				// Receive out of arrival order by tag.
				three := Recv[int](c, 0, 3)
				five := Recv[int](c, 0, 5)
				if three[0] != 3 || five[0] != 5 {
					t.Errorf("tag matching broken: %v %v", three, five)
				}
			}
		})
	}},

	{"AnySource", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 4, func(c *Comm) {
			if c.Rank() != 0 {
				Send(c, 0, 1, []int{c.Rank()})
				return
			}
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				v := Recv[int](c, AnySource, 1)
				seen[v[0]] = true
			}
			if len(seen) != 3 {
				t.Errorf("expected 3 distinct sources, got %v", seen)
			}
		})
	}},

	{"SendRecvExchange", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			me := c.Rank()
			other := 1 - me
			got := SendRecv(c, other, 3, []int{me * 10}, other, 3)
			if got[0] != other*10 {
				t.Errorf("rank %d received %d", me, got[0])
			}
		})
	}},

	{"ZeroLengthMessage", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				Send(c, 1, 1, []float64{})
				Send(c, 1, 2, []byte(nil))
			} else {
				if got := Recv[float64](c, 0, 1); len(got) != 0 {
					t.Errorf("empty message arrived with %d elements", len(got))
				}
				if got := Recv[byte](c, 0, 2); len(got) != 0 {
					t.Errorf("nil message arrived with %d elements", len(got))
				}
			}
		})
	}},

	{"StructPayload", func(t *testing.T, tc transportCase) {
		type particle struct {
			X, Y, Z float64
			ID      uint64
		}
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				Send(c, 1, 0, []particle{{1.5, -2.25, 3.125, 42}, {0, 0.1, 0, 7}})
			} else {
				got := Recv[particle](c, 0, 0)
				if len(got) != 2 || got[0] != (particle{1.5, -2.25, 3.125, 42}) || got[1].ID != 7 {
					t.Errorf("got %+v", got)
				}
			}
		})
	}},

	{"LargePayload", func(t *testing.T, tc transportCase) {
		// Larger than any socket buffer: exercises framing across partial
		// reads/writes and the reader-always-drains property that keeps
		// eager sends deadlock-free.
		const n = 1 << 16
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				buf := make([]float64, n)
				for i := range buf {
					buf[i] = float64(i) * 0.5
				}
				SendMove(c, 1, 0, buf)
			} else {
				got := Recv[float64](c, 0, 0)
				if len(got) != n || got[n-1] != float64(n-1)*0.5 {
					t.Errorf("len=%d tail=%v", len(got), got[len(got)-1])
				}
			}
		})
	}},

	{"Barrier", func(t *testing.T, tc transportCase) {
		for _, p := range []int{1, 2, 3, 5} {
			mustRun(t, tc, p, func(c *Comm) {
				for iter := 0; iter < 3; iter++ {
					Barrier(c)
				}
			})
		}
	}},

	{"Bcast", func(t *testing.T, tc transportCase) {
		for _, p := range []int{1, 3, 4, 7} {
			for root := 0; root < p; root += 2 {
				mustRun(t, tc, p, func(c *Comm) {
					var buf []int
					if c.Rank() == root {
						buf = []int{42, root}
					}
					got := Bcast(c, root, buf)
					if got[0] != 42 || got[1] != root {
						t.Errorf("p=%d root=%d rank=%d got %v", p, root, c.Rank(), got)
					}
				})
			}
		}
	}},

	{"ReduceAndAllReduce", func(t *testing.T, tc transportCase) {
		for _, p := range []int{1, 2, 3, 4, 5, 7} {
			want := int64(p * (p - 1) / 2)
			mustRun(t, tc, p, func(c *Comm) {
				buf := []int64{int64(c.Rank()), 1}
				r := Reduce(c, 0, buf, SumI64)
				if c.Rank() == 0 {
					if r[0] != want || r[1] != int64(p) {
						t.Errorf("p=%d Reduce got %v want [%d %d]", p, r, want, p)
					}
				} else if r != nil {
					t.Errorf("non-root got non-nil reduce result")
				}
				a := AllReduce(c, buf, SumI64)
				if a[0] != want || a[1] != int64(p) {
					t.Errorf("p=%d rank=%d AllReduce got %v", p, c.Rank(), a)
				}
			})
		}
	}},

	{"AllReduceMinMax", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 5, func(c *Comm) {
			v := float64(c.Rank()*c.Rank()) - 3
			mx := AllReduce(c, []float64{v}, MaxF64)
			mn := AllReduce(c, []float64{v}, MinF64)
			if mx[0] != 13 || mn[0] != -3 {
				t.Errorf("minmax wrong: %v %v", mx, mn)
			}
		})
	}},

	{"GatherScatter", func(t *testing.T, tc transportCase) {
		for _, p := range []int{1, 3, 4} {
			mustRun(t, tc, p, func(c *Comm) {
				// Variable-length gather: rank r contributes r+1 copies of r.
				buf := make([]int, c.Rank()+1)
				for i := range buf {
					buf[i] = c.Rank()
				}
				g := Gather(c, 0, buf)
				if c.Rank() == 0 {
					want := 0
					for r := 0; r < p; r++ {
						want += r + 1
					}
					if len(g) != want {
						t.Errorf("gather length %d want %d", len(g), want)
					}
					idx := 0
					for r := 0; r < p; r++ {
						for i := 0; i <= r; i++ {
							if g[idx] != r {
								t.Errorf("gather[%d]=%d want %d", idx, g[idx], r)
							}
							idx++
						}
					}
				}
				// Scatter back.
				var parts [][]int
				if c.Rank() == 0 {
					parts = make([][]int, p)
					for r := range parts {
						parts[r] = []int{r * 10}
					}
				}
				s := Scatter(c, 0, parts)
				if s[0] != c.Rank()*10 {
					t.Errorf("scatter got %v", s)
				}
			})
		}
	}},

	{"AllGather", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 4, func(c *Comm) {
			g := AllGather(c, []int{c.Rank() + 100})
			for r := 0; r < 4; r++ {
				if g[r] != r+100 {
					t.Errorf("allgather[%d]=%d", r, g[r])
				}
			}
		})
	}},

	{"AllToAll", func(t *testing.T, tc transportCase) {
		for _, p := range []int{1, 2, 5} {
			mustRun(t, tc, p, func(c *Comm) {
				me := c.Rank()
				send := make([][]int, p)
				for r := 0; r < p; r++ {
					// Variable lengths: me+r elements of value me*100+r.
					send[r] = make([]int, me+r)
					for i := range send[r] {
						send[r][i] = me*100 + r
					}
				}
				got := AllToAll(c, send)
				for r := 0; r < p; r++ {
					if len(got[r]) != r+me {
						t.Errorf("p=%d me=%d from %d: len %d want %d", p, me, r, len(got[r]), r+me)
					}
					for _, v := range got[r] {
						if v != r*100+me {
							t.Errorf("p=%d me=%d from %d: value %d", p, me, r, v)
						}
					}
				}
			})
		}
	}},

	{"AllOKAgreement", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 4, func(c *Comm) {
			if !AllOK(c, true) {
				t.Errorf("rank %d: all-true AllOK returned false", c.Rank())
			}
			// One rank's local failure becomes one consistent outcome.
			if AllOK(c, c.Rank() != 2) {
				t.Errorf("rank %d: AllOK with a failing rank returned true", c.Rank())
			}
			// The world must remain usable after a false agreement.
			sum := AllReduce(c, []int{1}, SumInt)
			if sum[0] != 4 {
				t.Errorf("post-AllOK collective broken: %v", sum)
			}
		})
	}},

	{"Split", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 6, func(c *Comm) {
			// Split into evens and odds; key reverses order within odds.
			color := c.Rank() % 2
			key := c.Rank()
			if color == 1 {
				key = -c.Rank()
			}
			sub := c.Split(color, key)
			if sub.Size() != 3 {
				t.Errorf("sub size %d", sub.Size())
			}
			// Messages in sub must not leak into world context.
			g := AllGather(sub, []int{c.Rank()})
			if color == 0 {
				if g[0] != 0 || g[1] != 2 || g[2] != 4 {
					t.Errorf("even group order %v", g)
				}
			} else {
				if g[0] != 5 || g[1] != 3 || g[2] != 1 {
					t.Errorf("odd group order (reversed by key) %v", g)
				}
			}
			// A second collective in the parent must still work.
			sum := AllReduce(c, []int{1}, SumInt)
			if sum[0] != 6 {
				t.Errorf("parent allreduce after split: %v", sum)
			}
		})
	}},

	{"SplitNegativeColor", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 4, func(c *Comm) {
			color := 0
			if c.Rank() == 3 {
				color = -1
			}
			sub := c.Split(color, c.Rank())
			if c.Rank() == 3 {
				if sub != nil {
					t.Error("negative color should return nil comm")
				}
				return
			}
			if sub.Size() != 3 {
				t.Errorf("sub size %d", sub.Size())
			}
		})
	}},

	{"NestedSplit", func(t *testing.T, tc transportCase) {
		// 8 ranks -> 2x2x2 cart; row and column comms must be independent.
		mustRun(t, tc, 8, func(c *Comm) {
			cart := NewCart(c, 2, 2, 2)
			co := cart.MyCoords()
			rows := cart.SubComm(0)
			cols := cart.SubComm(2)
			if rows.Size() != 2 || cols.Size() != 2 {
				t.Errorf("sub sizes %d %d", rows.Size(), cols.Size())
				return
			}
			r := AllReduce(rows, []int{co[0]}, SumInt)
			if r[0] != 1 { // coords 0+1 along dim 0
				t.Errorf("row reduce %v", r)
			}
			z := AllReduce(cols, []int{co[2]}, SumInt)
			if z[0] != 1 {
				t.Errorf("col reduce %v", z)
			}
		})
	}},

	{"IsendIrecvBasic", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				req := Isend(c, 1, 3, []float64{1, 2, 3})
				if !req.Done() {
					t.Error("eager Isend must complete at post time")
				}
				req.Wait() // must be a no-op
			} else {
				req := Irecv(c, 0, 3)
				got := WaitRecv[float64](&req)
				if len(got) != 3 || got[0] != 1 || got[2] != 3 {
					t.Errorf("got %v", got)
				}
			}
		})
	}},

	{"IrecvCompletionOrdering", func(t *testing.T, tc transportCase) {
		// Posts receives before any message exists and completes them against
		// messages arriving in the opposite order: each request must match its
		// own tag regardless of posting or arrival order.
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				// Wait for the receiver to have posted both requests, then send
				// tag 9 before tag 8.
				Recv[byte](c, 1, 0)
				Send(c, 1, 9, []int{9})
				Send(c, 1, 8, []int{8})
			} else {
				r8 := Irecv(c, 0, 8)
				r9 := Irecv(c, 0, 9)
				if r8.Test() || r9.Test() {
					t.Error("request completed before any send")
				}
				Send(c, 0, 0, []byte{1})
				// Complete in post order even though arrival order is 9, 8.
				if got := WaitRecv[int](&r8); got[0] != 8 {
					t.Errorf("r8 got %v", got)
				}
				if got := WaitRecv[int](&r9); got[0] != 9 {
					t.Errorf("r9 got %v", got)
				}
			}
		})
	}},

	{"SameEnvelopeFIFO", func(t *testing.T, tc transportCase) {
		// Messages on the same (source, tag) envelope complete posted receives
		// in send order; a connection preserves byte order, so the wire keeps
		// the same guarantee the inproc mailbox gives.
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				for i := 1; i <= 8; i++ {
					Send(c, 1, 5, []int{i})
				}
			} else {
				reqs := make([]Request, 8)
				for i := range reqs {
					IrecvInit(c, 0, 5, &reqs[i])
				}
				for i := range reqs {
					if got := WaitRecv[int](&reqs[i]); got[0] != i+1 {
						t.Errorf("message %d got %v", i, got)
					}
				}
			}
		})
	}},

	{"WaitAllMixedTags", func(t *testing.T, tc transportCase) {
		const p = 5
		mustRun(t, tc, p, func(c *Comm) {
			me := c.Rank()
			if me == 0 {
				reqs := make([]Request, p-1)
				for r := 1; r < p; r++ {
					IrecvInit(c, r, 100+r, &reqs[r-1])
				}
				WaitAll(reqs)
				for r := 1; r < p; r++ {
					got := Payload[int](&reqs[r-1])
					if len(got) != 1 || got[0] != r*r {
						t.Errorf("from %d: got %v", r, got)
					}
				}
			} else {
				Isend(c, 0, 100+me, []int{me * me})
			}
		})
	}},

	{"BufferReuseAfterPost", func(t *testing.T, tc transportCase) {
		// The eager-send contract the exchange plans rely on: a persistent
		// pack buffer may be overwritten as soon as Isend returns, and a
		// Wait-completed payload is owned by the receiver.
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				buf := []int{1, 2, 3}
				Isend(c, 1, 0, buf)
				buf[0] = 99 // reuse immediately: must not reach the receiver
				Isend(c, 1, 1, buf)
			} else {
				ra := Irecv(c, 0, 0)
				rb := Irecv(c, 0, 1)
				a := WaitRecv[int](&ra)
				if a[0] != 1 {
					t.Errorf("Isend aliased the caller's buffer: %v", a)
				}
				b := WaitRecv[int](&rb)
				if b[0] != 99 {
					t.Errorf("second message wrong: %v", b)
				}
				a[0] = -1 // receiver owns the payload; must not affect b
				if b[0] != 99 {
					t.Error("payloads alias each other")
				}
			}
		})
	}},

	{"Testsome", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 3, func(c *Comm) {
			if c.Rank() != 0 {
				// Rank 2 sends only after rank 1's message is acknowledged, so
				// rank 0 observes staggered completion.
				if c.Rank() == 2 {
					Recv[byte](c, 0, 1)
				}
				Send(c, 0, 7, []int{c.Rank()})
				return
			}
			reqs := make([]Request, 2)
			IrecvInit(c, 1, 7, &reqs[0])
			IrecvInit(c, 2, 7, &reqs[1])
			var done []int
			for len(done) == 0 {
				done = Testsome(reqs, done[:0])
			}
			if len(done) != 1 || done[0] != 0 {
				t.Errorf("first completion %v, want [0]", done)
			}
			if got := Payload[int](&reqs[0]); got[0] != 1 {
				t.Errorf("leg 0 payload %v", got)
			}
			Send(c, 2, 1, []byte{1}) // release rank 2
			reqs[1].Wait()
			// An already-complete request is not re-reported.
			if again := Testsome(reqs, nil); len(again) != 0 {
				t.Errorf("Testsome re-reported completed requests: %v", again)
			}
			if got := Payload[int](&reqs[1]); got[0] != 2 {
				t.Errorf("leg 1 payload %v", got)
			}
		})
	}},

	{"IrecvInitReuse", func(t *testing.T, tc transportCase) {
		// One plan-owned request reused across rounds, the pattern the
		// domain/grid exchange plans depend on.
		mustRun(t, tc, 2, func(c *Comm) {
			var req Request
			for round := 0; round < 3; round++ {
				if c.Rank() == 0 {
					Isend(c, 1, round, []int{round * 10})
				} else {
					IrecvInit(c, 0, round, &req)
					if got := WaitRecv[int](&req); got[0] != round*10 {
						t.Errorf("round %d: got %v", round, got)
					}
				}
			}
		})
	}},

	{"PayloadIncompletePanics", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() != 1 {
				Recv[byte](c, 1, 2) // hold rank 0 until rank 1 checked the panic
				return
			}
			req := Irecv(c, 0, 0)
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Payload on incomplete request must panic")
					}
				}()
				Payload[int](&req)
			}()
			Send(c, 0, 2, []byte{1})
		})
	}},

	{"PanicPropagates", func(t *testing.T, tc transportCase) {
		err := tc.run(3, func(c *Comm) {
			if c.Rank() == 1 {
				panic("boom")
			}
			// Other ranks block forever; abort must release them.
			Recv[int](c, AnySource, 0)
		})
		if err == nil {
			t.Fatal("expected error from panicking rank")
		}
		if !strings.Contains(err.Error(), "rank 1") {
			t.Fatalf("error does not identify the failing rank: %v", err)
		}
	}},

	{"WaitAbort", func(t *testing.T, tc transportCase) {
		// A rank blocked in Wait must be released (with a panic that Run
		// converts to an error) when another rank dies.
		err := tc.run(2, func(c *Comm) {
			if c.Rank() == 0 {
				panic("boom")
			}
			req := Irecv(c, 0, 0)
			req.Wait() // never satisfied; abort must release it
		})
		if err == nil {
			t.Fatal("expected error from aborted world")
		}
	}},

	{"AbortClassification", func(t *testing.T, tc transportCase) {
		// Every rank — the aborter and its blocked peers — must surface an
		// *AbortError, and the peers' reason must name the causing rank. Over
		// the wire the reason travels in an abort frame.
		errs := make(chan error, 4)
		_ = tc.run(4, func(c *Comm) {
			defer func() {
				if p := recover(); p != nil {
					if e, ok := p.(error); ok {
						errs <- e
					}
					panic(p) // keep the world's accounting intact
				}
			}()
			if c.Rank() == 3 {
				c.Abort("disk on fire")
				return
			}
			Recv[byte](c, 3, 7) // never sent
		})
		close(errs)
		var aborts int
		for e := range errs {
			var ae *AbortError
			if errors.As(e, &ae) {
				aborts++
				if ae.Rank == 3 {
					if ae.Reason != "disk on fire" {
						t.Fatalf("aborting rank's reason %q", ae.Reason)
					}
				} else if !strings.Contains(ae.Reason, "rank 3") {
					t.Fatalf("peer abort reason %q does not name the cause", ae.Reason)
				}
			}
		}
		if aborts != 4 {
			t.Fatalf("%d ranks surfaced *AbortError, want 4", aborts)
		}
	}},

	{"TimeoutClassification", func(t *testing.T, tc transportCase) {
		// A peer that stops sending without dying is detected by the
		// per-operation timeout as a *TimeoutError — identically on every
		// transport, so the supervisor's hang classification is
		// transport-independent.
		err := tc.run(2, func(c *Comm) {
			c.World().SetTimeout(200 * time.Millisecond)
			if c.Rank() == 0 {
				Recv[byte](c, 1, 9) // never sent
			}
			// Rank 1 returns immediately without sending.
		})
		if err == nil {
			t.Fatal("expected timeout error")
		}
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("want *TimeoutError in chain, got %v", err)
		}
	}},

	{"WaitTimeoutRecoverable", func(t *testing.T, tc transportCase) {
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				r := Irecv(c, 1, 5)
				err := r.WaitTimeout(100 * time.Millisecond)
				var te *TimeoutError
				if !errors.As(err, &te) {
					panic("WaitTimeout did not time out")
				}
				if te.Rank != 0 || te.Src != 1 || te.Tag != 5 {
					panic("TimeoutError fields wrong: " + te.Error())
				}
				// The request is still incomplete and completable: rank 1's
				// late message must be receivable after a failed wait.
				if r.Done() {
					panic("request marked done after timeout")
				}
				r.Wait()
				if got := Payload[byte](&r); len(got) != 1 || got[0] != 42 {
					panic("late payload corrupted")
				}
			} else {
				time.Sleep(300 * time.Millisecond)
				Send(c, 0, 5, []byte{42})
			}
		})
	}},

	{"DroppedSendParity", func(t *testing.T, tc transportCase) {
		// The fault injector's Drop verb must eat the message before it
		// reaches either the mailbox or the socket: the send-side hook fires
		// identically on the local and wire paths.
		fault.Arm(fault.MustParse("drop send rank 0 once"))
		defer fault.Disarm()
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				Send(c, 1, 1, []byte{1}) // dropped
				Send(c, 1, 2, []byte{2}) // delivered
			} else {
				got := Recv[byte](c, 0, 2)
				if len(got) != 1 || got[0] != 2 {
					panic("wrong message delivered")
				}
				// The receiver's own mailbox is local in every transport.
				if _, ok, _ := c.world.boxes[c.worldRank(c.rank)].tryTake(c.ctx, 0, 1); ok {
					panic("dropped message was delivered")
				}
			}
		})
	}},

	{"CommStatsAccounting", func(t *testing.T, tc transportCase) {
		// Exact per-rank send accounting: 10 float64 = 80 payload bytes in
		// one message. Over a wire transport the same message is also counted
		// as wire traffic, whose framing overhead is exactly FrameHeaderSize
		// bytes — the pinned frame-overhead contract.
		mustRun(t, tc, 2, func(c *Comm) {
			if c.Rank() == 0 {
				Send(c, 1, 0, make([]float64, 10))
				st := c.Stats()
				if st.Msgs != 1 || st.Bytes != 80 {
					t.Errorf("stats %+v, want 1 msg / 80 bytes", st)
				}
				wantWire := int64(0)
				if tc.name != "inproc" {
					wantWire = 1
				}
				if st.WireMsgs != wantWire || st.WireBytes != wantWire*80 {
					t.Errorf("%s: wire stats %+v, want %d wire msgs", tc.name, st, wantWire)
				}
			} else {
				Recv[float64](c, 0, 0)
				st := c.Stats()
				if st.Msgs != 0 {
					t.Errorf("receiver accounted sends: %+v", st)
				}
			}
		})
	}},
}
