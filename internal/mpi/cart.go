package mpi

import "fmt"

// Cart is a Cartesian process topology over a communicator, mapping ranks
// to coordinates in a dims[0]×dims[1]×…×dims[d-1] grid in row-major order
// (last dimension varies fastest), like MPI_Cart_create.
type Cart struct {
	Comm *Comm
	Dims []int
}

// NewCart builds a Cartesian topology. The product of dims must equal the
// communicator size.
func NewCart(c *Comm, dims ...int) *Cart {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic("mpi: cart dims must be positive")
		}
		n *= d
	}
	if n != c.Size() {
		panic(fmt.Sprintf("mpi: cart dims product %d != comm size %d", n, c.Size()))
	}
	return &Cart{Comm: c, Dims: append([]int(nil), dims...)}
}

// Coords returns the coordinates of the given rank.
func (t *Cart) Coords(rank int) []int {
	co := make([]int, len(t.Dims))
	for i := len(t.Dims) - 1; i >= 0; i-- {
		co[i] = rank % t.Dims[i]
		rank /= t.Dims[i]
	}
	return co
}

// Rank returns the rank at the given coordinates, with periodic wrapping.
func (t *Cart) Rank(coords ...int) int {
	if len(coords) != len(t.Dims) {
		panic("mpi: cart coords dimension mismatch")
	}
	r := 0
	for i, c := range coords {
		d := t.Dims[i]
		c = ((c % d) + d) % d
		r = r*d + c
	}
	return r
}

// MyCoords returns the calling rank's coordinates.
func (t *Cart) MyCoords() []int { return t.Coords(t.Comm.Rank()) }

// Shift returns the source and destination ranks for a displacement along
// one dimension with periodic boundaries (like MPI_Cart_shift).
func (t *Cart) Shift(dim, disp int) (src, dst int) {
	co := t.MyCoords()
	up := append([]int(nil), co...)
	up[dim] += disp
	dn := append([]int(nil), co...)
	dn[dim] -= disp
	return t.Rank(dn...), t.Rank(up...)
}

// SubComm splits the communicator into lines along the given dimension:
// ranks sharing all coordinates except dim end up in the same
// sub-communicator, ordered by their coordinate along dim.
func (t *Cart) SubComm(dim int) *Comm {
	co := t.MyCoords()
	color := 0
	for i, c := range co {
		if i == dim {
			continue
		}
		color = color*t.Dims[i] + c
	}
	return t.Comm.Split(color, co[dim])
}

// BalancedDims factors n into d near-equal factors (largest first),
// the way MPI_Dims_create does. Used to choose process grids.
func BalancedDims(n, d int) []int {
	dims := make([]int, d)
	for i := range dims {
		dims[i] = 1
	}
	// Repeatedly peel the largest prime factor onto the smallest dim.
	factors := primeFactors(n)
	for i := len(factors) - 1; i >= 0; i-- {
		min := 0
		for j := 1; j < d; j++ {
			if dims[j] < dims[min] {
				min = j
			}
		}
		dims[min] *= factors[i]
	}
	// Sort descending so the X dimension gets the largest factor.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims
}

func primeFactors(n int) []int {
	var fs []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			fs = append(fs, p)
			n /= p
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
