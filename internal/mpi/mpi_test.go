package mpi

// The behavioral contract tests (point-to-point matching, collectives,
// split) live in conformance_test.go, where they run against every
// transport. This file keeps what is not transport-parametrizable: cart
// topology math, randomized properties (kept on the fast inproc world), and
// the legacy process-local world counters.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCartCoordsRoundTrip(t *testing.T) {
	cart := &Cart{Dims: []int{3, 4, 5}}
	for r := 0; r < 60; r++ {
		co := cart.Coords(r)
		if got := cart.Rank(co...); got != r {
			t.Errorf("round trip %d -> %v -> %d", r, co, got)
		}
	}
	// Periodic wrapping.
	if cart.Rank(-1, 0, 0) != cart.Rank(2, 0, 0) {
		t.Error("negative wrap broken")
	}
	if cart.Rank(3, 4, 5) != 0 {
		t.Error("positive wrap broken")
	}
}

func TestCartShift(t *testing.T) {
	err := Run(6, func(c *Comm) {
		cart := NewCart(c, 2, 3)
		src, dst := cart.Shift(1, 1)
		// Everyone sends its rank to dst along dim 1 and receives from src.
		Send(c, dst, 9, []int{c.Rank()})
		got := Recv[int](c, src, 9)
		if got[0] != src {
			t.Errorf("shift recv %d want %d", got[0], src)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalancedDims(t *testing.T) {
	cases := []struct {
		n, d int
	}{{1, 3}, {2, 3}, {4, 3}, {8, 3}, {12, 3}, {16, 2}, {60, 3}, {7, 3}, {96, 3}}
	for _, tc := range cases {
		dims := BalancedDims(tc.n, tc.d)
		prod := 1
		for _, v := range dims {
			prod *= v
		}
		if prod != tc.n {
			t.Errorf("BalancedDims(%d,%d)=%v product %d", tc.n, tc.d, dims, prod)
		}
		for i := 1; i < len(dims); i++ {
			if dims[i] > dims[i-1] {
				t.Errorf("BalancedDims(%d,%d)=%v not descending", tc.n, tc.d, dims)
			}
		}
	}
}

// Property: AllReduce(sum) equals the serially computed sum for random
// vectors on a random communicator size.
func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(9)
		n := 1 + rng.Intn(50)
		data := make([][]float64, p)
		want := make([]float64, n)
		for r := range data {
			data[r] = make([]float64, n)
			for i := range data[r] {
				data[r][i] = rng.NormFloat64()
				want[i] += data[r][i]
			}
		}
		ok := true
		err := Run(p, func(c *Comm) {
			got := AllReduce(c, data[c.Rank()], SumF64)
			for i := range got {
				d := got[i] - want[i]
				if d < -1e-9 || d > 1e-9 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllToAll is its own inverse in the sense that sending back the
// received buffers returns the originals.
func TestAllToAllRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(7)
		orig := make([][][]float32, p) // orig[me][dst]
		for me := 0; me < p; me++ {
			orig[me] = make([][]float32, p)
			for dst := 0; dst < p; dst++ {
				n := rng.Intn(20)
				orig[me][dst] = make([]float32, n)
				for i := range orig[me][dst] {
					orig[me][dst][i] = rng.Float32()
				}
			}
		}
		ok := true
		err := Run(p, func(c *Comm) {
			me := c.Rank()
			got := AllToAll(c, orig[me])
			back := AllToAll(c, got)
			for dst := 0; dst < p; dst++ {
				if len(back[dst]) != len(orig[me][dst]) {
					ok = false
					continue
				}
				for i := range back[dst] {
					if back[dst][i] != orig[me][dst][i] {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldCounters(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 0, make([]float64, 10))
		} else {
			Recv[float64](c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesSent.Load() != 80 {
		t.Errorf("BytesSent=%d want 80", w.BytesSent.Load())
	}
	if w.MsgsSent.Load() != 1 {
		t.Errorf("MsgsSent=%d want 1", w.MsgsSent.Load())
	}
}

// Split context derivation must be deterministic (it is computed
// independently in every process of a wire world) and collision-free across
// the split trees a real run produces.
func TestSplitCtxDeterministic(t *testing.T) {
	seen := map[int64][3]int64{}
	for _, parent := range []int64{0, 1, -7, 1 << 40} {
		for seq := int64(0); seq < 8; seq++ {
			for color := 0; color < 8; color++ {
				ctx := splitCtx(parent, seq, color)
				if ctx2 := splitCtx(parent, seq, color); ctx2 != ctx {
					t.Fatalf("splitCtx not deterministic: %d vs %d", ctx, ctx2)
				}
				if ctx == 0 {
					t.Fatal("splitCtx produced the reserved world context 0")
				}
				key := [3]int64{parent, seq, int64(color)}
				if prev, ok := seen[ctx]; ok && prev != key {
					t.Fatalf("splitCtx collision: %v and %v -> %d", prev, key, ctx)
				}
				seen[ctx] = key
			}
		}
	}
}
