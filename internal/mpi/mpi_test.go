package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []float64{1, 2, 3})
		} else {
			got := Recv[float64](c, 0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopies(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int{1, 2, 3}
			Send(c, 1, 0, buf)
			buf[0] = 99 // must not affect receiver
			Send(c, 1, 1, buf)
		} else {
			a := Recv[int](c, 0, 0)
			b := Recv[int](c, 0, 1)
			if a[0] != 1 {
				t.Errorf("Send aliased the caller's buffer: %v", a)
			}
			if b[0] != 99 {
				t.Errorf("second message wrong: %v", b)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 5, []int{5})
			Send(c, 1, 3, []int{3})
		} else {
			// Receive out of arrival order by tag.
			three := Recv[int](c, 0, 3)
			five := Recv[int](c, 0, 5)
			if three[0] != 3 || five[0] != 5 {
				t.Errorf("tag matching broken: %v %v", three, five)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySource(t *testing.T) {
	err := Run(4, func(c *Comm) {
		if c.Rank() != 0 {
			Send(c, 0, 1, []int{c.Rank()})
			return
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			v := Recv[int](c, AnySource, 1)
			seen[v[0]] = true
		}
		if len(seen) != 3 {
			t.Errorf("expected 3 distinct sources, got %v", seen)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block forever; abort must release them.
		Recv[int](c, AnySource, 0)
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		var counter [1]int64
		err := Run(p, func(c *Comm) {
			for iter := 0; iter < 3; iter++ {
				Barrier(c)
			}
			_ = counter
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root += 2 {
			err := Run(p, func(c *Comm) {
				var buf []int
				if c.Rank() == root {
					buf = []int{42, root}
				}
				got := Bcast(c, root, buf)
				if got[0] != 42 || got[1] != root {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, c.Rank(), got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		want := int64(p * (p - 1) / 2)
		err := Run(p, func(c *Comm) {
			buf := []int64{int64(c.Rank()), 1}
			r := Reduce(c, 0, buf, SumI64)
			if c.Rank() == 0 {
				if r[0] != want || r[1] != int64(p) {
					t.Errorf("p=%d Reduce got %v want [%d %d]", p, r, want, p)
				}
			} else if r != nil {
				t.Errorf("non-root got non-nil reduce result")
			}
			a := AllReduce(c, buf, SumI64)
			if a[0] != want || a[1] != int64(p) {
				t.Errorf("p=%d rank=%d AllReduce got %v", p, c.Rank(), a)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllReduceMinMax(t *testing.T) {
	err := Run(5, func(c *Comm) {
		v := float64(c.Rank()*c.Rank()) - 3
		mx := AllReduce(c, []float64{v}, MaxF64)
		mn := AllReduce(c, []float64{v}, MinF64)
		if mx[0] != 13 || mn[0] != -3 {
			t.Errorf("minmax wrong: %v %v", mx, mn)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	for _, p := range []int{1, 3, 4, 6} {
		err := Run(p, func(c *Comm) {
			// Variable-length gather: rank r contributes r+1 copies of r.
			buf := make([]int, c.Rank()+1)
			for i := range buf {
				buf[i] = c.Rank()
			}
			g := Gather(c, 0, buf)
			if c.Rank() == 0 {
				want := 0
				for r := 0; r < p; r++ {
					want += r + 1
				}
				if len(g) != want {
					t.Errorf("gather length %d want %d", len(g), want)
				}
				idx := 0
				for r := 0; r < p; r++ {
					for i := 0; i <= r; i++ {
						if g[idx] != r {
							t.Errorf("gather[%d]=%d want %d", idx, g[idx], r)
						}
						idx++
					}
				}
			}
			// Scatter back.
			var parts [][]int
			if c.Rank() == 0 {
				parts = make([][]int, p)
				for r := range parts {
					parts[r] = []int{r * 10}
				}
			}
			s := Scatter(c, 0, parts)
			if s[0] != c.Rank()*10 {
				t.Errorf("scatter got %v", s)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllGather(t *testing.T) {
	err := Run(4, func(c *Comm) {
		g := AllGather(c, []int{c.Rank() + 100})
		for r := 0; r < 4; r++ {
			if g[r] != r+100 {
				t.Errorf("allgather[%d]=%d", r, g[r])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		err := Run(p, func(c *Comm) {
			me := c.Rank()
			send := make([][]int, p)
			for r := 0; r < p; r++ {
				// Variable lengths: me+r elements of value me*100+r.
				send[r] = make([]int, me+r)
				for i := range send[r] {
					send[r][i] = me*100 + r
				}
			}
			got := AllToAll(c, send)
			for r := 0; r < p; r++ {
				if len(got[r]) != r+me {
					t.Errorf("p=%d me=%d from %d: len %d want %d", p, me, r, len(got[r]), r+me)
				}
				for _, v := range got[r] {
					if v != r*100+me {
						t.Errorf("p=%d me=%d from %d: value %d", p, me, r, v)
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplit(t *testing.T) {
	err := Run(6, func(c *Comm) {
		// Split into evens and odds; key reverses order within odds.
		color := c.Rank() % 2
		key := c.Rank()
		if color == 1 {
			key = -c.Rank()
		}
		sub := c.Split(color, key)
		if sub.Size() != 3 {
			t.Errorf("sub size %d", sub.Size())
		}
		// Messages in sub must not leak into world context.
		g := AllGather(sub, []int{c.Rank()})
		if color == 0 {
			if g[0] != 0 || g[1] != 2 || g[2] != 4 {
				t.Errorf("even group order %v", g)
			}
		} else {
			if g[0] != 5 || g[1] != 3 || g[2] != 1 {
				t.Errorf("odd group order (reversed by key) %v", g)
			}
		}
		// A second collective in the parent must still work.
		sum := AllReduce(c, []int{1}, SumInt)
		if sum[0] != 6 {
			t.Errorf("parent allreduce after split: %v", sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColor(t *testing.T) {
	err := Run(4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("negative color should return nil comm")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size %d", sub.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	// 8 ranks -> 2x2x2 cart; row and column comms must be independent.
	err := Run(8, func(c *Comm) {
		cart := NewCart(c, 2, 2, 2)
		co := cart.MyCoords()
		rows := cart.SubComm(0)
		cols := cart.SubComm(2)
		if rows.Size() != 2 || cols.Size() != 2 {
			t.Fatalf("sub sizes %d %d", rows.Size(), cols.Size())
		}
		r := AllReduce(rows, []int{co[0]}, SumInt)
		if r[0] != 1 { // coords 0+1 along dim 0
			t.Errorf("row reduce %v", r)
		}
		z := AllReduce(cols, []int{co[2]}, SumInt)
		if z[0] != 1 {
			t.Errorf("col reduce %v", z)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	cart := &Cart{Dims: []int{3, 4, 5}}
	for r := 0; r < 60; r++ {
		co := cart.Coords(r)
		if got := cart.Rank(co...); got != r {
			t.Errorf("round trip %d -> %v -> %d", r, co, got)
		}
	}
	// Periodic wrapping.
	if cart.Rank(-1, 0, 0) != cart.Rank(2, 0, 0) {
		t.Error("negative wrap broken")
	}
	if cart.Rank(3, 4, 5) != 0 {
		t.Error("positive wrap broken")
	}
}

func TestCartShift(t *testing.T) {
	err := Run(6, func(c *Comm) {
		cart := NewCart(c, 2, 3)
		src, dst := cart.Shift(1, 1)
		// Everyone sends its rank to dst along dim 1 and receives from src.
		Send(c, dst, 9, []int{c.Rank()})
		got := Recv[int](c, src, 9)
		if got[0] != src {
			t.Errorf("shift recv %d want %d", got[0], src)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalancedDims(t *testing.T) {
	cases := []struct {
		n, d int
	}{{1, 3}, {2, 3}, {4, 3}, {8, 3}, {12, 3}, {16, 2}, {60, 3}, {7, 3}, {96, 3}}
	for _, tc := range cases {
		dims := BalancedDims(tc.n, tc.d)
		prod := 1
		for _, v := range dims {
			prod *= v
		}
		if prod != tc.n {
			t.Errorf("BalancedDims(%d,%d)=%v product %d", tc.n, tc.d, dims, prod)
		}
		for i := 1; i < len(dims); i++ {
			if dims[i] > dims[i-1] {
				t.Errorf("BalancedDims(%d,%d)=%v not descending", tc.n, tc.d, dims)
			}
		}
	}
}

// Property: AllReduce(sum) equals the serially computed sum for random
// vectors on a random communicator size.
func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(9)
		n := 1 + rng.Intn(50)
		data := make([][]float64, p)
		want := make([]float64, n)
		for r := range data {
			data[r] = make([]float64, n)
			for i := range data[r] {
				data[r][i] = rng.NormFloat64()
				want[i] += data[r][i]
			}
		}
		ok := true
		err := Run(p, func(c *Comm) {
			got := AllReduce(c, data[c.Rank()], SumF64)
			for i := range got {
				d := got[i] - want[i]
				if d < -1e-9 || d > 1e-9 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllToAll is its own inverse in the sense that sending back the
// received buffers returns the originals.
func TestAllToAllRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(7)
		orig := make([][][]float32, p) // orig[me][dst]
		for me := 0; me < p; me++ {
			orig[me] = make([][]float32, p)
			for dst := 0; dst < p; dst++ {
				n := rng.Intn(20)
				orig[me][dst] = make([]float32, n)
				for i := range orig[me][dst] {
					orig[me][dst][i] = rng.Float32()
				}
			}
		}
		ok := true
		err := Run(p, func(c *Comm) {
			me := c.Rank()
			got := AllToAll(c, orig[me])
			back := AllToAll(c, got)
			for dst := 0; dst < p; dst++ {
				if len(back[dst]) != len(orig[me][dst]) {
					ok = false
					continue
				}
				for i := range back[dst] {
					if back[dst][i] != orig[me][dst][i] {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldCounters(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 0, make([]float64, 10))
		} else {
			Recv[float64](c, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesSent.Load() != 80 {
		t.Errorf("BytesSent=%d want 80", w.BytesSent.Load())
	}
	if w.MsgsSent.Load() != 1 {
		t.Errorf("MsgsSent=%d want 1", w.MsgsSent.Load())
	}
}

func TestSendRecvExchange(t *testing.T) {
	err := Run(2, func(c *Comm) {
		me := c.Rank()
		other := 1 - me
		got := SendRecv(c, other, 3, []int{me * 10}, other, 3)
		if got[0] != other*10 {
			t.Errorf("rank %d received %d", me, got[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendMoveDelivers(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float32{1, 2, 3}
			SendMove(c, 1, 0, buf)
		} else {
			got := Recv[float32](c, 0, 0)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
