// Package mpi implements an in-process message-passing runtime modeled on
// MPI. Ranks are goroutines; point-to-point messages are matched on
// (communicator, source, tag) and collectives are implemented with the
// classical distributed algorithms (dissemination barrier, binomial trees,
// recursive doubling, pairwise exchange) so that the communication pattern
// of a program is the same as it would be under a real MPI library.
//
// PR 3 added the non-blocking API (Request, Isend/Irecv, IrecvInit for
// allocation-free plan-owned requests, Wait/Test/Testsome): sends are eager
// — the payload is buffered at post time — and receives match lazily at
// completion, FIFO per (source, tag), which is what buys real
// computation/communication overlap when ranks are goroutines.
//
// PR 5 added AllOK, the agreement primitive behind collective I/O: one
// rank's local failure becomes one consistent collective outcome, and a
// true result doubles as a completion barrier for file-visibility
// ordering (create before open, write before rename).
//
// PR 6 added failure detection and classified teardown. A panicking rank
// aborts the world and wakes every peer parked in Recv/Wait/collectives
// (each surfaces an *AbortError); World.SetTimeout bounds every blocking
// operation so a silently wedged rank is detected as a *TimeoutError rather
// than hanging the world; World.RunDeadline adds an outer wall-clock bound
// for ranks stuck outside mpi calls; Comm.Abort lets a rank take the world
// down deterministically; Request.WaitTimeout is the error-returning wait.
// Send, receive, and collective entry points carry fault-injection hooks
// (internal/fault) that cost one atomic load when no plan is armed.
//
// PR 9 added a real wire transport behind the same API. Connect/RunWire
// build worlds whose ranks live in separate OS processes joined by TCP or
// Unix-domain sockets: every remote message is one CRC-32C-protected frame
// (FrameHeaderSize bytes of header + the payload's raw memory image),
// matched on (communicator context, source, tag) with the same eager-send /
// lazy-match / FIFO-per-envelope semantics as the mailbox, so the goroutine
// world doubles as the bitwise oracle for the wire world. Rank 0 runs a
// rendezvous over a Unix socket to exchange listener addresses; launchers
// speak the EnvRank/EnvSize/EnvRendezvous/EnvTransport environment contract
// (WireChild detects it, ConnectEnv consumes it). Abort, timeout, and
// fault-injection behavior is transport-independent — a dead peer surfaces
// as the same *AbortError the inproc path produces — and Comm.Stats exposes
// per-process message/byte counters (wire and logical) for collective
// merging at report time.
//
// HACC uses MPI for its long/medium-range force framework; this package is
// the substitute substrate that lets the rest of the code run unmodified at
// "scale" on a single machine — and now across processes.
package mpi
