// Package mpi implements an in-process message-passing runtime modeled on
// MPI. Ranks are goroutines; point-to-point messages are matched on
// (communicator, source, tag) and collectives are implemented with the
// classical distributed algorithms (dissemination barrier, binomial trees,
// recursive doubling, pairwise exchange) so that the communication pattern
// of a program is the same as it would be under a real MPI library.
//
// PR 3 added the non-blocking API (Request, Isend/Irecv, IrecvInit for
// allocation-free plan-owned requests, Wait/Test/Testsome): sends are eager
// — the payload is buffered at post time — and receives match lazily at
// completion, FIFO per (source, tag), which is what buys real
// computation/communication overlap when ranks are goroutines.
//
// PR 5 added AllOK, the agreement primitive behind collective I/O: one
// rank's local failure becomes one consistent collective outcome, and a
// true result doubles as a completion barrier for file-visibility
// ordering (create before open, write before rename).
//
// PR 6 added failure detection and classified teardown. A panicking rank
// aborts the world and wakes every peer parked in Recv/Wait/collectives
// (each surfaces an *AbortError); World.SetTimeout bounds every blocking
// operation so a silently wedged rank is detected as a *TimeoutError rather
// than hanging the world; World.RunDeadline adds an outer wall-clock bound
// for ranks stuck outside mpi calls; Comm.Abort lets a rank take the world
// down deterministically; Request.WaitTimeout is the error-returning wait.
// Send, receive, and collective entry points carry fault-injection hooks
// (internal/fault) that cost one atomic load when no plan is armed.
//
// HACC uses MPI for its long/medium-range force framework; this package is
// the substitute substrate that lets the rest of the code run unmodified at
// "scale" on a single machine.
package mpi
