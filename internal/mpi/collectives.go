package mpi

import (
	"fmt"

	"hacc/internal/fault"
)

// hitCollective reports entry into a collective to an armed fault injector.
// Nested collectives (AllGather's Gather+Bcast, AllOK's AllReduce) each
// report, so "every Nth collective" counts primitive entries, not top-level
// calls.
func hitCollective(c *Comm) {
	if inj := fault.Armed(); inj != nil {
		inj.Hit(fault.PointCollective, c.worldRank(c.rank), -1)
	}
}

// Reserved internal tags for collectives. User code should use tags >= 0;
// collective traffic uses the high bit so the two never collide.
const (
	tagBarrier = -2 - iota
	tagBcast
	tagReduce
	tagAllReduce
	tagGather
	tagAllGather
	tagScatter
	tagAllToAll
)

// Barrier blocks until every rank of the communicator has entered it.
// Implemented as a dissemination barrier: ceil(log2 p) rounds of pairwise
// messages, the same pattern used by high-quality MPI implementations.
func Barrier(c *Comm) {
	hitCollective(c)
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank()
	for dist := 1; dist < p; dist *= 2 {
		dst := (me + dist) % p
		src := (me - dist + p) % p
		Send(c, dst, tagBarrier, []byte{1})
		Recv[byte](c, src, tagBarrier)
	}
}

// Bcast distributes root's buffer to every rank and returns it. Ranks other
// than root may pass nil. Implemented as a binomial tree.
func Bcast[T any](c *Comm, root int, buf []T) []T {
	hitCollective(c)
	p := c.Size()
	if p == 1 {
		return buf
	}
	c.checkRank(root, "root")
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.Rank() - root + p) % p
	// Smallest power of two above vr; vr's tree parent is vr-recvMask/2.
	recvMask := 1
	for recvMask <= vr {
		recvMask *= 2
	}
	if vr != 0 {
		parent := (vr - recvMask/2 + root) % p
		buf = Recv[T](c, parent, tagBcast)
	}
	for mask := recvMask; vr+mask < p || (vr == 0 && mask < p); mask *= 2 {
		dst := vr + mask
		if dst < p {
			Send(c, (dst+root)%p, tagBcast, buf)
		}
	}
	return buf
}

// Op is a binary reduction operator. It must be associative.
type Op[T any] func(a, b T) T

// Reduce combines equal-length buffers element-wise with op, leaving the
// result on root. Non-root ranks receive nil. Binomial-tree reduction.
func Reduce[T any](c *Comm, root int, buf []T, op Op[T]) []T {
	hitCollective(c)
	p := c.Size()
	acc := append([]T(nil), buf...)
	if p == 1 {
		if root == 0 {
			return acc
		}
	}
	c.checkRank(root, "root")
	vr := (c.Rank() - root + p) % p
	for mask := 1; mask < p; mask *= 2 {
		if vr&mask != 0 {
			dst := ((vr - mask) + root) % p
			SendMove(c, dst, tagReduce, acc)
			return nil
		}
		if vr+mask < p {
			other := Recv[T](c, (vr+mask+root)%p, tagReduce)
			if len(other) != len(acc) {
				panic(fmt.Sprintf("mpi: Reduce length mismatch %d != %d", len(other), len(acc)))
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	if vr == 0 {
		return acc
	}
	return nil
}

// AllReduce combines equal-length buffers element-wise with op and returns
// the result on every rank. Recursive doubling with a pre/post phase for
// non-power-of-two sizes.
func AllReduce[T any](c *Comm, buf []T, op Op[T]) []T {
	hitCollective(c)
	p := c.Size()
	acc := append([]T(nil), buf...)
	if p == 1 {
		return acc
	}
	me := c.Rank()
	// pow2 = largest power of two <= p.
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2
	combine := func(other []T) {
		if len(other) != len(acc) {
			panic(fmt.Sprintf("mpi: AllReduce length mismatch %d != %d", len(other), len(acc)))
		}
		for i := range acc {
			acc[i] = op(acc[i], other[i])
		}
	}
	// Phase 1: the first 2*rem ranks fold pairs so pow2 ranks remain active.
	var active bool
	var vrank int
	switch {
	case me < 2*rem && me%2 == 0: // sends its data, goes inactive
		SendMove(c, me+1, tagAllReduce, acc)
		active = false
	case me < 2*rem: // odd: receives and folds
		combine(Recv[T](c, me-1, tagAllReduce))
		active = true
		vrank = me / 2
	default:
		active = true
		vrank = me - rem
	}
	toReal := func(vr int) int {
		if vr < rem {
			return vr*2 + 1
		}
		return vr + rem
	}
	if active {
		for mask := 1; mask < pow2; mask *= 2 {
			partner := toReal(vrank ^ mask)
			Send(c, partner, tagAllReduce, acc)
			combine(Recv[T](c, partner, tagAllReduce))
		}
	}
	// Phase 3: hand results back to the folded ranks.
	if me < 2*rem {
		if me%2 == 1 {
			Send(c, me-1, tagAllReduce, acc)
		} else {
			acc = Recv[T](c, me+1, tagAllReduce)
		}
	}
	return acc
}

// Gather concentrates each rank's buffer on root, concatenated in rank
// order. Buffers may have different lengths. Non-root ranks receive nil.
func Gather[T any](c *Comm, root int, buf []T) []T {
	hitCollective(c)
	p := c.Size()
	c.checkRank(root, "root")
	if c.Rank() != root {
		Send(c, root, tagGather, buf)
		return nil
	}
	parts := make([][]T, p)
	parts[root] = buf
	total := len(buf)
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		parts[r] = Recv[T](c, r, tagGather)
		total += len(parts[r])
	}
	out := make([]T, 0, total)
	for r := 0; r < p; r++ {
		out = append(out, parts[r]...)
	}
	return out
}

// AllGather concatenates every rank's buffer in rank order and returns the
// result on all ranks. Ring algorithm when buffers are equal-length is not
// assumed; a bcast of the gathered result keeps the code simple and the
// message count O(p log p).
func AllGather[T any](c *Comm, buf []T) []T {
	out := Gather(c, 0, buf)
	return Bcast(c, 0, out)
}

// Scatter splits root's parts (one slice per rank) and delivers parts[r] to
// rank r. Non-root ranks pass nil.
func Scatter[T any](c *Comm, root int, parts [][]T) []T {
	hitCollective(c)
	p := c.Size()
	c.checkRank(root, "root")
	if c.Rank() == root {
		if len(parts) != p {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", p, len(parts)))
		}
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			Send(c, r, tagScatter, parts[r])
		}
		return append([]T(nil), parts[root]...)
	}
	return Recv[T](c, root, tagScatter)
}

// AllToAll performs a personalized all-to-all exchange: sendParts[r] goes to
// rank r; the returned slice holds, at index r, the buffer received from
// rank r. Buffers may have arbitrary (including zero) lengths — this is
// MPI_Alltoallv. Pairwise-exchange schedule.
func AllToAll[T any](c *Comm, sendParts [][]T) [][]T {
	hitCollective(c)
	p := c.Size()
	if len(sendParts) != p {
		panic(fmt.Sprintf("mpi: AllToAll needs %d parts, got %d", p, len(sendParts)))
	}
	me := c.Rank()
	recv := make([][]T, p)
	recv[me] = append([]T(nil), sendParts[me]...)
	for step := 1; step < p; step++ {
		dst := (me + step) % p
		src := (me - step + p) % p
		Send(c, dst, tagAllToAll, sendParts[dst])
		recv[src] = Recv[T](c, src, tagAllToAll)
	}
	return recv
}

// AllOK reports whether every rank of the communicator passed ok=true.
// Collective. It is the agreement primitive behind collective I/O: one
// rank's local failure (a full disk, a permission error) becomes one
// consistent collective outcome on every rank, and a true result doubles
// as a completion barrier — when AllOK returns, every rank has entered it,
// so file-visibility-ordering steps (create before open, write before
// rename) can safely follow.
func AllOK(c *Comm, ok bool) bool {
	v := 1
	if !ok {
		v = 0
	}
	return AllReduce(c, []int{v}, MinInt)[0] == 1
}

// Common reduction operators.

// SumF64 adds float64s.
func SumF64(a, b float64) float64 { return a + b }

// SumF32 adds float32s.
func SumF32(a, b float32) float32 { return a + b }

// SumI64 adds int64s.
func SumI64(a, b int64) int64 { return a + b }

// SumInt adds ints.
func SumInt(a, b int) int { return a + b }

// MaxF64 keeps the larger float64.
func MaxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinF64 keeps the smaller float64.
func MinF64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt keeps the larger int.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinInt keeps the smaller int.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
