package mpi

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// wireTransport carries frames between this process's rank and every peer
// over persistent connections: one full-duplex connection per peer pair,
// established once at bootstrap and reused for the life of the world
// (connection reuse — no per-message dials). Sends are eager: the frame is
// written to the socket at post time under the connection's write lock, and
// the peer's reader goroutine parks it in the local mailbox where the usual
// lazy (comm, src, tag) matching applies. A connection preserves byte order,
// so messages on the same envelope arrive FIFO exactly as in the inproc
// mailbox.
type wireTransport struct {
	w    *World
	self int
	size int
	opt  WireOptions

	peers []helloMsg // rendezvous address table, indexed by world rank

	mu    sync.Mutex
	cond  *sync.Cond
	conns []*peerConn // indexed by world rank; nil for self
	ready int         // number of registered peer connections
	byes  int         // peers that announced graceful close
	err   error       // first bootstrap/teardown error

	lnTCP  net.Listener
	lnUnix net.Listener
	wg     sync.WaitGroup // accept loops and reader goroutines
}

// peerConn is one live connection to a peer rank.
type peerConn struct {
	rank int
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
	hdr  [FrameHeaderSize]byte // scratch, guarded by wmu
	bye  bool                  // peer announced graceful close (guarded by t.mu)
}

// writeFrame frames and writes one message under the connection write lock.
func (pc *peerConn) writeFrame(h frameHeader, payload []byte) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	putFrame(pc.hdr[:], h, payload)
	if _, err := pc.bw.Write(pc.hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := pc.bw.Write(payload); err != nil {
			return err
		}
	}
	return pc.bw.Flush()
}

// send delivers one data frame to the peer hosting world rank dst.
func (t *wireTransport) send(dst int, ctx int64, src, tag int, payload []byte) error {
	pc, err := t.connTo(dst)
	if err != nil {
		return err
	}
	return pc.writeFrame(frameHeader{
		kind: frameData, ctx: ctx, src: int64(src), tag: int64(tag), dst: int64(dst),
		sendNs: time.Now().UnixNano(),
	}, payload)
}

// connTo returns the registered connection for a world rank.
func (t *wireTransport) connTo(rank int) (*peerConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pc := t.conns[rank]
	if pc == nil {
		return nil, fmt.Errorf("mpi: no connection to rank %d", rank)
	}
	return pc, nil
}

// register installs a connection for a peer and wakes bootstrap waiters.
// A duplicate registration (two processes claiming one rank) is a fatal
// bootstrap error.
func (t *wireTransport) register(rank int, conn net.Conn) (*peerConn, error) {
	pc := &peerConn{rank: rank, conn: conn, bw: bufio.NewWriter(conn)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rank < 0 || rank >= t.size || rank == t.self {
		return nil, fmt.Errorf("mpi: hello from invalid rank %d", rank)
	}
	if t.conns[rank] != nil {
		return nil, fmt.Errorf("mpi: duplicate connection from rank %d", rank)
	}
	t.conns[rank] = pc
	t.ready++
	t.cond.Broadcast()
	return pc, nil
}

// wake unparks goroutines blocked on transport state (bootstrap, close
// handshake) so they observe a world abort promptly.
func (t *wireTransport) wake() { t.cond.Broadcast() }

// readLoop dispatches incoming frames from one peer until the connection
// drains. Data frames are parked in the destination mailbox — the reader is
// always draining, so an eager sender can never deadlock against a busy
// peer. An abort frame tears the local world down with the sender's reason;
// a connection error without a prior bye means the peer died, which also
// aborts the world (a lost peer can never satisfy a pending receive).
func (t *wireTransport) readLoop(pc *peerConn, br *bufio.Reader) {
	for {
		h, payload, err := readFrame(br)
		if err != nil {
			t.mu.Lock()
			quiet := pc.bye || t.err != nil
			t.mu.Unlock()
			if quiet || t.w.aborted.Load() {
				return
			}
			t.w.abortInternal(fmt.Sprintf("world aborted: rank %d: connection to rank %d lost: %v",
				t.self, pc.rank, err), false)
			return
		}
		switch h.kind {
		case frameData:
			dst := int(h.dst)
			if dst < 0 || dst >= t.size || t.w.boxes[dst] == nil {
				t.w.abortInternal(fmt.Sprintf("world aborted: rank %d: misrouted frame for rank %d from rank %d",
					t.self, dst, pc.rank), false)
				return
			}
			t.w.boxes[dst].put(message{ctx: h.ctx, src: int(h.src), tag: int(h.tag), payload: rawPayload(payload), sentNs: h.sendNs})
		case frameAbort:
			t.w.abortInternal(string(payload), false)
			// Keep draining until the peer closes; the abort already woke
			// every local waiter.
		case frameBye:
			t.mu.Lock()
			if !pc.bye {
				pc.bye = true
				t.byes++
			}
			t.mu.Unlock()
			t.cond.Broadcast()
		default:
			t.w.abortInternal(fmt.Sprintf("world aborted: rank %d: unknown frame kind %d from rank %d",
				t.self, h.kind, pc.rank), false)
			return
		}
	}
}

// broadcastAbort best-effort delivers the abort reason to every peer so the
// whole distributed world tears down instead of waiting for timeouts. Writes
// are bounded by a short deadline: an abort must never block behind a dead
// peer's full socket.
func (t *wireTransport) broadcastAbort(reason string) {
	t.mu.Lock()
	conns := append([]*peerConn(nil), t.conns...)
	t.mu.Unlock()
	payload := []byte(reason)
	for _, pc := range conns {
		if pc == nil {
			continue
		}
		pc.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		pc.writeFrame(frameHeader{kind: frameAbort}, payload)
	}
}

// close runs the graceful shutdown handshake: announce bye to every peer,
// wait (bounded) until every peer has announced bye too, then close the
// sockets. The wait is what preserves the inproc semantics of sending to a
// rank that has already finished — the late sender's frame still lands in a
// live connection and is dropped in the dead mailbox, rather than failing
// with a reset and aborting a healthy world. On an aborted world the
// handshake is skipped: everything is torn down immediately.
func (t *wireTransport) close() error {
	t.mu.Lock()
	if t.err != nil {
		t.mu.Unlock()
		return nil
	}
	t.err = fmt.Errorf("mpi: world closed")
	conns := append([]*peerConn(nil), t.conns...)
	t.mu.Unlock()

	for _, pc := range conns {
		if pc == nil {
			continue
		}
		pc.writeFrame(frameHeader{kind: frameBye}, nil)
	}
	if !t.w.aborted.Load() {
		deadline := time.Now().Add(t.opt.Timeout)
		alarm := time.AfterFunc(t.opt.Timeout, t.cond.Broadcast)
		t.mu.Lock()
		for t.byes < t.ready && time.Now().Before(deadline) && !t.w.aborted.Load() {
			t.cond.Wait()
		}
		t.mu.Unlock()
		alarm.Stop()
	}
	if t.lnTCP != nil {
		t.lnTCP.Close()
	}
	if t.lnUnix != nil {
		t.lnUnix.Close()
	}
	for _, pc := range conns {
		if pc != nil {
			pc.conn.Close()
		}
	}
	t.wg.Wait()
	return nil
}

// newFrameReader wraps a connection for frame reads. The same buffered
// reader must be used for a connection's whole life — handing a connection
// from the hello handshake to the read loop with a fresh reader would lose
// whatever the first reader buffered ahead.
func newFrameReader(c net.Conn) *bufio.Reader { return bufio.NewReader(c) }

// Close tears down the wire transport, if any: graceful bye handshake with
// every peer, then sockets and listener shutdown. A no-op for inproc worlds
// and on repeat calls.
func (w *World) Close() error {
	if w.tr == nil {
		return nil
	}
	return w.tr.close()
}
