package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// AnySource matches a message from any source rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// message is a single in-flight point-to-point message.
type message struct {
	ctx     int64
	src     int
	tag     int
	payload any // a slice, owned by the receiver once delivered
}

// mailbox holds pending messages destined for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching (ctx, src, tag),
// blocking until one arrives. It returns an error if the world aborted.
func (m *mailbox) take(ctx int64, src, tag int) (message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			return message{}, fmt.Errorf("mpi: world aborted while waiting for message src=%d tag=%d", src, tag)
		}
		if msg, ok := m.match(ctx, src, tag); ok {
			return msg, nil
		}
		m.cond.Wait()
	}
}

// tryTake is the non-blocking form of take: it returns ok=false when no
// matching message is pending instead of waiting.
func (m *mailbox) tryTake(ctx int64, src, tag int) (message, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		return message{}, false, fmt.Errorf("mpi: world aborted while testing for message src=%d tag=%d", src, tag)
	}
	msg, ok := m.match(ctx, src, tag)
	return msg, ok, nil
}

// match removes and returns the first pending message matching
// (ctx, src, tag). Caller holds m.mu.
func (m *mailbox) match(ctx int64, src, tag int) (message, bool) {
	for i, msg := range m.pending {
		if msg.ctx != ctx {
			continue
		}
		if src != AnySource && msg.src != src {
			continue
		}
		if tag != AnyTag && msg.tag != tag {
			continue
		}
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
		return msg, true
	}
	return message{}, false
}

// World is a set of ranks that can communicate. It owns the mailboxes and
// the registry used to derive communicator contexts deterministically.
type World struct {
	size      int
	boxes     []*mailbox
	nextCtx   atomic.Int64
	splitMu   sync.Mutex
	splitCtxs map[splitKey]int64
	aborted   atomic.Bool

	// Bytes moved through point-to-point sends, for bandwidth accounting.
	BytesSent atomic.Int64
	// Number of point-to-point messages.
	MsgsSent atomic.Int64
}

type splitKey struct {
	parentCtx int64
	seq       int64
	color     int
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, splitCtxs: make(map[splitKey]int64)}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.nextCtx.Store(1) // ctx 0 is the world communicator
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// abort wakes all blocked receivers with an error.
func (w *World) abort() {
	if w.aborted.Swap(true) {
		return
	}
	for _, b := range w.boxes {
		b.abort()
	}
}

// Run executes fn concurrently on every rank of the world and waits for all
// ranks to finish. If any rank panics, the remaining ranks are aborted and
// Run returns an error describing the first panic. Run may be called again
// on the same world only if the previous call returned nil.
func (w *World) Run(fn func(c *Comm)) error {
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("mpi: rank %d panicked: %v", rank, p))
					w.abort()
				}
			}()
			fn(&Comm{world: w, ctx: 0, rank: rank, ranks: nil})
		}(r)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Run is a convenience that creates a world of the given size and runs fn.
func Run(size int, fn func(c *Comm)) error {
	return NewWorld(size).Run(fn)
}

// Comm is a communicator: a view of a subset of world ranks with a private
// message context. The zero Comm is not valid; communicators are obtained
// from World.Run and Comm.Split.
type Comm struct {
	world *World
	ctx   int64
	rank  int   // rank within this communicator
	ranks []int // world ranks of the members; nil means identity (world comm)
	seq   int64 // per-comm split sequence counter (same on all members)
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int {
	if c.ranks == nil {
		return c.world.size
	}
	return len(c.ranks)
}

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.world }

// worldRank maps a communicator rank to the underlying world rank.
func (c *Comm) worldRank(r int) int {
	if c.ranks == nil {
		return r
	}
	return c.ranks[r]
}

func (c *Comm) checkRank(r int, what string) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("mpi: %s rank %d out of range [0,%d)", what, r, c.Size()))
	}
}

// send delivers payload (a slice that the receiver will own) to dst.
func (c *Comm) send(dst, tag int, payload any, bytes int) {
	c.checkRank(dst, "destination")
	c.world.BytesSent.Add(int64(bytes))
	c.world.MsgsSent.Add(1)
	c.world.boxes[c.worldRank(dst)].put(message{ctx: c.ctx, src: c.rank, tag: tag, payload: payload})
}

// recv blocks until a matching message arrives and returns its payload.
func (c *Comm) recv(src, tag int) any {
	if src != AnySource {
		c.checkRank(src, "source")
	}
	msg, err := c.world.boxes[c.worldRank(c.rank)].take(c.ctx, src, tag)
	if err != nil {
		panic(err)
	}
	return msg.payload
}

// Send copies buf and delivers it to rank dst with the given tag. It does
// not block (sends are buffered, as with eager-protocol MPI messages).
func Send[T any](c *Comm, dst, tag int, buf []T) {
	cp := make([]T, len(buf))
	copy(cp, buf)
	c.send(dst, tag, cp, len(buf)*sizeOf[T]())
}

// SendMove delivers buf to rank dst without copying. The caller must not
// touch buf afterwards. Used on large transfers (FFT transposes).
func SendMove[T any](c *Comm, dst, tag int, buf []T) {
	c.send(dst, tag, buf, len(buf)*sizeOf[T]())
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag.
func Recv[T any](c *Comm, src, tag int) []T {
	p := c.recv(src, tag)
	buf, ok := p.([]T)
	if !ok {
		panic(fmt.Sprintf("mpi: Recv type mismatch: got %T", p))
	}
	return buf
}

// SendRecv exchanges buffers with two (possibly equal) partners.
func SendRecv[T any](c *Comm, dst, sendTag int, sendBuf []T, src, recvTag int) []T {
	SendMove(c, dst, sendTag, append([]T(nil), sendBuf...))
	return Recv[T](c, src, recvTag)
}

// sizeOf returns a rough element size for bandwidth accounting.
func sizeOf[T any]() int {
	var z T
	switch any(z).(type) {
	case float64, complex64, int64, uint64, int:
		return 8
	case complex128:
		return 16
	case float32, int32, uint32:
		return 4
	default:
		return 8
	}
}

// Split partitions the communicator into sub-communicators, one per distinct
// color; ranks within a sub-communicator are ordered by (key, old rank).
// Every member of c must call Split with the same call sequence. A negative
// color returns nil (the rank does not join any sub-communicator).
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key int }
	all := AllGather(c, []ck{{color, key}})
	seq := c.seq
	c.seq++
	if color < 0 {
		return nil
	}
	// Collect members with my color, ordered by (key, rank).
	var members []int
	for r := 0; r < c.Size(); r++ {
		if all[r].Color == color {
			members = append(members, r)
		}
	}
	// Stable sort by key (insertion sort: groups are small).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && all[members[j-1]].Key > all[members[j]].Key; j-- {
			members[j-1], members[j] = members[j], members[j-1]
		}
	}
	newRank := -1
	worldRanks := make([]int, len(members))
	for i, r := range members {
		worldRanks[i] = c.worldRank(r)
		if r == c.rank {
			newRank = i
		}
	}
	// Agree on a context id via the world registry. All members observe the
	// same (parentCtx, seq, color) so they all get the same new ctx.
	w := c.world
	w.splitMu.Lock()
	k := splitKey{parentCtx: c.ctx, seq: seq, color: color}
	ctx, ok := w.splitCtxs[k]
	if !ok {
		ctx = w.nextCtx.Add(1)
		w.splitCtxs[k] = ctx
	}
	w.splitMu.Unlock()
	return &Comm{world: w, ctx: ctx, rank: newRank, ranks: worldRanks}
}
