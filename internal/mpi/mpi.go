package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hacc/internal/fault"
	"hacc/internal/obs"
)

// TimeoutError reports a blocking operation that exceeded the world's
// operation timeout (see World.SetTimeout) or a Run that exceeded its
// deadline (see RunDeadline). It is how a wedged rank — one that stopped
// sending without panicking — surfaces as a classifiable failure instead of
// blocking the world forever.
type TimeoutError struct {
	Rank    int           // rank whose wait timed out; -1 for a whole-world deadline
	Src     int           // source rank the wait was matching (AnySource = any)
	Tag     int           // tag the wait was matching (AnyTag = any)
	Timeout time.Duration // the limit that was exceeded
}

func (e *TimeoutError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("mpi: world deadline %v exceeded", e.Timeout)
	}
	return fmt.Sprintf("mpi: rank %d timed out after %v waiting for message src=%d tag=%d",
		e.Rank, e.Timeout, e.Src, e.Tag)
}

// AbortError reports that the world was aborted — by a rank panicking, by an
// explicit Comm.Abort, by a Run deadline, or by a lost wire connection —
// while the failing operation was blocked. Reason carries the cause recorded
// at abort time.
type AbortError struct {
	Rank   int // rank that observed the abort (not necessarily the cause)
	Src    int
	Tag    int
	Reason string
}

func (e *AbortError) Error() string {
	reason := e.Reason
	if reason == "" {
		reason = "world aborted"
	}
	return fmt.Sprintf("mpi: rank %d: %s (while waiting for message src=%d tag=%d)",
		e.Rank, reason, e.Src, e.Tag)
}

// AnySource matches a message from any source rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// message is a single in-flight point-to-point message.
type message struct {
	ctx     int64
	src     int
	tag     int
	payload any   // a slice owned by the receiver, or a rawPayload off the wire
	sentNs  int64 // sender's wall-clock UnixNano at frame write; 0 for inproc delivery
}

// mailbox holds pending messages destined for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	aborted bool
	reason  string         // why the world aborted, for error messages
	rank    int            // world rank this mailbox belongs to
	lat     *obs.Histogram // wire send→match latency sink (world-shared; may be nil)
}

func newMailbox(rank int) *mailbox {
	m := &mailbox{rank: rank}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) abort(reason string) {
	m.mu.Lock()
	m.aborted = true
	m.reason = reason
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching (ctx, src, tag),
// blocking until one arrives. It returns an *AbortError if the world
// aborted, or a *TimeoutError if timeout > 0 elapses without a match — a
// wedged peer is detected here rather than hanging the caller forever.
func (m *mailbox) take(ctx int64, src, tag int, timeout time.Duration) (message, error) {
	var deadline time.Time
	var alarm *time.Timer
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// cond.Wait cannot time out on its own; an external timer wakes the
		// waiters so the deadline check below runs.
		alarm = time.AfterFunc(timeout, m.cond.Broadcast)
		defer alarm.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			return message{}, &AbortError{Rank: m.rank, Src: src, Tag: tag, Reason: m.reason}
		}
		if msg, ok := m.match(ctx, src, tag); ok {
			return msg, nil
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return message{}, &TimeoutError{Rank: m.rank, Src: src, Tag: tag, Timeout: timeout}
		}
		m.cond.Wait()
	}
}

// tryTake is the non-blocking form of take: it returns ok=false when no
// matching message is pending instead of waiting.
func (m *mailbox) tryTake(ctx int64, src, tag int) (message, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		return message{}, false, &AbortError{Rank: m.rank, Src: src, Tag: tag, Reason: m.reason}
	}
	msg, ok := m.match(ctx, src, tag)
	return msg, ok, nil
}

// match removes and returns the first pending message matching
// (ctx, src, tag). Caller holds m.mu. Wire-delivered messages carry the
// sender's wall-clock timestamp; the send→match delta is the wire latency a
// receiver actually experienced (transport plus any time the message sat
// unmatched), recorded here so every Recv/Wait/collective leg feeds the
// histogram without instrumenting each call site. Wall clocks across
// processes can skew; a negative delta clamps to zero rather than
// corrupting the distribution.
func (m *mailbox) match(ctx int64, src, tag int) (message, bool) {
	for i, msg := range m.pending {
		if msg.ctx != ctx {
			continue
		}
		if src != AnySource && msg.src != src {
			continue
		}
		if tag != AnyTag && msg.tag != tag {
			continue
		}
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
		if msg.sentNs != 0 && m.lat != nil {
			d := time.Now().UnixNano() - msg.sentNs
			if d < 0 {
				d = 0
			}
			m.lat.Observe(d)
		}
		return msg, true
	}
	return message{}, false
}

// CommStats is one rank's point-to-point send accounting. Msgs and Bytes
// count every send posted by the rank with exact payload bytes; WireMsgs and
// WireBytes count the subset that crossed a socket to a remote process. The
// on-wire framing overhead is deterministic — FrameHeaderSize bytes per wire
// message — so total socket traffic is WireBytes + FrameHeaderSize·WireMsgs.
type CommStats struct {
	Msgs, Bytes, WireMsgs, WireBytes int64
}

// Add accumulates another rank's statistics.
func (s *CommStats) Add(o CommStats) {
	s.Msgs += o.Msgs
	s.Bytes += o.Bytes
	s.WireMsgs += o.WireMsgs
	s.WireBytes += o.WireBytes
}

// commStat is the internal per-rank counter slot. Each slot is written only
// by its own rank's goroutine and read only by that goroutine (reports merge
// slots collectively, each rank contributing its own), so plain fields are
// safe — this is the single-writer discipline that also holds when ranks
// live in different OS processes and share no memory at all. The padding
// keeps neighboring ranks' slots off one cache line in the in-process world.
type commStat struct {
	st CommStats
	_  [4]int64
}

// World is a set of ranks that can communicate. In the in-process (inproc)
// transport every rank is a goroutine and every mailbox is local; behind a
// wire transport (see Connect) exactly the local ranks have mailboxes and
// remote ranks are reached through framed messages on sockets.
type World struct {
	size     int
	boxes    []*mailbox // indexed by world rank; nil for ranks hosted remotely
	local    []int      // world ranks hosted in this process
	tr       *wireTransport
	sent     []commStat // per-rank send accounting, indexed by world rank
	aborted  atomic.Bool
	abortCh  chan struct{}         // closed once on abort; wakes RunDeadline early
	firstErr atomic.Pointer[error] // first rank failure of the current Run
	timeout  atomic.Int64          // per-blocking-op limit in nanoseconds; 0 = none

	// Bytes moved through point-to-point sends posted by local ranks, for
	// bandwidth accounting. Process-local; see Comm.Stats for the per-rank
	// single-writer counters that merge across processes.
	BytesSent atomic.Int64
	// Number of point-to-point messages posted by local ranks.
	MsgsSent atomic.Int64

	metrics *obs.Registry  // world-scoped metric registry (never nil)
	wireLat *obs.Histogram // wire send→match latency in ns, local mailboxes only
}

// initMetrics sets up the world's metric registry and the wire-latency
// histogram shared by every local mailbox. Every rank's histogram uses
// obs.LatencyBuckets, so per-process counts merge with one SumI64 reduction
// (see WireLatencySummary).
func (w *World) initMetrics() {
	w.metrics = obs.NewRegistry()
	w.wireLat = w.metrics.Histogram("wire.latency_ns", obs.LatencyBuckets)
	for _, b := range w.boxes {
		if b != nil {
			b.lat = w.wireLat
		}
	}
}

// Metrics returns the world's metric registry. It always exists; the wire
// transport feeds "wire.latency_ns", and callers may register their own
// run-level metrics alongside.
func (w *World) Metrics() *obs.Registry { return w.metrics }

// NewWorld creates a world with the given number of ranks, all hosted in
// this process as goroutines (the inproc reference transport).
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, abortCh: make(chan struct{})}
	w.boxes = make([]*mailbox, size)
	w.local = make([]int, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox(i)
		w.local[i] = i
	}
	w.sent = make([]commStat, size)
	w.initMetrics()
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Wire reports whether this world reaches any rank over a wire transport.
func (w *World) Wire() bool { return w.tr != nil }

// Local returns the world ranks hosted in this process.
func (w *World) Local() []int { return w.local }

// SetTimeout bounds every subsequent blocking operation (Recv, Wait,
// collective legs) on this world: a wait that exceeds d fails with a
// *TimeoutError, which aborts the world and surfaces from Run. Zero disables
// the limit (the default). The limit must comfortably exceed the worst-case
// compute imbalance between ranks, or healthy-but-slow peers will be
// misdiagnosed as hung.
func (w *World) SetTimeout(d time.Duration) { w.timeout.Store(int64(d)) }

// Timeout returns the current per-operation timeout (zero = none).
func (w *World) Timeout() time.Duration { return time.Duration(w.timeout.Load()) }

// Aborted reports whether the world has been aborted.
func (w *World) Aborted() bool { return w.aborted.Load() }

// abortWith wakes all blocked receivers with an error carrying reason and,
// over a wire transport, broadcasts the abort to every peer process so the
// whole distributed world tears down with one consistent reason.
func (w *World) abortWith(reason string) { w.abortInternal(reason, true) }

// abortInternal is abortWith with control over wire propagation: aborts
// received from the wire (an abort frame, a lost connection) are applied
// locally only — every process observes the failure through its own
// connections, so re-broadcasting would only echo.
func (w *World) abortInternal(reason string, broadcast bool) {
	if w.aborted.Swap(true) {
		return
	}
	for _, b := range w.boxes {
		if b != nil {
			b.abort(reason)
		}
	}
	close(w.abortCh)
	if w.tr != nil {
		if broadcast {
			w.tr.broadcastAbort(reason)
		}
		w.tr.wake()
	}
}

// Run executes fn concurrently on every local rank of the world and waits
// for them to finish. For an inproc world that is every rank; behind a wire
// transport it is this process's rank. If any rank panics, the remaining
// ranks are aborted and Run returns an error describing the first panic;
// panic values that are errors (an injected fault.Crash, an *AbortError, a
// *TimeoutError) are wrapped so callers can classify them with errors.As.
// Run may be called again on the same world only if the previous call
// returned nil.
func (w *World) Run(fn func(c *Comm)) error {
	var wg sync.WaitGroup
	w.firstErr.Store(nil)
	firstErr := &w.firstErr
	for _, r := range w.local {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					var err error
					if e, ok := p.(error); ok {
						err = fmt.Errorf("mpi: rank %d: %w", rank, e)
					} else {
						err = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					}
					firstErr.CompareAndSwap(nil, &err)
					w.abortWith(fmt.Sprintf("world aborted: rank %d failed: %v", rank, p))
				}
			}()
			fn(&Comm{world: w, ctx: 0, rank: rank, ranks: nil})
		}(r)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return *e
	}
	return nil
}

// RunDeadline is Run with a wall-clock bound on the whole world. If the
// ranks do not all finish within d, the world is aborted (waking every rank
// blocked in a receive or collective) and RunDeadline returns a
// *TimeoutError after a short grace period. Ranks wedged outside mpi calls
// — spinning in compute, or parked by an injected hang — cannot be
// preempted; their goroutines are abandoned and drain when whatever blocks
// them releases (the fault injector's Interrupt, typically). The abandoned
// runner recovers their eventual panics, so a leak never crashes the
// process.
func (w *World) RunDeadline(fn func(c *Comm), d time.Duration) error {
	if d <= 0 {
		return w.Run(fn)
	}
	done := make(chan error, 1) // buffered: the runner must not leak blocked
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- fmt.Errorf("mpi: run panicked: %v", p)
			}
		}()
		done <- w.Run(fn)
	}()
	grace := d / 4
	if grace < 100*time.Millisecond {
		grace = 100 * time.Millisecond
	}
	if grace > 2*time.Second {
		grace = 2 * time.Second // abort wakes survivors immediately; don't linger
	}
	select {
	case err := <-done:
		return err
	case <-w.abortCh:
		// A rank already failed (panic, per-op timeout, explicit Abort) and
		// the world is tearing down — no reason to sleep until the deadline.
		// Give the survivors a grace period to drain; if a wedged rank keeps
		// Run from returning, report the recorded first failure so the caller
		// can still classify it.
		select {
		case err := <-done:
			return err
		case <-time.After(grace):
			if e := w.firstErr.Load(); e != nil {
				return *e
			}
			return &TimeoutError{Rank: -1, Src: AnySource, Tag: AnyTag, Timeout: d}
		}
	case <-time.After(d):
	}
	w.abortWith(fmt.Sprintf("world aborted: deadline %v exceeded", d))
	select {
	case <-done:
		// The ranks drained once woken; still report the deadline — the run
		// did not complete, it was cut short.
	case <-time.After(grace):
		// Truly wedged goroutines are leaked; see doc comment.
	}
	return &TimeoutError{Rank: -1, Src: AnySource, Tag: AnyTag, Timeout: d}
}

// Run is a convenience that creates a world of the given size and runs fn.
func Run(size int, fn func(c *Comm)) error {
	return NewWorld(size).Run(fn)
}

// Comm is a communicator: a view of a subset of world ranks with a private
// message context. The zero Comm is not valid; communicators are obtained
// from World.Run and Comm.Split.
type Comm struct {
	world *World
	ctx   int64
	rank  int   // rank within this communicator
	ranks []int // world ranks of the members; nil means identity (world comm)
	seq   int64 // per-comm split sequence counter (same on all members)
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int {
	if c.ranks == nil {
		return c.world.size
	}
	return len(c.ranks)
}

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.world }

// Stats returns the calling rank's send accounting. Each rank owns its slot
// (single-writer), so this is exact in every transport; merge across ranks
// with a collective (see core's phase report) rather than by reading peers'
// slots, which do not exist in a multi-process world.
func (c *Comm) Stats() CommStats {
	return c.world.sent[c.worldRank(c.rank)].st
}

// worldRank maps a communicator rank to the underlying world rank.
func (c *Comm) worldRank(r int) int {
	if c.ranks == nil {
		return r
	}
	return c.ranks[r]
}

func (c *Comm) checkRank(r int, what string) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("mpi: %s rank %d out of range [0,%d)", what, r, c.Size()))
	}
}

// Abort marks the world aborted with the given reason and panics with an
// *AbortError, unblocking every peer parked in a Recv, Wait, or collective.
// It is the local-failure escape hatch: a rank that detects an unrecoverable
// condition takes the whole world down deterministically instead of leaving
// its peers deadlocked waiting for messages that will never come.
func (c *Comm) Abort(reason string) {
	c.world.abortWith(fmt.Sprintf("world aborted: rank %d: %s", c.worldRank(c.rank), reason))
	panic(&AbortError{Rank: c.worldRank(c.rank), Src: AnySource, Tag: AnyTag, Reason: reason})
}

// preSend runs the fault hook and accounting shared by the local and wire
// send paths — injection verbs and counters behave identically on both. It
// reports false when an armed Drop plan ate the message.
func (c *Comm) preSend(bytes int, wire bool) bool {
	if inj := fault.Armed(); inj != nil {
		if inj.Hit(fault.PointSend, c.worldRank(c.rank), -1) == fault.Dropped {
			return false // message silently lost, as if the wire ate it
		}
	}
	st := &c.world.sent[c.worldRank(c.rank)].st
	st.Msgs++
	st.Bytes += int64(bytes)
	if wire {
		st.WireMsgs++
		st.WireBytes += int64(bytes)
	}
	c.world.BytesSent.Add(int64(bytes))
	c.world.MsgsSent.Add(1)
	return true
}

// send delivers payload (a slice that the receiver will own) to a dst whose
// mailbox is local.
func (c *Comm) send(dst, tag int, payload any, bytes int) {
	c.checkRank(dst, "destination")
	if !c.preSend(bytes, false) {
		return
	}
	c.world.boxes[c.worldRank(dst)].put(message{ctx: c.ctx, src: c.rank, tag: tag, payload: payload})
}

// sendWire frames the raw memory image of the payload and writes it to the
// connection for dst. The bytes are copied into the socket before returning,
// so the caller's buffer is immediately reusable — wire sends keep the
// eager-send contract. A dead connection aborts the world: the message can
// never be delivered, so peers waiting on it must be woken.
func (c *Comm) sendWire(dst, tag int, raw []byte, bytes int) {
	c.checkRank(dst, "destination")
	if !c.preSend(bytes, true) {
		return
	}
	if err := c.world.tr.send(c.worldRank(dst), c.ctx, c.rank, tag, raw); err != nil {
		reason := fmt.Sprintf("send to rank %d failed: %v", c.worldRank(dst), err)
		c.world.abortWith(fmt.Sprintf("world aborted: rank %d: %s", c.worldRank(c.rank), reason))
		panic(&AbortError{Rank: c.worldRank(c.rank), Src: AnySource, Tag: tag, Reason: reason})
	}
}

// recv blocks until a matching message arrives and returns its payload.
func (c *Comm) recv(src, tag int) any {
	if src != AnySource {
		c.checkRank(src, "source")
	}
	if inj := fault.Armed(); inj != nil {
		inj.Hit(fault.PointRecv, c.worldRank(c.rank), -1)
	}
	t0 := obs.Begin()
	msg, err := c.world.boxes[c.worldRank(c.rank)].take(c.ctx, src, tag, c.world.Timeout())
	obs.End(c.worldRank(c.rank), obs.SpanRecv, t0)
	if err != nil {
		panic(err)
	}
	return msg.payload
}

// Send copies buf and delivers it to rank dst with the given tag. It does
// not block (sends are buffered, as with eager-protocol MPI messages).
func Send[T any](c *Comm, dst, tag int, buf []T) {
	c.checkRank(dst, "destination")
	n := len(buf) * sizeOf[T]()
	if c.world.boxes[c.worldRank(dst)] != nil {
		cp := make([]T, len(buf))
		copy(cp, buf)
		c.send(dst, tag, cp, n)
		return
	}
	c.sendWire(dst, tag, asBytes(buf), n)
}

// SendMove delivers buf to rank dst without copying. The caller must not
// touch buf afterwards. Used on large transfers (FFT transposes).
func SendMove[T any](c *Comm, dst, tag int, buf []T) {
	c.checkRank(dst, "destination")
	n := len(buf) * sizeOf[T]()
	if c.world.boxes[c.worldRank(dst)] != nil {
		c.send(dst, tag, buf, n)
		return
	}
	c.sendWire(dst, tag, asBytes(buf), n)
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag.
func Recv[T any](c *Comm, src, tag int) []T {
	p := c.recv(src, tag)
	if raw, ok := p.(rawPayload); ok {
		return decodeRaw[T](raw)
	}
	buf, ok := p.([]T)
	if !ok {
		panic(fmt.Sprintf("mpi: Recv type mismatch: got %T", p))
	}
	return buf
}

// SendRecv exchanges buffers with two (possibly equal) partners.
func SendRecv[T any](c *Comm, dst, sendTag int, sendBuf []T, src, recvTag int) []T {
	SendMove(c, dst, sendTag, append([]T(nil), sendBuf...))
	return Recv[T](c, src, recvTag)
}

// Split partitions the communicator into sub-communicators, one per distinct
// color; ranks within a sub-communicator are ordered by (key, old rank).
// Every member of c must call Split with the same call sequence. A negative
// color returns nil (the rank does not join any sub-communicator).
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key int }
	all := AllGather(c, []ck{{color, key}})
	seq := c.seq
	c.seq++
	if color < 0 {
		return nil
	}
	// Collect members with my color, ordered by (key, rank).
	var members []int
	for r := 0; r < c.Size(); r++ {
		if all[r].Color == color {
			members = append(members, r)
		}
	}
	// Stable sort by key (insertion sort: groups are small).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && all[members[j-1]].Key > all[members[j]].Key; j-- {
			members[j-1], members[j] = members[j], members[j-1]
		}
	}
	newRank := -1
	worldRanks := make([]int, len(members))
	for i, r := range members {
		worldRanks[i] = c.worldRank(r)
		if r == c.rank {
			newRank = i
		}
	}
	return &Comm{world: c.world, ctx: splitCtx(c.ctx, seq, color), rank: newRank, ranks: worldRanks}
}

// splitCtx derives a sub-communicator's context id from
// (parent ctx, split sequence, color) with a splitmix64-style mixer. Every
// member observes the same inputs, so all agree on the context with no extra
// communication — and, unlike the shared registry this replaces, the
// derivation holds across OS process boundaries, where ranks share no
// memory. Distinct splits collide only with ~2^-64 probability per pair;
// the zero context is reserved for the world communicator and remapped.
func splitCtx(parent, seq int64, color int) int64 {
	x := uint64(parent)*0x9e3779b97f4a7c15 +
		uint64(seq)*0xbf58476d1ce4e5b9 +
		uint64(color+1)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return int64(x)
}
