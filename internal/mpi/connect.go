package mpi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// WireOptions configures a wire-transport world (see Connect).
type WireOptions struct {
	// Transport selects the socket family: "tcp", "unix", or "auto" (the
	// default) — unix sockets between ranks on the same host, TCP otherwise.
	Transport string
	// Rendezvous is the bootstrap address: a filesystem path on which rank 0
	// listens (unix socket) and every other rank dials to exchange the
	// address table. The launcher chooses it, so there are no port races.
	// Required.
	Rendezvous string
	// Dir is the directory for this rank's own unix data socket; defaults to
	// the rendezvous directory.
	Dir string
	// Host is the interface TCP data listeners bind and advertise; defaults
	// to 127.0.0.1 (single-host loopback).
	Host string
	// Timeout bounds the whole bootstrap (rendezvous dial retries included)
	// and the graceful-close handshake. Defaults to 30s.
	Timeout time.Duration
}

func (o *WireOptions) fill() error {
	switch o.Transport {
	case "", "auto":
		o.Transport = "auto"
	case "tcp", "unix":
	default:
		return fmt.Errorf("mpi: unknown transport %q (want tcp, unix, or auto)", o.Transport)
	}
	if o.Rendezvous == "" {
		return errors.New("mpi: WireOptions.Rendezvous is required")
	}
	if o.Dir == "" {
		o.Dir = filepath.Dir(o.Rendezvous)
	}
	if o.Host == "" {
		o.Host = "127.0.0.1"
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return nil
}

// helloMsg is the JSON record a rank sends to the rendezvous point; the
// reply is the full table, indexed by rank.
type helloMsg struct {
	Rank int    `json:"rank"`
	TCP  string `json:"tcp,omitempty"`
	Unix string `json:"unix,omitempty"`
	Host string `json:"host"`
}

// Connect joins a wire-transport world of the given size as the given rank
// and returns once a connection to every peer is established. Rank 0 serves
// the rendezvous: every rank sends its data-socket addresses there and
// receives the full table, then rank r dials every rank q < r (so each pair
// shares exactly one full-duplex connection). Ranks on the same host use a
// unix-socket fast path unless Transport forces TCP. The returned World runs
// exactly one local rank; Run(fn) executes fn for it, and every mpi
// operation — point-to-point, the collectives, AllOK, abort and timeout
// propagation — behaves as in the inproc world. Callers must Close the
// world when done.
func Connect(size, rank int, opt WireOptions) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, size)
	}
	if err := opt.fill(); err != nil {
		return nil, err
	}
	hostname, err := os.Hostname()
	if err != nil {
		hostname = "localhost"
	}

	w := &World{size: size, abortCh: make(chan struct{})}
	w.boxes = make([]*mailbox, size)
	w.boxes[rank] = newMailbox(rank)
	w.local = []int{rank}
	w.sent = make([]commStat, size)
	w.initMetrics()
	t := &wireTransport{w: w, self: rank, size: size, opt: opt}
	t.cond = sync.NewCond(&t.mu)
	t.conns = make([]*peerConn, size)
	w.tr = t

	fail := func(err error) (*World, error) {
		if t.lnTCP != nil {
			t.lnTCP.Close()
		}
		if t.lnUnix != nil {
			t.lnUnix.Close()
		}
		for _, pc := range t.conns {
			if pc != nil {
				pc.conn.Close()
			}
		}
		return nil, err
	}

	// Data listeners come up before the rendezvous so the advertised
	// addresses are live the moment any peer learns them.
	me := helloMsg{Rank: rank, Host: hostname}
	if opt.Transport != "tcp" {
		ln, err := net.Listen("unix", filepath.Join(opt.Dir, fmt.Sprintf("hacc-rank-%d.sock", rank)))
		if err != nil {
			return fail(fmt.Errorf("mpi: rank %d: unix data listener: %w", rank, err))
		}
		t.lnUnix = ln
		me.Unix = ln.Addr().String()
	}
	if opt.Transport != "unix" {
		ln, err := net.Listen("tcp", net.JoinHostPort(opt.Host, "0"))
		if err != nil {
			return fail(fmt.Errorf("mpi: rank %d: tcp data listener: %w", rank, err))
		}
		t.lnTCP = ln
		me.TCP = ln.Addr().String()
	}

	peers, err := rendezvous(size, rank, opt, me)
	if err != nil {
		return fail(fmt.Errorf("mpi: rank %d: rendezvous: %w", rank, err))
	}
	t.peers = peers

	for _, ln := range []net.Listener{t.lnTCP, t.lnUnix} {
		if ln == nil {
			continue
		}
		t.wg.Add(1)
		go t.acceptLoop(ln)
	}

	// Dial every lower rank; higher ranks dial us.
	deadline := time.Now().Add(opt.Timeout)
	for q := 0; q < rank; q++ {
		conn, err := dialPeer(peers[q], opt, hostname, deadline)
		if err != nil {
			return fail(fmt.Errorf("mpi: rank %d: dial rank %d: %w", rank, q, err))
		}
		pc, err := t.register(q, conn)
		if err != nil {
			conn.Close()
			return fail(err)
		}
		if err := pc.writeFrame(frameHeader{kind: frameHello, src: int64(rank)}, nil); err != nil {
			return fail(fmt.Errorf("mpi: rank %d: hello to rank %d: %w", rank, q, err))
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(pc, newFrameReader(conn))
		}()
	}

	// Wait for the higher ranks to dial in.
	alarm := time.AfterFunc(time.Until(deadline), t.cond.Broadcast)
	t.mu.Lock()
	for t.ready < size-1 && time.Now().Before(deadline) && t.err == nil {
		t.cond.Wait()
	}
	ready, terr := t.ready, t.err
	t.mu.Unlock()
	alarm.Stop()
	if terr != nil {
		return fail(terr)
	}
	if ready < size-1 {
		return fail(fmt.Errorf("mpi: rank %d: bootstrap timeout: %d of %d peers connected after %v",
			rank, ready, size-1, opt.Timeout))
	}
	return w, nil
}

// acceptLoop registers inbound data connections. The dialer's first frame is
// a hello naming its rank; the same buffered reader then carries the
// connection's data frames, so nothing read ahead is lost in the handoff.
func (t *wireTransport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed in teardown
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			br := newFrameReader(conn)
			h, _, err := readFrame(br)
			if err != nil || h.kind != frameHello {
				conn.Close()
				return
			}
			pc, err := t.register(int(h.src), conn)
			if err != nil {
				conn.Close()
				t.mu.Lock()
				if t.err == nil {
					t.err = err
				}
				t.mu.Unlock()
				t.cond.Broadcast()
				return
			}
			t.readLoop(pc, br)
		}()
	}
}

// dialPeer opens the data connection to one peer, preferring the unix
// fast path for co-located ranks.
func dialPeer(p helloMsg, opt WireOptions, hostname string, deadline time.Time) (net.Conn, error) {
	network, addr := "tcp", p.TCP
	if opt.Transport == "unix" || (opt.Transport == "auto" && p.Unix != "" && p.Host == hostname) {
		network, addr = "unix", p.Unix
	}
	if addr == "" {
		return nil, fmt.Errorf("no %s address advertised by rank %d on host %s", network, p.Rank, p.Host)
	}
	var lastErr error
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout(network, addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}

// rendezvous exchanges the address table through rank 0: every other rank
// dials the rendezvous socket (retrying while rank 0 comes up), sends its
// hello, and blocks until rank 0 has heard from everyone and replies with
// the full table.
func rendezvous(size, rank int, opt WireOptions, me helloMsg) ([]helloMsg, error) {
	deadline := time.Now().Add(opt.Timeout)
	if rank == 0 {
		ln, err := net.Listen("unix", opt.Rendezvous)
		if err != nil {
			return nil, err
		}
		defer ln.Close()
		peers := make([]helloMsg, size)
		peers[0] = me
		conns := make([]net.Conn, 0, size-1)
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for n := 1; n < size; n++ {
			if d := time.Until(deadline); d > 0 {
				if tl, ok := ln.(*net.UnixListener); ok {
					tl.SetDeadline(time.Now().Add(d))
				}
			} else {
				return nil, fmt.Errorf("timed out waiting for %d more ranks", size-n)
			}
			conn, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("accept (have %d of %d ranks): %w", n-1, size-1, err)
			}
			var h helloMsg
			if err := json.NewDecoder(conn).Decode(&h); err != nil {
				return nil, fmt.Errorf("bad hello: %w", err)
			}
			if h.Rank <= 0 || h.Rank >= size || peers[h.Rank].Host != "" {
				return nil, fmt.Errorf("bad or duplicate hello for rank %d", h.Rank)
			}
			peers[h.Rank] = h
			conns = append(conns, conn)
		}
		for _, c := range conns {
			if err := json.NewEncoder(c).Encode(peers); err != nil {
				return nil, fmt.Errorf("table reply: %w", err)
			}
		}
		return peers, nil
	}

	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("unix", opt.Rendezvous, time.Until(deadline))
		if err == nil {
			break
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("dial rendezvous %s: %w", opt.Rendezvous, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if err := json.NewEncoder(conn).Encode(me); err != nil {
		return nil, fmt.Errorf("send hello: %w", err)
	}
	var peers []helloMsg
	if err := json.NewDecoder(conn).Decode(&peers); err != nil {
		return nil, fmt.Errorf("read table: %w", err)
	}
	if len(peers) != size {
		return nil, fmt.Errorf("table has %d entries, want %d", len(peers), size)
	}
	return peers, nil
}

// Environment contract between a multi-process launcher and the rank
// processes it spawns. The launcher (core.SuperviseProcs, haccmux) exports
// these for each child; a child detects wire mode with WireChild and joins
// the world with ConnectEnv.
const (
	EnvRank       = "HACC_WIRE_RANK"
	EnvSize       = "HACC_WIRE_SIZE"
	EnvRendezvous = "HACC_WIRE_RENDEZVOUS"
	EnvTransport  = "HACC_WIRE_TRANSPORT"
)

// WireChild reports whether this process was spawned as one rank of a
// multi-process wire world (the launcher env contract is present).
func WireChild() bool { return os.Getenv(EnvRank) != "" }

// ConnectEnv joins the wire world described by the launcher environment
// (EnvRank, EnvSize, EnvRendezvous, EnvTransport) and returns this process's
// single-rank World. Callers must Close it when done.
func ConnectEnv() (*World, error) {
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return nil, fmt.Errorf("mpi: bad %s=%q: %w", EnvRank, os.Getenv(EnvRank), err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return nil, fmt.Errorf("mpi: bad %s=%q: %w", EnvSize, os.Getenv(EnvSize), err)
	}
	rdv := os.Getenv(EnvRendezvous)
	if rdv == "" {
		return nil, fmt.Errorf("mpi: %s not set", EnvRendezvous)
	}
	return Connect(size, rank, WireOptions{
		Transport:  os.Getenv(EnvTransport),
		Rendezvous: rdv,
	})
}

// RunWire runs fn on p ranks connected through the wire transport inside one
// process: each rank gets its own World backed by real sockets, exercising
// the full framing, bootstrap, and teardown path without spawning OS
// processes. It is the loopback harness behind the transport-conformance
// suite; `haccsim -par` runs the same code with one Connect per process.
func RunWire(p int, opt WireOptions, fn func(c *Comm)) error {
	if opt.Rendezvous == "" {
		dir, err := os.MkdirTemp("", "hacc-wire")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opt.Rendezvous = filepath.Join(dir, "rdv.sock")
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w, err := Connect(p, rank, opt)
			if err != nil {
				errs[rank] = fmt.Errorf("mpi: rank %d: %w", rank, err)
				return
			}
			defer w.Close()
			errs[rank] = w.Run(fn)
		}(r)
	}
	wg.Wait()
	// Prefer the root cause: a rank that failed on its own over the
	// *AbortError its peers observed while it went down.
	var abortErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var ae *AbortError
		if errors.As(err, &ae) {
			if abortErr == nil {
				abortErr = err
			}
			continue
		}
		return err
	}
	return abortErr
}
