package timestep

import (
	"math"
	"testing"
	"testing/quick"

	"hacc/internal/cosmology"
)

func TestOpsStructure(t *testing.T) {
	p := cosmology.EdS()
	for _, nc := range []int{1, 3, 5} {
		ops := Ops(p, 0.5, 0.6, nc)
		if len(ops) != 2+3*nc {
			t.Fatalf("nc=%d: %d ops", nc, len(ops))
		}
		if ops[0].Kind != KickLong || ops[len(ops)-1].Kind != KickLong {
			t.Error("sequence must start and end with long-range kicks")
		}
		for j := 0; j < nc; j++ {
			base := 1 + 3*j
			if ops[base].Kind != Stream || ops[base+1].Kind != KickShort || ops[base+2].Kind != Stream {
				t.Fatalf("sub-cycle %d is not SKS: %v %v %v",
					j, ops[base].Kind, ops[base+1].Kind, ops[base+2].Kind)
			}
		}
	}
}

func TestOpsWeightsSumExactly(t *testing.T) {
	// Σ stream weights = DriftFactor(a0,a1); Σ kick weights (long+short
	// each) = KickFactor(a0,a1): both force components accumulate exactly
	// the full interval.
	p := cosmology.Default()
	a0, a1 := 0.3, 0.35
	for _, nc := range []int{1, 2, 5, 8} {
		ops := Ops(p, a0, a1, nc)
		var stream, kickL, kickS float64
		for _, op := range ops {
			switch op.Kind {
			case Stream:
				stream += op.W
			case KickLong:
				kickL += op.W
			case KickShort:
				kickS += op.W
			}
		}
		wantD := p.DriftFactor(a0, a1)
		wantK := p.KickFactor(a0, a1)
		if math.Abs(stream-wantD) > 1e-12*wantD {
			t.Errorf("nc=%d: stream total %g want %g", nc, stream, wantD)
		}
		if math.Abs(kickL-wantK) > 1e-9*wantK {
			t.Errorf("nc=%d: long kick total %g want %g", nc, kickL, wantK)
		}
		if math.Abs(kickS-wantK) > 1e-9*wantK {
			t.Errorf("nc=%d: short kick total %g want %g", nc, kickS, wantK)
		}
	}
}

func TestOpsTimeSymmetric(t *testing.T) {
	// The SKS sequence must be palindromic in kind and weight.
	p := cosmology.Default()
	ops := Ops(p, 0.4, 0.5, 4)
	n := len(ops)
	for i := 0; i < n/2; i++ {
		a, b := ops[i], ops[n-1-i]
		if a.Kind != b.Kind {
			t.Fatalf("op %d kind %v != mirrored %v", i, a.Kind, b.Kind)
		}
		// Weights mirror only approximately for kicks (the integrand is not
		// symmetric in a), but stream halves within a sub-cycle and the two
		// long kicks are exactly equal.
		if a.Kind == KickLong && a.W != b.W {
			t.Fatalf("long kick halves differ: %g %g", a.W, b.W)
		}
	}
}

func TestOpsPositiveWeightsProperty(t *testing.T) {
	p := cosmology.Default()
	f := func(x float64, ncRaw uint8) bool {
		a0 := 0.05 + math.Mod(math.Abs(x), 0.9)
		a1 := a0 + 0.05
		nc := 1 + int(ncRaw%9)
		for _, op := range Ops(p, a0, a1, nc) {
			if op.W <= 0 || math.IsNaN(op.W) {
				return false
			}
			if op.A < a0-1e-12 || op.A > a1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{AInit: 0.04, AFinal: 1, Steps: 10, SubCycles: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Schedule{
		{AInit: 0, AFinal: 1, Steps: 5, SubCycles: 2},
		{AInit: 0.5, AFinal: 0.4, Steps: 5, SubCycles: 2},
		{AInit: 0.1, AFinal: 1, Steps: 0, SubCycles: 2},
		{AInit: 0.1, AFinal: 1, Steps: 5, SubCycles: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("accepted invalid schedule %+v", bad)
		}
	}
}

func TestStepBoundsCoverRange(t *testing.T) {
	s := Schedule{AInit: 0.1, AFinal: 1, Steps: 7, SubCycles: 3}
	prev := s.AInit
	for i := 0; i < s.Steps; i++ {
		a0, a1 := s.StepBounds(i)
		if math.Abs(a0-prev) > 1e-12 {
			t.Fatalf("step %d: gap %g vs %g", i, a0, prev)
		}
		prev = a1
	}
	if math.Abs(prev-s.AFinal) > 1e-12 {
		t.Fatalf("steps end at %g, want %g", prev, s.AFinal)
	}
}
