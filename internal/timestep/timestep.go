package timestep

import (
	"fmt"

	"hacc/internal/cosmology"
)

// Kind labels an operator in the splitting sequence.
type Kind int

// Operator kinds, in the order they appear inside one full step.
const (
	KickLong Kind = iota
	KickShort
	Stream
)

func (k Kind) String() string {
	switch k {
	case KickLong:
		return "KickLong"
	case KickShort:
		return "KickShort"
	default:
		return "Stream"
	}
}

// Op is one operator application: p += W·F (kicks) or x += W·p (streams).
// A is the nominal scale factor of the op, for diagnostics.
type Op struct {
	Kind Kind
	W    float64
	A    float64
}

// Ops expands one full step [a0,a1] with nc sub-cycles into the SKS
// operator sequence.
func Ops(p cosmology.Params, a0, a1 float64, nc int) []Op {
	if nc < 1 {
		nc = 1
	}
	if a1 <= a0 {
		panic(fmt.Sprintf("timestep: a1 %g <= a0 %g", a1, a0))
	}
	ops := make([]Op, 0, 2+3*nc)
	kTot := p.KickFactor(a0, a1)
	ops = append(ops, Op{Kind: KickLong, W: kTot / 2, A: a0})
	for j := 0; j < nc; j++ {
		sa := a0 + (a1-a0)*float64(j)/float64(nc)
		sb := a0 + (a1-a0)*float64(j+1)/float64(nc)
		sm := (sa + sb) / 2
		dFirst := p.DriftFactor(sa, sm)
		dSecond := p.DriftFactor(sm, sb)
		ops = append(ops,
			Op{Kind: Stream, W: dFirst, A: sa},
			Op{Kind: KickShort, W: p.KickFactor(sa, sb), A: sm},
			Op{Kind: Stream, W: dSecond, A: sm},
		)
	}
	ops = append(ops, Op{Kind: KickLong, W: kTot / 2, A: a1})
	return ops
}

// Schedule divides [AInit, AFinal] into Steps full steps, uniform in the
// scale factor, each with SubCycles short-range sub-cycles.
type Schedule struct {
	AInit, AFinal float64
	Steps         int
	SubCycles     int
}

// Validate reports configuration errors.
func (s Schedule) Validate() error {
	if !(s.AInit > 0 && s.AInit < s.AFinal && s.AFinal <= 1.5) {
		return fmt.Errorf("timestep: bad scale factor range [%g,%g]", s.AInit, s.AFinal)
	}
	if s.Steps < 1 {
		return fmt.Errorf("timestep: need ≥1 step, got %d", s.Steps)
	}
	if s.SubCycles < 1 {
		return fmt.Errorf("timestep: need ≥1 sub-cycle, got %d", s.SubCycles)
	}
	return nil
}

// StepBounds returns the scale-factor interval of full step i.
func (s Schedule) StepBounds(i int) (float64, float64) {
	return s.AAt(i), s.AAt(i + 1)
}

// AAt returns the scale factor at the boundary after i completed full
// steps: AAt(0) is AInit, AAt(Steps) is AFinal up to rounding. The
// expression is the same float64 arithmetic as StepBounds, so the scale
// factor a checkpoint records at step i can be cross-checked bitwise on
// restore — a mismatch means the checkpoint and the configured schedule
// disagree about where in the integration the run stopped.
func (s Schedule) AAt(i int) float64 {
	da := (s.AFinal - s.AInit) / float64(s.Steps)
	return s.AInit + float64(i)*da
}
