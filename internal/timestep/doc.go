// Package timestep implements HACC's 2nd-order split-operator symplectic
// time stepper (paper §II, eq. 6):
//
//	M_full(Δ) = M_lr(Δ/2) · (M_sr(Δ/nc))^nc · M_lr(Δ/2)
//
// The long/medium-range force is frozen during nc short-range sub-cycles;
// each sub-cycle is the symmetric SKS map Stream(δ/2)·Kick_sr(δ)·Stream(δ/2).
// In the code units of DESIGN.md the equations of motion are
//
//	dx/da = p/(a³E(a)),   dp/da = −∇ψ/(a²E(a)),
//
// so kicks are weighted by ∫da/(a²E) and streams by ∫da/(a³E) over their
// sub-intervals, which keeps the composition exactly second order in the
// mapped times. Seed-era package; purely computational, no plans.
package timestep
