package shortrange

import (
	"math/rand"
	"testing"
)

// benchPoly is a fixed coefficient set with the magnitudes FitGridForce
// produces for the default σ=0.8 filter (hardcoded so the bench-smoke CI
// step does not pay for a grid-force fit).
var benchPoly = [6]float64{0.2695, -0.0520, 0.0101, -1.25e-3, 8.6e-5, -2.45e-6}

// benchKernelSetup builds a synthetic leaf-vs-27-cell problem in the shape
// the walks produce: nt targets against 27 cells of `cell` neighbors laid
// out contiguously in one SoA array, addressed either as a pre-gathered
// copy (the old path) or as 9 coalesced (start,end) spans (the new path —
// the chaining mesh's z-contiguous CSR layout folds each (dx,dy) column of
// three cells into one span).
func benchKernelSetup(nt, cell int) (k *Kernel, lx, ly, lz, px, py, pz []float32, ranges [][2]int32) {
	k = NewKernel(benchPoly, 3.0, 0.01, 0.1)
	rng := rand.New(rand.NewSource(42))
	mk := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = rng.Float32() * 9
		}
		return v
	}
	lx, ly, lz = mk(nt), mk(nt), mk(nt)
	nn := 27 * cell
	px, py, pz = mk(nn), mk(nn), mk(nn)
	for c := 0; c < 9; c++ {
		ranges = append(ranges, [2]int32{int32(3 * c * cell), int32(3 * (c + 1) * cell)})
	}
	return
}

// BenchmarkKernelInteraction is the ns/interaction micro-benchmark for the
// short-range force kernel (DESIGN.md bench index). Sub-benchmarks:
//
//	scalar-copy:  the pre-PR 7 leaf evaluation — gather all 27 cells into
//	              contiguous scratch with append copies, then the 2-way
//	              unrolled scalar kernel (the equivalence oracle).
//	scalar:       the scalar kernel alone on a pre-gathered list (isolates
//	              the gather cost from the kernel cost).
//	tiled-go:     the portable tiled range kernel (what non-amd64 and
//	              `hacc_noasm` builds run).
//	tiled-ranges: the production dispatch — ApplyRanges over coalesced
//	              spans, copy-free (SSE2 4-lane kernel on amd64).
func BenchmarkKernelInteraction(b *testing.B) {
	const nt, cell = 64, 64
	k, lx, ly, lz, px, py, pz, ranges := benchKernelSetup(nt, cell)
	nn := len(px)
	ax := make([]float32, nt)
	ay := make([]float32, nt)
	az := make([]float32, nt)
	perIter := float64(nt) * float64(nn)

	b.Run("scalar-copy", func(b *testing.B) {
		var nx, ny, nz []float32
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nx, ny, nz = nx[:0], ny[:0], nz[:0]
			for _, r := range ranges {
				nx = append(nx, px[r[0]:r[1]]...)
				ny = append(ny, py[r[0]:r[1]]...)
				nz = append(nz, pz[r[0]:r[1]]...)
			}
			k.Apply(lx, ly, lz, nx, ny, nz, ax, ay, az)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*perIter), "ns/interaction")
	})
	b.Run("scalar", func(b *testing.B) {
		nx := append([]float32(nil), px...)
		ny := append([]float32(nil), py...)
		nz := append([]float32(nil), pz...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Apply(lx, ly, lz, nx, ny, nz, ax, ay, az)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*perIter), "ns/interaction")
	})
	b.Run("tiled-go", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			applyRangesTiled(k, lx, ly, lz, px, py, pz, ranges, ax, ay, az)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*perIter), "ns/interaction")
	})
	b.Run("tiled-ranges", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.ApplyRanges(lx, ly, lz, px, py, pz, ranges, ax, ay, az)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*perIter), "ns/interaction")
	})
}
