//go:build !hacc_noasm

package shortrange

import (
	"math"
	"math/rand"
	"testing"
)

// TestFsrSpanSSEBitExact pins the assembly kernel's contract: every per-pair
// term is bit-identical to the scalar FSR helpers, and the only freedom is
// the documented per-span reduction (l0+l2)+(l1+l3) over lane partials with
// lane L accumulating neighbors j≡L (mod 4). The expected value below is
// built scalar-side with exactly that association, so any per-lane drift in
// the assembly (FMA contraction, a different rsqrt estimate, reordered
// Newton steps) fails bitwise.
func TestFsrSpanSSEBitExact(t *testing.T) {
	poly := [6]float64{0.2695, -0.0520, 0.0101, -1.25e-3, 8.6e-5, -2.45e-6}
	k := NewKernel(poly, 3.0, 0.01, 0.1)
	rng := rand.New(rand.NewSource(1234))
	for _, n := range []int{4, 8, 64, 252} {
		nx := make([]float32, n)
		ny := make([]float32, n)
		nz := make([]float32, n)
		for j := range nx {
			nx[j] = rng.Float32() * 9
			ny[j] = rng.Float32() * 9
			nz[j] = rng.Float32() * 9
		}
		xi, yi, zi := rng.Float32()*9, rng.Float32()*9, rng.Float32()*9

		var lane [4][3]float32
		for j := 0; j < n; j++ {
			dx := nx[j] - xi
			dy := ny[j] - yi
			dz := nz[j] - zi
			s := dx*dx + dy*dy + dz*dz
			f := k.FSR(s)
			l := j % 4
			lane[l][0] += dx * f
			lane[l][1] += dy * f
			lane[l][2] += dz * f
		}
		var want [3]float32
		for c := 0; c < 3; c++ {
			want[c] = (lane[0][c] + lane[2][c]) + (lane[1][c] + lane[3][c])
		}

		sx, sy, sz := fsrSpanSSE(xi, yi, zi, &nx[0], &ny[0], &nz[0], int64(n), k.kc)
		got := [3]float32{sx, sy, sz}
		for c := 0; c < 3; c++ {
			if math.Float32bits(got[c]) != math.Float32bits(want[c]) {
				t.Fatalf("n=%d comp %d: asm %v (bits %08x), scalar lane model %v (bits %08x)",
					n, c, got[c], math.Float32bits(got[c]), want[c], math.Float32bits(want[c]))
			}
		}
	}
}
