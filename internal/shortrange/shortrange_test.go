package shortrange

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hacc/internal/tree"
)

func TestRsqrtAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := float32(math.Exp(rng.Float64()*20 - 10)) // 4.5e-5 .. 2.2e4
		got := float64(rsqrt(x))
		want := 1 / math.Sqrt(float64(x))
		if math.Abs(got-want) > 2e-6*want {
			t.Fatalf("rsqrt(%g)=%g want %g", x, got, want)
		}
	}
}

func TestFSRCutoffAndLimits(t *testing.T) {
	poly := [6]float64{0.1, 0.01, 0, 0, 0, 0}
	k := NewKernel(poly, 3.0, 1e-6, 1)
	if f := k.FSR(9.0); f != 0 {
		t.Errorf("FSR at cutoff: %g", f)
	}
	if f := k.FSR(10); f != 0 {
		t.Errorf("FSR beyond cutoff: %g", f)
	}
	// Near zero separation: dominated by (s+ε)^{-3/2}.
	got := float64(k.FSR(1e-6))
	want := 1/math.Pow(2e-6, 1.5) - 0.1
	if math.Abs(got-want) > 1e-2*want {
		t.Errorf("FSR(0+)=%g want %g", got, want)
	}
}

func TestApplyMatchesScalarFSR(t *testing.T) {
	// The unrolled batch kernel must agree with the scalar reference.
	rng := rand.New(rand.NewSource(2))
	res, err := FitGridForce(FitOptions{GridN: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(res.Poly, res.RCut, 1e-4, 0.25)
	for trial := 0; trial < 20; trial++ {
		nl := 1 + rng.Intn(7)
		nn := rng.Intn(33)
		lx := make([]float32, nl)
		ly := make([]float32, nl)
		lz := make([]float32, nl)
		nx := make([]float32, nn)
		nyv := make([]float32, nn)
		nz := make([]float32, nn)
		for i := range lx {
			lx[i] = rng.Float32() * 8
			ly[i] = rng.Float32() * 8
			lz[i] = rng.Float32() * 8
		}
		for j := range nx {
			nx[j] = rng.Float32() * 8
			nyv[j] = rng.Float32() * 8
			nz[j] = rng.Float32() * 8
		}
		ax := make([]float32, nl)
		ay := make([]float32, nl)
		az := make([]float32, nl)
		n := k.Apply(lx, ly, lz, nx, nyv, nz, ax, ay, az)
		if n != int64(nl)*int64(nn) {
			t.Fatalf("interaction count %d want %d", n, nl*nn)
		}
		for i := 0; i < nl; i++ {
			var sx, sy, sz float64
			for j := 0; j < nn; j++ {
				dx := nx[j] - lx[i]
				dy := nyv[j] - ly[i]
				dz := nz[j] - lz[i]
				s := dx*dx + dy*dy + dz*dz
				f := float64(k.FSR(s))
				sx += float64(dx) * f
				sy += float64(dy) * f
				sz += float64(dz) * f
			}
			var scale float64 = 1e-5 * (math.Abs(sx) + math.Abs(sy) + math.Abs(sz) + 1)
			if math.Abs(float64(ax[i])-k.GM*sx) > scale ||
				math.Abs(float64(ay[i])-k.GM*sy) > scale ||
				math.Abs(float64(az[i])-k.GM*sz) > scale {
				t.Fatalf("trial %d particle %d: batch (%g,%g,%g) scalar (%g,%g,%g)",
					trial, i, ax[i], ay[i], az[i], k.GM*sx, k.GM*sy, k.GM*sz)
			}
		}
	}
}

func TestFitGridForceQuality(t *testing.T) {
	res, err := FitGridForce(FitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("poly5 = %v, rms residual (Newton-relative) = %.4f", res.Poly, res.RMSErr)
	if res.RMSErr > 0.05 {
		t.Errorf("grid-force fit residual %g too large", res.RMSErr)
	}
	// At the matching radius the grid force equals the Newtonian force, so
	// f_SR(rcut²) ≈ 0: poly(rcut²) ≈ (rcut²)^{-3/2}.
	s := res.RCut * res.RCut
	poly := res.Poly[0] + s*(res.Poly[1]+s*(res.Poly[2]+s*(res.Poly[3]+s*(res.Poly[4]+s*res.Poly[5]))))
	newton := math.Pow(s, -1.5)
	if math.Abs(poly-newton) > 0.08*newton {
		t.Errorf("poly(rcut²)=%g, Newton=%g: mismatch at handoff", poly, newton)
	}
	// Near s→0 the grid force is linear in r, so f_grid(0) is a positive
	// constant of order the inverse filter volume (~0.25 for σ=0.8).
	if res.Poly[0] < 0.05 || res.Poly[0] > 0.6 {
		t.Errorf("poly(0)=%g outside the physical range for σ=0.8", res.Poly[0])
	}
}

func TestTotalPairForceIsNewtonian(t *testing.T) {
	// THE force-matching test: PM + short-range = 1/r² across the handoff.
	// A unit source on a 48³ periodic grid; probes from r=0.3 to r=6.
	const n = 48
	res, err := FitGridForce(FitOptions{GridN: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(res.Poly, res.RCut, 1e-7, 1) // gm=1: unit-normalized pair
	pm := newSerialPM(n, 0, 0)
	pm.sigma, pm.ns = 0.8, 3
	rng := rand.New(rand.NewSource(8))
	src := [3]float64{24.3, 23.8, 24.1}
	pm.solve(src)
	var worst float64
	for _, r := range []float64{0.3, 0.5, 0.8, 1.2, 1.7, 2.3, 2.9, 3.5, 4.5, 6.0} {
		// Average the radial force over several directions (individual
		// directions carry the residual anisotropy noise).
		var radial float64
		const nd = 16
		for d := 0; d < nd; d++ {
			dir := randDir(rng)
			px := src[0] + r*dir[0]
			py := src[1] + r*dir[1]
			pz := src[2] + r*dir[2]
			a := pm.accelAt(px, py, pz)
			pmPart := -(a[0]*dir[0] + a[1]*dir[1] + a[2]*dir[2])
			srPart := float64(k.FSR(float32(r*r))) * r
			radial += pmPart + srPart
		}
		radial /= nd
		want := 1 / (r * r)
		rel := math.Abs(radial-want) / want
		if rel > worst {
			worst = rel
		}
		if rel > 0.025 {
			t.Errorf("r=%.1f: total force %g want %g (err %.2f%%)", r, radial, want, 100*rel)
		}
	}
	t.Logf("worst relative force error across handoff: %.3f%%", 100*worst)
}

func TestChainingMeshBinning(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32() * 20
		y[i] = rng.Float32() * 20
		z[i] = rng.Float32() * 20
	}
	m := BuildMesh(x, y, z, 3.0)
	// orig is a permutation; each particle is in the right cell range.
	seen := make([]bool, n)
	for p, o := range m.orig {
		if seen[o] {
			t.Fatalf("duplicate orig %d", o)
		}
		seen[o] = true
		if m.X[p] != x[o] {
			t.Fatalf("slot %d mismatched", p)
		}
	}
	ncell := m.dims[0] * m.dims[1] * m.dims[2]
	if int(m.starts[ncell]) != n {
		t.Fatalf("CSR total %d want %d", m.starts[ncell], n)
	}
	for c := 0; c < ncell; c++ {
		for p := m.starts[c]; p < m.starts[c+1]; p++ {
			if m.cellIndex(m.X[p], m.Y[p], m.Z[p]) != int32(c) {
				t.Fatalf("particle %d binned to wrong cell", p)
			}
		}
	}
}

func TestP3MMatchesTree(t *testing.T) {
	// The paper's two short-range backends agree (§II: P3M vs PPTreePM to
	// 0.1% on statistics; here per-particle forces on identical inputs).
	rng := rand.New(rand.NewSource(6))
	res, err := FitGridForce(FitOptions{GridN: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(res.Poly, res.RCut, 1e-5, 0.1)
	n := 600
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32() * 15
		y[i] = rng.Float32() * 15
		z[i] = rng.Float32() * 15
	}
	tr := tree.Build(x, y, z, 32)
	tr.ComputeForces(k.Apply, k.RCut, 2)
	tax := make([]float32, n)
	tay := make([]float32, n)
	taz := make([]float32, n)
	tr.AccelInto(tax, tay, taz)

	m := BuildMesh(x, y, z, k.RCut)
	m.ComputeForces(k.Apply, 2)
	pax := make([]float32, n)
	pay := make([]float32, n)
	paz := make([]float32, n)
	m.AccelInto(pax, pay, paz)

	var scale float64
	for i := range tax {
		scale = math.Max(scale, math.Abs(float64(tax[i])))
	}
	for i := 0; i < n; i++ {
		if math.Abs(float64(tax[i]-pax[i])) > 1e-4*scale ||
			math.Abs(float64(tay[i]-pay[i])) > 1e-4*scale ||
			math.Abs(float64(taz[i]-paz[i])) > 1e-4*scale {
			t.Fatalf("particle %d: tree (%g,%g,%g) p3m (%g,%g,%g)",
				i, tax[i], tay[i], taz[i], pax[i], pay[i], paz[i])
		}
	}
}

func TestKernelMomentumConservationProperty(t *testing.T) {
	// Pairwise antisymmetry: total short-range momentum change is zero.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res, err := FitGridForce(FitOptions{GridN: 32, Seed: 5})
		if err != nil {
			return false
		}
		k := NewKernel(res.Poly, res.RCut, 1e-5, 1)
		n := 20 + rng.Intn(50)
		x := make([]float32, n)
		y := make([]float32, n)
		z := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32() * 8
			y[i] = rng.Float32() * 8
			z[i] = rng.Float32() * 8
		}
		tr := tree.Build(x, y, z, 16)
		tr.ComputeForces(k.Apply, k.RCut, 1)
		ax := make([]float32, n)
		ay := make([]float32, n)
		az := make([]float32, n)
		tr.AccelInto(ax, ay, az)
		var sx, sy, sz, mag float64
		for i := range ax {
			sx += float64(ax[i])
			sy += float64(ay[i])
			sz += float64(az[i])
			mag += math.Abs(float64(ax[i]))
		}
		tol := 1e-4 * (mag + 1e-12)
		return math.Abs(sx) < tol && math.Abs(sy) < tol && math.Abs(sz) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
