package shortrange

import (
	"math"
	"sync"
	"sync/atomic"

	"hacc/internal/par"
)

// ChainingMesh is the direct particle-particle short-range backend (the
// P3M local solver HACC runs on accelerated systems like Roadrunner, §II).
// Particles are binned into cells of side ≥ r_cut; each cell's particles
// share one interaction list gathered from the 27 surrounding cells — the
// "no mediating tree" configuration with large Nd.
type ChainingMesh struct {
	X, Y, Z    []float32 // cell-sorted working copy
	AX, AY, AZ []float32
	orig       []int32
	dims       [3]int
	lo         [3]float32
	inv        float32 // 1/cellSize
	starts     []int32 // CSR cell offsets, len = ncells+1

	cellSize float64
	// Binning scratch, reused across rebuilds (zero-allocation sub-cycling).
	cellOf []int32
	cursor []int32
	// Per-worker gather scratch and the shared cell cursor, persistent
	// across force evaluations.
	walk []gatherScratch
	next atomic.Int64

	// Interactions counts pair evaluations (bench harness). Reset by
	// Rebuild: it counts work since the last (re)build.
	Interactions atomic.Int64
}

// NewMesh returns an empty chaining mesh with the given cell size (use the
// kernel's RCut or slightly larger); call Rebuild to populate it.
func NewMesh(cellSize float64) *ChainingMesh {
	return &ChainingMesh{cellSize: cellSize, inv: float32(1 / cellSize)}
}

// BuildMesh bins the particles into a chaining mesh with the given cell
// size.
func BuildMesh(x, y, z []float32, cellSize float64) *ChainingMesh {
	m := NewMesh(cellSize)
	m.Rebuild(x, y, z)
	return m
}

// Rebuild re-bins new particle coordinates in place, reusing the sorted
// working copy, the CSR offsets, and the binning scratch. Statistics
// counters restart from zero.
func (m *ChainingMesh) Rebuild(x, y, z []float32) {
	n := len(x)
	cellSize := m.cellSize
	m.Interactions.Store(0)
	if n == 0 {
		// One empty cell; starts needs ncell+1 entries so ComputeForces
		// can scan it without a special case.
		m.starts = append(m.starts[:0], 0, 0)
		m.dims = [3]int{1, 1, 1}
		m.X, m.Y, m.Z = m.X[:0], m.Y[:0], m.Z[:0]
		m.AX, m.AY, m.AZ = m.AX[:0], m.AY[:0], m.AZ[:0]
		m.orig = m.orig[:0]
		return
	}
	var hi [3]float32
	m.lo = [3]float32{x[0], y[0], z[0]}
	hi = m.lo
	for i := 0; i < n; i++ {
		m.lo[0] = min32(m.lo[0], x[i])
		m.lo[1] = min32(m.lo[1], y[i])
		m.lo[2] = min32(m.lo[2], z[i])
		hi[0] = max32(hi[0], x[i])
		hi[1] = max32(hi[1], y[i])
		hi[2] = max32(hi[2], z[i])
	}
	for d := 0; d < 3; d++ {
		ext := float64(hi[d]-m.lo[d]) + 1e-4
		m.dims[d] = int(math.Ceil(ext/cellSize)) + 1
		if m.dims[d] < 1 {
			m.dims[d] = 1
		}
	}
	ncell := m.dims[0] * m.dims[1] * m.dims[2]
	counts := par.Resize(m.starts, ncell+1)
	for c := range counts {
		counts[c] = 0
	}
	cellOf := par.Resize(m.cellOf, n)
	for i := 0; i < n; i++ {
		c := m.cellIndex(x[i], y[i], z[i])
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 0; c < ncell; c++ {
		counts[c+1] += counts[c]
	}
	m.starts = counts
	m.cellOf = cellOf
	m.X = par.Resize(m.X, n)
	m.Y = par.Resize(m.Y, n)
	m.Z = par.Resize(m.Z, n)
	m.AX = par.Resize(m.AX, n)
	m.AY = par.Resize(m.AY, n)
	m.AZ = par.Resize(m.AZ, n)
	m.orig = par.Resize(m.orig, n)
	cursor := par.Resize(m.cursor, ncell)
	m.cursor = cursor
	copy(cursor, counts[:ncell])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		p := cursor[c]
		cursor[c]++
		m.X[p], m.Y[p], m.Z[p] = x[i], y[i], z[i]
		m.orig[p] = int32(i)
	}
}

func (m *ChainingMesh) cellIndex(x, y, z float32) int32 {
	cx := clampCell(int((x-m.lo[0])*m.inv), m.dims[0])
	cy := clampCell(int((y-m.lo[1])*m.inv), m.dims[1])
	cz := clampCell(int((z-m.lo[2])*m.inv), m.dims[2])
	return int32((cx*m.dims[1]+cy)*m.dims[2] + cz)
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// gatherScratch is one worker's 27-cell neighbor-list buffers and range
// list, persistent across force evaluations.
type gatherScratch struct {
	nbrX, nbrY, nbrZ []float32
	ranges           [][2]int32
}

func (m *ChainingMesh) ensureWalk(k int) {
	for len(m.walk) < k {
		m.walk = append(m.walk, gatherScratch{})
	}
}

func (m *ChainingMesh) prepForces() {
	for i := range m.AX {
		m.AX[i], m.AY[i], m.AZ[i] = 0, 0, 0
	}
	m.next.Store(0)
}

// cellLoop pulls cells from the shared cursor until none remain, using
// worker w's persistent scratch.
func (m *ChainingMesh) cellLoop(w int, kern func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64) {
	ws := &m.walk[w]
	nbrX, nbrY, nbrZ := ws.nbrX, ws.nbrY, ws.nbrZ
	ncell := m.dims[0] * m.dims[1] * m.dims[2]
	var inter int64
	for {
		c := int(m.next.Add(1) - 1)
		if c >= ncell {
			break
		}
		s, e := m.starts[c], m.starts[c+1]
		if s == e {
			continue
		}
		cz := c % m.dims[2]
		cy := (c / m.dims[2]) % m.dims[1]
		cx := c / (m.dims[1] * m.dims[2])
		nbrX = nbrX[:0]
		nbrY = nbrY[:0]
		nbrZ = nbrZ[:0]
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= m.dims[0] {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				y := cy + dy
				if y < 0 || y >= m.dims[1] {
					continue
				}
				for dz := -1; dz <= 1; dz++ {
					z := cz + dz
					if z < 0 || z >= m.dims[2] {
						continue
					}
					nc := (x*m.dims[1]+y)*m.dims[2] + z
					ns, ne := m.starts[nc], m.starts[nc+1]
					nbrX = append(nbrX, m.X[ns:ne]...)
					nbrY = append(nbrY, m.Y[ns:ne]...)
					nbrZ = append(nbrZ, m.Z[ns:ne]...)
				}
			}
		}
		inter += kern(m.X[s:e], m.Y[s:e], m.Z[s:e],
			nbrX, nbrY, nbrZ,
			m.AX[s:e], m.AY[s:e], m.AZ[s:e])
	}
	ws.nbrX, ws.nbrY, ws.nbrZ = nbrX, nbrY, nbrZ
	m.Interactions.Add(inter)
}

// cellLoopRanges is cellLoop without the gather: because the CSR layout
// orders cells with z fastest, each (dx,dy) column of up to three z-cells
// is one contiguous span of the sorted arrays, so the 27-cell neighbor
// stencil collapses to at most 9 (start,end) spans — emitted in the same
// (dx,dy,dz) order the copy path concatenates cells in, and coalesced
// further when consecutive columns happen to touch in the CSR layout.
func (m *ChainingMesh) cellLoopRanges(w int, kern RangeKernel) {
	ws := &m.walk[w]
	ranges := ws.ranges
	ncell := m.dims[0] * m.dims[1] * m.dims[2]
	var inter int64
	for {
		c := int(m.next.Add(1) - 1)
		if c >= ncell {
			break
		}
		s, e := m.starts[c], m.starts[c+1]
		if s == e {
			continue
		}
		cz := c % m.dims[2]
		cy := (c / m.dims[2]) % m.dims[1]
		cx := c / (m.dims[1] * m.dims[2])
		zlo := cz - 1
		if zlo < 0 {
			zlo = 0
		}
		zhi := cz + 1
		if zhi >= m.dims[2] {
			zhi = m.dims[2] - 1
		}
		ranges = ranges[:0]
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= m.dims[0] {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				y := cy + dy
				if y < 0 || y >= m.dims[1] {
					continue
				}
				base := (x*m.dims[1] + y) * m.dims[2]
				cs, ce := m.starts[base+zlo], m.starts[base+zhi+1]
				if cs == ce {
					continue
				}
				if k := len(ranges); k > 0 && ranges[k-1][1] == cs {
					ranges[k-1][1] = ce
				} else {
					ranges = append(ranges, [2]int32{cs, ce})
				}
			}
		}
		inter += kern(m.X[s:e], m.Y[s:e], m.Z[s:e],
			m.X, m.Y, m.Z, ranges,
			m.AX[s:e], m.AY[s:e], m.AZ[s:e])
	}
	ws.ranges = ranges
	m.Interactions.Add(inter)
}

// ComputeForces evaluates the short-range force cell by cell with `threads`
// goroutines; each cell's particles share the 27-cell interaction list.
func (m *ChainingMesh) ComputeForces(kern func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64, threads int) {
	m.prepForces()
	if threads < 1 {
		threads = 1
	}
	m.ensureWalk(threads)
	if threads == 1 {
		m.cellLoop(0, kern)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m.cellLoop(w, kern)
		}(w)
	}
	wg.Wait()
}

// ComputeForcesPool is ComputeForces dispatched on a persistent worker
// pool: no goroutine spawns, no per-call scratch.
func (m *ChainingMesh) ComputeForcesPool(kern func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64, pool *par.Pool) {
	m.prepForces()
	m.ensureWalk(pool.Workers())
	pool.Run(0, func(w int) { m.cellLoop(w, kern) })
}

// ComputeForcesRanges is ComputeForces on the copy-free range walk (see
// cellLoopRanges). The production force path; the copy path remains as the
// equivalence oracle.
func (m *ChainingMesh) ComputeForcesRanges(kern RangeKernel, threads int) {
	m.prepForces()
	if threads < 1 {
		threads = 1
	}
	m.ensureWalk(threads)
	if threads == 1 {
		m.cellLoopRanges(0, kern)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m.cellLoopRanges(w, kern)
		}(w)
	}
	wg.Wait()
}

// ComputeForcesPoolRanges is ComputeForcesRanges dispatched on a persistent
// worker pool: the zero-allocation sub-cycling configuration.
func (m *ChainingMesh) ComputeForcesPoolRanges(kern RangeKernel, pool *par.Pool) {
	m.prepForces()
	m.ensureWalk(pool.Workers())
	pool.Run(0, func(w int) { m.cellLoopRanges(w, kern) })
}

// AccelInto scatters accelerations back to the caller's particle order.
func (m *ChainingMesh) AccelInto(ax, ay, az []float32) {
	for i, o := range m.orig {
		ax[o] += m.AX[i]
		ay[o] += m.AY[i]
		az[o] += m.AZ[i]
	}
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
