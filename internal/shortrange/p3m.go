package shortrange

import (
	"math"
	"sync"
	"sync/atomic"
)

// ChainingMesh is the direct particle-particle short-range backend (the
// P3M local solver HACC runs on accelerated systems like Roadrunner, §II).
// Particles are binned into cells of side ≥ r_cut; each cell's particles
// share one interaction list gathered from the 27 surrounding cells — the
// "no mediating tree" configuration with large Nd.
type ChainingMesh struct {
	X, Y, Z    []float32 // cell-sorted working copy
	AX, AY, AZ []float32
	orig       []int32
	dims       [3]int
	lo         [3]float32
	inv        float32 // 1/cellSize
	starts     []int32 // CSR cell offsets, len = ncells+1

	// Interactions counts pair evaluations (bench harness).
	Interactions atomic.Int64
}

// BuildMesh bins the particles into a chaining mesh with the given cell
// size (use the kernel's RCut or slightly larger).
func BuildMesh(x, y, z []float32, cellSize float64) *ChainingMesh {
	n := len(x)
	m := &ChainingMesh{inv: float32(1 / cellSize)}
	if n == 0 {
		m.starts = []int32{0}
		m.dims = [3]int{1, 1, 1}
		return m
	}
	var hi [3]float32
	m.lo = [3]float32{x[0], y[0], z[0]}
	hi = m.lo
	for i := 0; i < n; i++ {
		m.lo[0] = min32(m.lo[0], x[i])
		m.lo[1] = min32(m.lo[1], y[i])
		m.lo[2] = min32(m.lo[2], z[i])
		hi[0] = max32(hi[0], x[i])
		hi[1] = max32(hi[1], y[i])
		hi[2] = max32(hi[2], z[i])
	}
	for d := 0; d < 3; d++ {
		ext := float64(hi[d]-m.lo[d]) + 1e-4
		m.dims[d] = int(math.Ceil(ext/cellSize)) + 1
		if m.dims[d] < 1 {
			m.dims[d] = 1
		}
	}
	ncell := m.dims[0] * m.dims[1] * m.dims[2]
	counts := make([]int32, ncell+1)
	cellOf := make([]int32, n)
	for i := 0; i < n; i++ {
		c := m.cellIndex(x[i], y[i], z[i])
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 0; c < ncell; c++ {
		counts[c+1] += counts[c]
	}
	m.starts = counts
	m.X = make([]float32, n)
	m.Y = make([]float32, n)
	m.Z = make([]float32, n)
	m.AX = make([]float32, n)
	m.AY = make([]float32, n)
	m.AZ = make([]float32, n)
	m.orig = make([]int32, n)
	cursor := make([]int32, ncell)
	copy(cursor, counts[:ncell])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		p := cursor[c]
		cursor[c]++
		m.X[p], m.Y[p], m.Z[p] = x[i], y[i], z[i]
		m.orig[p] = int32(i)
	}
	return m
}

func (m *ChainingMesh) cellIndex(x, y, z float32) int32 {
	cx := clampCell(int((x-m.lo[0])*m.inv), m.dims[0])
	cy := clampCell(int((y-m.lo[1])*m.inv), m.dims[1])
	cz := clampCell(int((z-m.lo[2])*m.inv), m.dims[2])
	return int32((cx*m.dims[1]+cy)*m.dims[2] + cz)
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// ComputeForces evaluates the short-range force cell by cell with `threads`
// goroutines; each cell's particles share the 27-cell interaction list.
func (m *ChainingMesh) ComputeForces(kern func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64, threads int) {
	for i := range m.AX {
		m.AX[i], m.AY[i], m.AZ[i] = 0, 0, 0
	}
	ncell := m.dims[0] * m.dims[1] * m.dims[2]
	if threads < 1 {
		threads = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var nbrX, nbrY, nbrZ []float32
			var inter int64
			for {
				c := int(next.Add(1) - 1)
				if c >= ncell {
					break
				}
				s, e := m.starts[c], m.starts[c+1]
				if s == e {
					continue
				}
				cz := c % m.dims[2]
				cy := (c / m.dims[2]) % m.dims[1]
				cx := c / (m.dims[1] * m.dims[2])
				nbrX = nbrX[:0]
				nbrY = nbrY[:0]
				nbrZ = nbrZ[:0]
				for dx := -1; dx <= 1; dx++ {
					x := cx + dx
					if x < 0 || x >= m.dims[0] {
						continue
					}
					for dy := -1; dy <= 1; dy++ {
						y := cy + dy
						if y < 0 || y >= m.dims[1] {
							continue
						}
						for dz := -1; dz <= 1; dz++ {
							z := cz + dz
							if z < 0 || z >= m.dims[2] {
								continue
							}
							nc := (x*m.dims[1]+y)*m.dims[2] + z
							ns, ne := m.starts[nc], m.starts[nc+1]
							nbrX = append(nbrX, m.X[ns:ne]...)
							nbrY = append(nbrY, m.Y[ns:ne]...)
							nbrZ = append(nbrZ, m.Z[ns:ne]...)
						}
					}
				}
				inter += kern(m.X[s:e], m.Y[s:e], m.Z[s:e],
					nbrX, nbrY, nbrZ,
					m.AX[s:e], m.AY[s:e], m.AZ[s:e])
			}
			m.Interactions.Add(inter)
		}()
	}
	wg.Wait()
}

// AccelInto scatters accelerations back to the caller's particle order.
func (m *ChainingMesh) AccelInto(ax, ay, az []float32) {
	for i, o := range m.orig {
		ax[o] += m.AX[i]
		ay[o] += m.AY[i]
		az[o] += m.AZ[i]
	}
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
