// Package shortrange implements HACC's short/close-range force machinery
// (paper §II–III): the polynomial-residual pair kernel
//
//	f_SR(s) = (s+ε)^(−3/2) − poly5(s),   s = r·r,  zero beyond r_cut,
//
// the numeric construction of poly5 by sampling the filtered PM grid force
// of a point source and least-squares fitting (the paper's force-matching
// procedure), and a P3M chaining-mesh evaluator (the Roadrunner-style
// direct particle-particle solver used as the second short-range backend).
// PR 1 made the mesh persistent: Rebuild re-bins in place (retaining CSR
// offsets, accumulators, and per-worker walk scratch) and ComputeForcesPool
// runs the pair kernel over par.Pool with a shared atomic cell cursor.
//
// PR 7 made the kernel copy-free and vector-shaped (the paper's §III BG/Q
// shaping, on x86 terms): production walks call Kernel.ApplyRanges with
// ordered (start,end) spans over the SoA working arrays instead of
// gathering neighbor coordinates (the mesh's z-contiguous CSR layout folds
// the 27-cell stencil into ≤9 spans, see cellLoopRanges), and the inner
// loop dispatches to a 4-lane SSE2 assembly kernel on amd64 (build tag
// hacc_noasm opts out) or a bounds-check-free 4-wide tiled Go loop
// elsewhere. The copy path (Apply) remains as the scalar oracle; see
// DESIGN.md "Short-range kernel" for the equivalence model and measured
// ns/interaction.
package shortrange
