// Package shortrange implements HACC's short/close-range force machinery
// (paper §II–III): the polynomial-residual pair kernel
//
//	f_SR(s) = (s+ε)^(−3/2) − poly5(s),   s = r·r,  zero beyond r_cut,
//
// the numeric construction of poly5 by sampling the filtered PM grid force
// of a point source and least-squares fitting (the paper's force-matching
// procedure), and a P3M chaining-mesh evaluator (the Roadrunner-style
// direct particle-particle solver used as the second short-range backend).
// PR 1 made the mesh persistent: Rebuild re-bins in place (retaining CSR
// offsets, accumulators, and per-worker walk scratch) and ComputeForcesPool
// runs the pair kernel over par.Pool with a shared atomic cell cursor.
package shortrange
