//go:build !amd64 || hacc_noasm

package shortrange

// applyRangesDispatch routes ApplyRanges to the portable tiled Go kernel on
// non-amd64 hosts, or anywhere when the `hacc_noasm` build tag disables the
// assembly variant (kernel_sse_amd64.go) — the escape hatch that also lets
// benchmarks compare the two implementations.
func applyRangesDispatch(k *Kernel, lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64 {
	return applyRangesTiled(k, lx, ly, lz, px, py, pz, ranges, ax, ay, az)
}

// buildKernelConsts is a no-op without the assembly kernel.
func buildKernelConsts(k *Kernel) {}
