package shortrange

import (
	"math"
	"math/rand"
	"testing"
)

// refRangeForces is the float64-accumulation reference for the range
// kernels: per-pair terms are computed in float32 through the same FSR
// helpers every production path inlines (so terms are bit-identical across
// implementations), and only the accumulation is exact. Any production
// kernel — scalar, tiled, SSE — differs from this reference only by
// float32 summation reassociation. Returns the forces and, per target, the
// sum of |term| magnitudes that scales the admissible error.
func refRangeForces(k *Kernel, lx, ly, lz, px, py, pz []float32, ranges [][2]int32) (ax, ay, az, mag []float64) {
	nt := len(lx)
	ax = make([]float64, nt)
	ay = make([]float64, nt)
	az = make([]float64, nt)
	mag = make([]float64, nt)
	for i := 0; i < nt; i++ {
		var sx, sy, sz, m float64
		for _, r := range ranges {
			for j := r[0]; j < r[1]; j++ {
				dx := px[j] - lx[i]
				dy := py[j] - ly[i]
				dz := pz[j] - lz[i]
				s := dx*dx + dy*dy + dz*dz
				f := k.FSR(s)
				sx += float64(dx) * float64(f)
				sy += float64(dy) * float64(f)
				sz += float64(dz) * float64(f)
				m += math.Abs(float64(dx)*float64(f)) + math.Abs(float64(dy)*float64(f)) + math.Abs(float64(dz)*float64(f))
			}
		}
		ax[i] = float64(k.gm) * sx
		ay[i] = float64(k.gm) * sy
		az[i] = float64(k.gm) * sz
		mag[i] = float64(k.gm) * m
	}
	return
}

// TestApplyRangesULPBound pins the documented-ULP equivalence model of
// ApplyRanges (and Apply, its scalar oracle): per-pair float32 terms are
// identical across paths, so each path's deviation from the float64
// reference is bounded by the float32 summation error n·eps32·Σ|term|,
// whatever order the lanes and tiles accumulate in.
func TestApplyRangesULPBound(t *testing.T) {
	const nt, cell = 37, 19 // deliberately not multiples of the tile/lane width
	k, lx, ly, lz, px, py, pz, ranges := benchKernelSetup(nt, cell)
	var n int64
	for _, r := range ranges {
		n += int64(r[1] - r[0])
	}
	refX, refY, refZ, mag := refRangeForces(k, lx, ly, lz, px, py, pz, ranges)

	check := func(name string, ax, ay, az []float32) {
		t.Helper()
		const eps32 = 1.2e-7
		for i := range ax {
			tol := float64(n)*eps32*mag[i] + 1e-12
			for c, got := range [3]float64{float64(ax[i]), float64(ay[i]), float64(az[i])} {
				ref := [3]float64{refX[i], refY[i], refZ[i]}[c]
				if math.Abs(got-ref) > tol {
					t.Fatalf("%s: target %d comp %d: got %g ref %g (|Δ|=%g > tol %g)",
						name, i, c, got, ref, math.Abs(got-ref), tol)
				}
			}
		}
	}

	ax := make([]float32, nt)
	ay := make([]float32, nt)
	az := make([]float32, nt)
	if got := k.ApplyRanges(lx, ly, lz, px, py, pz, ranges, ax, ay, az); got != int64(nt)*n {
		t.Fatalf("ApplyRanges interaction count = %d, want %d", got, int64(nt)*n)
	}
	check("ApplyRanges(dispatch)", ax, ay, az)

	for i := range ax {
		ax[i], ay[i], az[i] = 0, 0, 0
	}
	applyRangesTiled(k, lx, ly, lz, px, py, pz, ranges, ax, ay, az)
	check("applyRangesTiled", ax, ay, az)

	// The copy-path oracle obeys the same bound: gather the spans and Apply.
	var nx, ny, nz []float32
	for _, r := range ranges {
		nx = append(nx, px[r[0]:r[1]]...)
		ny = append(ny, py[r[0]:r[1]]...)
		nz = append(nz, pz[r[0]:r[1]]...)
	}
	for i := range ax {
		ax[i], ay[i], az[i] = 0, 0, 0
	}
	k.Apply(lx, ly, lz, nx, ny, nz, ax, ay, az)
	check("Apply(copy oracle)", ax, ay, az)
}

// TestTiledSplitInvariance: the portable tiled kernel accumulates each
// target sequentially across spans in order, so splitting a span at any
// point is bitwise invisible — the protocol that lets walks coalesce
// adjacent leaves and mesh columns freely. (The SSE kernel reduces 4 lanes
// per span, so its span structure shifts results within the documented ULP
// bound; it is exercised through TestApplyRangesULPBound above.)
func TestTiledSplitInvariance(t *testing.T) {
	const nt, cell = 9, 21
	k, lx, ly, lz, px, py, pz, ranges := benchKernelSetup(nt, cell)
	ax0 := make([]float32, nt)
	ay0 := make([]float32, nt)
	az0 := make([]float32, nt)
	applyRangesTiled(k, lx, ly, lz, px, py, pz, ranges, ax0, ay0, az0)

	// Re-split every span at an arbitrary interior point (and keep order).
	var split [][2]int32
	for _, r := range ranges {
		mid := r[0] + (r[1]-r[0])/3
		split = append(split, [2]int32{r[0], mid}, [2]int32{mid, r[1]})
	}
	ax1 := make([]float32, nt)
	ay1 := make([]float32, nt)
	az1 := make([]float32, nt)
	applyRangesTiled(k, lx, ly, lz, px, py, pz, split, ax1, ay1, az1)
	for i := 0; i < nt; i++ {
		if math.Float32bits(ax0[i]) != math.Float32bits(ax1[i]) ||
			math.Float32bits(ay0[i]) != math.Float32bits(ay1[i]) ||
			math.Float32bits(az0[i]) != math.Float32bits(az1[i]) {
			t.Fatalf("target %d: split spans changed tiled result: (%v %v %v) vs (%v %v %v)",
				i, ax0[i], ay0[i], az0[i], ax1[i], ay1[i], az1[i])
		}
	}
}

// TestKernelEdgeCases covers the kernel boundary behavior the walks rely on.
func TestKernelEdgeCases(t *testing.T) {
	poly := [6]float64{0.25, -0.05, 0.01, -1e-3, 8e-5, -2e-6}

	t.Run("at-cutoff", func(t *testing.T) {
		// rcut=2 makes rc2=4 exactly representable; a neighbor at distance
		// exactly 2 has s == rc2 and must contribute exactly zero (the mask
		// is s < rc2, matching the seed's s >= rc2 branch).
		k := NewKernel(poly, 2.0, 0.01, 1.0)
		if f := k.FSR(4.0); f != 0 {
			t.Fatalf("FSR(rc2) = %g, want exactly 0", f)
		}
		if f := k.FSR(math.Float32frombits(math.Float32bits(4.0) - 1)); f == 0 {
			t.Fatalf("FSR(rc2-ulp) = 0, want nonzero")
		}
		lx := []float32{0}
		ax := make([]float32, 1)
		ay := make([]float32, 1)
		az := make([]float32, 1)
		px := []float32{2, 0, 0, 0, 2} // two at exactly rcut, three inside
		py := []float32{0, 1, 0, 1, 0}
		pz := []float32{0, 0, 1, 1, 0}
		k.ApplyRanges(lx, lx, lx, px, py, pz, [][2]int32{{0, 5}}, ax, ay, az)
		k2 := NewKernel(poly, 3.0, 0.01, 1.0) // same poly, wider cutoff
		ax2 := make([]float32, 1)
		ay2 := make([]float32, 1)
		az2 := make([]float32, 1)
		k2.ApplyRanges(lx, lx, lx, px[1:4], py[1:4], pz[1:4], [][2]int32{{0, 3}}, ax2, ay2, az2)
		if ax[0] != ax2[0] || ay[0] != ay2[0] || az[0] != az2[0] {
			t.Fatalf("neighbors at exactly r_cut contributed: (%v %v %v) vs (%v %v %v)",
				ax[0], ay[0], az[0], ax2[0], ay2[0], az2[0])
		}
	})

	t.Run("zero-eps", func(t *testing.T) {
		// eps=0 is legal for distinct particles: s>0 keeps the rsqrt finite.
		k := NewKernel(poly, 3.0, 0.0, 1.0)
		lx, ly, lz := []float32{0}, []float32{0}, []float32{0}
		px, py, pz := []float32{1, 2}, []float32{1, 0}, []float32{0, 1}
		ax := make([]float32, 1)
		ay := make([]float32, 1)
		az := make([]float32, 1)
		k.ApplyRanges(lx, ly, lz, px, py, pz, [][2]int32{{0, 2}}, ax, ay, az)
		for _, v := range []float32{ax[0], ay[0], az[0]} {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("eps=0 with distinct particles produced %v", v)
			}
		}
		if ax[0] == 0 && ay[0] == 0 && az[0] == 0 {
			t.Fatal("eps=0 force is identically zero")
		}
	})

	t.Run("empty-neighbors", func(t *testing.T) {
		k := NewKernel(poly, 3.0, 0.01, 1.0)
		lx := []float32{1, 2, 3}
		ax := make([]float32, 3)
		if got := k.ApplyRanges(lx, lx, lx, nil, nil, nil, nil, ax, ax, ax); got != 0 {
			t.Fatalf("empty range list: %d interactions, want 0", got)
		}
		if got := k.ApplyRanges(lx, lx, lx, lx, lx, lx, [][2]int32{{1, 1}, {3, 3}}, ax, ax, ax); got != 0 {
			t.Fatalf("empty spans: %d interactions, want 0", got)
		}
		for _, v := range ax {
			if v != 0 {
				t.Fatalf("empty neighbor list accumulated force %v", v)
			}
		}
	})

	t.Run("single-particle-leaf", func(t *testing.T) {
		// One target against itself (s=0): with eps>0 the self-term has
		// dx=0 so it contributes ±0, exactly like the copy-path oracle.
		k := NewKernel(poly, 3.0, 0.05, 1.0)
		one := []float32{1.5}
		ax := make([]float32, 1)
		ay := make([]float32, 1)
		az := make([]float32, 1)
		if got := k.ApplyRanges(one, one, one, one, one, one, [][2]int32{{0, 1}}, ax, ay, az); got != 1 {
			t.Fatalf("interactions = %d, want 1", got)
		}
		if ax[0] != 0 || ay[0] != 0 || az[0] != 0 {
			t.Fatalf("self-interaction nonzero: %v %v %v", ax[0], ay[0], az[0])
		}
	})

	t.Run("randomized-fsr-sweep", func(t *testing.T) {
		// The tiled and dispatch kernels must produce per-pair terms
		// bit-identical to FSR: probe with 1-neighbor spans (single term,
		// no accumulation ambiguity) across random s values.
		k := NewKernel(poly, 3.0, 0.01, 1.0)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			xi := rng.Float32() * 4
			xj := rng.Float32() * 4
			dx := xj - xi
			s := dx * dx
			want := dx * k.FSR(s) // gm=1
			lx, z := []float32{xi}, []float32{0}
			ax := make([]float32, 1)
			ay := make([]float32, 1)
			az := make([]float32, 1)
			k.ApplyRanges(lx, z, z, []float32{xj}, []float32{0}, []float32{0}, [][2]int32{{0, 1}}, ax, ay, az)
			if math.Float32bits(ax[0]) != math.Float32bits(want) && !(ax[0] == 0 && want == 0) {
				t.Fatalf("trial %d: single-pair term %v, FSR oracle %v", trial, ax[0], want)
			}
		}
	})
}
