package shortrange

// applyRangesTiled is the portable tiled range-walking kernel body, shaped
// for the Go compiler the way the BG/Q kernel was shaped for QPX (§III):
//
//   - Targets are processed in fixed 4-wide SoA tiles with the tile's
//     coordinates and accumulators held in locals, so each neighbor triple
//     is loaded once and amortized over four interactions, and four
//     independent rsqrt Newton chains are in flight per loop iteration
//     (the batched estimate-and-refine the hardware rsqrt path needs to
//     cover its latency).
//   - The neighbor spans are resliced once per range with matching length
//     hints (ny = ny[:len(nx)] etc.), which lets the compiler prove every
//     inner-loop index in bounds and drop all bounds checks (verify with
//     `go build -gcflags=-d=ssa/check_bce ./internal/shortrange/`).
//   - The r_cut cutoff stays the branchless cutMask sign-mask select, so
//     the inner loop has no data-dependent branches at all.
//
// The ≤3 remainder targets fall through to a scalar-target loop over the
// same spans.
func applyRangesTiled(k *Kernel, lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64 {
	rc2, eps, gm := k.rc2, k.eps, k.gm
	c0, c1, c2, c3, c4, c5 := k.c[0], k.c[1], k.c[2], k.c[3], k.c[4], k.c[5]
	nt := len(lx)
	ly = ly[:nt]
	lz = lz[:nt]
	ax = ax[:nt]
	ay = ay[:nt]
	az = az[:nt]
	var listLen int64
	for _, r := range ranges {
		listLen += int64(r[1] - r[0])
	}
	i := 0
	for ; i+3 < nt; i += 4 {
		xi0, yi0, zi0 := lx[i], ly[i], lz[i]
		xi1, yi1, zi1 := lx[i+1], ly[i+1], lz[i+1]
		xi2, yi2, zi2 := lx[i+2], ly[i+2], lz[i+2]
		xi3, yi3, zi3 := lx[i+3], ly[i+3], lz[i+3]
		var sx0, sy0, sz0, sx1, sy1, sz1 float32
		var sx2, sy2, sz2, sx3, sy3, sz3 float32
		for _, r := range ranges {
			nx := px[r[0]:r[1]]
			ny := py[r[0]:r[1]]
			nz := pz[r[0]:r[1]]
			ny = ny[:len(nx)]
			nz = nz[:len(nx)]
			for j := 0; j < len(nx); j++ {
				xj, yj, zj := nx[j], ny[j], nz[j]
				dx0, dy0, dz0 := xj-xi0, yj-yi0, zj-zi0
				dx1, dy1, dz1 := xj-xi1, yj-yi1, zj-zi1
				dx2, dy2, dz2 := xj-xi2, yj-yi2, zj-zi2
				dx3, dy3, dz3 := xj-xi3, yj-yi3, zj-zi3
				s0 := dx0*dx0 + dy0*dy0 + dz0*dz0
				s1 := dx1*dx1 + dy1*dy1 + dz1*dz1
				s2 := dx2*dx2 + dy2*dy2 + dz2*dz2
				s3 := dx3*dx3 + dy3*dy3 + dz3*dz3
				f0 := (rsqrt3(s0+eps) - poly5(s0, c0, c1, c2, c3, c4, c5)) * cutMask(s0, rc2)
				f1 := (rsqrt3(s1+eps) - poly5(s1, c0, c1, c2, c3, c4, c5)) * cutMask(s1, rc2)
				f2 := (rsqrt3(s2+eps) - poly5(s2, c0, c1, c2, c3, c4, c5)) * cutMask(s2, rc2)
				f3 := (rsqrt3(s3+eps) - poly5(s3, c0, c1, c2, c3, c4, c5)) * cutMask(s3, rc2)
				sx0 += dx0 * f0
				sy0 += dy0 * f0
				sz0 += dz0 * f0
				sx1 += dx1 * f1
				sy1 += dy1 * f1
				sz1 += dz1 * f1
				sx2 += dx2 * f2
				sy2 += dy2 * f2
				sz2 += dz2 * f2
				sx3 += dx3 * f3
				sy3 += dy3 * f3
				sz3 += dz3 * f3
			}
		}
		ax[i] += gm * sx0
		ay[i] += gm * sy0
		az[i] += gm * sz0
		ax[i+1] += gm * sx1
		ay[i+1] += gm * sy1
		az[i+1] += gm * sz1
		ax[i+2] += gm * sx2
		ay[i+2] += gm * sy2
		az[i+2] += gm * sz2
		ax[i+3] += gm * sx3
		ay[i+3] += gm * sy3
		az[i+3] += gm * sz3
	}
	for ; i < nt; i++ {
		xi, yi, zi := lx[i], ly[i], lz[i]
		var sx, sy, sz float32
		for _, r := range ranges {
			nx := px[r[0]:r[1]]
			ny := py[r[0]:r[1]]
			nz := pz[r[0]:r[1]]
			ny = ny[:len(nx)]
			nz = nz[:len(nx)]
			for j := 0; j < len(nx); j++ {
				dx := nx[j] - xi
				dy := ny[j] - yi
				dz := nz[j] - zi
				s := dx*dx + dy*dy + dz*dz
				f := (rsqrt3(s+eps) - poly5(s, c0, c1, c2, c3, c4, c5)) * cutMask(s, rc2)
				sx += dx * f
				sy += dy * f
				sz += dz * f
			}
		}
		ax[i] += gm * sx
		ay[i] += gm * sy
		az[i] += gm * sz
	}
	return int64(nt) * listLen
}
