package shortrange

import (
	"math"
	"math/rand"
	"testing"
)

// meshCopyAdapter gathers spans into a contiguous list, in span order —
// the mesh-side bitwise walk oracle (see tree.TestRangeWalkMatchesCopyWalk
// for the tree side).
func meshCopyAdapter(kern func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64) RangeKernel {
	return func(lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64 {
		var nx, ny, nz []float32
		for _, r := range ranges {
			nx = append(nx, px[r[0]:r[1]]...)
			ny = append(ny, py[r[0]:r[1]]...)
			nz = append(nz, pz[r[0]:r[1]]...)
		}
		return kern(lx, ly, lz, nx, ny, nz, ax, ay, az)
	}
}

// TestMeshRangeWalkMatchesCopyWalk: the z-column span walk (≤9 coalesced
// spans per cell) fed through the copy adapter must reproduce the 27-cell
// gather walk bitwise, including boundary cells with clamped stencils and
// empty cells inside a column.
func TestMeshRangeWalkMatchesCopyWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	poly := [6]float64{0.25, -0.05, 0.01, -1e-3, 8e-5, -2e-6}
	k := NewKernel(poly, 3.0, 0.01, 0.5)
	const n = 800
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		// Clustered distribution: leaves some cells empty so columns span
		// empty interiors, and pushes particles to the domain faces.
		x[i] = float32(rng.Float64()*rng.Float64()) * 18
		y[i] = float32(rng.Float64()) * 18
		z[i] = float32(rng.Float64()*rng.Float64()) * 18
	}
	m := BuildMesh(x, y, z, k.RCut)
	m.ComputeForces(k.Apply, 3)
	ax0 := append([]float32(nil), m.AX...)
	ay0 := append([]float32(nil), m.AY...)
	az0 := append([]float32(nil), m.AZ...)
	inter0 := m.Interactions.Load()

	m.Interactions.Store(0)
	m.ComputeForcesRanges(meshCopyAdapter(k.Apply), 3)
	if got := m.Interactions.Load(); got != inter0 {
		t.Fatalf("range walk evaluated %d interactions, copy walk %d", got, inter0)
	}
	for i := range ax0 {
		if math.Float32bits(m.AX[i]) != math.Float32bits(ax0[i]) ||
			math.Float32bits(m.AY[i]) != math.Float32bits(ay0[i]) ||
			math.Float32bits(m.AZ[i]) != math.Float32bits(az0[i]) {
			t.Fatalf("particle %d differs: (%v %v %v) vs (%v %v %v)",
				i, m.AX[i], m.AY[i], m.AZ[i], ax0[i], ay0[i], az0[i])
		}
	}

	// The production configuration (ApplyRanges) agrees within the kernel's
	// documented-ULP model: compare against the copy result with a bound
	// scaled by the local interaction count.
	m.ComputeForcesRanges(k.ApplyRanges, 3)
	for i := range ax0 {
		for c, pair := range [3][2]float32{{m.AX[i], ax0[i]}, {m.AY[i], ay0[i]}, {m.AZ[i], az0[i]}} {
			diff := math.Abs(float64(pair[0]) - float64(pair[1]))
			scale := math.Abs(float64(pair[1])) + 1e-4
			if diff > 1e-3*scale {
				t.Fatalf("particle %d comp %d: production %v vs oracle %v", i, c, pair[0], pair[1])
			}
		}
	}
}
