package shortrange

import (
	"fmt"
	"math"
	"math/rand"

	"hacc/internal/fft"
	"hacc/internal/spectral"
)

// FitOptions controls the grid-force measurement and polynomial fit.
type FitOptions struct {
	GridN   int     // serial PM grid used for sampling (default 32)
	RCut    float64 // fit range in cells (default 3.0)
	RMin    float64 // smallest sampled radius (default 0.05)
	Offsets int     // random source offsets averaged over (default 6)
	Dirs    int     // random directions per (offset, radius) (default 8)
	Radii   int     // radii sampled in (RMin, RCut+0.5] (default 48)
	Sigma   float64 // filter width (default spectral.DefaultSigma)
	Ns      int     // filter exponent (default spectral.DefaultNs)
	Seed    int64
}

func (o *FitOptions) setDefaults() {
	if o.GridN == 0 {
		o.GridN = 32
	}
	if o.RCut == 0 {
		o.RCut = 3.0
	}
	if o.RMin == 0 {
		o.RMin = 0.05
	}
	if o.Offsets == 0 {
		o.Offsets = 6
	}
	if o.Dirs == 0 {
		o.Dirs = 8
	}
	if o.Radii == 0 {
		o.Radii = 48
	}
	if o.Sigma == 0 {
		o.Sigma = spectral.DefaultSigma
	}
	if o.Ns == 0 {
		o.Ns = spectral.DefaultNs
	}
}

// FitResult is the outcome of the grid-force fit.
type FitResult struct {
	Poly   [6]float64 // f_grid(s) ≈ Σ Poly[k]·s^k on (0, RCut²]
	RCut   float64
	RMSErr float64 // rms of (fit − sample) weighted by s^{3/2} (relative
	// to the Newtonian force at each radius)
	Samples int
}

// FitGridForce measures HACC's filtered PM force for a unit point source by
// randomly sampled particle pairs on a small serial grid, then fits the
// radial profile f_grid(s) with a fifth-order polynomial in s = r² — the
// paper's procedure for constructing the short-range kernel (§II). The PM
// coupling is normalized so the far-field force is exactly 1/r², making the
// coefficients independent of cosmology; the caller scales by GM.
func FitGridForce(o FitOptions) (*FitResult, error) {
	o.setDefaults()
	n := o.GridN
	if float64(n) < 4*(o.RCut+1) {
		return nil, fmt.Errorf("shortrange: grid %d too small for rcut %g", n, o.RCut)
	}
	rng := rand.New(rand.NewSource(o.Seed + 1))
	var ss, fs []float64
	for off := 0; off < o.Offsets; off++ {
		src := [3]float64{
			float64(n)/2 + rng.Float64() - 0.5,
			float64(n)/2 + rng.Float64() - 0.5,
			float64(n)/2 + rng.Float64() - 0.5,
		}
		probe := newSerialPM(n, o.Sigma, o.Ns)
		probe.solve(src)
		for ir := 0; ir < o.Radii; ir++ {
			frac := (float64(ir) + 0.5) / float64(o.Radii)
			r := o.RMin + frac*(o.RCut+0.5-o.RMin)
			for id := 0; id < o.Dirs; id++ {
				dir := randDir(rng)
				px := src[0] + r*dir[0]
				py := src[1] + r*dir[1]
				pz := src[2] + r*dir[2]
				a := probe.accelAt(px, py, pz)
				// F_vec = −r_vec·f_grid(s): project onto r_vec.
				rv := [3]float64{r * dir[0], r * dir[1], r * dir[2]}
				s := r * r
				f := -(a[0]*rv[0] + a[1]*rv[1] + a[2]*rv[2]) / s
				ss = append(ss, s)
				fs = append(fs, f)
			}
		}
	}
	coef, err := polyFit5(ss, fs, o.RCut*o.RCut)
	if err != nil {
		return nil, err
	}
	res := &FitResult{RCut: o.RCut, Samples: len(ss)}
	copy(res.Poly[:], coef)
	// Residual relative to the Newtonian force scale at each radius.
	var acc float64
	for i, s := range ss {
		fit := coef[0] + s*(coef[1]+s*(coef[2]+s*(coef[3]+s*(coef[4]+s*coef[5]))))
		rel := (fit - fs[i]) * s * math.Sqrt(s) // ÷ s^{-3/2}
		acc += rel * rel
	}
	res.RMSErr = math.Sqrt(acc / float64(len(ss)))
	return res, nil
}

func randDir(rng *rand.Rand) [3]float64 {
	for {
		x, y, z := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		s := math.Sqrt(x*x + y*y + z*z)
		if s > 1e-6 {
			return [3]float64{x / s, y / s, z / s}
		}
	}
}

// polyFit5 least-squares fits f(s) = Σ c_k s^k, k=0..5. The fit is done in
// the scaled variable u = s/scale for conditioning and mapped back.
func polyFit5(ss, fs []float64, scale float64) ([]float64, error) {
	const m = 6
	if len(ss) < m {
		return nil, fmt.Errorf("shortrange: %d samples insufficient for degree-5 fit", len(ss))
	}
	var ata [m][m]float64
	var atb [m]float64
	for i, s := range ss {
		u := s / scale
		var row [m]float64
		row[0] = 1
		for k := 1; k < m; k++ {
			row[k] = row[k-1] * u
		}
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				ata[a][b] += row[a] * row[b]
			}
			atb[a] += row[a] * fs[i]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		p := col
		for r := col + 1; r < m; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[p][col]) {
				p = r
			}
		}
		if math.Abs(ata[p][col]) < 1e-30 {
			return nil, fmt.Errorf("shortrange: singular normal equations")
		}
		ata[col], ata[p] = ata[p], ata[col]
		atb[col], atb[p] = atb[p], atb[col]
		inv := 1 / ata[col][col]
		for r := col + 1; r < m; r++ {
			f := ata[r][col] * inv
			for c := col; c < m; c++ {
				ata[r][c] -= f * ata[col][c]
			}
			atb[r] -= f * atb[col]
		}
	}
	var b [m]float64
	for r := m - 1; r >= 0; r-- {
		v := atb[r]
		for c := r + 1; c < m; c++ {
			v -= ata[r][c] * b[c]
		}
		b[r] = v / ata[r][r]
	}
	// Map back from u = s/scale: c_k = b_k / scale^k.
	out := make([]float64, m)
	pw := 1.0
	for k := 0; k < m; k++ {
		out[k] = b[k] / pw
		pw *= scale
	}
	return out, nil
}

// serialPM is a single-rank spectral PM solver used only for kernel
// construction and error analysis (it mirrors spectral.Poisson without the
// distributed machinery).
type serialPM struct {
	n     int
	sigma float64
	ns    int
	plan  *fft.Plan3
	acc   [3][]float64
}

func newSerialPM(n int, sigma float64, ns int) *serialPM {
	return &serialPM{n: n, sigma: sigma, ns: ns, plan: fft.NewPlan3(n, n, n)}
}

// solve computes the acceleration field of a unit CIC-deposited point mass
// with far-field normalization 1/r².
func (p *serialPM) solve(src [3]float64) {
	n := p.n
	rho := make([]complex128, n*n*n)
	ix, iy, iz := int(math.Floor(src[0])), int(math.Floor(src[1])), int(math.Floor(src[2]))
	fx, fy, fz := src[0]-float64(ix), src[1]-float64(iy), src[2]-float64(iz)
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			for dz := 0; dz < 2; dz++ {
				wx, wy, wz := 1-fx, 1-fy, 1-fz
				if dx == 1 {
					wx = fx
				}
				if dy == 1 {
					wy = fy
				}
				if dz == 1 {
					wz = fz
				}
				i := ((mod(ix+dx, n))*n+mod(iy+dy, n))*n + mod(iz+dz, n)
				rho[i] += complex(wx*wy*wz, 0)
			}
		}
	}
	p.plan.Forward(rho)
	// Coupling 4π makes the pair force exactly r̂/r² in the far field.
	const coupling = 4 * math.Pi
	psi := rho
	for mx := 0; mx < n; mx++ {
		kx := spectral.KMode(mx, n)
		for my := 0; my < n; my++ {
			ky := spectral.KMode(my, n)
			for mz := 0; mz < n; mz++ {
				i := (mx*n+my)*n + mz
				if mx == 0 && my == 0 && mz == 0 {
					psi[i] = 0
					continue
				}
				kz := spectral.KMode(mz, n)
				g := 1 / spectral.Influence6(kx, ky, kz)
				f := spectral.Filter(math.Sqrt(kx*kx+ky*ky+kz*kz), p.sigma, p.ns)
				psi[i] *= complex(coupling*f*g, 0)
			}
		}
	}
	for d := 0; d < 3; d++ {
		comp := make([]complex128, len(psi))
		for mx := 0; mx < n; mx++ {
			for my := 0; my < n; my++ {
				for mz := 0; mz < n; mz++ {
					i := (mx*n+my)*n + mz
					var dk float64
					switch d {
					case 0:
						dk = spectral.GradSL4(spectral.KMode(mx, n))
					case 1:
						dk = spectral.GradSL4(spectral.KMode(my, n))
					default:
						dk = spectral.GradSL4(spectral.KMode(mz, n))
					}
					v := psi[i]
					comp[i] = complex(imag(v)*dk, -real(v)*dk)
				}
			}
		}
		p.plan.Inverse(comp)
		p.acc[d] = make([]float64, len(comp))
		for i, v := range comp {
			p.acc[d][i] = real(v)
		}
	}
}

// accelAt CIC-interpolates the acceleration at a position.
func (p *serialPM) accelAt(x, y, z float64) [3]float64 {
	n := p.n
	ix, iy, iz := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(ix), y-float64(iy), z-float64(iz)
	var out [3]float64
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < 2; dy++ {
			for dz := 0; dz < 2; dz++ {
				wx, wy, wz := 1-fx, 1-fy, 1-fz
				if dx == 1 {
					wx = fx
				}
				if dy == 1 {
					wy = fy
				}
				if dz == 1 {
					wz = fz
				}
				i := ((mod(ix+dx, n))*n+mod(iy+dy, n))*n + mod(iz+dz, n)
				w := wx * wy * wz
				for d := 0; d < 3; d++ {
					out[d] += p.acc[d][i] * w
				}
			}
		}
	}
	return out
}

func mod(x, n int) int { return ((x % n) + n) % n }
