package shortrange

import (
	"math/rand"
	"testing"

	"hacc/internal/par"
)

// simpleKernel is a cheap inverse-square-with-cutoff test kernel.
func simpleKernel(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
	const rc2 = 9
	for i := range lx {
		var sx, sy, sz float32
		for j := range nx {
			dx := nx[j] - lx[i]
			dy := ny[j] - ly[i]
			dz := nz[j] - lz[i]
			s := dx*dx + dy*dy + dz*dz
			if s <= 0 || s > rc2 {
				continue
			}
			w := 1 / (s + 0.01)
			sx += w * dx
			sy += w * dy
			sz += w * dz
		}
		ax[i] += sx
		ay[i] += sy
		az[i] += sz
	}
	return int64(len(lx)) * int64(len(nx))
}

func randomMeshParticles(n int, box float32, rng *rand.Rand) (x, y, z []float32) {
	x = make([]float32, n)
	y = make([]float32, n)
	z = make([]float32, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float32() * box
		y[i] = rng.Float32() * box
		z[i] = rng.Float32() * box
	}
	return
}

// TestMeshRebuildMatchesBuild reuses one ChainingMesh across particle sets
// of varying size and extent and checks bitwise agreement with a fresh
// BuildMesh each time.
func TestMeshRebuildMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	persistent := NewMesh(3.0)
	for _, tc := range []struct {
		n   int
		box float32
	}{{500, 20}, {1500, 12}, {80, 30}, {0, 10}, {900, 20}} {
		x, y, z := randomMeshParticles(tc.n, tc.box, rng)
		persistent.Rebuild(x, y, z)
		fresh := BuildMesh(x, y, z, 3.0)
		if persistent.dims != fresh.dims {
			t.Fatalf("n=%d: dims differ: %v vs %v", tc.n, persistent.dims, fresh.dims)
		}
		for c := range fresh.starts {
			if persistent.starts[c] != fresh.starts[c] {
				t.Fatalf("n=%d: CSR offset %d differs", tc.n, c)
			}
		}
		for i := range fresh.orig {
			if persistent.orig[i] != fresh.orig[i] || persistent.X[i] != fresh.X[i] {
				t.Fatalf("n=%d: slot %d differs after rebuild", tc.n, i)
			}
		}
		persistent.ComputeForces(simpleKernel, 2)
		fresh.ComputeForces(simpleKernel, 2)
		pax := make([]float32, tc.n)
		pay := make([]float32, tc.n)
		paz := make([]float32, tc.n)
		fax := make([]float32, tc.n)
		fay := make([]float32, tc.n)
		faz := make([]float32, tc.n)
		persistent.AccelInto(pax, pay, paz)
		fresh.AccelInto(fax, fay, faz)
		for i := 0; i < tc.n; i++ {
			if pax[i] != fax[i] || pay[i] != fay[i] || paz[i] != faz[i] {
				t.Fatalf("n=%d: force %d differs", tc.n, i)
			}
		}
		if persistent.Interactions.Load() != fresh.Interactions.Load() {
			t.Fatalf("n=%d: interactions differ: %d vs %d",
				tc.n, persistent.Interactions.Load(), fresh.Interactions.Load())
		}
	}
}

// TestMeshComputeForcesPoolMatches checks the pooled dispatch against the
// serial path (bitwise: cells own disjoint output ranges).
func TestMeshComputeForcesPoolMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x, y, z := randomMeshParticles(800, 18, rng)
	pool := par.NewPool(4)
	a := BuildMesh(x, y, z, 3.0)
	a.ComputeForcesPool(simpleKernel, pool)
	b := BuildMesh(x, y, z, 3.0)
	b.ComputeForces(simpleKernel, 1)
	for i := range a.AX {
		if a.AX[i] != b.AX[i] || a.AY[i] != b.AY[i] || a.AZ[i] != b.AZ[i] {
			t.Fatalf("pooled force %d differs", i)
		}
	}
	if a.Interactions.Load() != b.Interactions.Load() {
		t.Fatalf("interaction counts differ: %d vs %d", a.Interactions.Load(), b.Interactions.Load())
	}
}
