package shortrange

import "math"

// Kernel evaluates the short-range pair force on contiguous neighbor lists.
// It is shared by the RCB-tree and P3M backends.
type Kernel struct {
	RCut float64 // matching radius in grid cells (paper: 3 cells + margin)
	rc2  float32
	eps  float32
	gm   float32
	c    [6]float32 // poly5 coefficients, ascending powers of s

	// Broadcast-constant table for the assembly range kernel: kc points at
	// the 16-byte-aligned start of kcBuf (nil without the asm build). See
	// buildKernelConsts in kernel_sse_amd64.go for the layout.
	kc    *float32
	kcBuf []float32

	// GM is the pair coupling g·m = (3/2)Ωm·m/(4π): acceleration of i is
	// GM·Σ_j (x_j−x_i)·f_SR(s_ij) for equal particle masses m.
	GM float64
}

// RangeKernel is the copy-free kernel signature: neighbors are named by
// (start,end) spans over the caller's SoA coordinate arrays px/py/pz
// instead of being gathered into a contiguous list. Implemented by
// Kernel.ApplyRanges; consumed by the range-walking entry points of
// ChainingMesh and tree.Tree.
type RangeKernel func(lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64

// NewKernel builds a kernel from fitted grid-force coefficients. eps is the
// Plummer-like softening added to s (in cells², short-distance cutoff ε of
// eq. 7); gm is the pair coupling g·m.
func NewKernel(poly [6]float64, rcut, eps, gm float64) *Kernel {
	k := &Kernel{RCut: rcut, GM: gm}
	k.rc2 = float32(rcut * rcut)
	k.eps = float32(eps)
	k.gm = float32(gm)
	for i, c := range poly {
		k.c[i] = float32(c)
	}
	buildKernelConsts(k)
	return k
}

// rsqrt is the reciprocal square root via the classic bit-level estimate
// refined by three Newton iterations — the same estimate-and-refine
// structure as the BG/Q kernel's hardware rsqrt path (§III).
func rsqrt(x float32) float32 {
	i := math.Float32bits(x)
	i = 0x5f3759df - i>>1
	y := math.Float32frombits(i)
	y *= 1.5 - 0.5*x*y*y
	y *= 1.5 - 0.5*x*y*y
	y *= 1.5 - 0.5*x*y*y
	return y
}

// The short-range force factor f_SR(s) = (s+ε)^(−3/2) − poly5(s), zero at
// and beyond r_cut², is evaluated everywhere — FSR, Apply, the tiled range
// kernel — as the same three single-sourced inlined helpers:
//
//	f := (rsqrt3(s+eps) - poly5(s, c0..c5)) * cutMask(s, rc2)
//
// so neither the fitted polynomial nor the Newton refinement can drift
// between paths. A single fused helper would blow the compiler's inlining
// budget (rsqrt alone costs 62 of the 80-unit allowance), so the seams sit
// between the three sub-expressions; each helper must stay inlinable
// (verify with `go build -gcflags=-m ./internal/shortrange/`).

// rsqrt3 returns x^(−3/2) via the refined reciprocal square root: the
// Newtonian part of the force expression.
func rsqrt3(x float32) float32 {
	r := rsqrt(x)
	return r * r * r
}

// poly5 evaluates the fitted quintic in s (ascending coefficients, Horner
// form): the grid-force residual subtracted from the Newtonian part.
func poly5(s, c0, c1, c2, c3, c4, c5 float32) float32 {
	return c0 + s*(c1+s*(c2+s*(c3+s*(c4+s*c5))))
}

// cutMask returns 1.0 when s < rc2 and 0.0 otherwise, branchlessly: the
// sign bit of s−rc2 broadcast over the bit pattern of 1.0 gives a 0/1
// multiplier — the same data-path select as the QPX fsel trick of §III,
// keeping the inner loops free of data-dependent branches.
func cutMask(s, rc2 float32) float32 {
	return math.Float32frombits(uint32(int32(math.Float32bits(s-rc2))>>31) & 0x3f800000)
}

// FSR returns the scalar short-range force factor f_SR(s) (force vector is
// GM·r_vec·f_SR). Exposed for tests and error analysis; the scalar oracle
// for the batched kernels.
func (k *Kernel) FSR(s float32) float32 {
	return (rsqrt3(s+k.eps) - poly5(s, k.c[0], k.c[1], k.c[2], k.c[3], k.c[4], k.c[5])) * cutMask(s, k.rc2)
}

// Apply computes the short-range force of every neighbor on every target,
// accumulating accelerations; it returns the number of pair interactions.
// The inner loop is 2-way unrolled with the cutoff folded in as a select
// rather than a branch on the data path, mirroring the fsel-based
// vectorization of the BG/Q kernel (§III). Apply is the copy-list scalar
// oracle; production walks use ApplyRanges.
func (k *Kernel) Apply(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
	rc2, eps, gm := k.rc2, k.eps, k.gm
	c0, c1, c2, c3, c4, c5 := k.c[0], k.c[1], k.c[2], k.c[3], k.c[4], k.c[5]
	n := len(nx)
	ny = ny[:n]
	nz = nz[:n]
	for i := range lx {
		xi, yi, zi := lx[i], ly[i], lz[i]
		var sx, sy, sz float32
		j := 0
		for ; j+1 < n; j += 2 {
			dx0 := nx[j] - xi
			dy0 := ny[j] - yi
			dz0 := nz[j] - zi
			dx1 := nx[j+1] - xi
			dy1 := ny[j+1] - yi
			dz1 := nz[j+1] - zi
			s0 := dx0*dx0 + dy0*dy0 + dz0*dz0
			s1 := dx1*dx1 + dy1*dy1 + dz1*dz1
			f0 := (rsqrt3(s0+eps) - poly5(s0, c0, c1, c2, c3, c4, c5)) * cutMask(s0, rc2)
			f1 := (rsqrt3(s1+eps) - poly5(s1, c0, c1, c2, c3, c4, c5)) * cutMask(s1, rc2)
			sx += dx0*f0 + dx1*f1
			sy += dy0*f0 + dy1*f1
			sz += dz0*f0 + dz1*f1
		}
		if j < n {
			dx := nx[j] - xi
			dy := ny[j] - yi
			dz := nz[j] - zi
			s := dx*dx + dy*dy + dz*dz
			f := (rsqrt3(s+eps) - poly5(s, c0, c1, c2, c3, c4, c5)) * cutMask(s, rc2)
			sx += dx * f
			sy += dy * f
			sz += dz * f
		}
		ax[i] += gm * sx
		ay[i] += gm * sy
		az[i] += gm * sz
	}
	return int64(len(lx)) * int64(n)
}

// ApplyRanges is the copy-free production kernel entry point: neighbors are
// (start,end) spans over the caller's SoA working arrays (the tree's
// leaf-contiguous coordinates, the mesh's cell-sorted copy), so the walk
// passes index ranges instead of gathering O(27·cell) coordinates per leaf.
// Per target the spans are visited in order. The portable tiled kernel
// accumulates each target sequentially across spans, so splitting or
// coalescing spans is bitwise invisible to it (TestTiledSplitInvariance);
// the amd64 SSE kernel reduces four neighbor lanes per span, so its span
// structure moves results only within the documented ULP model. Either
// way, equivalence to the scalar oracle is ULP-bounded, pinned by
// TestApplyRangesULPBound; per-pair terms are bit-identical to FSR on
// every path (TestFsrSpanSSEBitExact, randomized-fsr-sweep).
func (k *Kernel) ApplyRanges(lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64 {
	return applyRangesDispatch(k, lx, ly, lz, px, py, pz, ranges, ax, ay, az)
}
