package shortrange

import "math"

// Kernel evaluates the short-range pair force on contiguous neighbor lists.
// It is shared by the RCB-tree and P3M backends.
type Kernel struct {
	RCut float64 // matching radius in grid cells (paper: 3 cells + margin)
	rc2  float32
	eps  float32
	gm   float32
	c    [6]float32 // poly5 coefficients, ascending powers of s

	// GM is the pair coupling g·m = (3/2)Ωm·m/(4π): acceleration of i is
	// GM·Σ_j (x_j−x_i)·f_SR(s_ij) for equal particle masses m.
	GM float64
}

// NewKernel builds a kernel from fitted grid-force coefficients. eps is the
// Plummer-like softening added to s (in cells², short-distance cutoff ε of
// eq. 7); gm is the pair coupling g·m.
func NewKernel(poly [6]float64, rcut, eps, gm float64) *Kernel {
	k := &Kernel{RCut: rcut, GM: gm}
	k.rc2 = float32(rcut * rcut)
	k.eps = float32(eps)
	k.gm = float32(gm)
	for i, c := range poly {
		k.c[i] = float32(c)
	}
	return k
}

// rsqrt is the reciprocal square root via the classic bit-level estimate
// refined by three Newton iterations — the same estimate-and-refine
// structure as the BG/Q kernel's hardware rsqrt path (§III).
func rsqrt(x float32) float32 {
	i := math.Float32bits(x)
	i = 0x5f3759df - i>>1
	y := math.Float32frombits(i)
	y *= 1.5 - 0.5*x*y*y
	y *= 1.5 - 0.5*x*y*y
	y *= 1.5 - 0.5*x*y*y
	return y
}

// FSR returns the scalar short-range force factor f_SR(s) (force vector is
// GM·r_vec·f_SR). Exposed for tests and error analysis.
func (k *Kernel) FSR(s float32) float32 {
	if s >= k.rc2 {
		return 0
	}
	r := rsqrt(s + k.eps)
	newton := r * r * r
	p := k.c[0] + s*(k.c[1]+s*(k.c[2]+s*(k.c[3]+s*(k.c[4]+s*k.c[5]))))
	return newton - p
}

// Apply computes the short-range force of every neighbor on every target,
// accumulating accelerations; it returns the number of pair interactions.
// The inner loop is 2-way unrolled with the cutoff folded in as a select
// rather than a branch on the data path, mirroring the fsel-based
// vectorization of the BG/Q kernel (§III).
func (k *Kernel) Apply(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
	rc2, eps, gm := k.rc2, k.eps, k.gm
	c0, c1, c2, c3, c4, c5 := k.c[0], k.c[1], k.c[2], k.c[3], k.c[4], k.c[5]
	n := len(nx)
	ny = ny[:n]
	nz = nz[:n]
	for i := range lx {
		xi, yi, zi := lx[i], ly[i], lz[i]
		var sx, sy, sz float32
		j := 0
		for ; j+1 < n; j += 2 {
			dx0 := nx[j] - xi
			dy0 := ny[j] - yi
			dz0 := nz[j] - zi
			dx1 := nx[j+1] - xi
			dy1 := ny[j+1] - yi
			dz1 := nz[j+1] - zi
			s0 := dx0*dx0 + dy0*dy0 + dz0*dz0
			s1 := dx1*dx1 + dy1*dy1 + dz1*dz1
			r0 := rsqrt(s0 + eps)
			r1 := rsqrt(s1 + eps)
			f0 := r0*r0*r0 - (c0 + s0*(c1+s0*(c2+s0*(c3+s0*(c4+s0*c5)))))
			f1 := r1*r1*r1 - (c0 + s1*(c1+s1*(c2+s1*(c3+s1*(c4+s1*c5)))))
			if s0 >= rc2 {
				f0 = 0
			}
			if s1 >= rc2 {
				f1 = 0
			}
			sx += dx0*f0 + dx1*f1
			sy += dy0*f0 + dy1*f1
			sz += dz0*f0 + dz1*f1
		}
		if j < n {
			dx := nx[j] - xi
			dy := ny[j] - yi
			dz := nz[j] - zi
			s := dx*dx + dy*dy + dz*dz
			if s < rc2 {
				r := rsqrt(s + eps)
				f := r*r*r - (c0 + s*(c1+s*(c2+s*(c3+s*(c4+s*c5)))))
				sx += dx * f
				sy += dy * f
				sz += dz * f
			}
		}
		ax[i] += gm * sx
		ay[i] += gm * sy
		az[i] += gm * sz
	}
	return int64(len(lx)) * int64(n)
}
