//go:build !hacc_noasm

#include "textflag.h"

// func fsrSpanSSE(xi, yi, zi float32, nx, ny, nz *float32, n int64, kc *float32) (sx, sy, sz float32)
//
// Short-range force of one contiguous neighbor span on one target, 4
// neighbors per 128-bit SSE2 vector. n must be a multiple of 4 (Go caller
// handles the tail); kc is the 16-byte-aligned broadcast-constant table
// built by buildKernelConsts (offsets: 0 magic, 16 half, 32 threeHalf,
// 48 eps, 64 rc2, 80+16i ci), used as aligned memory operands so every
// XMM register is free for live state.
//
// Per lane the arithmetic reproduces the Go scalar helpers operation for
// operation (same association, no FMA contraction):
//
//	s   = (dx*dx + dy*dy) + dz*dz
//	y0  = frombits(magic - bits(s+eps)>>1)      PSRLL/PSUBL on float lanes
//	y  *= 1.5 - ((0.5*(s+eps))*y)*y             three times
//	f   = (y*y)*y - Horner(poly5, s)
//	f  &= (s < rc2) mask                        CMPPS — the fsel select
//	acc += d * f                                per-lane partial sums
//
// so each pair term is bit-identical to Kernel.FSR; the horizontal reduce
// (l0+l2)+(l1+l3) at the end is the only reassociation (documented-ULP).
//
// Register plan: X0-X2 dx/dy/dz, X3 s, X4/X13/X14 temps, X5-X7 lane
// accumulators, X8-X10 target broadcast, X11 halfx, X12 y, X15 rc2.
TEXT ·fsrSpanSSE(SB), NOSPLIT, $0-68
	MOVSS  xi+0(FP), X8
	SHUFPS $0x00, X8, X8
	MOVSS  yi+4(FP), X9
	SHUFPS $0x00, X9, X9
	MOVSS  zi+8(FP), X10
	SHUFPS $0x00, X10, X10
	MOVQ   nx+16(FP), SI
	MOVQ   ny+24(FP), DI
	MOVQ   nz+32(FP), DX
	MOVQ   n+40(FP), CX
	MOVQ   kc+48(FP), R8
	SHRQ   $2, CX
	XORPS  X5, X5
	XORPS  X6, X6
	XORPS  X7, X7
	MOVAPS 64(R8), X15       // rc2 (loop-invariant)
	TESTQ  CX, CX
	JZ     reduce

loop:
	MOVUPS (SI), X0          // xj
	MOVUPS (DI), X1          // yj
	MOVUPS (DX), X2          // zj
	SUBPS  X8, X0            // dx = xj - xi
	SUBPS  X9, X1
	SUBPS  X10, X2
	MOVAPS X0, X3
	MULPS  X3, X3            // dx²
	MOVAPS X1, X4
	MULPS  X4, X4
	ADDPS  X4, X3            // + dy²
	MOVAPS X2, X4
	MULPS  X4, X4
	ADDPS  X4, X3            // s

	// rsqrt(s+eps): bit-level estimate + 3 Newton iterations
	MOVAPS X3, X11
	ADDPS  48(R8), X11       // x = s + eps
	MOVAPS X11, X4
	PSRLL  $1, X4            // bits(x) >> 1
	MOVAPS 0(R8), X12
	PSUBL  X4, X12           // y0 = magic - bits(x)>>1 (as float lanes)
	MULPS  16(R8), X11       // halfx = 0.5*x
	MOVAPS X11, X13          // iteration 1
	MULPS  X12, X13          // (0.5x)*y
	MULPS  X12, X13          // ((0.5x)*y)*y
	MOVAPS 32(R8), X14
	SUBPS  X13, X14          // 1.5 - ...
	MULPS  X14, X12          // y *=
	MOVAPS X11, X13          // iteration 2
	MULPS  X12, X13
	MULPS  X12, X13
	MOVAPS 32(R8), X14
	SUBPS  X13, X14
	MULPS  X14, X12
	MOVAPS X11, X13          // iteration 3
	MULPS  X12, X13
	MULPS  X12, X13
	MOVAPS 32(R8), X14
	SUBPS  X13, X14
	MULPS  X14, X12

	// f = (y*y)*y - poly5(s)
	MOVAPS X12, X13
	MULPS  X12, X13          // y*y
	MULPS  X12, X13          // (y*y)*y
	MOVAPS 160(R8), X14      // c5
	MULPS  X3, X14
	ADDPS  144(R8), X14      // c4 + s*c5
	MULPS  X3, X14
	ADDPS  128(R8), X14      // c3 + ...
	MULPS  X3, X14
	ADDPS  112(R8), X14      // c2 + ...
	MULPS  X3, X14
	ADDPS  96(R8), X14       // c1 + ...
	MULPS  X3, X14
	ADDPS  80(R8), X14       // c0 + ... = poly5(s)
	SUBPS  X14, X13          // f

	// cutoff: f &= (s < rc2)
	MOVAPS X3, X14
	CMPPS  X15, X14, $1      // mask = s < rc2
	ANDPS  X14, X13

	// accumulate d*f into the lane sums
	MULPS  X13, X0
	ADDPS  X0, X5
	MULPS  X13, X1
	ADDPS  X1, X6
	MULPS  X13, X2
	ADDPS  X2, X7

	ADDQ   $16, SI
	ADDQ   $16, DI
	ADDQ   $16, DX
	DECQ   CX
	JNZ    loop

reduce:
	// horizontal sum (l0+l2)+(l1+l3) of each accumulator
	MOVAPS  X5, X0
	MOVHLPS X5, X0           // X0 = [l2, l3, ...]
	ADDPS   X5, X0           // [l0+l2, l1+l3, ...]
	MOVAPS  X0, X1
	SHUFPS  $0x01, X0, X1    // X1[0] = l1+l3
	ADDSS   X1, X0
	MOVSS   X0, sx+56(FP)
	MOVAPS  X6, X0
	MOVHLPS X6, X0
	ADDPS   X6, X0
	MOVAPS  X0, X1
	SHUFPS  $0x01, X0, X1
	ADDSS   X1, X0
	MOVSS   X0, sy+60(FP)
	MOVAPS  X7, X0
	MOVHLPS X7, X0
	ADDPS   X7, X0
	MOVAPS  X0, X1
	SHUFPS  $0x01, X0, X1
	ADDSS   X1, X0
	MOVSS   X0, sz+64(FP)
	RET
