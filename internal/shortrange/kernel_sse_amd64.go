//go:build !hacc_noasm

package shortrange

import (
	"math"
	"unsafe"
)

// The amd64 range kernel vectorizes the inner loop 4 neighbors wide with
// baseline SSE2 — the x86 reproduction of the paper's hand-vectorized QPX
// kernel (§III). Per lane it reproduces the pure-Go numerics exactly: the
// bit-level rsqrt estimate (integer PSRLD/PSUBD on the float lanes), three
// Newton refinements with the same operation order as rsqrt, the Horner
// poly5, and the cutoff as a CMPPS less-than mask ANDed into the force
// (the fsel select, now genuinely data-parallel). Only the accumulation
// association differs from the scalar oracle: each of the 4 lanes keeps a
// partial sum over j≡lane (mod 4), reduced as (l0+l2)+(l1+l3) per span,
// with the ≤3 tail neighbors added scalarly after — the documented-ULP
// model pinned by TestApplyRangesULPBound. SSE2 is unconditional on amd64,
// so no GOAMD64 level is required; an 8-wide AVX2 variant can slot into
// this same dispatch seam under the amd64.v3 tag. Build with `hacc_noasm`
// to fall back to the portable tiled Go kernel.

// kcGroups is the layout of the broadcast-constant table consumed by the
// assembly: 11 groups of 4 identical float32 lanes, 16-byte aligned so the
// kernel can use the groups as aligned memory operands directly.
// Group order (byte offset = 16·index):
//
//	0 magic  1 half  2 threeHalf  3 eps  4 rc2  5..10 c0..c5
const kcGroups = 11

// buildKernelConsts fills the kernel's aligned broadcast table.
func buildKernelConsts(k *Kernel) {
	buf := make([]float32, 4*kcGroups+3)
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%16 != 0 {
		off++
	}
	t := buf[off : off+4*kcGroups]
	vals := [kcGroups]float32{
		math.Float32frombits(0x5f3759df), 0.5, 1.5, k.eps, k.rc2,
		k.c[0], k.c[1], k.c[2], k.c[3], k.c[4], k.c[5],
	}
	for g, v := range vals {
		for l := 0; l < 4; l++ {
			t[4*g+l] = v
		}
	}
	k.kcBuf = buf // keeps the table alive; kc points into it
	k.kc = &t[0]
}

// fsrSpanSSE accumulates the short-range force of one contiguous neighbor
// span (n a multiple of 4) on a single target, 4 neighbors per 128-bit
// vector; kc is the 16-byte-aligned broadcast-constant table. Implemented
// in kernel_sse_amd64.s.
//
//go:noescape
func fsrSpanSSE(xi, yi, zi float32, nx, ny, nz *float32, n int64, kc *float32) (sx, sy, sz float32)

// applyRangesDispatch routes ApplyRanges to the SSE2 kernel: per target and
// span, full 4-blocks go through fsrSpanSSE and the ≤3 tail neighbors
// through the scalar helpers, so span boundaries never copy anything.
func applyRangesDispatch(k *Kernel, lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64 {
	rc2, eps, gm := k.rc2, k.eps, k.gm
	c0, c1, c2, c3, c4, c5 := k.c[0], k.c[1], k.c[2], k.c[3], k.c[4], k.c[5]
	kc := k.kc
	nt := len(lx)
	ly = ly[:nt]
	lz = lz[:nt]
	ax = ax[:nt]
	ay = ay[:nt]
	az = az[:nt]
	var listLen int64
	for _, r := range ranges {
		listLen += int64(r[1] - r[0])
	}
	for i := 0; i < nt; i++ {
		xi, yi, zi := lx[i], ly[i], lz[i]
		var sx, sy, sz float32
		for _, r := range ranges {
			nx := px[r[0]:r[1]]
			ny := py[r[0]:r[1]]
			nz := pz[r[0]:r[1]]
			n := len(nx)
			ny = ny[:n]
			nz = nz[:n]
			n4 := n &^ 3
			if n4 > 0 {
				bx, by, bz := fsrSpanSSE(xi, yi, zi, &nx[0], &ny[0], &nz[0], int64(n4), kc)
				sx += bx
				sy += by
				sz += bz
			}
			for j := n4; j < n; j++ {
				dx := nx[j] - xi
				dy := ny[j] - yi
				dz := nz[j] - zi
				s := dx*dx + dy*dy + dz*dz
				f := (rsqrt3(s+eps) - poly5(s, c0, c1, c2, c3, c4, c5)) * cutMask(s, rc2)
				sx += dx * f
				sy += dy * f
				sz += dz * f
			}
		}
		ax[i] += gm * sx
		ay[i] += gm * sy
		az[i] += gm * sz
	}
	return int64(nt) * listLen
}
