package ic

import (
	"fmt"
	"math"

	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/pfft"
	"hacc/internal/spectral"
)

// Options configures the realization.
type Options struct {
	Np     int     // particles per dimension (Np³ total)
	BoxMpc float64 // box side in Mpc/h
	AInit  float64 // starting scale factor
	Seed   uint64
	Fixed  bool // fixed-amplitude ICs (phase-only randomness), a
	// variance-suppression technique for precision P(k) work
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.Np < 2 {
		return fmt.Errorf("ic: need ≥2 particles per dim, got %d", o.Np)
	}
	if o.BoxMpc <= 0 {
		return fmt.Errorf("ic: box size must be positive, got %g", o.BoxMpc)
	}
	if o.AInit <= 0 || o.AInit > 0.5 {
		return fmt.Errorf("ic: AInit %g outside (0, 0.5]", o.AInit)
	}
	return nil
}

// Generate fills dom.Active with the rank's share of a Zel'dovich
// realization on the decomposition's grid. Collective over comm.
func Generate(c *mpi.Comm, dec *grid.Decomp, lp *cosmology.LinearPower, o Options, dom *domain.Domain) error {
	if err := o.Validate(); err != nil {
		return err
	}
	n := dec.N
	if n[0] != n[1] || n[1] != n[2] {
		return fmt.Errorf("ic: non-cubic grids not supported for IC generation: %v", n)
	}
	ng := n[0]
	pen := pfft.NewAuto(c, n)
	vol := o.BoxMpc * o.BoxMpc * o.BoxMpc
	nc3 := float64(ng) * float64(ng) * float64(ng)
	// <|δ̂_k|²> = P(k)·Nc⁶/V for the unnormalized forward FFT convention.
	ampNorm := nc3 / math.Sqrt(vol)

	growth := lp.Gfac
	d0 := growth.D(o.AInit)
	f0 := growth.F(o.AInit)
	pfac := float32(o.AInit * o.AInit * lp.Params().E(o.AInit) * f0 * d0)

	// Displacement fields, one per axis, built in spectral space on this
	// rank's z-pencil and inverse-transformed.
	var disp [3]*grid.Field
	for d := 0; d < 3; d++ {
		spec := make([]complex128, pen.LocalZ().Count())
		pen.ForEachK(func(mx, my, mz, idx int) {
			if mx == 0 && my == 0 && mz == 0 {
				return
			}
			kx := spectral.KMode(mx, ng)
			ky := spectral.KMode(my, ng)
			kz := spectral.KMode(mz, ng)
			k2 := kx*kx + ky*ky + kz*kz
			kPhys := math.Sqrt(k2) * float64(ng) / o.BoxMpc
			amp := math.Sqrt(lp.P(kPhys)) * ampNorm
			re, im := modeGaussian(o.Seed, mx, my, mz, ng, o.Fixed)
			dk := complex(amp*re, amp*im)
			var kd float64
			switch d {
			case 0:
				kd = kx
			case 1:
				kd = ky
			default:
				kd = kz
			}
			// Ψ_k = i·k_d/k²·δ_k (continuum gradient for IC fidelity).
			w := kd / k2
			spec[idx] = complex(-imag(dk)*w, real(dk)*w)
		})
		rs := pen.Inverse(spec)
		vals := make([]float64, len(rs))
		for i, v := range rs {
			vals[i] = real(v)
		}
		back := pfft.Redistribute(c, vals, pen.LayoutX(), dec.Layout())
		disp[d] = grid.NewField(n, dec.Box(c.Rank()), 2)
		disp[d].SetOwned(back)
		ex := grid.NewExchanger(c, dec, disp[d])
		ex.Fill(disp[d])
	}

	// Lay down the lattice sites owned by this rank and displace them. The
	// lattice sits on grid nodes: when Np == Ng the displacement is read
	// off exactly (no CIC smoothing of the IC spectrum).
	step := float64(ng) / float64(o.Np)
	box := dec.Box(c.Rank())
	dom.Active.Reset()
	var qx, qy, qz []float32
	var ids []uint64
	for i := 0; i < o.Np; i++ {
		x := float64(i) * step
		if int(x) < box.Lo[0] || int(x) >= box.Hi[0] {
			continue
		}
		for j := 0; j < o.Np; j++ {
			y := float64(j) * step
			if int(y) < box.Lo[1] || int(y) >= box.Hi[1] {
				continue
			}
			for k := 0; k < o.Np; k++ {
				z := float64(k) * step
				if int(z) < box.Lo[2] || int(z) >= box.Hi[2] {
					continue
				}
				qx = append(qx, float32(x))
				qy = append(qy, float32(y))
				qz = append(qz, float32(z))
				ids = append(ids, (uint64(i)*uint64(o.Np)+uint64(j))*uint64(o.Np)+uint64(k))
			}
		}
	}
	np := len(qx)
	psi := make([]float32, np)
	pos := [3][]float32{qx, qy, qz}
	var displ [3][]float32
	for d := 0; d < 3; d++ {
		grid.InterpCIC(disp[d], qx, qy, qz, psi, 1)
		displ[d] = append([]float32(nil), psi...)
	}
	dom.Active.Grow(np)
	for i := 0; i < np; i++ {
		x := pos[0][i] + float32(d0)*displ[0][i]
		y := pos[1][i] + float32(d0)*displ[1][i]
		z := pos[2][i] + float32(d0)*displ[2][i]
		dom.Active.Append(x, y, z,
			pfac*displ[0][i], pfac*displ[1][i], pfac*displ[2][i], ids[i])
	}
	dom.Migrate()
	return nil
}

// modeGaussian returns the deterministic Gaussian pair for mode (mx,my,mz),
// respecting the Hermitian symmetry δ(−k) = conj(δ(k)) by hashing the
// canonical representative of each conjugate pair. Self-conjugate modes get
// a real amplitude with matching total variance. With fixed=true the
// modulus is pinned to its rms and only the phase is random.
func modeGaussian(seed uint64, mx, my, mz, n int, fixed bool) (re, im float64) {
	cx, cy, cz := (n-mx)%n, (n-my)%n, (n-mz)%n
	conjugated := false
	hx, hy, hz := mx, my, mz
	if less3(cx, cy, cz, mx, my, mz) {
		hx, hy, hz = cx, cy, cz
		conjugated = true
	}
	self := cx == mx && cy == my && cz == mz
	h := splitmix(seed ^ mixCoords(hx, hy, hz))
	u1 := toUniform(h)
	h = splitmix(h)
	u2 := toUniform(h)
	if self {
		if fixed {
			// Unit modulus, random sign.
			if u2 > 0.5 {
				return 1, 0
			}
			return -1, 0
		}
		// Real Gaussian with variance equal to the complex modes' total.
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2), 0
	}
	r := math.Sqrt(-math.Log(u1)) // Rayleigh: |δ| with Re,Im each N(0,½)
	if fixed {
		r = 1 // pin the modulus to its rms
	}
	phase := 2 * math.Pi * u2
	re = r * math.Cos(phase)
	im = r * math.Sin(phase)
	if conjugated {
		im = -im
	}
	return re, im
}

func less3(ax, ay, az, bx, by, bz int) bool {
	if ax != bx {
		return ax < bx
	}
	if ay != by {
		return ay < by
	}
	return az < bz
}

func mixCoords(x, y, z int) uint64 {
	return uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ uint64(z)*0x165667b19e3779f9
}

// splitmix is the splitmix64 mixing function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// toUniform maps a hash to (0,1].
func toUniform(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}
