package ic

import (
	"fmt"
	"math"

	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
)

// ClusteredOptions configures the deliberately clustered initial condition:
// a single deep Plummer-profile halo embedded in a uniform background. This
// is the late-time stress workload for the load balancer — a fixed uniform
// decomposition concentrates most short-range work on the ranks holding the
// halo. Distances are in grid cells.
type ClusteredOptions struct {
	Np   int // particles per dimension (Np³ total)
	Seed uint64
	// HaloFrac is the fraction of particles in the halo; the rest form a
	// uniform background. Default 0.4.
	HaloFrac float64
	// Center is the halo center in grid coordinates. Default 0.25·N per
	// axis: deliberately off-center so the halo lands inside one octant —
	// a box-centered halo is symmetric under the usual 2×2×2 process grid
	// and would not stress the balancer at all.
	Center [3]float64
	// ScaleRad is the Plummer scale radius a in grid cells (default N/6).
	// Particle radii are drawn from the Plummer mass profile
	// M(<r)/M = r³/(r²+a²)^{3/2} and truncated at 4a.
	//
	// The defaults are deliberately the steepest halo that still respects
	// the overload drift contract on the reference schedules (z = 3 → 1 in
	// ≥ 6 steps): the cold halo collapses, and the per-step particle drift
	// must stay within the ~1-cell margin the field ghost and overload
	// shell budget for. A much deeper or more massive halo (the old
	// N/16-scale default) slingshots core particles many cells per step;
	// wide uniform slabs mask that (slab + 2·ghost ≥ N covers every cell),
	// but any narrower rebalanced slab faults on the excursion.
	ScaleRad float64
}

func (o ClusteredOptions) withDefaults(n [3]int) ClusteredOptions {
	if o.HaloFrac == 0 {
		o.HaloFrac = 0.4
	}
	if o.Center == [3]float64{} {
		o.Center = [3]float64{0.25 * float64(n[0]), 0.25 * float64(n[1]), 0.25 * float64(n[2])}
	}
	if o.ScaleRad == 0 {
		o.ScaleRad = float64(n[0]) / 6
	}
	return o
}

// Validate reports configuration errors.
func (o ClusteredOptions) Validate() error {
	if o.Np < 2 {
		return fmt.Errorf("ic: need ≥2 particles per dim, got %d", o.Np)
	}
	if o.HaloFrac < 0 || o.HaloFrac > 1 {
		return fmt.Errorf("ic: halo fraction %g outside [0,1]", o.HaloFrac)
	}
	if o.ScaleRad < 0 {
		return fmt.Errorf("ic: scale radius %g negative", o.ScaleRad)
	}
	return nil
}

// plummerRadius inverts the Plummer mass profile: given u uniform in (0,1],
// returns the radius enclosing mass fraction u, truncated at 4a.
func plummerRadius(a, u float64) float64 {
	u23 := math.Cbrt(u * u)
	r := a * math.Sqrt(u23/(1-u23+1e-300))
	if r > 4*a {
		r = 4 * a
	}
	return r
}

// clusteredPos returns the deterministic position of particle id, in grid
// coordinates, already rounded to float32 (owner checks must use exactly
// the coordinates that will be stored).
func clusteredPos(id uint64, o ClusteredOptions, n [3]int, nHalo uint64) (x, y, z float32) {
	h := splitmix(o.Seed ^ splitmix(id*0x9e3779b97f4a7c15+0x7f4a7c15))
	u1 := toUniform(h)
	h = splitmix(h)
	u2 := toUniform(h)
	h = splitmix(h)
	u3 := toUniform(h)
	var p [3]float64
	if id < nHalo {
		r := plummerRadius(o.ScaleRad, u1)
		cosT := 2*u2 - 1
		sinT := math.Sqrt(1 - cosT*cosT)
		phi := 2 * math.Pi * u3
		p[0] = o.Center[0] + r*sinT*math.Cos(phi)
		p[1] = o.Center[1] + r*sinT*math.Sin(phi)
		p[2] = o.Center[2] + r*cosT
	} else {
		p[0] = u1 * float64(n[0])
		p[1] = u2 * float64(n[1])
		p[2] = u3 * float64(n[2])
	}
	for d := 0; d < 3; d++ {
		nd := float64(n[d])
		p[d] = math.Mod(math.Mod(p[d], nd)+nd, nd)
	}
	return float32(p[0]), float32(p[1]), float32(p[2])
}

// GenerateClustered fills dom.Active with the rank's share of the clustered
// realization: a cold start (zero velocities) whose only structure is the
// deliberate halo. Every rank evaluates the same deterministic per-particle
// stream and keeps the particles it owns, so the global realization is
// independent of the decomposition — uniform and rebalanced geometries see
// bit-identical particles. Collective over comm.
func GenerateClustered(c *mpi.Comm, dec *grid.Decomp, o ClusteredOptions, dom *domain.Domain) error {
	o = o.withDefaults(dec.N)
	if err := o.Validate(); err != nil {
		return err
	}
	total := uint64(o.Np) * uint64(o.Np) * uint64(o.Np)
	nHalo := uint64(o.HaloFrac * float64(total))
	me := c.Rank()
	dom.Active.Reset()
	for id := uint64(0); id < total; id++ {
		x, y, z := clusteredPos(id, o, dec.N, nHalo)
		if dec.RankOf(float64(x), float64(y), float64(z)) != me {
			continue
		}
		dom.Active.Append(x, y, z, 0, 0, 0, id)
	}
	dom.Migrate()
	return nil
}
