package ic

import (
	"math"
	"sort"
	"testing"

	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
)

func collect(t *testing.T, procs int, o Options, ng int) (x, y, z, vx []float32, id []uint64) {
	t.Helper()
	n := [3]int{ng, ng, ng}
	params := cosmology.Default()
	lp := cosmology.NewLinearPower(params, cosmology.EisensteinHuNoWiggle(params))
	err := mpi.Run(procs, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, procs)
		dom := domain.New(c, dec, 2)
		if err := Generate(c, dec, lp, o, dom); err != nil {
			t.Error(err)
			return
		}
		gx := mpi.Gather(c, 0, dom.Active.X)
		gy := mpi.Gather(c, 0, dom.Active.Y)
		gz := mpi.Gather(c, 0, dom.Active.Z)
		gvx := mpi.Gather(c, 0, dom.Active.Vx)
		gid := mpi.Gather(c, 0, dom.Active.ID)
		if c.Rank() == 0 {
			x, y, z, vx, id = gx, gy, gz, gvx, gid
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

type byID struct {
	x, y, z, vx []float32
	id          []uint64
}

func (b byID) Len() int           { return len(b.id) }
func (b byID) Less(i, j int) bool { return b.id[i] < b.id[j] }
func (b byID) Swap(i, j int) {
	b.x[i], b.x[j] = b.x[j], b.x[i]
	b.y[i], b.y[j] = b.y[j], b.y[i]
	b.z[i], b.z[j] = b.z[j], b.z[i]
	b.vx[i], b.vx[j] = b.vx[j], b.vx[i]
	b.id[i], b.id[j] = b.id[j], b.id[i]
}

func TestValidate(t *testing.T) {
	good := Options{Np: 16, BoxMpc: 100, AInit: 0.1, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		{Np: 1, BoxMpc: 100, AInit: 0.1},
		{Np: 16, BoxMpc: 0, AInit: 0.1},
		{Np: 16, BoxMpc: 100, AInit: 0.9},
	} {
		if bad.Validate() == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestParticleCountAndIDs(t *testing.T) {
	o := Options{Np: 16, BoxMpc: 128, AInit: 0.05, Seed: 42}
	x, _, _, _, id := collect(t, 4, o, 16)
	if len(x) != 16*16*16 {
		t.Fatalf("got %d particles want %d", len(x), 16*16*16)
	}
	seen := make(map[uint64]bool, len(id))
	for _, v := range id {
		if seen[v] {
			t.Fatalf("duplicate ID %d", v)
		}
		seen[v] = true
	}
}

func TestDecompositionIndependence(t *testing.T) {
	// The same seed must produce the same Universe on 1 and 8 ranks.
	o := Options{Np: 16, BoxMpc: 200, AInit: 0.1, Seed: 7}
	x1, y1, z1, v1, id1 := collect(t, 1, o, 16)
	x8, y8, z8, v8, id8 := collect(t, 8, o, 16)
	sort.Sort(byID{x1, y1, z1, v1, id1})
	sort.Sort(byID{x8, y8, z8, v8, id8})
	if len(id1) != len(id8) {
		t.Fatalf("counts differ: %d vs %d", len(id1), len(id8))
	}
	for i := range id1 {
		if id1[i] != id8[i] {
			t.Fatalf("ID order differs at %d", i)
		}
		if d := math.Abs(float64(x1[i] - x8[i])); d > 1e-4 {
			t.Fatalf("x differs for ID %d: %g vs %g", id1[i], x1[i], x8[i])
		}
		if math.Abs(float64(y1[i]-y8[i])) > 1e-4 || math.Abs(float64(z1[i]-z8[i])) > 1e-4 {
			t.Fatalf("pos differs for ID %d", id1[i])
		}
		if math.Abs(float64(v1[i]-v8[i])) > 1e-4*(math.Abs(float64(v1[i]))+1e-3) {
			t.Fatalf("vx differs for ID %d: %g vs %g", id1[i], v1[i], v8[i])
		}
	}
}

func TestSeedChangesRealization(t *testing.T) {
	oA := Options{Np: 8, BoxMpc: 100, AInit: 0.1, Seed: 1}
	oB := Options{Np: 8, BoxMpc: 100, AInit: 0.1, Seed: 2}
	xA, _, _, _, idA := collect(t, 1, oA, 8)
	xB, _, _, _, idB := collect(t, 1, oB, 8)
	sort.Sort(byID{xA, make([]float32, len(xA)), make([]float32, len(xA)), make([]float32, len(xA)), idA})
	sort.Sort(byID{xB, make([]float32, len(xB)), make([]float32, len(xB)), make([]float32, len(xB)), idB})
	same := 0
	for i := range xA {
		if xA[i] == xB[i] {
			same++
		}
	}
	if same == len(xA) {
		t.Error("different seeds produced identical positions")
	}
}

func TestDisplacementVariance(t *testing.T) {
	// The Zel'dovich displacement variance is σ_Ψ² = D²·(1/6π²)∫P(k)dk per
	// component (top-hat-free integral); with a finite box and grid the
	// integral acquires an infrared cutoff at the fundamental mode and an
	// ultraviolet cutoff near the Nyquist frequency. Check the measured
	// variance against the band-limited integral within sampling error.
	ng, box := 32, 400.0
	aInit := 0.1
	o := Options{Np: 32, BoxMpc: box, AInit: aInit, Seed: 3}
	params := cosmology.Default()
	lp := cosmology.NewLinearPower(params, cosmology.EisensteinHuNoWiggle(params))
	x, y, z, _, _ := collect(t, 2, o, ng)

	// Reconstruct displacements from positions (lattice spacing 1 cell).
	step := float64(ng) / 32
	var sum2 float64
	n := len(x)
	for i := 0; i < n; i++ {
		// Nearest lattice site (node lattice; displacements ≪ cell here).
		qx := math.Round(float64(x[i])/step) * step
		dx := float64(x[i]) - qx
		// Only use the x-displacement; wrap across the periodic edge.
		if dx > float64(ng)/2 {
			dx -= float64(ng)
		}
		if dx < -float64(ng)/2 {
			dx += float64(ng)
		}
		sum2 += dx * dx
	}
	_, _ = y, z
	measured := sum2 / float64(n) // grid-cell² units
	cell := box / float64(ng)
	measuredMpc := measured * cell * cell

	d := lp.Gfac.D(aInit)
	kMin := 2 * math.Pi / box
	kNyq := math.Pi / cell
	nInt := 4000
	var integ float64
	for j := 0; j < nInt; j++ {
		k := kMin + (kNyq-kMin)*(float64(j)+0.5)/float64(nInt)
		integ += lp.P(k) * (kNyq - kMin) / float64(nInt)
	}
	want := d * d * integ / (6 * math.Pi * math.Pi)
	if math.Abs(measuredMpc-want) > 0.35*want {
		t.Errorf("displacement variance %g (Mpc/h)² want ≈%g", measuredMpc, want)
	}
}

func TestZeroPowerGivesLattice(t *testing.T) {
	// A spectrum with zero amplitude leaves particles exactly on the
	// lattice with zero momentum.
	params := cosmology.Default()
	params.Sigma8 = 1e-12
	lp := cosmology.NewLinearPower(params, cosmology.BBKS(params))
	n := [3]int{8, 8, 8}
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 1)
		dom := domain.New(c, dec, 2)
		o := Options{Np: 8, BoxMpc: 100, AInit: 0.1, Seed: 5}
		if err := Generate(c, dec, lp, o, dom); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < dom.Active.Len(); i++ {
			fx := math.Mod(float64(dom.Active.X[i]), 1)
			if fx > 0.5 {
				fx = 1 - fx
			}
			if fx > 1e-3 {
				t.Errorf("particle %d off-lattice: x=%g", i, dom.Active.X[i])
				return
			}
			if math.Abs(float64(dom.Active.Vx[i])) > 1e-6 {
				t.Errorf("particle %d has momentum %g", i, dom.Active.Vx[i])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFixedAmplitudeVarianceSuppression(t *testing.T) {
	// Fixed-amplitude ICs remove the modulus fluctuations; the measured
	// displacement variance across seeds should scatter far less.
	ng := 16
	params := cosmology.Default()
	lp := cosmology.NewLinearPower(params, cosmology.BBKS(params))
	variance := func(fixed bool, seed uint64) float64 {
		var out float64
		err := mpi.Run(1, func(c *mpi.Comm) {
			dec := grid.NewDecomp([3]int{ng, ng, ng}, 1)
			dom := domain.New(c, dec, 2)
			o := Options{Np: ng, BoxMpc: 150, AInit: 0.1, Seed: seed, Fixed: fixed}
			if err := Generate(c, dec, lp, o, dom); err != nil {
				t.Error(err)
				return
			}
			var s float64
			for i := 0; i < dom.Active.Len(); i++ {
				d := float64(dom.Active.Vx[i])
				s += d * d
			}
			out = s / float64(dom.Active.Len())
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	spread := func(fixed bool) float64 {
		var vals []float64
		for s := uint64(1); s <= 6; s++ {
			vals = append(vals, variance(fixed, s))
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var sd float64
		for _, v := range vals {
			sd += (v - mean) * (v - mean)
		}
		return math.Sqrt(sd/float64(len(vals))) / mean
	}
	sg := spread(false)
	sf := spread(true)
	t.Logf("variance scatter across seeds: gaussian %.3f fixed %.3f", sg, sf)
	if sf >= sg {
		t.Errorf("fixed-amplitude ICs should suppress realization scatter: %g vs %g", sf, sg)
	}
}

func TestModeGaussianHermitian(t *testing.T) {
	// Hash-based draws must satisfy δ(−k) = conj(δ(k)) exactly.
	n := 16
	for _, m := range [][3]int{{1, 2, 3}, {5, 0, 2}, {15, 15, 1}, {3, 9, 14}} {
		re1, im1 := modeGaussian(9, m[0], m[1], m[2], n, false)
		re2, im2 := modeGaussian(9, (n-m[0])%n, (n-m[1])%n, (n-m[2])%n, n, false)
		if re1 != re2 || im1 != -im2 {
			t.Errorf("mode %v: (%g,%g) vs conj (%g,%g)", m, re1, im1, re2, im2)
		}
	}
	// Self-conjugate modes are real.
	for _, m := range [][3]int{{0, 0, 8}, {8, 8, 8}, {0, 8, 0}} {
		_, im := modeGaussian(9, m[0], m[1], m[2], n, false)
		if im != 0 {
			t.Errorf("self-conjugate mode %v has imaginary part %g", m, im)
		}
	}
}

func TestModeGaussianUnitVariance(t *testing.T) {
	// Across many modes, <re²+im²> ≈ 1.
	n := 64
	var sum float64
	count := 0
	for mx := 1; mx < 32; mx += 2 {
		for my := 1; my < 32; my += 3 {
			for mz := 1; mz < 32; mz += 3 {
				re, im := modeGaussian(123, mx, my, mz, n, false)
				sum += re*re + im*im
				count++
			}
		}
	}
	mean := sum / float64(count)
	if math.Abs(mean-1) > 0.1 {
		t.Errorf("mode variance %g want ≈1 over %d modes", mean, count)
	}
}
