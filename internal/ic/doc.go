// Package ic generates Zel'dovich initial conditions: a Gaussian random
// density field drawn from a linear power spectrum, converted to a
// displacement field in k-space, applied to a uniform particle lattice.
// Mode amplitudes come from a deterministic per-mode hash, so the same
// seed produces the same Universe on any rank count and any decomposition.
// Seed-era package; runs once per simulation (cold path), so it uses the
// one-shot redistribution rather than persistent plans.
package ic
