package ic

import (
	"math"
	"sort"
	"testing"

	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
)

func collectClustered(t *testing.T, procs int, o ClusteredOptions, ng int) (x, y, z []float32, id []uint64) {
	t.Helper()
	n := [3]int{ng, ng, ng}
	err := mpi.Run(procs, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, procs)
		dom := domain.New(c, dec, 2)
		if err := GenerateClustered(c, dec, o, dom); err != nil {
			t.Error(err)
			return
		}
		gx := mpi.Gather(c, 0, dom.Active.X)
		gy := mpi.Gather(c, 0, dom.Active.Y)
		gz := mpi.Gather(c, 0, dom.Active.Z)
		gid := mpi.Gather(c, 0, dom.Active.ID)
		if c.Rank() == 0 {
			x, y, z, id = gx, gy, gz, gid
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

// TestClusteredDensityProfile is the density-profile sanity check: a pure
// Plummer halo must reproduce the analytic enclosed-mass fractions
// M(<a)/M = 2^{-3/2} and M(<2a)/M = 8·5^{-3/2} within sampling noise.
func TestClusteredDensityProfile(t *testing.T) {
	const ng = 64
	o := ClusteredOptions{Np: 28, Seed: 5, HaloFrac: 1, ScaleRad: 4}
	x, y, z, id := collectClustered(t, 1, o, ng)
	n := len(x)
	if n != 28*28*28 {
		t.Fatalf("got %d particles, want %d", n, 28*28*28)
	}
	_ = id
	cx, cy, cz := 0.25*ng, 0.25*ng, 0.25*ng
	a := o.ScaleRad
	countIn := func(rad float64) int {
		k := 0
		for i := range x {
			dx := float64(x[i]) - cx
			dy := float64(y[i]) - cy
			dz := float64(z[i]) - cz
			if dx*dx+dy*dy+dz*dz <= rad*rad {
				k++
			}
		}
		return k
	}
	checks := []struct {
		rad  float64
		frac float64
	}{
		{a, 1 / (2 * math.Sqrt2)},       // ≈ 0.3536
		{2 * a, 8 / math.Pow(5, 1.5)},   // ≈ 0.7155
		{3 * a, 27 / math.Pow(10, 1.5)}, // ≈ 0.8538
		{4.0001 * a, 1},                 // truncation radius
	}
	for _, ck := range checks {
		got := float64(countIn(ck.rad)) / float64(n)
		if math.Abs(got-ck.frac) > 0.02 {
			t.Errorf("enclosed fraction at r=%g: %.4f, want %.4f ± 0.02", ck.rad, got, ck.frac)
		}
	}
}

// TestClusteredDecompositionIndependence: the realization must be
// bit-identical across rank counts and across non-uniform cut geometries —
// the property that lets a rebalanced run share the static run's universe.
func TestClusteredDecompositionIndependence(t *testing.T) {
	const ng = 32
	o := ClusteredOptions{Np: 12, Seed: 9}
	x1, y1, z1, id1 := collectClustered(t, 1, o, ng)
	x8, y8, z8, id8 := collectClustered(t, 8, o, ng)
	if len(id1) != len(id8) || len(id1) != 12*12*12 {
		t.Fatalf("counts differ: %d vs %d", len(id1), len(id8))
	}
	v1 := make([]float32, len(id1))
	v8 := make([]float32, len(id8))
	sort.Sort(byID{x1, y1, z1, v1, id1})
	sort.Sort(byID{x8, y8, z8, v8, id8})
	for i := range id1 {
		if id1[i] != id8[i] {
			t.Fatalf("ID order differs at %d", i)
		}
		if math.Float32bits(x1[i]) != math.Float32bits(x8[i]) ||
			math.Float32bits(y1[i]) != math.Float32bits(y8[i]) ||
			math.Float32bits(z1[i]) != math.Float32bits(z8[i]) {
			t.Fatalf("position differs for ID %d", id1[i])
		}
	}
	// The halo must concentrate particles: the octant around the default
	// center holds well over its uniform 1/8 share. With the default 0.4
	// halo fraction and a = N/6 scale radius, roughly 60% of the halo's
	// mass sits inside the octant plus the background's 0.075 — about 0.33.
	inOctant := 0
	for i := range x1 {
		if x1[i] < ng/2 && y1[i] < ng/2 && z1[i] < ng/2 {
			inOctant++
		}
	}
	if frac := float64(inOctant) / float64(len(x1)); frac < 0.3 {
		t.Fatalf("halo octant holds only %.2f of particles; IC not clustered", frac)
	}
}

func TestClusteredValidate(t *testing.T) {
	for _, bad := range []ClusteredOptions{
		{Np: 1},
		{Np: 8, HaloFrac: 1.5},
		{Np: 8, ScaleRad: -1},
	} {
		n := [3]int{16, 16, 16}
		if bad.withDefaults(n).Validate() == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}
