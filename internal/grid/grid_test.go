package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hacc/internal/mpi"
)

func TestDecompPartition(t *testing.T) {
	n := [3]int{16, 12, 8}
	d := NewDecomp(n, 6, 3, 2, 1)
	total := 0
	for r := 0; r < 6; r++ {
		total += d.Box(r).Count()
	}
	if total != 16*12*8 {
		t.Errorf("boxes cover %d cells, want %d", total, 16*12*8)
	}
}

func TestRankOfConsistent(t *testing.T) {
	n := [3]int{10, 10, 10}
	d := NewDecomp(n, 8, 2, 2, 2)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			for z := 0; z < 10; z++ {
				r := d.RankOf(float64(x), float64(y), float64(z))
				if !d.Box(r).Contains(x, y, z) {
					t.Fatalf("RankOf(%d,%d,%d)=%d but box %v", x, y, z, r, d.Box(r))
				}
			}
		}
	}
	// Periodic wrapping of positions.
	if d.RankOf(-1, 0, 0) != d.RankOf(9, 0, 0) {
		t.Error("negative positions must wrap")
	}
	if d.RankOf(10.5, 3, 3) != d.RankOf(0.5, 3, 3) {
		t.Error("positions past the box must wrap")
	}
}

func TestRankOfProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := [3]int{8 + rng.Intn(9), 8 + rng.Intn(9), 8 + rng.Intn(9)}
		sizes := []int{1, 2, 3, 4, 6, 8}
		p := sizes[rng.Intn(len(sizes))]
		d := NewDecomp(n, p)
		for i := 0; i < 50; i++ {
			x := rng.Float64() * float64(n[0])
			y := rng.Float64() * float64(n[1])
			z := rng.Float64() * float64(n[2])
			r := d.RankOf(x, y, z)
			if !d.Box(r).Contains(int(x), int(y), int(z)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldIndexOwnedAndGhost(t *testing.T) {
	n := [3]int{8, 8, 8}
	box := NewDecomp(n, 2, 2, 1, 1).Box(0) // x in [0,4)
	f := NewField(n, box, 2)
	// Owned cells round trip through Set/At.
	f.Set(3, 7, 0, 42)
	if f.At(3, 7, 0) != 42 {
		t.Error("owned set/get failed")
	}
	// Ghost coordinates wrap: x=7 is the left ghost (periodic image of -1).
	f.Set(7, 0, 0, 7)
	if f.At(-1, 0, 0) != 7 {
		t.Error("ghost alias -1 vs 7 differ")
	}
	// Owned() excludes ghosts.
	owned := f.Owned()
	if len(owned) != 4*8*8 {
		t.Errorf("owned size %d", len(owned))
	}
	var s float64
	for _, v := range owned {
		s += v
	}
	if s != 42 {
		t.Errorf("owned sum %g (ghost leaked in?)", s)
	}
}

func TestOwnedRoundTrip(t *testing.T) {
	n := [3]int{6, 5, 4}
	box := NewDecomp(n, 1).Box(0)
	f := NewField(n, box, 1)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 6*5*4)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	f.SetOwned(vals)
	got := f.Owned()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
	// OwnedInto must agree, reuse a big-enough buffer without reallocating,
	// and grow an undersized one.
	big := make([]float64, len(vals)+7)
	into := f.OwnedInto(big)
	if &into[0] != &big[0] || len(into) != len(vals) {
		t.Fatal("OwnedInto did not reuse the provided buffer")
	}
	for i := range vals {
		if into[i] != vals[i] {
			t.Fatalf("OwnedInto differs at %d", i)
		}
	}
	grown := f.OwnedInto(make([]float64, 3))
	if len(grown) != len(vals) {
		t.Fatalf("OwnedInto grew to %d want %d", len(grown), len(vals))
	}
	for i := range vals {
		if grown[i] != vals[i] {
			t.Fatalf("grown OwnedInto differs at %d", i)
		}
	}
}

func TestExchangerAccumulate(t *testing.T) {
	n := [3]int{8, 8, 8}
	for _, p := range []int{1, 2, 4, 8} {
		err := mpi.Run(p, func(c *mpi.Comm) {
			d := NewDecomp(n, p)
			f := NewField(n, d.Box(c.Rank()), 2)
			ex := NewExchanger(c, d, f)
			// Write 1 into every extended cell (owned + ghosts); after
			// accumulation each owned cell must hold 1 + the number of
			// ghost images of that cell across all ranks' halos.
			f.Fill(1)
			ex.Accumulate(f)
			// Brute-force reference count over every rank's halo.
			wantCount := make([]float64, n[0]*n[1]*n[2])
			for i := range wantCount {
				wantCount[i] = 1
			}
			for r := 0; r < p; r++ {
				b := d.Box(r)
				for lx := -2; lx < b.Size(0)+2; lx++ {
					for ly := -2; ly < b.Size(1)+2; ly++ {
						for lz := -2; lz < b.Size(2)+2; lz++ {
							if lx >= 0 && lx < b.Size(0) && ly >= 0 && ly < b.Size(1) && lz >= 0 && lz < b.Size(2) {
								continue
							}
							cx := wrap(b.Lo[0]+lx, n[0])
							cy := wrap(b.Lo[1]+ly, n[1])
							cz := wrap(b.Lo[2]+lz, n[2])
							wantCount[(cx*n[1]+cy)*n[2]+cz]++
						}
					}
				}
			}
			bx := f.Box
			for x := bx.Lo[0]; x < bx.Hi[0]; x++ {
				for y := bx.Lo[1]; y < bx.Hi[1]; y++ {
					for z := bx.Lo[2]; z < bx.Hi[2]; z++ {
						want := wantCount[(x*n[1]+y)*n[2]+z]
						if got := f.At(x, y, z); math.Abs(got-want) > 1e-12 {
							t.Errorf("p=%d rank=%d cell (%d,%d,%d): %g != %g", p, c.Rank(), x, y, z, got, want)
							return
						}
					}
				}
			}
			tot := mpi.AllReduce(c, []float64{f.TotalOwned()}, mpi.SumF64)
			extVol := 0.0
			for r := 0; r < p; r++ {
				b := d.Box(r)
				extVol += float64((b.Size(0) + 4) * (b.Size(1) + 4) * (b.Size(2) + 4))
			}
			if math.Abs(tot[0]-extVol) > 1e-9 {
				t.Errorf("p=%d: mass %g != extended volume %g", p, tot[0], extVol)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExchangerFill(t *testing.T) {
	n := [3]int{8, 8, 8}
	for _, p := range []int{1, 2, 4, 8} {
		err := mpi.Run(p, func(c *mpi.Comm) {
			d := NewDecomp(n, p)
			f := NewField(n, d.Box(c.Rank()), 2)
			ex := NewExchanger(c, d, f)
			// Unique global pattern: v(x,y,z) = x + 10y + 100z.
			b := f.Box
			for x := b.Lo[0]; x < b.Hi[0]; x++ {
				for y := b.Lo[1]; y < b.Hi[1]; y++ {
					for z := b.Lo[2]; z < b.Hi[2]; z++ {
						f.Set(x, y, z, float64(x+10*y+100*z))
					}
				}
			}
			ex.Fill(f)
			// Every extended cell must hold the canonical value.
			g := f.Ghost
			for lx := -g; lx < f.size[0]+g; lx++ {
				for ly := -g; ly < f.size[1]+g; ly++ {
					for lz := -g; lz < f.size[2]+g; lz++ {
						cx := wrap(b.Lo[0]+lx, n[0])
						cy := wrap(b.Lo[1]+ly, n[1])
						cz := wrap(b.Lo[2]+lz, n[2])
						want := float64(cx + 10*cy + 100*cz)
						got := f.Data[((lx+g)*f.ext[1]+ly+g)*f.ext[2]+lz+g]
						if got != want {
							t.Errorf("p=%d rank=%d ext (%d,%d,%d): got %g want %g",
								p, c.Rank(), lx, ly, lz, got, want)
							return
						}
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDepositMassConservation(t *testing.T) {
	n := [3]int{8, 8, 8}
	for _, p := range []int{1, 4} {
		err := mpi.Run(p, func(c *mpi.Comm) {
			d := NewDecomp(n, p)
			b := d.Box(c.Rank())
			f := NewField(n, b, 1)
			ex := NewExchanger(c, d, f)
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			// 100 particles per rank inside the owned box, including near edges.
			np := 100
			xs := make([]float32, np)
			ys := make([]float32, np)
			zs := make([]float32, np)
			for i := 0; i < np; i++ {
				xs[i] = float32(float64(b.Lo[0]) + rng.Float64()*float64(b.Size(0)))
				ys[i] = float32(float64(b.Lo[1]) + rng.Float64()*float64(b.Size(1)))
				zs[i] = float32(float64(b.Lo[2]) + rng.Float64()*float64(b.Size(2)))
			}
			DepositCIC(f, xs, ys, zs, 1.5)
			ex.Accumulate(f)
			tot := mpi.AllReduce(c, []float64{f.TotalOwned()}, mpi.SumF64)
			want := 1.5 * float64(np*p)
			if math.Abs(tot[0]-want) > 1e-6*want {
				t.Errorf("p=%d: deposited mass %g want %g", p, tot[0], want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDepositMatchesSerial(t *testing.T) {
	// Parallel deposit (4 ranks) must reproduce the single-rank field.
	n := [3]int{8, 8, 8}
	rng := rand.New(rand.NewSource(5))
	np := 200
	xs := make([]float32, np)
	ys := make([]float32, np)
	zs := make([]float32, np)
	for i := 0; i < np; i++ {
		xs[i] = float32(rng.Float64() * 8)
		ys[i] = float32(rng.Float64() * 8)
		zs[i] = float32(rng.Float64() * 8)
	}
	// Serial reference.
	ds := NewDecomp(n, 1)
	ref := NewField(n, ds.Box(0), 1)
	err := mpi.Run(1, func(c *mpi.Comm) {
		ex := NewExchanger(c, ds, ref)
		DepositCIC(ref, xs, ys, zs, 1)
		ex.Accumulate(ref)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Parallel: each rank deposits only the particles in its box.
	got := make([]float64, 8*8*8)
	err = mpi.Run(4, func(c *mpi.Comm) {
		d := NewDecomp(n, 4)
		b := d.Box(c.Rank())
		f := NewField(n, b, 1)
		ex := NewExchanger(c, d, f)
		var mx, my, mz []float32
		for i := 0; i < np; i++ {
			if b.Contains(int(xs[i]), int(ys[i]), int(zs[i])) {
				mx = append(mx, xs[i])
				my = append(my, ys[i])
				mz = append(mz, zs[i])
			}
		}
		DepositCIC(f, mx, my, mz, 1)
		ex.Accumulate(f)
		local := make([]float64, 8*8*8)
		for x := b.Lo[0]; x < b.Hi[0]; x++ {
			for y := b.Lo[1]; y < b.Hi[1]; y++ {
				for z := b.Lo[2]; z < b.Hi[2]; z++ {
					local[(x*8+y)*8+z] = f.At(x, y, z)
				}
			}
		}
		sum := mpi.AllReduce(c, local, mpi.SumF64)
		if c.Rank() == 0 {
			copy(got, sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				want := ref.At(x, y, z)
				if math.Abs(got[(x*8+y)*8+z]-want) > 1e-9 {
					t.Fatalf("cell (%d,%d,%d): parallel %g serial %g",
						x, y, z, got[(x*8+y)*8+z], want)
				}
			}
		}
	}
}

func TestInterpConstantField(t *testing.T) {
	// CIC interpolation of a constant field returns the constant exactly,
	// anywhere (partition of unity).
	n := [3]int{8, 8, 8}
	d := NewDecomp(n, 1)
	f := NewField(n, d.Box(0), 2)
	f.Fill(3.25)
	rng := rand.New(rand.NewSource(2))
	np := 100
	xs := make([]float32, np)
	ys := make([]float32, np)
	zs := make([]float32, np)
	out := make([]float32, np)
	for i := 0; i < np; i++ {
		xs[i] = float32(rng.Float64()*12 - 2) // includes ghost region
		ys[i] = float32(rng.Float64() * 8)
		zs[i] = float32(rng.Float64() * 8)
	}
	InterpCIC(f, xs, ys, zs, out, 2)
	for i, v := range out {
		if math.Abs(float64(v)-6.5) > 1e-5 {
			t.Fatalf("particle %d: interp %g want 6.5", i, v)
		}
	}
}

func TestInterpLinearField(t *testing.T) {
	// CIC reproduces linear fields exactly at interior points.
	n := [3]int{16, 8, 8}
	d := NewDecomp(n, 1)
	f := NewField(n, d.Box(0), 1)
	for x := 0; x < 16; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				f.Set(x, y, z, float64(x))
			}
		}
	}
	xs := []float32{2.5, 7.25, 10.75}
	ys := []float32{3, 3, 3}
	zs := []float32{4, 4, 4}
	out := make([]float32, 3)
	InterpCIC(f, xs, ys, zs, out, 1)
	for i, want := range []float64{2.5, 7.25, 10.75} {
		if math.Abs(float64(out[i])-want) > 1e-5 {
			t.Errorf("linear interp %d: got %g want %g", i, out[i], want)
		}
	}
}

func TestDepositInterpAdjointProperty(t *testing.T) {
	// <deposit(p), field> == <mass, interp(field at p)>: CIC deposit and
	// interpolation are adjoint, which is what makes PM momentum-conserving.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := [3]int{8, 8, 8}
		d := NewDecomp(n, 1)
		fld := NewField(n, d.Box(0), 1)
		// Random field values on owned cells.
		vals := make([]float64, 512)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		fld.SetOwned(vals)
		// One random particle.
		xs := []float32{float32(rng.Float64() * 8)}
		ys := []float32{float32(rng.Float64() * 8)}
		zs := []float32{float32(rng.Float64() * 8)}
		out := make([]float32, 1)
		InterpCIC(fld, xs, ys, zs, out, 1)
		// deposit onto zero field, then dot with vals.
		dep := NewField(n, d.Box(0), 1)
		DepositCIC(dep, xs, ys, zs, 1)
		// fold ghosts (single rank: local wrap only).
		var dot float64
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				for z := 0; z < 8; z++ {
					dot += dep.At(x, y, z) * fld.At(x, y, z)
				}
			}
		}
		// Ghost spill: single rank with ghost=1; cells deposit directly via
		// owned-preferred indexing, so no fold needed.
		return math.Abs(dot-float64(out[0])) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// oldRankOf is the pre-cuts closed-form owner computation for the uniform
// chunk map, retained as the oracle for the cut-based RankOf.
func oldRankOf(d *Decomp, x, y, z float64) int {
	g := [3]float64{x, y, z}
	var co [3]int
	for i := 0; i < 3; i++ {
		n := d.N[i]
		v := int(g[i])
		v = ((v % n) + n) % n
		c := (v*d.Dims[i] + d.Dims[i] - 1) / n
		for c*n/d.Dims[i] > v {
			c--
		}
		for (c+1)*n/d.Dims[i] <= v {
			c++
		}
		co[i] = c
	}
	return (co[0]*d.Dims[1]+co[1])*d.Dims[2] + co[2]
}

// TestUniformCutsMatchLegacy pins the cuts refactor: the default uniform
// decomposition must produce bit-identical boxes and owner assignments to
// the original chunk-formula code.
func TestUniformCutsMatchLegacy(t *testing.T) {
	for _, tc := range []struct {
		n    [3]int
		size int
		dims []int
	}{
		{[3]int{16, 12, 8}, 6, []int{3, 2, 1}},
		{[3]int{32, 32, 32}, 8, nil},
		{[3]int{17, 19, 23}, 12, []int{3, 2, 2}},
	} {
		d := NewDecomp(tc.n, tc.size, tc.dims...)
		var dims [3]int
		copy(dims[:], d.Dims[:])
		lay := d.Layout()
		for r := 0; r < tc.size; r++ {
			cz := r % dims[2]
			cy := (r / dims[2]) % dims[1]
			cx := r / (dims[1] * dims[2])
			want := [3][2]int{
				{cx * tc.n[0] / dims[0], (cx + 1) * tc.n[0] / dims[0]},
				{cy * tc.n[1] / dims[1], (cy + 1) * tc.n[1] / dims[1]},
				{cz * tc.n[2] / dims[2], (cz + 1) * tc.n[2] / dims[2]},
			}
			b := lay.Boxes[r]
			for i := 0; i < 3; i++ {
				if b.Lo[i] != want[i][0] || b.Hi[i] != want[i][1] {
					t.Fatalf("n=%v rank %d axis %d: box [%d,%d) want [%d,%d)",
						tc.n, r, i, b.Lo[i], b.Hi[i], want[i][0], want[i][1])
				}
			}
		}
		rng := rand.New(rand.NewSource(7))
		for k := 0; k < 2000; k++ {
			x := (rng.Float64()*3 - 1) * float64(tc.n[0])
			y := (rng.Float64()*3 - 1) * float64(tc.n[1])
			z := (rng.Float64()*3 - 1) * float64(tc.n[2])
			if got, want := d.RankOf(x, y, z), oldRankOf(d, x, y, z); got != want {
				t.Fatalf("RankOf(%g,%g,%g)=%d, legacy %d", x, y, z, got, want)
			}
		}
	}
}

// TestNonUniformCuts checks that explicit cut arrays produce a covering,
// disjoint box set whose membership agrees with RankOf.
func TestNonUniformCuts(t *testing.T) {
	n := [3]int{32, 32, 32}
	dims := [3]int{2, 2, 2}
	cuts := [3][]int{{0, 9, 32}, {0, 20, 32}, {0, 5, 32}}
	d := NewDecompCuts(n, dims, cuts)
	total := 0
	for r := 0; r < 8; r++ {
		total += d.Box(r).Count()
	}
	if total != 32*32*32 {
		t.Fatalf("boxes cover %d cells, want %d", total, 32*32*32)
	}
	got := d.Cuts()
	for i := 0; i < 3; i++ {
		for c := range cuts[i] {
			if got[i][c] != cuts[i][c] {
				t.Fatalf("Cuts()[%d]=%v, want %v", i, got[i], cuts[i])
			}
		}
	}
	for x := 0; x < n[0]; x++ {
		for y := 0; y < n[1]; y += 3 {
			for z := 0; z < n[2]; z += 5 {
				r := d.RankOf(float64(x), float64(y), float64(z))
				b := d.Box(r)
				if x < b.Lo[0] || x >= b.Hi[0] || y < b.Lo[1] || y >= b.Hi[1] || z < b.Lo[2] || z >= b.Hi[2] {
					t.Fatalf("cell (%d,%d,%d) assigned to rank %d box %v", x, y, z, r, b)
				}
			}
		}
	}
	// Wrapped coordinates map to the same owner as their canonical alias.
	if d.RankOf(-1, 35, 64.5) != d.RankOf(31, 3, 0.5) {
		t.Fatal("periodic wrap changed the owner")
	}
}

func TestNewDecompCutsValidation(t *testing.T) {
	n := [3]int{16, 16, 16}
	dims := [3]int{2, 1, 1}
	for _, bad := range [][3][]int{
		{{0, 8}, {0, 16}, {0, 16}},      // wrong length
		{{1, 8, 16}, {0, 16}, {0, 16}},  // doesn't start at 0
		{{0, 8, 15}, {0, 16}, {0, 16}},  // doesn't end at n
		{{0, 0, 16}, {0, 16}, {0, 16}},  // empty interval
		{{0, 16, 16}, {0, 16}, {0, 16}}, // empty interval at end
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cuts %v: expected panic", bad)
				}
			}()
			NewDecompCuts(n, dims, bad)
		}()
	}
}
