package grid

import (
	"fmt"

	"hacc/internal/mpi"
	"hacc/internal/pfft"
)

// Decomp is the regular (possibly non-cubic) 3-D block decomposition of an
// N[0]×N[1]×N[2] periodic grid over a Dims[0]×Dims[1]×Dims[2] process grid.
type Decomp struct {
	N    [3]int
	Dims [3]int
	lay  *pfft.Layout
}

// NewDecomp builds a decomposition for the given communicator size with a
// balanced process grid, or with explicit dims when provided.
func NewDecomp(n [3]int, size int, dims ...int) *Decomp {
	var d [3]int
	if len(dims) == 3 {
		d = [3]int{dims[0], dims[1], dims[2]}
	} else {
		b := mpi.BalancedDims(size, 3)
		d = [3]int{b[0], b[1], b[2]}
	}
	if d[0]*d[1]*d[2] != size {
		panic(fmt.Sprintf("grid: process grid %v != size %d", d, size))
	}
	for i := 0; i < 3; i++ {
		if d[i] > n[i] {
			panic(fmt.Sprintf("grid: process grid %v exceeds grid %v", d, n))
		}
	}
	return &Decomp{N: n, Dims: d, lay: pfft.Block3D(n, d)}
}

// Layout returns the block layout (one box per rank, z fastest storage).
func (d *Decomp) Layout() *pfft.Layout { return d.lay }

// Box returns the box owned by a rank.
func (d *Decomp) Box(rank int) pfft.Box { return d.lay.Boxes[rank] }

// NumRanks returns the total number of ranks in the decomposition.
func (d *Decomp) NumRanks() int { return len(d.lay.Boxes) }

// RankOf returns the owner rank of the (periodically wrapped) position.
func (d *Decomp) RankOf(x, y, z float64) int {
	g := [3]float64{x, y, z}
	var co [3]int
	for i := 0; i < 3; i++ {
		n := d.N[i]
		v := int(g[i])
		v = ((v % n) + n) % n
		// Process coordinate from the chunk map: chunks are i*n/p..(i+1)n/p,
		// so the owner is the largest c with c*n/p <= v.
		c := (v*d.Dims[i] + d.Dims[i] - 1) / n
		for c*n/d.Dims[i] > v {
			c--
		}
		for (c+1)*n/d.Dims[i] <= v {
			c++
		}
		co[i] = c
	}
	return (co[0]*d.Dims[1]+co[1])*d.Dims[2] + co[2]
}

// Field is one rank's block of a distributed scalar field, with ghost cells
// of width Ghost on every side. Storage is row-major (x, y, z) with z
// fastest, including ghosts.
type Field struct {
	N     [3]int
	Box   pfft.Box
	Ghost int
	Data  []float64

	size [3]int // owned sizes
	ext  [3]int // extended sizes (owned + 2*ghost)
}

// NewField allocates a zeroed field for the given owned box.
func NewField(n [3]int, box pfft.Box, ghost int) *Field {
	f := &Field{N: n, Box: box, Ghost: ghost}
	for i := 0; i < 3; i++ {
		f.size[i] = box.Size(i)
		f.ext[i] = f.size[i] + 2*ghost
		if ghost >= n[i] {
			panic(fmt.Sprintf("grid: ghost width %d too large for grid %v", ghost, n))
		}
	}
	f.Data = make([]float64, f.ext[0]*f.ext[1]*f.ext[2])
	return f
}

// localCoord reduces a global coordinate along one axis to a local extended
// coordinate in [-ghost, size+ghost), wrapping periodically. Owned cells are
// preferred over ghost aliases, so writes to owned coordinates always hit
// the interior even when the halo wraps onto the same rank.
func localCoord(x, lo, size, n, ghost int) int {
	d := x - lo
	dm := ((d % n) + n) % n
	switch {
	case dm < size:
		return dm
	case dm-n >= -ghost:
		return dm - n
	case dm < size+ghost:
		return dm
	}
	panic(fmt.Sprintf("grid: coordinate %d outside box [%d,%d)+ghost %d (n=%d)", x, lo, lo+size, ghost, n))
}

// index converts global cell coordinates (possibly in the ghost halo,
// possibly wrapped across the periodic boundary) to a local storage index.
func (f *Field) index(x, y, z int) int {
	lx := localCoord(x, f.Box.Lo[0], f.size[0], f.N[0], f.Ghost) + f.Ghost
	ly := localCoord(y, f.Box.Lo[1], f.size[1], f.N[1], f.Ghost) + f.Ghost
	lz := localCoord(z, f.Box.Lo[2], f.size[2], f.N[2], f.Ghost) + f.Ghost
	return (lx*f.ext[1]+ly)*f.ext[2] + lz
}

// At returns the value at global cell coordinates.
func (f *Field) At(x, y, z int) float64 { return f.Data[f.index(x, y, z)] }

// Set stores a value at global cell coordinates.
func (f *Field) Set(x, y, z int, v float64) { f.Data[f.index(x, y, z)] = v }

// Add accumulates into the cell at global coordinates.
func (f *Field) Add(x, y, z int, v float64) { f.Data[f.index(x, y, z)] += v }

// Fill sets every element (including ghosts) to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Owned extracts the interior (owned) region as a contiguous array in the
// canonical block-layout order (z fastest), ready for pfft.Redistribute.
func (f *Field) Owned() []float64 {
	return f.OwnedInto(nil)
}

// OwnedInto is Owned with a caller-provided destination: dst is grown only
// if its capacity is insufficient and returned at the owned-region length,
// so a buffer reused across calls makes the block↔pencil boundary
// allocation-free (SetOwned is already the non-allocating inverse).
func (f *Field) OwnedInto(dst []float64) []float64 {
	n := f.size[0] * f.size[1] * f.size[2]
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	for x := 0; x < f.size[0]; x++ {
		for y := 0; y < f.size[1]; y++ {
			base := ((x+f.Ghost)*f.ext[1]+y+f.Ghost)*f.ext[2] + f.Ghost
			copy(dst[k:k+f.size[2]], f.Data[base:base+f.size[2]])
			k += f.size[2]
		}
	}
	return dst
}

// SetOwned stores a contiguous owned-region array (block-layout order) back
// into the field interior; ghosts are left untouched.
func (f *Field) SetOwned(v []float64) {
	if len(v) != f.size[0]*f.size[1]*f.size[2] {
		panic(fmt.Sprintf("grid: SetOwned length %d != %d", len(v), f.size[0]*f.size[1]*f.size[2]))
	}
	k := 0
	for x := 0; x < f.size[0]; x++ {
		for y := 0; y < f.size[1]; y++ {
			base := ((x+f.Ghost)*f.ext[1]+y+f.Ghost)*f.ext[2] + f.Ghost
			copy(f.Data[base:base+f.size[2]], v[k:k+f.size[2]])
			k += f.size[2]
		}
	}
}

// ZeroGhosts clears the ghost halo.
func (f *Field) ZeroGhosts() {
	for x := 0; x < f.ext[0]; x++ {
		for y := 0; y < f.ext[1]; y++ {
			for z := 0; z < f.ext[2]; z++ {
				if x >= f.Ghost && x < f.ext[0]-f.Ghost &&
					y >= f.Ghost && y < f.ext[1]-f.Ghost &&
					z >= f.Ghost && z < f.ext[2]-f.Ghost {
					continue
				}
				f.Data[(x*f.ext[1]+y)*f.ext[2]+z] = 0
			}
		}
	}
}

// TotalOwned sums the interior cells (diagnostic).
func (f *Field) TotalOwned() float64 {
	var s float64
	for x := 0; x < f.size[0]; x++ {
		for y := 0; y < f.size[1]; y++ {
			base := ((x+f.Ghost)*f.ext[1]+y+f.Ghost)*f.ext[2] + f.Ghost
			for z := 0; z < f.size[2]; z++ {
				s += f.Data[base+z]
			}
		}
	}
	return s
}
