package grid

import (
	"fmt"

	"hacc/internal/mpi"
	"hacc/internal/pfft"
)

// Decomp is the rectilinear (possibly non-cubic, possibly non-uniform) 3-D
// block decomposition of an N[0]×N[1]×N[2] periodic grid over a
// Dims[0]×Dims[1]×Dims[2] process grid. Interval boundaries along each axis
// are explicit cut arrays, so cost-driven rebalancing can shift slab
// boundaries while everything downstream (fields, exchangers, domain plans)
// keeps working off Box/RankOf.
type Decomp struct {
	N    [3]int
	Dims [3]int
	lay  *pfft.Layout
	cuts [3][]int // cuts[i] has Dims[i]+1 ascending entries, 0..N[i]
}

// UniformCuts returns the equal-chunk cut arrays (`c*n/p` boundaries) that
// reproduce the classic uniform decomposition exactly.
func UniformCuts(n [3]int, dims [3]int) [3][]int {
	var cuts [3][]int
	for i := 0; i < 3; i++ {
		cuts[i] = make([]int, dims[i]+1)
		for c := 0; c <= dims[i]; c++ {
			cuts[i][c] = c * n[i] / dims[i]
		}
	}
	return cuts
}

// NewDecomp builds a uniform decomposition for the given communicator size
// with a balanced process grid, or with explicit dims when provided.
func NewDecomp(n [3]int, size int, dims ...int) *Decomp {
	var d [3]int
	if len(dims) == 3 {
		d = [3]int{dims[0], dims[1], dims[2]}
	} else {
		b := mpi.BalancedDims(size, 3)
		d = [3]int{b[0], b[1], b[2]}
	}
	if d[0]*d[1]*d[2] != size {
		panic(fmt.Sprintf("grid: process grid %v != size %d", d, size))
	}
	for i := 0; i < 3; i++ {
		if d[i] > n[i] {
			panic(fmt.Sprintf("grid: process grid %v exceeds grid %v", d, n))
		}
	}
	return NewDecompCuts(n, d, UniformCuts(n, d))
}

// NewDecompCuts builds a decomposition with explicit per-axis interval
// boundaries. cuts[i] must hold dims[i]+1 strictly increasing values from 0
// to n[i]. Rank order matches pfft.Block3D (row-major, z fastest).
func NewDecompCuts(n [3]int, dims [3]int, cuts [3][]int) *Decomp {
	for i := 0; i < 3; i++ {
		if len(cuts[i]) != dims[i]+1 {
			panic(fmt.Sprintf("grid: axis %d has %d cuts, want %d", i, len(cuts[i]), dims[i]+1))
		}
		if cuts[i][0] != 0 || cuts[i][dims[i]] != n[i] {
			panic(fmt.Sprintf("grid: axis %d cuts %v must span [0,%d]", i, cuts[i], n[i]))
		}
		for c := 0; c < dims[i]; c++ {
			if cuts[i][c] >= cuts[i][c+1] {
				panic(fmt.Sprintf("grid: axis %d cuts %v not strictly increasing", i, cuts[i]))
			}
		}
	}
	own := [3][]int{append([]int(nil), cuts[0]...), append([]int(nil), cuts[1]...), append([]int(nil), cuts[2]...)}
	p := dims[0] * dims[1] * dims[2]
	lay := &pfft.Layout{N: n, Order: [3]int{0, 1, 2}}
	lay.Boxes = make([]pfft.Box, p)
	for r := 0; r < p; r++ {
		cz := r % dims[2]
		cy := (r / dims[2]) % dims[1]
		cx := r / (dims[1] * dims[2])
		var b pfft.Box
		b.Lo[0], b.Hi[0] = own[0][cx], own[0][cx+1]
		b.Lo[1], b.Hi[1] = own[1][cy], own[1][cy+1]
		b.Lo[2], b.Hi[2] = own[2][cz], own[2][cz+1]
		lay.Boxes[r] = b
	}
	return &Decomp{N: n, Dims: dims, lay: lay, cuts: own}
}

// Layout returns the block layout (one box per rank, z fastest storage).
func (d *Decomp) Layout() *pfft.Layout { return d.lay }

// Box returns the box owned by a rank.
func (d *Decomp) Box(rank int) pfft.Box { return d.lay.Boxes[rank] }

// NumRanks returns the total number of ranks in the decomposition.
func (d *Decomp) NumRanks() int { return len(d.lay.Boxes) }

// Cuts returns the per-axis interval boundaries. The slices are owned by the
// decomposition and must not be mutated.
func (d *Decomp) Cuts() [3][]int { return d.cuts }

// RankOf returns the owner rank of the (periodically wrapped) position.
func (d *Decomp) RankOf(x, y, z float64) int {
	g := [3]float64{x, y, z}
	var co [3]int
	for i := 0; i < 3; i++ {
		n := d.N[i]
		v := int(g[i])
		v = ((v % n) + n) % n
		// The owner is the largest c with cuts[c] <= v. Dims are small
		// (≤ a few per axis), so an ascending scan beats a binary search.
		cs := d.cuts[i]
		c := 0
		for c+1 < d.Dims[i] && cs[c+1] <= v {
			c++
		}
		co[i] = c
	}
	return (co[0]*d.Dims[1]+co[1])*d.Dims[2] + co[2]
}

// Field is one rank's block of a distributed scalar field, with ghost cells
// of width Ghost on every side. Storage is row-major (x, y, z) with z
// fastest, including ghosts.
type Field struct {
	N     [3]int
	Box   pfft.Box
	Ghost int
	Data  []float64

	size [3]int // owned sizes
	ext  [3]int // extended sizes (owned + 2*ghost)
}

// NewField allocates a zeroed field for the given owned box.
func NewField(n [3]int, box pfft.Box, ghost int) *Field {
	f := &Field{N: n, Box: box, Ghost: ghost}
	for i := 0; i < 3; i++ {
		f.size[i] = box.Size(i)
		f.ext[i] = f.size[i] + 2*ghost
		if ghost >= n[i] {
			panic(fmt.Sprintf("grid: ghost width %d too large for grid %v", ghost, n))
		}
	}
	f.Data = make([]float64, f.ext[0]*f.ext[1]*f.ext[2])
	return f
}

// localCoord reduces a global coordinate along one axis to a local extended
// coordinate in [-ghost, size+ghost), wrapping periodically. Owned cells are
// preferred over ghost aliases, so writes to owned coordinates always hit
// the interior even when the halo wraps onto the same rank.
func localCoord(x, lo, size, n, ghost int) int {
	d := x - lo
	dm := ((d % n) + n) % n
	switch {
	case dm < size:
		return dm
	case dm-n >= -ghost:
		return dm - n
	case dm < size+ghost:
		return dm
	}
	panic(fmt.Sprintf("grid: coordinate %d outside box [%d,%d)+ghost %d (n=%d)", x, lo, lo+size, ghost, n))
}

// index converts global cell coordinates (possibly in the ghost halo,
// possibly wrapped across the periodic boundary) to a local storage index.
func (f *Field) index(x, y, z int) int {
	lx := localCoord(x, f.Box.Lo[0], f.size[0], f.N[0], f.Ghost) + f.Ghost
	ly := localCoord(y, f.Box.Lo[1], f.size[1], f.N[1], f.Ghost) + f.Ghost
	lz := localCoord(z, f.Box.Lo[2], f.size[2], f.N[2], f.Ghost) + f.Ghost
	return (lx*f.ext[1]+ly)*f.ext[2] + lz
}

// At returns the value at global cell coordinates.
func (f *Field) At(x, y, z int) float64 { return f.Data[f.index(x, y, z)] }

// Set stores a value at global cell coordinates.
func (f *Field) Set(x, y, z int, v float64) { f.Data[f.index(x, y, z)] = v }

// Add accumulates into the cell at global coordinates.
func (f *Field) Add(x, y, z int, v float64) { f.Data[f.index(x, y, z)] += v }

// Fill sets every element (including ghosts) to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Owned extracts the interior (owned) region as a contiguous array in the
// canonical block-layout order (z fastest), ready for pfft.Redistribute.
func (f *Field) Owned() []float64 {
	return f.OwnedInto(nil)
}

// OwnedInto is Owned with a caller-provided destination: dst is grown only
// if its capacity is insufficient and returned at the owned-region length,
// so a buffer reused across calls makes the block↔pencil boundary
// allocation-free (SetOwned is already the non-allocating inverse).
func (f *Field) OwnedInto(dst []float64) []float64 {
	n := f.size[0] * f.size[1] * f.size[2]
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	for x := 0; x < f.size[0]; x++ {
		for y := 0; y < f.size[1]; y++ {
			base := ((x+f.Ghost)*f.ext[1]+y+f.Ghost)*f.ext[2] + f.Ghost
			copy(dst[k:k+f.size[2]], f.Data[base:base+f.size[2]])
			k += f.size[2]
		}
	}
	return dst
}

// SetOwned stores a contiguous owned-region array (block-layout order) back
// into the field interior; ghosts are left untouched.
func (f *Field) SetOwned(v []float64) {
	if len(v) != f.size[0]*f.size[1]*f.size[2] {
		panic(fmt.Sprintf("grid: SetOwned length %d != %d", len(v), f.size[0]*f.size[1]*f.size[2]))
	}
	k := 0
	for x := 0; x < f.size[0]; x++ {
		for y := 0; y < f.size[1]; y++ {
			base := ((x+f.Ghost)*f.ext[1]+y+f.Ghost)*f.ext[2] + f.Ghost
			copy(f.Data[base:base+f.size[2]], v[k:k+f.size[2]])
			k += f.size[2]
		}
	}
}

// ZeroGhosts clears the ghost halo.
func (f *Field) ZeroGhosts() {
	for x := 0; x < f.ext[0]; x++ {
		for y := 0; y < f.ext[1]; y++ {
			for z := 0; z < f.ext[2]; z++ {
				if x >= f.Ghost && x < f.ext[0]-f.Ghost &&
					y >= f.Ghost && y < f.ext[1]-f.Ghost &&
					z >= f.Ghost && z < f.ext[2]-f.Ghost {
					continue
				}
				f.Data[(x*f.ext[1]+y)*f.ext[2]+z] = 0
			}
		}
	}
}

// TotalOwned sums the interior cells (diagnostic).
func (f *Field) TotalOwned() float64 {
	var s float64
	for x := 0; x < f.size[0]; x++ {
		for y := 0; y < f.size[1]; y++ {
			base := ((x+f.Ghost)*f.ext[1]+y+f.Ghost)*f.ext[2] + f.Ghost
			for z := 0; z < f.size[2]; z++ {
				s += f.Data[base+z]
			}
		}
	}
	return s
}
