package grid

import (
	"math"
	"runtime"
	"sync"

	"hacc/internal/par"
)

// DepositCICParallel is the threaded forward-CIC deposit the paper lists as
// the next optimization of the long-range solver (§VI: "fully thread all
// the components of the long-range solver, in particular the forward CIC
// algorithm"). Particles are binned by the local x-plane of their base
// cell and workers own disjoint plane slabs; a particle's CIC cloud spans
// two x-planes, so any cloud whose two planes fall in different slabs
// (slab boundaries, and periodic wrap when one rank spans the whole axis)
// is deferred to a short serial phase. No plane ever has two writers.
//
// Results equal the serial deposit up to floating-point summation order.
func DepositCICParallel(f *Field, xs, ys, zs []float32, mass float64, threads int) {
	n := len(xs)
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	// Extended x-planes available to this field (including ghosts).
	planes := f.ext[0]
	maxThreads := planes / 2
	if threads > maxThreads {
		threads = maxThreads
	}
	if threads <= 1 || n < 4096 {
		DepositCIC(f, xs, ys, zs, mass)
		return
	}
	// Bin particles by the local extended x-plane of their base cell.
	planeOf := make([]int32, n)
	counts := make([]int32, threads+1)
	// Slab boundaries in plane space: slab t covers [t*planes/threads, …).
	slabOf := func(plane int) int {
		t := plane * threads / planes
		if t >= threads {
			t = threads - 1
		}
		return t
	}
	for i := 0; i < n; i++ {
		ix := int(math.Floor(float64(xs[i])))
		lx := localCoord(ix, f.Box.Lo[0], f.size[0], f.N[0], f.Ghost) + f.Ghost
		planeOf[i] = int32(lx)
		counts[slabOf(lx)+1]++
	}
	for t := 0; t < threads; t++ {
		counts[t+1] += counts[t]
	}
	order := make([]int32, n)
	cursor := make([]int32, threads)
	copy(cursor, counts[:threads])
	for i := 0; i < n; i++ {
		t := slabOf(int(planeOf[i]))
		order[cursor[t]] = int32(i)
		cursor[t]++
	}
	// Phase 1: every worker deposits the clouds fully contained in its
	// slab; clouds straddling a slab boundary (including the periodic
	// wrap) are deferred to phase 2.
	var deferredMu sync.Mutex
	var deferred []int32
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			var mine []int32
			for _, idx := range order[counts[t]:counts[t+1]] {
				ix := int(math.Floor(float64(xs[idx])))
				p2 := localCoord(ix+1, f.Box.Lo[0], f.size[0], f.N[0], f.Ghost) + f.Ghost
				if slabOf(p2) != t {
					mine = append(mine, idx)
					continue
				}
				depositOne(f, xs[idx], ys[idx], zs[idx], mass)
			}
			if len(mine) > 0 {
				deferredMu.Lock()
				deferred = append(deferred, mine...)
				deferredMu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	// Phase 2: boundary clouds, serial (a small fraction ~threads/planes).
	for _, idx := range deferred {
		depositOne(f, xs[idx], ys[idx], zs[idx], mass)
	}
}

// InterpCICParallel is the threaded CIC gather (§VI: "fully thread all the
// components of the long-range solver"). Interpolation only reads the field,
// so unlike the deposit there are no write hazards and plain particle-range
// sharding over the worker pool suffices; each particle's output slot is its
// own, so the result is bitwise identical to the serial InterpCIC for any
// pool size.
func InterpCICParallel(f *Field, xs, ys, zs []float32, out []float32, scale float64, pool *par.Pool) {
	pool.For(len(xs), func(lo, hi int) {
		InterpCIC(f, xs[lo:hi], ys[lo:hi], zs[lo:hi], out[lo:hi], scale)
	})
}

// depositOne spreads a single particle's CIC cloud.
func depositOne(f *Field, x, y, z float32, mass float64) {
	xf, yf, zf := float64(x), float64(y), float64(z)
	ix, iy, iz := int(math.Floor(xf)), int(math.Floor(yf)), int(math.Floor(zf))
	fx, fy, fz := xf-float64(ix), yf-float64(iy), zf-float64(iz)
	gx, gy, gz := 1-fx, 1-fy, 1-fz
	i000 := f.index(ix, iy, iz)
	i100 := f.index(ix+1, iy, iz)
	i010 := f.index(ix, iy+1, iz)
	i110 := f.index(ix+1, iy+1, iz)
	iz1 := f.index(ix, iy, iz+1) - i000
	f.Data[i000] += mass * gx * gy * gz
	f.Data[i100] += mass * fx * gy * gz
	f.Data[i010] += mass * gx * fy * gz
	f.Data[i110] += mass * fx * fy * gz
	f.Data[i000+iz1] += mass * gx * gy * fz
	f.Data[i100+iz1] += mass * fx * gy * fz
	f.Data[i010+iz1] += mass * gx * fy * fz
	f.Data[i110+iz1] += mass * fx * fy * fz
}
