// Package grid provides distributed scalar fields on a regular 3-D mesh
// with a block domain decomposition, periodic ghost-cell exchange, and
// Cloud-In-Cell (CIC) particle deposit/interpolation (Hockney & Eastwood
// 1988), the grid layer under HACC's spectral particle-mesh solver (paper
// §II).
//
// The ghost exchange is a persistent Exchanger plan (PR 3): ghost-slot and
// owned-cell index lists are derived once per (decomposition, ghost width),
// traffic flows over neighbor legs only, and both directions (Accumulate
// for deposit spill, Fill for interpolation halos) split into Begin/End
// with pooled GhostOp handles; the dense paths survive as oracles. The
// threaded deposit/gather kernels (PR 1) shard by x-plane slabs and
// particle ranges over par.Pool.
package grid
