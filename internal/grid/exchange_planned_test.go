package grid

import (
	"fmt"
	"math/rand"
	"testing"

	"hacc/internal/mpi"
)

// randomField fills a ghosted field (halo included) with rank-seeded values.
func randomField(f *Field, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
}

func sameData(t *testing.T, what string, a, b *Field) {
	t.Helper()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Errorf("%s: cell %d differs: %v vs %v", what, i, a.Data[i], b.Data[i])
			return
		}
	}
}

// TestGhostPlannedMatchesDense pins the planned neighbor-leg exchange
// against the dense all-to-all oracle bitwise, both directions, across rank
// counts (including 1, where everything is a self wrap).
func TestGhostPlannedMatchesDense(t *testing.T) {
	n := [3]int{16, 16, 16}
	for _, p := range []int{1, 2, 4, 8} {
		err := mpi.Run(p, func(c *mpi.Comm) {
			dec := NewDecomp(n, p)
			box := dec.Box(c.Rank())
			fp := NewField(n, box, 2)
			fd := NewField(n, box, 2)
			e := NewExchanger(c, dec, fp)
			for round := 0; round < 2; round++ {
				seed := int64(1000*p + 10*c.Rank() + round)
				randomField(fp, seed)
				randomField(fd, seed)
				e.Accumulate(fp)
				e.AccumulateDense(fd)
				sameData(t, fmt.Sprintf("p=%d round=%d accumulate", p, round), fp, fd)
				randomField(fp, seed+7)
				randomField(fd, seed+7)
				e.Fill(fp)
				e.FillDense(fd)
				sameData(t, fmt.Sprintf("p=%d round=%d fill", p, round), fp, fd)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGhostFillPipelined pins the overlap pattern core uses: three Fill
// collectives posted before any is completed (on the same shared exchanger
// plan) must equal three sequential fills bitwise.
func TestGhostFillPipelined(t *testing.T) {
	n := [3]int{16, 16, 16}
	err := mpi.Run(4, func(c *mpi.Comm) {
		dec := NewDecomp(n, 4)
		box := dec.Box(c.Rank())
		var pip, seq [3]*Field
		for d := 0; d < 3; d++ {
			pip[d] = NewField(n, box, 2)
			seq[d] = NewField(n, box, 2)
			seed := int64(10*c.Rank() + d)
			randomField(pip[d], seed)
			randomField(seq[d], seed)
		}
		e := NewExchanger(c, dec, pip[0])
		var ops [3]*GhostOp
		for d := 0; d < 3; d++ {
			ops[d] = e.FillBegin(pip[d])
		}
		for d := 0; d < 3; d++ {
			ops[d].End()
			e.Fill(seq[d])
			sameData(t, fmt.Sprintf("component %d", d), pip[d], seq[d])
		}
		// An accumulate posted while a fill is pending must also stay
		// isolated (distinct sequenced tags).
		acc := NewField(n, box, 2)
		accRef := NewField(n, box, 2)
		randomField(acc, int64(c.Rank()+99))
		randomField(accRef, int64(c.Rank()+99))
		fillOp := e.FillBegin(pip[0])
		accOp := e.AccumulateBegin(acc)
		accOp.End()
		fillOp.End()
		e.AccumulateDense(accRef)
		sameData(t, "interleaved accumulate", acc, accRef)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGhostMessageCountStencil: on a 64-rank world with sub-boxes wider
// than the halo, a planned ghost collective sends one message per
// 26-stencil neighbor per rank, against the dense oracle's P·(P−1).
func TestGhostMessageCountStencil(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank worlds; skipped under -short (race CI)")
	}
	const p = 64
	n := [3]int{32, 32, 32}
	count := func(dense bool) (msgs int64, legs int) {
		w := mpi.NewWorld(p)
		err := w.Run(func(c *mpi.Comm) {
			dec := NewDecomp(n, p)
			f := NewField(n, dec.Box(c.Rank()), 2)
			e := NewExchanger(c, dec, f)
			randomField(f, int64(c.Rank()))
			if c.Rank() == 0 {
				legs = e.NumLegs()
			}
			if dense {
				e.AccumulateDense(f)
				e.FillDense(f)
			} else {
				e.Accumulate(f)
				e.Fill(f)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Total world traffic minus the plan construction's one all-to-all
		// (p−1 messages per rank): a deterministic count, no in-flight
		// snapshot races.
		return w.MsgsSent.Load() - int64(p*(p-1)), legs
	}
	planned, legs := count(false)
	dense, _ := count(true)
	if legs != 26 {
		t.Errorf("exchanger legs = %d, want 26 on a 4x4x4 process grid", legs)
	}
	bound := int64(2 * 26 * p) // one message per leg per collective, two collectives
	if planned <= 0 || planned > bound {
		t.Errorf("planned Accumulate+Fill sent %d messages, want (0, %d]", planned, bound)
	}
	denseWant := int64(2 * p * (p - 1))
	if dense != denseWant {
		t.Errorf("dense Accumulate+Fill sent %d messages, want %d", dense, denseWant)
	}
}
