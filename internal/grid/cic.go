package grid

import "math"

// DepositCIC spreads unit-weight×mass particles onto the field's grid nodes
// with Cloud-In-Cell weights. Positions are in global grid units; node i
// carries weight (1−f) and node i+1 weight f, per axis, with f the
// fractional offset. Particles may lie up to Ghost cells outside the box
// (the spill lands in the halo and is merged by Exchanger.Accumulate).
//
// Deliberately single-threaded: the paper lists threading the forward CIC
// as future work (§VI), and accumulation races are the reason.
func DepositCIC(f *Field, xs, ys, zs []float32, mass float64) {
	for i := range xs {
		x, y, z := float64(xs[i]), float64(ys[i]), float64(zs[i])
		ix, iy, iz := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
		fx, fy, fz := x-float64(ix), y-float64(iy), z-float64(iz)
		gx, gy, gz := 1-fx, 1-fy, 1-fz

		i000 := f.index(ix, iy, iz)
		// The eight neighbors share rows along z; compute the three base
		// indices once and use the +1 offsets, falling back to full index
		// arithmetic only across the wrap (handled inside index()).
		i100 := f.index(ix+1, iy, iz)
		i010 := f.index(ix, iy+1, iz)
		i110 := f.index(ix+1, iy+1, iz)
		iz1 := f.index(ix, iy, iz+1) - i000 // z-offset is uniform in-row

		f.Data[i000] += mass * gx * gy * gz
		f.Data[i100] += mass * fx * gy * gz
		f.Data[i010] += mass * gx * fy * gz
		f.Data[i110] += mass * fx * fy * gz
		f.Data[i000+iz1] += mass * gx * gy * fz
		f.Data[i100+iz1] += mass * fx * gy * fz
		f.Data[i010+iz1] += mass * gx * fy * fz
		f.Data[i110+iz1] += mass * fx * fy * fz
	}
}

// InterpCIC gathers the field at each particle position with CIC weights
// (the adjoint of DepositCIC, which keeps the scheme momentum-conserving)
// and stores scale·value into out. Safe to call concurrently on disjoint
// particle ranges: it only reads the field.
func InterpCIC(f *Field, xs, ys, zs []float32, out []float32, scale float64) {
	for i := range xs {
		x, y, z := float64(xs[i]), float64(ys[i]), float64(zs[i])
		ix, iy, iz := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
		fx, fy, fz := x-float64(ix), y-float64(iy), z-float64(iz)
		gx, gy, gz := 1-fx, 1-fy, 1-fz

		i000 := f.index(ix, iy, iz)
		i100 := f.index(ix+1, iy, iz)
		i010 := f.index(ix, iy+1, iz)
		i110 := f.index(ix+1, iy+1, iz)
		iz1 := f.index(ix, iy, iz+1) - i000

		v := f.Data[i000]*gx*gy*gz +
			f.Data[i100]*fx*gy*gz +
			f.Data[i010]*gx*fy*gz +
			f.Data[i110]*fx*fy*gz +
			f.Data[i000+iz1]*gx*gy*fz +
			f.Data[i100+iz1]*fx*gy*fz +
			f.Data[i010+iz1]*gx*fy*fz +
			f.Data[i110+iz1]*fx*fy*fz
		out[i] = float32(scale * v)
	}
}
