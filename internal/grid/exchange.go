package grid

import (
	"fmt"
	"sync"

	"hacc/internal/mpi"
	"hacc/internal/par"
)

// Ghost traffic tags: every Begin draws a fresh tag from a rolling sequence
// (advanced identically on all ranks by the collective call order), so
// several ghost collectives may be in flight at once — e.g. the three
// acceleration-component Fills pipelined against interpolation — without
// message mismatches. Each exchanger instance additionally gets its own tag
// block (instances are built in the same collective order on every rank,
// so the per-comm numbering agrees): the density and acceleration
// exchangers of one simulation can never collide even when both have
// collectives in flight. The grid block 0x200000–0x2fffff is disjoint from
// the domain exchange's 0x100000–0x1fffff and the pfft redistributor tag.
const tagGhostBase = 0x200000

var (
	exIDMu sync.Mutex
	exIDs  = map[*mpi.Comm]int{}
)

func nextExchangerID(c *mpi.Comm) int {
	exIDMu.Lock()
	defer exIDMu.Unlock()
	id := exIDs[c]
	exIDs[c] = id + 1
	return id
}

// gLeg is one planned neighbor leg of the ghost exchange: the peer rank plus
// views of the ghost-slot and owned-cell index lists for that peer.
type gLeg struct {
	rank  int
	ghost []int
	owned []int
}

// Exchanger moves ghost-cell data between neighboring ranks of a block
// decomposition. One plan serves both directions:
//
//   - Accumulate: ghost contributions (e.g. CIC deposit spill) are added
//     into the owning rank's interior cells, then ghosts are zeroed.
//   - Fill: interior values are copied outward into neighbors' ghost halos
//     (e.g. before force interpolation of overloaded particles).
//
// The plan is built once per (decomposition, ghost width) and reused every
// step; only values move afterwards. Both directions split into Begin (pack
// + post non-blocking legs) and End (wait + unpack), so callers can overlap
// the exchange with computation; Accumulate/Fill are the sequential
// Begin+End compositions, and AccumulateDense/FillDense retain the legacy
// all-to-all path as the equivalence oracle.
type Exchanger struct {
	comm *mpi.Comm
	// ghostSlots[r] lists my local ghost storage indices whose canonical
	// cell is owned by rank r; ownedIdx[r] lists my interior storage indices
	// that rank r's ghost slots mirror (in r's canonical order). Dense
	// (per-rank) form, retained for the oracle; legs holds the planned
	// neighbor-only view of the same lists.
	ghostSlots [][]int
	ownedIdx   [][]int
	legs       []gLeg
	// Self-wrap pairs (periodic images landing on the same rank).
	selfGhost []int
	selfOwned []int

	// Per-destination send buffers, reused across Accumulate/Fill calls
	// (the eager mpi sends copy outgoing payloads at post time, so the
	// buffers are free for the next Begin as soon as the posts return).
	send [][]float64

	id   int
	seq  int
	free []*GhostOp
}

// GhostOp is one in-flight ghost collective, produced by AccumulateBegin or
// FillBegin and completed by End. Ops are pooled by the exchanger, so the
// steady state allocates nothing.
type GhostOp struct {
	e    *Exchanger
	f    *Field
	fill bool
	reqs []mpi.Request // parallel to e.legs
}

// NewExchanger builds an exchange plan. Collective over comm; the field f
// supplies the local box shape and ghost width (its data is not touched).
func NewExchanger(c *mpi.Comm, d *Decomp, f *Field) *Exchanger {
	p := c.Size()
	me := c.Rank()
	e := &Exchanger{
		comm:       c,
		id:         nextExchangerID(c),
		ghostSlots: make([][]int, p),
		ownedIdx:   make([][]int, p),
	}
	coords := make([][]int32, p) // canonical cell coords sent to each owner
	g := f.Ghost
	for lx := -g; lx < f.size[0]+g; lx++ {
		for ly := -g; ly < f.size[1]+g; ly++ {
			for lz := -g; lz < f.size[2]+g; lz++ {
				interior := lx >= 0 && lx < f.size[0] &&
					ly >= 0 && ly < f.size[1] &&
					lz >= 0 && lz < f.size[2]
				if interior {
					continue
				}
				cx := wrap(f.Box.Lo[0]+lx, f.N[0])
				cy := wrap(f.Box.Lo[1]+ly, f.N[1])
				cz := wrap(f.Box.Lo[2]+lz, f.N[2])
				owner := d.RankOf(float64(cx), float64(cy), float64(cz))
				slot := ((lx+g)*f.ext[1]+ly+g)*f.ext[2] + lz + g
				if owner == me {
					e.selfGhost = append(e.selfGhost, slot)
					e.selfOwned = append(e.selfOwned, f.index(cx, cy, cz))
					continue
				}
				e.ghostSlots[owner] = append(e.ghostSlots[owner], slot)
				coords[owner] = append(coords[owner], int32(cx), int32(cy), int32(cz))
			}
		}
	}
	// Owners translate requested coordinates to interior indices. One-time
	// plan construction; the per-step path below uses only neighbor legs.
	recvd := mpi.AllToAll(c, coords)
	for r := 0; r < p; r++ {
		cs := recvd[r]
		idx := make([]int, len(cs)/3)
		for i := range idx {
			x, y, z := int(cs[3*i]), int(cs[3*i+1]), int(cs[3*i+2])
			if !f.Box.Contains(x, y, z) {
				panic(fmt.Sprintf("grid: rank %d asked rank %d for non-owned cell (%d,%d,%d)", r, me, x, y, z))
			}
			idx[i] = f.index(x, y, z)
		}
		e.ownedIdx[r] = idx
	}
	// Neighbor legs: the ranks with traffic in either direction (the halo
	// geometry is symmetric, so both lists are non-empty together, but the
	// leg carries each direction's list independently).
	for r := 0; r < p; r++ {
		if len(e.ghostSlots[r]) == 0 && len(e.ownedIdx[r]) == 0 {
			continue
		}
		e.legs = append(e.legs, gLeg{rank: r, ghost: e.ghostSlots[r], owned: e.ownedIdx[r]})
	}
	return e
}

// NumLegs returns the number of planned neighbor legs (≤ the 26-stencil for
// sub-boxes wider than the ghost halo), for message-count accounting.
func (e *Exchanger) NumLegs() int { return len(e.legs) }

func (e *Exchanger) nextTag() int {
	t := tagGhostBase | (e.id&0xff)<<12 | (e.seq & 0xfff)
	e.seq++
	return t
}

// getOp pops a pooled op (or allocates the first time).
func (e *Exchanger) getOp(f *Field, fill bool) *GhostOp {
	var op *GhostOp
	if n := len(e.free); n > 0 {
		op = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		op = &GhostOp{e: e, reqs: make([]mpi.Request, len(e.legs))}
	}
	op.f = f
	op.fill = fill
	return op
}

// AccumulateBegin packs every remote ghost value and posts one message per
// neighbor leg plus the matching receives. Collective (all ranks must call
// their Begin/End pairs in the same order); complete with End.
func (e *Exchanger) AccumulateBegin(f *Field) *GhostOp {
	op := e.getOp(f, false)
	tag := e.nextTag()
	send := e.sendScratch()
	for li := range e.legs {
		leg := &e.legs[li]
		if len(leg.ghost) > 0 {
			buf := par.Resize(send[leg.rank], len(leg.ghost))
			for i, s := range leg.ghost {
				buf[i] = f.Data[s]
			}
			send[leg.rank] = buf
			mpi.Isend(e.comm, leg.rank, tag, buf)
		}
		if len(leg.owned) > 0 {
			mpi.IrecvInit(e.comm, leg.rank, tag, &op.reqs[li])
		}
	}
	return op
}

// FillBegin packs every interior value mirrored by a neighbor's halo and
// posts one message per leg plus the matching receives. Collective;
// complete with End.
func (e *Exchanger) FillBegin(f *Field) *GhostOp {
	op := e.getOp(f, true)
	tag := e.nextTag()
	send := e.sendScratch()
	for li := range e.legs {
		leg := &e.legs[li]
		if len(leg.owned) > 0 {
			buf := par.Resize(send[leg.rank], len(leg.owned))
			for i, idx := range leg.owned {
				buf[i] = f.Data[idx]
			}
			send[leg.rank] = buf
			mpi.Isend(e.comm, leg.rank, tag, buf)
		}
		if len(leg.ghost) > 0 {
			mpi.IrecvInit(e.comm, leg.rank, tag, &op.reqs[li])
		}
	}
	return op
}

// End waits for the op's neighbor legs and unpacks them (in rank order,
// matching the dense oracle bitwise), applies the self-wrap pairs, and — for
// accumulates — zeroes the ghost halo. The op returns to the pool.
func (op *GhostOp) End() {
	e := op.e
	f := op.f
	if op.fill {
		for li := range e.legs {
			leg := &e.legs[li]
			if len(leg.ghost) == 0 {
				continue
			}
			buf := mpi.WaitRecv[float64](&op.reqs[li])
			for i, s := range leg.ghost {
				f.Data[s] = buf[i]
			}
		}
		for i, s := range e.selfGhost {
			f.Data[s] = f.Data[e.selfOwned[i]]
		}
	} else {
		for li := range e.legs {
			leg := &e.legs[li]
			if len(leg.owned) == 0 {
				continue
			}
			buf := mpi.WaitRecv[float64](&op.reqs[li])
			for i, idx := range leg.owned {
				f.Data[idx] += buf[i]
			}
		}
		for i, s := range e.selfGhost {
			f.Data[e.selfOwned[i]] += f.Data[s]
		}
		f.ZeroGhosts()
	}
	op.f = nil
	e.free = append(e.free, op)
}

// Accumulate adds every ghost value into its owning cell (local pairs and
// remote ranks alike), then zeroes the ghost halo. Collective.
func (e *Exchanger) Accumulate(f *Field) { e.AccumulateBegin(f).End() }

// Fill copies interior values outward so every ghost slot holds the
// periodic value of its canonical cell. Collective.
func (e *Exchanger) Fill(f *Field) { e.FillBegin(f).End() }

// AccumulateDense is the legacy dense all-to-all accumulate, retained as
// the equivalence oracle for the planned legs. Collective.
func (e *Exchanger) AccumulateDense(f *Field) {
	p := e.comm.Size()
	send := e.sendScratch()
	for r := 0; r < p; r++ {
		if len(e.ghostSlots[r]) == 0 {
			continue
		}
		buf := par.Resize(send[r], len(e.ghostSlots[r]))
		for i, s := range e.ghostSlots[r] {
			buf[i] = f.Data[s]
		}
		send[r] = buf
	}
	recv := mpi.AllToAll(e.comm, send)
	for r := 0; r < p; r++ {
		for i, idx := range e.ownedIdx[r] {
			f.Data[idx] += recv[r][i]
		}
	}
	for i, s := range e.selfGhost {
		f.Data[e.selfOwned[i]] += f.Data[s]
	}
	f.ZeroGhosts()
}

// FillDense is the legacy dense all-to-all fill, retained as the
// equivalence oracle for the planned legs. Collective.
func (e *Exchanger) FillDense(f *Field) {
	p := e.comm.Size()
	send := e.sendScratch()
	for r := 0; r < p; r++ {
		if len(e.ownedIdx[r]) == 0 {
			continue
		}
		buf := par.Resize(send[r], len(e.ownedIdx[r]))
		for i, idx := range e.ownedIdx[r] {
			buf[i] = f.Data[idx]
		}
		send[r] = buf
	}
	recv := mpi.AllToAll(e.comm, send)
	for r := 0; r < p; r++ {
		for i, s := range e.ghostSlots[r] {
			f.Data[s] = recv[r][i]
		}
	}
	for i, s := range e.selfGhost {
		f.Data[s] = f.Data[e.selfOwned[i]]
	}
}

// sendScratch returns the reusable per-destination send buffers, emptied
// (capacity retained).
func (e *Exchanger) sendScratch() [][]float64 {
	if e.send == nil {
		e.send = make([][]float64, e.comm.Size())
	}
	for r := range e.send {
		e.send[r] = e.send[r][:0]
	}
	return e.send
}

func wrap(x, n int) int { return ((x % n) + n) % n }
