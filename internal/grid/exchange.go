package grid

import (
	"fmt"

	"hacc/internal/mpi"
	"hacc/internal/par"
)

const tagGhostPlan = 11

// Exchanger moves ghost-cell data between neighboring ranks of a block
// decomposition. One plan serves both directions:
//
//   - Accumulate: ghost contributions (e.g. CIC deposit spill) are added
//     into the owning rank's interior cells, then ghosts are zeroed.
//   - Fill: interior values are copied outward into neighbors' ghost halos
//     (e.g. before force interpolation of overloaded particles).
//
// The plan is built once per (decomposition, ghost width) and reused every
// step; only values move afterwards.
type Exchanger struct {
	comm *mpi.Comm
	// ghostSlots[r] lists my local ghost storage indices whose canonical
	// cell is owned by rank r; ownedIdx[r] lists my interior storage indices
	// that rank r's ghost slots mirror (in r's canonical order).
	ghostSlots [][]int
	ownedIdx   [][]int
	// Self-wrap pairs (periodic images landing on the same rank).
	selfGhost []int
	selfOwned []int

	// Per-destination send buffers, reused across Accumulate/Fill calls
	// (mpi.Send copies outgoing payloads, so reuse is safe).
	send [][]float64
}

// NewExchanger builds an exchange plan. Collective over comm; the field f
// supplies the local box shape and ghost width (its data is not touched).
func NewExchanger(c *mpi.Comm, d *Decomp, f *Field) *Exchanger {
	p := c.Size()
	me := c.Rank()
	e := &Exchanger{
		comm:       c,
		ghostSlots: make([][]int, p),
		ownedIdx:   make([][]int, p),
	}
	coords := make([][]int32, p) // canonical cell coords sent to each owner
	g := f.Ghost
	for lx := -g; lx < f.size[0]+g; lx++ {
		for ly := -g; ly < f.size[1]+g; ly++ {
			for lz := -g; lz < f.size[2]+g; lz++ {
				interior := lx >= 0 && lx < f.size[0] &&
					ly >= 0 && ly < f.size[1] &&
					lz >= 0 && lz < f.size[2]
				if interior {
					continue
				}
				cx := wrap(f.Box.Lo[0]+lx, f.N[0])
				cy := wrap(f.Box.Lo[1]+ly, f.N[1])
				cz := wrap(f.Box.Lo[2]+lz, f.N[2])
				owner := d.RankOf(float64(cx), float64(cy), float64(cz))
				slot := ((lx+g)*f.ext[1]+ly+g)*f.ext[2] + lz + g
				if owner == me {
					e.selfGhost = append(e.selfGhost, slot)
					e.selfOwned = append(e.selfOwned, f.index(cx, cy, cz))
					continue
				}
				e.ghostSlots[owner] = append(e.ghostSlots[owner], slot)
				coords[owner] = append(coords[owner], int32(cx), int32(cy), int32(cz))
			}
		}
	}
	// Owners translate requested coordinates to interior indices.
	recvd := mpi.AllToAll(c, coords)
	for r := 0; r < p; r++ {
		cs := recvd[r]
		idx := make([]int, len(cs)/3)
		for i := range idx {
			x, y, z := int(cs[3*i]), int(cs[3*i+1]), int(cs[3*i+2])
			if !f.Box.Contains(x, y, z) {
				panic(fmt.Sprintf("grid: rank %d asked rank %d for non-owned cell (%d,%d,%d)", r, me, x, y, z))
			}
			idx[i] = f.index(x, y, z)
		}
		e.ownedIdx[r] = idx
	}
	_ = tagGhostPlan
	return e
}

// Accumulate adds every ghost value into its owning cell (local pairs and
// remote ranks alike), then zeroes the ghost halo. Collective.
func (e *Exchanger) Accumulate(f *Field) {
	p := e.comm.Size()
	send := e.sendScratch()
	for r := 0; r < p; r++ {
		if len(e.ghostSlots[r]) == 0 {
			continue
		}
		buf := par.Resize(send[r], len(e.ghostSlots[r]))
		for i, s := range e.ghostSlots[r] {
			buf[i] = f.Data[s]
		}
		send[r] = buf
	}
	recv := mpi.AllToAll(e.comm, send)
	for r := 0; r < p; r++ {
		for i, idx := range e.ownedIdx[r] {
			f.Data[idx] += recv[r][i]
		}
	}
	for i, s := range e.selfGhost {
		f.Data[e.selfOwned[i]] += f.Data[s]
	}
	f.ZeroGhosts()
}

// Fill copies interior values outward so every ghost slot holds the
// periodic value of its canonical cell. Collective.
func (e *Exchanger) Fill(f *Field) {
	p := e.comm.Size()
	send := e.sendScratch()
	for r := 0; r < p; r++ {
		if len(e.ownedIdx[r]) == 0 {
			continue
		}
		buf := par.Resize(send[r], len(e.ownedIdx[r]))
		for i, idx := range e.ownedIdx[r] {
			buf[i] = f.Data[idx]
		}
		send[r] = buf
	}
	recv := mpi.AllToAll(e.comm, send)
	for r := 0; r < p; r++ {
		for i, s := range e.ghostSlots[r] {
			f.Data[s] = recv[r][i]
		}
	}
	for i, s := range e.selfGhost {
		f.Data[s] = f.Data[e.selfOwned[i]]
	}
}

// sendScratch returns the reusable per-destination send buffers, emptied
// (capacity retained).
func (e *Exchanger) sendScratch() [][]float64 {
	if e.send == nil {
		e.send = make([][]float64, e.comm.Size())
	}
	for r := range e.send {
		e.send[r] = e.send[r][:0]
	}
	return e.send
}

func wrap(x, n int) int { return ((x % n) + n) % n }
