package grid

import (
	"math"
	"math/rand"
	"testing"

	"hacc/internal/par"
)

func randomCloud(n int, lo, span float64, rng *rand.Rand) (xs, ys, zs []float32) {
	xs = make([]float32, n)
	ys = make([]float32, n)
	zs = make([]float32, n)
	for i := 0; i < n; i++ {
		xs[i] = float32(lo + rng.Float64()*span)
		ys[i] = float32(lo + rng.Float64()*span)
		zs[i] = float32(lo + rng.Float64()*span)
	}
	return
}

func TestDepositParallelMatchesSerial(t *testing.T) {
	n := [3]int{24, 24, 24}
	d := NewDecomp(n, 1)
	rng := rand.New(rand.NewSource(7))
	xs, ys, zs := randomCloud(20000, 0, 24, rng)
	ser := NewField(n, d.Box(0), 3)
	DepositCIC(ser, xs, ys, zs, 1.25)
	for _, threads := range []int{2, 4, 8} {
		par := NewField(n, d.Box(0), 3)
		DepositCICParallel(par, xs, ys, zs, 1.25, threads)
		for i := range ser.Data {
			if math.Abs(ser.Data[i]-par.Data[i]) > 1e-9 {
				t.Fatalf("threads=%d: cell %d differs: %g vs %g", threads, i, ser.Data[i], par.Data[i])
			}
		}
	}
}

func TestDepositParallelMultiRankBox(t *testing.T) {
	// A sub-box (rank 1 of 2) with strays into the halo.
	n := [3]int{16, 16, 16}
	d := NewDecomp(n, 2)
	box := d.Box(1)
	rng := rand.New(rand.NewSource(8))
	// Particles in the box plus strays up to 2 cells outside.
	xs, ys, zs := randomCloud(9000, float64(box.Lo[0])-2, float64(box.Size(0))+4, rng)
	for i := range ys {
		ys[i] = float32(rng.Float64() * 16)
		zs[i] = float32(rng.Float64() * 16)
	}
	ser := NewField(n, box, 4)
	DepositCIC(ser, xs, ys, zs, 1)
	par := NewField(n, box, 4)
	DepositCICParallel(par, xs, ys, zs, 1, 4)
	for i := range ser.Data {
		if math.Abs(ser.Data[i]-par.Data[i]) > 1e-9 {
			t.Fatalf("cell %d differs: %g vs %g", i, ser.Data[i], par.Data[i])
		}
	}
}

func TestDepositParallelSmallFallsBack(t *testing.T) {
	// Few particles: must still be correct (serial fallback).
	n := [3]int{16, 16, 16}
	d := NewDecomp(n, 1)
	rng := rand.New(rand.NewSource(9))
	xs, ys, zs := randomCloud(100, 0, 16, rng)
	ser := NewField(n, d.Box(0), 1)
	DepositCIC(ser, xs, ys, zs, 2)
	par := NewField(n, d.Box(0), 1)
	DepositCICParallel(par, xs, ys, zs, 2, 8)
	for i := range ser.Data {
		if ser.Data[i] != par.Data[i] {
			t.Fatalf("fallback differs at %d", i)
		}
	}
}

func TestInterpParallelMatchesSerial(t *testing.T) {
	n := [3]int{24, 24, 24}
	d := NewDecomp(n, 1)
	rng := rand.New(rand.NewSource(11))
	f := NewField(n, d.Box(0), 3)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	xs, ys, zs := randomCloud(20000, 0, 24, rng)
	ser := make([]float32, len(xs))
	InterpCIC(f, xs, ys, zs, ser, 0.75)
	for _, workers := range []int{2, 4, 8} {
		pool := par.NewPool(workers)
		got := make([]float32, len(xs))
		InterpCICParallel(f, xs, ys, zs, got, 0.75, pool)
		for i := range ser {
			// Bitwise equality: sharding must not change per-particle math.
			if ser[i] != got[i] {
				t.Fatalf("workers=%d: particle %d differs: %g vs %g", workers, i, ser[i], got[i])
			}
		}
	}
}

func TestInterpParallelSmallFallsBack(t *testing.T) {
	n := [3]int{16, 16, 16}
	d := NewDecomp(n, 1)
	rng := rand.New(rand.NewSource(12))
	f := NewField(n, d.Box(0), 1)
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	xs, ys, zs := randomCloud(50, 0, 16, rng)
	ser := make([]float32, len(xs))
	got := make([]float32, len(xs))
	InterpCIC(f, xs, ys, zs, ser, 1)
	InterpCICParallel(f, xs, ys, zs, got, 1, par.NewPool(8))
	for i := range ser {
		if ser[i] != got[i] {
			t.Fatalf("fallback differs at %d", i)
		}
	}
}

func BenchmarkDepositSerial(b *testing.B) {
	n := [3]int{48, 48, 48}
	d := NewDecomp(n, 1)
	f := NewField(n, d.Box(0), 2)
	rng := rand.New(rand.NewSource(1))
	xs, ys, zs := randomCloud(200000, 0, 48, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepositCIC(f, xs, ys, zs, 1)
	}
}

func BenchmarkDepositParallel(b *testing.B) {
	n := [3]int{48, 48, 48}
	d := NewDecomp(n, 1)
	f := NewField(n, d.Box(0), 2)
	rng := rand.New(rand.NewSource(1))
	xs, ys, zs := randomCloud(200000, 0, 48, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepositCICParallel(f, xs, ys, zs, 1, 8)
	}
}
