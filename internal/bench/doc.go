// Package bench implements the experiment runners that regenerate every
// table and figure of the paper's evaluation (§IV–V), scaled to a single
// machine: ranks are goroutines, problem sizes are laptop-sized, and the
// BG/Q columns are model projections from counted work (see
// internal/machine). The same runners back the root benchmark suite and
// the haccbench command. Seed-era package, extended per PR as new
// experiments land (the per-experiment index lives in DESIGN.md).
package bench
