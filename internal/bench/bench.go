package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"hacc/internal/core"
	"hacc/internal/machine"
	"hacc/internal/mpi"
	"hacc/internal/pfft"
	"hacc/internal/shortrange"
)

// FFTResult is one row of the Table I reproduction.
type FFTResult struct {
	N       int
	Ranks   int
	Pencil  bool
	R2C     bool    // real-to-complex production path (Hermitian-halved)
	Seconds float64 // wall-clock per 3-D transform
}

// RunFFT times `reps` forward distributed FFTs of an n³ grid on the given
// number of ranks.
func RunFFT(n, ranks int, pencil bool, reps int) (FFTResult, error) {
	res := FFTResult{N: n, Ranks: ranks, Pencil: pencil}
	var elapsed time.Duration
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		var p *pfft.Pencil
		if pencil {
			p = pfft.NewAuto(c, [3]int{n, n, n})
		} else {
			p = pfft.NewSlab(c, [3]int{n, n, n})
		}
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		local := make([]complex128, p.LocalX().Count())
		for i := range local {
			local[i] = complex(rng.NormFloat64(), 0)
		}
		mpi.Barrier(c)
		start := time.Now()
		data := local
		for r := 0; r < reps; r++ {
			spec := p.Forward(data)
			data = p.Inverse(spec)
		}
		mpi.Barrier(c)
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		return res, err
	}
	res.Seconds = elapsed.Seconds() / float64(2*reps)
	return res, nil
}

// RunFFTReal times `reps` r2c forward + c2r inverse round trips of an n³
// real field on the given number of ranks — the production long-range path,
// where Hermitian symmetry halves the x transforms, both transposes, and
// the spectral volume.
func RunFFTReal(n, ranks, reps int) (FFTResult, error) {
	res := FFTResult{N: n, Ranks: ranks, Pencil: true, R2C: true}
	var elapsed time.Duration
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		p := pfft.NewAuto(c, [3]int{n, n, n})
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		local := make([]float64, p.LocalX().Count())
		for i := range local {
			local[i] = rng.NormFloat64()
		}
		mpi.Barrier(c)
		start := time.Now()
		for r := 0; r < reps; r++ {
			spec := p.ForwardReal(local)
			p.InverseReal(spec, local)
		}
		mpi.Barrier(c)
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		return res, err
	}
	res.Seconds = elapsed.Seconds() / float64(2*reps)
	return res, nil
}

// PrintFFTTable writes Table I-style rows.
func PrintFFTTable(w io.Writer, rows []FFTResult) {
	fmt.Fprintf(w, "%-10s %-8s %-12s %-14s %s\n", "FFT Size", "Ranks", "Decomp", "Wall [s]", "per-rank grid")
	for _, r := range rows {
		d := "pencil"
		if !r.Pencil {
			d = "slab"
		}
		if r.R2C {
			d += "-r2c"
		}
		per := float64(r.N) * float64(r.N) * float64(r.N) / float64(r.Ranks)
		fmt.Fprintf(w, "%4d^3     %-8d %-12s %-14.6f %8.0f\n", r.N, r.Ranks, d, r.Seconds, per)
	}
}

// KernelResult is one point of the Fig. 5 reproduction: force-kernel
// throughput vs. neighbor-list size and thread count.
type KernelResult struct {
	ListSize        int
	Threads         int
	InteractionsSec float64
}

// RunKernel measures the short-range kernel's pair throughput on synthetic
// leaves of `leafSize` targets against a neighbor list of `listSize`,
// processed by `threads` goroutines (the paper's ranks×threads sweep).
func RunKernel(listSize, leafSize, threads int, dur time.Duration) KernelResult {
	res, err := shortrange.FitGridForce(shortrange.FitOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	k := shortrange.NewKernel(res.Poly, res.RCut, 0.01, 0.1)
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = rng.Float32() * 3
		}
		return v
	}
	type work struct {
		lx, ly, lz, nx, ny, nz, ax, ay, az []float32
	}
	ws := make([]work, threads)
	for t := range ws {
		ws[t] = work{
			lx: mk(leafSize), ly: mk(leafSize), lz: mk(leafSize),
			nx: mk(listSize), ny: mk(listSize), nz: mk(listSize),
			ax: make([]float32, leafSize), ay: make([]float32, leafSize), az: make([]float32, leafSize),
		}
	}
	done := make(chan int64, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		go func(w *work) {
			var n int64
			for time.Since(start) < dur {
				n += k.Apply(w.lx, w.ly, w.lz, w.nx, w.ny, w.nz, w.ax, w.ay, w.az)
			}
			done <- n
		}(&ws[t])
	}
	var total int64
	for t := 0; t < threads; t++ {
		total += <-done
	}
	wall := time.Since(start).Seconds()
	return KernelResult{ListSize: listSize, Threads: threads, InteractionsSec: float64(total) / wall}
}

// PrintKernelTable writes the Fig. 5 matrix: % of the best-observed rate.
func PrintKernelTable(w io.Writer, rows []KernelResult) {
	best := 0.0
	for _, r := range rows {
		if r.InteractionsSec > best {
			best = r.InteractionsSec
		}
	}
	fmt.Fprintf(w, "%-10s %-9s %-18s %-12s %s\n", "ListSize", "Threads", "Pairs/s", "%best", "model GFlop/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-9d %-18.3e %-12.1f %.2f\n",
			r.ListSize, r.Threads, r.InteractionsSec,
			100*r.InteractionsSec/best,
			r.InteractionsSec*machine.FlopsPerInteraction/1e9)
	}
}

// PoissonResult is one point of the Fig. 6 reproduction.
type PoissonResult struct {
	Ranks       int
	N           int
	Slab        bool
	NsPerPoint  float64 // wall-clock per solve per grid point, ns
	SecPerSolve float64
}

// RunPoisson times full Poisson solves (density → three acceleration
// components) on an n³ grid over `ranks` ranks.
func RunPoisson(n, ranks int, slab bool, reps int) (PoissonResult, error) {
	res := PoissonResult{Ranks: ranks, N: n, Slab: slab}
	cfg := core.Config{
		NGrid: n, NParticles: n, BoxMpc: float64(n) * 10,
		ZInit: 30, ZFinal: 29, Steps: 1, SubCycles: 1,
		Solver: core.PMOnly, Seed: 9, SlabFFT: slab,
	}
	var elapsed time.Duration
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		mpi.Barrier(c)
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
			s.StepIndex = 0 // rewind so the same step can repeat
		}
		mpi.Barrier(c)
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		return res, err
	}
	res.SecPerSolve = elapsed.Seconds() / float64(2*reps) // two PM solves/step
	res.NsPerPoint = res.SecPerSolve * 1e9 / (float64(n) * float64(n) * float64(n))
	return res, nil
}

// PrintPoissonTable writes Fig. 6-style rows.
func PrintPoissonTable(w io.Writer, rows []PoissonResult) {
	fmt.Fprintf(w, "%-8s %-8s %-8s %-16s %s\n", "Ranks", "Grid", "Decomp", "s/solve", "ns/point")
	for _, r := range rows {
		d := "pencil"
		if r.Slab {
			d = "slab"
		}
		fmt.Fprintf(w, "%-8d %3d^3    %-8s %-16.5f %.2f\n", r.Ranks, r.N, d, r.SecPerSolve, r.NsPerPoint)
	}
}
