package bench

import (
	"strings"
	"testing"
	"time"

	"hacc/internal/core"
)

func TestRunFFTSmoke(t *testing.T) {
	r, err := RunFFT(16, 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 || r.N != 16 || r.Ranks != 2 {
		t.Errorf("bad result %+v", r)
	}
	var sb strings.Builder
	PrintFFTTable(&sb, []FFTResult{r})
	if !strings.Contains(sb.String(), "16^3") {
		t.Errorf("table output missing size: %q", sb.String())
	}
}

func TestRunKernelSmoke(t *testing.T) {
	r := RunKernel(128, 16, 2, 5*time.Millisecond)
	if r.InteractionsSec <= 0 {
		t.Errorf("no throughput measured: %+v", r)
	}
	var sb strings.Builder
	PrintKernelTable(&sb, []KernelResult{r})
	if !strings.Contains(sb.String(), "128") {
		t.Error("kernel table missing row")
	}
}

func TestRunPoissonSmoke(t *testing.T) {
	r, err := RunPoisson(16, 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerPoint <= 0 {
		t.Errorf("bad poisson result %+v", r)
	}
}

func TestRunFullSmoke(t *testing.T) {
	r, err := RunFull(FullOptions{Ranks: 2, NpPerDim: 12, Solver: core.PPTreePM, Steps: 1, SubCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.NpTotal != 12*12*12 {
		t.Errorf("particles %d", r.NpTotal)
	}
	if r.SecPerSub <= 0 || r.NsPerSubPart <= 0 || r.Flops <= 0 {
		t.Errorf("bad metrics %+v", r)
	}
	if r.Substeps != 2 {
		t.Errorf("substeps %d want 2", r.Substeps)
	}
	var sb strings.Builder
	PrintFullTable(&sb, []FullResult{r}, r.MemMBPerRank)
	PrintPhaseSplit(&sb, r)
	if !strings.Contains(sb.String(), "kernel") {
		t.Error("phase split missing kernel row")
	}
}

func TestRunFullWithConfigHook(t *testing.T) {
	r, err := RunFullWithConfig(FullOptions{Ranks: 1, NpPerDim: 12, Solver: core.PMOnly, Steps: 1, SubCycles: 1},
		func(c *core.Config) { c.DisableFilter = true })
	if err != nil {
		t.Fatal(err)
	}
	if r.Interactions != 0 {
		t.Errorf("PMOnly counted %d interactions", r.Interactions)
	}
}

func TestRunEvolutionSmoke(t *testing.T) {
	r, err := RunEvolution(2, 12, 60, 2, 24, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StepSec) != 2 || r.WallRatio <= 0 {
		t.Errorf("bad evolution result %+v", r)
	}
	var sb strings.Builder
	PrintEvolution(&sb, r)
	if !strings.Contains(sb.String(), "wall-clock last/first") {
		t.Error("evolution report truncated")
	}
}

func TestRunPowerEvolutionSmoke(t *testing.T) {
	r, err := RunPowerEvolution(2, 12, 80, 2, []float64{24, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spectra) != 2 || len(r.Linear) != 2 {
		t.Fatalf("recorded %d spectra", len(r.Spectra))
	}
	var sb strings.Builder
	PrintPowerEvolution(&sb, r)
	if !strings.Contains(sb.String(), "log10(k)") {
		t.Error("power table missing header")
	}
}

func TestRunHalosSmoke(t *testing.T) {
	r, err := RunHalos(2, 16, 60, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MassBins) == 0 || len(r.TheoryST) != len(r.MassBins) {
		t.Errorf("bad halo result %+v", r)
	}
	var sb strings.Builder
	PrintHalos(&sb, r)
	if !strings.Contains(sb.String(), "Sheth-Tormen") {
		t.Error("halo report missing theory columns")
	}
}
