package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"hacc/internal/analysis"
	"hacc/internal/core"
	"hacc/internal/cosmology"
	"hacc/internal/machine"
	"hacc/internal/mpi"
)

// FullResult is one row of the Table II / Table III reproductions.
type FullResult struct {
	Ranks        int
	NpTotal      int64
	Geometry     [3]int
	Substeps     int64
	WallSec      float64 // total stepping wall-clock
	SecPerSub    float64 // per substep
	NsPerSubPart float64 // time/substep/particle in ns (paper column)
	RankTime     float64 // Ranks × time/substep/particle in ns (the paper's
	// "Cores×Time/Substep" column: constant under ideal weak scaling)
	MemMBPerRank float64
	Interactions int64
	Flops        float64
	HostGFlops   float64
	BGQTF        float64 // modeled sustained TFlops at paper efficiency
	BGQPct       float64
	Phases       []machine.PhaseFraction
	OverloadFrac float64
	CommPostSec  float64 // pack+post share of communication (overlappable)
	CommWaitSec  float64 // exposed blocking wait share

	// Per-rank step-time imbalance: max/mean/min across ranks of each
	// rank's busy time (wall minus exposed comm wait — a starved rank shows
	// up as low busy time, not high wait). Max/Mean is the load-imbalance
	// factor the balancer drives toward 1.
	BusyMaxSec  float64
	BusyMeanSec float64
	BusyMinSec  float64
	// Balancer and stealing diagnostics (global counters).
	Rebalances   int64
	StolenLeaves int64
	// WorkImbalance is max/mean across ranks of the deterministic per-rank
	// short-range work (kernel interactions + tree-walk node visits) — the
	// machine-noise-free view of the same imbalance BusyMaxSec/BusyMeanSec
	// measures in wall-clock.
	WorkImbalance float64

	// Wire send→match latency, merged collectively across ranks from the
	// per-frame header timestamps (zero everywhere on inproc-only runs,
	// where no frame crosses a wire).
	WireLatCount int64
	WireLatP50Ns int64
	WireLatP99Ns int64
}

// FullOptions configures a full-code scaling point.
type FullOptions struct {
	Ranks     int
	NpPerDim  int // particles per dimension (grid matches)
	NgPerDim  int
	Steps     int
	SubCycles int
	Solver    core.SolverKind
	ZInit     float64
	ZFinal    float64
	BoxMpc    float64
	Threads   int
	LeafSize  int
	Seed      uint64
}

func (o *FullOptions) setDefaults() {
	if o.Steps == 0 {
		o.Steps = 2
	}
	if o.SubCycles == 0 {
		o.SubCycles = 3
	}
	if o.ZInit == 0 {
		o.ZInit = 24
	}
	if o.ZFinal == 0 {
		o.ZFinal = 10
	}
	if o.NgPerDim == 0 {
		o.NgPerDim = o.NpPerDim
	}
	if o.BoxMpc == 0 {
		o.BoxMpc = 8 * float64(o.NgPerDim) // ~8 Mpc cells: mildly clustered
	}
	if o.Seed == 0 {
		o.Seed = 77
	}
}

// RunFull executes a full-code benchmark point and gathers the paper-style
// metrics.
func RunFull(o FullOptions) (FullResult, error) {
	return RunFullWithConfig(o, nil)
}

// runFullCfg runs a prepared config and gathers the metrics.
func runFullCfg(o FullOptions, cfg core.Config) (FullResult, error) {
	var res FullResult
	res.Ranks = o.Ranks
	err := mpi.Run(o.Ranks, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		mpi.Barrier(c)
		start := time.Now()
		if err := s.Run(nil); err != nil {
			panic(err)
		}
		mpi.Barrier(c)
		wall := time.Since(start).Seconds()
		busy := mpi.AllGather(c, []float64{s.Timers.Busy().Seconds()})
		work := mpi.AllGather(c, []float64{float64(s.Counters.KernelInteractions + s.Counters.WalkNodes)})
		mem := mpi.AllReduce(c, []float64{s.MemoryMB()}, mpi.MaxF64)
		ovf := mpi.AllReduce(c, []float64{s.Dom.OverloadFraction()}, mpi.MaxF64)
		gc := s.GlobalCounters()
		nGlobal := s.Dom.NGlobal()       // collective: before the rank-0 guard
		lat := mpi.WireLatencySummary(c) // collective: before the rank-0 guard
		if c.Rank() != 0 {
			return
		}
		res.NpTotal = nGlobal
		res.Geometry = s.Dec.Dims
		res.Substeps = s.SubstepsDone
		res.WallSec = wall
		if s.SubstepsDone > 0 {
			res.SecPerSub = wall / float64(s.SubstepsDone)
		}
		if res.NpTotal > 0 {
			res.NsPerSubPart = res.SecPerSub * 1e9 / float64(res.NpTotal)
		}
		res.RankTime = float64(o.Ranks) * res.NsPerSubPart
		res.MemMBPerRank = mem[0]
		res.Interactions = gc.KernelInteractions
		res.Flops = gc.Flops()
		res.HostGFlops = res.Flops / wall / 1e9
		res.BGQTF, res.BGQPct = machine.ProjectedBGQ(o.Ranks)
		res.Phases = s.Timers.Fractions()
		res.OverloadFrac = ovf[0]
		post, waitT := s.Timers.CommSplit()
		res.CommPostSec = post.Seconds()
		res.CommWaitSec = waitT.Seconds()
		res.BusyMaxSec, res.BusyMinSec = busy[0], busy[0]
		for _, b := range busy {
			res.BusyMaxSec = math.Max(res.BusyMaxSec, b)
			res.BusyMinSec = math.Min(res.BusyMinSec, b)
			res.BusyMeanSec += b
		}
		res.BusyMeanSec /= float64(len(busy))
		res.Rebalances = gc.Rebalances
		res.StolenLeaves = gc.StolenLeaves
		var wmax, wsum float64
		for _, v := range work {
			wmax = math.Max(wmax, v)
			wsum += v
		}
		if wsum > 0 {
			res.WorkImbalance = wmax / (wsum / float64(len(work)))
		}
		res.WireLatCount = lat.Count
		res.WireLatP50Ns = lat.P50Ns
		res.WireLatP99Ns = lat.P99Ns
	})
	return res, err
}

// PrintFullTable writes Table II/III-style rows.
func PrintFullTable(w io.Writer, rows []FullResult, memBudgetMB float64) {
	fmt.Fprintf(w, "%-7s %-12s %-10s %-14s %-16s %-14s %-10s %-13s %-11s",
		"Ranks", "Np", "Geometry", "Time/Sub [s]", "T/Sub/Part [ns]", "R*T/S/P [ns]", "MB/rank", "host GF/s", "model TF")
	if memBudgetMB > 0 {
		fmt.Fprintf(w, " %-8s", "Mem%")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		geom := fmt.Sprintf("%dx%dx%d", r.Geometry[0], r.Geometry[1], r.Geometry[2])
		fmt.Fprintf(w, "%-7d %-12d %-10s %-14s %-16s %-14s %-10.1f %-13s %-11.1f",
			r.Ranks, r.NpTotal, geom, orDash(r.SecPerSub, "%.4f"), orDash(r.NsPerSubPart, "%.1f"),
			orDash(r.RankTime, "%.1f"), r.MemMBPerRank, orDash(r.HostGFlops, "%.2f"), r.BGQTF)
		if memBudgetMB > 0 {
			fmt.Fprintf(w, " %-8.1f", 100*r.MemMBPerRank/memBudgetMB)
		}
		fmt.Fprintln(w)
	}
}

// orDash formats v with format, or returns "--" when v is zero or not
// finite — the shape a degenerate run (zero substeps, zero interactions,
// zero busy time) leaves behind. Reports never print NaN/Inf.
func orDash(v float64, format string) string {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return "--"
	}
	return fmt.Sprintf(format, v)
}

// PrintPhaseSplit writes the §III time-split report for one run, including
// the posted-vs-exposed communication split of the overlapped exchange and
// the merged wire send→match latency histogram summary.
func PrintPhaseSplit(w io.Writer, r FullResult) {
	fmt.Fprintf(w, "phase split (paper: ~80%% kernel, 10%% walk, 5%% FFT, 5%% rest):\n")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "  %-10s %6.1f%%  (%.3fs)\n", p.Name, 100*p.Fraction, p.Seconds)
	}
	if tot := r.CommPostSec + r.CommWaitSec; tot > 0 {
		fmt.Fprintf(w, "comm split: %.3fs pack+post vs %.3fs exposed wait (%.0f%% of comm time is exposed wait; overlap shrinks only the wait share)\n",
			r.CommPostSec, r.CommWaitSec, 100*r.CommWaitSec/tot)
	}
	if r.BusyMeanSec > 0 {
		fmt.Fprintf(w, "rank busy max/mean/min: %.3fs / %.3fs / %.3fs  (imbalance %s; rebalances %d, stolen leaves %d)\n",
			r.BusyMaxSec, r.BusyMeanSec, r.BusyMinSec, orDash(r.BusyMaxSec/r.BusyMeanSec, "%.2f"),
			r.Rebalances, r.StolenLeaves)
	} else {
		fmt.Fprintf(w, "rank busy max/mean/min: -- / -- / --  (imbalance --; rebalances %d, stolen leaves %d)\n",
			r.Rebalances, r.StolenLeaves)
	}
	if r.WireLatCount > 0 {
		fmt.Fprintf(w, "wire latency: %d frames, p50 %s, p99 %s (send-stamp to match, merged across ranks)\n",
			r.WireLatCount, fmtNs(r.WireLatP50Ns), fmtNs(r.WireLatP99Ns))
	} else {
		fmt.Fprintf(w, "wire latency: -- (no wire frames; inproc transport)\n")
	}
}

// fmtNs renders a nanosecond latency with a human-scale unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// EvolutionResult captures the Fig. 9 experiment: per-step wall-clock and
// clustering measures across the run.
type EvolutionResult struct {
	Steps     []int
	A         []float64
	StepSec   []float64
	DeltaMax  []float64
	DeltaVar  []float64
	FirstSec  float64
	LastSec   float64
	WallRatio float64 // last/first step cost (paper: "does not change much")
}

// RunEvolution runs a small full simulation and records per-step timing and
// density statistics.
func RunEvolution(ranks, np int, boxMpc float64, steps int, zInit, zFinal float64) (EvolutionResult, error) {
	var res EvolutionResult
	cfg := core.Config{
		NGrid: np, NParticles: np, BoxMpc: boxMpc,
		ZInit: zInit, ZFinal: zFinal, Steps: steps, SubCycles: 3,
		Solver: core.PPTreePM, Seed: 5,
	}
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			mpi.Barrier(c)
			t0 := time.Now()
			if err := s.Step(); err != nil {
				panic(err)
			}
			mpi.Barrier(c)
			dt := time.Since(t0).Seconds()
			stats := s.DensityStats()
			if c.Rank() == 0 {
				res.Steps = append(res.Steps, i+1)
				res.A = append(res.A, s.A)
				res.StepSec = append(res.StepSec, dt)
				res.DeltaMax = append(res.DeltaMax, stats.Max)
				res.DeltaVar = append(res.DeltaVar, stats.Variance)
			}
		}
	})
	if err != nil {
		return res, err
	}
	res.FirstSec = res.StepSec[0]
	res.LastSec = res.StepSec[len(res.StepSec)-1]
	res.WallRatio = res.LastSec / res.FirstSec
	return res, nil
}

// PrintEvolution writes the Fig. 9 experiment report.
func PrintEvolution(w io.Writer, r EvolutionResult) {
	fmt.Fprintf(w, "%-6s %-8s %-8s %-12s %-12s %s\n", "step", "a", "z", "wall [s]", "max(δ)", "var(δ)")
	for i := range r.Steps {
		z := 1/r.A[i] - 1
		fmt.Fprintf(w, "%-6d %-8.4f %-8.2f %-12.4f %-12.1f %.4f\n",
			r.Steps[i], r.A[i], z, r.StepSec[i], r.DeltaMax[i], r.DeltaVar[i])
	}
	fmt.Fprintf(w, "wall-clock last/first step: %.2f (paper: ~constant despite δ growing ~10^5)\n", r.WallRatio)
}

// PowerEvolutionResult captures the Fig. 10 experiment.
type PowerEvolutionResult struct {
	Redshifts []float64
	Spectra   []*analysis.PowerSpectrum
	Linear    [][]float64 // D²(a)·P_lin at the measured k of each epoch
}

// RunPowerEvolution evolves a box and measures P(k) at the requested
// redshifts (nearest step boundary at or below each).
func RunPowerEvolution(ranks, np int, boxMpc float64, steps int, zs []float64) (PowerEvolutionResult, error) {
	var res PowerEvolutionResult
	cfg := core.Config{
		NGrid: np, NParticles: np, BoxMpc: boxMpc,
		ZInit: 24, ZFinal: 0, Steps: steps, SubCycles: 3,
		Solver: core.PPTreePM, Seed: 21, FixedAmp: true,
	}
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		next := 0
		record := func() {
			if next >= len(zs) || s.Z() > zs[next]+1e-9 {
				return
			}
			ps := s.PowerSpectrum(14, true)
			if c.Rank() == 0 {
				res.Redshifts = append(res.Redshifts, s.Z())
				res.Spectra = append(res.Spectra, ps)
				d := s.LP.Gfac.D(s.A)
				lin := make([]float64, len(ps.K))
				for i, k := range ps.K {
					lin[i] = d * d * s.LP.P(k)
				}
				res.Linear = append(res.Linear, lin)
			}
			next++
		}
		record()
		for s.StepIndex < steps {
			if err := s.Step(); err != nil {
				panic(err)
			}
			record()
		}
	})
	return res, err
}

// PrintPowerEvolution writes Fig. 10-style series: log10 P(k) per epoch.
func PrintPowerEvolution(w io.Writer, r PowerEvolutionResult) {
	if len(r.Spectra) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s", "log10(k)")
	for _, z := range r.Redshifts {
		fmt.Fprintf(w, " z=%-7.2f lin=%-6s", z, "")
	}
	fmt.Fprintln(w)
	n := len(r.Spectra[0].K)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-10.3f", math.Log10(r.Spectra[0].K[i]))
		for e := range r.Spectra {
			p := r.Spectra[e].P[i]
			l := r.Linear[e][i]
			if p <= 0 {
				fmt.Fprintf(w, " %-9s %-9s", "-", "-")
				continue
			}
			fmt.Fprintf(w, " %-9.3f %-9.3f", math.Log10(p), math.Log10(l))
		}
		fmt.Fprintln(w)
	}
}

// HaloResult captures the Fig. 11 / §V mass-function experiment.
type HaloResult struct {
	NHalos      int
	LargestN    int
	NSubhalos   int // in the most massive halo
	MassBins    []float64
	DnDlnM      []float64
	TheoryST    []float64
	TheoryPS    []float64
	SubhaloSize []int
}

// RunHalos evolves a box to zFinal and runs the FOF + sub-halo analysis,
// comparing the mass function to Sheth-Tormen and Press-Schechter.
func RunHalos(ranks, np int, boxMpc float64, steps int, zFinal float64) (HaloResult, error) {
	var res HaloResult
	cfg := core.Config{
		NGrid: np, NParticles: np, BoxMpc: boxMpc,
		ZInit: 24, ZFinal: zFinal, Steps: steps, SubCycles: 3,
		Solver: core.PPTreePM, Seed: 31,
	}
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := core.New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(nil); err != nil {
			panic(err)
		}
		halos := s.FindHalos(0.2, 10)
		nh := mpi.AllReduce(c, []int{len(halos)}, mpi.SumInt)
		largest := 0
		for _, h := range halos {
			if h.N > largest {
				largest = h.N
			}
		}
		lg := mpi.AllReduce(c, []int{largest}, mpi.MaxInt)
		vol := boxMpc * boxMpc * boxMpc
		mMin := 9 * s.ParticleMassMsun
		mMax := 3000 * s.ParticleMassMsun
		mb, dn := analysis.MassFunctionBins(c, halos, vol, mMin, mMax, 8)

		// Sub-halos of this rank's largest halo.
		subSizes := []int{}
		if len(halos) > 0 && halos[0].N == lg[0] {
			na := s.Dom.Active.Len()
			x := append(append([]float32{}, s.Dom.Active.X...), s.Dom.Passive.X...)
			y := append(append([]float32{}, s.Dom.Active.Y...), s.Dom.Passive.Y...)
			z := append(append([]float32{}, s.Dom.Active.Z...), s.Dom.Passive.Z...)
			_ = na
			spacing := float64(np) / float64(np) // lattice spacing in cells
			subs := analysis.FindSubhalos(x, y, z, halos[0].Members,
				analysis.SubhaloOptions{LinkRadius: 0.2 * spacing, MinN: 10})
			for _, sh := range subs {
				subSizes = append(subSizes, sh.N)
			}
		}
		allSub := mpi.Gather(c, 0, subSizes)
		if c.Rank() != 0 {
			return
		}
		res.NHalos = nh[0]
		res.LargestN = lg[0]
		res.MassBins = mb
		res.DnDlnM = dn
		res.SubhaloSize = allSub
		res.NSubhalos = len(allSub)
		mf := cosmology.NewMassFunction(s.LP)
		a := s.A
		for _, m := range mb {
			res.TheoryST = append(res.TheoryST, mf.DnDlnM(m, a, cosmology.ShethTormen))
			res.TheoryPS = append(res.TheoryPS, mf.DnDlnM(m, a, cosmology.PressSchechter))
		}
	})
	return res, err
}

// PrintHalos writes the Fig. 11 report.
func PrintHalos(w io.Writer, r HaloResult) {
	fmt.Fprintf(w, "halos: %d   largest: %d particles   sub-halos in largest: %d sizes=%v\n",
		r.NHalos, r.LargestN, r.NSubhalos, r.SubhaloSize)
	fmt.Fprintf(w, "%-12s %-14s %-14s %-14s\n", "M [Msun/h]", "dn/dlnM sim", "Sheth-Tormen", "Press-Schechter")
	for i := range r.MassBins {
		fmt.Fprintf(w, "%-12.2e %-14.3e %-14.3e %-14.3e\n",
			r.MassBins[i], r.DnDlnM[i], r.TheoryST[i], r.TheoryPS[i])
	}
}

// RunFullWithConfig is RunFull with a config hook for ablations (overload
// width, filter toggles, …) applied after the defaults.
func RunFullWithConfig(o FullOptions, mod func(*core.Config)) (FullResult, error) {
	o.setDefaults()
	cfg := core.Config{
		NGrid: o.NgPerDim, NParticles: o.NpPerDim, BoxMpc: o.BoxMpc,
		ZInit: o.ZInit, ZFinal: o.ZFinal, Steps: o.Steps, SubCycles: o.SubCycles,
		Solver: o.Solver, Seed: o.Seed, Threads: o.Threads, LeafSize: o.LeafSize,
	}
	if mod != nil {
		mod(&cfg)
	}
	return runFullCfg(o, cfg)
}
