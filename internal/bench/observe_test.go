package bench

// Observability acceptance tests (ISSUE 10): a real 4-rank wire run with
// tracing armed must leave a loadable Chrome trace timeline per rank, a
// JSONL journal covering every step, and a collectively-merged wire-latency
// column in the phase-split report — and the reports must never print NaN,
// even for degenerate runs that recorded nothing.

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"hacc/internal/core"
	"hacc/internal/mpi"
	"hacc/internal/obs"
)

// PrintPhaseSplit and PrintFullTable on a zero-value result (no substeps,
// no interactions, no busy time): every would-be division prints "--", and
// no NaN or Inf ever reaches the report.
func TestPrintReportsDegenerateRun(t *testing.T) {
	var r FullResult
	r.Ranks = 2
	var sb strings.Builder
	PrintPhaseSplit(&sb, r)
	PrintFullTable(&sb, []FullResult{r}, 1024)
	out := sb.String()
	for _, bad := range []string{"NaN", "Inf", "nan", "inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("degenerate report contains %q:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "--") {
		t.Errorf("degenerate report has no -- placeholders:\n%s", out)
	}
	if !strings.Contains(out, "wire latency: --") {
		t.Errorf("zero-count run should report wire latency as --:\n%s", out)
	}
}

// chromeTrace mirrors the emitted Chrome trace container for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
	Dropped int64 `json:"droppedSpans"`
}

// The ISSUE 10 acceptance bar, verified end to end rather than sampled: a
// 4-rank wire (TCP loopback) run with tracing armed produces a valid Chrome
// trace JSON per rank (pid == rank on every event), a journal whose step
// records cover every step on every rank, and a wire-latency summary with a
// real merged count feeding the PrintPhaseSplit latency column.
func TestWireObservabilityIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step wire simulation; skipped under -short (race CI)")
	}
	const ranks = 4
	dir := t.TempDir()
	defer obs.DisarmTracing()

	cfg := core.Config{
		NGrid: 12, NParticles: 12, BoxMpc: 96,
		ZInit: 24, ZFinal: 10, Steps: 2, SubCycles: 2,
		Solver: core.PPTreePM, Seed: 7,
		TraceDir: dir,
	}
	var lat mpi.WireLatency
	err := mpi.RunWire(ranks, mpi.WireOptions{Transport: "tcp", Timeout: 60 * time.Second},
		func(c *mpi.Comm) {
			s, err := core.New(c, cfg)
			if err != nil {
				panic(err)
			}
			if err := s.Run(nil); err != nil {
				panic(err)
			}
			l := mpi.WireLatencySummary(c) // collective
			if c.Rank() == 0 {
				lat = l
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	// Every rank's timeline: valid JSON, correct pid, the expected span mix.
	for rank := 0; rank < ranks; rank++ {
		raw, err := os.ReadFile(obs.TracePath(dir, rank))
		if err != nil {
			t.Fatalf("rank %d trace missing: %v", rank, err)
		}
		if !json.Valid(raw) {
			t.Fatalf("rank %d trace is not valid JSON", rank)
		}
		var tr chromeTrace
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("rank %d trace: %v", rank, err)
		}
		if len(tr.TraceEvents) == 0 {
			t.Fatalf("rank %d trace has no events", rank)
		}
		steps, walks := 0, 0
		for _, ev := range tr.TraceEvents {
			if ev.Name == "" || (ev.Ph != "X" && ev.Ph != "M") {
				t.Fatalf("rank %d: malformed event %+v", rank, ev)
			}
			if ev.Pid != rank {
				t.Fatalf("rank %d: event %q has pid %d", rank, ev.Name, ev.Pid)
			}
			if ev.Ph == "X" && ev.Dur < 0 {
				t.Fatalf("rank %d: event %q has negative duration", rank, ev.Name)
			}
			switch ev.Name {
			case "step":
				steps++
			case "walk":
				walks++
			}
		}
		if steps != cfg.Steps {
			t.Errorf("rank %d trace has %d step spans, want %d", rank, steps, cfg.Steps)
		}
		if walks == 0 {
			t.Errorf("rank %d trace has no walk spans", rank)
		}
		if tr.Dropped != 0 {
			t.Errorf("rank %d dropped %d spans in a tiny run", rank, tr.Dropped)
		}
	}

	// Every rank's journal: parseable JSONL with a step record per step.
	for rank := 0; rank < ranks; rank++ {
		f, err := os.Open(obs.JournalPath(dir, rank))
		if err != nil {
			t.Fatalf("rank %d journal missing: %v", rank, err)
		}
		steps := map[int]bool{}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var rec struct {
				Kind string `json:"kind"`
				Step int    `json:"step"`
			}
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("rank %d journal line %q: %v", rank, sc.Text(), err)
			}
			if rec.Kind == "step" {
				steps[rec.Step] = true
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= cfg.Steps; i++ {
			if !steps[i] {
				t.Errorf("rank %d journal missing step %d", rank, i)
			}
		}
	}

	// The merged latency summary: a 4-rank wire run exchanges thousands of
	// frames; the collective merge must see them, and quantiles must order.
	if lat.Count == 0 {
		t.Fatal("wire run merged zero latency samples")
	}
	if lat.P50Ns <= 0 || lat.P99Ns < lat.P50Ns {
		t.Errorf("bad latency quantiles: %+v", lat)
	}
	r := FullResult{WireLatCount: lat.Count, WireLatP50Ns: lat.P50Ns, WireLatP99Ns: lat.P99Ns}
	var sb strings.Builder
	PrintPhaseSplit(&sb, r)
	if !strings.Contains(sb.String(), "wire latency:") || strings.Contains(sb.String(), "wire latency: --") {
		t.Errorf("phase split did not render the latency column:\n%s", sb.String())
	}
}
