package tree

import (
	"sync"

	"hacc/internal/par"
)

// Forest is the multi-tree configuration the paper lists as the next
// load-balancing step (§VI: "improve (nodal) load balancing by using
// multiple trees at each rank, enabling an improved threading of the
// tree-build"). The rank's particles are split into slabs along the
// longest axis; each slab gets its own RCB tree, built concurrently. A
// slab's tree also holds halo copies of particles within RCut of its
// boundaries so that its owned particles see every neighbor; forces
// computed for halo copies are discarded (their owning slab computes them).
type Forest struct {
	Trees []*Tree
	// gather[t] lists the caller indices in tree t's build set, owned
	// particles first; owned[t] is the count of owned entries.
	gather [][]int32
	owned  []int32

	leafSize int
	maxSub   int
	rcut     float64
	// Full-capacity backing arrays; Trees/gather/owned are views of these,
	// resliced per rebuild (the effective slab count varies with the
	// particle extent). Sub-trees and per-tree coordinate scratch persist.
	trees      []*Tree
	gatherBuf  [][]int32
	ownedBuf   []int32
	tx, ty, tz [][]float32
}

// NewForest returns an empty forest of up to nsub slab trees with the given
// fat-leaf capacity and cutoff; call Rebuild to populate it.
func NewForest(leafSize, nsub int, rcut float64) *Forest {
	if nsub < 1 {
		nsub = 1
	}
	f := &Forest{
		leafSize:  leafSize,
		maxSub:    nsub,
		rcut:      rcut,
		trees:     make([]*Tree, nsub),
		gatherBuf: make([][]int32, nsub),
		ownedBuf:  make([]int32, nsub),
		tx:        make([][]float32, nsub),
		ty:        make([][]float32, nsub),
		tz:        make([][]float32, nsub),
	}
	for t := 0; t < nsub; t++ {
		f.trees[t] = New(leafSize)
	}
	return f
}

// BuildForest partitions the particles into nsub slabs (along the longest
// bounding-box axis) and builds the sub-trees concurrently.
func BuildForest(x, y, z []float32, leafSize, nsub int, rcut float64) *Forest {
	f := NewForest(leafSize, nsub, rcut)
	f.Rebuild(x, y, z)
	return f
}

// Rebuild repartitions the particles and reconstructs every sub-tree in
// place, reusing the gather lists, coordinate scratch, and tree storage.
func (f *Forest) Rebuild(x, y, z []float32) {
	n := len(x)
	nsub := f.maxSub
	rcut := f.rcut
	f.Trees = f.trees[:nsub]
	f.gather = f.gatherBuf[:nsub]
	f.owned = f.ownedBuf[:nsub]
	for t := 0; t < nsub; t++ {
		f.gather[t] = f.gather[t][:0]
	}
	if n == 0 {
		for t := 0; t < nsub; t++ {
			f.Trees[t].Rebuild(nil, nil, nil)
			f.owned[t] = 0
		}
		return
	}
	// Longest axis and its range.
	var lo, hi [3]float32
	lo = [3]float32{x[0], y[0], z[0]}
	hi = lo
	for i := 0; i < n; i++ {
		lo[0] = min32(lo[0], x[i])
		lo[1] = min32(lo[1], y[i])
		lo[2] = min32(lo[2], z[i])
		hi[0] = max32(hi[0], x[i])
		hi[1] = max32(hi[1], y[i])
		hi[2] = max32(hi[2], z[i])
	}
	dim := 0
	for d := 1; d < 3; d++ {
		if hi[d]-lo[d] > hi[dim]-lo[dim] {
			dim = d
		}
	}
	coords := [3][]float32{x, y, z}[dim]
	span := float64(hi[dim]-lo[dim]) + 1e-6
	// Slabs narrower than the cutoff would need halo copies from beyond
	// their immediate neighbors; cap the tree count instead.
	if rcut > 0 {
		if lim := int(span / rcut); nsub > lim {
			nsub = lim
		}
		if nsub < 1 {
			nsub = 1
		}
		f.Trees = f.Trees[:nsub]
		f.gather = f.gather[:nsub]
		f.owned = f.owned[:nsub]
	}
	slabOf := func(v float32) int {
		s := int(float64(v-lo[dim]) / span * float64(nsub))
		if s < 0 {
			s = 0
		}
		if s >= nsub {
			s = nsub - 1
		}
		return s
	}
	// Owned membership first, then halo copies within rcut of each slab.
	for i := 0; i < n; i++ {
		s := slabOf(coords[i])
		f.gather[s] = append(f.gather[s], int32(i))
	}
	for t := 0; t < nsub; t++ {
		f.owned[t] = int32(len(f.gather[t]))
	}
	rc := float32(rcut)
	for i := 0; i < n; i++ {
		s := slabOf(coords[i])
		slo := lo[dim] + float32(float64(s)*span/float64(nsub))
		shi := lo[dim] + float32(float64(s+1)*span/float64(nsub))
		if s > 0 && coords[i]-slo < rc {
			f.gather[s-1] = append(f.gather[s-1], int32(i))
		}
		if s < nsub-1 && shi-coords[i] < rc {
			f.gather[s+1] = append(f.gather[s+1], int32(i))
		}
	}
	// Concurrent builds (the threading-of-tree-build payoff).
	var wg sync.WaitGroup
	for t := 0; t < nsub; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			idx := f.gather[t]
			tx := par.Resize(f.tx[t], len(idx))
			ty := par.Resize(f.ty[t], len(idx))
			tz := par.Resize(f.tz[t], len(idx))
			for j, g := range idx {
				tx[j], ty[j], tz[j] = x[g], y[g], z[g]
			}
			f.tx[t], f.ty[t], f.tz[t] = tx, ty, tz
			f.Trees[t].Rebuild(tx, ty, tz)
		}(t)
	}
	wg.Wait()
}

// ComputeForces evaluates every sub-tree; threads are split across trees
// and within them.
func (f *Forest) ComputeForces(kern LeafKernel, rcut float64, threads int) {
	perTree := threads / len(f.Trees)
	if perTree < 1 {
		perTree = 1
	}
	var wg sync.WaitGroup
	for t := range f.Trees {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			f.Trees[t].ComputeForces(kern, rcut, perTree)
		}(t)
	}
	wg.Wait()
}

// ComputeForcesRanges evaluates every sub-tree on the copy-free range walk
// (see Tree.ComputeForcesRanges); threads are split across trees and within
// them.
func (f *Forest) ComputeForcesRanges(kern RangeLeafKernel, rcut float64, threads int) {
	perTree := threads / len(f.Trees)
	if perTree < 1 {
		perTree = 1
	}
	var wg sync.WaitGroup
	for t := range f.Trees {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			f.Trees[t].ComputeForcesRanges(kern, rcut, perTree)
		}(t)
	}
	wg.Wait()
}

// ComputeForcesStealRanges evaluates every sub-tree with leaves distributed
// by the pool's deque-stealing dispatch over the flattened (tree, leaf)
// index space. Unlike ComputeForcesRanges' static per-tree goroutine split
// (which strands threads on cheap slabs when clustering makes per-slab cost
// diverge), any worker can walk any tree's leaves, so the forest
// self-balances. Bitwise ≡ ComputeForcesRanges for any worker count: each
// leaf accumulates only into its own span of its tree's arrays. Returns the
// number of stolen leaves.
func (f *Forest) ComputeForcesStealRanges(kern RangeLeafKernel, rcut float64, pool *par.Pool) int64 {
	total := 0
	for _, tr := range f.Trees {
		tr.prepForces()
		tr.ensureWalk(pool.Workers())
		total += len(tr.leaves)
	}
	if total == 0 {
		return 0
	}
	rc := float32(rcut)
	trees := f.Trees
	return pool.ForSteal(total, 1, func(w, lo, hi int) {
		// Locate the tree containing global leaf lo; trees are short slices,
		// so a linear scan beats a prefix-sum search.
		t, base := 0, 0
		for lo >= base+len(trees[t].leaves) {
			base += len(trees[t].leaves)
			t++
		}
		for g := lo; g < hi; g++ {
			for g >= base+len(trees[t].leaves) {
				base += len(trees[t].leaves)
				t++
			}
			tr := trees[t]
			ws := &tr.walk[w]
			i, v, s := tr.walkLeafRanges(ws, g-base, kern, rc)
			tr.Interactions.Add(i)
			tr.NodesVisited.Add(v)
			tr.NeighborCount.Add(s)
		}
	})
}

// NodesVisited sums walk node visits across the sub-trees.
func (f *Forest) NodesVisited() int64 {
	var s int64
	for _, t := range f.Trees {
		s += t.NodesVisited.Load()
	}
	return s
}

// AccelInto scatters the accelerations of owned particles back to the
// caller's order; halo-copy results are discarded.
func (f *Forest) AccelInto(ax, ay, az []float32) {
	for t, tr := range f.Trees {
		idx := f.gather[t]
		nOwn := f.owned[t]
		for i, o := range tr.orig {
			if o >= nOwn {
				continue
			}
			g := idx[o]
			ax[g] += tr.AX[i]
			ay[g] += tr.AY[i]
			az[g] += tr.AZ[i]
		}
	}
}

// Interactions sums pair-interaction counts across the sub-trees (halo
// duplication included: it is real work done).
func (f *Forest) Interactions() int64 {
	var s int64
	for _, t := range f.Trees {
		s += t.Interactions.Load()
	}
	return s
}

// NeighborCount sums gathered neighbor-list lengths across sub-trees.
func (f *Forest) NeighborCount() int64 {
	var s int64
	for _, t := range f.Trees {
		s += t.NeighborCount.Load()
	}
	return s
}
