// Package tree implements HACC's rank-local recursive coordinate bisection
// (RCB) tree (paper §III). The design follows the paper's two principles:
//
//   - Spatial locality: particles are recursively partitioned in place, so
//     after the build each subtree occupies a contiguous memory range and
//     leaf force evaluation touches only nearby memory.
//   - Walk minimization: leaves are "fat" (tens to hundreds of particles);
//     every particle in a leaf shares one contiguous interaction list, so
//     work shifts from slow pointer-chasing walks into the streaming force
//     kernel.
//
// The short-range force is compact (zero beyond RCut), and periodic images
// are materialized as overloaded replica particles by package domain, so
// the tree is strictly local with open boundaries and no multipoles. PR 1
// made Tree and the multi-tree Forest persistent: Rebuild re-partitions in
// place (retaining coordinate copies, accumulators, the node pool, the
// leaf cache, and per-worker walk scratch) and ComputeForcesPool walks
// leaves over par.Pool with a shared atomic cursor.
//
// PR 7 made the walk copy-free: ComputeForcesRanges (and the Pool/Forest
// variants) hands the kernel ordered (start,end) spans over the tree's
// leaf-contiguous SoA arrays instead of gathering neighbor coordinates.
// Leaves are visited in ascending index order so adjacent spans coalesce,
// and a subtree entirely inside the search box is emitted as one span
// without descending — both invisible to the kernel, because span order
// equals the copy walk's concatenation order (the bitwise oracle
// TestRangeWalkMatchesCopyWalk). The copy walk remains for that oracle.
package tree
