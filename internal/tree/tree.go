package tree

import (
	"sync"
	"sync/atomic"

	"hacc/internal/par"
)

// LeafKernel evaluates the short-range force of every neighbor (nx,ny,nz)
// on every target particle (lx,ly,lz), accumulating into (ax,ay,az) and
// returning the number of pair interactions evaluated.
type LeafKernel func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64

// RangeLeafKernel is the copy-free kernel signature (PR 7): instead of a
// gathered neighbor list it receives the tree's full leaf-contiguous SoA
// coordinate arrays plus the leaf's neighbor set as ordered (start,end)
// spans over them. Satisfied by shortrange.Kernel.ApplyRanges.
type RangeLeafKernel func(lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64

// node is one RCB tree node; leaves have left == -1.
type node struct {
	lo, hi      [3]float32
	start, end  int32
	left, right int32
}

// Tree is a built RCB tree over a working copy of the particles. A Tree may
// be rebuilt in place over new coordinates with Rebuild, which retains every
// backing array (coordinates, accelerations, orig map, node pool, cached
// leaf list, swap buffer) so that sub-cycling allocates nothing after the
// first build — the persistent-solver-state design of the HACC architecture
// (Habib et al., arXiv:1410.2805).
type Tree struct {
	LeafSize   int
	X, Y, Z    []float32 // particle coordinates, leaf-contiguous after build
	AX, AY, AZ []float32
	orig       []int32 // original index of each working slot
	nodes      []node
	leaves     []int32 // leaf node indices, cached at build time
	swapBuf    []int32 // recorded swaps for the three-phase partition

	// Per-worker walk scratch and the shared leaf cursor, persistent
	// across force evaluations (untouched by Rebuild).
	walk []walkScratch
	next atomic.Int64

	// Stats for the bench harness (Fig. 5 / §III time-split claims).
	// Reset by Rebuild: they count work since the last (re)build.
	Interactions  atomic.Int64
	NodesVisited  atomic.Int64
	NeighborCount atomic.Int64 // summed neighbor-list lengths over leaves
	LeafCount     int
}

// New returns an empty tree with the given fat-leaf capacity; call Rebuild
// to populate it.
func New(leafSize int) *Tree {
	if leafSize < 1 {
		leafSize = 1
	}
	return &Tree{LeafSize: leafSize}
}

// Build copies the coordinates and constructs the tree. leafSize is the
// fat-leaf capacity (paper: up to hundreds before the walk/kernel crossover).
func Build(x, y, z []float32, leafSize int) *Tree {
	t := New(leafSize)
	t.Rebuild(x, y, z)
	return t
}

// Rebuild reconstructs the tree over new coordinates, reusing all retained
// storage. Statistics counters restart from zero.
func (t *Tree) Rebuild(x, y, z []float32) {
	n := len(x)
	t.X = append(t.X[:0], x...)
	t.Y = append(t.Y[:0], y...)
	t.Z = append(t.Z[:0], z...)
	t.AX = par.Resize(t.AX, n)
	t.AY = par.Resize(t.AY, n)
	t.AZ = par.Resize(t.AZ, n)
	t.orig = par.Resize(t.orig, n)
	for i := range t.orig {
		t.orig[i] = int32(i)
	}
	t.nodes = t.nodes[:0]
	t.leaves = t.leaves[:0]
	t.Interactions.Store(0)
	t.NodesVisited.Store(0)
	t.NeighborCount.Store(0)
	if n > 0 {
		t.build(0, int32(n))
	}
	t.LeafCount = len(t.leaves)
}

// build adds the subtree for particle range [start,end) and returns its
// node index.
func (t *Tree) build(start, end int32) int32 {
	var nd node
	nd.start, nd.end = start, end
	nd.lo = [3]float32{t.X[start], t.Y[start], t.Z[start]}
	nd.hi = nd.lo
	for i := start; i < end; i++ {
		nd.lo[0] = min32(nd.lo[0], t.X[i])
		nd.hi[0] = max32(nd.hi[0], t.X[i])
		nd.lo[1] = min32(nd.lo[1], t.Y[i])
		nd.hi[1] = max32(nd.hi[1], t.Y[i])
		nd.lo[2] = min32(nd.lo[2], t.Z[i])
		nd.hi[2] = max32(nd.hi[2], t.Z[i])
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, nd)
	if end-start <= int32(t.LeafSize) {
		t.nodes[idx].left, t.nodes[idx].right = -1, -1
		t.leaves = append(t.leaves, idx)
		return idx
	}
	// Split at the center-of-mass coordinate perpendicular to the longest
	// side (equal particle masses: the mean coordinate).
	dim := 0
	for d := 1; d < 3; d++ {
		if nd.hi[d]-nd.lo[d] > nd.hi[dim]-nd.lo[dim] {
			dim = d
		}
	}
	coord := t.axis(dim)
	var sum float64
	for i := start; i < end; i++ {
		sum += float64(coord[i])
	}
	pivot := float32(sum / float64(end-start))
	mid := t.partition(start, end, dim, pivot)
	if mid == start || mid == end {
		// Degenerate (all coordinates equal on this axis): median split by
		// index to guarantee progress.
		mid = (start + end) / 2
	}
	// Children are appended after this node; record their indices.
	l := t.build(start, mid)
	r := t.build(mid, end)
	t.nodes[idx].left, t.nodes[idx].right = l, r
	return idx
}

func (t *Tree) axis(d int) []float32 {
	switch d {
	case 0:
		return t.X
	case 1:
		return t.Y
	default:
		return t.Z
	}
}

// partition reorders [start,end) so particles with coord < pivot precede
// the rest, returning the boundary. Three-phase scheme from §III: the
// dividing coordinate is swept first, recording swaps; the recorded swaps
// are then replayed over the remaining arrays, which lets the hardware
// prefetcher stream each array independently.
func (t *Tree) partition(start, end int32, dim int, pivot float32) int32 {
	coord := t.axis(dim)
	t.swapBuf = t.swapBuf[:0]
	i, j := start, end-1
	for {
		for i <= j && coord[i] < pivot {
			i++
		}
		for i <= j && coord[j] >= pivot {
			j--
		}
		if i >= j {
			break
		}
		coord[i], coord[j] = coord[j], coord[i]
		t.swapBuf = append(t.swapBuf, i, j)
		i++
		j--
	}
	// Phase 2/3: replay swaps on the remaining arrays.
	for d := 0; d < 3; d++ {
		if d == dim {
			continue
		}
		arr := t.axis(d)
		for k := 0; k < len(t.swapBuf); k += 2 {
			a, b := t.swapBuf[k], t.swapBuf[k+1]
			arr[a], arr[b] = arr[b], arr[a]
		}
	}
	for k := 0; k < len(t.swapBuf); k += 2 {
		a, b := t.swapBuf[k], t.swapBuf[k+1]
		t.orig[a], t.orig[b] = t.orig[b], t.orig[a]
	}
	return i
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.LeafCount }

// Depth returns the maximum node depth (root = 1). Iterative with an
// explicit (node, depth) stack: degenerate particle distributions can make
// the RCB tree deep enough that a recursive traversal risks goroutine
// stack growth right in the middle of the force step.
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	type item struct {
		n int32
		d int32
	}
	stack := []item{{0, 1}}
	max := int32(0)
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[it.n]
		if nd.left < 0 {
			if it.d > max {
				max = it.d
			}
			continue
		}
		stack = append(stack, item{nd.left, it.d + 1}, item{nd.right, it.d + 1})
	}
	return int(max)
}

// walkScratch is one worker's neighbor-gather buffers, range list, and walk
// stack, persistent across force evaluations.
type walkScratch struct {
	nbrX, nbrY, nbrZ []float32
	ranges           [][2]int32
	stack            []int32
}

// ensureWalk guarantees at least k per-worker scratch slots.
func (t *Tree) ensureWalk(k int) {
	for len(t.walk) < k {
		t.walk = append(t.walk, walkScratch{})
	}
}

// prepForces zeroes the accumulators and the shared leaf cursor.
func (t *Tree) prepForces() {
	for i := range t.AX {
		t.AX[i], t.AY[i], t.AZ[i] = 0, 0, 0
	}
	t.next.Store(0)
}

// leafLoop pulls leaves from the shared cursor until none remain, using
// worker w's persistent scratch: the dynamically load-balanced inner loop
// of the force evaluation.
func (t *Tree) leafLoop(w int, kern LeafKernel, rc float32) {
	ws := &t.walk[w]
	nbrX, nbrY, nbrZ := ws.nbrX, ws.nbrY, ws.nbrZ
	stack := ws.stack
	var inter, visited, nbrSum int64
	for {
		li := t.next.Add(1) - 1
		if li >= int64(len(t.leaves)) {
			break
		}
		leaf := &t.nodes[t.leaves[li]]
		// Expanded search box.
		var lo, hi [3]float32
		for d := 0; d < 3; d++ {
			lo[d] = leaf.lo[d] - rc
			hi[d] = leaf.hi[d] + rc
		}
		nbrX = nbrX[:0]
		nbrY = nbrY[:0]
		nbrZ = nbrZ[:0]
		stack = append(stack[:0], 0)
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nd := &t.nodes[ni]
			visited++
			if nd.lo[0] > hi[0] || nd.hi[0] < lo[0] ||
				nd.lo[1] > hi[1] || nd.hi[1] < lo[1] ||
				nd.lo[2] > hi[2] || nd.hi[2] < lo[2] {
				continue
			}
			if nd.left < 0 {
				nbrX = append(nbrX, t.X[nd.start:nd.end]...)
				nbrY = append(nbrY, t.Y[nd.start:nd.end]...)
				nbrZ = append(nbrZ, t.Z[nd.start:nd.end]...)
				continue
			}
			// Right below left so the left child pops first: leaves are
			// visited in ascending particle-index order, the same order
			// leafLoopRanges emits spans in — keeping the two walks
			// bitwise-comparable (TestRangeWalkMatchesCopyWalk).
			stack = append(stack, nd.right, nd.left)
		}
		nbrSum += int64(len(nbrX))
		s, e := leaf.start, leaf.end
		inter += kern(t.X[s:e], t.Y[s:e], t.Z[s:e],
			nbrX, nbrY, nbrZ,
			t.AX[s:e], t.AY[s:e], t.AZ[s:e])
	}
	ws.nbrX, ws.nbrY, ws.nbrZ = nbrX, nbrY, nbrZ
	ws.stack = stack
	t.Interactions.Add(inter)
	t.NodesVisited.Add(visited)
	t.NeighborCount.Add(nbrSum)
}

// leafLoopRanges is leafLoop without the gather: the walk names each leaf's
// neighbor set as ordered (start,end) spans over the tree's leaf-contiguous
// SoA arrays instead of copying O(neighbors) coordinates into scratch.
// Because leaves pop in ascending index order, spans from adjacent leaves
// coalesce (the common case: siblings pruned together), and a subtree whose
// box lies entirely inside the search box is emitted as one span without
// descending — its particle range [start,end) is contiguous by RCB
// construction, and the span order equals the copy walk's leaf-by-leaf
// concatenation order, so both short-cuts are invisible to the kernel.
func (t *Tree) leafLoopRanges(w int, kern RangeLeafKernel, rc float32) {
	ws := &t.walk[w]
	var inter, visited, nbrSum int64
	for {
		li := t.next.Add(1) - 1
		if li >= int64(len(t.leaves)) {
			break
		}
		i, v, s := t.walkLeafRanges(ws, int(li), kern, rc)
		inter += i
		visited += v
		nbrSum += s
	}
	t.Interactions.Add(inter)
	t.NodesVisited.Add(visited)
	t.NeighborCount.Add(nbrSum)
}

// walkLeafRanges performs the range walk and kernel call for one leaf using
// the given scratch. It is the per-leaf unit of work shared by the cursor
// dispatch (leafLoopRanges) and the stealing dispatch
// (ComputeForcesStealRanges); results are bitwise independent of which
// worker runs a leaf because accumulation targets only that leaf's span.
func (t *Tree) walkLeafRanges(ws *walkScratch, li int, kern RangeLeafKernel, rc float32) (inter, visited, nbrSum int64) {
	ranges := ws.ranges
	stack := ws.stack
	leaf := &t.nodes[t.leaves[li]]
	// Expanded search box.
	var lo, hi [3]float32
	for d := 0; d < 3; d++ {
		lo[d] = leaf.lo[d] - rc
		hi[d] = leaf.hi[d] + rc
	}
	ranges = ranges[:0]
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[ni]
		visited++
		if nd.lo[0] > hi[0] || nd.hi[0] < lo[0] ||
			nd.lo[1] > hi[1] || nd.hi[1] < lo[1] ||
			nd.lo[2] > hi[2] || nd.hi[2] < lo[2] {
			continue
		}
		if nd.left < 0 ||
			(nd.lo[0] >= lo[0] && nd.hi[0] <= hi[0] &&
				nd.lo[1] >= lo[1] && nd.hi[1] <= hi[1] &&
				nd.lo[2] >= lo[2] && nd.hi[2] <= hi[2]) {
			// Leaf, or interior node fully inside the search box.
			if k := len(ranges); k > 0 && ranges[k-1][1] == nd.start {
				ranges[k-1][1] = nd.end
			} else {
				ranges = append(ranges, [2]int32{nd.start, nd.end})
			}
			nbrSum += int64(nd.end - nd.start)
			continue
		}
		stack = append(stack, nd.right, nd.left)
	}
	s, e := leaf.start, leaf.end
	inter = kern(t.X[s:e], t.Y[s:e], t.Z[s:e],
		t.X, t.Y, t.Z, ranges,
		t.AX[s:e], t.AY[s:e], t.AZ[s:e])
	ws.ranges = ranges
	ws.stack = stack
	return inter, visited, nbrSum
}

// ComputeForces walks the tree once per leaf, gathers that leaf's shared
// interaction list into contiguous per-worker scratch, and invokes the
// kernel; leaves are processed by `threads` goroutines. Accelerations
// accumulate into AX/AY/AZ (zeroed first).
func (t *Tree) ComputeForces(kern LeafKernel, rcut float64, threads int) {
	t.prepForces()
	if len(t.nodes) == 0 {
		return
	}
	if threads < 1 {
		threads = 1
	}
	t.ensureWalk(threads)
	rc := float32(rcut)
	if threads == 1 {
		t.leafLoop(0, kern, rc)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t.leafLoop(w, kern, rc)
		}(w)
	}
	wg.Wait()
}

// ComputeForcesPool is ComputeForces dispatched on a persistent worker
// pool: no goroutine spawns, no per-call scratch — the zero-allocation
// sub-cycling configuration.
func (t *Tree) ComputeForcesPool(kern LeafKernel, rcut float64, pool *par.Pool) {
	t.prepForces()
	if len(t.nodes) == 0 {
		return
	}
	t.ensureWalk(pool.Workers())
	rc := float32(rcut)
	pool.Run(0, func(w int) { t.leafLoop(w, kern, rc) })
}

// ComputeForcesRanges is ComputeForces on the copy-free range walk: the
// kernel receives (start,end) spans over the tree's SoA arrays instead of a
// gathered neighbor copy. The production force path; ComputeForces with a
// copy kernel remains as the equivalence oracle.
func (t *Tree) ComputeForcesRanges(kern RangeLeafKernel, rcut float64, threads int) {
	t.prepForces()
	if len(t.nodes) == 0 {
		return
	}
	if threads < 1 {
		threads = 1
	}
	t.ensureWalk(threads)
	rc := float32(rcut)
	if threads == 1 {
		t.leafLoopRanges(0, kern, rc)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t.leafLoopRanges(w, kern, rc)
		}(w)
	}
	wg.Wait()
}

// ComputeForcesPoolRanges is ComputeForcesRanges dispatched on a persistent
// worker pool: the zero-allocation sub-cycling configuration.
func (t *Tree) ComputeForcesPoolRanges(kern RangeLeafKernel, rcut float64, pool *par.Pool) {
	t.prepForces()
	if len(t.nodes) == 0 {
		return
	}
	t.ensureWalk(pool.Workers())
	rc := float32(rcut)
	pool.Run(0, func(w int) { t.leafLoopRanges(w, kern, rc) })
}

// ComputeForcesStealRanges is ComputeForcesPoolRanges on the pool's
// deque-stealing dispatch (par.ForSteal): workers start with contiguous
// leaf shards and steal trailing leaves from overloaded neighbors, so a
// clustered region parked on one worker self-balances. Bitwise ≡ the cursor
// and static dispatches for any worker count (per-leaf accumulation).
// Returns the number of stolen leaves.
func (t *Tree) ComputeForcesStealRanges(kern RangeLeafKernel, rcut float64, pool *par.Pool) int64 {
	t.prepForces()
	if len(t.nodes) == 0 {
		return 0
	}
	t.ensureWalk(pool.Workers())
	rc := float32(rcut)
	return pool.ForSteal(len(t.leaves), 1, func(w, lo, hi int) {
		ws := &t.walk[w]
		var inter, visited, nbrSum int64
		for li := lo; li < hi; li++ {
			i, v, s := t.walkLeafRanges(ws, li, kern, rc)
			inter += i
			visited += v
			nbrSum += s
		}
		t.Interactions.Add(inter)
		t.NodesVisited.Add(visited)
		t.NeighborCount.Add(nbrSum)
	})
}

// AccelInto scatters the computed accelerations back to the caller's
// original particle order (adding into the provided arrays).
func (t *Tree) AccelInto(ax, ay, az []float32) {
	for i, o := range t.orig {
		ax[o] += t.AX[i]
		ay[o] += t.AY[i]
		az[o] += t.AZ[i]
	}
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
