package tree

import (
	"math/rand"
	"testing"

	"hacc/internal/par"
)

// treeForces computes forces and scatters them to caller order.
func treeForces(tr *Tree, n, threads int) (ax, ay, az []float32) {
	tr.ComputeForces(testKernel(9), 3, threads)
	ax = make([]float32, n)
	ay = make([]float32, n)
	az = make([]float32, n)
	tr.AccelInto(ax, ay, az)
	return
}

// TestRebuildMatchesBuild reuses one Tree across particle sets of varying
// size and checks the result is bitwise identical to a fresh Build each
// time — the persistent solver state must be indistinguishable from the
// seed's rebuild-from-scratch behavior.
func TestRebuildMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	persistent := New(24)
	for _, n := range []int{400, 1000, 120, 0, 700} {
		x, y, z := randomParticles(n, 10, rng)
		persistent.Rebuild(x, y, z)
		fresh := Build(x, y, z, 24)
		if persistent.Leaves() != fresh.Leaves() || len(persistent.nodes) != len(fresh.nodes) {
			t.Fatalf("n=%d: structure differs: %d/%d leaves, %d/%d nodes",
				n, persistent.Leaves(), fresh.Leaves(), len(persistent.nodes), len(fresh.nodes))
		}
		for i := range fresh.orig {
			if persistent.orig[i] != fresh.orig[i] ||
				persistent.X[i] != fresh.X[i] || persistent.Y[i] != fresh.Y[i] || persistent.Z[i] != fresh.Z[i] {
				t.Fatalf("n=%d: slot %d differs after rebuild", n, i)
			}
		}
		pax, pay, paz := treeForces(persistent, n, 3)
		fax, fay, faz := treeForces(fresh, n, 3)
		for i := 0; i < n; i++ {
			if pax[i] != fax[i] || pay[i] != fay[i] || paz[i] != faz[i] {
				t.Fatalf("n=%d: force %d differs: (%g,%g,%g) vs (%g,%g,%g)",
					n, i, pax[i], pay[i], paz[i], fax[i], fay[i], faz[i])
			}
		}
		if persistent.Interactions.Load() != fresh.Interactions.Load() {
			t.Fatalf("n=%d: interaction counts differ: %d vs %d",
				n, persistent.Interactions.Load(), fresh.Interactions.Load())
		}
	}
}

// TestRebuildResetsStats checks the per-build statistics contract.
func TestRebuildResetsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	x, y, z := randomParticles(300, 8, rng)
	tr := Build(x, y, z, 16)
	tr.ComputeForces(testKernel(9), 3, 2)
	if tr.Interactions.Load() == 0 {
		t.Fatal("no interactions counted")
	}
	tr.Rebuild(x, y, z)
	if tr.Interactions.Load() != 0 || tr.NodesVisited.Load() != 0 || tr.NeighborCount.Load() != 0 {
		t.Fatal("Rebuild did not reset statistics")
	}
}

// TestComputeForcesPoolMatches checks the pooled dispatch against the
// spawning path (bitwise: leaves own disjoint output ranges).
func TestComputeForcesPoolMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x, y, z := randomParticles(600, 12, rng)
	pool := par.NewPool(4)
	a := Build(x, y, z, 24)
	a.ComputeForcesPool(testKernel(9), 3, pool)
	b := Build(x, y, z, 24)
	b.ComputeForces(testKernel(9), 3, 1)
	for i := range a.AX {
		if a.AX[i] != b.AX[i] || a.AY[i] != b.AY[i] || a.AZ[i] != b.AZ[i] {
			t.Fatalf("pooled force %d differs", i)
		}
	}
	if a.Interactions.Load() != b.Interactions.Load() {
		t.Fatalf("interaction counts differ: %d vs %d", a.Interactions.Load(), b.Interactions.Load())
	}
}

// TestForestRebuildMatchesBuild reuses one Forest across particle sets and
// compares against fresh BuildForest results.
func TestForestRebuildMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	persistent := NewForest(16, 4, 2)
	for _, n := range []int{800, 250, 0, 1200} {
		x, y, z := randomParticles(n, 20, rng)
		persistent.Rebuild(x, y, z)
		fresh := BuildForest(x, y, z, 16, 4, 2)
		if len(persistent.Trees) != len(fresh.Trees) {
			t.Fatalf("n=%d: tree counts differ: %d vs %d", n, len(persistent.Trees), len(fresh.Trees))
		}
		persistent.ComputeForces(testKernel(4), 2, 3)
		fresh.ComputeForces(testKernel(4), 2, 3)
		pax := make([]float32, n)
		pay := make([]float32, n)
		paz := make([]float32, n)
		fax := make([]float32, n)
		fay := make([]float32, n)
		faz := make([]float32, n)
		persistent.AccelInto(pax, pay, paz)
		fresh.AccelInto(fax, fay, faz)
		for i := 0; i < n; i++ {
			if pax[i] != fax[i] || pay[i] != fay[i] || paz[i] != faz[i] {
				t.Fatalf("n=%d: forest force %d differs", n, i)
			}
		}
		if persistent.Interactions() != fresh.Interactions() {
			t.Fatalf("n=%d: interactions differ: %d vs %d", n, persistent.Interactions(), fresh.Interactions())
		}
	}
}
