package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomParticles(n int, box float64, rng *rand.Rand) (x, y, z []float32) {
	x = make([]float32, n)
	y = make([]float32, n)
	z = make([]float32, n)
	for i := 0; i < n; i++ {
		x[i] = float32(rng.Float64() * box)
		y[i] = float32(rng.Float64() * box)
		z[i] = float32(rng.Float64() * box)
	}
	return
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y, z := randomParticles(500, 16, rng)
	tr := Build(x, y, z, 16)

	// orig is a permutation and working arrays hold permuted inputs.
	seen := make([]bool, 500)
	for i, o := range tr.orig {
		if seen[o] {
			t.Fatalf("orig not a permutation: %d repeated", o)
		}
		seen[o] = true
		if tr.X[i] != x[o] || tr.Y[i] != y[o] || tr.Z[i] != z[o] {
			t.Fatalf("slot %d does not match original %d", i, o)
		}
	}
	// Node ranges: children partition the parent; leaves are within size;
	// bounding boxes contain their particles.
	for ni := range tr.nodes {
		nd := &tr.nodes[ni]
		if nd.left >= 0 {
			l, r := &tr.nodes[nd.left], &tr.nodes[nd.right]
			if l.start != nd.start || l.end != r.start || r.end != nd.end {
				t.Fatalf("node %d children do not partition [%d,%d): [%d,%d)+[%d,%d)",
					ni, nd.start, nd.end, l.start, l.end, r.start, r.end)
			}
		} else if nd.end-nd.start > int32(tr.LeafSize) {
			t.Fatalf("leaf %d holds %d > %d particles", ni, nd.end-nd.start, tr.LeafSize)
		}
		for i := nd.start; i < nd.end; i++ {
			if tr.X[i] < nd.lo[0] || tr.X[i] > nd.hi[0] ||
				tr.Y[i] < nd.lo[1] || tr.Y[i] > nd.hi[1] ||
				tr.Z[i] < nd.lo[2] || tr.Z[i] > nd.hi[2] {
				t.Fatalf("particle %d escapes node %d box", i, ni)
			}
		}
	}
	if tr.Leaves() == 0 || tr.Depth() == 0 {
		t.Error("stats not populated")
	}
}

func TestBuildDegenerate(t *testing.T) {
	// All particles at the same point must not recurse forever.
	n := 100
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	tr := Build(x, y, z, 8)
	if tr.Leaves() < n/8 {
		t.Errorf("degenerate build produced %d leaves", tr.Leaves())
	}
	// Empty build.
	tr = Build(nil, nil, nil, 8)
	if tr.Leaves() != 0 {
		t.Error("empty tree should have no leaves")
	}
	tr.ComputeForces(func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 { return 0 }, 1, 2)
}

// testKernel is a plain softened inverse-square law with cutoff, evaluated
// identically by the tree path and the brute-force reference.
func testKernel(rcut2 float64) LeafKernel {
	return func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
		for i := range lx {
			var sx, sy, sz float64
			for j := range nx {
				dx := float64(nx[j] - lx[i])
				dy := float64(ny[j] - ly[i])
				dz := float64(nz[j] - lz[i])
				s := dx*dx + dy*dy + dz*dz
				if s >= rcut2 || s == 0 {
					continue
				}
				f := 1 / ((s + 1e-4) * math.Sqrt(s+1e-4))
				sx += dx * f
				sy += dy * f
				sz += dz * f
			}
			ax[i] += float32(sx)
			ay[i] += float32(sy)
			az[i] += float32(sz)
		}
		return int64(len(lx)) * int64(len(nx))
	}
}

func bruteForce(x, y, z []float32, rcut2 float64) (ax, ay, az []float32) {
	n := len(x)
	ax = make([]float32, n)
	ay = make([]float32, n)
	az = make([]float32, n)
	for i := 0; i < n; i++ {
		var sx, sy, sz float64
		for j := 0; j < n; j++ {
			dx := float64(x[j] - x[i])
			dy := float64(y[j] - y[i])
			dz := float64(z[j] - z[i])
			s := dx*dx + dy*dy + dz*dz
			if s >= rcut2 || s == 0 {
				continue
			}
			f := 1 / ((s + 1e-4) * math.Sqrt(s+1e-4))
			sx += dx * f
			sy += dy * f
			sz += dz * f
		}
		ax[i] = float32(sx)
		ay[i] = float32(sy)
		az[i] = float32(sz)
	}
	return
}

func TestForcesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rcut = 3.0
	for _, leafSize := range []int{1, 4, 16, 64, 1000} {
		x, y, z := randomParticles(300, 12, rng)
		tr := Build(x, y, z, leafSize)
		tr.ComputeForces(testKernel(rcut*rcut), rcut, 3)
		ax := make([]float32, 300)
		ay := make([]float32, 300)
		az := make([]float32, 300)
		tr.AccelInto(ax, ay, az)
		bx, by, bz := bruteForce(x, y, z, rcut*rcut)
		var scale float64
		for i := range bx {
			scale = math.Max(scale, math.Abs(float64(bx[i])))
		}
		for i := range bx {
			if math.Abs(float64(ax[i]-bx[i])) > 2e-4*scale ||
				math.Abs(float64(ay[i]-by[i])) > 2e-4*scale ||
				math.Abs(float64(az[i]-bz[i])) > 2e-4*scale {
				t.Fatalf("leafSize=%d particle %d: tree (%g,%g,%g) brute (%g,%g,%g)",
					leafSize, i, ax[i], ay[i], az[i], bx[i], by[i], bz[i])
			}
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	// Each leaf writes a disjoint range in a deterministic order, so the
	// result must be bitwise identical for any thread count.
	rng := rand.New(rand.NewSource(9))
	x, y, z := randomParticles(400, 10, rng)
	get := func(threads int) ([]float32, []float32, []float32) {
		tr := Build(x, y, z, 24)
		tr.ComputeForces(testKernel(9), 3, threads)
		ax := make([]float32, 400)
		ay := make([]float32, 400)
		az := make([]float32, 400)
		tr.AccelInto(ax, ay, az)
		return ax, ay, az
	}
	a1x, a1y, a1z := get(1)
	a8x, a8y, a8z := get(8)
	for i := range a1x {
		if a1x[i] != a8x[i] || a1y[i] != a8y[i] || a1z[i] != a8z[i] {
			t.Fatalf("thread count changed result at %d", i)
		}
	}
}

func TestInteractionCountProperty(t *testing.T) {
	// The tree must evaluate every (target, neighbor-within-rcut-box) pair:
	// interactions reported ≥ exact pair count within rcut, and every
	// within-rcut pair must be covered (checked via force equality above;
	// here check the counting invariant Interactions = Σ leaf·list sizes).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		leafSize := 1 + rng.Intn(64)
		x, y, z := randomParticles(n, 8, rng)
		tr := Build(x, y, z, leafSize)
		count := func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
			return int64(len(lx)) * int64(len(nx))
		}
		tr.ComputeForces(count, 2.0, 2)
		// Exact pair count within rcut (including self-pairs i==i).
		exact := int64(0)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dx := float64(x[j] - x[i])
				dy := float64(y[j] - y[i])
				dz := float64(z[j] - z[i])
				if dx*dx+dy*dy+dz*dz <= 4.0 {
					exact++
				}
			}
		}
		return tr.Interactions.Load() >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkMinimizationTradeoff(t *testing.T) {
	// Paper §III: growing the leaf size shifts work from the walk into the
	// kernel — nodes visited must drop, interactions must rise.
	rng := rand.New(rand.NewSource(4))
	x, y, z := randomParticles(2000, 16, rng)
	kern := func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
		return int64(len(lx)) * int64(len(nx))
	}
	small := Build(x, y, z, 4)
	small.ComputeForces(kern, 3, 2)
	big := Build(x, y, z, 128)
	big.ComputeForces(kern, 3, 2)
	if big.NodesVisited.Load() >= small.NodesVisited.Load() {
		t.Errorf("fat leaves should cut walk: %d vs %d visits",
			big.NodesVisited.Load(), small.NodesVisited.Load())
	}
	if big.Interactions.Load() <= small.Interactions.Load() {
		t.Errorf("fat leaves should add kernel work: %d vs %d interactions",
			big.Interactions.Load(), small.Interactions.Load())
	}
}
