package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForestMatchesSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, z := randomParticles(1500, 20, rng)
	const rcut = 2.5
	kern := testKernel(rcut * rcut)

	single := Build(x, y, z, 32)
	single.ComputeForces(kern, rcut, 2)
	sx := make([]float32, len(x))
	sy := make([]float32, len(x))
	sz := make([]float32, len(x))
	single.AccelInto(sx, sy, sz)

	for _, nsub := range []int{1, 2, 4, 7} {
		forest := BuildForest(x, y, z, 32, nsub, rcut)
		forest.ComputeForces(kern, rcut, 4)
		fx := make([]float32, len(x))
		fy := make([]float32, len(x))
		fz := make([]float32, len(x))
		forest.AccelInto(fx, fy, fz)
		var scale float64
		for i := range sx {
			scale = math.Max(scale, math.Abs(float64(sx[i])))
		}
		for i := range sx {
			if math.Abs(float64(fx[i]-sx[i])) > 2e-4*scale ||
				math.Abs(float64(fy[i]-sy[i])) > 2e-4*scale ||
				math.Abs(float64(fz[i]-sz[i])) > 2e-4*scale {
				t.Fatalf("nsub=%d particle %d: forest (%g,%g,%g) single (%g,%g,%g)",
					nsub, i, fx[i], fy[i], fz[i], sx[i], sy[i], sz[i])
			}
		}
	}
}

func TestForestClampsNarrowSlabs(t *testing.T) {
	// 100 particles in a 4-cell span with rcut=2: at most 2 slabs fit.
	rng := rand.New(rand.NewSource(3))
	x, y, z := randomParticles(100, 4, rng)
	f := BuildForest(x, y, z, 16, 16, 2.0)
	if len(f.Trees) > 2 {
		t.Errorf("forest kept %d slabs for a 4-cell span at rcut=2", len(f.Trees))
	}
}

func TestForestEmptyAndSingle(t *testing.T) {
	f := BuildForest(nil, nil, nil, 16, 4, 2)
	f.ComputeForces(testKernel(4), 2, 2)
	f.AccelInto(nil, nil, nil)
	if f.Interactions() != 0 {
		t.Error("empty forest did work")
	}
	x := []float32{1}
	y := []float32{2}
	z := []float32{3}
	f = BuildForest(x, y, z, 16, 4, 2)
	f.ComputeForces(testKernel(4), 2, 2)
	ax := make([]float32, 1)
	f.AccelInto(ax, ax, ax)
}

func TestForestOwnershipPartitionProperty(t *testing.T) {
	// Every particle is owned by exactly one sub-tree, so the scattered
	// acceleration of a "count ones" kernel equals the single-tree result.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		nsub := 1 + rng.Intn(6)
		x, y, z := randomParticles(n, 16, rng)
		countKern := func(lx, ly, lz, nx, ny, nz, ax, ay, az []float32) int64 {
			for i := range lx {
				ax[i] += 1 // one per leaf evaluation of this particle
			}
			return int64(len(lx)) * int64(len(nx))
		}
		forest := BuildForest(x, y, z, 24, nsub, 2.0)
		ax := make([]float32, n)
		ay := make([]float32, n)
		az := make([]float32, n)
		forest.ComputeForces(countKern, 2.0, 3)
		forest.AccelInto(ax, ay, az)
		for i := range ax {
			if ax[i] != 1 {
				return false // double-owned or orphaned particle
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
