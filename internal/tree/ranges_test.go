package tree

import (
	"math"
	"math/rand"
	"testing"
)

// copyAdapter turns a copy-list kernel into a RangeLeafKernel by gathering
// the spans into a contiguous list, in span order. Running the range walk
// through this adapter must reproduce the copy walk bitwise: the two walks
// are then proven to present identical neighbor sets in identical order,
// and any difference between production paths is confined to the kernel's
// documented-ULP accumulation (shortrange.TestApplyRangesULPBound).
func copyAdapter(kern LeafKernel) RangeLeafKernel {
	return func(lx, ly, lz, px, py, pz []float32, ranges [][2]int32, ax, ay, az []float32) int64 {
		var nx, ny, nz []float32
		for _, r := range ranges {
			nx = append(nx, px[r[0]:r[1]]...)
			ny = append(ny, py[r[0]:r[1]]...)
			nz = append(nz, pz[r[0]:r[1]]...)
		}
		return kern(lx, ly, lz, nx, ny, nz, ax, ay, az)
	}
}

// TestRangeWalkMatchesCopyWalk is the bitwise walk oracle: the range walk
// (with leaf-span coalescing and whole-subtree subsumption) fed through the
// copy adapter must equal the copy walk exactly, for a spread of leaf sizes
// and cutoffs, in both the goroutine and single-thread configurations.
func TestRangeWalkMatchesCopyWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kern := testKernel(4)
	for _, leafSize := range []int{1, 8, 64} {
		for _, rcut := range []float64{0.5, 2, 6} {
			x, y, z := randomParticles(700, 16, rng)
			tr := Build(x, y, z, leafSize)
			tr.ComputeForces(kern, rcut, 3)
			ax0 := append([]float32(nil), tr.AX...)
			ay0 := append([]float32(nil), tr.AY...)
			az0 := append([]float32(nil), tr.AZ...)
			copyNbr := tr.NeighborCount.Load()

			tr.Interactions.Store(0)
			tr.NodesVisited.Store(0)
			tr.NeighborCount.Store(0)
			tr.ComputeForcesRanges(copyAdapter(kern), rcut, 3)
			if got, want := tr.NeighborCount.Load(), copyNbr; got != want {
				t.Fatalf("leaf=%d rcut=%g: range walk saw %d neighbors, copy walk %d",
					leafSize, rcut, got, want)
			}
			for i := range ax0 {
				if math.Float32bits(tr.AX[i]) != math.Float32bits(ax0[i]) ||
					math.Float32bits(tr.AY[i]) != math.Float32bits(ay0[i]) ||
					math.Float32bits(tr.AZ[i]) != math.Float32bits(az0[i]) {
					t.Fatalf("leaf=%d rcut=%g: particle %d differs: (%v %v %v) vs (%v %v %v)",
						leafSize, rcut, i, tr.AX[i], tr.AY[i], tr.AZ[i], ax0[i], ay0[i], az0[i])
				}
			}
		}
	}
}

// TestForestRangeWalkMatchesCopyWalk extends the walk oracle across the
// multi-tree forest path (halo construction included).
func TestForestRangeWalkMatchesCopyWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y, z := randomParticles(900, 20, rng)
	kern := testKernel(4)
	const rcut = 2.0

	f0 := BuildForest(x, y, z, 16, 3, rcut)
	f0.ComputeForces(kern, rcut, 3)
	ax0 := make([]float32, len(x))
	ay0 := make([]float32, len(x))
	az0 := make([]float32, len(x))
	f0.AccelInto(ax0, ay0, az0)

	f1 := BuildForest(x, y, z, 16, 3, rcut)
	f1.ComputeForcesRanges(copyAdapter(kern), rcut, 3)
	ax1 := make([]float32, len(x))
	ay1 := make([]float32, len(x))
	az1 := make([]float32, len(x))
	f1.AccelInto(ax1, ay1, az1)

	for i := range ax0 {
		if math.Float32bits(ax1[i]) != math.Float32bits(ax0[i]) ||
			math.Float32bits(ay1[i]) != math.Float32bits(ay0[i]) ||
			math.Float32bits(az1[i]) != math.Float32bits(az0[i]) {
			t.Fatalf("particle %d differs: (%v %v %v) vs (%v %v %v)",
				i, ax1[i], ay1[i], az1[i], ax0[i], ay0[i], az0[i])
		}
	}
}

// TestRangeWalkThreadInvariance: the range walk partitions leaves over
// workers dynamically, but per-leaf spans are deterministic, so results
// must be independent of thread count and of goroutine-vs-pool dispatch.
func TestRangeWalkThreadInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y, z := randomParticles(600, 12, rng)
	kern := testKernel(4)
	tr := Build(x, y, z, 24)
	tr.ComputeForcesRanges(copyAdapter(kern), 2, 1)
	ax0 := append([]float32(nil), tr.AX...)
	for _, threads := range []int{2, 5} {
		tr.ComputeForcesRanges(copyAdapter(kern), 2, threads)
		for i := range ax0 {
			if math.Float32bits(tr.AX[i]) != math.Float32bits(ax0[i]) {
				t.Fatalf("threads=%d: particle %d: %v vs %v", threads, i, tr.AX[i], ax0[i])
			}
		}
	}
}

// TestDepthIterative pins the iterative Depth against the structural
// recurrence on a freshly built tree (and the degenerate deep case).
func TestDepthIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x, y, z := randomParticles(512, 10, rng)
	tr := Build(x, y, z, 4)
	var rec func(n int32) int
	rec = func(n int32) int {
		nd := &tr.nodes[n]
		if nd.left < 0 {
			return 1
		}
		l, r := rec(nd.left), rec(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if got, want := tr.Depth(), rec(0); got != want {
		t.Fatalf("Depth() = %d, recursive reference %d", got, want)
	}
	// Degenerate: identical coordinates force index-median splits all the
	// way down; depth must be ~log2(n/leaf)+1 and must not stack-overflow.
	n := 1 << 12
	xs := make([]float32, n)
	deep := Build(xs, xs, xs, 1)
	if got := deep.Depth(); got != 13 {
		t.Fatalf("degenerate depth = %d, want 13", got)
	}
}
