package tree

import (
	"math"
	"math/rand"
	"testing"

	"hacc/internal/par"
)

// TestStealWalkMatchesPoolWalk pins the stealing dispatch against the
// shared-cursor dispatch on a single tree: bitwise-identical accelerations
// and identical walk statistics for every pool size.
func TestStealWalkMatchesPoolWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	kern := copyAdapter(testKernel(4))
	const rcut = 2.0
	x, y, z := randomParticles(800, 16, rng)
	tr := Build(x, y, z, 16)
	tr.ComputeForcesPoolRanges(kern, rcut, par.NewPool(1))
	ax0 := append([]float32(nil), tr.AX...)
	ay0 := append([]float32(nil), tr.AY...)
	az0 := append([]float32(nil), tr.AZ...)
	inter0, visit0, nbr0 := tr.Interactions.Load(), tr.NodesVisited.Load(), tr.NeighborCount.Load()
	for _, workers := range []int{1, 2, 3, 5} {
		tr.Interactions.Store(0)
		tr.NodesVisited.Store(0)
		tr.NeighborCount.Store(0)
		tr.ComputeForcesStealRanges(kern, rcut, par.NewPool(workers))
		if tr.Interactions.Load() != inter0 || tr.NodesVisited.Load() != visit0 || tr.NeighborCount.Load() != nbr0 {
			t.Fatalf("workers=%d: stats (%d,%d,%d) differ from cursor walk (%d,%d,%d)",
				workers, tr.Interactions.Load(), tr.NodesVisited.Load(), tr.NeighborCount.Load(),
				inter0, visit0, nbr0)
		}
		for i := range ax0 {
			if math.Float32bits(tr.AX[i]) != math.Float32bits(ax0[i]) ||
				math.Float32bits(tr.AY[i]) != math.Float32bits(ay0[i]) ||
				math.Float32bits(tr.AZ[i]) != math.Float32bits(az0[i]) {
				t.Fatalf("workers=%d: particle %d differs: (%v %v %v) vs (%v %v %v)",
					workers, i, tr.AX[i], tr.AY[i], tr.AZ[i], ax0[i], ay0[i], az0[i])
			}
		}
	}
}

// TestForestStealMatchesStatic pins the flattened (tree, leaf) stealing
// dispatch against the static per-tree goroutine split across worker
// counts: the two schedules must agree bitwise on scattered accelerations
// and exactly on the summed statistics.
func TestForestStealMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	kern := copyAdapter(testKernel(4))
	const rcut = 2.0
	// Clustered distribution: most particles in one slab so the static split
	// is badly imbalanced — the case the stealing dispatch exists for.
	n := 900
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		if i < 700 {
			x[i] = rng.Float32() * 3
		} else {
			x[i] = rng.Float32() * 20
		}
		y[i] = rng.Float32() * 20
		z[i] = rng.Float32() * 20
	}

	f0 := BuildForest(x, y, z, 16, 3, rcut)
	f0.ComputeForcesRanges(kern, rcut, 3)
	ax0 := make([]float32, n)
	ay0 := make([]float32, n)
	az0 := make([]float32, n)
	f0.AccelInto(ax0, ay0, az0)
	inter0, visit0, nbr0 := f0.Interactions(), f0.NodesVisited(), f0.NeighborCount()

	for _, workers := range []int{1, 2, 4} {
		f1 := BuildForest(x, y, z, 16, 3, rcut)
		f1.ComputeForcesStealRanges(kern, rcut, par.NewPool(workers))
		if f1.Interactions() != inter0 || f1.NodesVisited() != visit0 || f1.NeighborCount() != nbr0 {
			t.Fatalf("workers=%d: stats (%d,%d,%d) differ from static (%d,%d,%d)",
				workers, f1.Interactions(), f1.NodesVisited(), f1.NeighborCount(), inter0, visit0, nbr0)
		}
		ax1 := make([]float32, n)
		ay1 := make([]float32, n)
		az1 := make([]float32, n)
		f1.AccelInto(ax1, ay1, az1)
		for i := range ax0 {
			if math.Float32bits(ax1[i]) != math.Float32bits(ax0[i]) ||
				math.Float32bits(ay1[i]) != math.Float32bits(ay0[i]) ||
				math.Float32bits(az1[i]) != math.Float32bits(az0[i]) {
				t.Fatalf("workers=%d: particle %d differs: (%v %v %v) vs (%v %v %v)",
					workers, i, ax1[i], ay1[i], az1[i], ax0[i], ay0[i], az0[i])
			}
		}
	}
}

// TestForestStealEmpty covers the zero-particle and empty-tree paths.
func TestForestStealEmpty(t *testing.T) {
	f := NewForest(16, 3, 2)
	f.Rebuild(nil, nil, nil)
	if stolen := f.ComputeForcesStealRanges(copyAdapter(testKernel(4)), 2, par.NewPool(3)); stolen != 0 {
		t.Fatalf("empty forest stole %d leaves", stolen)
	}
}
