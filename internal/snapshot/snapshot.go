// Package snapshot stores simulation products — particle snapshots, halo
// catalogs, and power spectra — as gio containers: one durable, versioned,
// CRC-protected layout shared with the checkpoint subsystem. See doc.go.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"hacc/internal/domain"
	"hacc/internal/gio"
)

// Version of the snapshot schema carried inside the container meta blob.
// Version 1 was the pre-container raw-block format; version 2 moved every
// product onto the gio container (PR 5).
const Version = 2

// Product kinds stored in the meta blob, so a particle snapshot, a halo
// catalog, and a spectrum cannot be confused even though they share the
// container layout.
const (
	kindParticles = 1
	kindHalos     = 2
	kindSpectrum  = 3
)

// legacyMagic is the on-disk prefix of pre-container (version 1) snapshot
// files, recognized only to produce a clear migration error.
var legacyMagic = []byte{0x43, 0x43, 0x41, 0x48} // uint32 LE 0x48414343 "HACC"

// Header describes a snapshot. It rides in the container's meta blob; NP is
// filled from the container's row counts on read.
type Header struct {
	NGrid  uint32
	NP     uint64 // record count in this file
	BoxMpc float64
	A      float64 // scale factor at the time of writing
	OmegaM float64
	Seed   uint64
}

// metaSize is the fixed wire size of the meta blob: kind, schema version,
// NGrid, pad, then BoxMpc, A, OmegaM, Seed, and one product-specific extra
// (the spectrum's shot noise).
const metaSize = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8

// encodeMeta packs the product kind, schema version, and header into a meta
// blob (appending onto dst, which may be a reused buffer).
func encodeMeta(dst []byte, kind uint32, h Header, extra float64) []byte {
	var b [metaSize]byte
	binary.LittleEndian.PutUint32(b[0:], kind)
	binary.LittleEndian.PutUint32(b[4:], Version)
	binary.LittleEndian.PutUint32(b[8:], h.NGrid)
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(h.BoxMpc))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(h.A))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(h.OmegaM))
	binary.LittleEndian.PutUint64(b[40:], h.Seed)
	binary.LittleEndian.PutUint64(b[48:], math.Float64bits(extra))
	return append(dst, b[:]...)
}

// decodeMeta unpacks a meta blob and checks the product kind and schema
// version.
func decodeMeta(meta []byte, wantKind uint32, what string) (Header, float64, error) {
	var h Header
	if len(meta) < metaSize {
		return h, 0, fmt.Errorf("snapshot: %s meta blob is %d bytes, want %d", what, len(meta), metaSize)
	}
	kind := binary.LittleEndian.Uint32(meta[0:])
	version := binary.LittleEndian.Uint32(meta[4:])
	if kind != wantKind {
		return h, 0, fmt.Errorf("snapshot: container holds product kind %d, want %s (kind %d)", kind, what, wantKind)
	}
	if version != Version {
		return h, 0, fmt.Errorf("snapshot: unsupported %s schema version %d (this build reads version %d)", what, version, Version)
	}
	h.NGrid = binary.LittleEndian.Uint32(meta[8:])
	h.BoxMpc = math.Float64frombits(binary.LittleEndian.Uint64(meta[16:]))
	h.A = math.Float64frombits(binary.LittleEndian.Uint64(meta[24:]))
	h.OmegaM = math.Float64frombits(binary.LittleEndian.Uint64(meta[32:]))
	h.Seed = binary.LittleEndian.Uint64(meta[40:])
	extra := math.Float64frombits(binary.LittleEndian.Uint64(meta[48:]))
	return h, extra, nil
}

// AppendParticleVars appends the canonical particle column declarations —
// x, y, z, vx, vy, vz (float32) and id (uint64) — over p's storage onto
// vars and returns the extended slice. No copies are made: the gio writer
// streams the slices in place. Snapshots and checkpoints share this schema,
// so any particle container the code emits is readable by the same decode
// path (ReadParticleRank).
func AppendParticleVars(vars []gio.Var, p *domain.Particles) []gio.Var {
	return append(vars,
		gio.Var{Name: "x", Type: gio.Float32, F32: p.X},
		gio.Var{Name: "y", Type: gio.Float32, F32: p.Y},
		gio.Var{Name: "z", Type: gio.Float32, F32: p.Z},
		gio.Var{Name: "vx", Type: gio.Float32, F32: p.Vx},
		gio.Var{Name: "vy", Type: gio.Float32, F32: p.Vy},
		gio.Var{Name: "vz", Type: gio.Float32, F32: p.Vz},
		gio.Var{Name: "id", Type: gio.Uint64, U64: p.ID},
	)
}

// particleVars declares the particle column schema over p's storage.
func particleVars(p *domain.Particles) []gio.Var {
	return AppendParticleVars(nil, p)
}

// Write stores the particles to w as a single-rank container. The header's
// NP field is ignored: record counts live in the container's rank table and
// are re-derived (and size-validated) on read.
func Write(w io.Writer, h Header, p *domain.Particles) error {
	return gio.WriteTo(w, encodeMeta(nil, kindParticles, h, 0), particleVars(p))
}

// openStream parses a whole container from a sequential reader. Allocation
// is bounded by the bytes actually present (io.ReadAll grows with real
// input), and every header-declared count is validated against the true
// size before it is trusted — a truncated or corrupt stream fails loudly
// instead of over-allocating.
func openStream(r io.Reader) (*gio.Reader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading container: %w", err)
	}
	if bytes.HasPrefix(data, legacyMagic) {
		return nil, fmt.Errorf("snapshot: legacy version-1 snapshot (pre-container raw blocks); regenerate it with this build")
	}
	gr, err := gio.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return gr, nil
}

// readParticles decodes every writer rank's particle columns from an open
// container, appending into a fresh Particles store.
func readParticles(gr *gio.Reader, wantKind uint32) (Header, *domain.Particles, error) {
	h, _, err := decodeMeta(gr.Meta(), wantKind, "particle snapshot")
	if err != nil {
		return h, nil, err
	}
	p := &domain.Particles{}
	if err := ReadParticleRank(gr, -1, p); err != nil {
		return h, nil, err
	}
	h.NP = uint64(p.Len())
	return h, p, nil
}

// ReadParticleRank appends the particle columns of one writer rank (or of
// every rank, when rank is negative) onto dst. It is the shared decode path
// for snapshot loading, the distributed analysis tools, and the
// checkpoint restore's rank-count-changing reassignment.
func ReadParticleRank(gr *gio.Reader, rank int, dst *domain.Particles) error {
	lo, hi := rank, rank+1
	if rank < 0 {
		lo, hi = 0, gr.NumRanks()
	}
	for r := lo; r < hi; r++ {
		var err error
		if dst.X, err = gio.ReadColumn(gr, r, "x", dst.X); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if dst.Y, err = gio.ReadColumn(gr, r, "y", dst.Y); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if dst.Z, err = gio.ReadColumn(gr, r, "z", dst.Z); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if dst.Vx, err = gio.ReadColumn(gr, r, "vx", dst.Vx); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if dst.Vy, err = gio.ReadColumn(gr, r, "vy", dst.Vy); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if dst.Vz, err = gio.ReadColumn(gr, r, "vz", dst.Vz); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if dst.ID, err = gio.ReadColumn(gr, r, "id", dst.ID); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		// Check per rank, not just in total: ragged per-rank columns whose
		// totals happen to agree would otherwise pair coordinates across
		// writer ranks silently.
		if n := len(dst.X); len(dst.Y) != n || len(dst.Z) != n || len(dst.Vx) != n ||
			len(dst.Vy) != n || len(dst.Vz) != n || len(dst.ID) != n {
			return fmt.Errorf("snapshot: rank %d particle columns have inconsistent lengths", r)
		}
	}
	return nil
}

// Read loads a particle snapshot from r.
func Read(r io.Reader) (Header, *domain.Particles, error) {
	gr, err := openStream(r)
	if err != nil {
		return Header{}, nil, err
	}
	return readParticles(gr, kindParticles)
}

// ReadHeader reads only the container index and meta blob of a particle
// snapshot, without decoding the particle payload — for callers that need
// counts and run metadata up front (haccpower's file scan). The stream is
// consumed up to the start of the data region.
func ReadHeader(r io.Reader) (Header, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Header{}, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if bytes.Equal(hdr, legacyMagic) {
		return Header{}, fmt.Errorf("snapshot: legacy version-1 snapshot (pre-container raw blocks); regenerate it with this build")
	}
	ix, err := gio.ReadIndexOnly(io.MultiReader(bytes.NewReader(hdr), r))
	if err != nil {
		return Header{}, fmt.Errorf("snapshot: %w", err)
	}
	h, _, err := decodeMeta(ix.Meta(), kindParticles, "particle snapshot")
	if err != nil {
		return h, err
	}
	var np uint64
	for r := 0; r < ix.NumRanks(); r++ {
		rows, err := ix.Rows(r, "x")
		if err != nil {
			return h, fmt.Errorf("snapshot: %w", err)
		}
		np += uint64(rows)
	}
	h.NP = np
	return h, nil
}

// LoadHeader reads only the snapshot header from path.
func LoadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return ReadHeader(f)
}

// SaveFile writes the particles to path.
func SaveFile(path string, h Header, p *domain.Particles) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, h, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from path with O(1) index access (the file is
// not slurped into memory first, unlike the io.Reader path).
func LoadFile(path string) (Header, *domain.Particles, error) {
	gr, err := openContainer(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer gr.Close()
	return readParticles(gr, kindParticles)
}

// openContainer opens a container file, translating a legacy-format prefix
// into the migration error.
func openContainer(path string) (*gio.Reader, error) {
	gr, err := gio.Open(path)
	if err == nil {
		return gr, nil
	}
	if f, ferr := os.Open(path); ferr == nil {
		var pre [4]byte
		if _, rerr := io.ReadFull(f, pre[:]); rerr == nil && bytes.Equal(pre[:], legacyMagic) {
			f.Close()
			return nil, fmt.Errorf("snapshot: %s is a legacy version-1 snapshot (pre-container raw blocks); regenerate it with this build", path)
		}
		f.Close()
	}
	return nil, fmt.Errorf("snapshot: %w", err)
}
