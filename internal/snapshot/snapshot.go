package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"hacc/internal/domain"
)

// Magic identifies snapshot files.
const Magic = 0x48414343 // "HACC"

// Version of the on-disk format.
const Version = 1

// Header describes a snapshot.
type Header struct {
	NGrid  uint32
	NP     uint64 // particle count in this file
	BoxMpc float64
	A      float64 // scale factor at the time of writing
	OmegaM float64
	Seed   uint64
}

// Write stores the particles to w.
func Write(w io.Writer, h Header, p *domain.Particles) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	h.NP = uint64(p.Len())
	for _, v := range []any{uint32(Magic), uint32(Version), h} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("snapshot: write header: %w", err)
		}
	}
	for _, arr := range [][]float32{p.X, p.Y, p.Z, p.Vx, p.Vy, p.Vz} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("snapshot: write array: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, p.ID); err != nil {
		return fmt.Errorf("snapshot: write ids: %w", err)
	}
	return bw.Flush()
}

// Read loads a snapshot from r.
func Read(r io.Reader) (Header, *domain.Particles, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := ReadHeader(br)
	if err != nil {
		return h, nil, err
	}
	n := int(h.NP)
	p := &domain.Particles{
		X: make([]float32, n), Y: make([]float32, n), Z: make([]float32, n),
		Vx: make([]float32, n), Vy: make([]float32, n), Vz: make([]float32, n),
		ID: make([]uint64, n),
	}
	for _, arr := range [][]float32{p.X, p.Y, p.Z, p.Vx, p.Vy, p.Vz} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return h, nil, fmt.Errorf("snapshot: read array: %w", err)
		}
	}
	if err := binary.Read(br, binary.LittleEndian, &p.ID); err != nil {
		return h, nil, fmt.Errorf("snapshot: read ids: %w", err)
	}
	return h, p, nil
}

// ReadHeader reads only the magic, version, and header of a particle
// snapshot, without decoding the particle payload — for callers that need
// counts and run metadata up front (haccpower's file scan).
func ReadHeader(r io.Reader) (Header, error) {
	var magic, version uint32
	var h Header
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return h, fmt.Errorf("snapshot: read magic: %w", err)
	}
	if magic != Magic {
		return h, fmt.Errorf("snapshot: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return h, err
	}
	if version != Version {
		return h, fmt.Errorf("snapshot: unsupported version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return h, fmt.Errorf("snapshot: read header: %w", err)
	}
	return h, nil
}

// LoadHeader reads only the snapshot header from path.
func LoadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return ReadHeader(f)
}

// SaveFile writes the particles to path.
func SaveFile(path string, h Header, p *domain.Particles) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, h, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (Header, *domain.Particles, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return Read(f)
}
