package snapshot

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hacc/internal/domain"
)

func makeParticles(n int, seed int64) *domain.Particles {
	rng := rand.New(rand.NewSource(seed))
	var p domain.Particles
	for i := 0; i < n; i++ {
		p.Append(rng.Float32(), rng.Float32(), rng.Float32(),
			rng.Float32(), rng.Float32(), rng.Float32(), uint64(i*7))
	}
	return &p
}

func TestRoundTrip(t *testing.T) {
	p := makeParticles(123, 1)
	h := Header{NGrid: 64, BoxMpc: 250, A: 0.5, OmegaM: 0.265, Seed: 42}
	var buf bytes.Buffer
	if err := Write(&buf, h, p); err != nil {
		t.Fatal(err)
	}
	h2, q, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NGrid != 64 || h2.BoxMpc != 250 || h2.A != 0.5 || h2.NP != 123 {
		t.Errorf("header %+v", h2)
	}
	if q.Len() != p.Len() {
		t.Fatalf("count %d want %d", q.Len(), p.Len())
	}
	for i := 0; i < p.Len(); i++ {
		if q.X[i] != p.X[i] || q.Vz[i] != p.Vz[i] || q.ID[i] != p.ID[i] {
			t.Fatalf("particle %d differs", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	p := makeParticles(50, 2)
	path := filepath.Join(t.TempDir(), "snap.bin")
	h := Header{NGrid: 32, BoxMpc: 100, A: 1}
	if err := SaveFile(path, h, p); err != nil {
		t.Fatal(err)
	}
	_, q, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 50 || q.ID[49] != p.ID[49] {
		t.Error("file round trip broken")
	}
}

func TestBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("accepted garbage")
	}
	var empty bytes.Buffer
	if _, _, err := Read(&empty); err == nil {
		t.Error("accepted empty input")
	}
}

// TestTruncatedSnapshot pins the bounded-read contract: a snapshot cut
// short anywhere — inside the index or inside the particle payload — fails
// with a descriptive error instead of trusting the header's counts (the
// pre-container format over-allocated NP-sized buffers from an untrusted
// header before discovering the truncation).
func TestTruncatedSnapshot(t *testing.T) {
	p := makeParticles(500, 3)
	var buf bytes.Buffer
	if err := Write(&buf, Header{NGrid: 32, BoxMpc: 100, A: 1}, p); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, n := range []int{0, 10, 40, 100, len(whole) / 2, len(whole) - 1} {
		if _, _, err := Read(bytes.NewReader(whole[:n])); err == nil {
			t.Errorf("accepted snapshot truncated to %d of %d bytes", n, len(whole))
		}
	}
	// Flipped payload byte: the column CRC catches it.
	bad := append([]byte(nil), whole...)
	bad[len(bad)-20] ^= 0x01
	if _, _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corrupt payload error = %v, want a CRC mismatch", err)
	}
}

// TestLegacyFormatRejected pins the migration error for pre-container
// (version 1) snapshot files, which started with the raw "HACC" magic.
func TestLegacyFormatRejected(t *testing.T) {
	legacy := []byte{0x43, 0x43, 0x41, 0x48, 1, 0, 0, 0, 9, 9, 9, 9}
	if _, _, err := Read(bytes.NewReader(legacy)); err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Errorf("legacy read error = %v, want a migration message", err)
	}
	if _, err := ReadHeader(bytes.NewReader(legacy)); err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Errorf("legacy header error = %v, want a migration message", err)
	}
	path := filepath.Join(t.TempDir(), "old.hacc")
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Errorf("legacy load error = %v, want a migration message", err)
	}
}

// TestProductKindConfusion pins that the three product readers refuse each
// other's containers (and checkpoint state containers) by meta kind.
func TestProductKindConfusion(t *testing.T) {
	p := makeParticles(10, 4)
	var snap bytes.Buffer
	if err := Write(&snap, Header{NGrid: 16, BoxMpc: 50, A: 1}, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadHalos(bytes.NewReader(snap.Bytes())); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("halo read of a particle snapshot: %v", err)
	}
	if _, _, err := ReadSpectrum(bytes.NewReader(snap.Bytes())); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("spectrum read of a particle snapshot: %v", err)
	}
	var cat bytes.Buffer
	if err := WriteHalos(&cat, Header{NGrid: 16}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(bytes.NewReader(cat.Bytes())); err == nil {
		t.Error("particle read of a halo catalog accepted")
	}
}
