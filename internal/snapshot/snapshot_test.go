package snapshot

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"hacc/internal/domain"
)

func makeParticles(n int, seed int64) *domain.Particles {
	rng := rand.New(rand.NewSource(seed))
	var p domain.Particles
	for i := 0; i < n; i++ {
		p.Append(rng.Float32(), rng.Float32(), rng.Float32(),
			rng.Float32(), rng.Float32(), rng.Float32(), uint64(i*7))
	}
	return &p
}

func TestRoundTrip(t *testing.T) {
	p := makeParticles(123, 1)
	h := Header{NGrid: 64, BoxMpc: 250, A: 0.5, OmegaM: 0.265, Seed: 42}
	var buf bytes.Buffer
	if err := Write(&buf, h, p); err != nil {
		t.Fatal(err)
	}
	h2, q, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NGrid != 64 || h2.BoxMpc != 250 || h2.A != 0.5 || h2.NP != 123 {
		t.Errorf("header %+v", h2)
	}
	if q.Len() != p.Len() {
		t.Fatalf("count %d want %d", q.Len(), p.Len())
	}
	for i := 0; i < p.Len(); i++ {
		if q.X[i] != p.X[i] || q.Vz[i] != p.Vz[i] || q.ID[i] != p.ID[i] {
			t.Fatalf("particle %d differs", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	p := makeParticles(50, 2)
	path := filepath.Join(t.TempDir(), "snap.bin")
	h := Header{NGrid: 32, BoxMpc: 100, A: 1}
	if err := SaveFile(path, h, p); err != nil {
		t.Fatal(err)
	}
	_, q, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 50 || q.ID[49] != p.ID[49] {
		t.Error("file round trip broken")
	}
}

func TestBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("accepted garbage")
	}
	var empty bytes.Buffer
	if _, _, err := Read(&empty); err == nil {
		t.Error("accepted empty input")
	}
}
