// Package snapshot reads and writes the on-disk products of a run in a
// simple little-endian binary format: particle snapshots (header + SOA
// arrays), the analogue of the particle outputs the paper's science run
// stored at 10 intermediate redshifts (§V), and — since PR 4 — the in-situ
// analysis products, per-rank FOF halo catalogs and binned power spectra,
// which is how the sky-survey workload records its science without raw
// particle dumps. All formats share the self-describing Header.
package snapshot
