// Package snapshot reads and writes the on-disk products of a run:
// particle snapshots (the analogue of the particle outputs the paper's
// science run stored at 10 intermediate redshifts, §V) and — since PR 4 —
// the in-situ analysis products, per-rank FOF halo catalogs and binned
// power spectra, which is how the sky-survey workload records its science
// without raw particle dumps.
//
// Since PR 5 every product is a gio container (self-describing typed
// columns, per-block CRC32-C, an index validated against the real file
// size), so snapshots, catalogs, spectra, and checkpoints share one
// durable, versioned, checksummed layout; the meta blob carries the
// product kind, the schema Version, and the run Header. Reads bound every
// allocation by verified sizes — a truncated or corrupt file (or a legacy
// pre-container version-1 snapshot) fails with a descriptive error instead
// of over-allocating. AppendParticleVars/ReadParticleRank define the
// canonical particle column schema shared with core's checkpoint state
// containers.
package snapshot
