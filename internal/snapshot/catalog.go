package snapshot

import (
	"fmt"
	"io"
	"os"

	"hacc/internal/analysis"
	"hacc/internal/gio"
)

// Halo catalogs and power spectra share the container layout with particle
// snapshots; the meta blob's product kind keeps them distinct. Catalogs are
// the paper's survey product, not particle dumps — halo Members stay in
// memory.

// WriteHalos stores one rank's halo catalog to w.
func WriteHalos(w io.Writer, h Header, halos []analysis.Halo) error {
	n := len(halos)
	cols := struct {
		gid  []uint64
		nmem []int64
		f    [8][]float64 // mass, x, y, z, vx, vy, vz, rmax
	}{gid: make([]uint64, n), nmem: make([]int64, n)}
	for i := range cols.f {
		cols.f[i] = make([]float64, n)
	}
	for i := range halos {
		cols.gid[i] = halos[i].GID
		cols.nmem[i] = int64(halos[i].N)
		cols.f[0][i] = halos[i].Mass
		cols.f[1][i] = halos[i].X
		cols.f[2][i] = halos[i].Y
		cols.f[3][i] = halos[i].Z
		cols.f[4][i] = halos[i].VX
		cols.f[5][i] = halos[i].VY
		cols.f[6][i] = halos[i].VZ
		cols.f[7][i] = halos[i].RMax
	}
	vars := []gio.Var{
		{Name: "gid", Type: gio.Uint64, U64: cols.gid},
		{Name: "n", Type: gio.Int64, I64: cols.nmem},
		{Name: "mass", Type: gio.Float64, F64: cols.f[0]},
		{Name: "x", Type: gio.Float64, F64: cols.f[1]},
		{Name: "y", Type: gio.Float64, F64: cols.f[2]},
		{Name: "z", Type: gio.Float64, F64: cols.f[3]},
		{Name: "vx", Type: gio.Float64, F64: cols.f[4]},
		{Name: "vy", Type: gio.Float64, F64: cols.f[5]},
		{Name: "vz", Type: gio.Float64, F64: cols.f[6]},
		{Name: "rmax", Type: gio.Float64, F64: cols.f[7]},
	}
	return gio.WriteTo(w, encodeMeta(nil, kindHalos, h, 0), vars)
}

// ReadHalos loads a halo catalog from r.
func ReadHalos(r io.Reader) (Header, []analysis.Halo, error) {
	gr, err := openStream(r)
	if err != nil {
		return Header{}, nil, err
	}
	return readHalos(gr)
}

// readHalos decodes a halo catalog from an open container.
func readHalos(gr *gio.Reader) (Header, []analysis.Halo, error) {
	h, _, err := decodeMeta(gr.Meta(), kindHalos, "halo catalog")
	if err != nil {
		return h, nil, err
	}
	var (
		gid  []uint64
		nmem []int64
		f    [8][]float64
	)
	names := [8]string{"mass", "x", "y", "z", "vx", "vy", "vz", "rmax"}
	for rank := 0; rank < gr.NumRanks(); rank++ {
		if gid, err = gio.ReadColumn(gr, rank, "gid", gid); err != nil {
			return h, nil, fmt.Errorf("snapshot: %w", err)
		}
		if nmem, err = gio.ReadColumn(gr, rank, "n", nmem); err != nil {
			return h, nil, fmt.Errorf("snapshot: %w", err)
		}
		for i, name := range names {
			if f[i], err = gio.ReadColumn(gr, rank, name, f[i]); err != nil {
				return h, nil, fmt.Errorf("snapshot: %w", err)
			}
		}
		// Per-rank consistency: ragged per-rank columns with agreeing
		// totals must not pair records across writer ranks.
		if len(nmem) != len(gid) {
			return h, nil, fmt.Errorf("snapshot: rank %d halo columns have inconsistent lengths", rank)
		}
		for i := range f {
			if len(f[i]) != len(gid) {
				return h, nil, fmt.Errorf("snapshot: rank %d halo columns have inconsistent lengths", rank)
			}
		}
	}
	halos := make([]analysis.Halo, len(gid))
	for i := range halos {
		halos[i] = analysis.Halo{
			GID: gid[i], N: int(nmem[i]), Mass: f[0][i],
			X: f[1][i], Y: f[2][i], Z: f[3][i],
			VX: f[4][i], VY: f[5][i], VZ: f[6][i],
			RMax: f[7][i],
		}
	}
	h.NP = uint64(len(halos))
	return h, halos, nil
}

// WriteSpectrum stores a binned power spectrum to w; the shot-noise level
// rides in the meta blob.
func WriteSpectrum(w io.Writer, h Header, ps *analysis.PowerSpectrum) error {
	vars := []gio.Var{
		{Name: "k", Type: gio.Float64, F64: ps.K},
		{Name: "p", Type: gio.Float64, F64: ps.P},
		{Name: "nmodes", Type: gio.Int64, I64: ps.NModes},
	}
	return gio.WriteTo(w, encodeMeta(nil, kindSpectrum, h, ps.ShotNoise), vars)
}

// ReadSpectrum loads a binned power spectrum from r.
func ReadSpectrum(r io.Reader) (Header, *analysis.PowerSpectrum, error) {
	gr, err := openStream(r)
	if err != nil {
		return Header{}, nil, err
	}
	return readSpectrum(gr)
}

// readSpectrum decodes a spectrum from an open container.
func readSpectrum(gr *gio.Reader) (Header, *analysis.PowerSpectrum, error) {
	h, shot, err := decodeMeta(gr.Meta(), kindSpectrum, "spectrum")
	if err != nil {
		return h, nil, err
	}
	ps := &analysis.PowerSpectrum{ShotNoise: shot}
	for rank := 0; rank < gr.NumRanks(); rank++ {
		if ps.K, err = gio.ReadColumn(gr, rank, "k", ps.K); err != nil {
			return h, nil, fmt.Errorf("snapshot: %w", err)
		}
		if ps.P, err = gio.ReadColumn(gr, rank, "p", ps.P); err != nil {
			return h, nil, fmt.Errorf("snapshot: %w", err)
		}
		if ps.NModes, err = gio.ReadColumn(gr, rank, "nmodes", ps.NModes); err != nil {
			return h, nil, fmt.Errorf("snapshot: %w", err)
		}
		if len(ps.P) != len(ps.K) || len(ps.NModes) != len(ps.K) {
			return h, nil, fmt.Errorf("snapshot: rank %d spectrum columns have inconsistent lengths", rank)
		}
	}
	h.NP = uint64(len(ps.K))
	return h, ps, nil
}

// SaveHalos writes one rank's halo catalog to path.
func SaveHalos(path string, h Header, halos []analysis.Halo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteHalos(f, h, halos); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadHalos reads a halo catalog from path with O(1) index access (no
// whole-file slurp, like LoadFile).
func LoadHalos(path string) (Header, []analysis.Halo, error) {
	gr, err := openContainer(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer gr.Close()
	return readHalos(gr)
}

// SaveSpectrum writes a power spectrum to path.
func SaveSpectrum(path string, h Header, ps *analysis.PowerSpectrum) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSpectrum(f, h, ps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSpectrum reads a power spectrum from path with O(1) index access.
func LoadSpectrum(path string) (Header, *analysis.PowerSpectrum, error) {
	gr, err := openContainer(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer gr.Close()
	return readSpectrum(gr)
}
