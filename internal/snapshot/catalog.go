package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"hacc/internal/analysis"
)

// Section magics for the in-situ analysis products. Both formats reuse the
// snapshot Header (NP holds the record count) so catalog files are
// self-describing about the run that produced them.
const (
	HaloMagic     = 0x48414C4F // "HALO"
	SpectrumMagic = 0x50535043 // "PSPC"
)

// haloWire is the fixed-size on-disk halo record (Members stay in memory —
// catalogs are the paper's survey product, not particle dumps).
type haloWire struct {
	GID        uint64
	N          int64
	Mass       float64
	X, Y, Z    float64
	VX, VY, VZ float64
	RMax       float64
}

// WriteHalos stores one rank's halo catalog to w.
func WriteHalos(w io.Writer, h Header, halos []analysis.Halo) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	h.NP = uint64(len(halos))
	for _, v := range []any{uint32(HaloMagic), uint32(Version), h} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("snapshot: write halo header: %w", err)
		}
	}
	for i := range halos {
		rec := haloWire{
			GID: halos[i].GID, N: int64(halos[i].N), Mass: halos[i].Mass,
			X: halos[i].X, Y: halos[i].Y, Z: halos[i].Z,
			VX: halos[i].VX, VY: halos[i].VY, VZ: halos[i].VZ,
			RMax: halos[i].RMax,
		}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return fmt.Errorf("snapshot: write halo record: %w", err)
		}
	}
	return bw.Flush()
}

// ReadHalos loads a halo catalog from r.
func ReadHalos(r io.Reader) (Header, []analysis.Halo, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, err := readSectionHeader(br, HaloMagic, "halo catalog")
	if err != nil {
		return h, nil, err
	}
	halos := make([]analysis.Halo, h.NP)
	for i := range halos {
		var rec haloWire
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return h, nil, fmt.Errorf("snapshot: read halo record: %w", err)
		}
		halos[i] = analysis.Halo{
			GID: rec.GID, N: int(rec.N), Mass: rec.Mass,
			X: rec.X, Y: rec.Y, Z: rec.Z,
			VX: rec.VX, VY: rec.VY, VZ: rec.VZ,
			RMax: rec.RMax,
		}
	}
	return h, halos, nil
}

// WriteSpectrum stores a binned power spectrum to w.
func WriteSpectrum(w io.Writer, h Header, ps *analysis.PowerSpectrum) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	h.NP = uint64(len(ps.K))
	for _, v := range []any{uint32(SpectrumMagic), uint32(Version), h} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("snapshot: write spectrum header: %w", err)
		}
	}
	for _, v := range []any{ps.ShotNoise, ps.K, ps.P, ps.NModes} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("snapshot: write spectrum: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSpectrum loads a binned power spectrum from r.
func ReadSpectrum(r io.Reader) (Header, *analysis.PowerSpectrum, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, err := readSectionHeader(br, SpectrumMagic, "spectrum")
	if err != nil {
		return h, nil, err
	}
	n := int(h.NP)
	ps := &analysis.PowerSpectrum{
		K: make([]float64, n), P: make([]float64, n), NModes: make([]int64, n),
	}
	if err := binary.Read(br, binary.LittleEndian, &ps.ShotNoise); err != nil {
		return h, nil, fmt.Errorf("snapshot: read spectrum: %w", err)
	}
	for _, v := range []any{ps.K, ps.P, ps.NModes} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return h, nil, fmt.Errorf("snapshot: read spectrum: %w", err)
		}
	}
	return h, ps, nil
}

// readSectionHeader checks a section magic + version and reads the header.
func readSectionHeader(br io.Reader, magic uint32, what string) (Header, error) {
	var m, version uint32
	var h Header
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return h, fmt.Errorf("snapshot: read %s magic: %w", what, err)
	}
	if m != magic {
		return h, fmt.Errorf("snapshot: bad %s magic %#x", what, m)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return h, err
	}
	if version != Version {
		return h, fmt.Errorf("snapshot: unsupported %s version %d", what, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return h, fmt.Errorf("snapshot: read %s header: %w", what, err)
	}
	return h, nil
}

// SaveHalos writes one rank's halo catalog to path.
func SaveHalos(path string, h Header, halos []analysis.Halo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteHalos(f, h, halos); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadHalos reads a halo catalog from path.
func LoadHalos(path string) (Header, []analysis.Halo, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return ReadHalos(f)
}

// SaveSpectrum writes a power spectrum to path.
func SaveSpectrum(path string, h Header, ps *analysis.PowerSpectrum) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSpectrum(f, h, ps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSpectrum reads a power spectrum from path.
func LoadSpectrum(path string) (Header, *analysis.PowerSpectrum, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return ReadSpectrum(f)
}
