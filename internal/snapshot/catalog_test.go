package snapshot

import (
	"bytes"
	"testing"

	"hacc/internal/analysis"
)

func TestHaloCatalogRoundTrip(t *testing.T) {
	h := Header{NGrid: 64, BoxMpc: 250, A: 0.5, OmegaM: 0.27, Seed: 42}
	halos := []analysis.Halo{
		{GID: 13, N: 120, Mass: 3.2e14, X: 1.5, Y: 63.9, Z: 0.01, VX: -0.2, VY: 0.4, VZ: 0, RMax: 2.5,
			Members: []int32{1, 2, 3}}, // Members intentionally not persisted
		{GID: 9000000007, N: 10, Mass: 2.5e13, X: 32, Y: 32, Z: 32, RMax: 0.8},
	}
	var buf bytes.Buffer
	if err := WriteHalos(&buf, h, halos); err != nil {
		t.Fatal(err)
	}
	h2, got, err := ReadHalos(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NGrid != h.NGrid || h2.BoxMpc != h.BoxMpc || h2.A != h.A || h2.NP != 2 {
		t.Errorf("header %+v", h2)
	}
	if len(got) != len(halos) {
		t.Fatalf("%d halos want %d", len(got), len(halos))
	}
	for i := range got {
		w := halos[i]
		g := got[i]
		if g.Members != nil {
			t.Errorf("halo %d: members persisted unexpectedly", i)
		}
		if g.GID != w.GID || g.N != w.N || g.Mass != w.Mass ||
			g.X != w.X || g.Y != w.Y || g.Z != w.Z ||
			g.VX != w.VX || g.VY != w.VY || g.VZ != w.VZ || g.RMax != w.RMax {
			t.Errorf("halo %d: %+v want %+v", i, g, w)
		}
	}
}

func TestSpectrumRoundTrip(t *testing.T) {
	h := Header{NGrid: 32, BoxMpc: 500, A: 1}
	ps := &analysis.PowerSpectrum{
		K:         []float64{0.05, 0.1, 0.2},
		P:         []float64{1200, 800, 300},
		NModes:    []int64{12, 88, 420},
		ShotNoise: 3.7,
	}
	var buf bytes.Buffer
	if err := WriteSpectrum(&buf, h, ps); err != nil {
		t.Fatal(err)
	}
	h2, got, err := ReadSpectrum(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NP != 3 {
		t.Errorf("header NP %d", h2.NP)
	}
	if got.ShotNoise != ps.ShotNoise {
		t.Errorf("shot %g", got.ShotNoise)
	}
	for i := range ps.K {
		if got.K[i] != ps.K[i] || got.P[i] != ps.P[i] || got.NModes[i] != ps.NModes[i] {
			t.Errorf("bin %d mismatch", i)
		}
	}
}

func TestCatalogBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpectrum(&buf, Header{}, &analysis.PowerSpectrum{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadHalos(&buf); err == nil {
		t.Error("spectrum file accepted as a halo catalog")
	}
}
