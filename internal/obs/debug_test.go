package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire.msgs").Add(42)
	SetDebugRegistry(r)
	defer SetDebugRegistry(nil)

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var snap []MetricSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].Name != "wire.msgs" || snap[0].Value != 42 {
		t.Fatalf("metrics = %+v", snap)
	}
}

func TestDebugHandlerJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		j.Record(StepRecord{Kind: "step", Step: i})
	}
	j.Close()
	SetDebugJournal(j.Path())
	defer SetDebugJournal("")

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/journal?n=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal status = %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal tail returned %d lines, want 2: %q", len(lines), body)
	}
	if !strings.Contains(lines[1], `"step":5`) {
		t.Fatalf("tail is not the newest records: %q", lines[1])
	}

	if resp, err := http.Get(srv.URL + "/debug/journal?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad n status = %d, want 400", resp.StatusCode)
		}
	}

	SetDebugJournal("")
	if resp, err := http.Get(srv.URL + "/debug/journal"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unset journal status = %d, want 404", resp.StatusCode)
		}
	}
}

func TestDebugHandlerIndexAndPprof(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/debug/pprof/") {
		t.Fatalf("index does not list endpoints: %q", body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/no/such/page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
}

func TestEnableDebugIdempotent(t *testing.T) {
	addr, err := EnableDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer DisableDebug()
	again, err := EnableDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if again != addr {
		t.Fatalf("second EnableDebug bound %q, first was %q", again, addr)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live endpoint status = %d", resp.StatusCode)
	}
}
