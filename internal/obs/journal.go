package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// StepRecord is one completed full step in the run journal.
type StepRecord struct {
	Kind       string             `json:"kind"` // "step"
	Step       int                `json:"step"` // completed steps so far (1-based)
	A          float64            `json:"a"`    // scale factor after the step
	Da         float64            `json:"da"`   // scale-factor increment of the step
	WallMs     float64            `json:"wall_ms"`
	PhaseMs    map[string]float64 `json:"phase_ms,omitempty"` // per-phase delta over this step
	Imbalance  float64            `json:"imbalance"`          // balancer's smoothed max/mean (1 = balanced/disabled)
	Rebalances int64              `json:"rebalances"`         // cumulative
	Restarts   int64              `json:"restarts"`           // cumulative (nonzero after a supervised resume)
}

// CheckpointRecord is one checkpoint attempt's outcome.
type CheckpointRecord struct {
	Kind    string `json:"kind"` // "checkpoint"
	Step    int    `json:"step"`
	Dir     string `json:"dir"`
	OK      bool   `json:"ok"`
	Retries int64  `json:"retries,omitempty"` // write retries spent on this checkpoint
	Err     string `json:"err,omitempty"`
}

// IncidentRecord is one supervised-run failure (core's supervisor recovery
// log, journaled when tracing is configured).
type IncidentRecord struct {
	Kind        string   `json:"kind"` // "incident"
	Attempt     int      `json:"attempt"`
	Class       string   `json:"class"`
	Err         string   `json:"err,omitempty"`
	Resume      string   `json:"resume,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	BackoffMs   float64  `json:"backoff_ms,omitempty"`
}

// Journal is an append-only JSONL record stream: one self-describing JSON
// object per line. The file is opened O_APPEND and every Record is a single
// write, so completed lines survive a crash mid-run and a supervised
// restart appends to the same history instead of truncating it. All methods
// are safe on a nil Journal (no-ops), so callers thread an optional journal
// without nil checks.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// JournalPath returns the per-rank journal path under dir.
func JournalPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("journal.r%03d.jsonl", rank))
}

// OpenJournal opens (creating as needed) rank's journal under dir.
func OpenJournal(dir string, rank int) (*Journal, error) {
	return OpenJournalFile(JournalPath(dir, rank))
}

// OpenJournalFile opens (creating as needed) a journal at an explicit path
// — the supervisor's incident log, which is not a rank product.
func OpenJournalFile(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("obs: journal directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal file path ("" on a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Record appends one record as a JSON line. No-op on a nil journal.
func (j *Journal) Record(v any) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("obs: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("obs: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("obs: appending to journal: %w", err)
	}
	return nil
}

// Close closes the journal file. No-op on a nil journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// TailJournal returns the last n lines of a journal file (fewer when the
// file is shorter). The whole file is read — journals are step-cadence
// small; a run of thousands of steps is a few hundred KB.
func TailJournal(path string, n int) ([]string, error) {
	if n <= 0 {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
	if len(lines) == 1 && len(lines[0]) == 0 {
		return nil, nil
	}
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = string(l)
	}
	return out, nil
}
