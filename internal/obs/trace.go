package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// SpanID identifies one instrumented phase. The IDs are stable small
// integers so a span record is two words of payload plus two int64
// timestamps — cheap enough to record at sub-cycle granularity.
type SpanID uint8

// Instrumented phases. Core's step loop emits the physics spans; the mpi
// runtime emits SpanRecv/SpanWait around its blocking operations; gio emits
// SpanGioWrite around container writes.
const (
	SpanStep SpanID = iota
	SpanKickLong
	SpanKickShort
	SpanStream
	SpanBuild
	SpanWalk
	SpanFFT
	SpanCIC
	SpanCommPost
	SpanCommWait
	SpanRebalance
	SpanAnalysis
	SpanCheckpoint
	SpanRecv
	SpanWait
	SpanGioWrite
	numSpans
)

var spanNames = [numSpans]string{
	SpanStep:       "step",
	SpanKickLong:   "kick-long",
	SpanKickShort:  "kick-short",
	SpanStream:     "stream",
	SpanBuild:      "tree-build",
	SpanWalk:       "walk",
	SpanFFT:        "fft",
	SpanCIC:        "cic",
	SpanCommPost:   "comm-post",
	SpanCommWait:   "comm-wait",
	SpanRebalance:  "rebalance",
	SpanAnalysis:   "analysis",
	SpanCheckpoint: "checkpoint",
	SpanRecv:       "recv",
	SpanWait:       "wait",
	SpanGioWrite:   "gio-write",
}

func (id SpanID) String() string {
	if int(id) < len(spanNames) {
		return spanNames[id]
	}
	return fmt.Sprintf("span(%d)", int(id))
}

// spanRec is one recorded span: wall-clock start and duration in
// nanoseconds, the phase ID, and the worker lane (tid in the emitted
// trace).
type spanRec struct {
	start int64
	dur   int64
	id    uint32
	tid   uint32
}

// ringCap is the per-rank span capacity. At step-loop granularity (tens of
// spans per step) this holds thousands of steps; older spans are
// overwritten and counted as dropped.
const ringCap = 1 << 14

// ring is one rank's span buffer. The cursor is atomic so the drop
// accounting stays exact, but each rank's spans are recorded by that rank's
// own goroutine (single-writer) — the tracer is not a cross-goroutine
// concurrency primitive, it is a per-rank log.
type ring struct {
	n    atomic.Int64 // total spans ever recorded; slot = (n-1) % ringCap
	recs [ringCap]spanRec
}

// Tracer is an armed tracing session: an output directory plus one ring per
// world rank. Arm it with ArmTracing; the zero value is not used.
type Tracer struct {
	dir   string
	rings []*ring
}

// armed is the process-global tracing switch, one atomic load on every
// disarmed Begin/End — the same discipline as fault.Armed.
var armed atomic.Pointer[Tracer]

// ArmTracing arms span tracing for nranks ranks, writing per-rank Chrome
// trace JSON under dir on FlushRank. Re-arming with the same (dir, nranks)
// is a no-op that keeps the existing rings (a supervised in-process restart
// keeps its history); a different dir or rank count installs a fresh
// tracer. Arming is process-global: in a multi-process wire world each rank
// process arms its own tracer and flushes only its own rank.
func ArmTracing(dir string, nranks int) error {
	if dir == "" {
		return fmt.Errorf("obs: trace directory must be non-empty")
	}
	if nranks <= 0 {
		return fmt.Errorf("obs: trace rank count %d must be positive", nranks)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: trace directory: %w", err)
	}
	if t := armed.Load(); t != nil && t.dir == dir && len(t.rings) == nranks {
		return nil
	}
	t := &Tracer{dir: dir, rings: make([]*ring, nranks)}
	for i := range t.rings {
		t.rings[i] = &ring{}
	}
	armed.Store(t)
	return nil
}

// DisarmTracing turns span tracing off and drops the rings.
func DisarmTracing() { armed.Store(nil) }

// TraceArmed reports whether tracing is armed.
func TraceArmed() bool { return armed.Load() != nil }

// TraceDir returns the armed tracer's output directory ("" when disarmed).
func TraceDir() string {
	if t := armed.Load(); t != nil {
		return t.dir
	}
	return ""
}

// Begin starts a span, returning its wall-clock start in nanoseconds — or 0
// when tracing is disarmed, which makes the matching End a no-op. The
// disarmed cost is one atomic load and one branch; no allocation either
// way.
func Begin() int64 {
	if armed.Load() == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// End completes a span started by Begin on the rank's main lane (tid 0). A
// zero start (disarmed Begin, or a caller skipping instrumentation) is a
// no-op.
func End(rank int, id SpanID, start int64) { EndWorker(rank, 0, id, start) }

// EndWorker is End with an explicit worker lane, for spans recorded off the
// rank's main goroutine. Spans for one rank must come from one goroutine at
// a time (per-rank rings are single-writer).
func EndWorker(rank, worker int, id SpanID, start int64) {
	if start == 0 {
		return
	}
	t := armed.Load()
	if t == nil || rank < 0 || rank >= len(t.rings) {
		return
	}
	r := t.rings[rank]
	slot := (r.n.Add(1) - 1) & (ringCap - 1)
	rec := &r.recs[slot]
	rec.start = start
	rec.dur = time.Now().UnixNano() - start
	rec.id = uint32(id)
	rec.tid = uint32(worker)
}

// TracePath returns the trace file path for a rank under dir.
func TracePath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("trace.r%03d.json", rank))
}

// traceEvent is one Chrome trace-event JSON object. Complete events
// (ph "X") carry ts/dur in microseconds; metadata events (ph "M") name the
// process and thread lanes.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the Chrome trace-event container format.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	Dropped     int64        `json:"droppedSpans,omitempty"`
}

// FlushRank writes one rank's recorded spans as Chrome trace-event JSON to
// TracePath(dir, rank), overwriting any previous flush (the file always
// holds the full ring). Call it from the rank's own goroutine after the
// instrumented work quiesces. A no-op returning nil when tracing is
// disarmed.
func FlushRank(rank int) error {
	t := armed.Load()
	if t == nil {
		return nil
	}
	if rank < 0 || rank >= len(t.rings) {
		return fmt.Errorf("obs: flush of rank %d outside armed world [0,%d)", rank, len(t.rings))
	}
	r := t.rings[rank]
	total := r.n.Load()
	kept := total
	if kept > ringCap {
		kept = ringCap
	}
	tf := traceFile{TraceEvents: make([]traceEvent, 0, kept+8), Dropped: total - kept}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: rank,
		Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
	})
	events := tf.TraceEvents
	tids := map[uint32]bool{}
	for i := int64(0); i < kept; i++ {
		rec := &r.recs[(total-kept+i)&(ringCap-1)]
		tids[rec.tid] = true
		events = append(events, traceEvent{
			Name: SpanID(rec.id).String(), Ph: "X",
			Ts: float64(rec.start) / 1e3, Dur: float64(rec.dur) / 1e3,
			Pid: rank, Tid: int(rec.tid),
		})
	}
	for tid := range tids {
		name := "main"
		if tid != 0 {
			name = fmt.Sprintf("worker %d", tid)
		}
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: rank, Tid: int(tid),
			Args: map[string]any{"name": name},
		})
	}
	// Chrome sorts internally, but a time-ordered file is easier to eyeball
	// and diff. Metadata events (ts 0) sort first.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	tf.TraceEvents = events
	data, err := json.Marshal(&tf)
	if err != nil {
		return fmt.Errorf("obs: encoding trace for rank %d: %w", rank, err)
	}
	if err := os.WriteFile(TracePath(t.dir, rank), data, 0o644); err != nil {
		return fmt.Errorf("obs: writing trace for rank %d: %w", rank, err)
	}
	return nil
}
