package obs

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// The disarmed-cost contract: with no tracer armed, a Begin/End pair must
// not allocate (and Begin must return the 0 sentinel that short-circuits
// End). This is the pin that lets the span calls live inside the step loop
// without disturbing the kernel benchmarks' allocs/op.
func TestDisarmedTraceAllocFree(t *testing.T) {
	DisarmTracing()
	if got := Begin(); got != 0 {
		t.Fatalf("disarmed Begin = %d, want 0", got)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := Begin()
		End(0, SpanStep, s)
		EndWorker(0, 1, SpanWalk, s)
	})
	if allocs != 0 {
		t.Fatalf("disarmed Begin/End allocates %.1f times per op, want 0", allocs)
	}
}

// Armed spans must also record without allocating (the ring is
// preallocated); only Flush pays.
func TestArmedRecordAllocFree(t *testing.T) {
	dir := t.TempDir()
	if err := ArmTracing(dir, 1); err != nil {
		t.Fatal(err)
	}
	defer DisarmTracing()
	allocs := testing.AllocsPerRun(1000, func() {
		s := Begin()
		End(0, SpanRecv, s)
	})
	if allocs != 0 {
		t.Fatalf("armed Begin/End allocates %.1f times per op, want 0", allocs)
	}
}

// chromeTrace mirrors the emitted container for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	Dropped int64 `json:"droppedSpans"`
}

func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := ArmTracing(dir, 2); err != nil {
		t.Fatal(err)
	}
	defer DisarmTracing()

	for rank := 0; rank < 2; rank++ {
		for i := 0; i < 5; i++ {
			s := Begin()
			time.Sleep(100 * time.Microsecond)
			End(rank, SpanFFT, s)
		}
		s := Begin()
		EndWorker(rank, 3, SpanWalk, s)
		if err := FlushRank(rank); err != nil {
			t.Fatal(err)
		}
	}

	for rank := 0; rank < 2; rank++ {
		data, err := os.ReadFile(TracePath(dir, rank))
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Fatalf("rank %d trace is not valid JSON", rank)
		}
		var tr chromeTrace
		if err := json.Unmarshal(data, &tr); err != nil {
			t.Fatal(err)
		}
		var complete, meta int
		for _, ev := range tr.TraceEvents {
			if ev.Name == "" || ev.Ph == "" {
				t.Fatalf("rank %d event missing required fields: %+v", rank, ev)
			}
			if ev.Pid != rank {
				t.Fatalf("rank %d event carries pid %d", rank, ev.Pid)
			}
			switch ev.Ph {
			case "X":
				complete++
				if ev.Ts <= 0 || ev.Dur < 0 {
					t.Fatalf("rank %d complete event with ts=%g dur=%g", rank, ev.Ts, ev.Dur)
				}
			case "M":
				meta++
			}
		}
		if complete != 6 {
			t.Fatalf("rank %d has %d complete events, want 6", rank, complete)
		}
		if meta < 2 { // process_name + at least one thread_name
			t.Fatalf("rank %d has %d metadata events, want ≥2", rank, meta)
		}
		if tr.Dropped != 0 {
			t.Fatalf("rank %d reports %d dropped spans, want 0", rank, tr.Dropped)
		}
	}
}

// The ring overwrites its oldest spans past capacity and reports the exact
// drop count, rather than growing or silently truncating the recent end.
func TestTraceRingWrap(t *testing.T) {
	dir := t.TempDir()
	if err := ArmTracing(dir, 1); err != nil {
		t.Fatal(err)
	}
	defer DisarmTracing()
	const extra = 10
	for i := 0; i < ringCap+extra; i++ {
		End(0, SpanRecv, 1) // synthetic nonzero start: no sleep needed
	}
	if err := FlushRank(0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(TracePath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped != extra {
		t.Fatalf("dropped = %d, want %d", tr.Dropped, extra)
	}
	var complete int
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete != ringCap {
		t.Fatalf("kept %d spans, want %d", complete, ringCap)
	}
}

func TestArmTracingIdempotent(t *testing.T) {
	dir := t.TempDir()
	if err := ArmTracing(dir, 1); err != nil {
		t.Fatal(err)
	}
	defer DisarmTracing()
	End(0, SpanStep, 1)
	before := armed.Load()
	if err := ArmTracing(dir, 1); err != nil {
		t.Fatal(err)
	}
	if armed.Load() != before {
		t.Fatal("re-arming with identical (dir, nranks) replaced the tracer")
	}
	if n := before.rings[0].n.Load(); n != 1 {
		t.Fatalf("re-arming lost the recorded span (n=%d)", n)
	}
	other := t.TempDir()
	if err := ArmTracing(other, 1); err != nil {
		t.Fatal(err)
	}
	if armed.Load() == before {
		t.Fatal("arming a different dir kept the stale tracer")
	}
	if got := TraceDir(); got != other {
		t.Fatalf("TraceDir() = %q, want %q", got, other)
	}
}

func TestFlushRankOutOfRange(t *testing.T) {
	if err := ArmTracing(t.TempDir(), 1); err != nil {
		t.Fatal(err)
	}
	defer DisarmTracing()
	if err := FlushRank(5); err == nil {
		t.Fatal("flushing a rank outside the armed world succeeded")
	}
	DisarmTracing()
	if err := FlushRank(0); err != nil {
		t.Fatalf("disarmed FlushRank should be a no-op, got %v", err)
	}
}
