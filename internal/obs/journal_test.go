package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if j.Path() != JournalPath(dir, 2) {
		t.Fatalf("Path() = %q, want %q", j.Path(), JournalPath(dir, 2))
	}
	recs := []any{
		StepRecord{Kind: "step", Step: 1, A: 0.2, Da: 0.05, WallMs: 12.5,
			PhaseMs: map[string]float64{"fft": 3.0}, Imbalance: 1.1},
		CheckpointRecord{Kind: "checkpoint", Step: 1, Dir: "ckpt", OK: true, Retries: 2},
		IncidentRecord{Kind: "incident", Attempt: 1, Class: "panic", Err: "boom",
			Resume: "restart", Quarantined: []string{"ckpt.bad"}, BackoffMs: 50},
	}
	for _, r := range recs {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines, err := TailJournal(j.Path(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	kinds := []string{"step", "checkpoint", "incident"}
	for i, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if m["kind"] != kinds[i] {
			t.Fatalf("line %d kind = %v, want %s", i, m["kind"], kinds[i])
		}
	}

	// Tail shorter than the file returns the newest records.
	tail, err := TailJournal(j.Path(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || !strings.Contains(tail[0], "incident") {
		t.Fatalf("tail(1) = %v, want the incident line", tail)
	}
}

// A reopened journal appends — a supervised restart extends the history
// instead of truncating it.
func TestJournalAppendAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(StepRecord{Kind: "step", Step: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record(StepRecord{Kind: "step", Step: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	lines, err := TailJournal(JournalPath(dir, 0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("reopened journal has %d lines, want 2", len(lines))
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if j.Path() != "" {
		t.Fatal("nil journal has a path")
	}
	if err := j.Record(StepRecord{}); err != nil {
		t.Fatalf("nil Record errored: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil Close errored: %v", err)
	}
}

func TestJournalRecordAfterClose(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Record(StepRecord{}); err == nil {
		t.Fatal("Record on a closed journal succeeded")
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := j.Record(StepRecord{Kind: "step", Step: w*100 + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	lines, err := TailJournal(j.Path(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 200 {
		t.Fatalf("journal has %d lines, want 200", len(lines))
	}
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("line %d corrupted by concurrent writes: %q", i, l)
		}
	}
}

func TestTailJournalEdgeCases(t *testing.T) {
	if lines, err := TailJournal("anything", 0); err != nil || lines != nil {
		t.Fatalf("tail(0) = %v, %v; want nil, nil", lines, err)
	}
	if _, err := TailJournal("/nonexistent/journal.jsonl", 5); err == nil {
		t.Fatal("tail of a missing file succeeded")
	}
}
