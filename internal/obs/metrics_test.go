package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10, 11, 100, 500, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	want := []int64{3, 2, 2, 2} // ≤10, ≤100, ≤1000, overflow
	got := h.Snapshot(nil)
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d slots, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (snapshot %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	if h.Buckets() != 4 {
		t.Fatalf("buckets = %d, want 4", h.Buckets())
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(123456) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per op, want 0", allocs)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {10, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1024, 4)
	want := []int64{1024, 2048, 4096, 8192}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestQuantileFromCounts(t *testing.T) {
	bounds := []int64{10, 100, 1000}
	if q := QuantileFromCounts(bounds, []int64{0, 0, 0, 0}, 0.5); q != 0 {
		t.Fatalf("empty distribution quantile = %d, want 0", q)
	}
	// 10 observations in ≤10, 10 in ≤100: p50 lands in the first bucket,
	// p99 in the second.
	counts := []int64{10, 10, 0, 0}
	if q := QuantileFromCounts(bounds, counts, 0.50); q != 10 {
		t.Fatalf("p50 = %d, want 10", q)
	}
	if q := QuantileFromCounts(bounds, counts, 0.99); q != 100 {
		t.Fatalf("p99 = %d, want 100", q)
	}
	// Overflow-only distribution reports 2× the last bound.
	if q := QuantileFromCounts(bounds, []int64{0, 0, 0, 5}, 0.5); q != 2000 {
		t.Fatalf("overflow quantile = %d, want 2000", q)
	}
}

// Per-rank histograms with shared bounds merge by element-wise count
// summation — the collective path bench uses over the wire.
func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(LatencyBuckets), NewHistogram(LatencyBuckets)
	for i := 0; i < 100; i++ {
		a.Observe(2000) // ~2µs
		b.Observe(2_000_000)
	}
	ca, cb := a.Snapshot(nil), b.Snapshot(nil)
	merged := make([]int64, len(ca))
	for i := range ca {
		merged[i] = ca[i] + cb[i]
	}
	p50 := QuantileFromCounts(LatencyBuckets, merged, 0.50)
	p99 := QuantileFromCounts(LatencyBuckets, merged, 0.99)
	if p50 != 2048 {
		t.Fatalf("merged p50 = %d, want 2048", p50)
	}
	if p99 != 2097152 {
		t.Fatalf("merged p99 = %d, want 2097152", p99)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wire.msgs")
	c.Add(3)
	if r.Counter("wire.msgs") != c {
		t.Fatal("second Counter lookup returned a different instance")
	}
	g := r.Gauge("sim.a")
	g.Set(0.25)
	h := r.Histogram("wire.latency", LatencyBuckets)
	if r.Histogram("wire.latency", LatencyBuckets) != h {
		t.Fatal("second Histogram lookup returned a different instance")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Gauge over an existing counter name did not panic")
			}
		}()
		r.Gauge("x")
	}()
	r.Histogram("h", []int64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Histogram re-registration with different bounds did not panic")
			}
		}()
		r.Histogram("h", []int64{1, 2, 3})
	}()
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.gauge").Set(1.5)
	h := r.Histogram("c.hist", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	if snap[0].Name != "a.gauge" || snap[1].Name != "b.count" || snap[2].Name != "c.hist" {
		t.Fatalf("snapshot not sorted by name: %+v", snap)
	}
	if snap[1].Kind != "counter" || snap[1].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", snap[1])
	}
	if snap[2].Kind != "histogram" || snap[2].Count != 2 || snap[2].P50 != 10 {
		t.Fatalf("histogram snapshot wrong: %+v", snap[2])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not decode: %v", err)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(decoded))
	}
}

// Registration and observation from many goroutines must be safe — the
// registry is shared between the step loop, the transport read loops, and
// the debug endpoint.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared.counter").Add(1)
				r.Histogram("shared.hist", LatencyBuckets).Observe(int64(i))
				r.Gauge("shared.gauge").Set(float64(i))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("shared.hist", LatencyBuckets).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
