// Package obs is the run-wide observability layer: a low-overhead span
// tracer, a typed metrics registry, a structured per-rank run journal, and
// an opt-in live debug HTTP endpoint.
//
// # Span tracer
//
// The tracer records (start, duration) spans for the instrumented phases of
// a run — the core step loop (kick/stream/build/walk/FFT/comm/rebalance/
// analysis/checkpoint), blocking mpi operations, and gio container writes —
// into fixed-capacity per-rank rings, and flushes them as Chrome
// trace-event JSON (one trace.r%03d.json per rank, loadable in
// chrome://tracing or https://ui.perfetto.dev; pid = rank, tid = worker, so
// a 4-rank run renders as four lanes).
//
// Arming follows the same discipline as internal/fault: a process-global
// atomic pointer, armed by ArmTracing (Config.TraceDir / `haccsim -trace`).
// When disarmed, Begin is one atomic load returning 0 and End is one
// predictable branch — the hot paths stay allocation-free and effectively
// unmeasurable, pinned by TestDisarmedTraceAllocFree and the kernel
// benchmark alloc pins. Each rank's ring is single-writer (the rank's own
// goroutine); wrap-around overwrites the oldest spans and counts drops.
//
// # Metrics
//
// Registry is a typed, name-keyed set of counters, gauges, and fixed-bucket
// histograms. All three are allocation-free on the observation path (atomic
// adds into pre-sized bucket arrays), so the mpi runtime can record a wire
// message's send→match latency on every delivery. Histogram bounds are
// fixed at creation, which makes per-rank counts mergeable with one
// collective reduction — QuantileFromCounts then turns the merged counts
// into the p50/p99 column of the bench phase report.
//
// # Journal
//
// Journal is a per-rank JSONL appender: one self-describing record per
// line (step summaries, checkpoint outcomes, supervisor incidents — see
// StepRecord, CheckpointRecord, IncidentRecord), opened O_APPEND so a
// crash or supervised restart never loses completed lines. TailJournal
// reads the last n records for the live debug endpoint.
//
// # Debug endpoint
//
// EnableDebug starts an HTTP listener (rank 0, `haccsim -debug-addr`)
// serving net/http/pprof profiles, the metrics registry as JSON
// (/debug/metrics), and the live journal tail (/debug/journal?n=100) on a
// private mux — importing this package does not pollute
// http.DefaultServeMux handlers beyond pprof's own init.
package obs
