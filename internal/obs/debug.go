package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// The debug endpoint's live inputs: the registry and journal path are set
// by whoever owns the run (core/haccsim) and swapped atomically, so a
// supervised restart can repoint the handler at the new attempt's state
// without restarting the listener.
var (
	debugReg     atomic.Pointer[Registry]
	debugJournal atomic.Pointer[string]

	debugMu   sync.Mutex
	debugLn   net.Listener
	debugAddr string
)

// SetDebugRegistry points /debug/metrics at a registry.
func SetDebugRegistry(r *Registry) { debugReg.Store(r) }

// SetDebugJournal points /debug/journal at a journal file.
func SetDebugJournal(path string) { debugJournal.Store(&path) }

// DebugHandler returns the debug mux: net/http/pprof under /debug/pprof/,
// the metrics registry snapshot at /debug/metrics, and the journal tail at
// /debug/journal?n=N. The handlers are wired explicitly onto a private mux;
// nothing is served from http.DefaultServeMux.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r := debugReg.Load()
		if r == nil {
			fmt.Fprintln(w, "[]")
			return
		}
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, req *http.Request) {
		n := 50
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		p := debugJournal.Load()
		if p == nil || *p == "" {
			http.Error(w, "no journal configured (run with tracing enabled)", http.StatusNotFound)
			return
		}
		lines, err := TailJournal(*p, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "hacc debug endpoint\n\n"+
			"/debug/metrics      metrics registry snapshot (JSON)\n"+
			"/debug/journal?n=N  last N run-journal records (JSONL)\n"+
			"/debug/pprof/       Go runtime profiles\n")
	})
	return mux
}

// EnableDebug starts the debug HTTP listener on addr (e.g. "127.0.0.1:6060"
// or ":0") and returns the bound address. Idempotent per process: a second
// call returns the already-bound address without touching the first
// listener, so a supervised restart of the run body cannot fail on a port
// already in use. The server lives until DisableDebug or process exit.
func EnableDebug(addr string) (string, error) {
	debugMu.Lock()
	defer debugMu.Unlock()
	if debugLn != nil {
		return debugAddr, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug endpoint: %w", err)
	}
	debugLn = ln
	debugAddr = ln.Addr().String()
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return debugAddr, nil
}

// DisableDebug stops the debug listener (tests; production runs leave it up
// for the life of the process).
func DisableDebug() {
	debugMu.Lock()
	defer debugMu.Unlock()
	if debugLn != nil {
		debugLn.Close()
		debugLn = nil
		debugAddr = ""
	}
}
