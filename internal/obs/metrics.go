package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket int64 distribution. Bucket i counts
// observations v ≤ bounds[i] (with everything below bounds[0] in bucket 0);
// the final slot counts the overflow above the last bound. Bounds are fixed
// at creation, so per-rank count arrays from histograms built with the same
// bounds merge element-wise — one collective SumI64 reduction yields the
// global distribution. Observe is allocation-free: a binary search over the
// bounds plus two atomic adds.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %d after %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// Bounds returns the bucket upper bounds (caller must not modify).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Buckets returns the number of count slots (len(Bounds())+1, the last
// being overflow).
func (h *Histogram) Buckets() int { return len(h.counts) }

// Snapshot appends the current per-bucket counts to dst and returns it.
func (h *Histogram) Snapshot(dst []int64) []int64 {
	for i := range h.counts {
		dst = append(dst, h.counts[i].Load())
	}
	return dst
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// ExpBuckets returns n doubling upper bounds starting at start:
// start, 2·start, 4·start, …
func ExpBuckets(start int64, n int) []int64 {
	if start <= 0 || n <= 0 {
		panic("obs: ExpBuckets needs positive start and count")
	}
	b := make([]int64, n)
	for i := range b {
		b[i] = start << uint(i)
	}
	return b
}

// LatencyBuckets are the wire-latency histogram bounds in nanoseconds:
// doubling from 1µs to ~2s. Shared by every rank's histogram so the
// per-rank counts merge with one reduction.
var LatencyBuckets = ExpBuckets(1024, 22)

// QuantileFromCounts returns the q-quantile (0 < q ≤ 1) of a bucketed
// distribution as the upper bound of the bucket holding that rank —
// conservative within one doubling bucket. counts has len(bounds)+1 slots
// (NewHistogram's layout, or the element-wise sum of several). Returns 0
// for an empty distribution; observations in the overflow bucket report
// twice the last bound.
func QuantileFromCounts(bounds, counts []int64, q float64) int64 {
	if len(counts) != len(bounds)+1 {
		panic(fmt.Sprintf("obs: quantile over %d counts for %d bounds", len(counts), len(bounds)))
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return 2 * bounds[len(bounds)-1]
		}
	}
	return 2 * bounds[len(bounds)-1]
}

// Registry is a typed, name-keyed metric set. Lookups get-or-create under a
// mutex — callers hold the returned metric across the hot path, so the map
// is touched only at registration time. A name is bound to one metric kind
// for the registry's lifetime; re-registering under a different kind (or a
// histogram under different bounds) panics loudly.
type Registry struct {
	mu sync.Mutex
	m  map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]any)} }

func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[name]; ok {
		return v
	}
	v := mk()
	r.m[name] = v
	return v
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	v := r.lookup(name, func() any { return &Counter{} })
	c, ok := v.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not a counter", name, v))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	v := r.lookup(name, func() any { return &Gauge{} })
	g, ok := v.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not a gauge", name, v))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. A second registration must pass identical bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	v := r.lookup(name, func() any { return NewHistogram(bounds) })
	h, ok := v.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not a histogram", name, v))
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds, was %d",
			name, len(bounds), len(h.bounds)))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// MetricSnapshot is one metric's point-in-time state, JSON-shaped for the
// debug endpoint.
type MetricSnapshot struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Value float64 `json:"value,omitempty"`
	Count int64   `json:"count,omitempty"`
	Sum   int64   `json:"sum,omitempty"`
	P50   int64   `json:"p50,omitempty"`
	P99   int64   `json:"p99,omitempty"`
}

// Snapshot returns every metric's current state, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	metrics := make([]any, len(names))
	sort.Strings(names)
	for i, n := range names {
		metrics[i] = r.m[n]
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(names))
	var scratch []int64
	for i, n := range names {
		switch v := metrics[i].(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: n, Kind: "counter", Value: float64(v.Value())})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: n, Kind: "gauge", Value: v.Value()})
		case *Histogram:
			scratch = v.Snapshot(scratch[:0])
			out = append(out, MetricSnapshot{
				Name: n, Kind: "histogram",
				Count: v.Count(), Sum: v.Sum(),
				P50: QuantileFromCounts(v.bounds, scratch, 0.50),
				P99: QuantileFromCounts(v.bounds, scratch, 0.99),
			})
		}
	}
	return out
}

// WriteJSON writes the registry snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
