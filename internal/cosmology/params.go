package cosmology

import (
	"fmt"
	"math"
)

// RhoCrit is the critical density in Msun/h per (Mpc/h)^3.
const RhoCrit = 2.7754e11

// Params specifies a cosmological model with constant-w dark energy.
type Params struct {
	OmegaM float64 // total matter density fraction today
	OmegaB float64 // baryon density fraction today
	OmegaL float64 // dark energy density fraction today
	H      float64 // Hubble parameter h = H0/(100 km/s/Mpc)
	Sigma8 float64 // linear power normalization in 8 Mpc/h spheres at z=0
	NS     float64 // primordial spectral index
	W      float64 // dark energy equation of state at z=0
	WA     float64 // CPL evolution: w(a) = W + WA·(1−a)
	TCMB   float64 // CMB temperature in K (default 2.725)
}

// Default returns the WMAP-7-like parameters used for the HACC science runs
// of the paper's era.
func Default() Params {
	return Params{
		OmegaM: 0.265,
		OmegaB: 0.0448,
		OmegaL: 0.735,
		H:      0.71,
		Sigma8: 0.8,
		NS:     0.963,
		W:      -1,
		TCMB:   2.725,
	}
}

// EdS returns an Einstein-de Sitter (Ωm=1) model, useful for analytic checks
// because D(a) = a exactly.
func EdS() Params {
	return Params{OmegaM: 1, OmegaB: 0.05, OmegaL: 0, H: 0.7,
		Sigma8: 0.8, NS: 1, W: -1, TCMB: 2.725}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.OmegaM <= 0 {
		return fmt.Errorf("cosmology: OmegaM must be positive, got %g", p.OmegaM)
	}
	if p.OmegaB < 0 || p.OmegaB > p.OmegaM {
		return fmt.Errorf("cosmology: OmegaB=%g outside [0, OmegaM=%g]", p.OmegaB, p.OmegaM)
	}
	if p.H <= 0 {
		return fmt.Errorf("cosmology: h must be positive, got %g", p.H)
	}
	if p.NS <= 0 {
		return fmt.Errorf("cosmology: ns must be positive, got %g", p.NS)
	}
	return nil
}

// OmegaK returns the curvature density fraction 1 - Ωm - ΩΛ.
func (p Params) OmegaK() float64 { return 1 - p.OmegaM - p.OmegaL }

// E returns H(a)/H0 for the model (radiation neglected, as appropriate for
// structure-formation redshifts). Dark energy follows the CPL
// parameterization w(a) = W + WA·(1−a), the standard parameterization of
// the dark-energy model space the paper's science program targets (§V):
// ρ_de(a)/ρ_de(1) = a^(−3(1+W+WA))·exp(−3·WA·(1−a)).
func (p Params) E(a float64) float64 {
	return math.Sqrt(p.OmegaM/(a*a*a) + p.OmegaK()/(a*a) + p.deDensity(a))
}

// deDensity returns the dark-energy density relative to critical today.
func (p Params) deDensity(a float64) float64 {
	if p.W == -1 && p.WA == 0 {
		return p.OmegaL
	}
	return p.OmegaL * math.Pow(a, -3*(1+p.W+p.WA)) * math.Exp(-3*p.WA*(1-a))
}

// OmegaMAt returns the matter density fraction at scale factor a.
func (p Params) OmegaMAt(a float64) float64 {
	e := p.E(a)
	return p.OmegaM / (a * a * a * e * e)
}

// DlnEDlnA returns dln E/dln a, used by the growth ODE.
func (p Params) DlnEDlnA(a float64) float64 {
	e2 := p.E(a)
	e2 *= e2
	de := p.deDensity(a)
	// dln ρ_de/dln a = −3(1+w(a)) with w(a) = W + WA(1−a).
	dde := -3 * (1 + p.W + p.WA*(1-a)) * de
	num := -3*p.OmegaM/(a*a*a) - 2*p.OmegaK()/(a*a) + dde
	return num / (2 * e2)
}

// AFromZ converts redshift to scale factor.
func AFromZ(z float64) float64 { return 1 / (1 + z) }

// ZFromA converts scale factor to redshift.
func ZFromA(a float64) float64 { return 1/a - 1 }

// MeanMatterDensity returns the comoving matter density in Msun/h/(Mpc/h)^3.
func (p Params) MeanMatterDensity() float64 { return p.OmegaM * RhoCrit }

// ParticleMass returns the tracer particle mass in Msun/h for np³ particles
// in a box of side boxMpc (Mpc/h).
func (p Params) ParticleMass(np int, boxMpc float64) float64 {
	v := boxMpc * boxMpc * boxMpc
	n := float64(np) * float64(np) * float64(np)
	return p.MeanMatterDensity() * v / n
}

// simpson integrates f over [a,b] with n (even) intervals.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// KickFactor returns ∫ da / (a²E(a)) over [a0,a1]: the momentum update
// weight for the symplectic integrator (DESIGN.md units: dp/da = -∇ψ/(a²E)).
func (p Params) KickFactor(a0, a1 float64) float64 {
	return simpson(func(a float64) float64 { return 1 / (a * a * p.E(a)) }, a0, a1, 256)
}

// DriftFactor returns ∫ da / (a³E(a)) over [a0,a1]: the position update
// weight (dx/da = p/(a³E)).
func (p Params) DriftFactor(a0, a1 float64) float64 {
	return simpson(func(a float64) float64 { return 1 / (a * a * a * p.E(a)) }, a0, a1, 256)
}
