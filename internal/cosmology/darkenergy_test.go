package cosmology

import (
	"math"
	"testing"
)

func TestCPLReducesToLambda(t *testing.T) {
	lcdm := Default()
	cpl := Default()
	cpl.W = -1
	cpl.WA = 0
	for _, a := range []float64{0.1, 0.3, 0.5, 0.8, 1} {
		if math.Abs(lcdm.E(a)-cpl.E(a)) > 1e-14 {
			t.Errorf("CPL(-1,0) != Λ at a=%g", a)
		}
		if math.Abs(lcdm.DlnEDlnA(a)-cpl.DlnEDlnA(a)) > 1e-12 {
			t.Errorf("dlnE mismatch at a=%g: %g vs %g", a, lcdm.DlnEDlnA(a), cpl.DlnEDlnA(a))
		}
	}
}

func TestConstantWDensityScaling(t *testing.T) {
	// w = -0.8 constant: ρ_de ∝ a^{-0.6}.
	p := Default()
	p.W = -0.8
	for _, a := range []float64{0.25, 0.5, 0.9} {
		want := p.OmegaL * math.Pow(a, -3*(1-0.8))
		got := p.deDensity(a)
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("w=-0.8 density at a=%g: %g want %g", a, got, want)
		}
	}
}

func TestCPLDensityLimits(t *testing.T) {
	p := Default()
	p.W = -0.9
	p.WA = 0.3
	// At a=1 the density is exactly ΩΛ regardless of parameters.
	if math.Abs(p.deDensity(1)-p.OmegaL) > 1e-14 {
		t.Errorf("deDensity(1)=%g", p.deDensity(1))
	}
	// E(1) = 1 for a flat model.
	if math.Abs(p.E(1)-1) > 1e-12 {
		t.Errorf("E(1)=%g", p.E(1))
	}
}

func TestDlnEDlnAConsistentWithFiniteDifference(t *testing.T) {
	// The analytic dlnE/dlna must match a numerical derivative for several
	// dark-energy models including evolving w.
	models := []Params{
		Default(),
		{OmegaM: 0.3, OmegaL: 0.7, OmegaB: 0.04, H: 0.7, Sigma8: 0.8, NS: 1, W: -0.7},
		{OmegaM: 0.3, OmegaL: 0.7, OmegaB: 0.04, H: 0.7, Sigma8: 0.8, NS: 1, W: -1.1, WA: 0.4},
		{OmegaM: 0.25, OmegaL: 0.7, OmegaB: 0.04, H: 0.7, Sigma8: 0.8, NS: 1, W: -0.9, WA: -0.3},
	}
	for mi, p := range models {
		for _, a := range []float64{0.2, 0.5, 0.9} {
			const eps = 1e-5
			num := (math.Log(p.E(a*(1+eps))) - math.Log(p.E(a*(1-eps)))) / (2 * eps)
			ana := p.DlnEDlnA(a)
			if math.Abs(num-ana) > 1e-6*(1+math.Abs(ana)) {
				t.Errorf("model %d a=%g: analytic %g numeric %g", mi, a, ana, num)
			}
		}
	}
}

func TestQuintessenceGrowthSuppression(t *testing.T) {
	// w > -1 (quintessence): dark energy dominates earlier, so growth from
	// a=0.5 to 1 is MORE suppressed than in ΛCDM (normalized D(0.5) higher).
	lcdm := NewGrowth(Default())
	q := Default()
	q.W = -0.7
	qg := NewGrowth(q)
	if !(qg.D(0.5) > lcdm.D(0.5)) {
		t.Errorf("quintessence D(0.5)=%g should exceed ΛCDM %g", qg.D(0.5), lcdm.D(0.5))
	}
	// Phantom (w < -1): the opposite ordering.
	ph := Default()
	ph.W = -1.3
	pg := NewGrowth(ph)
	if !(pg.D(0.5) < lcdm.D(0.5)) {
		t.Errorf("phantom D(0.5)=%g should be below ΛCDM %g", pg.D(0.5), lcdm.D(0.5))
	}
}

func TestCPLKickDriftFinite(t *testing.T) {
	p := Default()
	p.W = -0.9
	p.WA = 0.5
	k := p.KickFactor(0.1, 1)
	d := p.DriftFactor(0.1, 1)
	if !(k > 0 && d > 0) || math.IsNaN(k) || math.IsNaN(d) {
		t.Errorf("CPL factors k=%g d=%g", k, d)
	}
}
