package cosmology

import "math"

// Growth tabulates the linear growth factor D(a), normalized to D(1)=1, and
// the growth rate f = dlnD/dlna, by integrating the growth ODE
//
//	D'' + (3 + dlnE/dlna)·D'/a ... in ln a form:
//	d²D/dlna² + (2 + dlnE/dlna)·dD/dlna − (3/2)·Ωm(a)·D = 0
//
// from deep in the matter era (where D ∝ a) with a classical RK4 scheme.
// This stays correct for w ≠ −1 dark energy, the model space the paper's
// science program targets.
type Growth struct {
	p     Params
	lnA   []float64
	d     []float64
	f     []float64
	norm  float64
	aInit float64
}

// NewGrowth integrates the growth ODE for the given model.
func NewGrowth(p Params) *Growth {
	const (
		aStart = 1e-4
		aEnd   = 1.0
		steps  = 2048
	)
	g := &Growth{p: p, aInit: aStart}
	lnStart, lnEnd := math.Log(aStart), math.Log(aEnd)
	h := (lnEnd - lnStart) / steps
	// State y = (D, dD/dlna); matter-era initial condition D = a, D' = D.
	d, dp := aStart, aStart
	deriv := func(lna, d, dp float64) (float64, float64) {
		a := math.Exp(lna)
		return dp, -(2+p.DlnEDlnA(a))*dp + 1.5*p.OmegaMAt(a)*d
	}
	g.lnA = make([]float64, steps+1)
	g.d = make([]float64, steps+1)
	g.f = make([]float64, steps+1)
	store := func(i int, lna, d, dp float64) {
		g.lnA[i] = lna
		g.d[i] = d
		g.f[i] = dp / d
	}
	store(0, lnStart, d, dp)
	for i := 0; i < steps; i++ {
		lna := lnStart + float64(i)*h
		k1d, k1p := deriv(lna, d, dp)
		k2d, k2p := deriv(lna+h/2, d+h/2*k1d, dp+h/2*k1p)
		k3d, k3p := deriv(lna+h/2, d+h/2*k2d, dp+h/2*k2p)
		k4d, k4p := deriv(lna+h, d+h*k3d, dp+h*k3p)
		d += h / 6 * (k1d + 2*k2d + 2*k3d + k4d)
		dp += h / 6 * (k1p + 2*k2p + 2*k3p + k4p)
		store(i+1, lna+h, d, dp)
	}
	g.norm = d // D at a=1 before normalization
	for i := range g.d {
		g.d[i] /= g.norm
	}
	return g
}

// D returns the linear growth factor at scale factor a, with D(1) = 1.
func (g *Growth) D(a float64) float64 {
	d, _ := g.interp(a)
	return d
}

// F returns the growth rate f = dlnD/dlna at scale factor a.
func (g *Growth) F(a float64) float64 {
	_, f := g.interp(a)
	return f
}

func (g *Growth) interp(a float64) (d, f float64) {
	lna := math.Log(a)
	n := len(g.lnA)
	if lna <= g.lnA[0] {
		// Deep matter era: D ∝ a.
		return g.d[0] * a / g.aInit, g.f[0]
	}
	if lna >= g.lnA[n-1] {
		// Extrapolate past a=1 linearly in ln a (rarely needed).
		slope := g.f[n-1]
		return g.d[n-1] * math.Exp(slope*(lna-g.lnA[n-1])), slope
	}
	h := g.lnA[1] - g.lnA[0]
	i := int((lna - g.lnA[0]) / h)
	if i >= n-1 {
		i = n - 2
	}
	t := (lna - g.lnA[i]) / h
	return g.d[i]*(1-t) + g.d[i+1]*t, g.f[i]*(1-t) + g.f[i+1]*t
}
