package cosmology

import "math"

// TransferFunc maps wavenumber k (h/Mpc) to the matter transfer function
// T(k), normalized to T→1 as k→0.
type TransferFunc func(k float64) float64

// BBKS returns the Bardeen-Bond-Kaiser-Szalay (1986) transfer function with
// the Sugiyama (1995) shape parameter. The simplest of the three options;
// no baryon features.
func BBKS(p Params) TransferFunc {
	gamma := p.OmegaM * p.H * math.Exp(-p.OmegaB*(1+math.Sqrt(2*p.H)/p.OmegaM))
	return func(k float64) float64 {
		if k <= 0 {
			return 1
		}
		q := k / gamma
		poly := 1 + 3.89*q + math.Pow(16.1*q, 2) + math.Pow(5.46*q, 3) + math.Pow(6.71*q, 4)
		return math.Log(1+2.34*q) / (2.34 * q) * math.Pow(poly, -0.25)
	}
}

// EisensteinHuNoWiggle returns the Eisenstein & Hu (1998) zero-baryon
// ("no-wiggle") transfer function, eqs. 26–31: the smooth shape with baryon
// suppression but without acoustic oscillations.
func EisensteinHuNoWiggle(p Params) TransferFunc {
	omh2 := p.OmegaM * p.H * p.H
	obh2 := p.OmegaB * p.H * p.H
	theta := p.tcmb() / 2.7
	fb := p.OmegaB / p.OmegaM
	// Sound horizon approximation (eq. 26), in Mpc.
	s := 44.5 * math.Log(9.83/omh2) / math.Sqrt(1+10*math.Pow(obh2, 0.75))
	alphaG := 1 - 0.328*math.Log(431*omh2)*fb + 0.38*math.Log(22.3*omh2)*fb*fb
	return func(k float64) float64 {
		if k <= 0 {
			return 1
		}
		kMpc := k * p.H // 1/Mpc
		gammaEff := p.OmegaM * p.H * (alphaG + (1-alphaG)/(1+math.Pow(0.43*kMpc*s, 4)))
		q := k * theta * theta / gammaEff
		l0 := math.Log(2*math.E + 1.8*q)
		c0 := 14.2 + 731/(1+62.5*q)
		return l0 / (l0 + c0*q*q)
	}
}

// EisensteinHu returns the full Eisenstein & Hu (1998) transfer function
// including baryon acoustic oscillations (their eqs. 2–24). This is the
// spectrum behind the BOSS/BAO science HACC ran on Roadrunner (paper §I).
func EisensteinHu(p Params) TransferFunc {
	omh2 := p.OmegaM * p.H * p.H
	obh2 := p.OmegaB * p.H * p.H
	fb := p.OmegaB / p.OmegaM
	fc := 1 - fb
	theta := p.tcmb() / 2.7
	t4 := math.Pow(theta, 4)

	zEq := 2.50e4 * omh2 / t4
	kEq := 7.46e-2 * omh2 / (theta * theta) // 1/Mpc

	b1 := 0.313 * math.Pow(omh2, -0.419) * (1 + 0.607*math.Pow(omh2, 0.674))
	b2 := 0.238 * math.Pow(omh2, 0.223)
	zD := 1291 * math.Pow(omh2, 0.251) / (1 + 0.659*math.Pow(omh2, 0.828)) *
		(1 + b1*math.Pow(obh2, b2))

	rOf := func(z float64) float64 { return 31.5 * obh2 / t4 * (1e3 / z) }
	rD := rOf(zD)
	rEq := rOf(zEq)

	s := 2.0 / (3 * kEq) * math.Sqrt(6/rEq) *
		math.Log((math.Sqrt(1+rD)+math.Sqrt(rD+rEq))/(1+math.Sqrt(rEq)))

	kSilk := 1.6 * math.Pow(obh2, 0.52) * math.Pow(omh2, 0.73) *
		(1 + math.Pow(10.4*omh2, -0.95)) // 1/Mpc

	a1 := math.Pow(46.9*omh2, 0.670) * (1 + math.Pow(32.1*omh2, -0.532))
	a2 := math.Pow(12.0*omh2, 0.424) * (1 + math.Pow(45.0*omh2, -0.582))
	alphaC := math.Pow(a1, -fb) * math.Pow(a2, -fb*fb*fb)

	bb1 := 0.944 / (1 + math.Pow(458*omh2, -0.708))
	bb2 := math.Pow(0.395*omh2, -0.0266)
	betaC := 1 / (1 + bb1*(math.Pow(fc, bb2)-1))

	y := (1 + zEq) / (1 + zD)
	gy := y * (-6*math.Sqrt(1+y) + (2+3*y)*math.Log((math.Sqrt(1+y)+1)/(math.Sqrt(1+y)-1)))
	alphaB := 2.07 * kEq * s * math.Pow(1+rD, -0.75) * gy

	betaNode := 8.41 * math.Pow(omh2, 0.435)
	betaB := 0.5 + fb + (3-2*fb)*math.Sqrt(math.Pow(17.2*omh2, 2)+1)

	t0 := func(q, alpha, beta float64) float64 {
		c := 14.2/alpha + 386/(1+69.9*math.Pow(q, 1.08))
		l := math.Log(math.E + 1.8*beta*q)
		return l / (l + c*q*q)
	}

	return func(k float64) float64 {
		if k <= 0 {
			return 1
		}
		kMpc := k * p.H // 1/Mpc
		q := kMpc / (13.41 * kEq)
		ks := kMpc * s

		// CDM part.
		f := 1 / (1 + math.Pow(ks/5.4, 4))
		tc := f*t0(q, 1, betaC) + (1-f)*t0(q, alphaC, betaC)

		// Baryon part.
		sTilde := s / math.Cbrt(1+math.Pow(betaNode/ks, 3))
		x := kMpc * sTilde
		j0 := 1.0
		if x > 1e-8 {
			j0 = math.Sin(x) / x
		}
		tb := (t0(q, 1, 1)/(1+math.Pow(ks/5.2, 2)) +
			alphaB/(1+math.Pow(betaB/ks, 3))*math.Exp(-math.Pow(kMpc/kSilk, 1.4))) * j0

		return fb*tb + fc*tc
	}
}

func (p Params) tcmb() float64 {
	if p.TCMB > 0 {
		return p.TCMB
	}
	return 2.725
}
