// Package cosmology provides the FRW background, linear growth of
// structure, matter transfer functions, linear power spectra, and analytic
// halo mass functions needed to set up and validate HACC simulations. All
// formulas are implemented from the primary literature (Peebles 1980;
// Bardeen et al. 1986; Eisenstein & Hu 1998; Press & Schechter 1974;
// Sheth & Tormen 1999). Seed-era package; purely computational, no plans
// or communication.
//
// Unit conventions: k in h/Mpc, lengths in Mpc/h, masses in Msun/h,
// H0 = 100h km/s/Mpc so that h never appears explicitly in densities:
// rho_crit = 2.7754e11 Msun/h / (Mpc/h)^3.
package cosmology
