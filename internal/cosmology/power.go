package cosmology

import "math"

// LinearPower is the z=0 linear matter power spectrum P(k) in (Mpc/h)³,
// k in h/Mpc, normalized to the model's σ8.
type LinearPower struct {
	p    Params
	t    TransferFunc
	amp  float64
	Gfac *Growth
}

// NewLinearPower builds the normalized linear spectrum A·k^ns·T²(k) with the
// amplitude fixed so that σ(8 Mpc/h) = σ8.
func NewLinearPower(p Params, t TransferFunc) *LinearPower {
	lp := &LinearPower{p: p, t: t, amp: 1}
	s8 := lp.SigmaR(8)
	lp.amp = (p.Sigma8 / s8) * (p.Sigma8 / s8)
	lp.Gfac = NewGrowth(p)
	return lp
}

// P returns the z=0 linear power at wavenumber k (h/Mpc).
func (lp *LinearPower) P(k float64) float64 {
	if k <= 0 {
		return 0
	}
	t := lp.t(k)
	return lp.amp * math.Pow(k, lp.p.NS) * t * t
}

// PAt returns the linear power at scale factor a: D²(a)·P(k).
func (lp *LinearPower) PAt(k, a float64) float64 {
	d := lp.Gfac.D(a)
	return d * d * lp.P(k)
}

// tophat is the Fourier transform of the real-space spherical top hat.
func tophat(x float64) float64 {
	if x < 1e-6 {
		return 1 - x*x/10
	}
	return 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
}

// SigmaR returns the rms linear density fluctuation in spheres of radius
// R Mpc/h at z=0 (using the current amplitude).
func (lp *LinearPower) SigmaR(r float64) float64 {
	// Integrate in ln k; the integrand is strongly peaked near k ~ 1/R.
	f := func(lnk float64) float64 {
		k := math.Exp(lnk)
		w := tophat(k * r)
		return k * k * k * lp.P(k) * w * w
	}
	v := simpson(f, math.Log(1e-5), math.Log(500/r), 2048)
	return math.Sqrt(v / (2 * math.Pi * math.Pi))
}

// SigmaM returns σ(M) for mass M in Msun/h via the Lagrangian radius
// R = (3M/4πρ̄)^⅓.
func (lp *LinearPower) SigmaM(m float64) float64 {
	r := math.Cbrt(3 * m / (4 * math.Pi * lp.p.MeanMatterDensity()))
	return lp.SigmaR(r)
}

// Params returns the model the spectrum was built for.
func (lp *LinearPower) Params() Params { return lp.p }
