package cosmology

import "math"

// DeltaC is the spherical-collapse critical overdensity.
const DeltaC = 1.686

// MassFunction evaluates analytic halo mass functions dn/dlnM from a linear
// power spectrum; the paper (§V) uses the mass function as a primary
// cosmological probe, so the simulated FOF mass function is compared to
// these forms in the Fig. 11 experiment.
type MassFunction struct {
	lp *LinearPower
}

// NewMassFunction builds a mass-function calculator.
func NewMassFunction(lp *LinearPower) *MassFunction { return &MassFunction{lp: lp} }

// multiplicity functions f(σ): fraction of mass in collapsed objects per
// unit ln σ⁻¹.

// PressSchechter is the classic 1974 multiplicity function.
func PressSchechter(sigma float64) float64 {
	nu := DeltaC / sigma
	return math.Sqrt(2/math.Pi) * nu * math.Exp(-nu*nu/2)
}

// ShethTormen is the 1999 ellipsoidal-collapse multiplicity function.
func ShethTormen(sigma float64) float64 {
	const (
		aa = 0.707
		pp = 0.3
		na = 0.3222 // normalization A
	)
	nu := DeltaC / sigma
	anu2 := aa * nu * nu
	return na * math.Sqrt(2*aa/math.Pi) * nu * (1 + math.Pow(anu2, -pp)) * math.Exp(-anu2/2)
}

// DnDlnM returns the comoving number density of halos per ln mass interval
// at scale factor a, in (Mpc/h)⁻³, for the multiplicity function f.
func (mf *MassFunction) DnDlnM(m, a float64, f func(float64) float64) float64 {
	d := mf.lp.Gfac.D(a)
	sigma := mf.lp.SigmaM(m) * d
	// dlnσ⁻¹/dlnM by central difference.
	const eps = 1e-3
	s1 := mf.lp.SigmaM(m * (1 - eps))
	s2 := mf.lp.SigmaM(m * (1 + eps))
	dlnSigInvDlnM := -(math.Log(s2) - math.Log(s1)) / (2 * eps)
	rhoM := mf.lp.p.MeanMatterDensity()
	return f(sigma) * rhoM / m * dlnSigInvDlnM
}
