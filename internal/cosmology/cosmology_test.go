package cosmology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.OmegaM = -1
	if bad.Validate() == nil {
		t.Error("negative OmegaM accepted")
	}
	bad = Default()
	bad.OmegaB = 0.9
	if bad.Validate() == nil {
		t.Error("OmegaB > OmegaM accepted")
	}
}

func TestEdSBackground(t *testing.T) {
	p := EdS()
	// E(a) = a^{-3/2} in EdS.
	for _, a := range []float64{0.1, 0.25, 0.5, 1} {
		want := math.Pow(a, -1.5)
		if got := p.E(a); math.Abs(got-want) > 1e-12 {
			t.Errorf("E(%g)=%g want %g", a, got, want)
		}
		if got := p.OmegaMAt(a); math.Abs(got-1) > 1e-12 {
			t.Errorf("OmegaM(%g)=%g want 1", a, got)
		}
	}
}

func TestEToday(t *testing.T) {
	for _, p := range []Params{Default(), EdS()} {
		if e := p.E(1); math.Abs(e-1) > 1e-12 {
			t.Errorf("E(1)=%g for %+v", e, p)
		}
	}
}

func TestGrowthEdS(t *testing.T) {
	g := NewGrowth(EdS())
	// D(a) = a exactly in EdS; f = 1.
	for _, a := range []float64{0.02, 0.1, 0.3, 0.7, 1} {
		if d := g.D(a); math.Abs(d-a) > 2e-3*a {
			t.Errorf("EdS D(%g)=%g want %g", a, d, a)
		}
		if f := g.F(a); math.Abs(f-1) > 2e-3 {
			t.Errorf("EdS f(%g)=%g want 1", a, f)
		}
	}
}

func TestGrowthLCDM(t *testing.T) {
	p := Default()
	g := NewGrowth(p)
	if d := g.D(1); math.Abs(d-1) > 1e-12 {
		t.Errorf("D(1)=%g", d)
	}
	// ΛCDM growth is suppressed at late times, so the D(1)=1 normalized
	// curve lies above a: D(0.5)/0.5 > 1 (literature value ≈1.22–1.28).
	if d := g.D(0.5); d < 0.55 || d > 0.70 {
		t.Errorf("ΛCDM D(0.5)=%g, expected ≈0.61–0.64", d)
	}
	// f ≈ Ωm(a)^0.55 to ~1%.
	for _, a := range []float64{0.3, 0.5, 0.8, 1} {
		want := math.Pow(p.OmegaMAt(a), 0.55)
		if f := g.F(a); math.Abs(f-want) > 0.015 {
			t.Errorf("f(%g)=%g want ≈%g", a, f, want)
		}
	}
	// Early times: matter-dominated, D ∝ a.
	r1 := g.D(0.002) / 0.002
	r2 := g.D(0.001) / 0.001
	if math.Abs(r1/r2-1) > 1e-3 {
		t.Errorf("early growth not ∝ a: %g vs %g", r1, r2)
	}
}

func TestGrowthMonotonicProperty(t *testing.T) {
	g := NewGrowth(Default())
	f := func(x, y float64) bool {
		a1 := 0.01 + math.Mod(math.Abs(x), 0.99)
		a2 := 0.01 + math.Mod(math.Abs(y), 0.99)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return g.D(a1) <= g.D(a2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferLimits(t *testing.T) {
	p := Default()
	for name, tf := range map[string]TransferFunc{
		"BBKS":         BBKS(p),
		"EHNoWiggle":   EisensteinHuNoWiggle(p),
		"EisensteinHu": EisensteinHu(p),
	} {
		// T → 1 as k → 0.
		if v := tf(1e-5); math.Abs(v-1) > 0.02 {
			t.Errorf("%s: T(1e-5)=%g want ≈1", name, v)
		}
		// Monotone-ish decline to small values at high k.
		if v := tf(10); v > 1e-2 {
			t.Errorf("%s: T(10)=%g want <0.01", name, v)
		}
		// Positive everywhere sampled.
		for k := 1e-4; k < 30; k *= 1.5 {
			if tf(k) <= 0 {
				t.Errorf("%s: T(%g) <= 0", name, k)
			}
		}
	}
}

func TestEisensteinHuWiggles(t *testing.T) {
	// The full EH transfer must oscillate around the no-wiggle form in the
	// BAO regime (k ~ 0.05–0.3 h/Mpc), crossing it several times.
	p := Default()
	full := EisensteinHu(p)
	smooth := EisensteinHuNoWiggle(p)
	crossings := 0
	prev := 0.0
	for k := 0.03; k < 0.4; k *= 1.01 {
		r := full(k)/smooth(k) - 1
		if r*prev < 0 {
			crossings++
		}
		prev = r
		if math.Abs(r) > 0.12 {
			t.Errorf("wiggle amplitude %g at k=%g too large", r, k)
		}
	}
	if crossings < 4 {
		t.Errorf("only %d BAO crossings, expected ≥4", crossings)
	}
}

func TestSigma8Normalization(t *testing.T) {
	p := Default()
	for _, tf := range []TransferFunc{BBKS(p), EisensteinHuNoWiggle(p), EisensteinHu(p)} {
		lp := NewLinearPower(p, tf)
		if s := lp.SigmaR(8); math.Abs(s-p.Sigma8) > 1e-6 {
			t.Errorf("σ8 normalization: got %g want %g", s, p.Sigma8)
		}
	}
}

func TestSigmaRMonotone(t *testing.T) {
	lp := NewLinearPower(Default(), EisensteinHuNoWiggle(Default()))
	prev := math.Inf(1)
	for _, r := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		s := lp.SigmaR(r)
		if s >= prev {
			t.Errorf("σ(R=%g)=%g not decreasing (prev %g)", r, s, prev)
		}
		prev = s
	}
}

func TestPAtScalesWithGrowth(t *testing.T) {
	lp := NewLinearPower(Default(), BBKS(Default()))
	k := 0.1
	d := lp.Gfac.D(0.5)
	want := d * d * lp.P(k)
	if got := lp.PAt(k, 0.5); math.Abs(got-want) > 1e-12*want {
		t.Errorf("PAt=%g want %g", got, want)
	}
}

func TestParticleMass(t *testing.T) {
	p := Default()
	// The paper's science run: 10240³ particles in a (9.14 Gpc)³ box →
	// mp ≈ 1.9e10 M☉ (§V). The paper does not state its exact h-unit
	// convention or parameter set, so check order of magnitude only,
	// plus the exact defining relation.
	mp := p.ParticleMass(10240, 9140)
	if mp < 0.5e10 || mp > 8e10 {
		t.Errorf("paper particle mass check: got %g want O(1.9e10)", mp)
	}
	want := p.MeanMatterDensity() * 9140 * 9140 * 9140 / (10240.0 * 10240.0 * 10240.0)
	if math.Abs(mp-want) > 1e-6*want {
		t.Errorf("ParticleMass=%g want %g", mp, want)
	}
}

func TestMassFunctionShape(t *testing.T) {
	lp := NewLinearPower(Default(), EisensteinHuNoWiggle(Default()))
	mf := NewMassFunction(lp)
	// dn/dlnM decreases steeply with mass at the cluster scale, and ST > PS
	// in the exponential tail (ST predicts more massive clusters).
	n14 := mf.DnDlnM(1e14, 1, ShethTormen)
	n15 := mf.DnDlnM(1e15, 1, ShethTormen)
	if !(n14 > n15 && n15 > 0) {
		t.Errorf("mass function not decreasing: n(1e14)=%g n(1e15)=%g", n14, n15)
	}
	ps := mf.DnDlnM(3e15, 1, PressSchechter)
	st := mf.DnDlnM(3e15, 1, ShethTormen)
	if st <= ps {
		t.Errorf("ST tail %g should exceed PS %g at 3e15", st, ps)
	}
	// Integral sanity: multiplicity functions are normalized to O(1).
	var sum float64
	for lnS := -3.0; lnS < 3; lnS += 0.01 {
		sum += ShethTormen(math.Exp(lnS)) * 0.01
	}
	if sum < 0.5 || sum > 1.1 {
		t.Errorf("ST multiplicity integral %g out of range", sum)
	}
}

func TestKickDriftFactors(t *testing.T) {
	p := EdS()
	// EdS analytics: ∫da/(a²E) = ∫a^{-1/2}da = 2(√a1-√a0);
	// ∫da/(a³E) = ∫a^{-3/2}da = 2(1/√a0 - 1/√a1).
	a0, a1 := 0.25, 1.0
	wantKick := 2 * (math.Sqrt(a1) - math.Sqrt(a0))
	wantDrift := 2 * (1/math.Sqrt(a0) - 1/math.Sqrt(a1))
	if got := p.KickFactor(a0, a1); math.Abs(got-wantKick) > 1e-6 {
		t.Errorf("kick %g want %g", got, wantKick)
	}
	if got := p.DriftFactor(a0, a1); math.Abs(got-wantDrift) > 1e-6 {
		t.Errorf("drift %g want %g", got, wantDrift)
	}
	// Additivity: factor(a0,a1) = factor(a0,am) + factor(am,a1).
	am := 0.6
	if d := p.KickFactor(a0, am) + p.KickFactor(am, a1) - p.KickFactor(a0, a1); math.Abs(d) > 1e-9 {
		t.Errorf("kick not additive: %g", d)
	}
}

func TestAZRoundTrip(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 5, 25, 199} {
		if got := ZFromA(AFromZ(z)); math.Abs(got-z) > 1e-12*(1+z) {
			t.Errorf("z round trip %g -> %g", z, got)
		}
	}
}
