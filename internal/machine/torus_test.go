package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTorusCoordsAndNodes(t *testing.T) {
	tr := RackTorus()
	if tr.Nodes() != 1024 {
		t.Fatalf("rack has %d nodes", tr.Nodes())
	}
	// Coords round trip through row-major ordering.
	for _, r := range []int{0, 1, 17, 511, 1023} {
		c := tr.Coords(r)
		back := 0
		for i := 0; i < 5; i++ {
			back = back*tr.Dims[i] + c[i]
		}
		if back != r {
			t.Errorf("coords round trip %d -> %v -> %d", r, c, back)
		}
	}
}

func TestTorusHops(t *testing.T) {
	tr := NewTorus([5]int{4, 1, 1, 1, 1})
	// On a 4-ring: distances 0,1,2,1.
	wants := []int{0, 1, 2, 1}
	for b, w := range wants {
		if h := tr.Hops(0, b); h != w {
			t.Errorf("ring hops 0->%d = %d want %d", b, h, w)
		}
	}
	// Symmetry and identity on the rack torus.
	rack := RackTorus()
	for a := 0; a < 40; a += 7 {
		for b := 0; b < 1024; b += 101 {
			if rack.Hops(a, b) != rack.Hops(b, a) {
				t.Errorf("asymmetric hops %d,%d", a, b)
			}
		}
		if rack.Hops(a, a) != 0 {
			t.Errorf("self distance %d", a)
		}
	}
}

func TestTorusTriangleInequalityProperty(t *testing.T) {
	rack := RackTorus()
	f := func(a, b, c uint16) bool {
		x, y, z := int(a)%1024, int(b)%1024, int(c)%1024
		return rack.Hops(x, z) <= rack.Hops(x, y)+rack.Hops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanHops(t *testing.T) {
	// For a single d-ring the mean wrap distance is Σmin(x,d−x)/d.
	tr := NewTorus([5]int{4, 1, 1, 1, 1})
	want := (0.0 + 1 + 2 + 1) / 4
	if m := tr.MeanHops(); math.Abs(m-want) > 1e-12 {
		t.Errorf("mean hops %g want %g", m, want)
	}
	// The rack torus 4×4×4×8×2: three 4-rings (mean 1) + an 8-ring
	// (mean 2) + a 2-ring (mean 0.5) = 5.5.
	if m := RackTorus().MeanHops(); math.Abs(m-5.5) > 1e-12 {
		t.Errorf("rack mean hops %g want 5.5", m)
	}
}

func TestBisectionAndTimes(t *testing.T) {
	rack := RackTorus()
	// Largest dimension is the 8-ring: cross-section 1024/8 = 128 nodes,
	// two wrap directions.
	if bl := rack.BisectionLinks(); bl != 2*128 {
		t.Errorf("bisection links %d", bl)
	}
	tAll := rack.AllToAllTime(1 << 10)
	if !(tAll > 0) {
		t.Errorf("alltoall time %g", tAll)
	}
	// A transpose of a bigger grid takes longer.
	t1 := rack.TransposeTime(1024, 32, 32)
	t2 := rack.TransposeTime(2048, 32, 32)
	if !(t2 > t1 && t1 > 0) {
		t.Errorf("transpose times %g %g", t1, t2)
	}
	if rack.TransposeTime(1024, 1024, 1) != 0 {
		t.Error("single-member transpose should be free")
	}
	// Order of magnitude: a 1024³ complex grid is 16 GB; a rack moves it
	// through ~10 TB/s of aggregate links with ~4.5 mean hops: tens of ms.
	if t1 < 1e-4 || t1 > 1 {
		t.Errorf("1024³ transpose estimate %g s implausible", t1)
	}
}
