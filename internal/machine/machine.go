package machine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// BG/Q hardware constants (paper §III).
const (
	PeakGFlopsPerNode = 204.8 // 16 cores × 12.8 GFlops
	CoresPerNode      = 16
	ThreadsPerCore    = 4
	// The QPX kernel executes 26 instructions per 4-wide vector iteration,
	// 16 of them FMAs: 168 flops per iteration, i.e. 42 flops per pair
	// interaction.
	FlopsPerInteraction = 42.0
	// Paper-reported sustained fraction of peak for the full code.
	SustainedPeakFraction = 0.692
	// CIC deposit or interpolation cost per particle per field.
	FlopsPerCIC = 27.0
)

// FFTFlops returns the standard 5·N·log2(N) operation count for a complex
// 1-D transform of length n, times the batch count.
func FFTFlops(n int, batches int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n)) * float64(batches)
}

// FFT3Flops returns the flop count of one 3-D transform of an n³ grid.
func FFT3Flops(n int) float64 {
	return 3 * FFTFlops(n, n*n)
}

// Counters accumulates countable work; safe for single-goroutine use per
// rank, then reduced by the caller.
type Counters struct {
	KernelInteractions int64
	// FFT3D counts complex 3-D transform equivalents: a real-to-complex or
	// complex-to-real transform exploits Hermitian symmetry and counts ½,
	// so the production r2c Poisson solve (1 forward + 3 inverses) adds 2.
	FFT3D    int64
	FFTGridN int   // grid size per transform
	CICOps   int64 // particle·field deposit/interp operations

	// Resilience accounting (PR 6). These are campaign-health metrics, not
	// flop sources: Flops ignores them. Restarts counts supervised
	// resume-from-checkpoint cycles; CkptRetries counts checkpoint write
	// attempts that failed and were retried; CkptQuarantined counts damaged
	// checkpoint directories moved out of the resume path.
	Restarts        int64
	CkptRetries     int64
	CkptQuarantined int64

	// Load-balancing accounting (PR 8). WalkNodes counts tree-walk node
	// visits — the balancer's "walk time" term, a deterministic stand-in for
	// wall-clock. Rebalances counts cost-driven domain-geometry rebuilds (a
	// collective event); StolenLeaves counts force-walk leaves executed by a
	// worker other than their static owner. None are flop sources.
	WalkNodes    int64
	Rebalances   int64
	StolenLeaves int64

	// Communication accounting (PR 9). Per-rank message/byte totals from the
	// mpi runtime, merged across ranks via a collective at report time —
	// never through shared memory, since ranks may live in different OS
	// processes. MsgsSent/BytesSent count every logical mpi message and its
	// payload bytes; WireMsgs/WireBytes are the subset that actually crossed
	// a socket (framing overhead is derived from WireMsgs, not counted
	// here). Session metrics, not flop sources: excluded from Encode/Decode
	// (checkpoints) and from Flops.
	MsgsSent  int64
	BytesSent int64
	WireMsgs  int64
	WireBytes int64
}

// Flops converts the counters to a total flop count under the model.
func (c *Counters) Flops() float64 {
	return float64(c.KernelInteractions)*FlopsPerInteraction +
		float64(c.FFT3D)*FFT3Flops(c.FFTGridN) +
		float64(c.CICOps)*FlopsPerCIC
}

// Add merges another counter set.
func (c *Counters) Add(o Counters) {
	c.KernelInteractions += o.KernelInteractions
	c.FFT3D += o.FFT3D
	if o.FFTGridN != 0 {
		c.FFTGridN = o.FFTGridN
	}
	c.CICOps += o.CICOps
	c.Restarts += o.Restarts
	c.CkptRetries += o.CkptRetries
	c.CkptQuarantined += o.CkptQuarantined
	c.WalkNodes += o.WalkNodes
	c.Rebalances += o.Rebalances
	c.StolenLeaves += o.StolenLeaves
	c.MsgsSent += o.MsgsSent
	c.BytesSent += o.BytesSent
	c.WireMsgs += o.WireMsgs
	c.WireBytes += o.WireBytes
}

// CounterWords is the number of int64 words Encode packs — the per-rank
// counter block a checkpoint stores for each rank.
const CounterWords = 10

// Encode packs the counters into the first CounterWords entries of w, for
// checkpointing. Decode inverts it; MergeRestored folds blocks adopted from
// other ranks when a checkpoint is restored at a different rank count.
func (c *Counters) Encode(w []int64) {
	w[0] = c.KernelInteractions
	w[1] = c.FFT3D
	w[2] = int64(c.FFTGridN)
	w[3] = c.CICOps
	w[4] = c.Restarts
	w[5] = c.CkptRetries
	w[6] = c.CkptQuarantined
	w[7] = c.WalkNodes
	w[8] = c.Rebalances
	w[9] = c.StolenLeaves
}

// Decode replaces the counters with an encoded block.
func (c *Counters) Decode(w []int64) {
	c.KernelInteractions = w[0]
	c.FFT3D = w[1]
	c.FFTGridN = int(w[2])
	c.CICOps = w[3]
	c.Restarts = w[4]
	c.CkptRetries = w[5]
	c.CkptQuarantined = w[6]
	c.WalkNodes = w[7]
	c.Rebalances = w[8]
	c.StolenLeaves = w[9]
}

// MergeRestored folds a counter block adopted from another rank's
// checkpoint data into c. KernelInteractions and CICOps are per-rank
// partial sums of global totals, so they add; FFT3D counts global
// transforms that every rank participated in (each rank's value is the
// same), so it is kept rather than summed — summing would inflate it by
// the number of adopted blocks; FFTGridN is a parameter, not a count.
// The resilience counters record collective events (a restart resumes the
// whole world, a checkpoint retry is agreed by every rank), so like FFT3D
// they are kept-if-zero rather than summed.
func (c *Counters) MergeRestored(w []int64) {
	c.KernelInteractions += w[0]
	if c.FFT3D == 0 {
		c.FFT3D = w[1]
	}
	if c.FFTGridN == 0 {
		c.FFTGridN = int(w[2])
	}
	c.CICOps += w[3]
	if c.Restarts == 0 {
		c.Restarts = w[4]
	}
	if c.CkptRetries == 0 {
		c.CkptRetries = w[5]
	}
	if c.CkptQuarantined == 0 {
		c.CkptQuarantined = w[6]
	}
	// WalkNodes is per-rank partial work like KernelInteractions: it adds.
	c.WalkNodes += w[7]
	// Rebalances records collective geometry rebuilds (every rank counts the
	// same event) and StolenLeaves is an intra-rank scheduling diagnostic
	// whose blocks would double-count under addition across adopted ranks;
	// both keep-once like the resilience counters.
	if c.Rebalances == 0 {
		c.Rebalances = w[8]
	}
	if c.StolenLeaves == 0 {
		c.StolenLeaves = w[9]
	}
}

// ProjectedBGQ returns the sustained TFlops and %-of-peak that `nodes` BG/Q
// nodes deliver under the paper's measured efficiency. This is the model
// behind the paper-shaped "PFlops" column of the Table II/III benches; the
// measured quantities (our wall-clock scaling, counted flops) are reported
// alongside it by the harness.
func ProjectedBGQ(nodes int) (tflops float64, peakPct float64) {
	peak := PeakGFlopsPerNode * 1e9 * float64(nodes)
	return peak * SustainedPeakFraction / 1e12, SustainedPeakFraction * 100
}

// BGQTimePerSubstep converts counted flops into the wall-clock one substep
// would take on `nodes` BG/Q nodes at the sustained rate — the model for
// the paper's time/substep/particle column.
func BGQTimePerSubstep(flops float64, nodes int) time.Duration {
	rate := PeakGFlopsPerNode * 1e9 * float64(nodes) * SustainedPeakFraction
	return time.Duration(flops / rate * float64(time.Second))
}

// Timers accumulates named phase durations (kernel, walk, fft, cic, build,
// comm, …). Safe for concurrent Add.
type Timers struct {
	mu    sync.Mutex
	m     map[string]time.Duration
	stack []phaseFrame // open Enter frames, innermost last
}

// phaseFrame is one open Enter/Exit bracket.
type phaseFrame struct {
	name  string
	start time.Time
}

// NewTimers creates an empty timer set.
func NewTimers() *Timers { return &Timers{m: make(map[string]time.Duration)} }

// Add accumulates d into the named phase.
func (t *Timers) Add(name string, d time.Duration) {
	t.mu.Lock()
	t.m[name] += d
	t.mu.Unlock()
}

// Time runs fn and accumulates its duration into the named phase.
func (t *Timers) Time(name string, fn func()) {
	start := time.Now()
	fn()
	t.Add(name, time.Since(start))
}

// Enter opens the named phase for explicit Enter/Exit bracketing — the form
// Time cannot express, where the phase boundary spans non-lexical scopes
// (loop iterations, early returns from callees). Phases nest; Exit must
// close the innermost open phase. Mismatched bracketing is a programming
// error and panics loudly rather than silently misattributing time.
func (t *Timers) Enter(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stack = append(t.stack, phaseFrame{name: name, start: time.Now()})
}

// Exit closes the named phase opened by the matching Enter, accumulating the
// elapsed time. It panics if no phase is open or if name is not the
// innermost open phase.
func (t *Timers) Exit(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		panic(fmt.Sprintf("machine: Timers.Exit(%q) with no open phase", name))
	}
	top := t.stack[len(t.stack)-1]
	if top.name != name {
		panic(fmt.Sprintf("machine: Timers.Exit(%q) does not match open phase %q", name, top.name))
	}
	t.stack = t.stack[:len(t.stack)-1]
	t.m[name] += time.Since(top.start)
}

// Merge accumulates every phase of o into t — the per-worker timer merge:
// workers time their own phases into private Timers and the owner folds them
// in after the join. Merging a timer set into itself is a no-op (not a
// doubling). Open Enter frames are not merged; o should be quiesced first.
func (t *Timers) Merge(o *Timers) {
	if o == nil || o == t {
		return
	}
	o.mu.Lock()
	snap := make(map[string]time.Duration, len(o.m))
	for n, d := range o.m {
		snap[n] = d
	}
	o.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for n, d := range snap {
		t.m[n] += d
	}
}

// Get returns the accumulated duration of a phase.
func (t *Timers) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[name]
}

// Communication phase names. The overlapped stepping pipeline splits comm
// time into the posted share (pack + post of non-blocking legs, charged to
// CommPost) and the exposed share (blocking wait + unpack, charged to
// CommWait). Exposed wait is what communication actually costs the step —
// overlap hides latency by shrinking CommWait (hidden communication shows
// up in neither phase; it is absorbed into the compute phases it ran
// behind), while CommPost is local pack work that overlap cannot remove.
const (
	CommPost = "commpost"
	CommWait = "commwait"
)

// CommSplit returns the posted and exposed communication time.
func (t *Timers) CommSplit() (post, wait time.Duration) {
	return t.Get(CommPost), t.Get(CommWait)
}

// Busy returns the total time across phases minus the exposed communication
// wait: the rank's working share of the step. Imbalance shows up as a
// spread of Busy across ranks — an idle rank parks in CommWait while the
// overloaded one computes — so max/mean/min of per-rank Busy is the
// step-time imbalance column of the phase report.
func (t *Timers) Busy() time.Duration {
	return t.Total() - t.Get(CommWait)
}

// Total returns the sum over all phases.
func (t *Timers) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s time.Duration
	for _, d := range t.m {
		s += d
	}
	return s
}

// Fractions returns each phase's share of the total, sorted descending —
// the paper's "80% kernel, 10% walk, 5% FFT" breakdown (§III).
func (t *Timers) Fractions() []PhaseFraction {
	t.mu.Lock()
	defer t.mu.Unlock()
	var tot time.Duration
	for _, d := range t.m {
		tot += d
	}
	out := make([]PhaseFraction, 0, len(t.m))
	for n, d := range t.m {
		f := 0.0
		if tot > 0 {
			f = float64(d) / float64(tot)
		}
		out = append(out, PhaseFraction{Name: n, Seconds: d.Seconds(), Fraction: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fraction > out[j].Fraction })
	return out
}

// PhaseFraction is one row of the time-split report.
type PhaseFraction struct {
	Name     string
	Seconds  float64
	Fraction float64
}
