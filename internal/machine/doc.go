// Package machine provides flop accounting and the BG/Q machine model used
// to print paper-style performance columns (PFlops, % of peak) from counted
// work, alongside honestly measured host wall-clock numbers. Constants come
// from paper §III. Timers split communication into posted (commpost) and
// exposed-wait (commwait) phases so the overlapped stepping of PR 3 is
// visible in the phase tables; PR 4 adds the "analysis" phase for the
// in-situ pipeline and PR 5 the "checkpoint" phase. Counters
// Encode/Decode/MergeRestored define the per-rank counter block a
// checkpoint stores, with merge semantics that keep global-transform
// counts honest when a checkpoint is restored at a different rank count.
package machine
