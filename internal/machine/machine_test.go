package machine

import (
	"math"
	"testing"
	"time"
)

func TestFFTFlops(t *testing.T) {
	if f := FFTFlops(1024, 1); math.Abs(f-5*1024*10) > 1e-9 {
		t.Errorf("FFTFlops(1024)=%g", f)
	}
	if f := FFTFlops(1, 100); f != 0 {
		t.Errorf("length-1 FFT should cost nothing, got %g", f)
	}
	// 3-D: three passes of n² batched transforms.
	if f := FFT3Flops(64); math.Abs(f-3*5*64*6*64*64) > 1e-6 {
		t.Errorf("FFT3Flops(64)=%g", f)
	}
}

func TestCountersFlops(t *testing.T) {
	c := Counters{KernelInteractions: 1000, FFT3D: 2, FFTGridN: 32, CICOps: 10}
	want := 1000*FlopsPerInteraction + 2*FFT3Flops(32) + 10*FlopsPerCIC
	if got := c.Flops(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Flops=%g want %g", got, want)
	}
	var d Counters
	d.Add(c)
	d.Add(c)
	if d.KernelInteractions != 2000 || d.FFT3D != 4 || d.FFTGridN != 32 {
		t.Errorf("Add broken: %+v", d)
	}
}

func TestProjection(t *testing.T) {
	// 96 racks = 98304 nodes: the paper's 13.94 PFlops at 69.2%.
	tf, pct := ProjectedBGQ(96 * 1024)
	if math.Abs(tf-13940) > 100 {
		t.Errorf("96-rack projection %g TFlops, want ≈13940", tf)
	}
	if math.Abs(pct-69.2) > 0.1 {
		t.Errorf("peak pct %g", pct)
	}
	d := BGQTimePerSubstep(1e15, 96*1024)
	if d <= 0 || d > time.Minute {
		t.Errorf("substep projection %v", d)
	}
}

func TestTimers(t *testing.T) {
	tm := NewTimers()
	tm.Add("kernel", 80*time.Millisecond)
	tm.Add("walk", 10*time.Millisecond)
	tm.Add("fft", 5*time.Millisecond)
	tm.Add("other", 5*time.Millisecond)
	tm.Time("other", func() {}) // ~0
	if tm.Get("kernel") != 80*time.Millisecond {
		t.Errorf("Get kernel %v", tm.Get("kernel"))
	}
	fr := tm.Fractions()
	if fr[0].Name != "kernel" || math.Abs(fr[0].Fraction-0.8) > 0.01 {
		t.Errorf("top phase %+v", fr[0])
	}
	if tm.Total() < 100*time.Millisecond {
		t.Errorf("total %v", tm.Total())
	}
}

// TestCounterCheckpointWords pins the checkpoint counter-block contract:
// Encode/Decode round-trip exactly, and MergeRestored folds adopted blocks
// with per-rank sums adding while the global transform count and grid
// parameter are kept, not summed.
func TestCounterCheckpointWords(t *testing.T) {
	orig := Counters{
		KernelInteractions: 123456, FFT3D: 48, FFTGridN: 256, CICOps: 7890,
		Restarts: 2, CkptRetries: 3, CkptQuarantined: 1,
		WalkNodes: 5555, Rebalances: 4, StolenLeaves: 77,
	}
	w := make([]int64, CounterWords)
	orig.Encode(w)
	var back Counters
	back.Decode(w)
	if back != orig {
		t.Fatalf("Decode(Encode(c)) = %+v, want %+v", back, orig)
	}
	// A reader rank adopting two writer blocks: additive fields (per-rank
	// partial work: interactions, CIC, walk nodes) sum; FFT3D, FFTGridN, the
	// resilience counters, and the balancing event counters (identical or
	// per-schedule on every writer rank) are kept once.
	w2 := make([]int64, CounterWords)
	(&Counters{
		KernelInteractions: 1000, FFT3D: 48, FFTGridN: 256, CICOps: 10,
		Restarts: 2, CkptRetries: 3, CkptQuarantined: 1,
		WalkNodes: 45, Rebalances: 4, StolenLeaves: 33,
	}).Encode(w2)
	var merged Counters
	merged.MergeRestored(w)
	merged.MergeRestored(w2)
	want := Counters{
		KernelInteractions: 124456, FFT3D: 48, FFTGridN: 256, CICOps: 7900,
		Restarts: 2, CkptRetries: 3, CkptQuarantined: 1,
		WalkNodes: 5600, Rebalances: 4, StolenLeaves: 77,
	}
	if merged != want {
		t.Fatalf("merged = %+v, want %+v", merged, want)
	}
	// The resilience counters are campaign health, not modeled work.
	withR := Counters{KernelInteractions: 100, Restarts: 50, CkptRetries: 50, CkptQuarantined: 50}
	noR := Counters{KernelInteractions: 100}
	if withR.Flops() != noR.Flops() {
		t.Fatalf("resilience counters leak into Flops: %g != %g", withR.Flops(), noR.Flops())
	}
}

func TestTimersBusy(t *testing.T) {
	tm := NewTimers()
	tm.Add("kernel", 70*time.Millisecond)
	tm.Add(CommPost, 10*time.Millisecond)
	tm.Add(CommWait, 20*time.Millisecond)
	if got, want := tm.Busy(), 80*time.Millisecond; got != want {
		t.Fatalf("Busy() = %v, want %v", got, want)
	}
}
