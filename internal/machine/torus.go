package machine

// Torus models the BG/Q 5-D torus interconnect (paper §III: each compute
// node has 10 links — one per direction per dimension — with 40 GB/s total
// node bandwidth). It provides hop metrics and first-order time estimates
// for the FFT transpose traffic, used to reason about Table I's network
// behavior.
type Torus struct {
	Dims [5]int
}

// BG/Q network constants (paper §III and ref. [5]).
const (
	TorusLinksPerNode   = 10
	TorusNodeBandwidthB = 40e9 // bytes/s aggregate over all links
	TorusLinkBandwidthB = TorusNodeBandwidthB / TorusLinksPerNode
)

// NewTorus builds a torus with the given extents; a midplane's 512 nodes
// are wired 4×4×4×4×2, a full 1024-node rack 4×4×4×8×2.
func NewTorus(dims [5]int) *Torus {
	for _, d := range dims {
		if d < 1 {
			panic("machine: torus dims must be positive")
		}
	}
	return &Torus{Dims: dims}
}

// RackTorus returns the 4×4×4×8×2 single-rack wiring (1024 nodes).
func RackTorus() *Torus { return NewTorus([5]int{4, 4, 4, 8, 2}) }

// Nodes returns the node count.
func (t *Torus) Nodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Coords maps a rank to torus coordinates (row-major).
func (t *Torus) Coords(rank int) [5]int {
	var c [5]int
	for i := 4; i >= 0; i-- {
		c[i] = rank % t.Dims[i]
		rank /= t.Dims[i]
	}
	return c
}

// Hops returns the minimal hop distance between two ranks with periodic
// wrap in every dimension.
func (t *Torus) Hops(a, b int) int {
	ca, cb := t.Coords(a), t.Coords(b)
	h := 0
	for i := 0; i < 5; i++ {
		d := ca[i] - cb[i]
		if d < 0 {
			d = -d
		}
		if w := t.Dims[i] - d; w < d {
			d = w
		}
		h += d
	}
	return h
}

// MeanHops returns the average pairwise hop count over all distinct pairs —
// the expected path length of all-to-all traffic.
func (t *Torus) MeanHops() float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	// Per-dimension mean wrap distance is independent; sum them.
	total := 0.0
	for i := 0; i < 5; i++ {
		d := t.Dims[i]
		sum := 0
		for x := 0; x < d; x++ {
			w := x
			if d-x < w {
				w = d - x
			}
			sum += w
		}
		total += float64(sum) / float64(d)
	}
	return total
}

// BisectionLinks counts links crossing the worst-case bisection (half the
// links in the longest dimension's cut, times the cross-sectional area).
func (t *Torus) BisectionLinks() int {
	// Cut the largest dimension: 2 wrap directions × cross-section.
	maxD := 0
	for i := 1; i < 5; i++ {
		if t.Dims[i] > t.Dims[maxD] {
			maxD = i
		}
	}
	cross := t.Nodes() / t.Dims[maxD]
	return 2 * cross
}

// AllToAllTime estimates the wall-clock of a balanced all-to-all where
// every node sends bytesPerPair to every other node: total traffic times
// mean path length spread over all links.
func (t *Torus) AllToAllTime(bytesPerPair float64) float64 {
	n := float64(t.Nodes())
	traffic := bytesPerPair * n * (n - 1) * t.MeanHops()
	capacity := TorusLinkBandwidthB * float64(t.Nodes()) * TorusLinksPerNode
	return traffic / capacity
}

// TransposeTime estimates one pencil-FFT transpose on this torus: each of
// the `groups` sub-communicators of size g exchanges its share of an n³
// complex grid (16 bytes/point).
func (t *Torus) TransposeTime(n, groups, g int) float64 {
	if g <= 1 {
		return 0
	}
	points := float64(n) * float64(n) * float64(n)
	bytesPerPair := points * 16 / (float64(groups) * float64(g) * float64(g))
	// Sub-communicators run concurrently over disjoint node sets; model as
	// the full machine moving the aggregate volume.
	total := bytesPerPair * float64(groups) * float64(g) * float64(g-1) * t.MeanHops()
	capacity := TorusLinkBandwidthB * float64(t.Nodes()) * TorusLinksPerNode
	return total / capacity
}
