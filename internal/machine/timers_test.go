package machine

import (
	"sync"
	"testing"
	"time"
)

// Unentered phases must read as zero everywhere, not as missing keys or NaN
// fractions — the phase report renders timers for phases a configuration
// never runs (no FFT on a tree-only run, no rebalance with balancing off).
func TestTimersUnenteredPhases(t *testing.T) {
	tm := NewTimers()
	if post, wait := tm.CommSplit(); post != 0 || wait != 0 {
		t.Fatalf("empty CommSplit = %v, %v; want 0, 0", post, wait)
	}
	if got := tm.Busy(); got != 0 {
		t.Fatalf("empty Busy = %v, want 0", got)
	}
	if got := tm.Total(); got != 0 {
		t.Fatalf("empty Total = %v, want 0", got)
	}
	if fr := tm.Fractions(); len(fr) != 0 {
		t.Fatalf("empty Fractions = %v, want none", fr)
	}

	// One entered phase: the others still read zero, fractions sum to 1.
	tm.Add("kernel", time.Second)
	if post, wait := tm.CommSplit(); post != 0 || wait != 0 {
		t.Fatalf("CommSplit with only kernel time = %v, %v; want 0, 0", post, wait)
	}
	fr := tm.Fractions()
	if len(fr) != 1 || fr[0].Name != "kernel" || fr[0].Fraction != 1 {
		t.Fatalf("Fractions = %+v, want kernel at 1.0", fr)
	}
}

func TestTimersEnterExit(t *testing.T) {
	tm := NewTimers()
	tm.Enter("walk")
	tm.Enter("kernel") // nested
	time.Sleep(time.Millisecond)
	tm.Exit("kernel")
	tm.Exit("walk")
	if got := tm.Get("kernel"); got <= 0 {
		t.Fatalf("kernel = %v, want > 0", got)
	}
	if got := tm.Get("walk"); got < tm.Get("kernel") {
		t.Fatalf("outer walk (%v) shorter than nested kernel (%v)", got, tm.Get("kernel"))
	}
}

// Misusing the Enter/Exit bracketing must panic loudly, not silently
// misattribute phase time.
func TestTimersExitMisusePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Exit with no open phase", func() {
		NewTimers().Exit("kernel")
	})
	mustPanic("Exit of a phase that is not innermost", func() {
		tm := NewTimers()
		tm.Enter("walk")
		tm.Enter("kernel")
		tm.Exit("walk")
	})
	mustPanic("Exit of a never-entered phase", func() {
		tm := NewTimers()
		tm.Enter("walk")
		tm.Exit("fft")
	})
}

// The per-worker pattern: workers accumulate into private timer sets and the
// owner merges them after the join. Concurrent merges into one target must
// be exact under -race.
func TestTimersConcurrentMerge(t *testing.T) {
	const workers = 8
	total := NewTimers()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			priv := NewTimers()
			for i := 0; i < 100; i++ {
				priv.Add("kernel", time.Microsecond)
				priv.Add(CommWait, time.Microsecond)
			}
			total.Merge(priv)
		}()
	}
	wg.Wait()
	want := time.Duration(workers*100) * time.Microsecond
	if got := total.Get("kernel"); got != want {
		t.Fatalf("merged kernel = %v, want %v", got, want)
	}
	if got := total.Busy(); got != want {
		t.Fatalf("merged Busy = %v, want %v (commwait excluded)", got, want)
	}
}

func TestTimersMergeSelfAndNil(t *testing.T) {
	tm := NewTimers()
	tm.Add("kernel", time.Second)
	tm.Merge(tm)
	if got := tm.Get("kernel"); got != time.Second {
		t.Fatalf("self-merge doubled kernel to %v", got)
	}
	tm.Merge(nil)
	if got := tm.Get("kernel"); got != time.Second {
		t.Fatalf("nil merge changed kernel to %v", got)
	}
}
