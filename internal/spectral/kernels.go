package spectral

import "math"

// Default filter parameters from the paper: σ=0.8 grid cells, ns=3.
const (
	DefaultSigma = 0.8
	DefaultNs    = 3
)

// Filter evaluates the isotropizing spectral filter of eq. (5) at radial
// wavenumber k (grid units, k∈[0, √3·π]).
func Filter(k, sigma float64, ns int) float64 {
	g := math.Exp(-k * k * sigma * sigma / 4)
	if k < 1e-12 {
		return g
	}
	s := math.Sin(k/2) / (k / 2)
	return g * math.Pow(s, float64(ns))
}

// Influence6 returns the eigenvalue λ(k) of the sixth-order periodic
// discrete Laplacian for the mode with components (kx,ky,kz); the influence
// function (spectral inverse Laplacian) is 1/λ. λ → −k² as k → 0 and λ < 0
// for every non-zero mode.
func Influence6(kx, ky, kz float64) float64 {
	return lap6(kx) + lap6(ky) + lap6(kz)
}

// lap6 is the 1-D sixth-order second-derivative eigenvalue
// (stencil 1/90·[2, −27, 270, −490, 270, −27, 2]).
func lap6(k float64) float64 {
	return -49.0/18 + 3*math.Cos(k) - 0.3*math.Cos(2*k) + math.Cos(3*k)/45
}

// GradSL4 returns the fourth-order Super-Lanczos spectral differencing
// multiplier D(k) (Hamming 1998), so that ∂/∂x ↔ i·D(k). D(k) → k as k → 0.
func GradSL4(k float64) float64 {
	return (8*math.Sin(k) - math.Sin(2*k)) / 6
}

// KMode converts a mode index m on an n-point periodic grid to the signed
// wavenumber k = 2π·m̃/n with m̃ ∈ [−n/2, n/2).
func KMode(m, n int) float64 {
	if m > n/2 {
		m -= n
	}
	return 2 * math.Pi * float64(m) / float64(n)
}

// sinc is sin(x)/x with the removable singularity filled in.
func sinc(x float64) float64 {
	if math.Abs(x) < 1e-12 {
		return 1
	}
	return math.Sin(x) / x
}
