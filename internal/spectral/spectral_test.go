package spectral

import (
	"math"
	"math/rand"
	"testing"

	"hacc/internal/grid"
	"hacc/internal/mpi"
)

func TestFilterProperties(t *testing.T) {
	if f := Filter(0, DefaultSigma, DefaultNs); math.Abs(f-1) > 1e-12 {
		t.Errorf("Filter(0)=%g want 1", f)
	}
	prev := 1.0
	for k := 0.1; k < math.Pi; k += 0.1 {
		f := Filter(k, DefaultSigma, DefaultNs)
		if f <= 0 || f >= prev {
			t.Errorf("Filter not strictly decreasing at k=%g: %g (prev %g)", k, f, prev)
		}
		prev = f
	}
	if f := Filter(math.Pi, DefaultSigma, DefaultNs); f > 0.1 {
		t.Errorf("Filter(π)=%g, expected strong suppression", f)
	}
}

func TestInfluence6(t *testing.T) {
	// λ → −k² as k → 0, to sixth order.
	for _, k := range []float64{0.01, 0.05, 0.1} {
		l := Influence6(k, 0, 0)
		if math.Abs(l+k*k) > 1e-4*k*k {
			t.Errorf("Influence6(%g)=%g want ≈%g", k, l, -k*k)
		}
	}
	// Negative definite away from DC.
	for _, k := range [][3]float64{{1, 0, 0}, {2, 2, 1}, {math.Pi, math.Pi, math.Pi}, {0.3, -2.9, 1.2}} {
		if l := Influence6(k[0], k[1], k[2]); l >= 0 {
			t.Errorf("Influence6(%v)=%g not negative", k, l)
		}
	}
}

func TestGradSL4(t *testing.T) {
	for _, k := range []float64{0.01, 0.05, 0.1, 0.2} {
		d := GradSL4(k)
		if math.Abs(d-k) > k*k*k*k*1.0 {
			t.Errorf("GradSL4(%g)=%g want ≈%g", k, d, k)
		}
	}
	if d := GradSL4(math.Pi); math.Abs(d) > 1e-12 {
		t.Errorf("GradSL4(π)=%g want 0", d)
	}
	// Odd function.
	if GradSL4(0.7)+GradSL4(-0.7) != 0 {
		t.Error("GradSL4 not odd")
	}
}

func TestKMode(t *testing.T) {
	n := 8
	wants := []float64{0, 1, 2, 3, 4, -3, -2, -1}
	for m, w := range wants {
		if got := KMode(m, n); math.Abs(got-2*math.Pi*w/8) > 1e-12 {
			t.Errorf("KMode(%d,8)=%g want %g", m, got, 2*math.Pi*w/8)
		}
	}
}

// pmAccel runs the full PM pipeline for the given particles on p ranks and
// returns the interpolated accelerations (one [3]float64 per particle).
func pmAccel(t *testing.T, n [3]int, p int, opts Options, px, py, pz []float32) [][3]float64 {
	t.Helper()
	np := len(px)
	res := make([][3]float64, np)
	err := mpi.Run(p, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, p)
		b := dec.Box(c.Rank())
		rho := grid.NewField(n, b, 1)
		ex := grid.NewExchanger(c, dec, rho)
		ps := NewPoisson(c, dec, opts)
		// Deposit the particles owned by this rank.
		var xs, ys, zs []float32
		var ids []int
		for i := 0; i < np; i++ {
			if dec.RankOf(float64(px[i]), float64(py[i]), float64(pz[i])) == c.Rank() {
				xs = append(xs, px[i])
				ys = append(ys, py[i])
				zs = append(zs, pz[i])
				ids = append(ids, i)
			}
		}
		grid.DepositCIC(rho, xs, ys, zs, 1)
		ex.Accumulate(rho)
		var acc [3]*grid.Field
		var exa [3]*grid.Exchanger
		for d := 0; d < 3; d++ {
			acc[d] = grid.NewField(n, b, 1)
			exa[d] = grid.NewExchanger(c, dec, acc[d])
		}
		ps.Solve(rho, &acc)
		out := make([]float32, len(xs))
		local := make([]float64, 3*np)
		for d := 0; d < 3; d++ {
			exa[d].Fill(acc[d])
			grid.InterpCIC(acc[d], xs, ys, zs, out, 1)
			for j, id := range ids {
				local[3*id+d] = float64(out[j])
			}
		}
		tot := mpi.AllReduce(c, local, mpi.SumF64)
		if c.Rank() == 0 {
			for i := 0; i < np; i++ {
				res[i] = [3]float64{tot[3*i], tot[3*i+1], tot[3*i+2]}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPointSourceForceLaw(t *testing.T) {
	// A unit point mass at a grid node: the PM acceleration at distance r
	// beyond the filter scale must approach g/r², g = (3/2)Ωm/4π.
	const omegaM = 0.3
	n := [3]int{64, 64, 64}
	g := 1.5 * omegaM / (4 * math.Pi)
	src := [3]float32{32, 32, 32}
	// Beyond ~L/5 the periodic images contribute several percent (real
	// physics, handled by the PM sum itself), so probe radii stay below.
	radii := []float64{6, 8, 12}
	px := []float32{src[0]}
	py := []float32{src[1]}
	pz := []float32{src[2]}
	for _, r := range radii {
		px = append(px, src[0]+float32(r))
		py = append(py, src[1])
		pz = append(pz, src[2])
	}
	// Only the source deposits; test points are massless probes. Emulate by
	// depositing just the source and interpolating at the probes: run with
	// the source as the single particle, probes via a second call.
	acc := pmProbe(t, n, 1, Options{OmegaM: omegaM, Filter: true}, src, px, py, pz)
	for i, r := range radii {
		ax := acc[i+1][0]
		want := -g / (r * r) // attraction toward the source (−x direction)
		if math.Abs(ax-want) > 0.04*math.Abs(want) {
			t.Errorf("r=%g: ax=%g want %g (err %.2f%%)", r, ax, want,
				100*math.Abs(ax-want)/math.Abs(want))
		}
		// Transverse components negligible.
		if math.Abs(acc[i+1][1]) > 0.02*math.Abs(want) || math.Abs(acc[i+1][2]) > 0.02*math.Abs(want) {
			t.Errorf("r=%g: transverse force %g,%g", r, acc[i+1][1], acc[i+1][2])
		}
	}
}

// pmProbe deposits a single unit mass at src and returns accelerations
// interpolated at the probe positions.
func pmProbe(t *testing.T, n [3]int, p int, opts Options, src [3]float32, px, py, pz []float32) [][3]float64 {
	t.Helper()
	np := len(px)
	res := make([][3]float64, np)
	err := mpi.Run(p, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, p)
		b := dec.Box(c.Rank())
		rho := grid.NewField(n, b, 1)
		ex := grid.NewExchanger(c, dec, rho)
		ps := NewPoisson(c, dec, opts)
		if dec.RankOf(float64(src[0]), float64(src[1]), float64(src[2])) == c.Rank() {
			grid.DepositCIC(rho, []float32{src[0]}, []float32{src[1]}, []float32{src[2]}, 1)
		}
		ex.Accumulate(rho)
		var acc [3]*grid.Field
		for d := 0; d < 3; d++ {
			acc[d] = grid.NewField(n, b, 1)
		}
		ps.Solve(rho, &acc)
		local := make([]float64, 3*np)
		out := make([]float32, 1)
		for i := 0; i < np; i++ {
			if dec.RankOf(float64(px[i]), float64(py[i]), float64(pz[i])) != c.Rank() {
				continue
			}
			for d := 0; d < 3; d++ {
				ge := grid.NewExchanger(c, dec, acc[d])
				_ = ge
				grid.InterpCIC(acc[d], px[i:i+1], py[i:i+1], pz[i:i+1], out, 1)
				local[3*i+d] = float64(out[0])
			}
		}
		tot := mpi.AllReduce(c, local, mpi.SumF64)
		if c.Rank() == 0 {
			for i := 0; i < np; i++ {
				res[i] = [3]float64{tot[3*i], tot[3*i+1], tot[3*i+2]}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFilterReducesAnisotropy(t *testing.T) {
	// Paper §II: the spectral filter cuts CIC anisotropy noise by over an
	// order of magnitude "without requiring complex and inflexible
	// higher-order spatial particle deposition methods". The baseline is
	// the conventional sharpened PM (CIC window deconvolved); measure the
	// direction scatter of the force magnitude at r≈3.2 for both.
	n := [3]int{32, 32, 32}
	src := [3]float32{16.37, 15.81, 16.02} // off-node source: worst case
	rng := rand.New(rand.NewSource(11))
	const nd = 48
	r := 3.2
	px := make([]float32, nd)
	py := make([]float32, nd)
	pz := make([]float32, nd)
	for i := 0; i < nd; i++ {
		// Random direction.
		for {
			x, y, z := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			s := math.Sqrt(x*x + y*y + z*z)
			if s < 1e-6 {
				continue
			}
			px[i] = src[0] + float32(r*x/s)
			py[i] = src[1] + float32(r*y/s)
			pz[i] = src[2] + float32(r*z/s)
			break
		}
	}
	scatter := func(opts Options) float64 {
		acc := pmProbe(t, n, 1, opts, src, px, py, pz)
		mags := make([]float64, nd)
		var mean float64
		for i, a := range acc {
			mags[i] = math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
			mean += mags[i]
		}
		mean /= nd
		var vr float64
		for _, m := range mags {
			vr += (m - mean) * (m - mean)
		}
		return math.Sqrt(vr/nd) / mean
	}
	sf := scatter(Options{OmegaM: 0.3, Filter: true})
	su := scatter(Options{OmegaM: 0.3, Deconvolve: true})
	t.Logf("anisotropy scatter: filtered %.4f deconvolved %.4f (ratio %.1f)", sf, su, su/sf)
	if sf >= su/5 {
		t.Errorf("filter should cut anisotropy scatter ≥5× vs sharpened PM: filtered %g deconvolved %g", sf, su)
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	// Equal-mass pair: PM forces must be equal and opposite (CIC deposit
	// and interpolation are adjoint, the gradient kernel is odd).
	n := [3]int{32, 32, 32}
	px := []float32{10.3, 21.8}
	py := []float32{16.1, 15.2}
	pz := []float32{14.9, 17.4}
	acc := pmAccel(t, n, 1, Options{OmegaM: 0.3, Filter: true}, px, py, pz)
	for d := 0; d < 3; d++ {
		if math.Abs(acc[0][d]+acc[1][d]) > 1e-6*(math.Abs(acc[0][d])+1e-12) {
			t.Errorf("momentum violation in component %d: %g vs %g", d, acc[0][d], acc[1][d])
		}
	}
}

func TestUniformLatticeZeroForce(t *testing.T) {
	// A uniform particle lattice exerts no net PM force on its members.
	n := [3]int{16, 16, 16}
	var px, py, pz []float32
	for x := 0; x < 16; x += 2 {
		for y := 0; y < 16; y += 2 {
			for z := 0; z < 16; z += 2 {
				px = append(px, float32(x))
				py = append(py, float32(y))
				pz = append(pz, float32(z))
			}
		}
	}
	acc := pmAccel(t, n, 1, Options{OmegaM: 0.3, Filter: true}, px, py, pz)
	for i, a := range acc {
		for d := 0; d < 3; d++ {
			if math.Abs(a[d]) > 1e-10 {
				t.Fatalf("particle %d: lattice force %v", i, a)
			}
		}
	}
}

func TestParallelMatchesSerialSolve(t *testing.T) {
	// The same particle set must produce identical accelerations on 1 rank,
	// 4 pencil ranks, and 4 slab ranks.
	n := [3]int{16, 16, 16}
	rng := rand.New(rand.NewSource(3))
	const np = 40
	px := make([]float32, np)
	py := make([]float32, np)
	pz := make([]float32, np)
	for i := 0; i < np; i++ {
		px[i] = float32(rng.Float64() * 16)
		py[i] = float32(rng.Float64() * 16)
		pz[i] = float32(rng.Float64() * 16)
	}
	ref := pmAccel(t, n, 1, Options{OmegaM: 0.3, Filter: true}, px, py, pz)
	par := pmAccel(t, n, 4, Options{OmegaM: 0.3, Filter: true}, px, py, pz)
	slab := pmAccel(t, n, 4, Options{OmegaM: 0.3, Filter: true, Slab: true}, px, py, pz)
	var scale float64
	for _, a := range ref {
		for d := 0; d < 3; d++ {
			scale = math.Max(scale, math.Abs(a[d]))
		}
	}
	for i := 0; i < np; i++ {
		for d := 0; d < 3; d++ {
			if math.Abs(ref[i][d]-par[i][d]) > 1e-6*scale {
				t.Errorf("pencil mismatch particle %d comp %d: %g vs %g", i, d, ref[i][d], par[i][d])
			}
			if math.Abs(ref[i][d]-slab[i][d]) > 1e-6*scale {
				t.Errorf("slab mismatch particle %d comp %d: %g vs %g", i, d, ref[i][d], slab[i][d])
			}
		}
	}
}
