// Package spectral implements HACC's long/medium-range force solver: a
// spectrally filtered particle-mesh method (paper §II). The "Poisson solve"
// is the composition of four k-space kernels applied inside a single
// distributed FFT:
//
//   - the isotropizing CIC-noise filter exp(−k²σ²/4)·[sinc(k/2)]^ns (eq. 5),
//   - a sixth-order periodic influence function (spectral inverse Laplacian),
//   - fourth-order Super-Lanczos spectral differencing for the gradient,
//   - the Vlasov-Poisson coupling constant (3/2)Ωm (DESIGN.md code units).
//
// Since PR 2, Poisson is a persistent plan: it owns the pencil r2c FFT, two
// planned block↔pencil redistributions, the composed half-spectrum kernel
// and per-axis gradient tables, and all solve scratch, with every k-space
// loop pooled — a warm Solve allocates nothing on one rank. The pre-plan
// implementation survives as the solveReference equivalence oracle.
package spectral
