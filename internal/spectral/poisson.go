package spectral

import (
	"math"

	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/pfft"
)

// Options configures the Poisson solver.
type Options struct {
	OmegaM float64 // matter density; sets the coupling (3/2)Ωm
	Sigma  float64 // filter width in grid cells; DefaultSigma if 0
	Ns     int     // filter sinc exponent; DefaultNs if 0
	Filter bool    // apply the isotropizing filter (on in production)
	Slab   bool    // use the slab FFT decomposition instead of pencils

	// Deconvolve divides out the CIC assignment window twice (deposit and
	// interpolation), the conventional sharpened-PM scheme. HACC replaces
	// this with the isotropizing filter; the option exists as the baseline
	// for the anisotropy ablation (Filter and Deconvolve are exclusive).
	Deconvolve bool
}

// Poisson is the distributed long/medium-range force solver. It owns the
// pencil FFT, the block↔pencil redistribution layouts, and the precomputed
// k-space kernel on this rank's share of spectral space.
type Poisson struct {
	comm   *mpi.Comm
	dec    *grid.Decomp
	pen    *pfft.Pencil
	opts   Options
	kernel []float64    // (3/2)Ωm · F(k) · 1/λ(k) on local z-pencil modes
	dTab   [3][]float64 // GradSL4 per axis mode index
}

// NewPoisson builds the solver. Collective over comm.
func NewPoisson(c *mpi.Comm, dec *grid.Decomp, opts Options) *Poisson {
	if opts.Sigma == 0 {
		opts.Sigma = DefaultSigma
	}
	if opts.Ns == 0 {
		opts.Ns = DefaultNs
	}
	n := dec.N
	var pen *pfft.Pencil
	if opts.Slab {
		pen = pfft.NewSlab(c, n)
	} else {
		pen = pfft.NewAuto(c, n)
	}
	p := &Poisson{comm: c, dec: dec, pen: pen, opts: opts}
	for d := 0; d < 3; d++ {
		p.dTab[d] = make([]float64, n[d])
		for m := 0; m < n[d]; m++ {
			p.dTab[d][m] = GradSL4(KMode(m, n[d]))
		}
	}
	coupling := 1.5 * opts.OmegaM
	p.kernel = make([]float64, pen.LocalZ().Count())
	pen.ForEachK(func(mx, my, mz, idx int) {
		if mx == 0 && my == 0 && mz == 0 {
			p.kernel[idx] = 0 // zero the DC mode: mean density sources nothing
			return
		}
		kx := KMode(mx, n[0])
		ky := KMode(my, n[1])
		kz := KMode(mz, n[2])
		g := 1 / Influence6(kx, ky, kz)
		f := 1.0
		if p.opts.Filter {
			kr := math.Sqrt(kx*kx + ky*ky + kz*kz)
			f = Filter(kr, p.opts.Sigma, p.opts.Ns)
		} else if p.opts.Deconvolve {
			w := sinc(kx/2) * sinc(ky/2) * sinc(kz/2)
			f = 1 / (w * w * w * w)
		}
		p.kernel[idx] = coupling * f * g
	})
	return p
}

// Pencil exposes the underlying distributed FFT (for benchmarks).
func (p *Poisson) Pencil() *pfft.Pencil { return p.pen }

// Solve computes the acceleration field −∇ψ with ∇²ψ = (3/2)Ωm·δ from the
// deposited density (rho must already have ghost contributions folded in).
// The three acceleration components are stored into acc[0..2] (owned
// regions; the caller fills ghosts afterwards). Collective over comm.
func (p *Poisson) Solve(rho *grid.Field, acc *[3]*grid.Field) {
	psi := p.forwardPotential(rho)
	blockLay := p.dec.Layout()
	penXLay := p.pen.LayoutX()
	for d := 0; d < 3; d++ {
		comp := make([]complex128, len(psi))
		dt := p.dTab[d]
		p.pen.ForEachK(func(mx, my, mz, idx int) {
			var dk float64
			switch d {
			case 0:
				dk = dt[mx]
			case 1:
				dk = dt[my]
			default:
				dk = dt[mz]
			}
			// acceleration = −∂ψ ↔ −i·D(k)·ψ̂
			v := psi[idx]
			comp[idx] = complex(imag(v)*dk, -real(v)*dk)
		})
		rs := p.pen.Inverse(comp)
		vals := make([]float64, len(rs))
		for i, v := range rs {
			vals[i] = real(v)
		}
		back := pfft.Redistribute(p.comm, vals, penXLay, blockLay)
		acc[d].SetOwned(back)
	}
}

// SolvePotential computes the scalar potential ψ itself (diagnostics and
// force-matching; the short-range kernel fit samples PM forces instead).
func (p *Poisson) SolvePotential(rho *grid.Field, out *grid.Field) {
	psi := p.forwardPotential(rho)
	rs := p.pen.Inverse(psi)
	vals := make([]float64, len(rs))
	for i, v := range rs {
		vals[i] = real(v)
	}
	back := pfft.Redistribute(p.comm, vals, p.pen.LayoutX(), p.dec.Layout())
	out.SetOwned(back)
}

// forwardPotential deposits rho through the FFT and applies the composed
// kernel, returning ψ̂ in the z-pencil layout.
func (p *Poisson) forwardPotential(rho *grid.Field) []complex128 {
	owned := rho.Owned()
	moved := pfft.Redistribute(p.comm, owned, p.dec.Layout(), p.pen.LayoutX())
	data := make([]complex128, len(moved))
	for i, v := range moved {
		data[i] = complex(v, 0)
	}
	spec := p.pen.Forward(data)
	for i := range spec {
		spec[i] *= complex(p.kernel[i], 0)
	}
	return spec
}
