package spectral

import (
	"math"

	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/par"
	"hacc/internal/pfft"
)

// Options configures the Poisson solver.
type Options struct {
	OmegaM float64 // matter density; sets the coupling (3/2)Ωm
	Sigma  float64 // filter width in grid cells; DefaultSigma if 0
	Ns     int     // filter sinc exponent; DefaultNs if 0
	Filter bool    // apply the isotropizing filter (on in production)
	Slab   bool    // use the slab FFT decomposition instead of pencils

	// Deconvolve divides out the CIC assignment window twice (deposit and
	// interpolation), the conventional sharpened-PM scheme. HACC replaces
	// this with the isotropizing filter; the option exists as the baseline
	// for the anisotropy ablation (Filter and Deconvolve are exclusive).
	Deconvolve bool

	// Pool, when set, threads the k-space loops and the batched 1-D
	// transforms across the simulation's persistent worker pool. All pooled
	// loops are per-element independent, so the result is bitwise identical
	// to the serial path. Nil keeps the solver serial.
	Pool *par.Pool
}

// Poisson is the distributed long/medium-range force solver. It owns the
// pencil FFT, the planned block↔pencil redistributions, the precomputed
// k-space tables on this rank's share of the (Hermitian-halved) spectrum,
// and all solve scratch — steady-state Solve allocates nothing beyond the
// mpi runtime's per-message copies.
type Poisson struct {
	comm *mpi.Comm
	dec  *grid.Decomp
	pen  *pfft.Pencil
	opts Options
	pool *par.Pool

	// kernel is the composed Poisson kernel (3/2)Ωm·F(k)/λ(k) per local
	// half-spectrum z-pencil mode; dTab holds the GradSL4 factor per global
	// axis mode (three O(n) tables — the gradient loops recover the axis
	// mode from the flat index, so no per-mode gradient storage is needed).
	kernel []float64
	dTab   [3][]float64
	kbox   pfft.Box // this rank's half-spectrum z-pencil box

	// Planned block↔x-pencil redistributions and persistent scratch.
	toPen    *pfft.Redistributor[float64]
	fromPen  *pfft.Redistributor[float64]
	ownedBuf []float64    // block-layout owned region
	realBuf  []float64    // x-pencil real field
	comp     []complex128 // half-spectrum gradient component

	// Persistent pool-dispatch bodies for the k-space loops; per-call
	// parameters (the spectrum slice, the gradient axis) live in the fields
	// below, published to the workers by the pool's channel send, so a
	// steady-state Solve allocates nothing.
	spec     []complex128
	gradD    int
	kernBody func(lo, hi int)
	gradBody func(lo, hi int)
}

// NewPoisson builds the solver. Collective over comm.
func NewPoisson(c *mpi.Comm, dec *grid.Decomp, opts Options) *Poisson {
	if opts.Sigma == 0 {
		opts.Sigma = DefaultSigma
	}
	if opts.Ns == 0 {
		opts.Ns = DefaultNs
	}
	n := dec.N
	var pen *pfft.Pencil
	if opts.Slab {
		pen = pfft.NewSlab(c, n)
	} else {
		pen = pfft.NewAuto(c, n)
	}
	p := &Poisson{comm: c, dec: dec, pen: pen, opts: opts, pool: opts.Pool}
	pen.SetPool(p.pool)

	p.kbox = pen.LocalZR()
	nk := p.kbox.Count()
	p.kernel = make([]float64, nk)
	pen.ForEachKR(func(mx, my, mz, idx int) {
		p.kernel[idx] = p.kernelAt(mx, my, mz)
	})
	for d := 0; d < 3; d++ {
		p.dTab[d] = make([]float64, n[d])
		for m := 0; m < n[d]; m++ {
			p.dTab[d][m] = GradSL4(KMode(m, n[d]))
		}
	}

	me := c.Rank()
	p.toPen = pfft.NewRedistributor[float64](c, dec.Layout(), pen.LayoutX())
	p.fromPen = pfft.NewRedistributor[float64](c, pen.LayoutX(), dec.Layout())
	p.ownedBuf = make([]float64, dec.Layout().Boxes[me].Count())
	p.realBuf = make([]float64, pen.LocalX().Count())
	p.comp = make([]complex128, nk)
	p.kernBody = func(lo, hi int) {
		spec, kern := p.spec, p.kernel
		for i := lo; i < hi; i++ {
			v := spec[i]
			k := kern[i]
			spec[i] = complex(real(v)*k, imag(v)*k)
		}
	}
	p.gradBody = func(lo, hi int) {
		// acceleration = −∂ψ ↔ −i·D(k)·ψ̂. The half-spectrum z-pencil
		// stores z fastest, then y, then x, so the axis mode falls out of
		// the flat index by div/mod against the local box shape.
		spec, comp, dt := p.spec, p.comp, p.dTab[p.gradD]
		sy, sz := p.kbox.Size(1), p.kbox.Size(2)
		switch p.gradD {
		case 0:
			lo0 := p.kbox.Lo[0]
			for i := lo; i < hi; i++ {
				v := spec[i]
				dk := dt[i/(sy*sz)+lo0]
				comp[i] = complex(imag(v)*dk, -real(v)*dk)
			}
		case 1:
			lo1 := p.kbox.Lo[1]
			for i := lo; i < hi; i++ {
				v := spec[i]
				dk := dt[(i/sz)%sy+lo1]
				comp[i] = complex(imag(v)*dk, -real(v)*dk)
			}
		default:
			lo2 := p.kbox.Lo[2]
			for i := lo; i < hi; i++ {
				v := spec[i]
				dk := dt[i%sz+lo2]
				comp[i] = complex(imag(v)*dk, -real(v)*dk)
			}
		}
	}
	return p
}

// kernelAt composes the k-space Green's function at global mode (mx,my,mz):
// coupling × filter (or deconvolution) × inverse influence function, with
// the DC mode zeroed (mean density sources nothing).
func (p *Poisson) kernelAt(mx, my, mz int) float64 {
	if mx == 0 && my == 0 && mz == 0 {
		return 0
	}
	n := p.dec.N
	kx := KMode(mx, n[0])
	ky := KMode(my, n[1])
	kz := KMode(mz, n[2])
	g := 1 / Influence6(kx, ky, kz)
	f := 1.0
	if p.opts.Filter {
		kr := math.Sqrt(kx*kx + ky*ky + kz*kz)
		f = Filter(kr, p.opts.Sigma, p.opts.Ns)
	} else if p.opts.Deconvolve {
		w := sinc(kx/2) * sinc(ky/2) * sinc(kz/2)
		f = 1 / (w * w * w * w)
	}
	return 1.5 * p.opts.OmegaM * f * g
}

// Pencil exposes the underlying distributed FFT (for benchmarks).
func (p *Poisson) Pencil() *pfft.Pencil { return p.pen }

// parFor shards a per-element-independent loop over the pool, or runs it
// inline when no pool is attached.
func (p *Poisson) parFor(n int, body func(lo, hi int)) {
	if p.pool != nil {
		p.pool.For(n, body)
		return
	}
	body(0, n)
}

// Solve computes the acceleration field −∇ψ with ∇²ψ = (3/2)Ωm·δ from the
// deposited density (rho must already have ghost contributions folded in).
// The three acceleration components are stored into acc[0..2] (owned
// regions; the caller fills ghosts afterwards). Collective over comm.
func (p *Poisson) Solve(rho *grid.Field, acc *[3]*grid.Field) {
	psi := p.forwardPotential(rho)
	for d := 0; d < 3; d++ {
		p.spec, p.gradD = psi, d
		p.parFor(len(psi), p.gradBody)
		p.pen.InverseReal(p.comp, p.realBuf)
		p.fromPen.Run(p.realBuf, p.ownedBuf)
		acc[d].SetOwned(p.ownedBuf)
	}
	p.spec = nil
}

// SolvePotential computes the scalar potential ψ itself (diagnostics and
// force-matching; the short-range kernel fit samples PM forces instead).
func (p *Poisson) SolvePotential(rho *grid.Field, out *grid.Field) {
	psi := p.forwardPotential(rho)
	p.pen.InverseReal(psi, p.realBuf)
	p.fromPen.Run(p.realBuf, p.ownedBuf)
	out.SetOwned(p.ownedBuf)
}

// forwardPotential moves the density into x-pencils, runs the real-to-
// complex forward transform (Hermitian symmetry halves the transform and
// all k-space work on the purely real field), and applies the composed
// kernel, returning ψ̂ in the half-spectrum z-pencil layout. The returned
// slice is pencil-plan scratch: it stays valid through the gradient
// inverses, which only touch the y/x-stage buffers.
func (p *Poisson) forwardPotential(rho *grid.Field) []complex128 {
	p.ownedBuf = rho.OwnedInto(p.ownedBuf)
	p.toPen.Run(p.ownedBuf, p.realBuf)
	spec := p.pen.ForwardReal(p.realBuf)
	p.spec = spec
	p.parFor(len(spec), p.kernBody)
	return spec
}

// solveReference is the pre-plan implementation — full complex transforms,
// one-shot redistributions, per-call allocation — retained as the pinned
// equivalence oracle for the planned r2c pipeline (see spectral_test.go).
func (p *Poisson) solveReference(rho *grid.Field, acc *[3]*grid.Field) {
	owned := rho.Owned()
	moved := pfft.Redistribute(p.comm, owned, p.dec.Layout(), p.pen.LayoutX())
	data := make([]complex128, len(moved))
	for i, v := range moved {
		data[i] = complex(v, 0)
	}
	spec := p.pen.Forward(data)
	psi := make([]complex128, len(spec))
	p.pen.ForEachK(func(mx, my, mz, idx int) {
		psi[idx] = spec[idx] * complex(p.kernelAt(mx, my, mz), 0)
	})
	n := p.dec.N
	blockLay := p.dec.Layout()
	penXLay := p.pen.LayoutX()
	for d := 0; d < 3; d++ {
		comp := make([]complex128, len(psi))
		p.pen.ForEachK(func(mx, my, mz, idx int) {
			var dk float64
			switch d {
			case 0:
				dk = GradSL4(KMode(mx, n[0]))
			case 1:
				dk = GradSL4(KMode(my, n[1]))
			default:
				dk = GradSL4(KMode(mz, n[2]))
			}
			v := psi[idx]
			comp[idx] = complex(imag(v)*dk, -real(v)*dk)
		})
		rs := p.pen.Inverse(comp)
		vals := make([]float64, len(rs))
		for i, v := range rs {
			vals[i] = real(v)
		}
		back := pfft.Redistribute(p.comm, vals, penXLay, blockLay)
		acc[d].SetOwned(back)
	}
}
