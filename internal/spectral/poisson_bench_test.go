package spectral

import (
	"math"
	"math/rand"
	"testing"

	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/par"
	"hacc/internal/pfft"
)

// depositRandom deposits this rank's share of a random particle set.
func depositRandom(rho *grid.Field, dec *grid.Decomp, rank int, n [3]int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	np := n[0] * n[1] * n[2] / 4
	var xs, ys, zs []float32
	for i := 0; i < np; i++ {
		x := rng.Float64() * float64(n[0])
		y := rng.Float64() * float64(n[1])
		z := rng.Float64() * float64(n[2])
		if dec.RankOf(x, y, z) != rank {
			continue
		}
		xs = append(xs, float32(x))
		ys = append(ys, float32(y))
		zs = append(zs, float32(z))
	}
	grid.DepositCIC(rho, xs, ys, zs, 4)
}

// TestSolveMatchesReference pins the planned, pooled, real-to-complex Solve
// against the retained pre-plan implementation (full complex transforms,
// one-shot redistributions). The r2c transform reorders float summation, so
// the match is relative at 1e-12 rather than bitwise.
func TestSolveMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name    string
		ranks   int
		slab    bool
		threads int // per-rank pool size; 0 = serial
	}{
		{"serial-1rank", 1, false, 0},
		{"pooled-4rank", 4, false, 3},
		{"slab-4rank", 4, true, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := [3]int{16, 16, 16}
			err := mpi.Run(tc.ranks, func(c *mpi.Comm) {
				dec := grid.NewDecomp(n, tc.ranks)
				b := dec.Box(c.Rank())
				rho := grid.NewField(n, b, 1)
				depositRandom(rho, dec, c.Rank(), n, 12)
				ex := grid.NewExchanger(c, dec, rho)
				ex.Accumulate(rho)
				var pool *par.Pool
				if tc.threads > 0 {
					pool = par.NewPool(tc.threads) // pools are per-rank state
				}
				ps := NewPoisson(c, dec, Options{OmegaM: 0.3, Filter: true, Slab: tc.slab, Pool: pool})
				var acc, ref [3]*grid.Field
				for d := 0; d < 3; d++ {
					acc[d] = grid.NewField(n, b, 1)
					ref[d] = grid.NewField(n, b, 1)
				}
				ps.solveReference(rho, &ref)
				// Run the production path twice: the second pass reuses warm
				// plans and scratch and must reproduce the first bitwise.
				ps.Solve(rho, &acc)
				var first [3][]float64
				for d := 0; d < 3; d++ {
					first[d] = append([]float64(nil), acc[d].Data...)
				}
				ps.Solve(rho, &acc)
				for d := 0; d < 3; d++ {
					for i := range first[d] {
						if acc[d].Data[i] != first[d][i] {
							t.Errorf("rank %d comp %d: warm Solve diverged at %d", c.Rank(), d, i)
							return
						}
					}
				}
				var scale float64
				for d := 0; d < 3; d++ {
					for _, v := range ref[d].Data {
						if a := math.Abs(v); a > scale {
							scale = a
						}
					}
				}
				for d := 0; d < 3; d++ {
					for i := range ref[d].Data {
						if math.Abs(acc[d].Data[i]-ref[d].Data[i]) > 1e-12*scale {
							t.Errorf("rank %d comp %d idx %d: r2c %g != reference %g",
								c.Rank(), d, i, acc[d].Data[i], ref[d].Data[i])
							return
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSolvePotentialMatchesReference covers the scalar-potential path too.
func TestSolvePotentialMatchesReference(t *testing.T) {
	n := [3]int{12, 12, 12}
	err := mpi.Run(2, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 2)
		b := dec.Box(c.Rank())
		rho := grid.NewField(n, b, 1)
		depositRandom(rho, dec, c.Rank(), n, 4)
		ex := grid.NewExchanger(c, dec, rho)
		ex.Accumulate(rho)
		ps := NewPoisson(c, dec, Options{OmegaM: 0.3, Filter: true})
		out := grid.NewField(n, b, 1)
		ps.SolvePotential(rho, out)

		// Reference: complex forward + kernel + complex inverse.
		owned := rho.Owned()
		moved := pfft.Redistribute(c, owned, dec.Layout(), ps.pen.LayoutX())
		data := make([]complex128, len(moved))
		for i, v := range moved {
			data[i] = complex(v, 0)
		}
		spec := ps.pen.Forward(data)
		psi := make([]complex128, len(spec))
		ps.pen.ForEachK(func(mx, my, mz, idx int) {
			psi[idx] = spec[idx] * complex(ps.kernelAt(mx, my, mz), 0)
		})
		rs := ps.pen.Inverse(psi)
		vals := make([]float64, len(rs))
		for i, v := range rs {
			vals[i] = real(v)
		}
		back := pfft.Redistribute(c, vals, ps.pen.LayoutX(), dec.Layout())
		var scale float64
		for _, v := range back {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		got := out.Owned()
		for i := range back {
			if math.Abs(got[i]-back[i]) > 1e-12*scale {
				t.Errorf("rank %d idx %d: potential %g != reference %g", c.Rank(), i, got[i], back[i])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPoissonSolve is the allocation regression guard for the
// long-range path (the spectral mirror of core's BenchmarkSubCycle /
// BenchmarkGridKick): with the planned pipeline, steady-state Solve
// allocates only the per-dispatch pool closures.
func BenchmarkPoissonSolve(b *testing.B) {
	n := [3]int{32, 32, 32}
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 1)
		box := dec.Box(0)
		rho := grid.NewField(n, box, 1)
		depositRandom(rho, dec, 0, n, 3)
		ps := NewPoisson(c, dec, Options{OmegaM: 0.3, Filter: true, Pool: par.NewPool(2)})
		var acc [3]*grid.Field
		for d := 0; d < 3; d++ {
			acc[d] = grid.NewField(n, box, 1)
		}
		ps.Solve(rho, &acc) // warm plans and scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps.Solve(rho, &acc)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPoissonSolveReference measures the retained pre-plan path, so
// `benchstat` (or eyeballing allocs/op) quantifies what planning buys.
func BenchmarkPoissonSolveReference(b *testing.B) {
	n := [3]int{32, 32, 32}
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 1)
		box := dec.Box(0)
		rho := grid.NewField(n, box, 1)
		depositRandom(rho, dec, 0, n, 3)
		ps := NewPoisson(c, dec, Options{OmegaM: 0.3, Filter: true})
		var acc [3]*grid.Field
		for d := 0; d < 3; d++ {
			acc[d] = grid.NewField(n, box, 1)
		}
		ps.solveReference(rho, &acc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps.solveReference(rho, &acc)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}
