// Package fault is a deterministic, seedable fault injector for the
// simulation's resilience machinery (PR 6). Production HACC campaigns
// treated node failure as routine (arXiv:1210.3317's checkpoint cadence;
// the BG/Q campaigns of arXiv:1410.2805); reproducing that posture needs a
// way to manufacture the failures on demand, identically on every run.
//
// The framework layers expose named injection points — message send/recv,
// collective entry, container write/read/fsync, and the top of every
// simulation step — each a single call into the armed Injector. A plan is a
// parseable rule list:
//
//	kill rank 2 at step 3; fail every 5th fsync
//
// with verbs kill (panic as a simulated rank death), hang (park the
// goroutine until Interrupt/Disarm), fail (injected I/O error), torn
// (half-written chunk then error), drop (silently lose a message), and
// delay (sleep). Rules select by rank and step and pace themselves with
// every/after/once/prob; probabilistic rules draw from a SplitMix64 stream
// seeded by the plan, so a seeded chaos test replays exactly.
//
// Arming is process-global (ranks are goroutines in one process):
// fault.Arm(fault.MustParse(...)) installs a plan, fault.Disarm() removes
// it, and fault.Interrupt() releases hang-parked goroutines during
// supervised teardown while keeping the plan armed. The entire cost on an
// un-faulted hot path is one atomic pointer load per hook site — no
// allocation, no lock — so the framework stays wired into production code
// paths permanently, and the allocation pins of the compute kernels hold
// with the hooks in place.
package fault
