package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Named injection points. Each hook site in the framework identifies itself
// with one of these when it asks the armed injector whether to misbehave.
const (
	// PointSend fires in the comm layer before a point-to-point message is
	// delivered (including the sends inside collectives).
	PointSend = "send"
	// PointRecv fires before a blocking receive or request wait parks.
	PointRecv = "recv"
	// PointCollective fires on entry to a collective operation.
	PointCollective = "collective"
	// PointWrite fires per chunk inside the container write paths.
	PointWrite = "write"
	// PointRead fires when a container is opened or a block is read.
	PointRead = "read"
	// PointFsync fires on every file or directory sync in the I/O layer.
	PointFsync = "fsync"
	// PointStep fires at the top of every full simulation step; the step
	// index is reported, so plans can target "rank 2 at step 3".
	PointStep = "step"
)

// Verb is what a matched rule does to the hook site.
type Verb int

// Rule verbs. Kill panics with a *Crash (a simulated rank death); Hang
// parks the goroutine until Interrupt or Disarm releases it (a simulated
// wedged rank); Fail makes an I/O or step site return an injected error;
// Drop silently discards a message at the send site; Torn makes a write
// site write only part of its chunk before failing; Delay sleeps, then
// lets the operation proceed.
const (
	Kill Verb = iota
	Hang
	Fail
	Drop
	Torn
	Delay
)

func (v Verb) String() string {
	switch v {
	case Kill:
		return "kill"
	case Hang:
		return "hang"
	case Fail:
		return "fail"
	case Drop:
		return "drop"
	case Torn:
		return "torn"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("verb(%d)", int(v))
}

// Outcome is what a hook site must do after a Hit.
type Outcome int

// Hit outcomes. None means proceed normally (Kill panics and Hang blocks
// inside Hit, so neither has an outcome; Delay returns None after
// sleeping). Failed and TornWrite instruct I/O sites to error out; Dropped
// instructs the send site to discard the message.
const (
	None Outcome = iota
	Failed
	Dropped
	TornWrite
)

// Rule is one parsed fault rule: fire Verb at Point, restricted by the
// optional rank/step selectors and paced by the event selectors.
type Rule struct {
	Verb  Verb
	Point string
	Rank  int           // world rank to match; -1 matches any
	Step  int           // step index to match (PointStep only); -1 matches any
	Every int           // fire on every Every-th matching event (1 = every match)
	After int           // skip the first After matching events
	Count int           // fire at most Count times; 0 = unlimited
	Prob  float64       // fire with this probability (0 or 1 = always)
	Delay time.Duration // sleep duration for the Delay verb

	hits  int // matching events seen (guarded by the injector mutex)
	fired int // times this rule fired
}

// matches reports whether an event at (point, rank, step) selects the rule.
func (r *Rule) matches(point string, rank, step int) bool {
	if r.Point != point {
		return false
	}
	if r.Rank >= 0 && rank >= 0 && r.Rank != rank {
		return false
	}
	if r.Rank >= 0 && rank < 0 {
		// The site does not know its rank; a rank-restricted rule never
		// fires there rather than firing for everyone.
		return false
	}
	if r.Step >= 0 && r.Step != step {
		return false
	}
	return true
}

// Plan is a parsed fault plan: an ordered rule list plus the seed that
// makes probabilistic rules deterministic.
type Plan struct {
	Rules []Rule
	Seed  uint64
}

// Event records one fired rule, for test assertions and incident reports.
type Event struct {
	Point string
	Rank  int
	Step  int
	Verb  Verb
	Rule  int // index into the armed plan's rules
}

func (e Event) String() string {
	return fmt.Sprintf("%s@%s rank=%d step=%d (rule %d)", e.Verb, e.Point, e.Rank, e.Step, e.Rule)
}

// maxEvents bounds the fired-event log so an unlimited drop-every-send
// rule cannot grow it without bound; later events are counted, not stored.
const maxEvents = 4096

// Injector is an armed fault plan. Hook sites reach it through Armed (one
// atomic pointer load, nil when no plan is armed — the entire cost of the
// framework on an un-faulted run); all rule state is guarded by one mutex,
// taken only when a plan is armed.
type Injector struct {
	mu      sync.Mutex
	rules   []Rule
	seed    uint64
	rng     uint64 // SplitMix64 state for probabilistic rules
	stop    chan struct{}
	events  []Event
	dropped int // events not stored because the log was full
}

// armed is the process-global injector; ranks are goroutines in one
// process, so one armed plan covers the whole world. Arming is not
// per-world: tests that arm a plan must not run in parallel with other
// fault tests.
var armed atomic.Pointer[Injector]

// Arm parses nothing: it installs an already-parsed plan as the process
// injector and returns it. Any previously armed plan is replaced (its
// hanging hooks are released). The typical sequence is
// fault.Arm(fault.MustParse("kill rank 2 at step 3")) before a run and
// defer fault.Disarm().
func Arm(p *Plan) *Injector {
	inj := &Injector{
		rules: append([]Rule(nil), p.Rules...),
		seed:  p.Seed,
		rng:   p.Seed ^ 0x9e3779b97f4a7c15,
		stop:  make(chan struct{}),
	}
	if old := armed.Swap(inj); old != nil {
		old.release(false)
	}
	return inj
}

// ArmSpec parses spec and arms it; a convenience for CLI flags.
func ArmSpec(spec string, seed uint64) (*Injector, error) {
	p, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	p.Seed = seed
	return Arm(p), nil
}

// Armed returns the armed injector, or nil. This is the only call on the
// un-faulted hot path: one atomic load and a nil check, no allocation.
func Armed() *Injector { return armed.Load() }

// Disarm removes the armed plan and releases every goroutine a Hang rule
// parked. Safe to call when nothing is armed.
func Disarm() {
	if inj := armed.Swap(nil); inj != nil {
		inj.release(false)
	}
}

// Interrupt releases every goroutine currently parked by a Hang rule but
// keeps the plan armed (with a fresh hang latch). Supervisors call it
// during teardown so a hung rank drains instead of leaking, while
// still-unfired rules stay live for the next attempt. Safe when nothing is
// armed.
func Interrupt() {
	if inj := armed.Load(); inj != nil {
		inj.release(true)
	}
}

// release closes the hang latch, optionally renewing it.
func (i *Injector) release(renew bool) {
	i.mu.Lock()
	select {
	case <-i.stop:
	default:
		close(i.stop)
	}
	if renew {
		i.stop = make(chan struct{})
	}
	i.mu.Unlock()
}

// splitmix64 advances the deterministic RNG (caller holds i.mu).
func (i *Injector) splitmix64() uint64 {
	i.rng += 0x9e3779b97f4a7c15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hit reports an event at a named injection point and applies the first
// rule that elects to fire. Kill panics with a *Crash and Hang parks the
// calling goroutine inside Hit; Delay sleeps and then returns None; the
// remaining verbs return their outcome for the site to act on. rank and
// step may be -1 when the site does not know them.
func (i *Injector) Hit(point string, rank, step int) Outcome {
	i.mu.Lock()
	var act *Rule
	actIdx := -1
	for ri := range i.rules {
		r := &i.rules[ri]
		if !r.matches(point, rank, step) {
			continue
		}
		r.hits++
		if act != nil {
			continue // an earlier rule already fired on this event
		}
		if r.hits <= r.After {
			continue
		}
		if r.Every > 1 && (r.hits-r.After)%r.Every != 0 {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			if float64(i.splitmix64()>>11)/(1<<53) >= r.Prob {
				continue
			}
		}
		r.fired++
		act, actIdx = r, ri
	}
	if act == nil {
		i.mu.Unlock()
		return None
	}
	if len(i.events) < maxEvents {
		i.events = append(i.events, Event{Point: point, Rank: rank, Step: step, Verb: act.Verb, Rule: actIdx})
	} else {
		i.dropped++
	}
	verb, delay, stop := act.Verb, act.Delay, i.stop
	i.mu.Unlock()

	switch verb {
	case Kill:
		panic(&Crash{Rank: rank, Point: point, Step: step})
	case Hang:
		<-stop
		return None
	case Delay:
		time.Sleep(delay)
		return None
	case Fail:
		return Failed
	case Drop:
		return Dropped
	case Torn:
		return TornWrite
	}
	return None
}

// HitErr is Hit for sites that surface faults as errors: Failed and
// TornWrite become a *InjectedError (with Torn set for the latter), every
// other outcome is nil.
func (i *Injector) HitErr(point string, rank, step int) error {
	switch i.Hit(point, rank, step) {
	case Failed:
		return &InjectedError{Point: point, Rank: rank}
	case TornWrite:
		return &InjectedError{Point: point, Rank: rank, Torn: true}
	}
	return nil
}

// Events returns a copy of the fired-event log.
func (i *Injector) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// Fired returns how many times rules fired at the named point.
func (i *Injector) Fired(point string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	count := 0
	for _, e := range i.events {
		if e.Point == point {
			count++
		}
	}
	return count
}

// Crash is the panic value of an injected Kill: a simulated rank death.
// It implements error, so mpi.Run's recovery wraps it and supervisors can
// identify injected crashes with errors.As.
type Crash struct {
	Rank  int
	Point string
	Step  int
}

func (c *Crash) Error() string {
	if c.Step >= 0 {
		return fmt.Sprintf("fault: injected kill of rank %d at step %d (point %s)", c.Rank, c.Step, c.Point)
	}
	return fmt.Sprintf("fault: injected kill of rank %d (point %s)", c.Rank, c.Point)
}

// InjectedError is the error an I/O or step site returns for a Fail or
// Torn outcome.
type InjectedError struct {
	Point string
	Rank  int // -1 when the site does not know its rank
	Torn  bool
}

func (e *InjectedError) Error() string {
	kind := "failure"
	if e.Torn {
		kind = "torn write"
	}
	if e.Rank >= 0 {
		return fmt.Sprintf("fault: injected %s %s on rank %d", e.Point, kind, e.Rank)
	}
	return fmt.Sprintf("fault: injected %s %s", e.Point, kind)
}
