package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse compiles a textual fault plan into rules. A plan is a
// semicolon-separated rule list; each rule is a verb followed by
// selectors, in natural-language order:
//
//	kill rank 2 at step 3
//	hang rank 1 at step 2
//	fail every 5th fsync
//	torn write on rank 1 once
//	drop sends on rank 0 after 10
//	delay 5ms recv on rank 2 every 3rd
//	fail read twice; fail write prob 0.5
//
// Verbs: kill, hang, fail, drop, torn, delay <duration>.
// Points: step, send, recv, collective, write, read, fsync (plural and
// "receive"/"sync" spellings accepted). kill and hang default to the step
// point and to firing once; every other verb fires on every match unless
// paced with "every Nth", "after N", "once"/"twice"/"N times", or
// "prob P". "rank N" restricts to one world rank; "at step N" restricts to
// one step index (0-based, the step about to execute) and is only legal on
// the step point. Noise words ("on", "at", "the", "of") are ignored.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("fault: empty plan %q", spec)
	}
	return p, nil
}

// MustParse is Parse for compile-time-constant plans in tests and
// examples; it panics on a malformed spec.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// pointWords maps accepted point spellings to canonical point names.
var pointWords = map[string]string{
	"step": PointStep, "steps": PointStep,
	"send": PointSend, "sends": PointSend,
	"recv": PointRecv, "recvs": PointRecv, "receive": PointRecv, "receives": PointRecv,
	"collective": PointCollective, "collectives": PointCollective,
	"write": PointWrite, "writes": PointWrite,
	"read": PointRead, "reads": PointRead,
	"fsync": PointFsync, "fsyncs": PointFsync, "sync": PointFsync, "syncs": PointFsync,
}

func parseRule(s string) (Rule, error) {
	r := Rule{Rank: -1, Step: -1, Every: 1}
	toks := strings.Fields(strings.ToLower(strings.ReplaceAll(s, ",", " ")))
	i := 0
	next := func(what string) (string, error) {
		if i >= len(toks) {
			return "", fmt.Errorf("missing %s", what)
		}
		t := toks[i]
		i++
		return t, nil
	}
	nextInt := func(what string) (int, error) {
		t, err := next(what)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(t)
		if err != nil {
			return 0, fmt.Errorf("%s: %q is not an integer", what, t)
		}
		return n, nil
	}

	verb, err := next("verb")
	if err != nil {
		return r, err
	}
	switch verb {
	case "kill":
		r.Verb = Kill
	case "hang":
		r.Verb = Hang
	case "fail":
		r.Verb = Fail
	case "drop":
		r.Verb = Drop
	case "torn":
		r.Verb = Torn
	case "delay":
		r.Verb = Delay
		t, err := next("delay duration")
		if err != nil {
			return r, err
		}
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			return r, fmt.Errorf("bad delay duration %q", t)
		}
		r.Delay = d
	default:
		return r, fmt.Errorf("unknown verb %q (want kill|hang|fail|drop|torn|delay)", verb)
	}

	for i < len(toks) {
		t := toks[i]
		i++
		if pt, ok := pointWords[t]; ok {
			// Bare point word — but "step N" is a step selector, not a
			// point, when followed by an integer.
			if pt == PointStep && i < len(toks) {
				if n, err := strconv.Atoi(toks[i]); err == nil {
					if n < 0 {
						return r, fmt.Errorf("step %d must be ≥0", n)
					}
					r.Step = n
					i++
					continue
				}
			}
			if r.Point != "" && r.Point != pt {
				return r, fmt.Errorf("conflicting points %q and %q", r.Point, pt)
			}
			r.Point = pt
			continue
		}
		switch t {
		case "on", "at", "the", "a", "an", "of":
			// noise
		case "rank":
			n, err := nextInt("rank")
			if err != nil {
				return r, err
			}
			if n < 0 {
				return r, fmt.Errorf("rank %d must be ≥0", n)
			}
			r.Rank = n
		case "every":
			t, err := next("every count")
			if err != nil {
				return r, err
			}
			n, err := strconv.Atoi(strings.TrimRight(t, "stndrh")) // 5th, 2nd, 3rd, 1st
			if err != nil || n < 1 {
				return r, fmt.Errorf("bad every count %q", t)
			}
			r.Every = n
		case "after":
			n, err := nextInt("after count")
			if err != nil {
				return r, err
			}
			if n < 0 {
				return r, fmt.Errorf("after %d must be ≥0", n)
			}
			r.After = n
		case "once":
			r.Count = 1
		case "twice":
			r.Count = 2
		case "times":
			n, err := nextInt("times count")
			if err != nil {
				return r, err
			}
			if n < 1 {
				return r, fmt.Errorf("times %d must be ≥1", n)
			}
			r.Count = n
		case "prob":
			t, err := next("probability")
			if err != nil {
				return r, err
			}
			p, err := strconv.ParseFloat(t, 64)
			if err != nil || p <= 0 || p > 1 {
				return r, fmt.Errorf("bad probability %q (want (0,1])", t)
			}
			r.Prob = p
		default:
			// "3 times" with the count first.
			if n, aerr := strconv.Atoi(t); aerr == nil && i < len(toks) && toks[i] == "times" {
				if n < 1 {
					return r, fmt.Errorf("times %d must be ≥1", n)
				}
				r.Count = n
				i++
				continue
			}
			return r, fmt.Errorf("unknown token %q", t)
		}
	}

	// Defaults and structural validation.
	if r.Point == "" {
		if r.Verb == Kill || r.Verb == Hang {
			r.Point = PointStep
		} else {
			return r, fmt.Errorf("needs an injection point (step|send|recv|collective|write|read|fsync)")
		}
	}
	if (r.Verb == Kill || r.Verb == Hang) && r.Count == 0 {
		r.Count = 1 // a rank dies or wedges once; retries run clean
	}
	if r.Step >= 0 && r.Point != PointStep {
		return r, fmt.Errorf("\"at step N\" is only legal on the step point, not %q", r.Point)
	}
	switch r.Verb {
	case Fail:
		switch r.Point {
		case PointWrite, PointRead, PointFsync, PointStep:
		default:
			return r, fmt.Errorf("fail needs an I/O or step point, not %q", r.Point)
		}
	case Torn:
		if r.Point != PointWrite {
			return r, fmt.Errorf("torn needs the write point, not %q", r.Point)
		}
	case Drop:
		if r.Point != PointSend {
			return r, fmt.Errorf("drop needs the send point, not %q", r.Point)
		}
	}
	return r, nil
}

// String renders the plan back into parseable rule syntax.
func (p *Plan) String() string {
	var b strings.Builder
	for ri, r := range p.Rules {
		if ri > 0 {
			b.WriteString("; ")
		}
		b.WriteString(r.Verb.String())
		if r.Verb == Delay {
			fmt.Fprintf(&b, " %v", r.Delay)
		}
		b.WriteString(" " + r.Point)
		if r.Rank >= 0 {
			fmt.Fprintf(&b, " rank %d", r.Rank)
		}
		if r.Step >= 0 {
			fmt.Fprintf(&b, " at step %d", r.Step)
		}
		if r.Every > 1 {
			fmt.Fprintf(&b, " every %dth", r.Every)
		}
		if r.After > 0 {
			fmt.Fprintf(&b, " after %d", r.After)
		}
		if r.Count > 0 {
			fmt.Fprintf(&b, " times %d", r.Count)
		}
		if r.Prob > 0 && r.Prob < 1 {
			fmt.Fprintf(&b, " prob %g", r.Prob)
		}
	}
	return b.String()
}
