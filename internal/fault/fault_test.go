package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParsePlans(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"kill rank 2 at step 3", Rule{Verb: Kill, Point: PointStep, Rank: 2, Step: 3, Every: 1, Count: 1}},
		{"hang rank 1 at step 2", Rule{Verb: Hang, Point: PointStep, Rank: 1, Step: 2, Every: 1, Count: 1}},
		{"kill rank 0", Rule{Verb: Kill, Point: PointStep, Rank: 0, Step: -1, Every: 1, Count: 1}},
		{"fail every 5th fsync", Rule{Verb: Fail, Point: PointFsync, Rank: -1, Step: -1, Every: 5}},
		{"torn write on rank 1 once", Rule{Verb: Torn, Point: PointWrite, Rank: 1, Step: -1, Every: 1, Count: 1}},
		{"drop sends on rank 0 after 10", Rule{Verb: Drop, Point: PointSend, Rank: 0, Step: -1, Every: 1, After: 10}},
		{"fail read twice", Rule{Verb: Fail, Point: PointRead, Rank: -1, Step: -1, Every: 1, Count: 2}},
		{"fail write prob 0.5", Rule{Verb: Fail, Point: PointWrite, Rank: -1, Step: -1, Every: 1, Prob: 0.5}},
		{"fail write 3 times", Rule{Verb: Fail, Point: PointWrite, Rank: -1, Step: -1, Every: 1, Count: 3}},
		{"delay 5ms recv on rank 2 every 3rd", Rule{Verb: Delay, Point: PointRecv, Rank: 2, Step: -1, Every: 3, Delay: 5 * time.Millisecond}},
		{"hang collective on rank 1", Rule{Verb: Hang, Point: PointCollective, Rank: 1, Step: -1, Every: 1, Count: 1}},
	}
	for _, tc := range cases {
		p, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if len(p.Rules) != 1 {
			t.Errorf("Parse(%q): %d rules, want 1", tc.spec, len(p.Rules))
			continue
		}
		if p.Rules[0] != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.spec, p.Rules[0], tc.want)
		}
	}
}

func TestParseMultiRule(t *testing.T) {
	p, err := Parse("kill rank 2 at step 3; fail every 5th fsync")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(p.Rules))
	}
	if p.Rules[0].Verb != Kill || p.Rules[1].Verb != Fail {
		t.Fatalf("rule verbs %v, %v", p.Rules[0].Verb, p.Rules[1].Verb)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"explode rank 1",
		"fail",                 // no point
		"fail send",            // fail needs I/O or step point
		"torn read",            // torn needs write
		"drop recv",            // drop needs send
		"fail write at step 2", // step selector needs the step point
		"kill rank -1",         // negative rank
		"fail write prob 1.5",  // probability out of range
		"delay write",          // delay needs a duration
		"fail write send",      // conflicting points
		"kill rank 1 bananas",  // unknown token
		"fail every 0th fsync", // every < 1
		"fail write times 0",   // times < 1
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	spec := "kill step rank 2 at step 3; fail fsync every 5th; delay 5ms recv rank 1"
	p := MustParse(spec)
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, p.Rules[i], p2.Rules[i])
		}
	}
}

func TestArmedNilWhenDisarmed(t *testing.T) {
	Disarm()
	if Armed() != nil {
		t.Fatal("Armed() != nil with no plan armed")
	}
	// Interrupt and Disarm are safe with nothing armed.
	Interrupt()
	Disarm()
}

func TestKillFiresOnceAtSelectedSite(t *testing.T) {
	inj := Arm(MustParse("kill rank 2 at step 3"))
	defer Disarm()

	// Wrong rank, wrong step: no fire.
	if got := inj.Hit(PointStep, 1, 3); got != None {
		t.Fatalf("wrong rank fired: %v", got)
	}
	if got := inj.Hit(PointStep, 2, 2); got != None {
		t.Fatalf("wrong step fired: %v", got)
	}
	// Selected site: panics with *Crash.
	func() {
		defer func() {
			p := recover()
			c, ok := p.(*Crash)
			if !ok {
				t.Fatalf("panic value %T, want *Crash", p)
			}
			if c.Rank != 2 || c.Step != 3 {
				t.Fatalf("Crash{Rank:%d Step:%d}, want 2/3", c.Rank, c.Step)
			}
			var err error = c
			if !strings.Contains(err.Error(), "rank 2") {
				t.Fatalf("Crash error %q", err)
			}
		}()
		inj.Hit(PointStep, 2, 3)
		t.Fatal("kill did not fire")
	}()
	// Count=1: consumed — the retried attempt passes the same site.
	if got := inj.Hit(PointStep, 2, 3); got != None {
		t.Fatalf("kill fired twice: %v", got)
	}
	if n := inj.Fired(PointStep); n != 1 {
		t.Fatalf("Fired(step) = %d, want 1", n)
	}
}

func TestEveryAfterPacing(t *testing.T) {
	inj := Arm(MustParse("fail fsync every 3rd after 2"))
	defer Disarm()
	var fired []int
	for i := 1; i <= 12; i++ {
		if inj.Hit(PointFsync, -1, -1) == Failed {
			fired = append(fired, i)
		}
	}
	// hits 1,2 skipped by after; then every 3rd of the remainder: 5, 8, 11.
	want := []int{5, 8, 11}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestProbDeterministicAcrossRearm(t *testing.T) {
	run := func(seed uint64) []bool {
		p := MustParse("drop send prob 0.5")
		p.Seed = seed
		inj := Arm(p)
		defer Disarm()
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Hit(PointSend, 0, -1) == Dropped
		}
		return out
	}
	a, b := run(7), run(7)
	c := run(8)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different drop sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical drop sequences (suspicious)")
	}
}

func TestHangReleasedByInterrupt(t *testing.T) {
	inj := Arm(MustParse("hang rank 1 at step 0"))
	defer Disarm()
	released := make(chan struct{})
	go func() {
		inj.Hit(PointStep, 1, 0) // parks
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("hang did not park")
	case <-time.After(50 * time.Millisecond):
	}
	Interrupt()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Interrupt did not release the hung goroutine")
	}
	// The plan stays armed after Interrupt (with the hang consumed).
	if Armed() == nil {
		t.Fatal("Interrupt disarmed the plan")
	}
}

func TestHitErrAndInjectedError(t *testing.T) {
	inj := Arm(MustParse("torn write rank 0 once; fail read once"))
	defer Disarm()
	err := inj.HitErr(PointWrite, 0, -1)
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Torn {
		t.Fatalf("torn write HitErr = %v", err)
	}
	err = inj.HitErr(PointRead, -1, -1)
	if !errors.As(err, &ie) || ie.Torn {
		t.Fatalf("fail read HitErr = %v", err)
	}
	if err := inj.HitErr(PointRead, -1, -1); err != nil {
		t.Fatalf("consumed rule re-fired: %v", err)
	}
}

func TestRankRestrictedRuleNeverFiresAtAnonymousSite(t *testing.T) {
	inj := Arm(MustParse("fail read rank 1"))
	defer Disarm()
	// Reader sites do not know their rank (-1); a rank-restricted rule must
	// not fire for everyone there.
	for i := 0; i < 8; i++ {
		if err := inj.HitErr(PointRead, -1, -1); err != nil {
			t.Fatalf("rank-restricted rule fired at rank-unknown site: %v", err)
		}
	}
}

func TestEventsLog(t *testing.T) {
	inj := Arm(MustParse("fail fsync twice"))
	defer Disarm()
	inj.Hit(PointFsync, 3, -1)
	inj.Hit(PointFsync, 4, -1)
	inj.Hit(PointFsync, 5, -1) // count exhausted
	ev := inj.Events()
	if len(ev) != 2 {
		t.Fatalf("%d events, want 2", len(ev))
	}
	if ev[0].Rank != 3 || ev[1].Rank != 4 || ev[0].Verb != Fail {
		t.Fatalf("events %v", ev)
	}
	if !strings.Contains(ev[0].String(), "fsync") {
		t.Fatalf("event string %q", ev[0])
	}
}

func TestConcurrentHitsRace(t *testing.T) {
	inj := Arm(MustParse("fail fsync every 7th; drop send prob 0.3"))
	defer Disarm()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inj.Hit(PointFsync, rank, -1)
				inj.Hit(PointSend, rank, -1)
				inj.HitErr(PointRead, -1, -1)
			}
		}(g)
	}
	wg.Wait()
	if n := inj.Fired(PointFsync); n == 0 {
		t.Fatal("no fsync rule fired across 1600 hits")
	}
}
