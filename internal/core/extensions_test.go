package core

import (
	"math"
	"testing"

	"hacc/internal/cosmology"
	"hacc/internal/mpi"
)

// TestMultiTreeMatchesSingleTree verifies the §VI multi-tree configuration
// produces the same physics as the single-tree default.
func TestMultiTreeMatchesSingleTree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	run := func(nTrees int) []float64 {
		cfg := baseConfig()
		cfg.Solver = PPTreePM
		cfg.Steps = 2
		cfg.NTrees = nTrees
		var out []float64
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Run(nil); err != nil {
				t.Error(err)
				return
			}
			ps := s.PowerSpectrum(8, false)
			if c.Rank() == 0 {
				out = ps.P
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	single := run(1)
	multi := run(4)
	for i := range single {
		rel := math.Abs(single[i]-multi[i]) / math.Abs(single[i])
		if rel > 1e-3 {
			t.Errorf("bin %d: single %g multi %g (%.2e)", i, single[i], multi[i], rel)
		}
	}
}

// TestThreadedCICMatchesSerial verifies the §VI threaded deposit leaves the
// physics unchanged.
func TestThreadedCICMatchesSerial(t *testing.T) {
	run := func(threaded bool) []float64 {
		cfg := baseConfig()
		cfg.Solver = PMOnly
		cfg.Steps = 2
		cfg.ThreadedCIC = threaded
		cfg.Threads = 4
		var out []float64
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Run(nil); err != nil {
				t.Error(err)
				return
			}
			ps := s.PowerSpectrum(8, false)
			if c.Rank() == 0 {
				out = ps.P
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(false)
	threaded := run(true)
	for i := range serial {
		rel := math.Abs(serial[i]-threaded[i]) / math.Abs(serial[i])
		if rel > 1e-5 {
			t.Errorf("bin %d: serial %g threaded %g", i, serial[i], threaded[i])
		}
	}
}

// TestDarkEnergyModelSpace runs the same realization under ΛCDM, a
// quintessence model, and a CPL model — the paper's §V science program —
// and checks the measured growth ordering matches linear theory.
func TestDarkEnergyModelSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	growthOf := func(w, wa float64) (measured, linear float64) {
		cfg := baseConfig()
		cfg.Solver = PPTreePM
		cfg.ZInit = 24
		cfg.ZFinal = 4
		cfg.Steps = 5
		cfg.Cosmo = cosmology.Default()
		cfg.Cosmo.W = w
		cfg.Cosmo.WA = wa
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			p0 := s.PowerSpectrum(8, false)
			a0 := s.A
			if err := s.Run(nil); err != nil {
				t.Error(err)
				return
			}
			p1 := s.PowerSpectrum(8, false)
			if c.Rank() != 0 {
				return
			}
			// Growth from the lowest well-sampled bin.
			for i := range p0.K {
				if p0.NModes[i] >= 20 && p0.K[i] < 0.1 {
					measured = math.Sqrt(p1.P[i] / p0.P[i])
					break
				}
			}
			linear = s.LP.Gfac.D(s.A) / s.LP.Gfac.D(a0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	mL, lL := growthOf(-1, 0)
	mQ, lQ := growthOf(-0.5, 0)
	mC, lC := growthOf(-0.9, 0.4)
	for _, pair := range [][2]float64{{mL, lL}, {mQ, lQ}, {mC, lC}} {
		if math.Abs(pair[0]-pair[1]) > 0.06*pair[1] {
			t.Errorf("measured growth %g vs linear %g", pair[0], pair[1])
		}
	}
	// At z=4 all these models are matter dominated, so growth differences
	// are small — but the linear ordering must be preserved by the sim
	// within measurement error.
	t.Logf("growth z=24→4: ΛCDM %.4f (lin %.4f), w=-0.5 %.4f (lin %.4f), CPL %.4f (lin %.4f)",
		mL, lL, mQ, lQ, mC, lC)
}
