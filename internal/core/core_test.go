package core

import (
	"math"
	"testing"

	"hacc/internal/analysis"
	"hacc/internal/cosmology"
	"hacc/internal/mpi"
)

func baseConfig() Config {
	return Config{
		NGrid:      32,
		NParticles: 32,
		BoxMpc:     500,
		ZInit:      24,
		ZFinal:     9,
		Steps:      4,
		SubCycles:  2,
		Seed:       12345,
		FixedAmp:   true,
		Solver:     PMOnly,
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	c := baseConfig().WithDefaults()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.RCut != 3.0 || c.Overload != 4.0 || c.SubCycles != 2 {
		t.Errorf("defaults wrong: %+v", c)
	}
	bad := baseConfig()
	bad.ZInit, bad.ZFinal = 1, 5
	if bad.WithDefaults().Validate() == nil {
		t.Error("accepted ZInit < ZFinal")
	}
	bad = baseConfig()
	bad.Transfer = "nonsense"
	if bad.WithDefaults().Validate() == nil {
		t.Error("accepted unknown transfer")
	}
}

func TestZeldovichGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	// End-to-end validation of the force normalization and the SKS
	// integrator: in the linear regime the measured P(k) must grow by
	// D²(a₂)/D²(a₁) between the initial and final redshift. This requires
	// the FULL solver: the filtered PM force alone under-pulls at k within
	// a decade of the Nyquist frequency by design, and the fitted
	// short-range kernel restores it (paper §II force matching).
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		p0 := s.PowerSpectrum(10, false)
		a0 := s.A
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		p1 := s.PowerSpectrum(10, false)
		if c.Rank() != 0 {
			return
		}
		g := s.LP.Gfac
		want := math.Pow(g.D(s.A)/g.D(a0), 2)
		checked := 0
		for i, k := range p0.K {
			if k > 0.1 || p0.NModes[i] < 20 {
				continue // stay well inside the linear, well-sampled regime
			}
			got := p1.P[i] / p0.P[i]
			if math.Abs(got-want) > 0.08*want {
				t.Errorf("k=%.3f: growth %g want %g (%.1f%% off)",
					k, got, want, 100*(got-want)/want)
			}
			checked++
		}
		if checked < 3 {
			t.Errorf("only %d bins checked", checked)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMomentumConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	cfg.Steps = 2
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mom := func() [3]float64 {
			var p [3]float64
			for i := 0; i < s.Dom.Active.Len(); i++ {
				p[0] += float64(s.Dom.Active.Vx[i])
				p[1] += float64(s.Dom.Active.Vy[i])
				p[2] += float64(s.Dom.Active.Vz[i])
			}
			tot := mpi.AllReduce(c, p[:], mpi.SumF64)
			return [3]float64{tot[0], tot[1], tot[2]}
		}
		before := mom()
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		after := mom()
		// Scale: typical |p| per particle times particle count.
		var scale float64
		for i := 0; i < s.Dom.Active.Len(); i++ {
			scale += math.Abs(float64(s.Dom.Active.Vx[i]))
		}
		tot := mpi.AllReduce(c, []float64{scale}, mpi.SumF64)
		if c.Rank() != 0 {
			return
		}
		for d := 0; d < 3; d++ {
			drift := math.Abs(after[d] - before[d])
			if drift > 1e-3*tot[0] {
				t.Errorf("momentum drift in component %d: %g (scale %g)", d, drift, tot[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParticleConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	cfg.Steps = 3
	cfg.ZFinal = 5
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		want := int64(32 * 32 * 32)
		if got := s.Dom.NGlobal(); got != want {
			t.Errorf("initial particles %d want %d", got, want)
		}
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		if got := s.Dom.NGlobal(); got != want {
			t.Errorf("final particles %d want %d", got, want)
		}
		if s.SubstepsDone != int64(cfg.Steps*cfg.SubCycles) {
			t.Errorf("substeps %d want %d", s.SubstepsDone, cfg.Steps*cfg.SubCycles)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolverAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	// Paper §II: the P3M and PPTreePM configurations agree to ~0.1% on the
	// nonlinear power spectrum. Our two backends share the force kernel, so
	// their spectra should agree even more tightly.
	run := func(kind SolverKind) *analysis.PowerSpectrum {
		cfg := baseConfig()
		cfg.Solver = kind
		cfg.ZInit = 24
		cfg.ZFinal = 4
		cfg.Steps = 4
		var ps *analysis.PowerSpectrum
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Run(nil); err != nil {
				t.Error(err)
				return
			}
			out := s.PowerSpectrum(12, false)
			if c.Rank() == 0 {
				ps = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	pt := run(PPTreePM)
	pp := run(P3M)
	for i := range pt.K {
		rel := math.Abs(pt.P[i]-pp.P[i]) / pt.P[i]
		if rel > 0.002 {
			t.Errorf("k=%.3f: tree %g vs p3m %g (%.3f%%)", pt.K[i], pt.P[i], pp.P[i], 100*rel)
		}
	}
}

func TestRankCountIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	// Two steps on 1 vs 8 ranks must give closely matching spectra (exact
	// equality is impossible: float32 summation order differs).
	run := func(procs int) *analysis.PowerSpectrum {
		cfg := baseConfig()
		cfg.Solver = PPTreePM
		cfg.Steps = 2
		var ps *analysis.PowerSpectrum
		err := mpi.Run(procs, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Run(nil); err != nil {
				t.Error(err)
				return
			}
			out := s.PowerSpectrum(10, false)
			if c.Rank() == 0 {
				ps = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	p1 := run(1)
	p8 := run(8)
	for i := range p1.K {
		rel := math.Abs(p1.P[i]-p8.P[i]) / p1.P[i]
		if rel > 0.01 {
			t.Errorf("k=%.3f: 1-rank %g vs 8-rank %g (%.2f%%)", p1.K[i], p1.P[i], p8.P[i], 100*rel)
		}
	}
}

func TestNonlinearGrowthExceedsLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	// Fig. 10's qualitative content: at high k the measured spectrum grows
	// beyond the linear prediction once clustering develops.
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	cfg.BoxMpc = 120 // smaller box → nonlinear scales resolved
	cfg.ZInit = 24
	cfg.ZFinal = 0.5
	cfg.Steps = 12
	cfg.SubCycles = 3
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		ps := s.PowerSpectrum(12, true)
		stats := s.DensityStats()
		if c.Rank() != 0 {
			return
		}
		if stats.Max < 10 {
			t.Errorf("density contrast max %g: clustering did not develop", stats.Max)
		}
		d := s.LP.Gfac.D(s.A)
		// Highest usable bins: nonlinear boost.
		var boosted bool
		for i, k := range ps.K {
			if k < 0.4 || k > 0.7*math.Pi*float64(cfg.NGrid)/cfg.BoxMpc {
				continue
			}
			lin := d * d * s.LP.P(k)
			if ps.P[i] > 1.3*lin {
				boosted = true
			}
		}
		if !boosted {
			t.Error("no nonlinear enhancement at high k")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimersAndCounters(t *testing.T) {
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	cfg.Steps = 1
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Step(); err != nil {
			t.Error(err)
			return
		}
		if s.Counters.KernelInteractions == 0 {
			t.Error("no interactions counted")
		}
		// 2 long-range kicks × (1 r2c forward + 3 c2r inverses) at half the
		// complex-transform cost each: 4 complex-transform equivalents.
		if s.Counters.FFT3D != 4 {
			t.Errorf("FFT3D=%d want 4", s.Counters.FFT3D)
		}
		if s.Timers.Get("kernel") == 0 || s.Timers.Get("fft") == 0 {
			t.Error("phase timers empty")
		}
		if s.MemoryMB() <= 0 {
			t.Error("memory estimate non-positive")
		}
		gc := s.GlobalCounters()
		if gc.Flops() <= 0 {
			t.Error("no flops counted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaloFindingInSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	// By z≈1 in a small box, FOF should find halos and the mass function
	// should decline with mass.
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	cfg.BoxMpc = 100
	cfg.ZInit = 24
	cfg.ZFinal = 0.5
	cfg.Steps = 12
	cfg.SubCycles = 3
	cfg.Cosmo = cosmology.Default()
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		halos := s.FindHalos(0.2, 10)
		counts := mpi.AllReduce(c, []int{len(halos)}, mpi.SumInt)
		if c.Rank() == 0 && counts[0] < 3 {
			t.Errorf("only %d halos found at z=0.5 in a 100 Mpc box", counts[0])
		}
		// Sanity on the mass scale: ≥10 particles × mp.
		for _, h := range halos {
			if h.Mass < 9*s.ParticleMassMsun {
				t.Errorf("halo mass %g below 10 particles", h.Mass)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
