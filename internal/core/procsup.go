package core

// Process-level supervision: the multi-process analogue of RunSupervised.
// Where RunSupervised owns goroutine ranks inside one address space,
// SuperviseProcs owns N OS processes connected through the mpi wire
// transport. The failure taxonomy is shared — a rank process reports its own
// failure through the exit-code protocol below (ExitCodeFor is the child
// half, classifyExits the parent half), and the recovery loop reuses the
// same pickResume/quarantine/backoff machinery, so a kill -9'd worker drives
// exactly the classify → quarantine → resume-from-newest-checkpoint path the
// in-process supervisor does.

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"hacc/internal/mpi"
	"hacc/internal/obs"
)

// Exit-code protocol between a supervised rank process and its parent. A
// child that fails classifies its own error (ExitCodeFor) so the parent can
// reconstruct the FailureClass without parsing stderr; any other non-zero
// status — including death by signal, the kill -9 case — reads as a rank
// crash (FailPanic), matching how an uncaught panic exits.
const (
	ExitOK                = 0
	ExitPanic             = 10
	ExitHang              = 11
	ExitAbort             = 12
	ExitCorruptCheckpoint = 13
)

// EnvResume tells a respawned rank process which checkpoint step directory
// to restore. It is set by SuperviseProcs on recovery attempts only, so a
// child can gate first-attempt-only behavior (fault arming, injected
// suicide) on its absence.
const EnvResume = "HACC_RESUME"

// ClassifyFailure diagnoses one attempt's error into the supervisor's
// failure taxonomy — the exported form of the classifier RunSupervised uses,
// for rank processes and launchers that classify on their own side of a
// process boundary.
func ClassifyFailure(err error) FailureClass { return classifyFailure(err) }

// ExitCodeFor maps a rank-process error onto the exit-code protocol: the
// child half of the classification handshake.
func ExitCodeFor(err error) int {
	if err == nil {
		return ExitOK
	}
	switch classifyFailure(err) {
	case FailHang:
		return ExitHang
	case FailAbort:
		return ExitAbort
	case FailCorruptCheckpoint:
		return ExitCorruptCheckpoint
	default:
		return ExitPanic
	}
}

// MarkRestoreFailure wraps a checkpoint-restore error so ClassifyFailure and
// ExitCodeFor report FailCorruptCheckpoint — the tag a rank process applies
// before exiting, mirroring what RunSupervised's rank closure panics with.
func MarkRestoreFailure(dir string, err error) error {
	return &restoreError{dir: dir, err: err}
}

// ProcOptions configures SuperviseProcs.
type ProcOptions struct {
	// Ranks is the world size: one OS process per rank.
	Ranks int
	// Transport selects the wire socket family ("tcp", "unix", or "auto").
	Transport string
	// Command is the argv every rank process runs (the launcher re-execs
	// itself here). The wire env contract is appended to each child's
	// environment; the command must detect it (mpi.WireChild) and join via
	// mpi.ConnectEnv.
	Command []string
	// Env is extra environment appended to every child.
	Env []string

	// MaxRestarts bounds recovery attempts after the first try (0 means the
	// default of 3; negative means supervised classification but no retry).
	MaxRestarts int
	// Backoff is the initial restart delay, doubled each incident up to
	// BackoffMax. Defaults: 100ms and 5s.
	Backoff    time.Duration
	BackoffMax time.Duration
	// AttemptTimeout bounds one attempt's wall clock; when it elapses the
	// survivors are killed and the attempt is classified as a hang (the
	// process-level analogue of RunDeadline). 0 means no bound.
	AttemptTimeout time.Duration
	// GraceKill is how long survivors get to notice a dead peer (EOF on its
	// connection → self-abort → ExitAbort) before the parent kills them.
	// Defaults to 10s.
	GraceKill time.Duration

	// CheckpointRoot is the cadenced checkpoint directory recovery resumes
	// from (newest restorable step, damaged ones quarantined). Empty means
	// every retry restarts from initial conditions.
	CheckpointRoot string
	// TraceDir, when set, receives the supervisor's incident journal
	// (journal.supervisor.jsonl) alongside the rank processes' own trace and
	// journal files — the same layout the in-process supervisor produces.
	TraceDir string
	// ResumeFrom pre-seeds the first attempt's resume directory.
	ResumeFrom string

	// Stdout receives rank 0's stdout (default os.Stdout); Stderr receives
	// every rank's stderr (default os.Stderr).
	Stdout io.Writer
	Stderr io.Writer
	// Log, when non-nil, receives one line per supervisor event.
	Log func(string)
}

// rankProcErr describes the representative failure of one attempt.
type rankProcErr struct {
	rank   int
	class  FailureClass
	detail string
}

func (e *rankProcErr) Error() string {
	return fmt.Sprintf("rank process %d failed (%s): %s", e.rank, e.class, e.detail)
}

// SuperviseProcs runs one multi-process wire-world attempt after another
// until the world completes or restarts are exhausted. Each attempt spawns
// opts.Ranks copies of opts.Command with the mpi wire env contract (rank,
// size, rendezvous socket, transport) plus EnvResume on recovery attempts,
// waits for all of them, and classifies any failure from the exit-code
// protocol: explicit protocol codes first, signal deaths and stray statuses
// as crashes, an elapsed AttemptTimeout as a hang. Between attempts it picks
// the newest restorable checkpoint under opts.CheckpointRoot (quarantining
// damaged ones) and backs off exponentially — the same recovery loop as
// RunSupervised, across a process boundary.
func SuperviseProcs(opts ProcOptions) (*Report, error) {
	if opts.Ranks <= 0 {
		opts.Ranks = 1
	}
	if len(opts.Command) == 0 {
		return nil, fmt.Errorf("core: SuperviseProcs needs a command")
	}
	if opts.MaxRestarts == 0 {
		opts.MaxRestarts = 3
	}
	if opts.MaxRestarts < 0 {
		opts.MaxRestarts = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	if opts.GraceKill <= 0 {
		opts.GraceKill = 10 * time.Second
	}
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			opts.Log(fmt.Sprintf(format, args...))
		}
	}
	var incLog *obs.Journal
	if opts.TraceDir != "" {
		if j, err := obs.OpenJournalFile(filepath.Join(opts.TraceDir, "journal.supervisor.jsonl")); err == nil {
			incLog = j
			defer incLog.Close()
		} else {
			logf("supervisor: incident journal unavailable: %v", err)
		}
	}
	recordIncident := func(inc Incident) {
		rec := obs.IncidentRecord{
			Kind:        "incident",
			Attempt:     inc.Attempt,
			Class:       inc.Class.String(),
			Resume:      inc.Resume,
			Quarantined: inc.Quarantined,
			BackoffMs:   float64(inc.Backoff) / 1e6,
		}
		if inc.Err != nil {
			rec.Err = inc.Err.Error()
		}
		incLog.Record(rec) // nil-safe
	}

	rep := &Report{}
	resume := opts.ResumeFrom
	for attempt := 0; ; attempt++ {
		runErr := runProcAttempt(&opts, resume)
		if runErr == nil {
			rep.Completed = true
			return rep, nil
		}
		class := classifyFailure(runErr)
		inc := Incident{Attempt: attempt, Class: class, Err: runErr}
		if class == FailCorruptCheckpoint && resume != "" {
			if q, err := quarantine(opts.CheckpointRoot, resume); err == nil {
				inc.Quarantined = append(inc.Quarantined, q)
			}
		}
		if attempt >= opts.MaxRestarts {
			rep.Incidents = append(rep.Incidents, inc)
			recordIncident(inc)
			logf("supervisor: attempt %d failed (%s): %v; restarts exhausted", attempt, class, runErr)
			return rep, fmt.Errorf("core: supervised procs failed after %d restarts: last failure (%s): %w",
				rep.Restarts, class, runErr)
		}
		next, quars := pickResume(opts.CheckpointRoot)
		inc.Quarantined = append(inc.Quarantined, quars...)
		inc.Resume = next
		backoff := opts.Backoff << attempt
		if backoff > opts.BackoffMax {
			backoff = opts.BackoffMax
		}
		inc.Backoff = backoff
		rep.Incidents = append(rep.Incidents, inc)
		recordIncident(inc)
		from := next
		if from == "" {
			from = "initial conditions"
		}
		logf("supervisor: attempt %d failed (%s): %v; resuming from %s after %v",
			attempt, class, runErr, from, backoff)
		time.Sleep(backoff)
		resume = next
		rep.Restarts++
	}
}

// runProcAttempt spawns and waits one world's worth of rank processes,
// returning nil on success or a classifiable error.
func runProcAttempt(opts *ProcOptions, resume string) error {
	scratch, err := os.MkdirTemp("", "hacc-wire")
	if err != nil {
		return fmt.Errorf("core: wire scratch dir: %w", err)
	}
	defer os.RemoveAll(scratch)
	rdv := filepath.Join(scratch, "rdv.sock")

	procs := make([]*exec.Cmd, opts.Ranks)
	for r := 0; r < opts.Ranks; r++ {
		cmd := exec.Command(opts.Command[0], opts.Command[1:]...)
		cmd.Env = append(os.Environ(), opts.Env...)
		cmd.Env = append(cmd.Env,
			mpi.EnvRank+"="+strconv.Itoa(r),
			mpi.EnvSize+"="+strconv.Itoa(opts.Ranks),
			mpi.EnvRendezvous+"="+rdv,
			mpi.EnvTransport+"="+opts.Transport,
		)
		if resume != "" {
			cmd.Env = append(cmd.Env, EnvResume+"="+resume)
		}
		cmd.Stderr = opts.Stderr
		if r == 0 {
			cmd.Stdout = opts.Stdout
		}
		procs[r] = cmd
	}
	kill := func(from int) {
		for _, p := range procs[from:] {
			if p.Process != nil && p.ProcessState == nil {
				p.Process.Kill()
			}
		}
	}
	type exit struct {
		rank int
		err  error
	}
	done := make(chan exit, opts.Ranks)
	for r, cmd := range procs {
		if err := cmd.Start(); err != nil {
			kill(0)
			for q := 0; q < r; q++ {
				procs[q].Wait()
			}
			return fmt.Errorf("core: spawn rank %d: %w", r, err)
		}
		go func(r int, cmd *exec.Cmd) { done <- exit{r, cmd.Wait()} }(r, cmd)
	}

	var attemptC, graceC <-chan time.Time
	if opts.AttemptTimeout > 0 {
		attemptC = time.After(opts.AttemptTimeout)
	}
	hung := false
	exits := make([]error, opts.Ranks)
	for remaining := opts.Ranks; remaining > 0; {
		select {
		case e := <-done:
			exits[e.rank] = e.err
			remaining--
			if e.err != nil && graceC == nil {
				// First failure: give the peers a moment to observe the lost
				// connection and exit with their own classification, then
				// sweep up whoever is left.
				graceC = time.After(opts.GraceKill)
			}
		case <-graceC:
			graceC = nil
			kill(0)
		case <-attemptC:
			attemptC = nil
			hung = true
			kill(0)
		}
	}
	return classifyExits(exits, hung)
}

// classifyExits folds the per-rank exit statuses into one representative
// error, or nil when every rank succeeded. When several ranks report
// different classes the root cause wins over the symptom: a corrupt
// checkpoint or a hang over a crash, a crash over the aborts the dying
// rank's peers observe. An attempt cut down by AttemptTimeout is a hang
// regardless of what the killed processes report.
func classifyExits(exits []error, hung bool) error {
	best := -1
	prio := func(c FailureClass) int {
		switch c {
		case FailCorruptCheckpoint:
			return 3
		case FailHang:
			return 2
		case FailPanic:
			return 1
		default:
			return 0
		}
	}
	var rep *rankProcErr
	for r, err := range exits {
		if err == nil {
			continue
		}
		class, detail := FailPanic, err.Error()
		if ee, ok := err.(*exec.ExitError); ok {
			switch ee.ExitCode() {
			case ExitHang:
				class = FailHang
			case ExitAbort:
				class = FailAbort
			case ExitCorruptCheckpoint:
				class = FailCorruptCheckpoint
			}
			// ExitPanic, signal deaths (ExitCode -1), and any stray status
			// stay FailPanic.
		}
		if p := prio(class); p > best {
			best = p
			rep = &rankProcErr{rank: r, class: class, detail: detail}
		}
	}
	if rep == nil {
		if hung {
			return &rankProcErr{rank: -1, class: FailHang, detail: "attempt deadline elapsed"}
		}
		return nil
	}
	if hung {
		rep.class = FailHang
	}
	// Wrap so classifyFailure recovers the class: reuse the same sentinel
	// error types the in-process path produces.
	switch rep.class {
	case FailHang:
		return fmt.Errorf("core: %w: %v", &mpi.TimeoutError{Rank: rep.rank}, rep)
	case FailAbort:
		return fmt.Errorf("core: %w: %v", &mpi.AbortError{Rank: rep.rank, Reason: rep.detail}, rep)
	case FailCorruptCheckpoint:
		return fmt.Errorf("core: %w", &restoreError{dir: "(child)", err: rep})
	default:
		return fmt.Errorf("core: %w", rep)
	}
}
