package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hacc/internal/fault"
	"hacc/internal/gio"
	"hacc/internal/mpi"
	"hacc/internal/obs"
)

// FailureClass is the supervisor's diagnosis of one failed attempt. The
// class decides nothing about whether to retry (every class retries until
// MaxRestarts — on real machines transient and permanent faults are not
// distinguishable from one observation) but it decides the recovery action:
// a corrupt checkpoint is quarantined before the next attempt, and the log
// records what the campaign actually died of.
type FailureClass int

// Failure classes, most-specific first (classification order matters: a
// corrupt checkpoint surfaces as a panic too, so it is tested before the
// generic classes).
const (
	// FailPanic: a rank panicked — an injected kill, an assertion, a real
	// bug. The world was torn down by the mpi recovery path.
	FailPanic FailureClass = iota
	// FailHang: a blocking operation exceeded the operation timeout, or the
	// whole attempt exceeded its deadline — a wedged rank.
	FailHang
	// FailAbort: a rank called Comm.Abort, or peers were unblocked by a
	// world abort — the attempt observed another rank's failure.
	FailAbort
	// FailCorruptCheckpoint: the resume checkpoint could not be restored
	// (damaged container, schedule mismatch). The directory is quarantined
	// and the next attempt falls back to an older checkpoint.
	FailCorruptCheckpoint
)

func (f FailureClass) String() string {
	switch f {
	case FailPanic:
		return "panic"
	case FailHang:
		return "hang"
	case FailAbort:
		return "abort"
	case FailCorruptCheckpoint:
		return "corrupt-checkpoint"
	}
	return fmt.Sprintf("failure(%d)", int(f))
}

// Incident is one failed attempt in a supervised run's recovery log.
type Incident struct {
	Attempt     int          // 0-based attempt that failed
	Class       FailureClass // diagnosis
	Err         error        // the error mpi.Run surfaced
	Resume      string       // checkpoint dir the NEXT attempt resumes from ("" = initial conditions)
	Quarantined []string     // checkpoint dirs moved aside before the next attempt
	Backoff     time.Duration
}

// SupervisorOptions configures RunSupervised. The zero value supervises a
// run with 3 restarts, 100ms initial backoff, and no timeouts (hang
// detection off).
type SupervisorOptions struct {
	// Ranks is the world size (default 1).
	Ranks int
	// MaxRestarts bounds recovery attempts after the initial run (default
	// 3; negative disables restarts entirely — failures surface directly).
	MaxRestarts int
	// Backoff is the sleep before the first restart, doubling per attempt
	// (default 100ms).
	Backoff time.Duration
	// BackoffMax caps the exponential backoff (default 5s).
	BackoffMax time.Duration
	// OpTimeout bounds every blocking mpi operation (World.SetTimeout);
	// zero disables. It must comfortably exceed the worst compute imbalance
	// between ranks or slow-but-healthy peers are misdiagnosed as hung.
	OpTimeout time.Duration
	// Deadline bounds each whole attempt's wall clock (World.RunDeadline);
	// zero disables. This is the only detector that catches a rank wedged
	// outside mpi calls.
	Deadline time.Duration
	// ResumeFrom, when non-empty, makes the FIRST attempt restore from this
	// checkpoint step directory or cadence root instead of starting from
	// initial conditions (the -restart flag under supervision).
	ResumeFrom string
	// Mutate adjusts bitwise-neutral config knobs on every restore, exactly
	// as in Restore.
	Mutate func(*Config)
	// Log, when non-nil, receives one line per supervisor action.
	Log func(string)
}

// Report summarizes a supervised run: the recovery log and whether the body
// ultimately completed.
type Report struct {
	Incidents []Incident
	Restarts  int  // restore-and-rerun cycles performed
	Completed bool // body returned success on some attempt
}

// restoreError marks a failure of the resume path itself, so the supervisor
// can classify it as a checkpoint problem rather than a run problem.
type restoreError struct {
	dir string
	err error
}

func (e *restoreError) Error() string {
	return fmt.Sprintf("restoring %s: %v", e.dir, e.err)
}
func (e *restoreError) Unwrap() error { return e.err }

// classifyFailure diagnoses one attempt's error. Order matters: restore
// failures and timeouts travel inside rank panics, so the specific classes
// are tested before the generic FailPanic.
func classifyFailure(err error) FailureClass {
	var re *restoreError
	if errors.As(err, &re) {
		return FailCorruptCheckpoint
	}
	var te *mpi.TimeoutError
	if errors.As(err, &te) {
		return FailHang
	}
	var ae *mpi.AbortError
	if errors.As(err, &ae) {
		return FailAbort
	}
	return FailPanic
}

// RunSupervised runs body under a failure supervisor: it builds a world,
// constructs (or restores) the Simulation on every rank, and calls body to
// drive it. When the attempt fails — a rank panic, a detected hang, an
// abort, a broken resume checkpoint — the supervisor tears the world down,
// classifies the failure, quarantines any damaged checkpoint directory,
// sleeps an exponential backoff, and retries from the newest restorable
// checkpoint (falling back to older ones, and to initial conditions when
// none survives). Steps are deterministic, so a supervised run that resumes
// from a restart-exact checkpoint converges to the bitwise-identical final
// state an uninterrupted run produces.
//
// body must be safe to re-run from a restored Simulation: drive the
// remaining schedule (s.Run), then do terminal work. It runs on every rank.
// The returned Report is valid even when err is non-nil (the run that
// exhausted MaxRestarts is described by its incidents).
//
// The per-incident log is also fed into machine.Counters: each attempt's
// Simulation starts with Counters.Restarts and Counters.CkptQuarantined
// reflecting the supervisor's history, so checkpoints and reports written
// by the run itself carry the campaign's recovery record.
func RunSupervised(cfg Config, opts SupervisorOptions, body func(*Simulation) error) (*Report, error) {
	if opts.Ranks <= 0 {
		opts.Ranks = 1
	}
	if opts.MaxRestarts == 0 {
		opts.MaxRestarts = 3
	}
	if opts.MaxRestarts < 0 {
		opts.MaxRestarts = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			opts.Log(fmt.Sprintf(format, args...))
		}
	}
	// The supervisor's own incident journal, alongside the per-rank run
	// journals: the campaign's recovery history survives even when the
	// process dies between attempts. Not a rank product — one file per
	// supervisor, append-only across attempts.
	var incLog *obs.Journal
	if cfg.TraceDir != "" {
		if j, err := obs.OpenJournalFile(filepath.Join(cfg.TraceDir, "journal.supervisor.jsonl")); err == nil {
			incLog = j
			defer incLog.Close()
		} else {
			logf("supervisor: incident journal unavailable: %v", err)
		}
	}
	recordIncident := func(inc Incident) {
		rec := obs.IncidentRecord{
			Kind:        "incident",
			Attempt:     inc.Attempt,
			Class:       inc.Class.String(),
			Resume:      inc.Resume,
			Quarantined: inc.Quarantined,
			BackoffMs:   float64(inc.Backoff) / 1e6,
		}
		if inc.Err != nil {
			rec.Err = inc.Err.Error()
		}
		incLog.Record(rec) // nil-safe
	}

	rep := &Report{}
	resume := opts.ResumeFrom
	quarantined := 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		// Capture plain values for the rank closures: goroutines leaked by a
		// timed-out attempt must not race with the supervisor mutating rep.
		restarts, quar, resumeDir := rep.Restarts, quarantined, resume
		world := mpi.NewWorld(opts.Ranks)
		if opts.OpTimeout > 0 {
			world.SetTimeout(opts.OpTimeout)
		}
		runErr := world.RunDeadline(func(c *mpi.Comm) {
			var s *Simulation
			var err error
			if resumeDir != "" {
				s, err = Restore(c, resumeDir, opts.Mutate)
				if err != nil {
					panic(&restoreError{dir: resumeDir, err: err})
				}
			} else {
				s, err = New(c, cfg)
				if err != nil {
					panic(err)
				}
			}
			s.Counters.Restarts = int64(restarts)
			s.Counters.CkptQuarantined = int64(quar)
			if err := body(s); err != nil {
				panic(err)
			}
		}, opts.Deadline)
		if runErr == nil {
			rep.Completed = true
			return rep, nil
		}
		lastErr = runErr
		// Teardown: release any goroutine an injected hang parked, so a
		// wedged rank drains instead of leaking across attempts.
		fault.Interrupt()

		class := classifyFailure(runErr)
		inc := Incident{Attempt: attempt, Class: class, Err: runErr}
		if class == FailCorruptCheckpoint && resume != "" {
			// The resume dir itself is bad in a way Verify may not catch
			// (meta mismatch, schedule drift): move it aside explicitly.
			if q, err := quarantine(cfg.CheckpointDir, resume); err == nil {
				inc.Quarantined = append(inc.Quarantined, q)
				quarantined++
			}
		}
		if attempt >= opts.MaxRestarts {
			rep.Incidents = append(rep.Incidents, inc)
			recordIncident(inc)
			logf("supervisor: attempt %d failed (%s): %v; restarts exhausted", attempt, class, runErr)
			return rep, fmt.Errorf("core: supervised run failed after %d restarts: last failure (%s): %w",
				rep.Restarts, class, lastErr)
		}

		// Pick the resume point for the next attempt, quarantining damaged
		// checkpoints as they are discovered.
		next, quars := pickResume(cfg.CheckpointDir)
		inc.Quarantined = append(inc.Quarantined, quars...)
		quarantined += len(quars)
		inc.Resume = next

		backoff := opts.Backoff << attempt
		if backoff > opts.BackoffMax {
			backoff = opts.BackoffMax
		}
		inc.Backoff = backoff
		rep.Incidents = append(rep.Incidents, inc)
		recordIncident(inc)
		from := next
		if from == "" {
			from = "initial conditions"
		}
		logf("supervisor: attempt %d failed (%s): %v; resuming from %s after %v",
			attempt, class, runErr, from, backoff)
		time.Sleep(backoff)
		resume = next
		rep.Restarts++
	}
}

// pickResume scans the cadenced checkpoint root for the newest restorable
// checkpoint — newest first, CRC-verifying each candidate's state container
// — and returns the chosen step directory ("" when none survives — the run
// restarts from initial conditions). Unlike LatestCheckpoint, which merely
// skips damaged directories, every damaged candidate found on the way down
// is quarantined, so a half-written checkpoint from the crash that triggered
// this recovery can never shadow a good older one again. An empty or missing
// root simply yields a fresh start.
func pickResume(root string) (string, []string) {
	var quars []string
	if root == "" {
		return "", nil
	}
	for _, dir := range checkpointDirs(root) {
		gr, err := gio.Open(filepath.Join(dir, StateFile))
		if err == nil {
			err = gr.Verify()
			gr.Close()
		}
		if err == nil {
			return dir, quars
		}
		if q, qerr := quarantine(root, dir); qerr == nil {
			quars = append(quars, q)
		}
	}
	return "", quars
}

// checkpointDirs lists the step%06d directories under root, newest first.
func checkpointDirs(root string) []string {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	type cand struct {
		step int
		dir  string
	}
	var cands []cand
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var k int
		if n, _ := fmt.Sscanf(e.Name(), "step%d", &k); n != 1 {
			continue
		}
		cands = append(cands, cand{k, filepath.Join(root, e.Name())})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].step > cands[j].step })
	dirs := make([]string, len(cands))
	for i, c := range cands {
		dirs[i] = c.dir
	}
	return dirs
}

// quarantine moves a damaged checkpoint step directory into the
// "quarantined" subdirectory of the checkpoint root, so LatestCheckpoint's
// step%d scan can never resume from it again but the bytes survive for a
// post-mortem. Returns the new path.
func quarantine(root, dir string) (string, error) {
	qdir := filepath.Join(root, "quarantined")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", err
	}
	dst := filepath.Join(qdir, filepath.Base(dir))
	// A re-quarantine of the same step number after a later restart must
	// not fail: make room.
	os.RemoveAll(dst)
	if err := os.Rename(dir, dst); err != nil {
		return "", err
	}
	return dst, nil
}
