// Package core is the HACC framework proper: it wires the spectral
// particle-mesh long/medium-range solver, the switchable short-range
// backends (RCB tree "PPTreePM" as on BG/Q, or chaining-mesh "P3M" as on
// Roadrunner), particle overloading, the SKS symplectic stepper, and the
// in-situ analysis pipeline into a full cosmological N-body simulation
// (paper §II–III).
//
// A Simulation owns every persistent plan for the life of the run: the
// worker pool and short-range solver scratch (PR 1), the planned spectral
// Poisson solver (PR 2), the neighbor-stencil exchange plans with
// overlapped Begin/End stepping (PR 3), the in-situ FOF and P(k) plans
// driven by Config.AnalysisEvery (PR 4), and the collective checkpoint
// writer driven by Config.CheckpointEvery (PR 5). The hot stepping path
// allocates nothing after the first sub-cycle.
//
// Checkpoint/Restore make the run durable: a checkpoint captures the
// complete run state (active and replica particles, counters, schedule
// position, scale factor, seed, and config fingerprint) in gio containers,
// overlapping the state write with the deferred end-of-step refresh, and a
// restore at the writing rank count continues bitwise-identically — at a
// different rank count, records are reassigned through the domain
// geometry. All checkpoint failures are collectively agreed (mpi.AllOK),
// so every rank observes one consistent outcome.
//
// RunSupervised makes the run self-healing (PR 6): failed attempts are
// classified (panic, hang, abort, corrupt checkpoint), damaged checkpoint
// directories are quarantined, and the run resumes from the newest
// restorable checkpoint with bounded exponential backoff — converging, by
// determinism plus restart-exactness, to the bitwise-identical final state
// of an uninterrupted run. Transient checkpoint write failures retry in
// collective lockstep below the supervisor (Config.CheckpointRetries), and
// the recovery history feeds machine.Counters. internal/fault manufactures
// all of these failures deterministically for tests and chaos runs.
package core
