// Package core is the HACC framework proper: it wires the spectral
// particle-mesh long/medium-range solver, the switchable short-range
// backends (RCB tree "PPTreePM" as on BG/Q, or chaining-mesh "P3M" as on
// Roadrunner), particle overloading, the SKS symplectic stepper, and the
// in-situ analysis pipeline into a full cosmological N-body simulation
// (paper §II–III).
//
// A Simulation owns every persistent plan for the life of the run: the
// worker pool and short-range solver scratch (PR 1), the planned spectral
// Poisson solver (PR 2), the neighbor-stencil exchange plans with
// overlapped Begin/End stepping (PR 3), and the in-situ FOF and P(k)
// plans driven by Config.AnalysisEvery (PR 4). The hot stepping path
// allocates nothing after the first sub-cycle.
package core
