package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"hacc/internal/mpi"
	"hacc/internal/snapshot"
)

// TestInSituAnalysisHook runs a short simulation with the in-situ pipeline
// enabled and checks the cadence, the in-memory product, and the emitted
// halo catalogs and spectra.
func TestInSituAnalysisHook(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	// A not-yet-existing nested directory: Analyze must create it rather
	// than abort the run at the first emission.
	dir := t.TempDir() + "/products/run1"
	const ranks = 4
	// PM-only force resolution is the grid scale, so the linking length is
	// set to half a cell (the test exercises the pipeline, not sub-grid
	// halo physics — the tree solver examples use the standard b=0.2).
	cfg := Config{
		NGrid: 24, NParticles: 24, BoxMpc: 150,
		ZInit: 20, ZFinal: 0, Steps: 6, SubCycles: 2,
		Seed: 9, Solver: PMOnly,
		AnalysisEvery: 2, AnalysisBins: 10, MinHaloSize: 5, FOFLinking: 0.5,
		AnalysisDir: dir,
	}
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		if s.LastAnalysis == nil {
			t.Error("no in-situ analysis ran")
			return
		}
		if s.LastAnalysis.Step != 6 {
			t.Errorf("last analysis at step %d want 6", s.LastAnalysis.Step)
		}
		if s.LastAnalysis.Spectrum == nil || len(s.LastAnalysis.Spectrum.K) == 0 {
			t.Error("in-situ spectrum empty")
		}
		nh := mpi.AllReduce(c, []int{len(s.LastAnalysis.Halos)}, mpi.SumInt)[0]
		if c.Rank() != 0 {
			return
		}
		if nh == 0 {
			t.Error("no halos found at z=0 (expected at least a few)")
		}
		// Emission: per-rank catalogs and a rank-0 spectrum at steps 2, 4, 6.
		for _, step := range []int{2, 4, 6} {
			var total int
			for r := 0; r < ranks; r++ {
				h, halos, err := snapshot.LoadHalos(fmt.Sprintf("%s/halos_step%04d.r%d.bin", dir, step, r))
				if err != nil {
					t.Errorf("catalog step %d rank %d: %v", step, r, err)
					continue
				}
				if h.NGrid != 24 {
					t.Errorf("catalog header grid %d", h.NGrid)
				}
				total += len(halos)
			}
			if step == 6 && total != nh {
				t.Errorf("emitted catalogs hold %d halos, in-memory %d", total, nh)
			}
			if _, ps, err := snapshot.LoadSpectrum(fmt.Sprintf("%s/spectrum_step%04d.bin", dir, step)); err != nil {
				t.Errorf("spectrum step %d: %v", step, err)
			} else if len(ps.K) == 0 {
				t.Errorf("spectrum step %d empty", step)
			}
		}
		// No analysis at odd steps.
		if _, err := os.Stat(fmt.Sprintf("%s/spectrum_step%04d.bin", dir, 3)); err == nil {
			t.Error("analysis ran at step 3 with AnalysisEvery=2")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAnalysisConfigValidation pins the centralized validation of the
// in-situ knobs: zero takes the documented default, negative (or otherwise
// senseless) values fail loudly at New.
func TestAnalysisConfigValidation(t *testing.T) {
	base := Config{
		NGrid: 16, NParticles: 16, BoxMpc: 100,
		ZInit: 20, ZFinal: 5, Steps: 2,
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative AnalysisEvery", func(c *Config) { c.AnalysisEvery = -1 }, "AnalysisEvery"},
		{"negative AnalysisBins", func(c *Config) { c.AnalysisBins = -2 }, "AnalysisBins"},
		{"negative FOFLinking", func(c *Config) { c.FOFLinking = -0.2 }, "FOFLinking"},
		{"negative MinHaloSize", func(c *Config) { c.MinHaloSize = -5 }, "MinHaloSize"},
		{"linking beyond overload", func(c *Config) { c.AnalysisEvery = 1; c.FOFLinking = 9; c.Overload = 2 }, "overload"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		err := cfg.WithDefaults().Validate()
		if err == nil {
			t.Errorf("%s: validation passed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Zero values are defaults, not errors.
	if err := base.WithDefaults().Validate(); err != nil {
		t.Errorf("zero analysis config rejected: %v", err)
	}
	// With the pipeline disabled, the defaulted linking length must not
	// reject an explicitly narrow overload shell (ad-hoc FindHalos calls
	// validate their own linking length at call time).
	narrow := base
	narrow.Overload = 0.15
	if err := narrow.WithDefaults().Validate(); err != nil {
		t.Errorf("disabled pipeline rejected narrow overload: %v", err)
	}
	got := base.WithDefaults()
	if got.AnalysisBins != 16 || got.FOFLinking != 0.2 || got.MinHaloSize != 10 {
		t.Errorf("defaults = bins %d, linking %g, min size %d", got.AnalysisBins, got.FOFLinking, got.MinHaloSize)
	}
}
