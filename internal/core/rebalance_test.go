package core

import (
	"math"
	"path/filepath"
	"testing"

	"hacc/internal/analysis"
	"hacc/internal/mpi"
)

// haloCfg is the clustered load-balancing workload: one deep Plummer halo,
// cold start, tree solver. The 24³ grid gives the equal-cost partitioner
// enough cell resolution to move a cut off the uniform boundary (at 16³ the
// half-cost prefix rounds back to the uniform cut and nothing ever changes),
// and the z = 3 → 1 six-step schedule keeps per-step drift inside the
// overload margin that narrow rebalanced slabs require (see
// ic.ClusteredOptions.ScaleRad).
func haloCfg() Config {
	return Config{
		NGrid: 24, NParticles: 24, BoxMpc: 8 * 24,
		ZInit: 3, ZFinal: 1, Steps: 6, SubCycles: 2,
		Seed: 7, Solver: PPTreePM, ICKind: "halo",
	}
}

// TestRebalanceToLossless pins the repartition contract: RebalanceTo between
// steps changes only particle ownership, never particle state — the global
// ID-sorted bit state is identical before and after, across an asymmetric
// geometry and back to uniform — and the run continues under the new
// geometry.
func TestRebalanceToLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	const ranks = 4
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, haloCfg())
		if err != nil {
			panic(err)
		}
		if err := s.Step(); err != nil {
			panic(err)
		}
		before := gatherSorted(c, &s.Dom.Active)
		uniform := s.Dec.Cuts()

		// An asymmetric geometry (the decomposition is 4 = 1×2×2 or similar;
		// shift every decomposed axis's interior cut by one cell).
		cuts := s.Dec.Cuts()
		skew := [3][]int{}
		for d := 0; d < 3; d++ {
			skew[d] = append([]int(nil), cuts[d]...)
			for j := 1; j < len(skew[d])-1; j++ {
				skew[d][j]++
			}
		}
		s.RebalanceTo(skew)
		if !sameCuts(s.Dec.Cuts(), skew) {
			t.Error("decomposition did not adopt the new cuts")
		}
		after := gatherSorted(c, &s.Dom.Active)
		if c.Rank() == 0 && !equalU64(before, after) {
			t.Error("rebalance changed the global ID-sorted particle state")
		}
		if s.Counters.Rebalances != 1 {
			t.Errorf("Rebalances = %d, want 1", s.Counters.Rebalances)
		}
		// The run keeps stepping under the non-uniform geometry.
		if err := s.Step(); err != nil {
			panic(err)
		}
		// And back to uniform: still lossless on sorted state.
		s.RebalanceTo(uniform)
		if err := s.Step(); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRebalancedMatchesStatic runs the clustered workload with the balancer
// armed and compares against the static run: the particle ID sets must
// agree exactly and the final P(k) within the documented cross-geometry
// summation tolerance (different decompositions sum deposits and forces in
// different orders, so bitwise equality across geometries cannot hold). The
// balancer must actually have fired for the comparison to mean anything.
func TestRebalancedMatchesStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	const ranks = 4
	const bins = 8
	run := func(cfg Config) (pk *analysis.PowerSpectrum, sorted []uint64, rebalances int64) {
		err := mpi.Run(ranks, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				panic(err)
			}
			if err := s.Run(nil); err != nil {
				panic(err)
			}
			ps := s.PowerSpectrum(bins, true)
			g := gatherSorted(c, &s.Dom.Active)
			if c.Rank() == 0 {
				pk = specCopy(ps)
				sorted = g
				rebalances = s.Counters.Rebalances
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	staticPk, staticSorted, _ := run(haloCfg())

	reb := haloCfg()
	reb.RebalanceThreshold = 1.05
	reb.RebalanceMinSteps = 1
	rebPk, rebSorted, fired := run(reb)
	if fired == 0 {
		t.Fatal("balancer never fired on the clustered workload; the comparison is vacuous")
	}

	if len(staticSorted) != len(rebSorted) {
		t.Fatalf("particle counts differ: %d vs %d words", len(staticSorted), len(rebSorted))
	}
	// Same universe: identical ID sequence (the sorted records interleave
	// id + 6 state words; compare the ids exactly).
	for i := 0; i < len(staticSorted); i += 7 {
		if staticSorted[i] != rebSorted[i] {
			t.Fatalf("particle ID sets diverge at record %d", i/7)
		}
	}
	// Cross-geometry tolerance: 1e-2 on this workload, looser than the 1e-3
	// of the smooth Zel'dovich restart test because the collapsed halo
	// amplifies float32 summation-order differences chaotically over the
	// post-rebalance steps (documented in DESIGN.md "Load balancing").
	for i := range staticPk.K {
		if staticPk.NModes[i] == 0 {
			continue
		}
		denom := math.Abs(staticPk.P[i])
		if denom == 0 {
			continue
		}
		if rel := math.Abs(rebPk.P[i]-staticPk.P[i]) / denom; rel > 1e-2 {
			t.Errorf("P(k=%g) differs by %.2e (static %g, rebalanced %g)", staticPk.K[i], rel, staticPk.P[i], rebPk.P[i])
		}
	}
}

// TestRebalanceCheckpointCompose is the satellite acceptance: a run that
// rebalances onto a non-uniform decomposition, checkpoints mid-flight, and
// restores must continue bitwise identically to the uninterrupted run — the
// geometry round-trips through the container trailer. The balancer is
// throttled to a single early fire (MinSteps spans the schedule) because a
// restart re-warms the cost model from scratch; with further fires
// suppressed in both runs, the geometry sequences coincide and the
// continuation is exact.
func TestRebalanceCheckpointCompose(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	const ranks = 4
	cfg := haloCfg()
	cfg.RebalanceThreshold = 1.05
	cfg.RebalanceMinSteps = 100

	// Uninterrupted reference.
	finalRef := make([]pcopy, ranks)
	var refFired int64
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(nil); err != nil {
			panic(err)
		}
		finalRef[c.Rank()] = capture(&s.Dom.Active)
		if c.Rank() == 0 {
			refFired = s.Counters.Rebalances
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if refFired == 0 {
		t.Fatal("balancer never fired; the compose test is vacuous")
	}

	// Interrupted run: checkpoint at step 2 (after the early rebalance, so
	// the checkpoint holds a non-uniform geometry), then abandon.
	ckroot := t.TempDir()
	ckCfg := cfg
	ckCfg.CheckpointEvery = 2
	ckCfg.CheckpointDir = ckroot
	var ckCuts [3][]int
	var uniform [3][]int
	err = mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, ckCfg)
		if err != nil {
			panic(err)
		}
		uni := s.Dec.Cuts()
		for i := 0; i < 2; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		if c.Rank() == 0 {
			ckCuts = s.Dec.Cuts()
			uniform = uni
			if s.Counters.Rebalances == 0 {
				t.Error("no rebalance before the checkpoint; lower the threshold")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sameCuts(ckCuts, uniform) {
		t.Fatal("checkpoint was taken under the uniform geometry; the round-trip is untested")
	}
	stepDir := filepath.Join(ckroot, "step000002")

	// The container meta must round-trip the geometry.
	info, err := ReadCheckpointInfo(stepDir)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCuts(info.Cuts, ckCuts) {
		t.Fatalf("container records cuts %v, run had %v", info.Cuts, ckCuts)
	}

	// Restore and finish: bitwise per-rank identical to the reference.
	err = mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := Restore(c, stepDir, func(cfg *Config) {
			cfg.CheckpointEvery = 0
			cfg.CheckpointDir = ""
		})
		if err != nil {
			panic(err)
		}
		if !sameCuts(s.Dec.Cuts(), ckCuts) {
			t.Errorf("restore adopted cuts %v, checkpoint had %v", s.Dec.Cuts(), ckCuts)
		}
		if err := s.Run(nil); err != nil {
			panic(err)
		}
		if !equalBits(capture(&s.Dom.Active), finalRef[c.Rank()]) {
			t.Errorf("rank %d: restored continuation diverged from the uninterrupted rebalanced run", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStealWalksBitwise pins the stealing dispatch's scheduling neutrality
// end to end: a full clustered run with StealWalks on is bitwise identical
// to the static dispatch, at several worker counts, for both the forest and
// the single-tree backend.
func TestStealWalksBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	const ranks = 2
	base := haloCfg()
	base.Steps = 2
	for _, trees := range []int{1, 4} {
		var ref []pcopy
		for _, variant := range []struct {
			steal   bool
			threads int
		}{
			{false, 2},
			{true, 1},
			{true, 2},
			{true, 4},
		} {
			cfg := base
			cfg.NTrees = trees
			cfg.StealWalks = variant.steal
			cfg.Threads = variant.threads
			final := make([]pcopy, ranks)
			err := mpi.Run(ranks, func(c *mpi.Comm) {
				s, err := New(c, cfg)
				if err != nil {
					panic(err)
				}
				if err := s.Run(nil); err != nil {
					panic(err)
				}
				final[c.Rank()] = capture(&s.Dom.Active)
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = final
				continue
			}
			for r := range final {
				if !equalBits(final[r], ref[r]) {
					t.Fatalf("ntrees=%d steal=%v threads=%d: rank %d diverged from the static dispatch",
						trees, variant.steal, variant.threads, r)
				}
			}
		}
	}
}

// TestRebalanceConfigValidation covers the new knobs' validation and their
// fingerprint semantics: the trigger knobs and IC kind define the run,
// StealWalks is bitwise-neutral and restart-compatible.
func TestRebalanceConfigValidation(t *testing.T) {
	ok := haloCfg().WithDefaults()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"threshold below 1": func(c *Config) { c.RebalanceThreshold = 0.5 },
		"threshold one":     func(c *Config) { c.RebalanceThreshold = 1 },
		"bad ic kind":       func(c *Config) { c.ICKind = "void" },
	} {
		cfg := ok
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	fp := ok.Fingerprint()
	neutral := ok
	neutral.StealWalks = true
	neutral.Threads = 7
	if neutral.Fingerprint() != fp {
		t.Error("StealWalks/Threads must not change the fingerprint (bitwise-neutral knobs)")
	}
	for name, mut := range map[string]func(*Config){
		"threshold": func(c *Config) { c.RebalanceThreshold = 1.5 },
		"min steps": func(c *Config) { c.RebalanceMinSteps = 5 },
		"ic kind":   func(c *Config) { c.ICKind = "zeldovich" },
	} {
		cfg := ok
		mut(&cfg)
		if cfg.Fingerprint() == fp {
			t.Errorf("%s must change the fingerprint", name)
		}
	}
}
