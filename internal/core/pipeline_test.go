package core

import (
	"math"
	"testing"

	"hacc/internal/analysis"
	"hacc/internal/mpi"
)

// runSpectrum evolves the config and returns rank 0's measured P(k).
func runSpectrum(t *testing.T, cfg Config, procs int) *analysis.PowerSpectrum {
	t.Helper()
	var ps *analysis.PowerSpectrum
	err := mpi.Run(procs, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(nil); err != nil {
			t.Error(err)
			return
		}
		out := s.PowerSpectrum(10, false)
		if c.Rank() == 0 {
			ps = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestThreadedPipelineMatchesSerial is the reused-scratch/threading
// equivalence regression: with the threaded deposit off, every threaded
// component (pooled force kernels, CIC gather, momentum updates, stream)
// is per-particle independent, so a multi-threaded run over several steps
// (scratch and solver state reused across every sub-cycle) must produce
// exactly the same spectrum as the serial run.
func TestThreadedPipelineMatchesSerial(t *testing.T) {
	for _, solver := range []SolverKind{PPTreePM, P3M} {
		cfg := baseConfig()
		cfg.Solver = solver
		cfg.Steps = 2
		cfg.SubCycles = 3
		cfg.Threads = 1
		serial := runSpectrum(t, cfg, 2)
		cfg.Threads = 4
		threaded := runSpectrum(t, cfg, 2)
		for i := range serial.K {
			if serial.P[i] != threaded.P[i] {
				t.Errorf("%v k=%.3f: serial %g vs threaded %g",
					solver, serial.K[i], serial.P[i], threaded.P[i])
			}
		}
	}
}

// TestOverlappedStepMatchesSequential extends the pipeline-equivalence
// regression to the overlapped communication layer: with overlap on
// (default), the density ghost-accumulate hides the deferred refresh, the
// three acceleration fills pipeline against interpolation, and Run defers
// the end-of-step refresh past the step callback — all bitwise-neutral
// reorderings, so the spectrum must exactly match a run with every exchange
// completed synchronously (DisableOverlap). The callback exercises the
// overlap window, including a mid-window FinishRefresh.
func TestOverlappedStepMatchesSequential(t *testing.T) {
	run := func(cfg Config, finish bool) *analysis.PowerSpectrum {
		var ps *analysis.PowerSpectrum
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			steps := 0
			err = s.Run(func(step int, a float64) {
				steps++
				if finish && step == 1 {
					// A callback that needs passives completes the pending
					// refresh explicitly; the rest of the run stays
					// overlapped.
					s.FinishRefresh()
					if s.Dom.Passive.Len() == 0 {
						t.Error("no passives after FinishRefresh")
					}
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
			if steps != cfg.Steps {
				t.Errorf("callback ran %d times, want %d", steps, cfg.Steps)
			}
			out := s.PowerSpectrum(10, false)
			if c.Rank() == 0 {
				ps = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	for _, solver := range []SolverKind{PPTreePM, P3M} {
		cfg := baseConfig()
		cfg.Solver = solver
		cfg.Steps = 2
		cfg.SubCycles = 3
		cfg.Threads = 4
		cfg.DisableOverlap = true
		sequential := run(cfg, false)
		cfg.DisableOverlap = false
		overlapped := run(cfg, false)
		withFinish := run(cfg, true)
		for i := range sequential.K {
			if sequential.P[i] != overlapped.P[i] {
				t.Errorf("%v k=%.3f: sequential %g vs overlapped %g",
					solver, sequential.K[i], sequential.P[i], overlapped.P[i])
			}
			if sequential.P[i] != withFinish.P[i] {
				t.Errorf("%v k=%.3f: sequential %g vs overlapped+FinishRefresh %g",
					solver, sequential.K[i], sequential.P[i], withFinish.P[i])
			}
		}
	}
}

// TestThreadedCICCloseToSerial allows only tiny spectrum differences when
// the threaded deposit is on (float64 accumulation order changes at slab
// boundaries; trajectories may diverge slightly over steps).
func TestThreadedCICCloseToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	cfg := baseConfig()
	cfg.Solver = PPTreePM
	cfg.Steps = 2
	cfg.SubCycles = 3
	cfg.Threads = 1
	serial := runSpectrum(t, cfg, 2)
	cfg.Threads = 4
	cfg.ThreadedCIC = true
	threaded := runSpectrum(t, cfg, 2)
	for i := range serial.K {
		rel := math.Abs(serial.P[i]-threaded.P[i]) / serial.P[i]
		if rel > 1e-3 {
			t.Errorf("k=%.3f: serial %g vs threaded-CIC %g (%.4f%%)",
				serial.K[i], serial.P[i], threaded.P[i], 100*rel)
		}
	}
}
