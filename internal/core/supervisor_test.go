package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hacc/internal/analysis"
	"hacc/internal/fault"
	"hacc/internal/mpi"
)

// chaosCfg is the shared tiny-but-real configuration for resilience tests:
// small enough for short mode, full-range enough that every checkpoint and
// recovery path is the production one.
func chaosCfg(ckroot string) Config {
	return Config{
		NGrid: 16, NParticles: 8, BoxMpc: 120,
		ZInit: 20, ZFinal: 1, Steps: 4, SubCycles: 2,
		Seed: 17, Solver: PMOnly,
		CheckpointEvery: 2, CheckpointDir: ckroot,
		CheckpointRetryBackoff: time.Millisecond,
	}
}

// noTmpFiles asserts no abandoned .tmp container anywhere under root.
func noTmpFiles(t *testing.T, root string) {
	t.Helper()
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(path, ".tmp") {
			t.Errorf("abandoned temporary file %s", path)
		}
		return nil
	})
}

// Satellite 1: a transient collective write failure retries instead of
// failing the step, counts the retry, and leaves no temporary file behind.
func TestCheckpointRetryRecoversTransientFailure(t *testing.T) {
	const ranks = 2
	ckroot := t.TempDir()
	cfg := chaosCfg(ckroot)
	fault.Arm(fault.MustParse("fail fsync once"))
	defer fault.Disarm()
	var retries int64
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Checkpoint(filepath.Join(ckroot, "step000000")); err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			retries = s.Counters.CkptRetries
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Fatalf("CkptRetries = %d, want 1", retries)
	}
	noTmpFiles(t, ckroot)
	// The checkpoint that survived a failed first attempt must restore.
	if err := mpi.Run(ranks, func(c *mpi.Comm) {
		if _, err := Restore(c, filepath.Join(ckroot, "step000000"), nil); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Satellite 1 (exhaustion side): a persistent failure surfaces after the
// bounded retries — it does not loop — and every abandoned attempt cleans
// its temporary file.
func TestCheckpointRetryExhaustion(t *testing.T) {
	const ranks = 2
	ckroot := t.TempDir()
	cfg := chaosCfg(ckroot)
	cfg.CheckpointRetries = 1
	fault.Arm(fault.MustParse("fail fsync")) // every fsync, forever
	defer fault.Disarm()
	var retries int64
	injected := make(chan bool, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		err = s.Checkpoint(filepath.Join(ckroot, "step000000"))
		if err == nil {
			panic("checkpoint succeeded under a persistent fsync fault")
		}
		// The failure is collectively agreed: only the rank whose fsync was
		// faulted carries the injected error; peers see the agreed summary.
		var ie *fault.InjectedError
		injected <- errors.As(err, &ie)
		if c.Rank() == 0 {
			retries = s.Counters.CkptRetries
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(injected)
	var n int
	for ok := range injected {
		if ok {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no rank surfaced *fault.InjectedError")
	}
	if retries != 1 {
		t.Fatalf("CkptRetries = %d, want 1 (bounded)", retries)
	}
	noTmpFiles(t, ckroot)
}

// Satellite 3, the chaos soak: across 3 seeds, a seeded-random rank is
// killed at a seeded-random step; the supervised run must recover and reach
// the bitwise-identical global particle state and P(k) of an uninterrupted
// oracle. Runs in short mode by design — this is the resilience layer's
// acceptance test.
func TestChaosSoakKillRecoversBitwise(t *testing.T) {
	const ranks = 3
	const bins = 8
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ckroot := t.TempDir()
			cfg := chaosCfg(ckroot)

			// Oracle: uninterrupted run, no checkpoints, no faults.
			oracleCfg := cfg
			oracleCfg.CheckpointEvery = 0
			oracleCfg.CheckpointDir = ""
			var wantState []uint64
			var wantPk *analysis.PowerSpectrum
			if err := mpi.Run(ranks, func(c *mpi.Comm) {
				s, err := New(c, oracleCfg)
				if err != nil {
					panic(err)
				}
				if err := s.Run(nil); err != nil {
					panic(err)
				}
				g := gatherSorted(c, &s.Dom.Active)
				ps := s.PowerSpectrum(bins, true) // collective: every rank participates
				if c.Rank() == 0 {
					wantState = g
					wantPk = specCopy(ps)
				}
			}); err != nil {
				t.Fatal(err)
			}

			// Seeded fault site: any rank, any step of the schedule.
			z := seed * 0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			rank := int(z % ranks)
			step := int((z >> 8) % uint64(cfg.Steps))
			fault.Arm(fault.MustParse(fmt.Sprintf("kill rank %d at step %d", rank, step)))
			defer fault.Disarm()

			var gotState []uint64
			var gotPk *analysis.PowerSpectrum
			var restarts int64
			rep, err := RunSupervised(cfg, SupervisorOptions{
				Ranks:   ranks,
				Backoff: time.Millisecond,
			}, func(s *Simulation) error {
				if err := s.Run(nil); err != nil {
					return err
				}
				g := gatherSorted(s.Comm, &s.Dom.Active)
				ps := s.PowerSpectrum(bins, true) // collective: every rank participates
				if s.Comm.Rank() == 0 {
					gotState = g
					gotPk = specCopy(ps)
					restarts = s.Counters.Restarts
				}
				return nil
			})
			if err != nil {
				t.Fatalf("kill rank %d step %d: supervised run failed: %v", rank, step, err)
			}
			if !rep.Completed || rep.Restarts < 1 {
				t.Fatalf("report %+v: expected a completed run with ≥1 restart", rep)
			}
			if len(rep.Incidents) == 0 || rep.Incidents[0].Class != FailPanic {
				t.Fatalf("incidents %+v: want first class panic", rep.Incidents)
			}
			if restarts != int64(rep.Restarts) {
				t.Fatalf("Counters.Restarts = %d, report says %d", restarts, rep.Restarts)
			}
			if !equalU64(gotState, wantState) {
				t.Fatalf("kill rank %d step %d: recovered final particle state differs from oracle", rank, step)
			}
			if len(gotPk.P) != len(wantPk.P) {
				t.Fatalf("P(k) bin count %d != %d", len(gotPk.P), len(wantPk.P))
			}
			for i := range wantPk.P {
				if gotPk.P[i] != wantPk.P[i] || gotPk.K[i] != wantPk.K[i] {
					t.Fatalf("kill rank %d step %d: P(k) bin %d differs: %g != %g",
						rank, step, i, gotPk.P[i], wantPk.P[i])
				}
			}
		})
	}
}

// A wedged rank (injected hang mid-schedule) is detected by the operation
// timeout within the configured deadline and the supervised run recovers to
// completion instead of blocking forever.
func TestSupervisedHangDetectedAndRecovered(t *testing.T) {
	const ranks = 2
	ckroot := t.TempDir()
	cfg := chaosCfg(ckroot)
	fault.Arm(fault.MustParse("hang rank 1 at step 2"))
	defer fault.Disarm()
	start := time.Now()
	rep, err := RunSupervised(cfg, SupervisorOptions{
		Ranks:     ranks,
		Backoff:   time.Millisecond,
		OpTimeout: 2 * time.Second,
		Deadline:  60 * time.Second,
	}, func(s *Simulation) error {
		return s.Run(nil)
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Second {
		t.Fatalf("hang recovery took %v", elapsed)
	}
	if !rep.Completed || len(rep.Incidents) == 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Incidents[0].Class != FailHang {
		t.Fatalf("incident class %v, want hang", rep.Incidents[0].Class)
	}
	// The hang fired after the step-2 checkpoint: recovery must resume from
	// it, not restart from initial conditions.
	if !strings.HasSuffix(rep.Incidents[0].Resume, "step000002") {
		t.Fatalf("resumed from %q, want the step 2 checkpoint", rep.Incidents[0].Resume)
	}
}

// pickResume quarantines a damaged newest checkpoint (instead of silently
// skipping it) and falls back to the older good one.
func TestPickResumeQuarantinesDamagedCheckpoint(t *testing.T) {
	const ranks = 2
	ckroot := t.TempDir()
	cfg := chaosCfg(ckroot)
	if err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(nil); err != nil { // writes step000002 and step000004
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Flip bytes in the newest state container's data region.
	state := filepath.Join(ckroot, "step000004", StateFile)
	raw, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) - 64; i < len(raw)-60; i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(state, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	dir, quars := pickResume(ckroot)
	if !strings.HasSuffix(dir, "step000002") {
		t.Fatalf("pickResume chose %q, want the step 2 checkpoint", dir)
	}
	if len(quars) != 1 || !strings.Contains(quars[0], "quarantined") {
		t.Fatalf("quarantined %v, want the damaged step 4 dir moved aside", quars)
	}
	if _, err := os.Stat(filepath.Join(ckroot, "quarantined", "step000004", StateFile)); err != nil {
		t.Fatalf("quarantined checkpoint not preserved: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckroot, "step000004")); !os.IsNotExist(err) {
		t.Fatal("damaged checkpoint still in the resume path")
	}
	// LatestCheckpoint no longer sees the quarantined dir.
	latest, err := LatestCheckpoint(ckroot)
	if err != nil || !strings.HasSuffix(latest, "step000002") {
		t.Fatalf("LatestCheckpoint after quarantine: %q, %v", latest, err)
	}
}

// With no restorable checkpoint at all (kill before the first cadence
// point), the supervisor restarts from initial conditions and still
// completes.
func TestSupervisedRecoveryFromInitialConditions(t *testing.T) {
	const ranks = 2
	ckroot := t.TempDir()
	cfg := chaosCfg(ckroot)
	fault.Arm(fault.MustParse("kill rank 0 at step 1"))
	defer fault.Disarm()
	rep, err := RunSupervised(cfg, SupervisorOptions{Ranks: ranks, Backoff: time.Millisecond},
		func(s *Simulation) error { return s.Run(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Restarts != 1 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Incidents[0].Resume != "" {
		t.Fatalf("resumed from %q, want initial conditions", rep.Incidents[0].Resume)
	}
}

// MaxRestarts bounds recovery: a fault that kills every attempt surfaces as
// an error carrying the classified failure, with one incident per attempt.
func TestSupervisedRestartsExhausted(t *testing.T) {
	const ranks = 2
	ckroot := t.TempDir()
	cfg := chaosCfg(ckroot)
	// Count high enough to kill the initial attempt and both restarts.
	fault.Arm(fault.MustParse("kill rank 0 at step 1 times 5"))
	defer fault.Disarm()
	rep, err := RunSupervised(cfg, SupervisorOptions{
		Ranks: ranks, MaxRestarts: 2, Backoff: time.Millisecond,
	}, func(s *Simulation) error { return s.Run(nil) })
	if err == nil {
		t.Fatal("supervised run succeeded with an unkillable fault")
	}
	var crash *fault.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("cannot classify final error: %v", err)
	}
	if rep.Completed || len(rep.Incidents) != 3 || rep.Restarts != 2 {
		t.Fatalf("report %+v: want 3 incidents over 2 restarts, not completed", rep)
	}
}
