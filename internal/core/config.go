package core

import (
	"fmt"
	"runtime"
	"time"

	"hacc/internal/cosmology"
	"hacc/internal/spectral"
)

// SolverKind selects the short-range backend.
type SolverKind int

// Short-range backends.
const (
	// PPTreePM uses the rank-local RCB tree (BG/P, BG/Q configuration).
	PPTreePM SolverKind = iota
	// P3M uses the chaining-mesh direct particle-particle solver
	// (Roadrunner / GPU configuration).
	P3M
	// PMOnly disables the short-range force (long/medium range only).
	PMOnly
)

func (s SolverKind) String() string {
	switch s {
	case PPTreePM:
		return "PPTreePM"
	case P3M:
		return "P3M"
	default:
		return "PMOnly"
	}
}

// Config specifies a simulation.
type Config struct {
	// Problem definition.
	NGrid      int     // PM grid points per dimension
	NParticles int     // particles per dimension
	BoxMpc     float64 // box side in Mpc/h
	Cosmo      cosmology.Params
	Transfer   string // "eh", "eh-nowiggle" (default), or "bbks"
	ZInit      float64
	ZFinal     float64
	Steps      int // full (long-range) steps
	SubCycles  int // short-range sub-cycles per step (paper: 5–10)
	Seed       uint64
	FixedAmp   bool // fixed-amplitude initial conditions

	// Solver configuration.
	Solver        SolverKind
	RCut          float64 // short/long force matching radius in cells (default 3)
	LeafSize      int     // RCB fat-leaf capacity (default 64)
	Overload      float64 // overload shell width in cells (default RCut+1)
	Threads       int     // goroutines per rank for force kernels (default 2)
	Eps           float64 // softening added to s=r² (cells², default 0.01)
	Sigma         float64 // spectral filter width (default 0.8)
	NsFilter      int     // spectral filter exponent (default 3)
	DisableFilter bool    // ablation: no isotropizing filter
	SlabFFT       bool    // use the slab FFT decomposition
	FitGridN      int     // grid used for the kernel fit (default 32)
	NTrees        int     // RCB trees per rank (default 1; §VI load balancing)
	ThreadedCIC   bool    // threaded forward-CIC deposit (§VI)

	// DisableOverlap forces fully synchronous communication: every exchange
	// completes inside the call that posted it. By default the planned
	// Begin/End exchanges overlap communication with computation — the
	// density ghost-accumulate hides the deferred overload refresh, the
	// three acceleration-component fills pipeline against interpolation,
	// and Run defers the end-of-step refresh completion past the step
	// callback into the next step's long-range kick. Every overlap is
	// bitwise neutral; the only visible contract is that a Run callback
	// must not read Dom.Passive (it is mid-refresh there — call
	// Simulation.FinishRefresh first, or set DisableOverlap).
	DisableOverlap bool

	// In-situ analysis (the paper's sky-survey data products, produced
	// without raw particle dumps). All four knobs are validated centrally in
	// Validate: zero values take the documented defaults; negative (or
	// otherwise senseless) values are configuration errors, never silent
	// misbehavior.

	// AnalysisEvery runs the in-situ pipeline — distributed FOF halo
	// catalog plus pencil-r2c P(k) — after every AnalysisEvery-th full
	// step. 0 disables in-situ analysis (the default); negative values are
	// rejected by Validate.
	AnalysisEvery int
	// AnalysisBins is the number of P(k) bins (default 16; must be ≥1).
	AnalysisBins int
	// FOFLinking is the FOF linking length as a fraction of the mean
	// interparticle spacing (default 0.2, the survey standard; must be
	// positive, and the resulting length must fit inside the overload
	// shell).
	FOFLinking float64
	// MinHaloSize is the minimum FOF group membership reported in halo
	// catalogs (default 10; must be ≥1).
	MinHaloSize int
	// AnalysisDir, when non-empty, emits every in-situ product through the
	// snapshot package: a per-rank halo catalog and a rank-0 power
	// spectrum per analysis step. Empty keeps results in memory only
	// (Simulation.LastAnalysis).
	AnalysisDir string

	// Checkpointing (the paper-era production campaigns ran as chains of
	// restarts; see DESIGN.md "Checkpoint / restart"). CheckpointEvery
	// writes a restart-exact checkpoint — one collective gio container per
	// state product — after every CheckpointEvery-th full step, into a
	// step%06d subdirectory of CheckpointDir. 0 disables cadenced
	// checkpoints (the default; Simulation.Checkpoint can still be called
	// manually); negative values are rejected by Validate, as is setting
	// one of the pair without the other. The active-particle write legally
	// overlaps the deferred end-of-step refresh (the replicas are written
	// after it completes), the same pattern as the in-situ P(k).
	CheckpointEvery int
	CheckpointDir   string

	// Load balancing (PR 8; ROADMAP item 2, arXiv:1410.2805 §short-range).
	// RebalanceThreshold arms the cost-driven domain rebalancer: when the
	// EWMA-smoothed per-rank cost imbalance (max/mean of kernel interactions
	// + walk node visits, AllGathered each step) exceeds the threshold, the
	// slab boundaries are recut to equalize cost and the particles migrate
	// to the new geometry. 0 disables rebalancing (the default — the uniform
	// decomposition is the bitwise oracle); values in (0,1] or negative are
	// rejected by Validate. RebalanceMinSteps is the hysteresis guard: the
	// minimum number of full steps between rebalances (default 2). Both
	// knobs alter which geometry each step runs under and therefore the
	// bitwise trajectory, so both are fingerprinted.
	RebalanceThreshold float64
	RebalanceMinSteps  int

	// StealWalks dispatches tree force walks through the pool's
	// deque-stealing scheduler (par.ForSteal) instead of the static
	// per-tree split, so a clustered leaf population self-balances across
	// workers. Bitwise-neutral (accumulation is per-target; pinned by the
	// steal equivalence tests), hence excluded from the fingerprint like
	// Threads.
	StealWalks bool

	// ICKind selects the initial-condition generator: "zeldovich" (default)
	// is the linear-theory realization; "halo" is the deliberately
	// clustered cold start (ic.GenerateClustered — one deep off-center
	// Plummer halo over a uniform background), the acceptance workload for
	// the load balancer. Part of the problem definition: fingerprinted.
	ICKind string

	// Checkpoint write resilience (PR 6). A transient collective write
	// failure (a flaky fsync, a momentarily full disk) retries up to
	// CheckpointRetries times with jittered exponential backoff starting at
	// CheckpointRetryBackoff, instead of failing the step. Every gio failure
	// path is collectively agreed, so all ranks observe the same error and
	// retry in lockstep; abandoned attempts leave no temporary files behind.
	// Zero values take the defaults (2 retries, 50ms); negative values are
	// rejected by Validate. Both are recovery knobs, not physics: they are
	// excluded from the config fingerprint, so a restart may change them.
	CheckpointRetries      int
	CheckpointRetryBackoff time.Duration

	// Observability (PR 10). TraceDir arms the span tracer and the per-rank
	// run journal: New (and Restore) arms obs tracing for the world, every
	// rank appends a JSONL step record to TraceDir/journal.r%03d.jsonl, and
	// Run flushes each rank's ring as Chrome trace-event JSON
	// (TraceDir/trace.r%03d.json — load in chrome://tracing or Perfetto).
	// Empty (the default) keeps tracing disarmed: the span calls left in the
	// hot path cost one atomic load each and never allocate. DebugAddr is
	// consumed by cmd/haccsim, which serves pprof, live metrics, and the
	// journal tail on that address from rank 0. Both are output knobs like
	// AnalysisDir — bitwise-neutral and excluded from the fingerprint, so a
	// restart may turn tracing on to diagnose a wedged campaign.
	TraceDir  string
	DebugAddr string
}

// WithDefaults returns the config with defaults filled in.
func (c Config) WithDefaults() Config {
	if c.Transfer == "" {
		c.Transfer = "eh-nowiggle"
	}
	if c.RCut == 0 {
		c.RCut = 3.0
	}
	if c.LeafSize == 0 {
		c.LeafSize = 64
	}
	if c.Overload == 0 {
		c.Overload = c.RCut + 1
	}
	if c.Threads == 0 {
		c.Threads = min(2, runtime.GOMAXPROCS(0))
	}
	if c.Eps == 0 {
		c.Eps = 0.01
	}
	if c.Sigma == 0 {
		c.Sigma = spectral.DefaultSigma
	}
	if c.NsFilter == 0 {
		c.NsFilter = spectral.DefaultNs
	}
	if c.SubCycles == 0 {
		c.SubCycles = 5
	}
	if c.FitGridN == 0 {
		c.FitGridN = 32
	}
	if c.NTrees == 0 {
		c.NTrees = 1
	}
	if c.Cosmo == (cosmology.Params{}) {
		c.Cosmo = cosmology.Default()
	}
	if c.AnalysisBins == 0 {
		c.AnalysisBins = 16
	}
	if c.FOFLinking == 0 {
		c.FOFLinking = 0.2
	}
	if c.MinHaloSize == 0 {
		c.MinHaloSize = 10
	}
	if c.RebalanceMinSteps == 0 {
		c.RebalanceMinSteps = 2
	}
	if c.ICKind == "" {
		c.ICKind = "zeldovich"
	}
	if c.CheckpointRetries == 0 {
		c.CheckpointRetries = 2
	}
	if c.CheckpointRetryBackoff == 0 {
		c.CheckpointRetryBackoff = 50 * time.Millisecond
	}
	return c
}

// Validate reports configuration errors (call after WithDefaults).
func (c Config) Validate() error {
	if c.NGrid < 8 {
		return fmt.Errorf("core: NGrid %d too small", c.NGrid)
	}
	if c.NParticles < 2 {
		return fmt.Errorf("core: NParticles %d too small", c.NParticles)
	}
	if c.BoxMpc <= 0 {
		return fmt.Errorf("core: BoxMpc must be positive")
	}
	if c.ZInit <= c.ZFinal {
		return fmt.Errorf("core: ZInit %g must exceed ZFinal %g", c.ZInit, c.ZFinal)
	}
	if c.Steps < 1 {
		return fmt.Errorf("core: Steps must be ≥1")
	}
	if err := c.Cosmo.Validate(); err != nil {
		return err
	}
	switch c.Transfer {
	case "eh", "eh-nowiggle", "bbks":
	default:
		return fmt.Errorf("core: unknown transfer function %q", c.Transfer)
	}
	if 2*c.Overload >= float64(c.NGrid) {
		return fmt.Errorf("core: overload %g too wide for grid %d", c.Overload, c.NGrid)
	}
	// In-situ analysis knobs: all analysis configuration is validated here,
	// in one place, so misconfiguration fails at New rather than misbehaving
	// steps later.
	if c.AnalysisEvery < 0 {
		return fmt.Errorf("core: AnalysisEvery %d must be ≥0 (0 disables in-situ analysis)", c.AnalysisEvery)
	}
	if c.AnalysisBins < 1 {
		return fmt.Errorf("core: AnalysisBins %d must be ≥1", c.AnalysisBins)
	}
	if c.FOFLinking <= 0 {
		return fmt.Errorf("core: FOFLinking %g must be positive (fraction of the mean interparticle spacing)", c.FOFLinking)
	}
	if c.MinHaloSize < 1 {
		return fmt.Errorf("core: MinHaloSize %d must be ≥1", c.MinHaloSize)
	}
	// Only the in-situ pipeline consumes FOFLinking automatically; ad-hoc
	// FindHalos calls validate their linking length at call time, so a
	// disabled pipeline must not reject configs over the defaulted value.
	if c.AnalysisEvery > 0 && c.NParticles > 0 && c.NGrid > 0 {
		spacing := float64(c.NGrid) / float64(c.NParticles)
		if b := c.FOFLinking * spacing; b > c.Overload {
			return fmt.Errorf("core: FOF linking length %g cells (FOFLinking %g × spacing %g) exceeds the overload width %g; raise Overload or shrink FOFLinking",
				b, c.FOFLinking, spacing, c.Overload)
		}
	}
	// Load-balancing knobs: the threshold is a max/mean ratio, so anything
	// at or below 1 would fire on every step forever.
	if c.RebalanceThreshold != 0 && c.RebalanceThreshold <= 1 {
		return fmt.Errorf("core: RebalanceThreshold %g must exceed 1 (0 disables rebalancing)", c.RebalanceThreshold)
	}
	if c.RebalanceMinSteps < 1 {
		return fmt.Errorf("core: RebalanceMinSteps %d must be ≥1", c.RebalanceMinSteps)
	}
	switch c.ICKind {
	case "zeldovich", "halo":
	default:
		return fmt.Errorf("core: unknown ICKind %q (want \"zeldovich\" or \"halo\")", c.ICKind)
	}
	// Checkpoint knobs: cadence and directory come as a pair, so a typo in
	// one cannot silently disable durability for a multi-day run.
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("core: CheckpointEvery %d must be ≥0 (0 disables cadenced checkpoints)", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.CheckpointDir == "" {
		return fmt.Errorf("core: CheckpointEvery %d needs CheckpointDir", c.CheckpointEvery)
	}
	if c.CheckpointEvery == 0 && c.CheckpointDir != "" {
		return fmt.Errorf("core: CheckpointDir %q needs CheckpointEvery ≥1", c.CheckpointDir)
	}
	if c.CheckpointRetries < 0 {
		return fmt.Errorf("core: CheckpointRetries %d must be ≥0 (0 takes the default)", c.CheckpointRetries)
	}
	if c.CheckpointRetryBackoff < 0 {
		return fmt.Errorf("core: CheckpointRetryBackoff %v must be ≥0 (0 takes the default)", c.CheckpointRetryBackoff)
	}
	return nil
}

// Fingerprint hashes every configuration field that affects the bitwise
// trajectory of the run — the problem definition, the integrator schedule,
// and the solver parameters (including ThreadedCIC, whose deposit order
// differs from the serial one). Output knobs, thread counts, and
// communication overlap are excluded: they are bitwise-neutral (pinned by
// the PR 1–3 equivalence tests), so a restart may legally change them. A
// checkpoint stores the fingerprint of the config that produced it, and
// Restore refuses a config whose fingerprint differs — restart-exactness
// cannot be promised across a physics change. Call on a defaulted config
// (WithDefaults), as Checkpoint does, so explicit and defaulted spellings
// of the same run match.
func (c Config) Fingerprint() uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211
	}
	mix(fmt.Sprintf("%d %d %g %#v %q %g %g %d %d %d %t",
		c.NGrid, c.NParticles, c.BoxMpc, c.Cosmo, c.Transfer,
		c.ZInit, c.ZFinal, c.Steps, c.SubCycles, c.Seed, c.FixedAmp))
	mix(fmt.Sprintf("%d %g %d %g %g %g %d %t %t %d %d %t",
		c.Solver, c.RCut, c.LeafSize, c.Overload, c.Eps, c.Sigma,
		c.NsFilter, c.DisableFilter, c.SlabFFT, c.FitGridN, c.NTrees,
		c.ThreadedCIC))
	// Load-balancing schedule and IC family (PR 8): which geometry a step
	// runs under — and which universe it starts from — is physics for
	// restart-exactness purposes. StealWalks is deliberately absent: the
	// stealing dispatch is bitwise ≡ the static one.
	mix(fmt.Sprintf("%g %d %q", c.RebalanceThreshold, c.RebalanceMinSteps, c.ICKind))
	return h
}

// TransferFunc resolves the configured transfer function.
func (c Config) TransferFunc() cosmology.TransferFunc {
	switch c.Transfer {
	case "eh":
		return cosmology.EisensteinHu(c.Cosmo)
	case "bbks":
		return cosmology.BBKS(c.Cosmo)
	default:
		return cosmology.EisensteinHuNoWiggle(c.Cosmo)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
