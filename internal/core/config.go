// Package core is the HACC framework proper: it wires the spectral
// particle-mesh long/medium-range solver, the switchable short-range
// backends (RCB tree "PPTreePM" as on BG/Q, or chaining-mesh "P3M" as on
// Roadrunner), particle overloading, and the SKS symplectic stepper into a
// full cosmological N-body simulation (paper §II–III).
package core

import (
	"fmt"
	"runtime"

	"hacc/internal/cosmology"
	"hacc/internal/spectral"
)

// SolverKind selects the short-range backend.
type SolverKind int

// Short-range backends.
const (
	// PPTreePM uses the rank-local RCB tree (BG/P, BG/Q configuration).
	PPTreePM SolverKind = iota
	// P3M uses the chaining-mesh direct particle-particle solver
	// (Roadrunner / GPU configuration).
	P3M
	// PMOnly disables the short-range force (long/medium range only).
	PMOnly
)

func (s SolverKind) String() string {
	switch s {
	case PPTreePM:
		return "PPTreePM"
	case P3M:
		return "P3M"
	default:
		return "PMOnly"
	}
}

// Config specifies a simulation.
type Config struct {
	// Problem definition.
	NGrid      int     // PM grid points per dimension
	NParticles int     // particles per dimension
	BoxMpc     float64 // box side in Mpc/h
	Cosmo      cosmology.Params
	Transfer   string // "eh", "eh-nowiggle" (default), or "bbks"
	ZInit      float64
	ZFinal     float64
	Steps      int // full (long-range) steps
	SubCycles  int // short-range sub-cycles per step (paper: 5–10)
	Seed       uint64
	FixedAmp   bool // fixed-amplitude initial conditions

	// Solver configuration.
	Solver        SolverKind
	RCut          float64 // short/long force matching radius in cells (default 3)
	LeafSize      int     // RCB fat-leaf capacity (default 64)
	Overload      float64 // overload shell width in cells (default RCut+1)
	Threads       int     // goroutines per rank for force kernels (default 2)
	Eps           float64 // softening added to s=r² (cells², default 0.01)
	Sigma         float64 // spectral filter width (default 0.8)
	NsFilter      int     // spectral filter exponent (default 3)
	DisableFilter bool    // ablation: no isotropizing filter
	SlabFFT       bool    // use the slab FFT decomposition
	FitGridN      int     // grid used for the kernel fit (default 32)
	NTrees        int     // RCB trees per rank (default 1; §VI load balancing)
	ThreadedCIC   bool    // threaded forward-CIC deposit (§VI)

	// DisableOverlap forces fully synchronous communication: every exchange
	// completes inside the call that posted it. By default the planned
	// Begin/End exchanges overlap communication with computation — the
	// density ghost-accumulate hides the deferred overload refresh, the
	// three acceleration-component fills pipeline against interpolation,
	// and Run defers the end-of-step refresh completion past the step
	// callback into the next step's long-range kick. Every overlap is
	// bitwise neutral; the only visible contract is that a Run callback
	// must not read Dom.Passive (it is mid-refresh there — call
	// Simulation.FinishRefresh first, or set DisableOverlap).
	DisableOverlap bool
}

// WithDefaults returns the config with defaults filled in.
func (c Config) WithDefaults() Config {
	if c.Transfer == "" {
		c.Transfer = "eh-nowiggle"
	}
	if c.RCut == 0 {
		c.RCut = 3.0
	}
	if c.LeafSize == 0 {
		c.LeafSize = 64
	}
	if c.Overload == 0 {
		c.Overload = c.RCut + 1
	}
	if c.Threads == 0 {
		c.Threads = min(2, runtime.GOMAXPROCS(0))
	}
	if c.Eps == 0 {
		c.Eps = 0.01
	}
	if c.Sigma == 0 {
		c.Sigma = spectral.DefaultSigma
	}
	if c.NsFilter == 0 {
		c.NsFilter = spectral.DefaultNs
	}
	if c.SubCycles == 0 {
		c.SubCycles = 5
	}
	if c.FitGridN == 0 {
		c.FitGridN = 32
	}
	if c.NTrees == 0 {
		c.NTrees = 1
	}
	if c.Cosmo == (cosmology.Params{}) {
		c.Cosmo = cosmology.Default()
	}
	return c
}

// Validate reports configuration errors (call after WithDefaults).
func (c Config) Validate() error {
	if c.NGrid < 8 {
		return fmt.Errorf("core: NGrid %d too small", c.NGrid)
	}
	if c.NParticles < 2 {
		return fmt.Errorf("core: NParticles %d too small", c.NParticles)
	}
	if c.BoxMpc <= 0 {
		return fmt.Errorf("core: BoxMpc must be positive")
	}
	if c.ZInit <= c.ZFinal {
		return fmt.Errorf("core: ZInit %g must exceed ZFinal %g", c.ZInit, c.ZFinal)
	}
	if c.Steps < 1 {
		return fmt.Errorf("core: Steps must be ≥1")
	}
	if err := c.Cosmo.Validate(); err != nil {
		return err
	}
	switch c.Transfer {
	case "eh", "eh-nowiggle", "bbks":
	default:
		return fmt.Errorf("core: unknown transfer function %q", c.Transfer)
	}
	if 2*c.Overload >= float64(c.NGrid) {
		return fmt.Errorf("core: overload %g too wide for grid %d", c.Overload, c.NGrid)
	}
	return nil
}

// TransferFunc resolves the configured transfer function.
func (c Config) TransferFunc() cosmology.TransferFunc {
	switch c.Transfer {
	case "eh":
		return cosmology.EisensteinHu(c.Cosmo)
	case "bbks":
		return cosmology.BBKS(c.Cosmo)
	default:
		return cosmology.EisensteinHuNoWiggle(c.Cosmo)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
