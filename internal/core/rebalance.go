package core

import (
	"fmt"
	"math"

	"hacc/internal/balance"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/obs"
	"hacc/internal/spectral"
)

// minSlabWidth is the narrowest slab a rebalance may produce, in cells: the
// overload shell plus the CIC+drift ghost must fit inside one slab so the
// field ghost geometry and the planned 26-stencil exchange keep their
// one-neighbor-deep structure. Identical to the field ghost width chosen in
// newSimulation.
func (s *Simulation) minSlabWidth() int { return int(math.Ceil(s.Cfg.Overload)) + 2 }

// observeCost folds this step's work into the balancer's cost model. The
// cost is the deterministic counter delta — kernel interactions plus
// tree-walk node visits since the last observation — not wall-clock: the
// counters are bitwise reproducible across runs and schedules, so every
// rank derives the identical cost vector and the collective rebalance
// decision cannot diverge. (Wall-clock imbalance is still reported, by the
// bench layer, from Timers.Busy.) Collective when the balancer is enabled.
func (s *Simulation) observeCost() {
	if s.balancer == nil {
		return
	}
	inter, walk := s.Counters.KernelInteractions, s.Counters.WalkNodes
	cost := float64(inter-s.lastInter) + float64(walk-s.lastWalk)
	s.lastInter, s.lastWalk = inter, walk
	s.balancer.Observe(s.Comm, cost)
}

// maybeRebalance fires a cost-driven rebalance when the smoothed max/mean
// imbalance has crossed the configured threshold. Runs at the top of step,
// before any physics, so a step never straddles two geometries. Collective:
// the decision is a pure function of collective model state.
func (s *Simulation) maybeRebalance() {
	if s.balancer == nil || !s.balancer.ShouldRebalance(s.StepIndex) {
		return
	}
	cuts, changed := s.costCuts()
	// Record the fire even when the computed cuts are infeasible or already
	// in place: the model resets and the MinSteps guard engages, so the
	// trigger cannot spin every step on a geometry it cannot improve.
	s.balancer.Fired(s.StepIndex)
	if !changed {
		return
	}
	s.RebalanceTo(cuts)
}

// costCuts builds cost-weighted per-axis cell histograms — each rank spreads
// its smoothed step cost uniformly over its active particles' cells — and
// equal-cost-partitions each decomposed axis. Returns the new cut arrays and
// whether they differ from the current geometry; an infeasible axis (slabs
// cannot all reach minSlabWidth) reports unchanged. Collective.
func (s *Simulation) costCuts() ([3][]int, bool) {
	n := s.Dec.N
	dims := s.Dec.Dims
	a := &s.Dom.Active
	var w float64
	if a.Len() > 0 {
		w = s.balancer.Costs()[s.Comm.Rank()] / float64(a.Len())
	}
	// One flat buffer for all three axes: a single reduction. The fold order
	// inside AllReduce is rank order, identical everywhere, so the summed
	// histogram — and the cuts derived from it — are bitwise collective.
	hist := make([]float64, n[0]+n[1]+n[2])
	hx, hy, hz := hist[:n[0]], hist[n[0]:n[0]+n[1]], hist[n[0]+n[1]:]
	for i := 0; i < a.Len(); i++ {
		hx[cellOf(a.X[i], n[0])] += w
		hy[cellOf(a.Y[i], n[1])] += w
		hz[cellOf(a.Z[i], n[2])] += w
	}
	global := mpi.AllReduce(s.Comm, hist, mpi.SumF64)

	minW := s.minSlabWidth()
	var cuts [3][]int
	changed := false
	off := 0
	for d := 0; d < 3; d++ {
		h := global[off : off+n[d]]
		off += n[d]
		if dims[d] == 1 {
			cuts[d] = []int{0, n[d]}
		} else {
			nc := balance.EqualCostCuts(h, dims[d], minW)
			if nc == nil {
				return cuts, false
			}
			cuts[d] = nc
		}
		if !equalCuts(cuts[d], s.Dec.Cuts()[d]) {
			changed = true
		}
	}
	return cuts, changed
}

// cellOf maps a wrapped coordinate to its cell index, clamped defensively
// against float edge cases (a coordinate rounding to exactly n).
func cellOf(x float32, n int) int {
	c := int(x)
	if c < 0 {
		c = 0
	}
	if c >= n {
		c = n - 1
	}
	return c
}

func equalCuts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameCuts reports whether two cut-array triples are identical.
func sameCuts(a, b [3][]int) bool {
	return equalCuts(a[0], b[0]) && equalCuts(a[1], b[1]) && equalCuts(a[2], b[2])
}

// validCuts checks checkpoint-recorded cut arrays against the grid and
// process-grid shape, returning an error instead of the panic
// grid.NewDecompCuts would raise on malformed input.
func validCuts(cuts [3][]int, n, dims [3]int) error {
	for d := 0; d < 3; d++ {
		cs := cuts[d]
		if len(cs) != dims[d]+1 {
			return fmt.Errorf("axis %d has %d cut boundaries, want %d", d, len(cs), dims[d]+1)
		}
		if cs[0] != 0 || cs[dims[d]] != n[d] {
			return fmt.Errorf("axis %d cuts %v do not span [0,%d]", d, cs, n[d])
		}
		for c := 0; c < dims[d]; c++ {
			if cs[c] >= cs[c+1] {
				return fmt.Errorf("axis %d cuts %v not strictly increasing", d, cs)
			}
		}
	}
	return nil
}

// RebalanceTo moves the run onto the given slab geometry: rebuild the
// decomposition and every structure bound to it, reassign each particle to
// its new geometric owner, and rebuild the overload replicas. The global
// particle state is untouched — a rebalance is a pure repartition, exact on
// the ID-sorted particle state. Collective; cuts must be identical on every
// rank and satisfy grid.NewDecompCuts.
func (s *Simulation) RebalanceTo(cuts [3][]int) {
	s.phase("rebalance", obs.SpanRebalance, func() { s.rebalanceTo(cuts) })
	s.Counters.Rebalances++
}

func (s *Simulation) rebalanceTo(cuts [3][]int) {
	// A deferred refresh reads the old geometry's plan; finish it first.
	s.FinishRefresh()
	s.adoptGeometry(cuts)
	// Reassign actives to their owners under the new cuts. A cut may move a
	// boundary many cells, far beyond the one-neighbor-deep planned stencil,
	// so this is the dense path. The migration count is drift bookkeeping,
	// not repartition traffic: put it back.
	mig := s.Dom.Migrated
	s.Dom.MigrateDense()
	s.Dom.Migrated = mig
	s.Dom.Refresh()
}

// adoptGeometry rebuilds the decomposition, domain, fields, exchangers, and
// Poisson plan for the given cuts, carrying the active particle storage
// over. Analysis plans bind the old domain and are dropped for lazy rebuild.
// Shared by the live rebalance and by Restore (which adopts a checkpoint's
// recorded geometry before loading particle blocks).
func (s *Simulation) adoptGeometry(cuts [3][]int) {
	n := s.Dec.N
	dec := grid.NewDecompCuts(n, s.Dec.Dims, cuts)
	dom := domain.New(s.Comm, dec, s.Cfg.Overload)
	dom.Active = s.Dom.Active
	dom.Migrated = s.Dom.Migrated
	s.Dec = dec
	s.Dom = dom

	ghost := s.minSlabWidth()
	box := dec.Box(s.Comm.Rank())
	s.rho = grid.NewField(n, box, ghost)
	s.rhoEx = grid.NewExchanger(s.Comm, dec, s.rho)
	for d := 0; d < 3; d++ {
		s.acc[d] = grid.NewField(n, box, ghost)
	}
	s.accEx[0] = grid.NewExchanger(s.Comm, dec, s.acc[0])
	s.accEx[1] = s.accEx[0]
	s.accEx[2] = s.accEx[0]
	s.poisson = spectral.NewPoisson(s.Comm, dec, spectral.Options{
		OmegaM: s.Cfg.Cosmo.OmegaM,
		Sigma:  s.Cfg.Sigma,
		Ns:     s.Cfg.NsFilter,
		Filter: !s.Cfg.DisableFilter,
		Slab:   s.Cfg.SlabFFT,
		Pool:   s.pool,
	})
	s.fof = nil
	s.power = nil
	if s.Cfg.AnalysisEvery > 0 {
		s.ensureAnalysis(s.Cfg.AnalysisBins)
	}
}

// Imbalance returns the balancer's current smoothed max/mean cost ratio
// (1 when balancing is disabled or the model is cold).
func (s *Simulation) Imbalance() float64 {
	if s.balancer == nil {
		return 1
	}
	return s.balancer.Imbalance()
}
