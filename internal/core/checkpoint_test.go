package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"hacc/internal/analysis"
	"hacc/internal/domain"
	"hacc/internal/mpi"
)

// pcopy is a bit-exact copy of one rank's particle store.
type pcopy struct {
	X, Y, Z, Vx, Vy, Vz []float32
	ID                  []uint64
}

func capture(p *domain.Particles) pcopy {
	return pcopy{
		X: append([]float32(nil), p.X...), Y: append([]float32(nil), p.Y...),
		Z:  append([]float32(nil), p.Z...),
		Vx: append([]float32(nil), p.Vx...), Vy: append([]float32(nil), p.Vy...),
		Vz: append([]float32(nil), p.Vz...),
		ID: append([]uint64(nil), p.ID...),
	}
}

// equalBits reports bitwise equality of two particle copies, including
// storage order.
func equalBits(a, b pcopy) bool {
	if len(a.ID) != len(b.ID) {
		return false
	}
	for i := range a.ID {
		if a.ID[i] != b.ID[i] ||
			math.Float32bits(a.X[i]) != math.Float32bits(b.X[i]) ||
			math.Float32bits(a.Y[i]) != math.Float32bits(b.Y[i]) ||
			math.Float32bits(a.Z[i]) != math.Float32bits(b.Z[i]) ||
			math.Float32bits(a.Vx[i]) != math.Float32bits(b.Vx[i]) ||
			math.Float32bits(a.Vy[i]) != math.Float32bits(b.Vy[i]) ||
			math.Float32bits(a.Vz[i]) != math.Float32bits(b.Vz[i]) {
			return false
		}
	}
	return true
}

// gatherSorted concentrates the global active particle state on rank 0 as
// ID-sorted records of 7 uint64 words (id, then the six float32 bit
// patterns) — the rank-count-independent view of the particle state.
func gatherSorted(c *mpi.Comm, p *domain.Particles) []uint64 {
	recs := make([]uint64, 0, 7*p.Len())
	for i := 0; i < p.Len(); i++ {
		recs = append(recs,
			p.ID[i],
			uint64(math.Float32bits(p.X[i])), uint64(math.Float32bits(p.Y[i])),
			uint64(math.Float32bits(p.Z[i])),
			uint64(math.Float32bits(p.Vx[i])), uint64(math.Float32bits(p.Vy[i])),
			uint64(math.Float32bits(p.Vz[i])))
	}
	all := mpi.Gather(c, 0, recs)
	if c.Rank() != 0 {
		return nil
	}
	n := len(all) / 7
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return all[7*idx[i]] < all[7*idx[j]] })
	out := make([]uint64, 0, len(all))
	for _, k := range idx {
		out = append(out, all[7*k:7*k+7]...)
	}
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func specCopy(ps *analysis.PowerSpectrum) *analysis.PowerSpectrum {
	return &analysis.PowerSpectrum{
		K: append([]float64(nil), ps.K...), P: append([]float64(nil), ps.P...),
		NModes:    append([]int64(nil), ps.NModes...),
		ShotNoise: ps.ShotNoise,
	}
}

// TestRestartMatchesUninterrupted is the subsystem's acceptance test: a run
// checkpointed at step 2 of 4 and restored continues to a final state that
// is bitwise identical to the uninterrupted run — per-rank particle storage
// and final P(k) — at the writing rank count, with or without the replica
// container (corrupted or deleted, forcing the refresh fallback). Restoring
// at a different rank count reassigns the records losslessly (the global
// ID-sorted bit state at the restore point is identical), and the continued
// run reproduces the reference P(k) to the accuracy set by float32
// summation-order differences across decompositions — cross-rank-count
// continuation cannot be bitwise because deposit and force sums follow the
// domain partition.
func TestRestartMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	const ranks = 4
	const bins = 8
	cfg := Config{
		NGrid: 16, NParticles: 16, BoxMpc: 120,
		ZInit: 20, ZFinal: 1, Steps: 4, SubCycles: 2,
		Seed: 11, Solver: PPTreePM,
	}
	ckroot := t.TempDir()

	// Uninterrupted reference run.
	finalRef := make([]pcopy, ranks)
	var refPk *analysis.PowerSpectrum
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(nil); err != nil {
			panic(err)
		}
		finalRef[c.Rank()] = capture(&s.Dom.Active)
		ps := s.PowerSpectrum(bins, true)
		if c.Rank() == 0 {
			refPk = specCopy(ps)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cadenced checkpoints every 2 steps, "killed" after
	// step 2 (the Simulation is simply abandoned).
	ckCfg := cfg
	ckCfg.CheckpointEvery = 2
	ckCfg.CheckpointDir = ckroot
	var ckGlobal []uint64
	err = mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, ckCfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 2; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		if g := gatherSorted(c, &s.Dom.Active); c.Rank() == 0 {
			ckGlobal = g
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stepDir := filepath.Join(ckroot, "step000002")

	// continueRun restores at p ranks and finishes the schedule, returning
	// per-rank final states, the final P(k), and the global sorted state at
	// the restore point.
	continueRun := func(p int) ([]pcopy, *analysis.PowerSpectrum, []uint64) {
		final := make([]pcopy, p)
		var pk *analysis.PowerSpectrum
		var restored []uint64
		err := mpi.Run(p, func(c *mpi.Comm) {
			s, err := Restore(c, stepDir, nil)
			if err != nil {
				panic(err)
			}
			if s.StepIndex != 2 || s.Z() >= cfg.ZInit {
				panic(fmt.Sprintf("restored at step %d a=%v", s.StepIndex, s.A))
			}
			if g := gatherSorted(c, &s.Dom.Active); c.Rank() == 0 {
				restored = g
			}
			if err := s.Run(nil); err != nil {
				panic(err)
			}
			final[c.Rank()] = capture(&s.Dom.Active)
			ps := s.PowerSpectrum(bins, true)
			if c.Rank() == 0 {
				pk = specCopy(ps)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return final, pk, restored
	}

	// Same rank count: everything must be bitwise identical.
	sameFinal, samePk, sameRestored := continueRun(ranks)
	if !equalU64(sameRestored, ckGlobal) {
		t.Error("restored global state differs from the checkpointed state")
	}
	for r := 0; r < ranks; r++ {
		if !equalBits(finalRef[r], sameFinal[r]) {
			t.Errorf("rank %d: restarted final particle state differs bitwise from the uninterrupted run", r)
		}
	}
	for i := range refPk.P {
		if math.Float64bits(samePk.P[i]) != math.Float64bits(refPk.P[i]) ||
			samePk.NModes[i] != refPk.NModes[i] {
			t.Fatalf("restarted P(k) bin %d = %v differs bitwise from uninterrupted %v", i, samePk.P[i], refPk.P[i])
		}
	}

	// Different rank counts (fewer and more readers than writers): the
	// restore itself is lossless — identical global bit state — and the
	// continued P(k) reproduces the reference to summation-order accuracy.
	for _, p := range []int{2, 8} {
		final, pk, restored := continueRun(p)
		if !equalU64(restored, ckGlobal) {
			t.Errorf("%d-rank restore: global state differs from the checkpointed state", p)
		}
		var n int
		for r := range final {
			n += len(final[r].ID)
		}
		if want := cfg.NParticles * cfg.NParticles * cfg.NParticles; n != want {
			t.Errorf("%d-rank restart finished with %d particles, want %d", p, n, want)
		}
		for i := range refPk.P {
			if refPk.P[i] == 0 {
				continue
			}
			if rel := math.Abs(pk.P[i]-refPk.P[i]) / math.Abs(refPk.P[i]); rel > 1e-3 {
				t.Errorf("%d-rank restart P(k) bin %d: relative difference %g vs uninterrupted", p, i, rel)
			}
			if pk.NModes[i] != refPk.NModes[i] {
				t.Errorf("%d-rank restart P(k) bin %d: %d modes vs %d", p, i, pk.NModes[i], refPk.NModes[i])
			}
		}
	}

	// Replica container corrupted, then deleted: restore falls back to an
	// ordinary refresh, which rebuilds bitwise-identical replicas — the
	// continuation must not change.
	repl := filepath.Join(stepDir, ReplicaFile)
	raw, err := os.ReadFile(repl)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x10 // inside the last block's payload or CRC
	if err := os.WriteFile(repl, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	corruptFinal, _, _ := continueRun(ranks)
	for r := 0; r < ranks; r++ {
		if !equalBits(finalRef[r], corruptFinal[r]) {
			t.Errorf("rank %d: restart with corrupt replica container diverged", r)
		}
	}
	if err := os.Remove(repl); err != nil {
		t.Fatal(err)
	}
	noReplFinal, noReplPk, _ := continueRun(ranks)
	for r := 0; r < ranks; r++ {
		if !equalBits(finalRef[r], noReplFinal[r]) {
			t.Errorf("rank %d: restart without replica container diverged", r)
		}
	}
	for i := range refPk.P {
		if math.Float64bits(noReplPk.P[i]) != math.Float64bits(refPk.P[i]) {
			t.Fatalf("no-replica restart P(k) differs bitwise in bin %d", i)
		}
	}
}

// TestCheckpointCadenceAndLatest pins the CheckpointEvery/CheckpointDir
// hook (step%06d directories at exactly the configured cadence) and
// LatestCheckpoint's skip-corrupt behavior.
func TestCheckpointCadenceAndLatest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	root := t.TempDir()
	cfg := Config{
		NGrid: 16, NParticles: 16, BoxMpc: 100,
		ZInit: 20, ZFinal: 2, Steps: 5, SubCycles: 1,
		Seed: 3, Solver: PMOnly,
		CheckpointEvery: 2, CheckpointDir: root,
	}
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(nil); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{2, 4} {
		dir := filepath.Join(root, fmt.Sprintf("step%06d", step))
		info, err := ReadCheckpointInfo(dir)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if info.StepIndex != step || info.NRanks != 2 || info.NGlobal != 16*16*16 {
			t.Fatalf("step %d info: %+v", step, info)
		}
		if info.Cfg.Seed != cfg.Seed || info.Cfg.NGrid != cfg.NGrid {
			t.Fatalf("step %d: config not preserved: %+v", step, info.Cfg)
		}
	}
	for _, step := range []int{1, 3, 5} {
		if _, err := os.Stat(filepath.Join(root, fmt.Sprintf("step%06d", step))); err == nil {
			t.Errorf("checkpoint written at off-cadence step %d", step)
		}
	}
	latest, err := LatestCheckpoint(root)
	if err != nil || filepath.Base(latest) != "step000004" {
		t.Fatalf("LatestCheckpoint = %q, %v", latest, err)
	}
	// A step directory resolves to itself; the root resolves to the latest.
	if dir, err := ResolveCheckpoint(latest); err != nil || dir != latest {
		t.Errorf("ResolveCheckpoint(step dir) = %q, %v", dir, err)
	}
	if dir, err := ResolveCheckpoint(root); err != nil || dir != latest {
		t.Errorf("ResolveCheckpoint(root) = %q, %v", dir, err)
	}
	// Corrupt one data byte of the newest state container (index stays
	// intact — the crash-after-rename shape): the restorable-checkpoint
	// probe verifies block CRCs too and must fall back to the previous
	// checkpoint.
	state := filepath.Join(latest, StateFile)
	raw, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 0x20
	if err := os.WriteFile(state, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	latest2, err := LatestCheckpoint(root)
	if err != nil || filepath.Base(latest2) != "step000002" {
		t.Fatalf("LatestCheckpoint after data corruption = %q, %v", latest2, err)
	}
	// Truncate it instead (index check): same fallback.
	if err := os.WriteFile(state, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	latest2, err = LatestCheckpoint(root)
	if err != nil || filepath.Base(latest2) != "step000002" {
		t.Fatalf("LatestCheckpoint after truncation = %q, %v", latest2, err)
	}
	// No checkpoints at all → descriptive error.
	if _, err := LatestCheckpoint(t.TempDir()); err == nil {
		t.Error("LatestCheckpoint accepted an empty directory")
	}
}

// TestRestoreValidation pins the loud-failure paths of Restore: missing or
// corrupt checkpoints, non-checkpoint containers, and physics-changing
// restart configs are all rejected with descriptive errors (no panics).
func TestRestoreValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	root := t.TempDir()
	cfg := Config{
		NGrid: 16, NParticles: 16, BoxMpc: 100,
		ZInit: 20, ZFinal: 2, Steps: 2, SubCycles: 1,
		Seed: 5, Solver: PMOnly,
		CheckpointEvery: 2, CheckpointDir: root,
	}
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Run(nil); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stepDir := filepath.Join(root, "step000002")

	// restoreErr runs Restore on a 2-rank world and returns every rank's
	// error: failures are collective (mpi.AllOK-agreed), so all ranks must
	// error, but the descriptive message lands on the rank that observed
	// the fault (the others report a generic collective failure).
	restoreErr := func(dir string, mutate func(*Config)) []error {
		got := make([]error, 2)
		err := mpi.Run(2, func(c *mpi.Comm) {
			_, e := Restore(c, dir, mutate)
			got[c.Rank()] = e
			if e == nil {
				panic("restore unexpectedly succeeded")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	expect := func(errs []error, want string) {
		t.Helper()
		found := false
		for _, err := range errs {
			if err == nil {
				t.Errorf("a rank restored successfully, want a collective error mentioning %q", want)
				return
			}
			if strings.Contains(err.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no rank's error (%v) mentions %q", errs, want)
		}
	}

	expect(restoreErr(filepath.Join(root, "nope"), nil), "not a restorable checkpoint")
	expect(restoreErr(stepDir, func(c *Config) { c.Seed = 999 }), "physics")
	expect(restoreErr(stepDir, func(c *Config) { c.NGrid = 32; c.NParticles = 32 }), "physics")

	// Neutral knobs may change freely.
	err = mpi.Run(2, func(c *mpi.Comm) {
		s, err := Restore(c, stepDir, func(c *Config) {
			c.Threads = 1
			c.DisableOverlap = true
			c.CheckpointEvery = 0
			c.CheckpointDir = ""
		})
		if err != nil {
			panic(err)
		}
		if s.StepIndex != 2 {
			panic("wrong step")
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt particle payload: the block CRC must catch it.
	state := filepath.Join(stepDir, StateFile)
	raw, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x04
	if err := os.WriteFile(state, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	expect(restoreErr(stepDir, nil), "CRC")
	if err := os.WriteFile(state, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A particle snapshot is a valid container but not a checkpoint.
	snapDir := t.TempDir()
	err = mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, Config{
			NGrid: 16, NParticles: 16, BoxMpc: 100,
			ZInit: 20, ZFinal: 2, Steps: 1, Solver: PMOnly, Seed: 5,
		})
		if err != nil {
			panic(err)
		}
		if err := s.SaveSnapshot(filepath.Join(snapDir, StateFile)); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	expect(restoreErr(snapDir, nil), "not a checkpoint state")
}

// TestCheckpointWarmAllocs pins the hot-path allocation contract: once the
// persistent writer and its scratch are warm, a checkpoint's data path
// allocates only O(1) bookkeeping (file descriptors, the collective index
// exchange, path strings) — nothing proportional to the particle count.
func TestCheckpointWarmAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation")
	}
	dir := t.TempDir()
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, Config{
			NGrid: 24, NParticles: 24, BoxMpc: 100,
			ZInit: 20, ZFinal: 2, Steps: 1, Solver: PMOnly, Seed: 7,
		})
		if err != nil {
			panic(err)
		}
		target := filepath.Join(dir, "warm")
		for i := 0; i < 3; i++ { // warm the writer, scratch, and meta buffers
			if err := s.Checkpoint(target); err != nil {
				panic(err)
			}
		}
		const iters = 10
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			if err := s.Checkpoint(target); err != nil {
				panic(err)
			}
		}
		runtime.ReadMemStats(&after)
		perOp := float64(after.Mallocs-before.Mallocs) / iters
		bytesPerOp := float64(after.TotalAlloc-before.TotalAlloc) / iters
		// 24³ particles ≈ 400 KB of column data per container; the warm
		// write path must not allocate anything of that order. The bound is
		// generous headroom over the measured O(1) bookkeeping.
		if perOp > 300 {
			t.Errorf("warm Checkpoint allocates %.0f objects/op, want O(1) bookkeeping only", perOp)
		}
		if bytesPerOp > 64<<10 {
			t.Errorf("warm Checkpoint allocates %.0f bytes/op, comparable to the particle data itself", bytesPerOp)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
