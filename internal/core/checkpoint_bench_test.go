package core

// Checkpoint I/O benchmarks (PR 5). BenchmarkCheckpoint measures the warm
// collective write path — MB/s of particle-state throughput and allocs/op
// (the data path reuses writer-owned scratch, so allocations are O(1)
// bookkeeping, not O(particles)) — and BenchmarkRestore the matching read
// path including CRC verification and replica restore. See the DESIGN.md
// benchmark index.

import (
	"path/filepath"
	"sync"
	"testing"

	"hacc/internal/mpi"
)

// ckptBytes is the per-container payload: 6 float32 columns + 1 uint64 ID
// column per particle, actives (state) plus replicas.
func ckptBytes(s *Simulation) int64 {
	per := int64(6*4 + 8)
	return per * int64(s.Dom.Active.Len()+s.Dom.Passive.Len())
}

func benchSim(b *testing.B, ranks int) (*Simulation, func()) {
	b.Helper()
	// One-rank world, held open while the benchmark loop drives the
	// simulation from the test goroutine (size-1 collectives never block).
	if ranks != 1 {
		b.Fatal("benchSim supports one rank")
	}
	done := make(chan struct{})
	ready := make(chan *Simulation)
	go func() {
		err := mpi.Run(1, func(c *mpi.Comm) {
			s, err := New(c, Config{
				NGrid: 32, NParticles: 32, BoxMpc: 150,
				ZInit: 24, ZFinal: 2, Steps: 1, Solver: PMOnly, Seed: 1,
			})
			if err != nil {
				panic(err)
			}
			ready <- s
			<-done
		})
		if err != nil {
			panic(err)
		}
	}()
	var once sync.Once
	return <-ready, func() { once.Do(func() { close(done) }) }
}

func BenchmarkCheckpoint(b *testing.B) {
	s, stop := benchSim(b, 1)
	defer stop()
	dir := filepath.Join(b.TempDir(), "ck")
	if err := s.Checkpoint(dir); err != nil { // warm the writer + scratch
		b.Fatal(err)
	}
	b.SetBytes(ckptBytes(s))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Checkpoint(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestore(b *testing.B) {
	s, stop := benchSim(b, 1)
	defer stop()
	dir := filepath.Join(b.TempDir(), "ck")
	if err := s.Checkpoint(dir); err != nil {
		b.Fatal(err)
	}
	bytes := ckptBytes(s)
	stop() // the restore worlds are spun up per iteration
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(1, func(c *mpi.Comm) {
			if _, err := Restore(c, dir, nil); err != nil {
				panic(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
