package core

import (
	"fmt"
	"math"
	"os"
	"time"

	"hacc/internal/analysis"
	"hacc/internal/balance"
	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/fault"
	"hacc/internal/grid"
	"hacc/internal/ic"
	"hacc/internal/machine"
	"hacc/internal/mpi"
	"hacc/internal/obs"
	"hacc/internal/par"
	"hacc/internal/shortrange"
	"hacc/internal/snapshot"
	"hacc/internal/spectral"
	"hacc/internal/timestep"
	"hacc/internal/tree"
)

// Simulation is one rank's view of a running HACC simulation.
type Simulation struct {
	Cfg    Config
	Comm   *mpi.Comm
	Dec    *grid.Decomp
	Dom    *domain.Domain
	LP     *cosmology.LinearPower
	Kernel *shortrange.Kernel

	poisson *spectral.Poisson
	rho     *grid.Field
	acc     [3]*grid.Field
	rhoEx   *grid.Exchanger
	accEx   [3]*grid.Exchanger
	sched   timestep.Schedule

	// A is the current scale factor; StepIndex counts completed full steps.
	A         float64
	StepIndex int

	// Mass of one tracer particle in internal units (mean density 1).
	ParticleMass float64
	// ParticleMassMsun is the particle mass in Msun/h.
	ParticleMassMsun float64

	// Timers and Counters accumulate per-rank performance data.
	Timers   *machine.Timers
	Counters machine.Counters

	// SubstepsDone counts executed short-range sub-cycles (for
	// time-per-substep reporting, matching the paper's metric).
	SubstepsDone int64

	// scratch, kickBuf, and pool persist across sub-cycles and steps so
	// the hot stepping path allocates nothing after the first sub-cycle
	// (§VI; the HACC architecture paper's persistent per-rank solver
	// state). pool is this rank's fixed set of worker goroutines.
	scratch shortScratch
	kickBuf []float32
	pool    *par.Pool

	// refreshPending marks an overload refresh whose Begin has been posted
	// but whose End is deferred (overlapped stepping); fillOps holds the
	// in-flight acceleration-component ghost fills.
	refreshPending bool
	fillOps        [3]*grid.GhostOp

	// fof and power are the persistent in-situ analysis plans (built in New
	// when Cfg.AnalysisEvery > 0, or lazily by FindHalos/PowerSpectrum).
	// LastAnalysis holds the most recent in-situ product; its halo and
	// spectrum storage is plan-owned and valid until the next analysis
	// pass.
	fof          *analysis.Plan
	power        *analysis.Power
	LastAnalysis *InSituResult

	// ckpt is the persistent checkpoint machinery (collective gio writer,
	// immutable config JSON + fingerprint, reusable meta/var/counter
	// buffers), built on first Checkpoint.
	ckpt *ckptState

	// balancer drives cost-based domain rebalancing (nil when
	// Cfg.RebalanceThreshold is zero). lastInter/lastWalk record the counter
	// values at the previous cost observation, so each step contributes a
	// delta rather than a running total.
	balancer  *balance.Balancer
	lastInter int64
	lastWalk  int64

	// Observability (PR 10): journal is the per-rank JSONL run journal (nil
	// unless Cfg.TraceDir is set — every method is nil-safe), lastPhaseSec
	// snapshots the timer totals at the previous step record so each record
	// carries per-phase deltas, and the gauges mirror step/a into the
	// world's metric registry for the live debug endpoint.
	journal      *obs.Journal
	lastPhaseSec map[string]float64
	gaugeStep    *obs.Gauge
	gaugeA       *obs.Gauge
}

// InSituResult is one in-situ analysis product: the rank's share of the
// halo catalog (each halo reported by exactly one rank) and the global
// power spectrum.
type InSituResult struct {
	Step     int
	A        float64
	Halos    []analysis.Halo
	Spectrum *analysis.PowerSpectrum
}

// shortScratch holds the buffers and solver structures kickShort reuses
// across sub-cycles: the gathered active+passive coordinate slices, the
// acceleration accumulators, and one lazily-created persistent instance of
// whichever short-range backend the config selects.
type shortScratch struct {
	x, y, z    []float32
	ax, ay, az []float32
	tr         *tree.Tree
	fr         *tree.Forest
	cm         *shortrange.ChainingMesh
}

// New builds the simulation and generates initial conditions. Collective.
func New(c *mpi.Comm, cfg Config) (*Simulation, error) {
	s, err := newSimulation(c, cfg)
	if err != nil {
		return nil, err
	}
	// Initial conditions.
	if s.Cfg.ICKind == "halo" {
		// Deliberately clustered cold start: the load-balancing stress
		// workload (one deep Plummer halo, decomposition-independent).
		err = ic.GenerateClustered(c, s.Dec, ic.ClusteredOptions{
			Np:   s.Cfg.NParticles,
			Seed: s.Cfg.Seed,
		}, s.Dom)
	} else {
		err = ic.Generate(c, s.Dec, s.LP, ic.Options{
			Np:     s.Cfg.NParticles,
			BoxMpc: s.Cfg.BoxMpc,
			AInit:  s.sched.AInit,
			Seed:   s.Cfg.Seed,
			Fixed:  s.Cfg.FixedAmp,
		}, s.Dom)
	}
	if err != nil {
		return nil, err
	}
	s.Dom.Refresh()
	s.A = s.sched.AInit
	if s.Cfg.AnalysisEvery > 0 {
		s.ensureAnalysis(s.Cfg.AnalysisBins)
	}
	return s, nil
}

// newSimulation builds every persistent structure of a rank — domain,
// fields, exchangers, spectral plan, short-range kernel, worker pool —
// without populating particles. New generates initial conditions on top;
// Restore loads a checkpoint instead. Collective (the kernel fit is
// broadcast from rank 0).
func newSimulation(c *mpi.Comm, cfg Config) (*Simulation, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := [3]int{cfg.NGrid, cfg.NGrid, cfg.NGrid}
	s := &Simulation{Cfg: cfg, Comm: c, Timers: machine.NewTimers()}
	s.pool = par.NewPool(cfg.Threads)
	s.Dec = grid.NewDecomp(n, c.Size())
	s.Dom = domain.New(c, s.Dec, cfg.Overload)
	s.LP = cosmology.NewLinearPower(cfg.Cosmo, cfg.TransferFunc())
	s.sched = timestep.Schedule{
		AInit:     cosmology.AFromZ(cfg.ZInit),
		AFinal:    cosmology.AFromZ(cfg.ZFinal),
		Steps:     cfg.Steps,
		SubCycles: cfg.SubCycles,
	}
	if err := s.sched.Validate(); err != nil {
		return nil, err
	}
	np3 := float64(cfg.NParticles) * float64(cfg.NParticles) * float64(cfg.NParticles)
	ng3 := float64(cfg.NGrid) * float64(cfg.NGrid) * float64(cfg.NGrid)
	s.ParticleMass = ng3 / np3
	s.ParticleMassMsun = cfg.Cosmo.ParticleMass(cfg.NParticles, cfg.BoxMpc)

	// Grid fields: the acceleration fields must cover the overloaded
	// particles for interpolation, and the density deposit halo must be
	// just as wide — actives migrate only at the end of a full step, so
	// during sub-cycling they may stray into the shell and still deposit
	// locally (the no-communication property of overloading, §II). The +2
	// is one cell for the CIC stencil plus one cell of drift margin per
	// step; faster particles are a physical error (raise Overload), which
	// the indexing check reports loudly.
	ghost := int(math.Ceil(cfg.Overload)) + 2
	box := s.Dec.Box(c.Rank())
	s.rho = grid.NewField(n, box, ghost)
	s.rhoEx = grid.NewExchanger(c, s.Dec, s.rho)
	for d := 0; d < 3; d++ {
		s.acc[d] = grid.NewField(n, box, ghost)
	}
	// The exchanger plan depends only on the shape, which is identical for
	// all three components: build once and reuse.
	s.accEx[0] = grid.NewExchanger(c, s.Dec, s.acc[0])
	s.accEx[1] = s.accEx[0]
	s.accEx[2] = s.accEx[0]

	s.poisson = spectral.NewPoisson(c, s.Dec, spectral.Options{
		OmegaM: cfg.Cosmo.OmegaM,
		Sigma:  cfg.Sigma,
		Ns:     cfg.NsFilter,
		Filter: !cfg.DisableFilter,
		Slab:   cfg.SlabFFT,
		Pool:   s.pool,
	})
	s.Counters.FFTGridN = cfg.NGrid

	if cfg.Solver != PMOnly {
		// Fit the short-range residual once on rank 0 and broadcast.
		var poly [6]float64
		if c.Rank() == 0 {
			res, err := shortrange.FitGridForce(shortrange.FitOptions{
				GridN: cfg.FitGridN,
				RCut:  cfg.RCut,
				Sigma: cfg.Sigma,
				Ns:    cfg.NsFilter,
				Seed:  int64(cfg.Seed),
			})
			if err != nil {
				panic(fmt.Sprintf("core: kernel fit failed: %v", err))
			}
			poly = res.Poly
		}
		coef := mpi.Bcast(c, 0, poly[:])
		copy(poly[:], coef)
		gm := 1.5 * cfg.Cosmo.OmegaM * s.ParticleMass / (4 * math.Pi)
		s.Kernel = shortrange.NewKernel(poly, cfg.RCut, cfg.Eps, gm)
	}
	if cfg.RebalanceThreshold > 0 {
		s.balancer = balance.New(balance.Options{
			Threshold: cfg.RebalanceThreshold,
			MinSteps:  cfg.RebalanceMinSteps,
		}, c.Size())
	}
	// Observability arming lives here, not in New, so Restore gets journal
	// and spans too. The gauges go into the world registry — the same one
	// the wire transport feeds its latency histogram — so the debug
	// endpoint's /debug/metrics shows physics progress and wire health side
	// by side.
	s.gaugeStep = c.World().Metrics().Gauge("sim.step")
	s.gaugeA = c.World().Metrics().Gauge("sim.a")
	if cfg.TraceDir != "" {
		if err := obs.ArmTracing(cfg.TraceDir, c.Size()); err != nil {
			return nil, err
		}
		j, err := obs.OpenJournal(cfg.TraceDir, c.Rank())
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.lastPhaseSec = map[string]float64{}
		if c.Rank() == 0 {
			obs.SetDebugRegistry(c.World().Metrics())
			obs.SetDebugJournal(j.Path())
		}
	}
	if cfg.DebugAddr != "" && c.Rank() == 0 {
		// The endpoint serves whatever is registered: metrics always, the
		// journal tail only when -trace armed one. Idempotent across
		// supervised in-process restarts (the first listener wins).
		obs.SetDebugRegistry(c.World().Metrics())
		if _, err := obs.EnableDebug(cfg.DebugAddr); err != nil {
			return nil, fmt.Errorf("core: debug endpoint %s: %w", cfg.DebugAddr, err)
		}
	}
	return s, nil
}

// phase runs fn under both observability layers at once: the named timer
// (the phase-split report) and a trace span (the per-rank timeline). With
// tracing disarmed the span half costs one atomic load.
func (s *Simulation) phase(name string, id obs.SpanID, fn func()) {
	t0 := obs.Begin()
	s.Timers.Time(name, fn)
	obs.End(s.Comm.Rank(), id, t0)
}

// ensureFOF builds the persistent halo-finder plan on first use (purely
// local construction).
func (s *Simulation) ensureFOF() {
	if s.fof == nil {
		s.fof = analysis.NewPlan(s.Dom, s.pool)
	}
}

// ensurePower builds (or rebuilds, when the bin count changes) the
// persistent P(k) estimator plan. Collective when it (re)builds; callers
// invoke it with identical arguments on every rank.
func (s *Simulation) ensurePower(bins int) {
	if s.power == nil || s.power.Bins() != bins {
		s.power = analysis.NewPower(s.Comm, s.Dec, s.pool, s.Cfg.BoxMpc, bins)
	}
}

// ensureAnalysis builds both in-situ plans.
func (s *Simulation) ensureAnalysis(bins int) {
	s.ensureFOF()
	s.ensurePower(bins)
}

// Z returns the current redshift.
func (s *Simulation) Z() float64 { return cosmology.ZFromA(s.A) }

// Step advances the simulation by one full long-range step (two PM kicks
// around SubCycles short-range SKS sub-cycles), then re-establishes domain
// ownership and overloading. Collective. Step is fully synchronous: the
// end-of-step exchange completes before it returns (Run overlaps it with
// the step callback instead).
func (s *Simulation) Step() error {
	if err := s.step(); err != nil {
		return err
	}
	if err := s.maybeAnalyze(); err != nil {
		return err
	}
	if err := s.maybeCheckpoint(); err != nil {
		return err
	}
	s.FinishRefresh()
	return nil
}

// step runs the integrator ops and posts the end-of-step exchange, leaving
// the refresh completion pending (unless overlap is disabled) so callers
// can hide it behind analysis or the next step's long-range kick.
func (s *Simulation) step() error {
	if s.StepIndex >= s.sched.Steps {
		return fmt.Errorf("core: all %d steps already taken", s.sched.Steps)
	}
	// Fault hook: "kill rank 2 at step 3" fires here, before any physics of
	// the step runs, so the surviving checkpoint state is from a completed
	// earlier step. One atomic load when no plan is armed.
	if inj := fault.Armed(); inj != nil {
		if err := inj.HitErr(fault.PointStep, s.Comm.Rank(), s.StepIndex); err != nil {
			return fmt.Errorf("core: step %d: %w", s.StepIndex, err)
		}
	}
	// Rebalance before any physics of the step, so the whole step runs under
	// one geometry and every rank makes the identical collective decision.
	s.maybeRebalance()
	stepT0 := obs.Begin()
	wallT0 := time.Now()
	a0, a1 := s.sched.StepBounds(s.StepIndex)
	ops := timestep.Ops(s.Cfg.Cosmo, a0, a1, s.sched.SubCycles)
	for _, op := range ops {
		switch op.Kind {
		case timestep.KickLong:
			t0 := obs.Begin()
			s.kickLong(op.W)
			obs.End(s.Comm.Rank(), obs.SpanKickLong, t0)
		case timestep.KickShort:
			s.FinishRefresh() // no-op except before the first passive read
			t0 := obs.Begin()
			s.kickShort(op.W)
			obs.End(s.Comm.Rank(), obs.SpanKickShort, t0)
			s.SubstepsDone++
		case timestep.Stream:
			s.FinishRefresh()
			t0 := obs.Begin()
			s.stream(op.W)
			obs.End(s.Comm.Rank(), obs.SpanStream, t0)
		}
	}
	// Migration cannot overlap anything (the refresh classification needs
	// the arrived actives), but the refresh wait can: post it here and let
	// the caller run analysis — or the next deposit+solve — before the End.
	s.phase(machine.CommPost, obs.SpanCommPost, func() { s.Dom.MigrateBegin() })
	s.phase(machine.CommWait, obs.SpanCommWait, func() { s.Dom.MigrateEnd() })
	s.phase(machine.CommPost, obs.SpanCommPost, func() { s.Dom.RefreshBegin() })
	s.refreshPending = true
	if s.Cfg.DisableOverlap {
		s.FinishRefresh()
	}
	s.observeCost()
	s.StepIndex++
	s.A = a1
	obs.End(s.Comm.Rank(), obs.SpanStep, stepT0)
	s.recordStep(a1-a0, time.Since(wallT0))
	return nil
}

// recordStep appends this completed step to the run journal and mirrors the
// run's progress into the metric gauges. No-op without a journal.
func (s *Simulation) recordStep(da float64, wall time.Duration) {
	s.gaugeStep.Set(float64(s.StepIndex))
	s.gaugeA.Set(s.A)
	if s.journal == nil {
		return
	}
	// Timers accumulate for the life of the rank; the record carries this
	// step's contribution, so diff against the previous step's totals.
	var phases map[string]float64
	cur := make(map[string]float64, len(s.lastPhaseSec))
	for _, pf := range s.Timers.Fractions() {
		cur[pf.Name] = pf.Seconds
		if d := pf.Seconds - s.lastPhaseSec[pf.Name]; d > 0 {
			if phases == nil {
				phases = make(map[string]float64)
			}
			phases[pf.Name] = d * 1e3
		}
	}
	s.lastPhaseSec = cur
	s.journal.Record(obs.StepRecord{
		Kind:       "step",
		Step:       s.StepIndex,
		A:          s.A,
		Da:         da,
		WallMs:     float64(wall) / 1e6,
		PhaseMs:    phases,
		Imbalance:  s.Imbalance(),
		Rebalances: s.Counters.Rebalances,
		Restarts:   s.Counters.Restarts,
	})
}

// FinishRefresh completes a pending overlapped overload refresh. It is a
// no-op when none is in flight; Run callbacks that read Dom.Passive must
// call it first.
func (s *Simulation) FinishRefresh() {
	if !s.refreshPending {
		return
	}
	s.phase(machine.CommWait, obs.SpanCommWait, func() { s.Dom.RefreshEnd() })
	s.refreshPending = false
}

// Run advances through all remaining steps, invoking cb (if non-nil) after
// every step. Unless Cfg.DisableOverlap is set, the end-of-step overload
// refresh stays in flight while cb runs and completes behind the next
// step's density deposit, so the exchange wait is hidden twice over; cb may
// read actives freely but must call FinishRefresh before touching
// Dom.Passive.
func (s *Simulation) Run(cb func(step int, a float64)) error {
	// Flush this rank's trace ring however the run ends — completion, a step
	// error, or a panic unwinding toward the supervisor — so a crashed run
	// still leaves its timeline on disk.
	defer func() {
		if obs.TraceArmed() {
			obs.FlushRank(s.Comm.Rank())
		}
	}()
	for s.StepIndex < s.sched.Steps {
		if err := s.step(); err != nil {
			return err
		}
		if err := s.maybeAnalyze(); err != nil {
			return err
		}
		if err := s.maybeCheckpoint(); err != nil {
			return err
		}
		if cb != nil {
			cb(s.StepIndex, s.A)
		}
	}
	s.FinishRefresh()
	return nil
}

// maybeAnalyze runs the in-situ pipeline when the current step index hits
// the configured cadence.
func (s *Simulation) maybeAnalyze() error {
	if s.Cfg.AnalysisEvery <= 0 || s.StepIndex%s.Cfg.AnalysisEvery != 0 {
		return nil
	}
	return s.Analyze()
}

// Analyze runs one in-situ analysis pass — the paper's sky-survey data
// products, produced without writing raw particle dumps. The power
// spectrum runs first: it reads only active particles, so its deposit,
// transform, and binning legally overlap the end-of-step overload refresh
// still in flight; the halo finder reads the passive replicas and
// therefore completes the refresh before linking. Results land in
// LastAnalysis (plan-owned storage, valid until the next pass) and, when
// Cfg.AnalysisDir is set, on disk via the snapshot package. Collective.
func (s *Simulation) Analyze() error {
	s.ensureAnalysis(s.Cfg.AnalysisBins)
	var res InSituResult
	s.phase("analysis", obs.SpanAnalysis, func() {
		res = InSituResult{Step: s.StepIndex, A: s.A}
		res.Spectrum = s.power.Measure(s.Dom, true)
		s.FinishRefresh()
		spacing := float64(s.Cfg.NGrid) / float64(s.Cfg.NParticles)
		res.Halos = s.fof.FindHalos(s.Cfg.FOFLinking*spacing, s.Cfg.MinHaloSize, s.ParticleMassMsun)
	})
	s.LastAnalysis = &res
	if s.Cfg.AnalysisDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.Cfg.AnalysisDir, 0o755); err != nil {
		return fmt.Errorf("core: in-situ output directory: %w", err)
	}
	h := snapshot.Header{
		NGrid:  uint32(s.Cfg.NGrid),
		BoxMpc: s.Cfg.BoxMpc,
		A:      s.A,
		OmegaM: s.Cfg.Cosmo.OmegaM,
		Seed:   s.Cfg.Seed,
	}
	cat := fmt.Sprintf("%s/halos_step%04d.r%d.bin", s.Cfg.AnalysisDir, s.StepIndex, s.Comm.Rank())
	if err := snapshot.SaveHalos(cat, h, res.Halos); err != nil {
		return fmt.Errorf("core: in-situ halo catalog: %w", err)
	}
	if s.Comm.Rank() == 0 {
		pk := fmt.Sprintf("%s/spectrum_step%04d.bin", s.Cfg.AnalysisDir, s.StepIndex)
		if err := snapshot.SaveSpectrum(pk, h, res.Spectrum); err != nil {
			return fmt.Errorf("core: in-situ spectrum: %w", err)
		}
	}
	return nil
}

// kickLong deposits the density, runs the spectral Poisson solve, and
// applies p += w·a_pm to actives and passives. Communication is posted
// early and completed late: the density ghost-accumulate flies while a
// deferred overload refresh unpacks, and the three acceleration-component
// fills are all posted before any completes, so component d's wait overlaps
// the interpolation of components < d. Every overlap is bitwise neutral
// (the deposit needs only actives; each fill touches only its own field;
// each momentum component updates its own array).
func (s *Simulation) kickLong(w float64) {
	s.phase("cic", obs.SpanCIC, func() {
		s.rho.Fill(0)
		if s.Cfg.ThreadedCIC {
			grid.DepositCICParallel(s.rho, s.Dom.Active.X, s.Dom.Active.Y, s.Dom.Active.Z, s.ParticleMass, s.Cfg.Threads)
		} else {
			grid.DepositCIC(s.rho, s.Dom.Active.X, s.Dom.Active.Y, s.Dom.Active.Z, s.ParticleMass)
		}
		s.Counters.CICOps += int64(s.Dom.Active.Len())
	})
	var rhoOp *grid.GhostOp
	s.phase(machine.CommPost, obs.SpanCommPost, func() { rhoOp = s.rhoEx.AccumulateBegin(s.rho) })
	// Complete a refresh deferred from the previous step while the ghost
	// sums are in flight (first passive read of this step is below).
	s.FinishRefresh()
	s.phase(machine.CommWait, obs.SpanCommWait, func() { rhoOp.End() })
	s.phase("fft", obs.SpanFFT, func() {
		s.poisson.Solve(s.rho, &s.acc)
		// One r2c forward + three c2r gradient inverses; Hermitian symmetry
		// halves each, so the flop model counts 4×½ = 2 complex-transform
		// equivalents.
		s.Counters.FFT3D += 2
	})
	s.phase(machine.CommPost, obs.SpanCommPost, func() {
		for d := 0; d < 3; d++ {
			s.fillOps[d] = s.accEx[d].FillBegin(s.acc[d])
		}
	})
	for d := 0; d < 3; d++ {
		s.phase(machine.CommWait, obs.SpanCommWait, func() { s.fillOps[d].End() })
		s.fillOps[d] = nil
		s.phase("cic", obs.SpanCIC, func() {
			s.applyGridKickComponent(&s.Dom.Active, d, w)
			s.applyGridKickComponent(&s.Dom.Passive, d, w)
		})
	}
	s.Counters.CICOps += 3 * int64(s.Dom.Active.Len()+s.Dom.Passive.Len())
}

// applyGridKick interpolates the PM acceleration and updates momenta for
// all three components (the non-pipelined form, kept for benchmarks and
// callers outside the overlapped step).
func (s *Simulation) applyGridKick(p *domain.Particles, w float64) {
	for d := 0; d < 3; d++ {
		s.applyGridKickComponent(p, d, w)
	}
}

// applyGridKickComponent interpolates one acceleration component and
// updates that momentum component. Both the CIC gather and the momentum
// update are threaded (per-particle independent, so the result is identical
// to the serial path), and the interpolation buffer is persistent.
func (s *Simulation) applyGridKickComponent(p *domain.Particles, d int, w float64) {
	n := p.Len()
	if n == 0 {
		return
	}
	if cap(s.kickBuf) < n {
		s.kickBuf = make([]float32, n)
	}
	buf := s.kickBuf[:n]
	grid.InterpCICParallel(s.acc[d], p.X, p.Y, p.Z, buf, w, s.pool)
	v := [3][]float32{p.Vx, p.Vy, p.Vz}[d]
	s.pool.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] += buf[i]
		}
	})
}

// kickShort evaluates the short-range force with the configured backend
// over actives+passives and applies p += w·a_sr.
func (s *Simulation) kickShort(w float64) {
	if s.Cfg.Solver == PMOnly {
		return
	}
	na := s.Dom.Active.Len()
	npass := s.Dom.Passive.Len()
	tot := na + npass
	if tot == 0 {
		return
	}
	// Gather into the persistent scratch (grown once, reused forever).
	sc := &s.scratch
	sc.x = append(append(sc.x[:0], s.Dom.Active.X...), s.Dom.Passive.X...)
	sc.y = append(append(sc.y[:0], s.Dom.Active.Y...), s.Dom.Passive.Y...)
	sc.z = append(append(sc.z[:0], s.Dom.Active.Z...), s.Dom.Passive.Z...)
	sc.ax = par.Resize(sc.ax, tot)
	sc.ay = par.Resize(sc.ay, tot)
	sc.az = par.Resize(sc.az, tot)
	x, y, z, ax, ay, az := sc.x, sc.y, sc.z, sc.ax, sc.ay, sc.az
	s.pool.For(tot, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ax[i], ay[i], az[i] = 0, 0, 0
		}
	})

	switch s.Cfg.Solver {
	case PPTreePM:
		if s.Cfg.NTrees > 1 {
			if sc.fr == nil {
				sc.fr = tree.NewForest(s.Cfg.LeafSize, s.Cfg.NTrees, s.Cfg.RCut)
			}
			t0 := time.Now()
			sp := obs.Begin()
			sc.fr.Rebuild(x, y, z)
			s.Timers.Add("build", time.Since(t0))
			obs.End(s.Comm.Rank(), obs.SpanBuild, sp)
			t0 = time.Now()
			sp = obs.Begin()
			if s.Cfg.StealWalks {
				s.Counters.StolenLeaves += sc.fr.ComputeForcesStealRanges(s.Kernel.ApplyRanges, s.Cfg.RCut, s.pool)
			} else {
				// Forest threading splits goroutines across sub-trees itself;
				// it does not use the flat worker pool.
				sc.fr.ComputeForcesRanges(s.Kernel.ApplyRanges, s.Cfg.RCut, s.Cfg.Threads)
			}
			obs.End(s.Comm.Rank(), obs.SpanWalk, sp)
			walkAndKernel := time.Since(t0)
			inter := sc.fr.Interactions()
			s.Counters.KernelInteractions += inter
			s.Counters.WalkNodes += sc.fr.NodesVisited()
			kshare := kernelShare(walkAndKernel, inter, sc.fr.NeighborCount())
			s.Timers.Add("kernel", kshare)
			s.Timers.Add("walk", walkAndKernel-kshare)
			sc.fr.AccelInto(ax, ay, az)
			break
		}
		if sc.tr == nil {
			sc.tr = tree.New(s.Cfg.LeafSize)
		}
		tr := sc.tr
		t0 := time.Now()
		sp := obs.Begin()
		tr.Rebuild(x, y, z)
		s.Timers.Add("build", time.Since(t0))
		obs.End(s.Comm.Rank(), obs.SpanBuild, sp)
		t0 = time.Now()
		sp = obs.Begin()
		if s.Cfg.StealWalks {
			s.Counters.StolenLeaves += tr.ComputeForcesStealRanges(s.Kernel.ApplyRanges, s.Cfg.RCut, s.pool)
		} else {
			tr.ComputeForcesPoolRanges(s.Kernel.ApplyRanges, s.Cfg.RCut, s.pool)
		}
		obs.End(s.Comm.Rank(), obs.SpanWalk, sp)
		walkAndKernel := time.Since(t0)
		inter := tr.Interactions.Load()
		s.Counters.KernelInteractions += inter
		s.Counters.WalkNodes += tr.NodesVisited.Load()
		// Split the measured time by the modeled kernel rate: the kernel
		// share is interactions at the sustained per-pair cost; remainder
		// is the walk. (Direct per-leaf timing would serialize the
		// goroutines' clocks; the paper reports the same split from
		// hardware counters.)
		kshare := kernelShare(walkAndKernel, inter, tr.NeighborCount.Load())
		s.Timers.Add("kernel", kshare)
		s.Timers.Add("walk", walkAndKernel-kshare)
		tr.AccelInto(ax, ay, az)
	case P3M:
		if sc.cm == nil {
			sc.cm = shortrange.NewMesh(s.Cfg.RCut)
		}
		cm := sc.cm
		t0 := time.Now()
		sp := obs.Begin()
		cm.Rebuild(x, y, z)
		s.Timers.Add("build", time.Since(t0))
		obs.End(s.Comm.Rank(), obs.SpanBuild, sp)
		t0 = time.Now()
		sp = obs.Begin()
		cm.ComputeForcesPoolRanges(s.Kernel.ApplyRanges, s.pool)
		s.Timers.Add("kernel", time.Since(t0))
		obs.End(s.Comm.Rank(), obs.SpanWalk, sp)
		s.Counters.KernelInteractions += cm.Interactions.Load()
		cm.AccelInto(ax, ay, az)
	}

	// Threaded momentum update over both particle sets: shards of the
	// combined (active-first) index range map directly onto the scratch
	// acceleration layout.
	wv := float32(w)
	act, pas := &s.Dom.Active, &s.Dom.Passive
	s.pool.For(tot, func(lo, hi int) {
		aEnd, pBegin := splitAtActive(na, lo, hi)
		for i := lo; i < aEnd; i++ {
			act.Vx[i] += wv * ax[i]
			act.Vy[i] += wv * ay[i]
			act.Vz[i] += wv * az[i]
		}
		for i := pBegin; i < hi; i++ {
			j := i - na
			pas.Vx[j] += wv * ax[i]
			pas.Vy[j] += wv * ay[i]
			pas.Vz[j] += wv * az[i]
		}
	})
}

// splitAtActive clamps a shard [lo,hi) of the combined active-first index
// range against the active prefix [0,na): active indices are [lo,aEnd),
// passive combined indices are [pBegin,hi) (subtract na for the passive-
// local index). Shared by every loop over the combined particle layout.
func splitAtActive(na, lo, hi int) (aEnd, pBegin int) {
	aEnd = hi
	if aEnd > na {
		aEnd = na
	}
	pBegin = lo
	if pBegin < na {
		pBegin = na
	}
	return
}

// kernelShare estimates the kernel's share of the combined walk+kernel
// time from the interaction-to-gather ratio.
func kernelShare(total time.Duration, interactions, gathered int64) time.Duration {
	if interactions <= 0 {
		return 0
	}
	// Gather cost per neighbor copied is ~1/8 of a pair interaction.
	k := float64(interactions)
	g := float64(gathered) / 8
	return time.Duration(float64(total) * k / (k + g))
}

// stream advances positions x += w·p for actives and passives, sharded
// across the worker pool (per-particle independent, so identical to
// serial).
func (s *Simulation) stream(w float64) {
	t0 := time.Now()
	wv := float32(w)
	act, pas := &s.Dom.Active, &s.Dom.Passive
	na := act.Len()
	s.pool.For(na+pas.Len(), func(lo, hi int) {
		aEnd, pBegin := splitAtActive(na, lo, hi)
		for i := lo; i < aEnd; i++ {
			act.X[i] += wv * act.Vx[i]
			act.Y[i] += wv * act.Vy[i]
			act.Z[i] += wv * act.Vz[i]
		}
		for i := pBegin; i < hi; i++ {
			j := i - na
			pas.X[j] += wv * pas.Vx[j]
			pas.Y[j] += wv * pas.Vy[j]
			pas.Z[j] += wv * pas.Vz[j]
		}
	})
	s.Timers.Add("stream", time.Since(t0))
}

// PowerSpectrum measures P(k) of the current particle distribution on the
// persistent pencil-r2c estimator plan (built on first use, rebuilt only
// when the bin count changes). The returned spectrum is caller-owned — it
// stays valid across later measurements; zero-allocation consumers use
// the plan's Measure directly. Collective.
func (s *Simulation) PowerSpectrum(bins int, subtractShot bool) *analysis.PowerSpectrum {
	s.ensurePower(bins)
	ps := s.power.Measure(s.Dom, subtractShot)
	return &analysis.PowerSpectrum{
		K:         append([]float64(nil), ps.K...),
		P:         append([]float64(nil), ps.P...),
		NModes:    append([]int64(nil), ps.NModes...),
		ShotNoise: ps.ShotNoise,
	}
}

// FindHalos runs the distributed FOF finder on the persistent analysis
// plan; b is the linking length as a fraction of the mean interparticle
// spacing (0.2 is standard). It reads the passive replicas, so it
// completes any overlapped refresh first. Each halo is reported by exactly
// one rank; the returned slice is plan-owned, valid until the next call.
// Collective.
func (s *Simulation) FindHalos(b float64, minN int) []analysis.Halo {
	s.FinishRefresh()
	s.ensureFOF()
	spacing := float64(s.Cfg.NGrid) / float64(s.Cfg.NParticles)
	return s.fof.FindHalos(b*spacing, minN, s.ParticleMassMsun)
}

// SaveSnapshot writes this rank's active particles to path as a particle
// snapshot container carrying the run's header (grid, box, scale factor,
// cosmology, seed). Per-rank products use per-rank paths, as in haccsim.
func (s *Simulation) SaveSnapshot(path string) error {
	h := snapshot.Header{
		NGrid:  uint32(s.Cfg.NGrid),
		BoxMpc: s.Cfg.BoxMpc,
		A:      s.A,
		OmegaM: s.Cfg.Cosmo.OmegaM,
		Seed:   s.Cfg.Seed,
	}
	return snapshot.SaveFile(path, h, &s.Dom.Active)
}

// DensityStats deposits the density and returns its statistics. Collective.
func (s *Simulation) DensityStats() analysis.DensityStats {
	s.rho.Fill(0)
	grid.DepositCIC(s.rho, s.Dom.Active.X, s.Dom.Active.Y, s.Dom.Active.Z, s.ParticleMass)
	s.rhoEx.Accumulate(s.rho)
	local := analysis.MeasureDensityStats(s.rho.Owned())
	// Combine across ranks.
	v := mpi.AllReduce(s.Comm, []float64{local.Variance * float64(len(s.rho.Owned()))}, mpi.SumF64)
	n := mpi.AllReduce(s.Comm, []float64{float64(len(s.rho.Owned()))}, mpi.SumF64)
	mx := mpi.AllReduce(s.Comm, []float64{local.Max}, mpi.MaxF64)
	mn := mpi.AllReduce(s.Comm, []float64{local.Min}, mpi.MinF64)
	return analysis.DensityStats{
		Variance: v[0] / n[0],
		Max:      mx[0],
		Min:      mn[0],
		NegFrac:  local.NegFrac,
	}
}

// GlobalCounters reduces the per-rank counters across the communicator. The
// communication totals come from each rank's own Comm.Stats() slot and merge
// through the same collective — never by reading peers' memory, which does
// not exist when ranks are separate OS processes on a wire transport.
func (s *Simulation) GlobalCounters() machine.Counters {
	cs := s.Comm.Stats()
	vals := []int64{s.Counters.KernelInteractions, s.Counters.FFT3D, s.Counters.CICOps,
		s.Counters.WalkNodes, s.Counters.StolenLeaves,
		cs.Msgs, cs.Bytes, cs.WireMsgs, cs.WireBytes}
	tot := mpi.AllReduce(s.Comm, vals, mpi.SumI64)
	return machine.Counters{
		KernelInteractions: tot[0],
		FFT3D:              s.Counters.FFT3D, // global transforms, not per-rank sums
		FFTGridN:           s.Counters.FFTGridN,
		CICOps:             tot[2],
		WalkNodes:          tot[3],
		StolenLeaves:       tot[4],
		MsgsSent:           tot[5],
		BytesSent:          tot[6],
		WireMsgs:           tot[7],
		WireBytes:          tot[8],
		// Collective events, identical on every rank: kept, not summed.
		Restarts:        s.Counters.Restarts,
		CkptRetries:     s.Counters.CkptRetries,
		CkptQuarantined: s.Counters.CkptQuarantined,
		Rebalances:      s.Counters.Rebalances,
	}
}

// MemoryMB estimates this rank's particle + field memory in MB (the
// Table II/III memory column).
func (s *Simulation) MemoryMB() float64 {
	bytes := s.Dom.MemoryBytes()
	bytes += int64(len(s.rho.Data)+3*len(s.acc[0].Data)) * 8
	return float64(bytes) / (1 << 20)
}
