package core

import (
	"fmt"
	"math"
	"time"

	"hacc/internal/analysis"
	"hacc/internal/cosmology"
	"hacc/internal/domain"
	"hacc/internal/grid"
	"hacc/internal/ic"
	"hacc/internal/machine"
	"hacc/internal/mpi"
	"hacc/internal/shortrange"
	"hacc/internal/spectral"
	"hacc/internal/timestep"
	"hacc/internal/tree"
)

// Simulation is one rank's view of a running HACC simulation.
type Simulation struct {
	Cfg    Config
	Comm   *mpi.Comm
	Dec    *grid.Decomp
	Dom    *domain.Domain
	LP     *cosmology.LinearPower
	Kernel *shortrange.Kernel

	poisson *spectral.Poisson
	rho     *grid.Field
	acc     [3]*grid.Field
	rhoEx   *grid.Exchanger
	accEx   [3]*grid.Exchanger
	sched   timestep.Schedule

	// A is the current scale factor; StepIndex counts completed full steps.
	A         float64
	StepIndex int

	// Mass of one tracer particle in internal units (mean density 1).
	ParticleMass float64
	// ParticleMassMsun is the particle mass in Msun/h.
	ParticleMassMsun float64

	// Timers and Counters accumulate per-rank performance data.
	Timers   *machine.Timers
	Counters machine.Counters

	// SubstepsDone counts executed short-range sub-cycles (for
	// time-per-substep reporting, matching the paper's metric).
	SubstepsDone int64
}

// New builds the simulation and generates initial conditions. Collective.
func New(c *mpi.Comm, cfg Config) (*Simulation, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := [3]int{cfg.NGrid, cfg.NGrid, cfg.NGrid}
	s := &Simulation{Cfg: cfg, Comm: c, Timers: machine.NewTimers()}
	s.Dec = grid.NewDecomp(n, c.Size())
	s.Dom = domain.New(c, s.Dec, cfg.Overload)
	s.LP = cosmology.NewLinearPower(cfg.Cosmo, cfg.TransferFunc())
	s.sched = timestep.Schedule{
		AInit:     cosmology.AFromZ(cfg.ZInit),
		AFinal:    cosmology.AFromZ(cfg.ZFinal),
		Steps:     cfg.Steps,
		SubCycles: cfg.SubCycles,
	}
	if err := s.sched.Validate(); err != nil {
		return nil, err
	}
	np3 := float64(cfg.NParticles) * float64(cfg.NParticles) * float64(cfg.NParticles)
	ng3 := float64(cfg.NGrid) * float64(cfg.NGrid) * float64(cfg.NGrid)
	s.ParticleMass = ng3 / np3
	s.ParticleMassMsun = cfg.Cosmo.ParticleMass(cfg.NParticles, cfg.BoxMpc)

	// Grid fields: the acceleration fields must cover the overloaded
	// particles for interpolation, and the density deposit halo must be
	// just as wide — actives migrate only at the end of a full step, so
	// during sub-cycling they may stray into the shell and still deposit
	// locally (the no-communication property of overloading, §II). The +2
	// is one cell for the CIC stencil plus one cell of drift margin per
	// step; faster particles are a physical error (raise Overload), which
	// the indexing check reports loudly.
	ghost := int(math.Ceil(cfg.Overload)) + 2
	box := s.Dec.Box(c.Rank())
	s.rho = grid.NewField(n, box, ghost)
	s.rhoEx = grid.NewExchanger(c, s.Dec, s.rho)
	for d := 0; d < 3; d++ {
		s.acc[d] = grid.NewField(n, box, ghost)
	}
	// The exchanger plan depends only on the shape, which is identical for
	// all three components: build once and reuse.
	s.accEx[0] = grid.NewExchanger(c, s.Dec, s.acc[0])
	s.accEx[1] = s.accEx[0]
	s.accEx[2] = s.accEx[0]

	s.poisson = spectral.NewPoisson(c, s.Dec, spectral.Options{
		OmegaM: cfg.Cosmo.OmegaM,
		Sigma:  cfg.Sigma,
		Ns:     cfg.NsFilter,
		Filter: !cfg.DisableFilter,
		Slab:   cfg.SlabFFT,
	})
	s.Counters.FFTGridN = cfg.NGrid

	if cfg.Solver != PMOnly {
		// Fit the short-range residual once on rank 0 and broadcast.
		var poly [6]float64
		if c.Rank() == 0 {
			res, err := shortrange.FitGridForce(shortrange.FitOptions{
				GridN: cfg.FitGridN,
				RCut:  cfg.RCut,
				Sigma: cfg.Sigma,
				Ns:    cfg.NsFilter,
				Seed:  int64(cfg.Seed),
			})
			if err != nil {
				panic(fmt.Sprintf("core: kernel fit failed: %v", err))
			}
			poly = res.Poly
		}
		coef := mpi.Bcast(c, 0, poly[:])
		copy(poly[:], coef)
		gm := 1.5 * cfg.Cosmo.OmegaM * s.ParticleMass / (4 * math.Pi)
		s.Kernel = shortrange.NewKernel(poly, cfg.RCut, cfg.Eps, gm)
	}

	// Initial conditions.
	err := ic.Generate(c, s.Dec, s.LP, ic.Options{
		Np:     cfg.NParticles,
		BoxMpc: cfg.BoxMpc,
		AInit:  s.sched.AInit,
		Seed:   cfg.Seed,
		Fixed:  cfg.FixedAmp,
	}, s.Dom)
	if err != nil {
		return nil, err
	}
	s.Dom.Refresh()
	s.A = s.sched.AInit
	return s, nil
}

// Z returns the current redshift.
func (s *Simulation) Z() float64 { return cosmology.ZFromA(s.A) }

// Step advances the simulation by one full long-range step (two PM kicks
// around SubCycles short-range SKS sub-cycles), then re-establishes domain
// ownership and overloading. Collective.
func (s *Simulation) Step() error {
	if s.StepIndex >= s.sched.Steps {
		return fmt.Errorf("core: all %d steps already taken", s.sched.Steps)
	}
	a0, a1 := s.sched.StepBounds(s.StepIndex)
	ops := timestep.Ops(s.Cfg.Cosmo, a0, a1, s.sched.SubCycles)
	for _, op := range ops {
		switch op.Kind {
		case timestep.KickLong:
			s.kickLong(op.W)
		case timestep.KickShort:
			s.kickShort(op.W)
			s.SubstepsDone++
		case timestep.Stream:
			s.stream(op.W)
		}
	}
	s.Timers.Time("exchange", func() {
		s.Dom.Migrate()
		s.Dom.Refresh()
	})
	s.StepIndex++
	s.A = a1
	return nil
}

// Run advances through all remaining steps, invoking cb (if non-nil) after
// every step.
func (s *Simulation) Run(cb func(step int, a float64)) error {
	for s.StepIndex < s.sched.Steps {
		if err := s.Step(); err != nil {
			return err
		}
		if cb != nil {
			cb(s.StepIndex, s.A)
		}
	}
	return nil
}

// kickLong deposits the density, runs the spectral Poisson solve, and
// applies p += w·a_pm to actives and passives.
func (s *Simulation) kickLong(w float64) {
	s.Timers.Time("cic", func() {
		s.rho.Fill(0)
		if s.Cfg.ThreadedCIC {
			grid.DepositCICParallel(s.rho, s.Dom.Active.X, s.Dom.Active.Y, s.Dom.Active.Z, s.ParticleMass, s.Cfg.Threads)
		} else {
			grid.DepositCIC(s.rho, s.Dom.Active.X, s.Dom.Active.Y, s.Dom.Active.Z, s.ParticleMass)
		}
		s.Counters.CICOps += int64(s.Dom.Active.Len())
	})
	s.Timers.Time("comm", func() { s.rhoEx.Accumulate(s.rho) })
	s.Timers.Time("fft", func() {
		s.poisson.Solve(s.rho, &s.acc)
		s.Counters.FFT3D += 4 // one forward + three gradient inverses
	})
	s.Timers.Time("comm", func() {
		for d := 0; d < 3; d++ {
			s.accEx[d].Fill(s.acc[d])
		}
	})
	s.Timers.Time("cic", func() {
		s.applyGridKick(&s.Dom.Active, w)
		s.applyGridKick(&s.Dom.Passive, w)
		s.Counters.CICOps += 3 * int64(s.Dom.Active.Len()+s.Dom.Passive.Len())
	})
}

// applyGridKick interpolates the PM acceleration and updates momenta.
func (s *Simulation) applyGridKick(p *domain.Particles, w float64) {
	n := p.Len()
	if n == 0 {
		return
	}
	buf := make([]float32, n)
	vel := [3][]float32{p.Vx, p.Vy, p.Vz}
	for d := 0; d < 3; d++ {
		grid.InterpCIC(s.acc[d], p.X, p.Y, p.Z, buf, w)
		v := vel[d]
		for i := 0; i < n; i++ {
			v[i] += buf[i]
		}
	}
}

// kickShort evaluates the short-range force with the configured backend
// over actives+passives and applies p += w·a_sr.
func (s *Simulation) kickShort(w float64) {
	if s.Cfg.Solver == PMOnly {
		return
	}
	na := s.Dom.Active.Len()
	npass := s.Dom.Passive.Len()
	tot := na + npass
	if tot == 0 {
		return
	}
	x := make([]float32, 0, tot)
	y := make([]float32, 0, tot)
	z := make([]float32, 0, tot)
	x = append(append(x, s.Dom.Active.X...), s.Dom.Passive.X...)
	y = append(append(y, s.Dom.Active.Y...), s.Dom.Passive.Y...)
	z = append(append(z, s.Dom.Active.Z...), s.Dom.Passive.Z...)
	ax := make([]float32, tot)
	ay := make([]float32, tot)
	az := make([]float32, tot)

	switch s.Cfg.Solver {
	case PPTreePM:
		if s.Cfg.NTrees > 1 {
			var fr *tree.Forest
			s.Timers.Time("build", func() {
				fr = tree.BuildForest(x, y, z, s.Cfg.LeafSize, s.Cfg.NTrees, s.Cfg.RCut)
			})
			t0 := time.Now()
			fr.ComputeForces(s.Kernel.Apply, s.Cfg.RCut, s.Cfg.Threads)
			walkAndKernel := time.Since(t0)
			inter := fr.Interactions()
			s.Counters.KernelInteractions += inter
			kshare := kernelShare(walkAndKernel, inter, fr.NeighborCount())
			s.Timers.Add("kernel", kshare)
			s.Timers.Add("walk", walkAndKernel-kshare)
			fr.AccelInto(ax, ay, az)
			break
		}
		var tr *tree.Tree
		s.Timers.Time("build", func() { tr = tree.Build(x, y, z, s.Cfg.LeafSize) })
		t0 := time.Now()
		tr.ComputeForces(s.Kernel.Apply, s.Cfg.RCut, s.Cfg.Threads)
		walkAndKernel := time.Since(t0)
		inter := tr.Interactions.Load()
		s.Counters.KernelInteractions += inter
		// Split the measured time by the modeled kernel rate: the kernel
		// share is interactions at the sustained per-pair cost; remainder
		// is the walk. (Direct per-leaf timing would serialize the
		// goroutines' clocks; the paper reports the same split from
		// hardware counters.)
		kshare := kernelShare(walkAndKernel, inter, tr.NeighborCount.Load())
		s.Timers.Add("kernel", kshare)
		s.Timers.Add("walk", walkAndKernel-kshare)
		tr.AccelInto(ax, ay, az)
	case P3M:
		var cm *shortrange.ChainingMesh
		s.Timers.Time("build", func() { cm = shortrange.BuildMesh(x, y, z, s.Cfg.RCut) })
		t0 := time.Now()
		cm.ComputeForces(s.Kernel.Apply, s.Cfg.Threads)
		s.Timers.Add("kernel", time.Since(t0))
		s.Counters.KernelInteractions += cm.Interactions.Load()
		cm.AccelInto(ax, ay, az)
	}

	wv := float32(w)
	for i := 0; i < na; i++ {
		s.Dom.Active.Vx[i] += wv * ax[i]
		s.Dom.Active.Vy[i] += wv * ay[i]
		s.Dom.Active.Vz[i] += wv * az[i]
	}
	for i := 0; i < npass; i++ {
		s.Dom.Passive.Vx[i] += wv * ax[na+i]
		s.Dom.Passive.Vy[i] += wv * ay[na+i]
		s.Dom.Passive.Vz[i] += wv * az[na+i]
	}
}

// kernelShare estimates the kernel's share of the combined walk+kernel
// time from the interaction-to-gather ratio.
func kernelShare(total time.Duration, interactions, gathered int64) time.Duration {
	if interactions <= 0 {
		return 0
	}
	// Gather cost per neighbor copied is ~1/8 of a pair interaction.
	k := float64(interactions)
	g := float64(gathered) / 8
	return time.Duration(float64(total) * k / (k + g))
}

// stream advances positions x += w·p for actives and passives.
func (s *Simulation) stream(w float64) {
	s.Timers.Time("stream", func() {
		wv := float32(w)
		for _, p := range []*domain.Particles{&s.Dom.Active, &s.Dom.Passive} {
			n := p.Len()
			for i := 0; i < n; i++ {
				p.X[i] += wv * p.Vx[i]
				p.Y[i] += wv * p.Vy[i]
				p.Z[i] += wv * p.Vz[i]
			}
		}
	})
}

// PowerSpectrum measures P(k) of the current particle distribution.
// Collective.
func (s *Simulation) PowerSpectrum(bins int, subtractShot bool) *analysis.PowerSpectrum {
	return analysis.MeasurePower(s.Comm, s.Dec, s.Dom, s.Cfg.BoxMpc, bins, subtractShot)
}

// FindHalos runs the overload-aware FOF finder; b is the linking length as
// a fraction of the mean interparticle spacing (0.2 is standard).
func (s *Simulation) FindHalos(b float64, minN int) []analysis.Halo {
	spacing := float64(s.Cfg.NGrid) / float64(s.Cfg.NParticles)
	return analysis.FindHalos(s.Dom, s.Dec, b*spacing, minN, s.ParticleMassMsun)
}

// DensityStats deposits the density and returns its statistics. Collective.
func (s *Simulation) DensityStats() analysis.DensityStats {
	s.rho.Fill(0)
	grid.DepositCIC(s.rho, s.Dom.Active.X, s.Dom.Active.Y, s.Dom.Active.Z, s.ParticleMass)
	s.rhoEx.Accumulate(s.rho)
	local := analysis.MeasureDensityStats(s.rho.Owned())
	// Combine across ranks.
	v := mpi.AllReduce(s.Comm, []float64{local.Variance * float64(len(s.rho.Owned()))}, mpi.SumF64)
	n := mpi.AllReduce(s.Comm, []float64{float64(len(s.rho.Owned()))}, mpi.SumF64)
	mx := mpi.AllReduce(s.Comm, []float64{local.Max}, mpi.MaxF64)
	mn := mpi.AllReduce(s.Comm, []float64{local.Min}, mpi.MinF64)
	return analysis.DensityStats{
		Variance: v[0] / n[0],
		Max:      mx[0],
		Min:      mn[0],
		NegFrac:  local.NegFrac,
	}
}

// GlobalCounters reduces the per-rank counters across the communicator.
func (s *Simulation) GlobalCounters() machine.Counters {
	vals := []int64{s.Counters.KernelInteractions, s.Counters.FFT3D, s.Counters.CICOps}
	tot := mpi.AllReduce(s.Comm, vals, mpi.SumI64)
	return machine.Counters{
		KernelInteractions: tot[0],
		FFT3D:              s.Counters.FFT3D, // global transforms, not per-rank sums
		FFTGridN:           s.Counters.FFTGridN,
		CICOps:             tot[2],
	}
}

// MemoryMB estimates this rank's particle + field memory in MB (the
// Table II/III memory column).
func (s *Simulation) MemoryMB() float64 {
	bytes := s.Dom.MemoryBytes()
	bytes += int64(len(s.rho.Data)+3*len(s.acc[0].Data)) * 8
	return float64(bytes) / (1 << 20)
}
