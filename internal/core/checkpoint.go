package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"hacc/internal/domain"
	"hacc/internal/gio"
	"hacc/internal/grid"
	"hacc/internal/machine"
	"hacc/internal/mpi"
	"hacc/internal/obs"
	"hacc/internal/snapshot"
)

// Checkpoint file names inside one step directory. The state container is
// sufficient to restore (replicas are rebuilt by a refresh when absent or
// stale); the replica container is the fast path that restores the passive
// store and its origin segments without any communication.
const (
	StateFile   = "state.gio"
	ReplicaFile = "replica.gio"
)

// ckptFormatVersion versions the checkpoint meta blob independently of the
// container layout underneath it. The value is a tag ("HCP2"), not a small
// integer, so a snapshot-product container handed to Restore by mistake is
// identified as such instead of being misparsed. HCP2 extends HCP1's bare
// config trailer to a trailer struct that also records the decomposition
// cut arrays, so rebalanced (non-uniform) geometries survive a restart.
const ckptFormatVersion = 0x48435032

// ckptCounterWords is the per-rank counter block stored in the state
// container: the machine counters plus the domain's migration count.
const ckptCounterWords = machine.CounterWords + 1

// ckptMetaSize is the fixed front of the meta blob; the state container
// appends the config JSON after it.
const ckptMetaSize = 48

// ckptMeta is the decoded fixed part of a checkpoint meta blob. Every
// field is identical on all ranks at checkpoint time (per-rank quantities
// live in the per-rank counter blocks instead).
type ckptMeta struct {
	NRanks       int
	StepIndex    int
	SubstepsDone int64
	A            float64
	CfgFP        uint64
	NGlobal      int64
}

// ckptTrailer is the JSON payload after the fixed meta words in the state
// container: the full config plus the decomposition cut arrays, so a restart
// needs no flags beyond the checkpoint path and resumes under the exact
// geometry the checkpoint was taken in (a rebalanced run is mid-flight in a
// non-uniform decomposition).
type ckptTrailer struct {
	Cfg  Config
	Cuts [3][]int
}

// ckptState is the persistent checkpoint machinery of one rank: the
// collective container writer with its scratch, the trailer JSON (config +
// geometry, rebuilt only when a rebalance changes the decomposition) and
// fingerprint, and reusable buffers for meta blobs, column declarations,
// and counter/origin tables — so a warm Checkpoint allocates nothing beyond
// file descriptors and the writer's collective index exchange.
type ckptState struct {
	w       *gio.Writer
	dec     *grid.Decomp // geometry the cached trailer was built for
	trailer []byte
	fp      uint64
	meta    []byte
	vars    []gio.Var
	words   [ckptCounterWords]int64
	orank   []int64
	on      []int64
}

// ensureCkpt builds the persistent checkpoint state on first use and
// refreshes the cached trailer whenever the decomposition has changed.
func (s *Simulation) ensureCkpt() *ckptState {
	if s.ckpt == nil {
		s.ckpt = &ckptState{w: gio.NewWriter(s.Comm), fp: s.Cfg.Fingerprint()}
	}
	ck := s.ckpt
	if ck.dec != s.Dec {
		js, err := json.Marshal(ckptTrailer{Cfg: s.Cfg, Cuts: s.Dec.Cuts()})
		if err != nil {
			// Config and cuts are plain scalars and slices; a marshal
			// failure is a programming error, not a runtime condition.
			panic(fmt.Sprintf("core: checkpoint trailer marshal: %v", err))
		}
		ck.trailer, ck.dec = js, s.Dec
	}
	return ck
}

// encodeMeta assembles the checkpoint meta blob into the persistent buffer:
// the fixed run-state words, plus (for the state container) the full config
// JSON so a restart needs no flags beyond the checkpoint path.
func (ck *ckptState) encodeMeta(s *Simulation, nGlobal int64, withCfg bool) []byte {
	var w [ckptMetaSize]byte
	binary.LittleEndian.PutUint32(w[0:], ckptFormatVersion)
	binary.LittleEndian.PutUint32(w[4:], uint32(s.Comm.Size()))
	binary.LittleEndian.PutUint64(w[8:], uint64(int64(s.StepIndex)))
	binary.LittleEndian.PutUint64(w[16:], uint64(s.SubstepsDone))
	binary.LittleEndian.PutUint64(w[24:], math.Float64bits(s.A))
	binary.LittleEndian.PutUint64(w[32:], ck.fp)
	binary.LittleEndian.PutUint64(w[40:], uint64(nGlobal))
	ck.meta = append(ck.meta[:0], w[:]...)
	if withCfg {
		ck.meta = append(ck.meta, ck.trailer...)
	}
	return ck.meta
}

// decodeCkptMeta splits and validates a checkpoint meta blob, returning the
// fixed state and the trailing trailer JSON (empty for replica containers).
func decodeCkptMeta(meta []byte) (ckptMeta, []byte, error) {
	var m ckptMeta
	if len(meta) < ckptMetaSize {
		return m, nil, fmt.Errorf("core: container meta blob is %d bytes, not a checkpoint state", len(meta))
	}
	if v := binary.LittleEndian.Uint32(meta[0:]); v != ckptFormatVersion {
		if v < 16 {
			// Snapshot products tag their meta blobs with small kind codes.
			return m, nil, fmt.Errorf("core: container is not a checkpoint state (holds snapshot product kind %d)", v)
		}
		return m, nil, fmt.Errorf("core: unsupported checkpoint format version %#x (this build reads %#x)", v, uint32(ckptFormatVersion))
	}
	m.NRanks = int(binary.LittleEndian.Uint32(meta[4:]))
	m.StepIndex = int(int64(binary.LittleEndian.Uint64(meta[8:])))
	m.SubstepsDone = int64(binary.LittleEndian.Uint64(meta[16:]))
	m.A = math.Float64frombits(binary.LittleEndian.Uint64(meta[24:]))
	m.CfgFP = binary.LittleEndian.Uint64(meta[32:])
	m.NGlobal = int64(binary.LittleEndian.Uint64(meta[40:]))
	return m, meta[ckptMetaSize:], nil
}

// Checkpoint writes a restart-exact checkpoint of the complete run state
// into dir: the state container (active particles in storage order, the
// per-rank counter block, and a meta blob holding the schedule position,
// scale factor, RNG seed and full config, and the config fingerprint) and
// the replica container (passive particles plus their origin segments).
//
// The state write reads only the active store, so when an end-of-step
// refresh is still in flight its collective write legally overlaps the
// exchange — the same pattern as the in-situ P(k); the refresh is completed
// only before the replica write. Each container is assembled under a
// temporary name and renamed into place, so an interrupted checkpoint
// never leaves a truncated file under a restorable name. Collective.
func (s *Simulation) Checkpoint(dir string) (err error) {
	retries0 := s.Counters.CkptRetries
	s.phase("checkpoint", obs.SpanCheckpoint, func() { err = s.checkpoint(dir) })
	if s.journal != nil {
		rec := obs.CheckpointRecord{
			Kind:    "checkpoint",
			Step:    s.StepIndex,
			Dir:     dir,
			OK:      err == nil,
			Retries: s.Counters.CkptRetries - retries0,
		}
		if err != nil {
			rec.Err = err.Error()
		}
		s.journal.Record(rec)
	}
	return err
}

func (s *Simulation) checkpoint(dir string) error {
	ck := s.ensureCkpt()
	// Directory creation is the only pre-collective step that can fail on
	// one rank alone; agree before anyone enters the collective write.
	merr := os.MkdirAll(dir, 0o755)
	if !mpi.AllOK(s.Comm, merr == nil) {
		if merr != nil {
			return fmt.Errorf("core: checkpoint directory: %w", merr)
		}
		return fmt.Errorf("core: checkpoint directory %s failed on another rank", dir)
	}
	nGlobal := s.Dom.NGlobal()

	// State container: actives + counters (overlaps a pending refresh).
	s.Counters.Encode(ck.words[:machine.CounterWords])
	ck.words[machine.CounterWords] = s.Dom.Migrated
	ck.vars = snapshot.AppendParticleVars(ck.vars[:0], &s.Dom.Active)
	ck.vars = append(ck.vars, gio.Var{Name: "counters", Type: gio.Int64, I64: ck.words[:]})
	if err := s.writeRetry(filepath.Join(dir, StateFile), ck.encodeMeta(s, nGlobal, true), ck.vars); err != nil {
		return fmt.Errorf("core: checkpoint state: %w", err)
	}

	// Replica container: passives + origin segments (needs the refresh).
	s.FinishRefresh()
	ck.orank = ck.orank[:0]
	ck.on = ck.on[:0]
	for _, o := range s.Dom.RefreshOrigins() {
		ck.orank = append(ck.orank, int64(o.Rank))
		ck.on = append(ck.on, int64(o.N))
	}
	ck.vars = snapshot.AppendParticleVars(ck.vars[:0], &s.Dom.Passive)
	ck.vars = append(ck.vars,
		gio.Var{Name: "origin_rank", Type: gio.Int64, I64: ck.orank},
		gio.Var{Name: "origin_n", Type: gio.Int64, I64: ck.on},
	)
	if err := s.writeRetry(filepath.Join(dir, ReplicaFile), ck.encodeMeta(s, nGlobal, false), ck.vars); err != nil {
		return fmt.Errorf("core: checkpoint replicas: %w", err)
	}
	return nil
}

// writeRetry runs one collective container write, retrying transient
// failures up to Config.CheckpointRetries times with jittered exponential
// backoff. Every gio failure path is agreed via AllOK (and abandoned
// attempts remove their temporary file), so all ranks observe the same
// error, sleep the same deterministic interval, and re-enter the collective
// write in lockstep — no rank can be retrying while a peer has given up.
func (s *Simulation) writeRetry(path string, meta []byte, vars []gio.Var) error {
	ck := s.ckpt
	var err error
	for attempt := 0; ; attempt++ {
		err = ck.w.Write(path, meta, vars)
		if err == nil || attempt >= s.Cfg.CheckpointRetries {
			return err
		}
		s.Counters.CkptRetries++
		d := s.Cfg.CheckpointRetryBackoff << attempt
		if max := 32 * s.Cfg.CheckpointRetryBackoff; d > max {
			d = max
		}
		// Deterministic jitter in [0, d/2): identical on every rank (the
		// inputs are collective state), so the backoff cannot skew ranks
		// apart, but successive attempts and steps spread out.
		z := uint64(s.StepIndex+1)*0x9e3779b97f4a7c15 + uint64(attempt+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		d += time.Duration(z % uint64(d/2+1))
		time.Sleep(d)
	}
}

// maybeCheckpoint writes a cadenced checkpoint when the completed step
// index hits Config.CheckpointEvery.
func (s *Simulation) maybeCheckpoint() error {
	if s.Cfg.CheckpointEvery <= 0 || s.StepIndex%s.Cfg.CheckpointEvery != 0 {
		return nil
	}
	return s.Checkpoint(filepath.Join(s.Cfg.CheckpointDir, fmt.Sprintf("step%06d", s.StepIndex)))
}

// Restore rebuilds a running Simulation from a checkpoint step directory,
// continuing the integration from the recorded step. The configuration is
// taken from the checkpoint itself; mutate (optional) may adjust
// bitwise-neutral knobs — thread count, overlap, analysis and checkpoint
// output — before construction, but any change to a physics-defining field
// is rejected via the config fingerprint, because restart-exactness cannot
// hold across a physics change.
//
// The communicator may have a different size than the writing run: each
// rank adopts a round-robin share of the writer blocks and the particles
// are reassigned to their geometric owners through the domain layer. At
// the writing rank count the restore is bitwise-exact — particles return
// to their ranks in storage order and the replica container restores the
// passive store directly (or, when it is missing or stale, a refresh
// rebuilds the identical replicas). Collective; failures are agreed via
// mpi.AllOK, so even a fault only one rank observes (its own block's CRC,
// a local descriptor limit) surfaces as one consistent error on every rank
// instead of stranding the others in a collective. mutate must be
// deterministic across ranks, like any collective argument.
func Restore(c *mpi.Comm, dir string, mutate func(*Config)) (*Simulation, error) {
	// agree turns a possibly rank-local failure into a collective outcome:
	// either every rank proceeds, or every rank returns an error.
	agree := func(err error, what string) error {
		if mpi.AllOK(c, err == nil) {
			return nil
		}
		if err != nil {
			return err
		}
		return fmt.Errorf("core: restoring %s: %s failed on another rank", dir, what)
	}
	gr, err := gio.Open(filepath.Join(dir, StateFile))
	if err != nil {
		err = fmt.Errorf("core: %s is not a restorable checkpoint: %w", dir, err)
	}
	if aerr := agree(err, "opening the state container"); aerr != nil {
		if gr != nil {
			gr.Close()
		}
		return nil, aerr
	}
	defer gr.Close()
	// From here to the block reads, every check runs on identical data (the
	// verified index and meta are the same bytes on every rank), so errors
	// are symmetric and plain returns cannot strand a collective.
	m, trJSON, err := decodeCkptMeta(gr.Meta())
	if err != nil {
		return nil, err
	}
	if gr.NumRanks() != m.NRanks {
		return nil, fmt.Errorf("core: checkpoint state declares %d ranks but holds %d blocks", m.NRanks, gr.NumRanks())
	}
	var trail ckptTrailer
	if err := json.Unmarshal(trJSON, &trail); err != nil {
		return nil, fmt.Errorf("core: checkpoint trailer: %w", err)
	}
	cfg := trail.Cfg
	if mutate != nil {
		mutate(&cfg)
	}
	cfg = cfg.WithDefaults()
	if fp := cfg.Fingerprint(); fp != m.CfgFP {
		return nil, fmt.Errorf("core: restart config changes the physics (fingerprint %016x, checkpoint %016x); only output, threading, and overlap knobs may differ across a restart", fp, m.CfgFP)
	}
	s, err := newSimulation(c, cfg)
	if err != nil {
		return nil, err
	}
	if m.StepIndex < 0 || m.StepIndex > s.sched.Steps {
		return nil, fmt.Errorf("core: checkpoint at step %d outside the configured schedule of %d steps", m.StepIndex, s.sched.Steps)
	}
	if a := s.sched.AAt(m.StepIndex); math.Float64bits(a) != math.Float64bits(m.A) {
		return nil, fmt.Errorf("core: checkpoint scale factor %v does not match schedule position %d (%v)", m.A, m.StepIndex, a)
	}
	// Adopt the recorded geometry before loading any blocks: at the writing
	// rank count the particle blocks were partitioned along these cuts, so
	// the bitwise round-robin restore below lands every particle on its
	// geometric owner directly. At a different rank count the recorded cuts
	// don't apply (the process grid differs); the uniform decomposition plus
	// the dense reassignment below handles it.
	if c.Size() == m.NRanks {
		if err := validCuts(trail.Cuts, s.Dec.N, s.Dec.Dims); err != nil {
			return nil, fmt.Errorf("core: checkpoint geometry: %w", err)
		}
		if !sameCuts(trail.Cuts, s.Dec.Cuts()) {
			s.adoptGeometry(trail.Cuts)
		}
	}

	// Adopt a round-robin share of the writer blocks: block order is
	// deterministic, so at the writing rank count every rank gets exactly
	// its own block back, in storage order. Reads touch per-rank blocks, so
	// a failure (one block's flipped CRC) can be asymmetric — agree on it.
	var words []int64
	var rerr error
	for fi := c.Rank(); fi < m.NRanks && rerr == nil; fi += c.Size() {
		if err := snapshot.ReadParticleRank(gr, fi, &s.Dom.Active); err != nil {
			rerr = fmt.Errorf("core: checkpoint state: %w", err)
			break
		}
		words, err = gio.ReadColumn(gr, fi, "counters", words[:0])
		if err != nil {
			rerr = fmt.Errorf("core: checkpoint state: %w", err)
			break
		}
		if len(words) != ckptCounterWords {
			rerr = fmt.Errorf("core: checkpoint counter block has %d words, want %d", len(words), ckptCounterWords)
			break
		}
		s.Counters.MergeRestored(words[:machine.CounterWords])
		s.Dom.Migrated += words[machine.CounterWords]
	}
	if aerr := agree(rerr, "reading state blocks"); aerr != nil {
		return nil, aerr
	}
	// FFT3D counts global transforms and must be identical on every rank;
	// ranks that adopted no blocks (more readers than writers) take the
	// maximum instead of staying at zero.
	s.Counters.FFT3D = mpi.AllReduce(c, []int64{s.Counters.FFT3D},
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})[0]
	if n := s.Dom.NGlobal(); n != m.NGlobal {
		return nil, fmt.Errorf("core: checkpoint holds %d particles, state meta declares %d", n, m.NGlobal)
	}
	s.StepIndex = m.StepIndex
	s.A = m.A
	s.SubstepsDone = m.SubstepsDone
	// Cost observations are counter deltas; the restored totals are history,
	// not this run's first step. Likewise the balancer starts a fresh epoch
	// at the restore point: its EWMA state is not checkpointed (it is a
	// heuristic, not physics), so the restart behaves like a rebalance just
	// fired — the model re-warms and the MinSteps hysteresis applies before
	// any new geometry change.
	s.lastInter = s.Counters.KernelInteractions
	s.lastWalk = s.Counters.WalkNodes
	if s.balancer != nil {
		s.balancer.Fired(m.StepIndex)
	}

	if c.Size() == m.NRanks {
		// Bitwise path: replicas restore directly when the replica container
		// is present and pairs with this state; otherwise a refresh rebuilds
		// the identical passive store (the planned exchange is deterministic
		// in the active storage order, which we just restored). The fallback
		// decision is collective: if any rank's replica block is unusable,
		// every rank refreshes — Refresh is collective and resets whatever
		// partial restore the healthy ranks made.
		if !mpi.AllOK(c, s.restoreReplicas(dir, m)) {
			s.Dom.Refresh()
		}
	} else {
		// Different rank count: reassign every record to its geometric owner
		// (arbitrary motion, so the dense path, not the 26-stencil plan),
		// then rebuild replicas. The migration bookkeeping is restored
		// state, not new physics — put it back afterwards.
		mig := s.Dom.Migrated
		s.Dom.MigrateDense()
		s.Dom.Migrated = mig
		s.Dom.Refresh()
	}
	if cfg.AnalysisEvery > 0 {
		s.ensureAnalysis(cfg.AnalysisBins)
	}
	return s, nil
}

// restoreReplicas loads the passive store and its origin segments from the
// replica container, reporting false (leaving the passive store empty) when
// the container is absent, unreadable, or stale — any of which simply
// routes the caller to an ordinary refresh, since replicas are always
// reconstructible from their owners.
func (s *Simulation) restoreReplicas(dir string, m ckptMeta) bool {
	gr, err := gio.Open(filepath.Join(dir, ReplicaFile))
	if err != nil {
		return false
	}
	defer gr.Close()
	rm, _, err := decodeCkptMeta(gr.Meta())
	if err != nil || gr.NumRanks() != m.NRanks ||
		rm.NRanks != m.NRanks || rm.StepIndex != m.StepIndex ||
		math.Float64bits(rm.A) != math.Float64bits(m.A) || rm.CfgFP != m.CfgFP {
		return false
	}
	bail := func() bool {
		s.Dom.Passive.Reset()
		return false
	}
	s.Dom.Passive.Reset()
	if err := snapshot.ReadParticleRank(gr, s.Comm.Rank(), &s.Dom.Passive); err != nil {
		return bail()
	}
	orank, err := gio.ReadColumn[int64](gr, s.Comm.Rank(), "origin_rank", nil)
	if err != nil {
		return bail()
	}
	on, err := gio.ReadColumn[int64](gr, s.Comm.Rank(), "origin_n", nil)
	if err != nil || len(on) != len(orank) {
		return bail()
	}
	origins := make([]domain.Origin, len(orank))
	for i := range orank {
		origins[i] = domain.Origin{Rank: int(orank[i]), N: int(on[i])}
	}
	if s.Dom.SetOrigins(origins) != nil {
		return bail()
	}
	return true
}

// LatestCheckpoint returns the newest restorable step directory under a
// cadenced checkpoint root: the highest step%06d subdirectory whose state
// container opens and CRC-verifies cleanly — the index and every data
// block (a crash can leave a renamed container whose index is intact but
// whose data pages never reached disk). Corrupt or half-written
// checkpoints are skipped, so a crash during the very last write still
// leaves the previous checkpoint reachable; the probe reads the file it
// will hand to Restore, which reads it anyway.
func LatestCheckpoint(root string) (string, error) {
	if _, err := os.Stat(root); err != nil {
		return "", fmt.Errorf("core: scanning checkpoints: %w", err)
	}
	for _, dir := range checkpointDirs(root) {
		gr, err := gio.Open(filepath.Join(dir, StateFile))
		if err != nil {
			continue
		}
		err = gr.Verify()
		gr.Close()
		if err == nil {
			return dir, nil
		}
	}
	return "", fmt.Errorf("core: no restorable checkpoint under %s", root)
}

// ResolveCheckpoint accepts either a checkpoint step directory or a
// cadenced checkpoint root and returns the step directory to restore (the
// newest restorable one, for a root). Only a cleanly absent state
// container falls through to the root scan — a present-but-unreadable one
// (permissions) surfaces its real error rather than a misleading
// "no checkpoint found".
func ResolveCheckpoint(path string) (string, error) {
	_, err := os.Stat(filepath.Join(path, StateFile))
	switch {
	case err == nil:
		return path, nil
	case os.IsNotExist(err):
		return LatestCheckpoint(path)
	default:
		return "", fmt.Errorf("core: checking %s: %w", path, err)
	}
}

// CheckpointInfo summarizes a checkpoint's run state for tools.
type CheckpointInfo struct {
	Cfg       Config
	Cuts      [3][]int // decomposition geometry at checkpoint time
	StepIndex int
	A         float64
	NRanks    int
	NGlobal   int64
}

// OpenCheckpoint opens a checkpoint step directory's state container for
// direct column access (haccpower reads particle columns straight out of
// it) and returns its decoded run state. The caller owns the reader.
func OpenCheckpoint(dir string) (*gio.Reader, CheckpointInfo, error) {
	var info CheckpointInfo
	gr, err := gio.Open(filepath.Join(dir, StateFile))
	if err != nil {
		return nil, info, fmt.Errorf("core: %s is not a restorable checkpoint: %w", dir, err)
	}
	m, trJSON, err := decodeCkptMeta(gr.Meta())
	if err != nil {
		gr.Close()
		return nil, info, err
	}
	var trail ckptTrailer
	if err := json.Unmarshal(trJSON, &trail); err != nil {
		gr.Close()
		return nil, info, fmt.Errorf("core: checkpoint trailer: %w", err)
	}
	info = CheckpointInfo{Cfg: trail.Cfg, Cuts: trail.Cuts, StepIndex: m.StepIndex, A: m.A, NRanks: m.NRanks, NGlobal: m.NGlobal}
	return gr, info, nil
}

// ReadCheckpointInfo reads a checkpoint's run state without touching the
// particle payload.
func ReadCheckpointInfo(dir string) (CheckpointInfo, error) {
	gr, info, err := OpenCheckpoint(dir)
	if err != nil {
		return info, err
	}
	gr.Close()
	return info, nil
}
