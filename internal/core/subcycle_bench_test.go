package core

import (
	"testing"

	"hacc/internal/mpi"
)

// benchSubCycleCfg is a single-rank Table II-like problem, small enough to
// iterate quickly but large enough that the tree has real depth.
func benchSubCycleCfg(solver SolverKind, threads int) Config {
	return Config{
		NGrid: 24, NParticles: 24, BoxMpc: 8 * 24,
		ZInit: 24, ZFinal: 10, Steps: 2, SubCycles: 3,
		Solver: PMOnly, Seed: 7, Threads: threads,
	}.withSolver(solver)
}

func (c Config) withSolver(s SolverKind) Config { c.Solver = s; return c }

// BenchmarkSubCycle measures one short-range sub-cycle (kickShort + stream)
// with ReportAllocs, so allocation churn on the per-substep path cannot be
// reintroduced silently: the persistent scratch keeps this at (amortized)
// zero allocations per sub-cycle.
func BenchmarkSubCycle(b *testing.B) {
	for _, tc := range []struct {
		name   string
		solver SolverKind
	}{{"tree", PPTreePM}, {"p3m", P3M}} {
		b.Run(tc.name, func(b *testing.B) {
			err := mpi.Run(1, func(c *mpi.Comm) {
				s, err := New(c, benchSubCycleCfg(tc.solver, 2))
				if err != nil {
					panic(err)
				}
				const w = 1e-3
				s.kickShort(w) // warm caches and scratch
				s.stream(w)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.kickShort(w)
					s.stream(w)
				}
				b.StopTimer()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkGridKick measures the PM-kick interpolation/momentum-update path
// (applyGridKick over actives+passives) with ReportAllocs; the persistent
// gather buffer keeps it allocation-free after warmup.
func BenchmarkGridKick(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, benchSubCycleCfg(PMOnly, 2))
		if err != nil {
			panic(err)
		}
		const w = 1e-3
		s.applyGridKick(&s.Dom.Active, w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.applyGridKick(&s.Dom.Active, w)
			s.applyGridKick(&s.Dom.Passive, w)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}
