package core

// Wire-world equivalence and process-level chaos tests (ISSUE 9): the
// goroutine world is the bitwise oracle a wire transport must match, first
// inside one process (RunWire loopback), then across real OS processes
// spawned through SuperviseProcs — including an attempt cut down by a real
// kill -9 and recovered from a checkpoint.
//
// The process-level tests re-exec this test binary: TestMain detects the
// helper environment and becomes one rank of the wire world instead of
// running the test suite.

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"hacc/internal/mpi"
)

const (
	envHelper   = "HACC_CORE_WIRE_HELPER" // marks the re-exec'd rank process
	envHelperCk = "HACC_HELPER_CKPT"      // checkpoint root for chaosCfg
	envHelperTo = "HACC_HELPER_OUT"       // where rank 0 writes the run product
	envHelperKS = "HACC_HELPER_KILL"      // step at which rank 1 SIGKILLs itself
)

func TestMain(m *testing.M) {
	if os.Getenv(envHelper) != "" {
		wireHelperMain()
		return // unreachable: wireHelperMain exits
	}
	os.Exit(m.Run())
}

// runProduct is what one full run yields for bitwise comparison: the global
// ID-sorted particle state and the P(k) estimate, both as raw bit patterns.
type runProduct struct {
	State []uint64
	Pk    []uint64
}

// collectProduct drives the remaining schedule and gathers the run product
// on rank 0 (zero-length on other ranks). cb is the per-step callback.
func collectProduct(c *mpi.Comm, s *Simulation, cb func(step int, a float64)) (runProduct, error) {
	if err := s.Run(cb); err != nil {
		return runProduct{}, err
	}
	ps := s.PowerSpectrum(8, true)
	g := gatherSorted(c, &s.Dom.Active)
	if c.Rank() != 0 {
		return runProduct{}, nil
	}
	pk := make([]uint64, 0, 3*len(ps.K))
	for i := range ps.K {
		pk = append(pk, math.Float64bits(ps.K[i]), math.Float64bits(ps.P[i]), uint64(ps.NModes[i]))
	}
	return runProduct{State: g, Pk: pk}, nil
}

// oracleProduct runs the full schedule on the in-process goroutine world —
// the reference every wire run must match bitwise.
func oracleProduct(t *testing.T, ranks int, cfg Config) runProduct {
	t.Helper()
	var out runProduct
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			panic(err)
		}
		p, err := collectProduct(c, s, nil)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			out = p
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameProduct(t *testing.T, label string, got, want runProduct) {
	t.Helper()
	if !equalU64(got.State, want.State) {
		t.Errorf("%s: global ID-sorted particle state differs from the goroutine oracle (%d vs %d words)",
			label, len(got.State), len(want.State))
	}
	if !equalU64(got.Pk, want.Pk) {
		t.Errorf("%s: P(k) bits differ from the goroutine oracle", label)
	}
}

// The ROADMAP acceptance bar: a full run at 4 ranks over the wire transport
// (TCP loopback and the unix fast path) produces bitwise-identical global
// ID-sorted particle state and P(k) vs the goroutine world.
func TestWireFullRunEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step simulation; skipped under -short (race CI)")
	}
	const ranks = 4
	cfg := chaosCfg("") // no checkpoints: pure stepping pipeline
	cfg.CheckpointEvery = 0
	want := oracleProduct(t, ranks, cfg)
	for _, transport := range []string{"tcp", "unix"} {
		var got runProduct
		err := mpi.RunWire(ranks, mpi.WireOptions{Transport: transport, Timeout: 60 * time.Second},
			func(c *mpi.Comm) {
				s, err := New(c, cfg)
				if err != nil {
					panic(err)
				}
				p, err := collectProduct(c, s, nil)
				if err != nil {
					panic(err)
				}
				if c.Rank() == 0 {
					got = p
				}
			})
		if err != nil {
			t.Fatalf("%s: %v", transport, err)
		}
		sameProduct(t, transport, got, want)
	}
}

// wireHelperMain is the re-exec'd rank-process body: join the wire world
// from the launcher environment, run chaosCfg's schedule (optionally
// SIGKILLing rank 1 mid-run on the first attempt), and write the run product
// from rank 0. It exits through the supervisor exit-code protocol.
func wireHelperMain() {
	ckroot := os.Getenv(envHelperCk)
	outPath := os.Getenv(envHelperTo)
	killStep := -1
	if v := os.Getenv(envHelperKS); v != "" {
		killStep, _ = strconv.Atoi(v)
	}
	resume := os.Getenv(EnvResume)
	w, err := mpi.ConnectEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(ExitPanic)
	}
	err = w.Run(func(c *mpi.Comm) {
		var s *Simulation
		var err error
		if resume != "" {
			s, err = Restore(c, resume, nil)
			if err != nil {
				panic(MarkRestoreFailure(resume, err))
			}
		} else {
			s, err = New(c, chaosCfg(ckroot))
			if err != nil {
				panic(err)
			}
		}
		p, err := collectProduct(c, s, func(step int, a float64) {
			// The real thing, not an injected panic: no deferred cleanup, no
			// exit status, no abort frame — peers find out from the dead
			// connection. First attempt only (EnvResume gates recovery).
			if resume == "" && step == killStep && c.Rank() == 1 {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		})
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			f, err := os.Create(outPath)
			if err != nil {
				panic(err)
			}
			if err := gob.NewEncoder(f).Encode(p); err != nil {
				panic(err)
			}
			if err := f.Close(); err != nil {
				panic(err)
			}
		}
	})
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(ExitCodeFor(err))
}

// superviseHelper runs one supervised multi-process world of re-exec'd test
// binaries and returns rank 0's run product.
func superviseHelper(t *testing.T, ranks int, ckroot string, killStep, maxRestarts int) (*Report, runProduct, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(t.TempDir(), "product.gob")
	env := []string{
		envHelper + "=1",
		envHelperCk + "=" + ckroot,
		envHelperTo + "=" + outPath,
	}
	if killStep >= 0 {
		env = append(env, envHelperKS+"="+strconv.Itoa(killStep))
	}
	rep, runErr := SuperviseProcs(ProcOptions{
		Ranks:       ranks,
		Transport:   "tcp",
		Command:     []string{exe},
		Env:         env,
		MaxRestarts: maxRestarts,
		Backoff:     time.Millisecond,
		GraceKill:   20 * time.Second,
		// Rebuilding the world after a kill must come through the checkpoint
		// path, so recovery resumes rather than restarting from scratch.
		CheckpointRoot: ckroot,
		Stdout:         os.Stdout,
		Stderr:         os.Stderr,
		Log:            func(line string) { t.Log(line) },
	})
	if runErr != nil {
		return rep, runProduct{}, runErr
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatalf("helper wrote no product: %v", err)
	}
	defer f.Close()
	var p runProduct
	if err := gob.NewDecoder(f).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return rep, p, nil
}

// Real OS processes over TCP loopback match the goroutine oracle bitwise —
// the acceptance bar crossed with actual process isolation, not goroutines.
func TestProcWorldEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped under -short (race CI)")
	}
	const ranks = 4
	ckroot := t.TempDir()
	want := oracleProduct(t, ranks, chaosCfg(ckroot))
	rep, got, err := superviseHelper(t, ranks, t.TempDir(), -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 0 {
		t.Errorf("clean run restarted %d times", rep.Restarts)
	}
	sameProduct(t, "proc/tcp", got, want)
}

// A rank process killed with SIGKILL mid-run: the peers observe the dead
// connection and exit through the abort protocol, the supervisor classifies
// the signal death as a crash, resumes every rank from the newest
// checkpoint, and the healed run's final state is bitwise identical to the
// uninterrupted oracle.
func TestProcKillRecoveryBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped under -short (race CI)")
	}
	const ranks = 4
	ckroot := t.TempDir()
	want := oracleProduct(t, ranks, chaosCfg(t.TempDir()))
	rep, got, err := superviseHelper(t, ranks, ckroot, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts < 1 {
		t.Fatalf("kill at step 3 caused no restart (incidents: %+v)", rep.Incidents)
	}
	if len(rep.Incidents) == 0 || rep.Incidents[0].Class != FailPanic {
		t.Errorf("signal death classified as %v, want %v (crash)", rep.Incidents, FailPanic)
	}
	if rep.Incidents[0].Resume == "" {
		t.Error("recovery did not resume from a checkpoint")
	}
	sameProduct(t, "proc/kill-9", got, want)
}
