package domain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hacc/internal/grid"
	"hacc/internal/mpi"
)

func TestParticlesBasics(t *testing.T) {
	var p Particles
	p.Append(1, 2, 3, 4, 5, 6, 7)
	p.Append(10, 20, 30, 40, 50, 60, 70)
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
	p.Swap(0, 1)
	if p.X[0] != 10 || p.ID[1] != 7 {
		t.Error("swap broken")
	}
	p.Truncate(1)
	if p.Len() != 1 || p.X[0] != 10 {
		t.Error("truncate broken")
	}
	p.Grow(100)
	if cap(p.X) < 101 {
		t.Error("grow did not reserve")
	}
	p.Reset()
	if p.Len() != 0 {
		t.Error("reset broken")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	var p Particles
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p.Append(rng.Float32(), rng.Float32(), rng.Float32(),
			rng.Float32(), rng.Float32(), rng.Float32(), uint64(i))
	}
	idx := []int{3, 7, 11}
	f := p.packFloatsInto(nil, idx, [3]float32{1, 2, 3})
	ids := p.packIDsInto(nil, idx)
	var q Particles
	q.unpack(f, ids)
	for j, i := range idx {
		if q.X[j] != p.X[i]+1 || q.Y[j] != p.Y[i]+2 || q.Z[j] != p.Z[i]+3 {
			t.Errorf("shifted position wrong for %d", j)
		}
		if q.Vx[j] != p.Vx[i] || q.ID[j] != p.ID[i] {
			t.Errorf("payload wrong for %d", j)
		}
	}
}

func TestWrapPos(t *testing.T) {
	cases := []struct{ in, want float32 }{
		{-0.5, 7.5}, {0, 0}, {7.999, 7.999}, {8, 0}, {9.25, 1.25}, {-8.5, 7.5}, {16.5, 0.5},
	}
	for _, c := range cases {
		if got := wrapPos(c.in, 8); math.Abs(float64(got-c.want)) > 1e-5 {
			t.Errorf("wrapPos(%g)=%g want %g", c.in, got, c.want)
		}
	}
}

// TestWrapPosLargeExcursion: the mod-based reduction must stay O(1) and
// exact for excursions of many box lengths (the old loop walked one box
// length per iteration), must agree bitwise with a single add/subtract for
// single wraps, and must always land in [0, n).
func TestWrapPosLargeExcursion(t *testing.T) {
	// Reference: the pre-refactor loop reduction.
	loopWrap := func(x float32, n int) float32 {
		fn := float32(n)
		for x < 0 {
			x += fn
		}
		for x >= fn {
			x -= fn
		}
		return x
	}
	for _, n := range []int{8, 12, 16} {
		// Bitwise agreement with the loop over moderate excursions.
		for x := float32(-4 * n); x < float32(4*n); x += 0.37 {
			if got, want := wrapPos(x, n), loopWrap(x, n); got != want {
				t.Fatalf("wrapPos(%g, %d) = %g, loop reference %g", x, n, got, want)
			}
		}
		// Extreme excursions (the loop would take ~|x|/n iterations).
		for _, x := range []float32{-1e7, -3.5e6, 2.9e6, 1e7, -1e3 * float32(n), 1e3*float32(n) + 0.25} {
			got := wrapPos(x, n)
			if got < 0 || got >= float32(n) {
				t.Errorf("wrapPos(%g, %d) = %g outside [0, %d)", x, n, got, n)
			}
		}
		// The rounded-up-remainder guard: a tiny negative x whose remainder
		// plus n rounds to n must clamp into range.
		if got := wrapPos(-1e-15, n); got < 0 || got >= float32(n) {
			t.Errorf("wrapPos(-1e-15, %d) = %g outside [0, %d)", n, got, n)
		}
	}
}

// scatterLattice fills each rank's Active set with the lattice sites it owns.
func scatterLattice(d *Domain, npside int, n [3]int) {
	step := float64(n[0]) / float64(npside)
	id := uint64(0)
	for x := 0; x < npside; x++ {
		for y := 0; y < npside; y++ {
			for z := 0; z < npside; z++ {
				px := (float64(x) + 0.5) * step
				py := (float64(y) + 0.5) * step
				pz := (float64(z) + 0.5) * step
				if d.Dec.RankOf(px, py, pz) == d.Comm.Rank() {
					d.Active.Append(float32(px), float32(py), float32(pz), 0, 0, 0, id)
				}
				id++
			}
		}
	}
}

func TestRefreshCountsAndGeometry(t *testing.T) {
	n := [3]int{16, 16, 16}
	const ov = 2.5
	for _, p := range []int{1, 2, 4, 8} {
		err := mpi.Run(p, func(c *mpi.Comm) {
			dec := grid.NewDecomp(n, p)
			d := New(c, dec, ov)
			scatterLattice(d, 16, n)
			if g := d.NGlobal(); g != 16*16*16 {
				t.Errorf("p=%d: global actives %d", p, g)
			}
			d.Refresh()
			// Every passive particle must lie in the overload shell:
			// within box+ov but outside the box.
			b := d.Box
			for i := 0; i < d.Passive.Len(); i++ {
				x, y, z := float64(d.Passive.X[i]), float64(d.Passive.Y[i]), float64(d.Passive.Z[i])
				in := x >= float64(b.Lo[0]) && x < float64(b.Hi[0]) &&
					y >= float64(b.Lo[1]) && y < float64(b.Hi[1]) &&
					z >= float64(b.Lo[2]) && z < float64(b.Hi[2])
				inShell := x >= float64(b.Lo[0])-ov && x < float64(b.Hi[0])+ov &&
					y >= float64(b.Lo[1])-ov && y < float64(b.Hi[1])+ov &&
					z >= float64(b.Lo[2])-ov && z < float64(b.Hi[2])+ov
				if in {
					t.Errorf("p=%d rank=%d: passive %d inside the box (%g,%g,%g)", p, c.Rank(), i, x, y, z)
					return
				}
				if !inShell {
					t.Errorf("p=%d rank=%d: passive %d outside the shell (%g,%g,%g)", p, c.Rank(), i, x, y, z)
					return
				}
			}
			// Exact count: every lattice site within my expanded box but
			// outside my box must appear exactly once (periodic images).
			step := float64(n[0]) / 16
			want := 0
			for x := 0; x < 16; x++ {
				for y := 0; y < 16; y++ {
					for z := 0; z < 16; z++ {
						px := (float64(x) + 0.5) * step
						py := (float64(y) + 0.5) * step
						pz := (float64(z) + 0.5) * step
						for sx := -1; sx <= 1; sx++ {
							for sy := -1; sy <= 1; sy++ {
								for sz := -1; sz <= 1; sz++ {
									qx := px + float64(sx*n[0])
									qy := py + float64(sy*n[1])
									qz := pz + float64(sz*n[2])
									inExp := qx >= float64(b.Lo[0])-ov && qx < float64(b.Hi[0])+ov &&
										qy >= float64(b.Lo[1])-ov && qy < float64(b.Hi[1])+ov &&
										qz >= float64(b.Lo[2])-ov && qz < float64(b.Hi[2])+ov
									inBox := qx >= float64(b.Lo[0]) && qx < float64(b.Hi[0]) &&
										qy >= float64(b.Lo[1]) && qy < float64(b.Hi[1]) &&
										qz >= float64(b.Lo[2]) && qz < float64(b.Hi[2])
									if inExp && !inBox {
										want++
									}
								}
							}
						}
					}
				}
			}
			if d.Passive.Len() != want {
				t.Errorf("p=%d rank=%d: passive count %d want %d", p, c.Rank(), d.Passive.Len(), want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMigrateOwnership(t *testing.T) {
	n := [3]int{16, 16, 16}
	err := mpi.Run(4, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 4)
		d := New(c, dec, 2)
		scatterLattice(d, 8, n)
		before := d.NGlobal()
		// Push every particle by a random displacement (same RNG stream on
		// each rank would desync; seed by rank).
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		for i := 0; i < d.Active.Len(); i++ {
			d.Active.X[i] += float32(rng.NormFloat64() * 3)
			d.Active.Y[i] += float32(rng.NormFloat64() * 3)
			d.Active.Z[i] += float32(rng.NormFloat64() * 3)
		}
		d.Migrate()
		// All actives in box, total conserved, IDs globally unique.
		if g := d.NGlobal(); g != before {
			t.Errorf("global count changed: %d -> %d", before, g)
		}
		b := d.Box
		for i := 0; i < d.Active.Len(); i++ {
			if !b.Contains(int(d.Active.X[i]), int(d.Active.Y[i]), int(d.Active.Z[i])) {
				t.Errorf("active %d at (%g,%g,%g) outside box %v", i,
					d.Active.X[i], d.Active.Y[i], d.Active.Z[i], b)
				return
			}
		}
		ids := mpi.Gather(c, 0, d.Active.ID)
		if c.Rank() == 0 {
			seen := map[uint64]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate active ID %d after migration", id)
				}
				seen[id] = true
			}
			if len(seen) != int(before) {
				t.Errorf("lost particles: %d unique IDs of %d", len(seen), before)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrateRefreshProperty(t *testing.T) {
	// Property: after random walks + Migrate + Refresh, (a) actives
	// partition the ID space, (b) every passive replica's ID exists as an
	// active somewhere, (c) replica positions equal owner positions up to
	// the periodic shift.
	f := func(seed int64) bool {
		n := [3]int{12, 12, 12}
		procs := []int{1, 2, 4}[int(uint64(seed)%3)]
		ok := true
		err := mpi.Run(procs, func(c *mpi.Comm) {
			dec := grid.NewDecomp(n, procs)
			d := New(c, dec, 2)
			scatterLattice(d, 6, n)
			rng := rand.New(rand.NewSource(seed + int64(c.Rank())))
			for step := 0; step < 3; step++ {
				for i := 0; i < d.Active.Len(); i++ {
					d.Active.X[i] += float32(rng.NormFloat64())
					d.Active.Y[i] += float32(rng.NormFloat64())
					d.Active.Z[i] += float32(rng.NormFloat64())
				}
				d.Migrate()
				d.Refresh()
			}
			if d.NGlobal() != 6*6*6 {
				ok = false
			}
			// Gather all actives and passives on rank 0 and cross-check.
			axs := mpi.Gather(c, 0, d.Active.X)
			ays := mpi.Gather(c, 0, d.Active.Y)
			azs := mpi.Gather(c, 0, d.Active.Z)
			aid := mpi.Gather(c, 0, d.Active.ID)
			pxs := mpi.Gather(c, 0, d.Passive.X)
			pys := mpi.Gather(c, 0, d.Passive.Y)
			pzs := mpi.Gather(c, 0, d.Passive.Z)
			pid := mpi.Gather(c, 0, d.Passive.ID)
			if c.Rank() != 0 {
				return
			}
			pos := map[uint64][3]float32{}
			for i, id := range aid {
				if _, dup := pos[id]; dup {
					ok = false
				}
				pos[id] = [3]float32{axs[i], ays[i], azs[i]}
			}
			for i, id := range pid {
				owner, exists := pos[id]
				if !exists {
					ok = false
					continue
				}
				for dck, pv := range [3]float32{pxs[i], pys[i], pzs[i]} {
					diff := float64(pv - owner[dck])
					// Position must match up to a ±12 periodic shift.
					for diff > 6 {
						diff -= 12
					}
					for diff < -6 {
						diff += 12
					}
					if math.Abs(diff) > 1e-4 {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestOverloadFractionScale(t *testing.T) {
	// For a 32³ box split over 8 ranks with ov=2, the shell:volume ratio is
	// ((16+4)³−16³)/16³ ≈ 0.95; check the measured fraction is near that.
	n := [3]int{32, 32, 32}
	err := mpi.Run(8, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 8)
		d := New(c, dec, 2)
		scatterLattice(d, 32, n)
		d.Refresh()
		want := (20.0*20*20 - 16*16*16) / (16 * 16 * 16)
		if f := d.OverloadFraction(); math.Abs(f-want) > 0.1*want {
			t.Errorf("overload fraction %g want ≈%g", f, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
