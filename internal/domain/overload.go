package domain

import (
	"fmt"
	"math"

	"hacc/internal/grid"
	"hacc/internal/mpi"
	"hacc/internal/pfft"
)

// Domain owns one rank's particles: the Active set (particles whose
// canonical position lies inside the rank's box — their mass enters the
// Poisson solve) and the Passive set (replicas of neighbor particles within
// the overload shell, stored with unwrapped coordinates adjacent to the
// box). Passive particles receive the same force updates but are discarded
// and rebuilt from their owners at every Refresh, so replica divergence is
// bounded by the refresh cadence (paper §II, Fig. 4).
type Domain struct {
	Comm    *mpi.Comm
	Dec     *grid.Decomp
	Box     pfft.Box
	Ov      float64 // overload shell width in grid cells
	Active  Particles
	Passive Particles

	// Statistics for the bench harness.
	Migrated int64 // particles moved to a new owner (lifetime count)

	// origins records, for the passive set built by the most recent
	// Refresh/RefreshEnd (planned or dense), the contiguous owner segments
	// in storage order; see RefreshOrigins.
	origins []Origin

	catches []catch // where my actives must be replicated

	// plan is the persistent neighbor-stencil exchange plan behind
	// Migrate/Refresh (see exchange.go). The dense all-to-all path below
	// (MigrateDense/RefreshDense) is retained as the equivalence oracle.
	plan *ExchangePlan

	// Per-destination communication scratch for the dense oracle path,
	// reused across steps so it stops allocating once warm (mpi.Send copies
	// outgoing payloads, so reusing these between collectives is safe).
	// owners is shared with the planned path.
	owners []int
	dest   [][]int
	sendF  [][]float32
	sendI  [][]uint64
	idxBuf []int
	selfF  []float32
	selfI  []uint64
}

// catch says: actives inside box (a sub-box of mine, in my coordinates)
// must be sent to rank with positions shifted by shift.
type catch struct {
	rank  int
	shift [3]float32
	box   boxF
}

type boxF struct{ lo, hi [3]float64 }

func (b boxF) contains(x, y, z float64) bool {
	return x >= b.lo[0] && x < b.hi[0] &&
		y >= b.lo[1] && y < b.hi[1] &&
		z >= b.lo[2] && z < b.hi[2]
}

// New creates the domain for this rank. Collective over comm (plan
// construction is deterministic and local; no messages are sent).
func New(c *mpi.Comm, dec *grid.Decomp, overload float64) *Domain {
	me := c.Rank()
	d := &Domain{Comm: c, Dec: dec, Box: dec.Box(me), Ov: overload}
	if overload <= 0 {
		panic(fmt.Sprintf("domain: overload width must be positive, got %g", overload))
	}
	n := dec.N
	for i := 0; i < 3; i++ {
		if 2*overload >= float64(n[i]) {
			panic(fmt.Sprintf("domain: overload %g too wide for grid %v", overload, n))
		}
	}
	// Build the catch list: for every rank r and every periodic shift s,
	// the set of my cells within r's box expanded by the overload width.
	// A particle of mine at position q must appear on r at q+s when
	// q+s ∈ expand(box_r, ov). Excludes the identity (r==me, s==0).
	for r := 0; r < dec.NumRanks(); r++ {
		rb := dec.Box(r)
		for sx := -1; sx <= 1; sx++ {
			for sy := -1; sy <= 1; sy++ {
				for sz := -1; sz <= 1; sz++ {
					if r == me && sx == 0 && sy == 0 && sz == 0 {
						continue
					}
					shift := [3]float64{float64(sx * n[0]), float64(sy * n[1]), float64(sz * n[2])}
					cb, ok := overlapWithin(d.Box, rb, overload, shift)
					if !ok {
						continue
					}
					d.catches = append(d.catches, catch{
						rank:  r,
						shift: [3]float32{float32(shift[0]), float32(shift[1]), float32(shift[2])},
						box:   cb,
					})
				}
			}
		}
	}
	d.plan = newExchangePlan(d)
	return d
}

// overlapWithin returns the part of `mine` that lies within `margin` cells
// of rb shifted into my frame by shift — mine ∩ (expand(rb, margin) −
// shift) — and whether it is non-empty. Shared by the catch construction
// (margin = overload) and the exchange plan's neighbor-stencil test
// (margin = overload+2), which keeps the plan's leg set structurally a
// superset of the catch geometry.
func overlapWithin(mine, rb pfft.Box, margin float64, shift [3]float64) (boxF, bool) {
	var cb boxF
	for i := 0; i < 3; i++ {
		lo := float64(rb.Lo[i]) - margin - shift[i]
		hi := float64(rb.Hi[i]) + margin - shift[i]
		lo = math.Max(lo, float64(mine.Lo[i]))
		hi = math.Min(hi, float64(mine.Hi[i]))
		if hi <= lo {
			return boxF{}, false
		}
		cb.lo[i] = lo
		cb.hi[i] = hi
	}
	return cb, true
}

// Plan returns the persistent neighbor-stencil exchange plan.
func (d *Domain) Plan() *ExchangePlan { return d.plan }

// wrapPos reduces a coordinate into [0, n). In-range values (the vast
// majority) return untouched; out-of-range values take a single mod-based
// reduction, so arbitrarily fast particles cost O(1) instead of the old
// one-box-length-per-iteration loop. For single-box excursions the float64
// mod rounds to the same float32 as the old single add/subtract.
func wrapPos(x float32, n int) float32 {
	fn := float32(n)
	if x >= 0 && x < fn {
		return x
	}
	r := float32(math.Mod(float64(x), float64(n)))
	if r < 0 {
		r += fn
	}
	if r >= fn { // e.g. a tiny negative remainder rounded up to fn
		r = 0
	}
	return r
}

// commScratch returns the per-destination scratch slices, initialized on
// first use and reset to empty (capacity retained) on every call.
func (d *Domain) commScratch() (dest [][]int, sendF [][]float32, sendI [][]uint64) {
	p := d.Comm.Size()
	if d.dest == nil {
		d.dest = make([][]int, p)
		d.sendF = make([][]float32, p)
		d.sendI = make([][]uint64, p)
	}
	for r := 0; r < p; r++ {
		d.dest[r] = d.dest[r][:0]
		d.sendF[r] = d.sendF[r][:0]
		d.sendI[r] = d.sendI[r][:0]
	}
	return d.dest, d.sendF, d.sendI
}

// Migrate wraps active positions into the periodic box and transfers
// particles that left this rank's sub-box to their new owners over the
// planned neighbor legs. Collective. Equivalent to
// MigrateBegin + MigrateEnd.
func (d *Domain) Migrate() {
	d.MigrateBegin()
	d.MigrateEnd()
}

// Refresh rebuilds the passive (overloaded) particle set from the current
// active particles of all neighbors over the planned legs, replacing any
// diverged replicas. Collective. Equivalent to RefreshBegin + RefreshEnd.
func (d *Domain) Refresh() {
	d.RefreshBegin()
	d.RefreshEnd()
}

// MigrateDense is the legacy dense all-to-all migration, retained as the
// equivalence oracle for the planned path (O(P²) messages per call).
func (d *Domain) MigrateDense() {
	p := d.Comm.Size()
	a := &d.Active
	n := d.Dec.N
	dest, sendF, sendI := d.commScratch()
	// Pass 1: wrap and classify (no reordering yet — the send lists hold
	// indices into the current layout).
	if cap(d.owners) < a.Len() {
		d.owners = make([]int, a.Len())
	}
	owners := d.owners[:a.Len()]
	for i := 0; i < a.Len(); i++ {
		a.X[i] = wrapPos(a.X[i], n[0])
		a.Y[i] = wrapPos(a.Y[i], n[1])
		a.Z[i] = wrapPos(a.Z[i], n[2])
		r := d.Dec.RankOf(float64(a.X[i]), float64(a.Y[i]), float64(a.Z[i]))
		owners[i] = r
		if r != d.Comm.Rank() {
			dest[r] = append(dest[r], i)
		}
	}
	// Pass 2: pack departures while indices are still valid.
	var moved int64
	for r := 0; r < p; r++ {
		if len(dest[r]) == 0 {
			continue
		}
		sendF[r] = a.packFloatsInto(sendF[r], dest[r], [3]float32{})
		sendI[r] = a.packIDsInto(sendI[r], dest[r])
		moved += int64(len(dest[r]))
	}
	// Pass 3: compact the stayers.
	stay := 0
	for i := 0; i < a.Len(); i++ {
		if owners[i] != d.Comm.Rank() {
			continue
		}
		if i != stay {
			a.Swap(i, stay)
		}
		stay++
	}
	a.Truncate(stay)
	recvF := mpi.AllToAll(d.Comm, sendF)
	recvI := mpi.AllToAll(d.Comm, sendI)
	for r := 0; r < p; r++ {
		a.unpack(recvF[r], recvI[r])
	}
	d.Migrated += moved
}

// Origin is one contiguous segment of the passive store, attributed to the
// rank whose active particles it replicates.
type Origin struct {
	Rank int // owner rank of the replicated particles
	N    int // number of consecutive passive particles from that rank
}

// RefreshOrigins returns the owner segments of the passive store in storage
// order, as built by the most recent Refresh/RefreshEnd (or RefreshDense):
// one segment per neighbor leg (possibly empty) followed by the rank's own
// periodic self-images. Consumers that must route per-replica information
// back to the owner — the analysis boundary stitch — use this instead of
// re-deriving ownership from wrapped positions, which float32 shift
// round-off could misattribute at box edges. The slice is domain-owned and
// valid until the next refresh.
func (d *Domain) RefreshOrigins() []Origin { return d.origins }

// SetOrigins installs passive-origin segments restored from a checkpoint,
// replacing whatever the last refresh recorded. The segments must name
// valid ranks and cover the current passive store exactly — a checkpoint
// whose replica blocks and origin table disagree is rejected here rather
// than silently misattributing replicas. The slice is adopted
// (domain-owned afterwards, like RefreshOrigins' result).
func (d *Domain) SetOrigins(origins []Origin) error {
	n := 0
	for _, o := range origins {
		if o.Rank < 0 || o.Rank >= d.Comm.Size() {
			return fmt.Errorf("domain: restored origin names rank %d of %d", o.Rank, d.Comm.Size())
		}
		if o.N < 0 {
			return fmt.Errorf("domain: restored origin has negative length %d", o.N)
		}
		n += o.N
	}
	if n != d.Passive.Len() {
		return fmt.Errorf("domain: restored origins cover %d replicas, passive store holds %d", n, d.Passive.Len())
	}
	d.origins = origins
	return nil
}

// RefreshDense is the legacy dense all-to-all refresh (one full particle
// scan per catch entry), retained as the equivalence oracle for the planned
// path. Active positions must already be canonical (call Migrate first
// after any position update). Collective.
func (d *Domain) RefreshDense() {
	p := d.Comm.Size()
	d.Passive.Reset()
	_, sendF, sendI := d.commScratch()
	selfF := d.selfF[:0]
	selfI := d.selfI[:0]
	a := &d.Active
	idx := d.idxBuf
	for _, c := range d.catches {
		idx = idx[:0]
		for i := 0; i < a.Len(); i++ {
			if c.box.contains(float64(a.X[i]), float64(a.Y[i]), float64(a.Z[i])) {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		if c.rank == d.Comm.Rank() {
			selfF = a.packFloatsInto(selfF, idx, c.shift)
			selfI = a.packIDsInto(selfI, idx)
			continue
		}
		sendF[c.rank] = a.packFloatsInto(sendF[c.rank], idx, c.shift)
		sendI[c.rank] = a.packIDsInto(sendI[c.rank], idx)
	}
	d.idxBuf = idx
	d.selfF, d.selfI = selfF, selfI
	recvF := mpi.AllToAll(d.Comm, sendF)
	recvI := mpi.AllToAll(d.Comm, sendI)
	d.origins = d.origins[:0]
	for r := 0; r < p; r++ {
		if r == d.Comm.Rank() {
			continue
		}
		d.Passive.unpack(recvF[r], recvI[r])
		d.origins = append(d.origins, Origin{Rank: r, N: len(recvI[r])})
	}
	d.Passive.unpack(selfF, selfI)
	d.origins = append(d.origins, Origin{Rank: d.Comm.Rank(), N: len(selfI)})
}

// NGlobal returns the total number of active particles across all ranks.
// Collective.
func (d *Domain) NGlobal() int64 {
	tot := mpi.AllReduce(d.Comm, []int64{int64(d.Active.Len())}, mpi.SumI64)
	return tot[0]
}

// MemoryBytes estimates the particle memory held by this rank (actives and
// passive replicas), for the Table II/III memory columns.
func (d *Domain) MemoryBytes() int64 {
	per := int64(6*4 + 8)
	return per * int64(d.Active.Len()+d.Passive.Len())
}

// OverloadFraction returns the passive:active particle ratio, the paper's
// ~10% memory overhead figure for production-scale boxes.
func (d *Domain) OverloadFraction() float64 {
	if d.Active.Len() == 0 {
		return 0
	}
	return float64(d.Passive.Len()) / float64(d.Active.Len())
}
